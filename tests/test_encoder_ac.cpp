#include <gtest/gtest.h>

#include <array>

#include "core/byte_utils.hpp"
#include "core/encoder.hpp"
#include "test_util.hpp"

namespace dbi {
namespace {

constexpr BusConfig kCfg{8, 8};

TEST(EncoderAc, NameAndFactory) {
  EXPECT_EQ(make_ac_encoder()->name(), "DBI AC");
  EXPECT_EQ(make_encoder(Scheme::kAc)->name(), "DBI AC");
}

TEST(EncoderAc, FirstBeatAgainstAllOnesActsLikeDc) {
  // With the all-ones boundary the transition count of the first beat
  // equals its zero count, so the first decision matches DBI DC.
  const auto ac = make_ac_encoder();
  const auto dc = make_dc_encoder();
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const Burst data = test::random_burst(kCfg, seed);
    const BusState prev = BusState::all_ones(kCfg);
    EXPECT_EQ(ac->encode(data, prev).inverted(0),
              dc->encode(data, prev).inverted(0));
  }
}

TEST(EncoderAc, BeatWiseTransitionOptimality) {
  // Greedy invariant: given the previously transmitted beat, no single
  // beat decision can be improved.
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 50);
    const BusState prev = BusState::all_ones(kCfg);
    const auto e = make_ac_encoder()->encode(data, prev);
    Beat last = prev.last;
    for (int i = 0; i < e.length(); ++i) {
      const Beat chosen = e.beat(i);
      const Beat other{invert(chosen.dq, kCfg), !chosen.dbi};
      EXPECT_LE(beat_transitions(last, chosen, kCfg),
                beat_transitions(last, other, kCfg));
      last = chosen;
    }
  }
}

TEST(EncoderAc, AtMostFourTransitionsPerBeat) {
  // 9 lines toggle either t or 9 - t; the chosen option is <= 4.
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 150);
    const BusState prev = BusState::all_ones(kCfg);
    const auto e = make_ac_encoder()->encode(data, prev);
    Beat last = prev.last;
    for (int i = 0; i < e.length(); ++i) {
      EXPECT_LE(beat_transitions(last, e.beat(i), kCfg), 4);
      last = e.beat(i);
    }
  }
}

TEST(EncoderAc, ClosedFormDecisionMatches) {
  // invert(i) = (ham(w_{i-1}, w_i) >= 5) XOR invert(i-1), with
  // w_{-1} = 0xFF — the identity the gate-level design uses.
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 250);
    const auto e =
        make_ac_encoder()->encode(data, BusState::all_ones(kCfg));
    bool p = false;
    Word prev = 0xFF;
    for (int i = 0; i < e.length(); ++i) {
      const bool expected = (hamming(prev, data.word(i), kCfg) >= 5) != p;
      EXPECT_EQ(e.inverted(i), expected) << "seed=" << seed << " i=" << i;
      p = expected;
      prev = data.word(i);
    }
  }
}

TEST(EncoderAc, RepeatedBeatsCauseNoTransitions) {
  const BusConfig cfg{8, 4};
  const Burst data(cfg, std::array<Word, 4>{0xFF, 0xFF, 0xFF, 0xFF});
  const auto e = make_ac_encoder()->encode(data, BusState::all_ones(cfg));
  EXPECT_EQ(e.transitions(BusState::all_ones(cfg)), 0);
  EXPECT_EQ(e.inversion_mask(), 0u);
}

TEST(EncoderAc, AlternatingPatternIsNeutralized) {
  // 0x00 / 0xFF alternation: AC inverts every other beat so the DQ
  // lines never toggle; only the DBI line flips once per beat.
  const BusConfig cfg{8, 6};
  const Burst data(cfg, std::array<Word, 6>{0x00, 0xFF, 0x00, 0xFF, 0x00,
                                            0xFF});
  const auto e = make_ac_encoder()->encode(data, BusState::all_ones(cfg));
  const int raw_transitions =
      make_raw_encoder()->encode(data, BusState::all_ones(cfg))
          .transitions(BusState::all_ones(cfg));
  EXPECT_EQ(raw_transitions, 48);
  EXPECT_LE(e.transitions(BusState::all_ones(cfg)), 6);
}

TEST(EncoderAc, RespectsBusHistory) {
  const BusConfig cfg{8, 1};
  const Burst data(cfg, std::array<Word, 1>{0x0F});
  // From all-ones: keep costs 4, invert costs 5 -> keep.
  EXPECT_FALSE(make_ac_encoder()
                   ->encode(data, BusState::all_ones(cfg))
                   .inverted(0));
  // From all-zeros (dbi low): keep costs ham(0,0F)=4 + dbi 1 = 5,
  // invert costs ham(0,F0)=4 + 0 = 4 -> invert.
  EXPECT_TRUE(make_ac_encoder()
                  ->encode(data, BusState::all_zeros())
                  .inverted(0));
}

TEST(EncoderAc, DecodeRecoversPayload) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 31);
    EXPECT_EQ(
        make_ac_encoder()->encode(data, BusState::all_ones(kCfg)).decode(),
        data);
  }
}

}  // namespace
}  // namespace dbi
