#include <gtest/gtest.h>

#include "core/encoder.hpp"
#include "test_util.hpp"

namespace dbi {
namespace {

constexpr BusConfig kCfg{8, 8};
constexpr CostWeights kW{0.5, 0.5};

TEST(EncoderWindow, NameEncodesWindow) {
  EXPECT_EQ(make_windowed_opt_encoder(kW, 4)->name(), "DBI OPT (window 4)");
}

TEST(EncoderWindow, RejectsBadWindow) {
  EXPECT_THROW(make_windowed_opt_encoder(kW, 0), std::invalid_argument);
  EXPECT_THROW(make_windowed_opt_encoder(CostWeights{-1, 1}, 4),
               std::invalid_argument);
}

TEST(EncoderWindow, FullWindowEqualsOpt) {
  const auto windowed = make_windowed_opt_encoder(kW, 8);
  const auto opt = make_opt_encoder(kW);
  const BusState prev = BusState::all_ones(kCfg);
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const Burst data = test::random_burst(kCfg, seed);
    EXPECT_NEAR(encoded_cost(windowed->encode(data, prev), prev, kW),
                encoded_cost(opt->encode(data, prev), prev, kW), 1e-9);
  }
}

TEST(EncoderWindow, OversizedWindowAlsoEqualsOpt) {
  const auto windowed = make_windowed_opt_encoder(kW, 13);
  const auto opt = make_opt_encoder(kW);
  const BusState prev = BusState::all_ones(kCfg);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 100);
    EXPECT_NEAR(encoded_cost(windowed->encode(data, prev), prev, kW),
                encoded_cost(opt->encode(data, prev), prev, kW), 1e-9);
  }
}

TEST(EncoderWindow, NeverBeatsFullOpt) {
  const BusState prev = BusState::all_ones(kCfg);
  const auto opt = make_opt_encoder(kW);
  for (int window : {1, 2, 3, 4, 5, 6, 7}) {
    const auto windowed = make_windowed_opt_encoder(kW, window);
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
      const Burst data = test::random_burst(kCfg, seed + 200);
      EXPECT_GE(encoded_cost(windowed->encode(data, prev), prev, kW) + 1e-9,
                encoded_cost(opt->encode(data, prev), prev, kW))
          << "window=" << window;
    }
  }
}

TEST(EncoderWindow, WindowedBlocksAreLocallyOptimal) {
  // Each committed block must be exactly the trellis optimum for the
  // state it started from — replacing a block with any alternative
  // cannot improve that block's own cost.
  const int window = 4;
  const auto windowed = make_windowed_opt_encoder(kW, window);
  const auto block_opt = make_exhaustive_encoder(kW);
  const BusState boundary = BusState::all_ones(kCfg);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 300);
    const auto e = windowed->encode(data, boundary);
    BusState state = boundary;
    for (int start = 0; start < 8; start += window) {
      BusConfig block_cfg = kCfg;
      block_cfg.burst_length = window;
      std::vector<Word> words;
      std::vector<Beat> beats;
      for (int i = 0; i < window; ++i) {
        words.push_back(data.word(start + i));
        beats.push_back(e.beat(start + i));
      }
      const Burst block(block_cfg, words);
      const EncodedBurst chosen(block_cfg, beats);
      const double best = encoded_cost(block_opt->encode(block, state),
                                       state, kW);
      EXPECT_NEAR(encoded_cost(chosen, state, kW), best, 1e-9);
      state = chosen.final_state();
    }
  }
}

TEST(EncoderWindow, DecodeRecoversPayload) {
  const auto windowed = make_windowed_opt_encoder(kW, 3);
  const BusState prev = BusState::all_ones(kCfg);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 400);
    EXPECT_EQ(windowed->encode(data, prev).decode(), data);
  }
}

}  // namespace
}  // namespace dbi
