#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "engine/batch_encoder.hpp"
#include "engine/shard_pool.hpp"
#include "test_util.hpp"

namespace dbi::engine {
namespace {

TEST(ShardPool, RunsEveryShardExactlyOnce) {
  ShardPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  std::vector<std::atomic<int>> hits(23);
  pool.run(23, [&](int s) { ++hits[static_cast<std::size_t>(s)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ShardPool, ReusableAcrossRuns) {
  ShardPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> sum{0};
    pool.run(10, [&](int s) { sum += s; });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(ShardPool, ZeroShardsIsANoOp) {
  ShardPool pool(2);
  pool.run(0, [](int) { FAIL() << "no shard should run"; });
}

TEST(ShardPool, ClampsWorkerCountToAtLeastOne) {
  ShardPool pool(0);
  EXPECT_EQ(pool.workers(), 1);
  std::atomic<int> n{0};
  pool.run(7, [&](int) { ++n; });
  EXPECT_EQ(n.load(), 7);
}

TEST(ShardPool, DeterministicShardToWorkerAssignment) {
  // Shard s must execute on worker s % workers, and each worker must
  // visit its shards in increasing order — the no-work-stealing
  // guarantee that makes parallel runs reproducible.
  ShardPool pool(3);
  std::mutex mu;
  std::map<std::thread::id, std::vector<int>> per_thread_order;
  pool.run(11, [&](int s) {
    std::lock_guard<std::mutex> lock(mu);
    per_thread_order[std::this_thread::get_id()].push_back(s);
  });
  // Threads are identified lazily, so recover each worker's id from the
  // first shard it ran (shard s -> worker s % 3).
  ASSERT_LE(per_thread_order.size(), 3u);
  for (const auto& [tid, order] : per_thread_order) {
    ASSERT_FALSE(order.empty());
    const int worker = order.front() % 3;
    int expected = worker;
    for (int s : order) {
      EXPECT_EQ(s, expected) << "worker " << worker;
      EXPECT_EQ(s % 3, worker);
      expected += 3;
    }
  }
}

TEST(ShardPool, PropagatesExceptions) {
  ShardPool pool(2);
  EXPECT_THROW(
      pool.run(6,
               [](int s) {
                 if (s == 3) throw std::runtime_error("shard 3 failed");
               }),
      std::runtime_error);
  // The pool survives a failed run.
  std::atomic<int> n{0};
  pool.run(4, [&](int) { ++n; });
  EXPECT_EQ(n.load(), 4);
}

TEST(ShardPool, ShardedEncodeLanesMatchesSerial) {
  // The engine's multi-lane entry point must yield identical results
  // and identical threaded states with and without a pool.
  const BusConfig cfg{8, 8};
  constexpr int kLanes = 9;
  constexpr int kBursts = 64;

  std::vector<std::vector<Burst>> lanes;
  for (int l = 0; l < kLanes; ++l)
    lanes.push_back(
        test::random_bursts(cfg, kBursts, 1000 + static_cast<std::uint64_t>(l)));

  const BatchEncoder batch(Scheme::kOptFixed);

  auto encode_all = [&](ShardPool* pool) {
    std::vector<BusState> states(kLanes, BusState::all_ones(cfg));
    std::vector<std::vector<BurstResult>> results(
        kLanes, std::vector<BurstResult>(kBursts));
    std::vector<LaneTask> tasks(kLanes);
    for (int l = 0; l < kLanes; ++l) {
      tasks[static_cast<std::size_t>(l)] = LaneTask{
          lanes[static_cast<std::size_t>(l)],
          &states[static_cast<std::size_t>(l)],
          results[static_cast<std::size_t>(l)].data(), BurstStats{}};
    }
    batch.encode_lanes(tasks, pool);
    return std::tuple{states, results, tasks};
  };

  const auto [serial_states, serial_results, serial_tasks] =
      encode_all(nullptr);
  ShardPool pool(4);
  const auto [pool_states, pool_results, pool_tasks] = encode_all(&pool);

  EXPECT_EQ(serial_states, pool_states);
  EXPECT_EQ(serial_results, pool_results);
  for (int l = 0; l < kLanes; ++l)
    EXPECT_EQ(serial_tasks[static_cast<std::size_t>(l)].totals,
              pool_tasks[static_cast<std::size_t>(l)].totals)
        << "lane " << l;
}

}  // namespace
}  // namespace dbi::engine
