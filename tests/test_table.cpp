#include "sim/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dbi::sim {
namespace {

TEST(Table, RejectsEmptyHeaderAndBadRows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, TextAlignsColumns) {
  Table t({"x", "value"});
  t.add_row({"1", "10"});
  t.add_row({"200", "3"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("  x  value\n"), std::string::npos);
  EXPECT_NE(text.find("  1     10\n"), std::string::npos);
  EXPECT_NE(text.find("200      3\n"), std::string::npos);
}

TEST(Table, StreamOperatorMatchesToText) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.to_text());
}

TEST(Table, CsvBasics) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, CsvQuotesSpecialCells) {
  Table t({"name", "note"});
  t.add_row({"x,y", "say \"hi\""});
  EXPECT_EQ(t.to_csv(), "name,note\n\"x,y\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
  EXPECT_EQ(fmt(2.0), "2.000");
}

TEST(FmtEng, PicksEngineeringPrefix) {
  EXPECT_EQ(fmt_eng(1.66e-12, "J"), "1.660 pJ");
  EXPECT_EQ(fmt_eng(2.49e-3, "W", 0), "2 mW");
  EXPECT_EQ(fmt_eng(1.5e9, "Hz", 1), "1.5 GHz");
  EXPECT_EQ(fmt_eng(0.0, "J", 1), "0.0 J");
  EXPECT_EQ(fmt_eng(42.0, "s", 0), "42 s");
  EXPECT_EQ(fmt_eng(-3e-9, "s", 0), "-3 ns");
}

}  // namespace
}  // namespace dbi::sim
