#include "core/types.hpp"

#include <gtest/gtest.h>

namespace dbi {
namespace {

TEST(BusConfig, DefaultIsJedecByteLane) {
  const BusConfig cfg;
  EXPECT_EQ(cfg.width, 8);
  EXPECT_EQ(cfg.burst_length, 8);
  EXPECT_EQ(cfg.lines(), 9);
  EXPECT_EQ(cfg.line_beats(), 72);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(BusConfig, DqMask) {
  EXPECT_EQ((BusConfig{8, 8}.dq_mask()), 0xFFu);
  EXPECT_EQ((BusConfig{1, 8}.dq_mask()), 0x1u);
  EXPECT_EQ((BusConfig{16, 8}.dq_mask()), 0xFFFFu);
  EXPECT_EQ((BusConfig{32, 8}.dq_mask()), 0xFFFFFFFFu);
}

TEST(BusConfig, ValidateRejectsBadGeometry) {
  EXPECT_THROW((BusConfig{0, 8}.validate()), std::invalid_argument);
  EXPECT_THROW((BusConfig{33, 8}.validate()), std::invalid_argument);
  EXPECT_THROW((BusConfig{8, 0}.validate()), std::invalid_argument);
  EXPECT_THROW((BusConfig{8, 65}.validate()), std::invalid_argument);
  EXPECT_NO_THROW((BusConfig{32, 64}.validate()));
}

TEST(BusState, AllOnesMatchesConfigWidth) {
  const BusConfig cfg{8, 8};
  const BusState s = BusState::all_ones(cfg);
  EXPECT_EQ(s.last.dq, 0xFFu);
  EXPECT_TRUE(s.last.dbi);

  const BusConfig narrow{3, 8};
  EXPECT_EQ(BusState::all_ones(narrow).last.dq, 0b111u);
}

TEST(BusState, AllZeros) {
  const BusState s = BusState::all_zeros();
  EXPECT_EQ(s.last.dq, 0u);
  EXPECT_FALSE(s.last.dbi);
}

TEST(BusState, Equality) {
  const BusConfig cfg{8, 8};
  EXPECT_EQ(BusState::all_ones(cfg), BusState::all_ones(cfg));
  EXPECT_NE(BusState::all_ones(cfg), BusState::all_zeros());
}

}  // namespace
}  // namespace dbi
