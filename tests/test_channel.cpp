#include "workload/channel.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "workload/rng.hpp"

namespace dbi::workload {
namespace {

ChannelConfig x32_config() {
  ChannelConfig cfg;
  cfg.lanes = 4;
  cfg.lane = BusConfig{8, 8};
  return cfg;
}

std::vector<std::uint8_t> random_line(std::uint64_t seed, int bytes) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> line(static_cast<std::size_t>(bytes));
  for (auto& b : line) b = static_cast<std::uint8_t>(rng.next());
  return line;
}

TEST(Channel, BytesPerWriteIsLanesTimesBurstLength) {
  EXPECT_EQ(x32_config().bytes_per_write(), 32);
  ChannelConfig x16;
  x16.lanes = 2;
  EXPECT_EQ(x16.bytes_per_write(), 16);
}

TEST(Channel, ValidateRejectsBadConfigs) {
  ChannelConfig cfg = x32_config();
  cfg.lanes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = x32_config();
  cfg.lane.width = 16;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_THROW(Channel(x32_config(), nullptr), std::invalid_argument);
}

TEST(Channel, WriteRejectsWrongSize) {
  Channel ch(x32_config(), make_dc_encoder());
  const std::vector<std::uint8_t> short_line(16);
  EXPECT_THROW(ch.write(short_line), std::invalid_argument);
}

TEST(Channel, BeatMajorLaneInterleaving) {
  // data[t * lanes + l] must land in lane l, beat t.
  Channel ch(x32_config(), make_raw_encoder());
  std::vector<std::uint8_t> line(32);
  std::iota(line.begin(), line.end(), 0);  // 0,1,2,...,31
  const auto encoded = ch.write(line);
  ASSERT_EQ(encoded.size(), 4u);
  for (int lane = 0; lane < 4; ++lane)
    for (int beat = 0; beat < 8; ++beat)
      EXPECT_EQ(encoded[static_cast<std::size_t>(lane)].beat(beat).dq,
                static_cast<Word>(beat * 4 + lane));
}

TEST(Channel, StatsAccumulateAcrossWrites) {
  Channel ch(x32_config(), make_dc_encoder());
  (void)ch.write(random_line(1, 32));
  (void)ch.write(random_line(2, 32));
  EXPECT_EQ(ch.stats().writes, 2);
  EXPECT_GT(ch.stats().zeros, 0);
  EXPECT_GT(ch.stats().transitions, 0);
  EXPECT_GT(ch.stats().zeros_per_write(), 0.0);
  ch.reset();
  EXPECT_EQ(ch.stats().writes, 0);
  EXPECT_EQ(ch.stats().zeros, 0);
}

TEST(Channel, StatsMatchManualPerLaneEncoding) {
  const ChannelConfig cfg = x32_config();
  Channel ch(cfg, make_ac_encoder());
  const auto line1 = random_line(10, 32);
  const auto line2 = random_line(11, 32);
  (void)ch.write(line1);
  (void)ch.write(line2);

  // Recompute by hand: per lane, chain the two bursts.
  const auto enc = make_ac_encoder();
  std::int64_t zeros = 0, transitions = 0;
  for (int lane = 0; lane < 4; ++lane) {
    BusState state = BusState::all_ones(cfg.lane);
    for (const auto& line : {line1, line2}) {
      Burst b(cfg.lane);
      for (int beat = 0; beat < 8; ++beat)
        b.set_word(beat,
                   line[static_cast<std::size_t>(beat * cfg.lanes + lane)]);
      const auto e = enc->encode(b, state);
      zeros += e.zeros();
      transitions += e.transitions(state);
      state = e.final_state();
    }
  }
  EXPECT_EQ(ch.stats().zeros, zeros);
  EXPECT_EQ(ch.stats().transitions, transitions);
}

TEST(Channel, PersistentStateDiffersFromPerWriteReset) {
  // The second write sees real line history in persistent mode; with
  // reset_state_per_write it sees the paper's all-ones boundary. Use a
  // line of zeros so the difference is guaranteed to show.
  const std::vector<std::uint8_t> zeros_line(32, 0x00);

  Channel persistent(x32_config(), make_ac_encoder());
  (void)persistent.write(zeros_line);
  const auto s1 = persistent.stats();
  (void)persistent.write(zeros_line);
  const auto persistent_second_write_transitions =
      persistent.stats().transitions - s1.transitions;

  ChannelConfig reset_cfg = x32_config();
  reset_cfg.reset_state_per_write = true;
  Channel resetting(reset_cfg, make_ac_encoder());
  (void)resetting.write(zeros_line);
  const auto r1 = resetting.stats();
  (void)resetting.write(zeros_line);
  const auto resetting_second_write_transitions =
      resetting.stats().transitions - r1.transitions;

  // Persistent: the lines already sit at the inverted-zeros state, so
  // repeating the same data costs no transitions; the reset variant
  // pays the boundary cost again.
  EXPECT_EQ(persistent_second_write_transitions, 0);
  EXPECT_GT(resetting_second_write_transitions, 0);
}

TEST(Channel, WriteStreamWideFastPathMatchesScalarChannel) {
  // Engine-backed channels of 2/4/8 byte lanes (x16/x32/x64) take the
  // in-place wide path; a caller-supplied scalar encoder takes the
  // virtual route. Both must report identical stats for the same
  // stream, pooled or not — and leave identical line state behind, as
  // observed through a follow-up write.
  engine::ShardPool pool(3);
  for (const int lanes : {2, 4, 8}) {
    for (const Scheme s :
         {Scheme::kDc, Scheme::kAc, Scheme::kAcDc, Scheme::kOptFixed}) {
      ChannelConfig cfg;
      cfg.lanes = lanes;
      cfg.lane = BusConfig{8, 8};
      const auto data = random_line(
          1000 + static_cast<std::uint64_t>(lanes), cfg.bytes_per_write() * 57);

      Channel wide(cfg, s, CostWeights{0.56, 0.44});
      Channel scalar(cfg, make_encoder(s, CostWeights{0.56, 0.44}));
      const ChannelStats a = wide.write_stream(data, &pool);
      const ChannelStats b = scalar.write_stream(data);
      EXPECT_EQ(a.writes, b.writes) << scheme_name(s) << " x" << 8 * lanes;
      EXPECT_EQ(a.zeros, b.zeros) << scheme_name(s) << " x" << 8 * lanes;
      EXPECT_EQ(a.transitions, b.transitions)
          << scheme_name(s) << " x" << 8 * lanes;

      const auto follow = random_line(2000, cfg.bytes_per_write());
      const ChannelStats fa = wide.write_stream(follow);
      const ChannelStats fb = scalar.write_stream(follow);
      EXPECT_EQ(fa.zeros, fb.zeros) << "state diverged: " << scheme_name(s);
      EXPECT_EQ(fa.transitions, fb.transitions)
          << "state diverged: " << scheme_name(s);
    }
  }
}

TEST(Channel, WriteStreamBeyondWideWidthStillMatches) {
  // 16 lanes exceed the 64-line wide ceiling, so the engine falls back
  // to the per-lane gather path; stats must still match the scalar
  // channel.
  ChannelConfig cfg;
  cfg.lanes = 16;
  cfg.lane = BusConfig{8, 8};
  const auto data = random_line(31, cfg.bytes_per_write() * 9);
  Channel wide(cfg, Scheme::kAc);
  Channel scalar(cfg, make_ac_encoder());
  const ChannelStats a = wide.write_stream(data);
  const ChannelStats b = scalar.write_stream(data);
  EXPECT_EQ(a.zeros, b.zeros);
  EXPECT_EQ(a.transitions, b.transitions);
}

TEST(Channel, EncodedBurstsDecodeToWrittenData) {
  Channel ch(x32_config(), make_opt_fixed_encoder());
  const auto line = random_line(77, 32);
  const auto encoded = ch.write(line);
  for (int lane = 0; lane < 4; ++lane) {
    const Burst decoded = encoded[static_cast<std::size_t>(lane)].decode();
    for (int beat = 0; beat < 8; ++beat)
      EXPECT_EQ(decoded.word(beat),
                line[static_cast<std::size_t>(beat * 4 + lane)]);
  }
}

}  // namespace
}  // namespace dbi::workload
