#include "power/system_energy.hpp"

#include <gtest/gtest.h>

namespace dbi::power {
namespace {

TEST(SystemEnergy, BurstRateIsDataRateOverBurstLength) {
  // 12 Gbps / BL8 = 1.5 GHz — the paper's Section IV-B operating point.
  EXPECT_DOUBLE_EQ(burst_rate(PodParams::pod135(3e-12, 12e9), BusConfig{8, 8}),
                   1.5e9);
  EXPECT_DOUBLE_EQ(burst_rate(PodParams::pod135(3e-12, 8e9), BusConfig{8, 4}),
                   2e9);
}

TEST(SystemEnergy, TotalIsInterfacePlusEncoder) {
  const PodParams pod = PodParams::pod135(3e-12, 12e9);
  const BusConfig cfg{8, 8};
  const BurstStats stats{30, 30};
  const EncoderHardware hw = table1_hardware(dbi::Scheme::kOptFixed);
  const BurstEnergy e = system_burst_energy(pod, cfg, stats, hw);
  EXPECT_NEAR(e.interface, burst_energy(pod, stats), 1e-18);
  EXPECT_NEAR(e.encoder, hw.energy_per_burst(1.5e9), 1e-18);
  EXPECT_NEAR(e.total(), e.interface + e.encoder, 1e-18);
}

TEST(SystemEnergy, EncoderShareIsSmallAtTheHeadlinePoint) {
  // Sanity anchor from the paper's Fig. 8 discussion: the fixed
  // encoder's ~1.7 pJ must be a single-digit percentage of the ~100 pJ
  // interface energy at 12 Gbps / 3 pF, otherwise the net gain story
  // cannot work.
  const PodParams pod = PodParams::pod135(3e-12, 12e9);
  const BurstStats typical{30, 30};
  const BurstEnergy e = system_burst_energy(
      pod, BusConfig{8, 8}, typical, table1_hardware(dbi::Scheme::kOptFixed));
  EXPECT_LT(e.encoder / e.interface, 0.05);
  EXPECT_GT(e.encoder / e.interface, 0.005);
}

}  // namespace
}  // namespace dbi::power
