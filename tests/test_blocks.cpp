#include "netlist/blocks.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "netlist/sim.hpp"
#include "workload/rng.hpp"

namespace dbi::netlist {
namespace {

TEST(Blocks, ConstBusHoldsValue) {
  Netlist nl;
  const Bus b = make_const_bus(nl, 0b1011, 4);
  Simulator sim(nl);
  sim.eval();
  EXPECT_EQ(sim.bus(b), 0b1011u);
}

TEST(Blocks, FoldedGatesEmitNoCells) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId zero = nl.add_const(false);
  const NetId one = nl.add_const(true);
  EXPECT_EQ(xor_fold(nl, a, zero), a);       // identity, no gate
  EXPECT_EQ(and_fold(nl, a, one), a);
  EXPECT_EQ(or_fold(nl, a, zero), a);
  EXPECT_EQ(mux_fold(nl, a, a, one), a);
  EXPECT_EQ(nl.physical_gates(), 0u);
  // XOR with constant one must degrade to a single inverter.
  (void)xor_fold(nl, a, one);
  EXPECT_EQ(nl.physical_gates(), 1u);
  EXPECT_EQ(nl.kind_histogram()[static_cast<std::size_t>(GateKind::kInv)],
            1u);
}

TEST(Blocks, RippleAddExhaustive4Bit) {
  Netlist nl;
  const Bus a = make_input_bus(nl, "a", 4);
  const Bus b = make_input_bus(nl, "b", 4);
  const Bus sum = ripple_add(nl, a, b);
  ASSERT_EQ(sum.size(), 5u);
  Simulator sim(nl);
  for (std::uint64_t va = 0; va < 16; ++va)
    for (std::uint64_t vb = 0; vb < 16; ++vb) {
      sim.set_input_bus(a, va);
      sim.set_input_bus(b, vb);
      sim.eval();
      EXPECT_EQ(sim.bus(sum), va + vb) << va << "+" << vb;
    }
}

TEST(Blocks, RippleAddMixedWidths) {
  Netlist nl;
  const Bus a = make_input_bus(nl, "a", 6);
  const Bus b = make_input_bus(nl, "b", 3);
  const Bus sum = ripple_add(nl, a, b);
  Simulator sim(nl);
  workload::Xoshiro256 rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t va = rng.next_below(64), vb = rng.next_below(8);
    sim.set_input_bus(a, va);
    sim.set_input_bus(b, vb);
    sim.eval();
    EXPECT_EQ(sim.bus(sum), va + vb);
  }
}

TEST(Blocks, AddConstExhaustive) {
  Netlist nl;
  const Bus a = make_input_bus(nl, "a", 4);
  const Bus sum = add_const(nl, a, 9);
  Simulator sim(nl);
  for (std::uint64_t va = 0; va < 16; ++va) {
    sim.set_input_bus(a, va);
    sim.eval();
    EXPECT_EQ(sim.bus(sum), va + 9);
  }
}

TEST(Blocks, ConstMinusExhaustive) {
  // 9 - x for every popcount-style x in [0, 9].
  Netlist nl;
  const Bus x = make_input_bus(nl, "x", 4);
  const Bus diff = const_minus(nl, 9, x, 4);
  Simulator sim(nl);
  for (std::uint64_t vx = 0; vx <= 9; ++vx) {
    sim.set_input_bus(x, vx);
    sim.eval();
    EXPECT_EQ(sim.bus(diff), 9 - vx);
  }
}

TEST(Blocks, PopcountExhaustive8Bit) {
  Netlist nl;
  const Bus in = make_input_bus(nl, "in", 8);
  const Bus count = popcount(nl, in);
  ASSERT_EQ(count.size(), 4u);
  Simulator sim(nl);
  for (std::uint64_t v = 0; v < 256; ++v) {
    sim.set_input_bus(in, v);
    sim.eval();
    EXPECT_EQ(sim.bus(count), static_cast<std::uint64_t>(
                                  std::popcount(static_cast<unsigned>(v))));
  }
}

class PopcountWidths : public ::testing::TestWithParam<int> {};

TEST_P(PopcountWidths, MatchesBuiltin) {
  const int width = GetParam();
  Netlist nl;
  const Bus in = make_input_bus(nl, "in", width);
  const Bus count = popcount(nl, in);
  EXPECT_EQ(count.size(),
            static_cast<std::size_t>(std::bit_width(
                static_cast<unsigned>(width))));
  Simulator sim(nl);
  workload::Xoshiro256 rng(7);
  const std::uint64_t space = std::uint64_t{1} << width;
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t v = rng.next_below(space);
    sim.set_input_bus(in, v);
    sim.eval();
    EXPECT_EQ(sim.bus(count),
              static_cast<std::uint64_t>(std::popcount(v)));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PopcountWidths,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 9, 16));

TEST(Blocks, LessThanExhaustive4Bit) {
  Netlist nl;
  const Bus a = make_input_bus(nl, "a", 4);
  const Bus b = make_input_bus(nl, "b", 4);
  const NetId lt = less_than(nl, a, b);
  Simulator sim(nl);
  for (std::uint64_t va = 0; va < 16; ++va)
    for (std::uint64_t vb = 0; vb < 16; ++vb) {
      sim.set_input_bus(a, va);
      sim.set_input_bus(b, vb);
      sim.eval();
      EXPECT_EQ(sim.value(lt), va < vb) << va << "<" << vb;
    }
}

TEST(Blocks, LessThanConst) {
  Netlist nl;
  const Bus a = make_input_bus(nl, "a", 4);
  const NetId lt4 = less_than_const(nl, a, 4);
  const NetId lt9 = less_than_const(nl, a, 9);
  Simulator sim(nl);
  for (std::uint64_t va = 0; va < 16; ++va) {
    sim.set_input_bus(a, va);
    sim.eval();
    EXPECT_EQ(sim.value(lt4), va < 4);
    EXPECT_EQ(sim.value(lt9), va < 9);
  }
}

TEST(Blocks, MuxAndXorBuses) {
  Netlist nl;
  const Bus a = make_input_bus(nl, "a", 8);
  const Bus b = make_input_bus(nl, "b", 8);
  const NetId sel = nl.add_input("sel");
  const Bus m = mux_bus(nl, a, b, sel);
  const Bus x = xor_bus(nl, a, b);
  const NetId ctrl = nl.add_input("ctrl");
  const Bus xc = xor_with(nl, a, ctrl);
  Simulator sim(nl);
  workload::Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = rng.next_below(256), vb = rng.next_below(256);
    const bool s = (rng.next() & 1) != 0, c = (rng.next() & 1) != 0;
    sim.set_input_bus(a, va);
    sim.set_input_bus(b, vb);
    sim.set_input(sel, s);
    sim.set_input(ctrl, c);
    sim.eval();
    EXPECT_EQ(sim.bus(m), s ? vb : va);
    EXPECT_EQ(sim.bus(x), va ^ vb);
    EXPECT_EQ(sim.bus(xc), c ? (~va & 0xFF) : va);
  }
}

TEST(Blocks, MultiplyExhaustive4x3) {
  Netlist nl;
  const Bus v = make_input_bus(nl, "v", 4);
  const Bus c = make_input_bus(nl, "c", 3);
  const Bus p = multiply(nl, v, c);
  ASSERT_EQ(p.size(), 7u);
  Simulator sim(nl);
  for (std::uint64_t vv = 0; vv < 16; ++vv)
    for (std::uint64_t vc = 0; vc < 8; ++vc) {
      sim.set_input_bus(v, vv);
      sim.set_input_bus(c, vc);
      sim.eval();
      EXPECT_EQ(sim.bus(p), vv * vc) << vv << "*" << vc;
    }
}

TEST(Blocks, ZeroExtend) {
  Netlist nl;
  const Bus a = make_input_bus(nl, "a", 3);
  const Bus ext = zero_extend(nl, a, 6);
  ASSERT_EQ(ext.size(), 6u);
  Simulator sim(nl);
  sim.set_input_bus(a, 0b101);
  sim.eval();
  EXPECT_EQ(sim.bus(ext), 0b101u);
  EXPECT_THROW(zero_extend(nl, ext, 4), std::invalid_argument);
}

TEST(Blocks, RegisterBusLatchesOnClock) {
  Netlist nl;
  const Bus d = make_input_bus(nl, "d", 4);
  const Bus q = register_bus(nl, d);
  Simulator sim(nl);
  sim.set_input_bus(d, 0xA);
  sim.eval();
  EXPECT_EQ(sim.bus(q), 0u);  // not clocked yet
  sim.clock();
  EXPECT_EQ(sim.bus(q), 0xAu);
  sim.set_input_bus(d, 0x5);
  sim.eval();
  EXPECT_EQ(sim.bus(q), 0xAu);  // holds until the next edge
  sim.clock();
  EXPECT_EQ(sim.bus(q), 0x5u);
}

TEST(Blocks, BusValueHelper) {
  const Bus fake = {10, 20, 30};
  const std::uint64_t v =
      bus_value(fake, [](NetId id) { return id == 20; });
  EXPECT_EQ(v, 0b010u);
}

TEST(Blocks, ErrorPaths) {
  Netlist nl;
  const Bus a = make_input_bus(nl, "a", 4);
  const Bus b = make_input_bus(nl, "b", 3);
  EXPECT_THROW(mux_bus(nl, a, b, a[0]), std::invalid_argument);
  EXPECT_THROW(xor_bus(nl, a, b), std::invalid_argument);
  EXPECT_THROW((void)popcount(nl, Bus{}), std::invalid_argument);
  EXPECT_THROW((void)less_than(nl, Bus{}, a), std::invalid_argument);
  EXPECT_THROW((void)multiply(nl, Bus{}, a), std::invalid_argument);
}

}  // namespace
}  // namespace dbi::netlist
