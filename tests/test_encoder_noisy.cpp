#include <gtest/gtest.h>

#include "core/encoder.hpp"
#include "test_util.hpp"

namespace dbi {
namespace {

constexpr BusConfig kCfg{8, 8};
const BusState kBoundary = BusState::all_ones(kCfg);

TEST(NoisyEncoder, NameWrapsInner) {
  const auto enc = make_noisy_encoder(make_dc_encoder(), 0.1, 1);
  EXPECT_EQ(enc->name(), "NOISY(DBI DC)");
}

TEST(NoisyEncoder, RejectsBadArguments) {
  EXPECT_THROW(make_noisy_encoder(nullptr, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(make_noisy_encoder(make_dc_encoder(), -0.1, 1),
               std::invalid_argument);
  EXPECT_THROW(make_noisy_encoder(make_dc_encoder(), 1.1, 1),
               std::invalid_argument);
}

TEST(NoisyEncoder, ZeroErrorRateIsTransparent) {
  const auto noisy = make_noisy_encoder(make_opt_fixed_encoder(), 0.0, 1);
  const auto clean = make_opt_fixed_encoder();
  for (const Burst& b : test::random_bursts(kCfg, 50, 5))
    EXPECT_EQ(noisy->encode(b, kBoundary).inversion_mask(),
              clean->encode(b, kBoundary).inversion_mask());
}

TEST(NoisyEncoder, FullErrorRateFlipsEveryDecision) {
  const auto noisy = make_noisy_encoder(make_dc_encoder(), 1.0, 1);
  const auto clean = make_dc_encoder();
  for (const Burst& b : test::random_bursts(kCfg, 50, 15))
    EXPECT_EQ(noisy->encode(b, kBoundary).inversion_mask(),
              clean->encode(b, kBoundary).inversion_mask() ^ 0xFFu);
}

TEST(NoisyEncoder, AlwaysDecodable) {
  // The paper's analog-implementation argument: decision errors never
  // corrupt data, because the DBI line travels with the beat.
  const auto noisy = make_noisy_encoder(make_opt_fixed_encoder(), 0.3, 42);
  for (const Burst& b : test::random_bursts(kCfg, 100, 25))
    EXPECT_EQ(noisy->encode(b, kBoundary).decode(), b);
}

TEST(NoisyEncoder, DeterministicPerSeed) {
  const Burst b = test::random_burst(kCfg, 3);
  const auto a1 = make_noisy_encoder(make_dc_encoder(), 0.5, 7);
  const auto a2 = make_noisy_encoder(make_dc_encoder(), 0.5, 7);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(a1->encode(b, kBoundary).inversion_mask(),
              a2->encode(b, kBoundary).inversion_mask());
}

TEST(NoisyEncoder, ErrorRateMatchesFlipStatistics) {
  const double rate = 0.1;
  const auto noisy = make_noisy_encoder(make_dc_encoder(), rate, 11);
  const auto clean = make_dc_encoder();
  std::int64_t flips = 0, beats = 0;
  for (const Burst& b : test::random_bursts(kCfg, 2000, 35)) {
    const auto diff = noisy->encode(b, kBoundary).inversion_mask() ^
                      clean->encode(b, kBoundary).inversion_mask();
    flips += std::popcount(diff);
    beats += 8;
  }
  EXPECT_NEAR(static_cast<double>(flips) / static_cast<double>(beats), rate,
              0.01);
}

TEST(NoisyEncoder, CostDegradesGracefully) {
  // A noisy OPT encoder can only be worse than clean OPT in
  // expectation, and a flipped decision costs at most the full beat.
  const CostWeights w{0.5, 0.5};
  const auto noisy = make_noisy_encoder(make_opt_encoder(w), 0.01, 3);
  const auto clean = make_opt_encoder(w);
  double noisy_total = 0, clean_total = 0;
  for (const Burst& b : test::random_bursts(kCfg, 2000, 45)) {
    noisy_total += encoded_cost(noisy->encode(b, kBoundary), kBoundary, w);
    clean_total += encoded_cost(clean->encode(b, kBoundary), kBoundary, w);
  }
  EXPECT_GE(noisy_total, clean_total);
  EXPECT_LT(noisy_total, clean_total * 1.02);  // 1% errors ~ <2% energy
}

TEST(GreedyEncoder, IsTheOneBeatWindow) {
  const CostWeights w{0.4, 0.6};
  const auto greedy = make_greedy_encoder(w);
  const auto window1 = make_windowed_opt_encoder(w, 1);
  EXPECT_EQ(greedy->name(), window1->name());
  for (const Burst& b : test::random_bursts(kCfg, 50, 55))
    EXPECT_EQ(greedy->encode(b, kBoundary).inversion_mask(),
              window1->encode(b, kBoundary).inversion_mask());
}

TEST(GreedyEncoder, BetweenConventionalAndOpt) {
  // The Chang-style heuristic beats pure DC/AC at balanced weights but
  // cannot beat the trellis.
  const CostWeights w{0.5, 0.5};
  const auto greedy = make_greedy_encoder(w);
  const auto opt = make_opt_encoder(w);
  double greedy_total = 0, opt_total = 0, dc_total = 0, ac_total = 0;
  for (const Burst& b : test::random_bursts(kCfg, 1000, 65)) {
    greedy_total += encoded_cost(greedy->encode(b, kBoundary), kBoundary, w);
    opt_total += encoded_cost(opt->encode(b, kBoundary), kBoundary, w);
    dc_total += encoded_cost(make_dc_encoder()->encode(b, kBoundary),
                             kBoundary, w);
    ac_total += encoded_cost(make_ac_encoder()->encode(b, kBoundary),
                             kBoundary, w);
  }
  EXPECT_LE(opt_total, greedy_total);
  EXPECT_LT(greedy_total, dc_total);
  EXPECT_LT(greedy_total, ac_total);
}

}  // namespace
}  // namespace dbi
