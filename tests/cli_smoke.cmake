# End-to-end dbitool smoke test, run by CTest:
#   cmake -DDBITOOL=<path> -DWORK_DIR=<dir> -P cli_smoke.cmake
# Drives gen / stats / record / inspect / replay / convert through real
# files and asserts the documented exit codes, including the distinct
# unknown-command code.

if(NOT DEFINED DBITOOL OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DDBITOOL=... -DWORK_DIR=... -P cli_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_dbitool expected_rc)
  execute_process(
    COMMAND ${DBITOOL} ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR
            "dbitool ${ARGN}: expected exit ${expected_rc}, got ${rc}\n"
            "stdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

# Text pipeline: gen -> stats -> encode.
run_dbitool(0 gen --source sparse --bursts 500 --seed 3 -o trace.txt)
run_dbitool(0 stats trace.txt)
run_dbitool(0 encode trace.txt --scheme opt-fixed)

# Binary pipeline: record -> inspect -> replay (corpus and generator).
run_dbitool(0 record --corpus float-tensor --bursts 2000 --seed 5 -o t.dbt)
run_dbitool(0 inspect t.dbt)
run_dbitool(0 replay t.dbt --lanes 4 --workers 2)
run_dbitool(0 replay t.dbt --scheme ac --lanes 1 --no-double-buffer --csv)
run_dbitool(0 record --source uniform --bursts 100 --seed 1 --no-compress
            -o u.dbt)
run_dbitool(0 corpus)

# Wide multi-group pipeline: record (explicit --wide and implied by
# width > 32) -> inspect -> replay; wide traces refuse text conversion.
run_dbitool(0 record --corpus cacheline-memcpy --width 16 --wide
            --bursts 1000 --seed 7 -o w16.dbt)
run_dbitool(0 record --corpus framebuffer --width 64 --bursts 1000
            --seed 7 -o w64.dbt)
run_dbitool(0 inspect w64.dbt)
run_dbitool(0 replay w64.dbt --lanes 2 --workers 2)
run_dbitool(0 replay w16.dbt --scheme ac --lanes 1 --csv)
run_dbitool(0 corpus --width 32 --bursts 512)
run_dbitool(1 convert w64.dbt wide.txt)  # wide traces are binary-only
run_dbitool(1 record --corpus float-tensor --width 65 --bursts 10
            -o bad.dbt)                  # width beyond the 64-lane bus

# Encoded pipeline: record --encode -> inspect -> verify -> decode; the
# decoded trace must carry the exact payload of a plain recording of the
# same stream (checked through the lossless text conversion).
run_dbitool(0 record --corpus float-tensor --bursts 2000 --seed 5
            --encode ac --lanes 4 -o enc.dbt)
run_dbitool(0 inspect enc.dbt)
run_dbitool(0 verify enc.dbt)
run_dbitool(0 decode enc.dbt -o dec.dbt)
run_dbitool(0 verify t.dbt --scheme ac --lanes 4 --csv)  # round-trip mode
run_dbitool(0 convert dec.dbt dec.txt)
run_dbitool(0 convert t.dbt plain.txt)
file(READ "${WORK_DIR}/dec.txt" text_dec)
file(READ "${WORK_DIR}/plain.txt" text_plain)
if(NOT text_dec STREQUAL text_plain)
  message(FATAL_ERROR "record --encode -> decode changed the payload")
endif()
# Wide encoded round trip, reset state policy, and misuse errors.
run_dbitool(0 record --corpus framebuffer --width 64 --bursts 500 --seed 9
            --encode acdc --reset -o wenc.dbt)
run_dbitool(0 verify wenc.dbt --workers 2)
run_dbitool(0 decode wenc.dbt -o wdec.dbt --workers 2)
run_dbitool(1 decode t.dbt -o nope.dbt)    # plain traces have no masks
run_dbitool(1 replay enc.dbt)              # encoded traces don't re-encode
run_dbitool(1 convert enc.dbt enc.txt)     # ... and don't convert to text
run_dbitool(64 verify enc.dbt --lanse 4)   # unknown flag, named

# Conversion both ways must agree with the original text trace.
run_dbitool(0 convert trace.txt roundtrip.dbt)
run_dbitool(0 convert roundtrip.dbt roundtrip.txt)
run_dbitool(0 stats roundtrip.txt)
file(READ "${WORK_DIR}/trace.txt" text_a)
file(READ "${WORK_DIR}/roundtrip.txt" text_b)
if(NOT text_a STREQUAL text_b)
  message(FATAL_ERROR "text -> binary -> text round trip changed the trace")
endif()

# Kernel registry surface: the listing must name the always-available
# portable reference, a pinned portable kernel must replay bit-exactly,
# and a typo'd kernel name is a usage error (exit 64), not a runtime one.
run_dbitool(0 kernels)
run_dbitool(0 kernels --csv)
execute_process(
  COMMAND ${DBITOOL} kernels --csv
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE kernels_rc
  OUTPUT_VARIABLE kernels_out)
if(NOT kernels_out MATCHES "swar")
  message(FATAL_ERROR "dbitool kernels does not list the portable 'swar' "
          "variant:\n${kernels_out}")
endif()
run_dbitool(0 replay t.dbt --kernel swar --lanes 2)
run_dbitool(0 replay w64.dbt --kernel auto --workers 2)
run_dbitool(64 replay t.dbt --kernel frobnicate)   # unknown kernel name
run_dbitool(64 kernels --kernel swar)              # kernels takes no flags

# Documented failure modes, each with its own exit code.
run_dbitool(2)                           # no command: usage
run_dbitool(64 frobnicate)               # unknown command: distinct code
run_dbitool(64 replay t.dbt --lanse 4)   # unknown flag: named, same code
run_dbitool(64 inspect t.dbt --csvv x)   # unknown flag on a flagless cmd
run_dbitool(64 gen --lanse)              # unknown flag, even with no value
run_dbitool(1 gen --bursts)              # known flag missing its value
run_dbitool(1 replay missing.dbt)        # runtime error
run_dbitool(1 record --corpus nope --bursts 1 -o x.dbt)
file(WRITE "${WORK_DIR}/malformed.txt" "dbi-trace v1 8 8\nab cd\n")
run_dbitool(1 stats malformed.txt)       # truncated burst line

message(STATUS "dbitool CLI smoke test passed")
