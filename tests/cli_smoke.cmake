# End-to-end dbitool smoke test, run by CTest:
#   cmake -DDBITOOL=<path> -DWORK_DIR=<dir> -P cli_smoke.cmake
# Drives gen / stats / record / inspect / replay / convert through real
# files and asserts the documented exit codes, including the distinct
# unknown-command code.

if(NOT DEFINED DBITOOL OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DDBITOOL=... -DWORK_DIR=... -P cli_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_dbitool expected_rc)
  execute_process(
    COMMAND ${DBITOOL} ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR
            "dbitool ${ARGN}: expected exit ${expected_rc}, got ${rc}\n"
            "stdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

# Text pipeline: gen -> stats -> encode.
run_dbitool(0 gen --source sparse --bursts 500 --seed 3 -o trace.txt)
run_dbitool(0 stats trace.txt)
run_dbitool(0 encode trace.txt --scheme opt-fixed)

# Binary pipeline: record -> inspect -> replay (corpus and generator).
run_dbitool(0 record --corpus float-tensor --bursts 2000 --seed 5 -o t.dbt)
run_dbitool(0 inspect t.dbt)
run_dbitool(0 replay t.dbt --lanes 4 --workers 2)
run_dbitool(0 replay t.dbt --scheme ac --lanes 1 --no-double-buffer --csv)
run_dbitool(0 record --source uniform --bursts 100 --seed 1 --no-compress
            -o u.dbt)
run_dbitool(0 corpus)

# Wide multi-group pipeline: record (explicit --wide and implied by
# width > 32) -> inspect -> replay; wide traces refuse text conversion.
run_dbitool(0 record --corpus cacheline-memcpy --width 16 --wide
            --bursts 1000 --seed 7 -o w16.dbt)
run_dbitool(0 record --corpus framebuffer --width 64 --bursts 1000
            --seed 7 -o w64.dbt)
run_dbitool(0 inspect w64.dbt)
run_dbitool(0 replay w64.dbt --lanes 2 --workers 2)
run_dbitool(0 replay w16.dbt --scheme ac --lanes 1 --csv)
run_dbitool(0 corpus --width 32 --bursts 512)
run_dbitool(1 convert w64.dbt wide.txt)  # wide traces are binary-only
run_dbitool(1 record --corpus float-tensor --width 65 --bursts 10
            -o bad.dbt)                  # width beyond the 64-lane bus

# Encoded pipeline: record --encode -> inspect -> verify -> decode; the
# decoded trace must carry the exact payload of a plain recording of the
# same stream (checked through the lossless text conversion).
run_dbitool(0 record --corpus float-tensor --bursts 2000 --seed 5
            --encode ac --lanes 4 -o enc.dbt)
run_dbitool(0 inspect enc.dbt)
run_dbitool(0 verify enc.dbt)
run_dbitool(0 decode enc.dbt -o dec.dbt)
run_dbitool(0 verify t.dbt --scheme ac --lanes 4 --csv)  # round-trip mode
run_dbitool(0 convert dec.dbt dec.txt)
run_dbitool(0 convert t.dbt plain.txt)
file(READ "${WORK_DIR}/dec.txt" text_dec)
file(READ "${WORK_DIR}/plain.txt" text_plain)
if(NOT text_dec STREQUAL text_plain)
  message(FATAL_ERROR "record --encode -> decode changed the payload")
endif()
# Wide encoded round trip, reset state policy, and misuse errors.
run_dbitool(0 record --corpus framebuffer --width 64 --bursts 500 --seed 9
            --encode acdc --reset -o wenc.dbt)
run_dbitool(0 verify wenc.dbt --workers 2)
run_dbitool(0 decode wenc.dbt -o wdec.dbt --workers 2)
run_dbitool(1 decode t.dbt -o nope.dbt)    # plain traces have no masks
run_dbitool(1 replay enc.dbt)              # encoded traces don't re-encode
run_dbitool(1 convert enc.dbt enc.txt)     # ... and don't convert to text
run_dbitool(64 verify enc.dbt --lanse 4)   # unknown flag, named

# Conversion both ways must agree with the original text trace.
run_dbitool(0 convert trace.txt roundtrip.dbt)
run_dbitool(0 convert roundtrip.dbt roundtrip.txt)
run_dbitool(0 stats roundtrip.txt)
file(READ "${WORK_DIR}/trace.txt" text_a)
file(READ "${WORK_DIR}/roundtrip.txt" text_b)
if(NOT text_a STREQUAL text_b)
  message(FATAL_ERROR "text -> binary -> text round trip changed the trace")
endif()

# Kernel registry surface: the listing must name the always-available
# portable reference, a pinned portable kernel must replay bit-exactly,
# and a typo'd kernel name is a usage error (exit 64), not a runtime one.
run_dbitool(0 kernels)
run_dbitool(0 kernels --csv)
execute_process(
  COMMAND ${DBITOOL} kernels --csv
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE kernels_rc
  OUTPUT_VARIABLE kernels_out)
if(NOT kernels_out MATCHES "swar")
  message(FATAL_ERROR "dbitool kernels does not list the portable 'swar' "
          "variant:\n${kernels_out}")
endif()
run_dbitool(0 replay t.dbt --kernel swar --lanes 2)
run_dbitool(0 replay w64.dbt --kernel auto --workers 2)
run_dbitool(64 replay t.dbt --kernel frobnicate)   # unknown kernel name
run_dbitool(64 kernels --kernel swar)              # kernels takes no flags

# Observability surface: --metrics / --trace-json on the engine
# subcommands must leave non-empty files behind, `stats` must render a
# metrics snapshot, and inspect --json must emit machine-readable
# metadata.
run_dbitool(0 replay t.dbt --scheme opt --lanes 2 --workers 2
            --metrics obs.json --trace-json obs_trace.json)
foreach(artifact obs.json obs_trace.json)
  if(NOT EXISTS "${WORK_DIR}/${artifact}")
    message(FATAL_ERROR "replay did not write ${artifact}")
  endif()
  file(SIZE "${WORK_DIR}/${artifact}" artifact_size)
  if(artifact_size EQUAL 0)
    message(FATAL_ERROR "replay wrote an empty ${artifact}")
  endif()
endforeach()
file(READ "${WORK_DIR}/obs.json" obs_json)
if(NOT obs_json MATCHES "dbi_bursts_total")
  message(FATAL_ERROR "metrics snapshot lacks dbi_bursts_total:\n${obs_json}")
endif()
file(READ "${WORK_DIR}/obs_trace.json" obs_trace)
if(NOT obs_trace MATCHES "traceEvents")
  message(FATAL_ERROR "span trace is not Chrome trace_event JSON")
endif()
run_dbitool(0 stats obs.json)            # snapshot renders as a table
run_dbitool(0 stats obs.json --csv)
run_dbitool(0 verify enc.dbt --metrics vm.prom)
file(READ "${WORK_DIR}/vm.prom" verify_prom)
if(NOT verify_prom MATCHES "# TYPE dbi_runs_total counter")
  message(FATAL_ERROR ".prom metrics are not Prometheus text:\n${verify_prom}")
endif()
run_dbitool(0 record --source uniform --bursts 200 --seed 2 -o om.dbt
            --metrics rec_metrics.json)
run_dbitool(0 decode enc.dbt -o obsdec.dbt --metrics dec_metrics.json
            --trace-json dec_trace.json)
run_dbitool(64 gen --metrics m.json --source uniform --bursts 1 -o g.txt)

# inspect --json: machine-readable, stable keys.
execute_process(
  COMMAND ${DBITOOL} inspect enc.dbt --json
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE inspect_rc
  OUTPUT_VARIABLE inspect_json)
if(NOT inspect_rc EQUAL 0)
  message(FATAL_ERROR "inspect --json failed: ${inspect_rc}")
endif()
foreach(key "\"format\": \"dbt2\"" "\"bursts\": 2000" "\"encoded\": {"
        "\"crc\": \"ok\"")
  if(NOT inspect_json MATCHES "${key}")
    message(FATAL_ERROR "inspect --json lacks ${key}:\n${inspect_json}")
  endif()
endforeach()

# Adaptive scheme selection: record --select writes a self-describing
# mixed trace (format v3) that inspect / verify / decode all accept,
# replay and corpus take the same flags, and --report leaves a JSON
# session report behind. Value errors in the new flags are usage
# errors (exit 64), not runtime ones.
run_dbitool(0 record --corpus mixed --bursts 2048 --seed 11
            --select exact:dc,ac --cost energy -o sel.dbt
            --report sel_report.json)
run_dbitool(0 inspect sel.dbt)
run_dbitool(0 verify sel.dbt)
run_dbitool(0 decode sel.dbt -o sel_dec.dbt)
run_dbitool(0 record --corpus mixed --bursts 2048 --seed 11 -o sel_plain.dbt)
run_dbitool(0 convert sel_dec.dbt sel_dec.txt)
run_dbitool(0 convert sel_plain.dbt sel_plain.txt)
file(READ "${WORK_DIR}/sel_dec.txt" text_sel_dec)
file(READ "${WORK_DIR}/sel_plain.txt" text_sel_plain)
if(NOT text_sel_dec STREQUAL text_sel_plain)
  message(FATAL_ERROR "record --select -> decode changed the payload")
endif()
execute_process(
  COMMAND ${DBITOOL} inspect sel.dbt --json
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE sel_inspect_rc
  OUTPUT_VARIABLE sel_inspect_json)
if(NOT sel_inspect_rc EQUAL 0)
  message(FATAL_ERROR "inspect --json on a mixed trace failed")
endif()
if(NOT sel_inspect_json MATCHES "\"scheme\": \"mixed\"")
  message(FATAL_ERROR "inspect --json does not flag the mixed trace:\n"
          "${sel_inspect_json}")
endif()
if(NOT EXISTS "${WORK_DIR}/sel_report.json")
  message(FATAL_ERROR "record --report did not write sel_report.json")
endif()
file(READ "${WORK_DIR}/sel_report.json" sel_report)
foreach(key "\"policy\"" "\"selection\"" "\"selected_cost\""
        "\"cost_model\":\"energy\"")
  if(NOT sel_report MATCHES "${key}")
    message(FATAL_ERROR "session report lacks ${key}:\n${sel_report}")
  endif()
endforeach()
run_dbitool(0 replay sel_plain.dbt --select predict:dc,ac,acdc
            --cost transitions --report pred_report.json)
file(READ "${WORK_DIR}/pred_report.json" pred_report)
if(NOT pred_report MATCHES "\"mode\":\"adaptive-predicted\"")
  message(FATAL_ERROR "replay --select predict report is not predicted:\n"
          "${pred_report}")
endif()
run_dbitool(0 replay sel_plain.dbt --select exact --csv)
run_dbitool(0 corpus --width 16 --bursts 512 --select exact:dc,ac
            --cost energy)
run_dbitool(64 record --corpus mixed --bursts 8 --select frobnicate
            -o x.dbt)                         # unknown selection mode
run_dbitool(64 record --corpus mixed --bursts 8 --select exact:dc,nope
            -o x.dbt)                         # unknown candidate scheme
run_dbitool(64 record --corpus mixed --bursts 8 --select exact:dc
            -o x.dbt)                         # one candidate is not a menu
run_dbitool(64 record --corpus mixed --bursts 8 --select exact
            --cost frobnicate -o x.dbt)       # unknown cost model
run_dbitool(64 record --corpus mixed --bursts 8 --cost energy
            -o x.dbt)                         # --cost without --select
run_dbitool(64 record --corpus mixed --bursts 8 --select exact
            --encode ac -o x.dbt)             # --select conflicts --encode
run_dbitool(64 replay sel_plain.dbt --select exact --scheme ac)
run_dbitool(64 corpus --select exact)         # corpus --select needs --width

# Zero-burst corpus sweep: ratios must print 0, never nan (regression).
execute_process(
  COMMAND ${DBITOOL} corpus --width 32 --bursts 0
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE corpus_rc
  OUTPUT_VARIABLE corpus_out)
if(NOT corpus_rc EQUAL 0)
  message(FATAL_ERROR "corpus --bursts 0 failed: ${corpus_rc}")
endif()
if(corpus_out MATCHES "nan")
  message(FATAL_ERROR "corpus --bursts 0 printed nan:\n${corpus_out}")
endif()

# Serving daemon: `serve --fork` returns only after the readiness
# handshake, a served `client` encode writes byte-for-byte the same
# encoded trace the offline `record --encode` pipeline does, served
# decode round-trips, `client --stats` renders Prometheus text, a
# zero-queue daemon maps kBusy to exit 75 (EX_TEMPFAIL), misuse is a
# usage error (64), and both shutdown paths — client --shutdown and
# SIGTERM via the pidfile — drain and remove the socket.
set(SOCK "${WORK_DIR}/dbid.sock")
run_dbitool(0 serve --socket "${SOCK}" --fork --pidfile dbid.pid)
if(NOT EXISTS "${WORK_DIR}/dbid.pid")
  message(FATAL_ERROR "serve --fork did not write the pidfile")
endif()
# Same corpus / seed / scheme / lanes as enc.dbt above: the daemon path
# must reproduce the offline encoded trace exactly.
run_dbitool(0 client --socket "${SOCK}" --tenant smoke
            --corpus float-tensor --bursts 2000 --seed 5
            --scheme ac --lanes 4 --req-bursts 512 -o served.dbt)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files served.dbt enc.dbt
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE served_cmp)
if(NOT served_cmp EQUAL 0)
  message(FATAL_ERROR "served encode differs from offline record --encode")
endif()
# Served verify of the same stream must report a bit-exact round trip
# (fresh tenant: session state persists per tenant name).
run_dbitool(0 client --socket "${SOCK}" --tenant smoke-verify
            --corpus float-tensor --bursts 2000 --seed 5
            --scheme ac --lanes 4 --verify)
# Served decode of the offline encoded trace must recover the payload
# (checked through the lossless text conversion against dec.txt).
run_dbitool(0 client --socket "${SOCK}" --tenant smoke-dec --decode enc.dbt
            -o served_dec.dbt)
run_dbitool(0 convert served_dec.dbt served_dec.txt)
file(READ "${WORK_DIR}/served_dec.txt" text_served_dec)
if(NOT text_served_dec STREQUAL text_dec)
  message(FATAL_ERROR "served decode changed the payload")
endif()
# Stats frame: Prometheus text with the build-info gauge and the
# tenants this smoke test created.
execute_process(
  COMMAND ${DBITOOL} client --socket "${SOCK}" --stats
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE stats_rc
  OUTPUT_VARIABLE stats_out)
if(NOT stats_rc EQUAL 0)
  message(FATAL_ERROR "client --stats failed: ${stats_rc}")
endif()
foreach(needle "dbi_build_info" "tenant=\"smoke\"")
  if(NOT stats_out MATCHES "${needle}")
    message(FATAL_ERROR "client --stats lacks ${needle}:\n${stats_out}")
  endif()
endforeach()
# Misuse: both subcommands require --socket; --verify conflicts with
# -o; unknown flags are named. All usage errors (64), never crashes.
run_dbitool(64 serve)
run_dbitool(64 client)
run_dbitool(64 client --socket "${SOCK}" --tenant x --verify -o y.dbt)
run_dbitool(64 serve --socket "${SOCK}" --lanse 4)
# Graceful drain via the protocol: --shutdown acks, then the daemon
# removes its socket on the way out.
run_dbitool(0 client --socket "${SOCK}" --shutdown)
foreach(attempt RANGE 50)
  if(NOT EXISTS "${SOCK}")
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(EXISTS "${SOCK}")
  message(FATAL_ERROR "daemon did not remove its socket after --shutdown")
endif()
# Backpressure: a zero-queue daemon rejects every data request with a
# typed kBusy frame, which the client maps to exit 75 (EX_TEMPFAIL).
set(BUSY_SOCK "${WORK_DIR}/dbid-busy.sock")
run_dbitool(0 serve --socket "${BUSY_SOCK}" --queue 0 --fork
            --pidfile busy.pid)
run_dbitool(75 client --socket "${BUSY_SOCK}" --tenant starved
            --source uniform --bursts 64 --seed 1)
# SIGTERM drain via the pidfile — the daemonized process must exit and
# clean up exactly like the protocol shutdown.
file(READ "${WORK_DIR}/busy.pid" busy_pid)
string(STRIP "${busy_pid}" busy_pid)
execute_process(COMMAND kill -TERM ${busy_pid} RESULT_VARIABLE kill_rc)
if(NOT kill_rc EQUAL 0)
  message(FATAL_ERROR "kill -TERM ${busy_pid} failed: ${kill_rc}")
endif()
foreach(attempt RANGE 50)
  if(NOT EXISTS "${BUSY_SOCK}")
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(EXISTS "${BUSY_SOCK}")
  message(FATAL_ERROR "daemon did not remove its socket after SIGTERM")
endif()
# A forked daemon that fails to start must surface the actual reason
# (here: a bind into a missing directory) — the child's stderr is
# /dev/null by then, so it travels through the readiness pipe.
execute_process(
  COMMAND ${DBITOOL} serve --socket "${WORK_DIR}/no-such-dir/x.sock" --fork
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE forkfail_rc
  OUTPUT_VARIABLE forkfail_out
  ERROR_VARIABLE forkfail_err)
if(forkfail_rc EQUAL 0)
  message(FATAL_ERROR "serve --fork into a missing directory exited 0")
endif()
if(NOT forkfail_err MATCHES "bind")
  message(FATAL_ERROR
          "fork startup failure lost its reason:\n${forkfail_err}")
endif()

# Trace lake: init / add / ls / verify round trip over mixed
# geometries (one member a v3 mixed-scheme trace), the campaign sweep
# with a deterministic consolidated JSON report and per-cell resume,
# then the documented failure modes — usage errors exit 64, stale or
# corrupt lakes exit 1.
run_dbitool(0 lake init lk)
run_dbitool(0 record --source uniform --bursts 1500 --seed 21 -o lk/n8.dbt)
run_dbitool(0 record --source uniform --width 32 --bursts 1000
            --seed 22 -o lk/w32.dbt)
run_dbitool(0 record --corpus mixed --bursts 1024 --seed 23
            --select exact:dc,ac -o lk/mix.dbt)
# add accepts both the path as typed and a name relative to the lake.
run_dbitool(0 lake add lk n8.dbt lk/w32.dbt mix.dbt)
run_dbitool(0 lake ls lk)
run_dbitool(0 lake ls lk --csv)
run_dbitool(0 lake verify lk)
run_dbitool(1 lake add lk n8.dbt)        # duplicate member
run_dbitool(1 lake add lk missing.dbt)   # no such trace
run_dbitool(64 lake)                     # missing subcommand
run_dbitool(64 lake frobnicate lk)       # unknown subcommand
run_dbitool(64 lake ls lk --jsonn x)     # unknown flag, named
execute_process(
  COMMAND ${DBITOOL} lake ls lk --json
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE lake_ls_rc
  OUTPUT_VARIABLE lake_ls_json)
if(NOT lake_ls_rc EQUAL 0)
  message(FATAL_ERROR "lake ls --json failed: ${lake_ls_rc}")
endif()
foreach(key "\"members\": 3" "\"name\": \"n8.dbt\"" "\"version\": 3"
        "\"encoded\": true")
  if(NOT lake_ls_json MATCHES "${key}")
    message(FATAL_ERROR "lake ls --json lacks ${key}:\n${lake_ls_json}")
  endif()
endforeach()

# Campaign sweep: schema probe, the encoded member becomes a
# deterministic "skipped" cell, and the consolidated report is
# byte-stable — across two fresh runs and across a --cells resume.
run_dbitool(0 sweep lk --schemes raw,ac --select exact:dc,ac
            -o sweep1.json)
run_dbitool(0 sweep lk --schemes raw,ac --select exact:dc,ac
            -o sweep2.json --cells sweep_cells)
run_dbitool(0 sweep lk --schemes raw,ac --select exact:dc,ac
            -o sweep3.json --cells sweep_cells)
foreach(other sweep2.json sweep3.json)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files sweep1.json ${other}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE sweep_cmp)
  if(NOT sweep_cmp EQUAL 0)
    message(FATAL_ERROR "lake sweep report is not byte-stable "
            "(sweep1.json vs ${other})")
  endif()
endforeach()
file(READ "${WORK_DIR}/sweep1.json" sweep_json)
foreach(key "\"schema\":\"dbi-lake-sweep-v1\"" "\"arms\":"
        "\"select-exact\"" "\"cells\":" "\"skipped\":"
        "\"transitions_per_burst\":")
  if(NOT sweep_json MATCHES "${key}")
    message(FATAL_ERROR "sweep report lacks ${key}:\n${sweep_json}")
  endif()
endforeach()
run_dbitool(64 sweep lk --schemes nope)        # unknown scheme slug
run_dbitool(64 sweep lk --schemes raw,raw)     # duplicate arm
run_dbitool(64 sweep lk --steps 5)             # --steps is text-trace only
run_dbitool(64 sweep trace.txt --schemes raw)  # lake flags on a text trace
run_dbitool(64 sweep lk --lanse 4)             # unknown flag, named

# Stale member detection: rewriting a member after cataloguing must
# fail the catalog's stat/CRC cross-check, not replay wrong bytes.
run_dbitool(0 record --source uniform --bursts 1500 --seed 99 -o lk/n8.dbt)
run_dbitool(1 lake ls lk)
run_dbitool(1 lake verify lk)
run_dbitool(1 sweep lk --schemes raw)
# A corrupted catalog is a clean, named failure (exit 1, never UB).
file(WRITE "${WORK_DIR}/lk/catalog.dbil" "garbage, not a catalog")
run_dbitool(1 lake ls lk)
run_dbitool(1 lake verify lk)
run_dbitool(1 sweep lk --schemes raw)

# Documented failure modes, each with its own exit code.
run_dbitool(2)                           # no command: usage
run_dbitool(64 frobnicate)               # unknown command: distinct code
run_dbitool(64 replay t.dbt --lanse 4)   # unknown flag: named, same code
run_dbitool(64 inspect t.dbt --csvv x)   # unknown flag on a flagless cmd
run_dbitool(64 gen --lanse)              # unknown flag, even with no value
run_dbitool(1 gen --bursts)              # known flag missing its value
run_dbitool(1 replay missing.dbt)        # runtime error
run_dbitool(1 record --corpus nope --bursts 1 -o x.dbt)
file(WRITE "${WORK_DIR}/malformed.txt" "dbi-trace v1 8 8\nab cd\n")
run_dbitool(1 stats malformed.txt)       # truncated burst line

message(STATUS "dbitool CLI smoke test passed")
