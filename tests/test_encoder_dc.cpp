#include <gtest/gtest.h>

#include <array>

#include "core/byte_utils.hpp"
#include "core/encoder.hpp"
#include "test_util.hpp"

namespace dbi {
namespace {

constexpr BusConfig kCfg{8, 8};

TEST(EncoderDc, NameAndFactory) {
  EXPECT_EQ(make_dc_encoder()->name(), "DBI DC");
  EXPECT_EQ(make_encoder(Scheme::kDc)->name(), "DBI DC");
}

TEST(EncoderDc, FiveOrMoreZerosInverts) {
  const BusConfig cfg{8, 4};
  // zeros: 4, 5, 3, 8.
  const Burst data(cfg, std::array<Word, 4>{0x0F, 0x07, 0x1F, 0x00});
  const auto e = make_dc_encoder()->encode(data, BusState::all_ones(cfg));
  EXPECT_FALSE(e.inverted(0));
  EXPECT_TRUE(e.inverted(1));
  EXPECT_FALSE(e.inverted(2));
  EXPECT_TRUE(e.inverted(3));
}

TEST(EncoderDc, GuaranteesAtMostFourZerosPerBeat) {
  // The JEDEC guarantee from the paper's Section I: never more than 4
  // zeros per transmitted beat (DBI line included).
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const Burst data = test::random_burst(kCfg, seed);
    const auto e = make_dc_encoder()->encode(data, BusState::all_ones(kCfg));
    for (int i = 0; i < e.length(); ++i)
      EXPECT_LE(beat_zeros(e.beat(i), kCfg), 4) << "seed=" << seed;
  }
}

TEST(EncoderDc, BeatWiseZeroOptimality) {
  // No per-beat flip can reduce the zero count of a DC encoding.
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 1000);
    const auto e = make_dc_encoder()->encode(data, BusState::all_ones(kCfg));
    for (int i = 0; i < e.length(); ++i) {
      const Beat chosen = e.beat(i);
      const Beat other{invert(chosen.dq, kCfg), !chosen.dbi};
      EXPECT_LE(beat_zeros(chosen, kCfg), beat_zeros(other, kCfg));
    }
  }
}

TEST(EncoderDc, IgnoresBusHistory) {
  const Burst data = test::random_burst(kCfg, 3);
  const auto enc = make_dc_encoder();
  EXPECT_EQ(enc->encode(data, BusState::all_ones(kCfg)).inversion_mask(),
            enc->encode(data, BusState::all_zeros()).inversion_mask());
}

TEST(EncoderDc, ExactZeroThresholdOnOddWidth) {
  // Width 7: inversion turns z zeros into (7 - z) + 1; profitable only
  // for z > 4, i.e. 2z > width + 1.
  const BusConfig cfg{7, 3};
  // zeros: 4 (keep - tie), 5 (invert), 3 (keep)
  const Burst data(cfg, std::array<Word, 3>{0b0000111, 0b0000011,
                                            0b0001111});
  const auto e = make_dc_encoder()->encode(data, BusState::all_ones(cfg));
  EXPECT_FALSE(e.inverted(0));
  EXPECT_TRUE(e.inverted(1));
  EXPECT_FALSE(e.inverted(2));
}

TEST(EncoderDc, DecodeRecoversPayload) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 77);
    EXPECT_EQ(
        make_dc_encoder()->encode(data, BusState::all_ones(kCfg)).decode(),
        data);
  }
}

TEST(EncoderDc, MeanZerosOnRandomDataMatchesTheory) {
  // E[zeros per byte] after DBI DC on uniform bytes is 837/256 ~ 3.27
  // (Section I argument); over 8 bytes ~ 26.2 — the Fig. 3 left edge.
  double zeros = 0;
  const int n = 4000;
  const auto enc = make_dc_encoder();
  for (int seed = 0; seed < n; ++seed) {
    const Burst data = test::random_burst(kCfg, static_cast<std::uint64_t>(seed));
    zeros += enc->encode(data, BusState::all_ones(kCfg)).zeros();
  }
  EXPECT_NEAR(zeros / n, 8.0 * 837.0 / 256.0, 0.15);
}

}  // namespace
}  // namespace dbi
