#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <array>
#include <sstream>

namespace dbi::workload {
namespace {

constexpr BusConfig kCfg{8, 8};

TEST(Trace, CollectGathersRequestedCount) {
  auto src = make_uniform_source(kCfg, 5);
  const BurstTrace trace = BurstTrace::collect(*src, 100);
  EXPECT_EQ(trace.size(), 100u);
  EXPECT_FALSE(trace.empty());
  EXPECT_EQ(trace.config(), kCfg);
}

TEST(Trace, CollectIsDeterministic) {
  auto a = make_uniform_source(kCfg, 5);
  auto b = make_uniform_source(kCfg, 5);
  const BurstTrace ta = BurstTrace::collect(*a, 50);
  const BurstTrace tb = BurstTrace::collect(*b, 50);
  for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tb[i]);
}

TEST(Trace, PushRejectsGeometryMismatch) {
  BurstTrace trace(kCfg);
  EXPECT_THROW(trace.push(Burst(BusConfig{8, 4})), std::invalid_argument);
  EXPECT_THROW(BurstTrace(kCfg).push(Burst(BusConfig{16, 8})),
               std::invalid_argument);
}

TEST(Trace, StatsCountPayloadProperties) {
  const BusConfig cfg{8, 2};
  BurstTrace trace(cfg);
  trace.push(Burst(cfg, std::array<Word, 2>{0xFF, 0x00}));
  trace.push(Burst(cfg, std::array<Word, 2>{0x0F, 0x0F}));
  const TraceStats s = trace.stats();
  EXPECT_EQ(s.bursts, 2);
  EXPECT_EQ(s.payload_bits, 32);
  EXPECT_EQ(s.payload_zeros, 8 + 8);
  // Burst 1: FF (0 flips from all-ones) then 00 (8 flips) = 8;
  // burst 2: 0F (4 flips from boundary) then 0F (0) = 4.
  EXPECT_EQ(s.raw_transitions, 12);
  EXPECT_NEAR(s.zero_fraction(), 0.5, 1e-12);
}

TEST(Trace, EmptyStatsAreZero) {
  const BurstTrace trace(kCfg);
  const TraceStats s = trace.stats();
  EXPECT_EQ(s.bursts, 0);
  EXPECT_DOUBLE_EQ(s.zero_fraction(), 0.0);
}

TEST(Trace, SaveLoadRoundTrip) {
  auto src = make_uniform_source(kCfg, 23);
  const BurstTrace trace = BurstTrace::collect(*src, 64);
  std::stringstream ss;
  trace.save(ss);
  const BurstTrace loaded = BurstTrace::load(ss);
  ASSERT_EQ(loaded.size(), trace.size());
  EXPECT_EQ(loaded.config(), trace.config());
  for (std::size_t i = 0; i < trace.size(); ++i)
    EXPECT_EQ(loaded[i], trace[i]) << i;
}

TEST(Trace, SaveFormatIsStable) {
  const BusConfig cfg{8, 2};
  BurstTrace trace(cfg);
  trace.push(Burst(cfg, std::array<Word, 2>{0xAB, 0x01}));
  std::stringstream ss;
  trace.save(ss);
  EXPECT_EQ(ss.str(), "dbi-trace v1 8 2\nab 1\n");
}

TEST(Trace, LoadRejectsBadHeader) {
  std::stringstream ss("not-a-trace v1 8 8\n");
  EXPECT_THROW(BurstTrace::load(ss), std::runtime_error);
  std::stringstream ss2("dbi-trace v2 8 8\n");
  EXPECT_THROW(BurstTrace::load(ss2), std::runtime_error);
}

TEST(Trace, LoadRejectsEmptyAndTrailingHeaderInput) {
  std::stringstream empty("");
  EXPECT_THROW(BurstTrace::load(empty), std::runtime_error);
  std::stringstream trailing("dbi-trace v1 8 8 extra\n");
  EXPECT_THROW(BurstTrace::load(trailing), std::runtime_error);
}

TEST(Trace, LoadRejectsUnusableGeometryWithContext) {
  try {
    std::stringstream ss("dbi-trace v1 99 8\n");
    (void)BurstTrace::load(ss);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("geometry"), std::string::npos);
  }
}

TEST(Trace, LoadRejectsOversizedWordsNamingTheLine) {
  try {
    std::stringstream ss("dbi-trace v1 8 2\nab 1\nab 1ff\n");
    (void)BurstTrace::load(ss);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("1ff"), std::string::npos) << what;
  }
}

TEST(Trace, LoadRejectsTruncatedLine) {
  // 2-word bursts; the second line lost a word.
  try {
    std::stringstream ss("dbi-trace v1 8 2\nab 01\ncd\n");
    (void)BurstTrace::load(ss);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("expected 2 words, got 1"), std::string::npos)
        << what;
  }
}

TEST(Trace, LoadRejectsOverlongLine) {
  std::stringstream ss("dbi-trace v1 8 2\nab 01 02\n");
  EXPECT_THROW(BurstTrace::load(ss), std::runtime_error);
}

TEST(Trace, LoadRejectsNonHexTokens) {
  for (const char* body : {"zz 01", "0x1 02", "1g 02", "-1 02"}) {
    std::stringstream ss(std::string("dbi-trace v1 8 2\n") + body + "\n");
    EXPECT_THROW(BurstTrace::load(ss), std::runtime_error) << body;
  }
}

TEST(Trace, LoadRejectsOverlongHexWords) {
  // 20 hex digits overflow any Word no matter the declared width.
  std::stringstream ss("dbi-trace v1 8 2\nab ffffffffffffffffffff\n");
  EXPECT_THROW(BurstTrace::load(ss), std::runtime_error);
}

TEST(Trace, LoadAcceptsBlankLinesAndWindowsLineEndings) {
  std::stringstream ss("dbi-trace v1 8 2\n\nab 01\r\n\ncd 02\n");
  const BurstTrace trace = BurstTrace::load(ss);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].word(0), 0xABu);
  EXPECT_EQ(trace[1].word(1), 0x02u);
}

TEST(Trace, CollectRejectsNegativeCount) {
  auto src = make_uniform_source(kCfg, 1);
  EXPECT_THROW(BurstTrace::collect(*src, -1), std::invalid_argument);
}

}  // namespace
}  // namespace dbi::workload
