#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <array>
#include <sstream>

namespace dbi::workload {
namespace {

constexpr BusConfig kCfg{8, 8};

TEST(Trace, CollectGathersRequestedCount) {
  auto src = make_uniform_source(kCfg, 5);
  const BurstTrace trace = BurstTrace::collect(*src, 100);
  EXPECT_EQ(trace.size(), 100u);
  EXPECT_FALSE(trace.empty());
  EXPECT_EQ(trace.config(), kCfg);
}

TEST(Trace, CollectIsDeterministic) {
  auto a = make_uniform_source(kCfg, 5);
  auto b = make_uniform_source(kCfg, 5);
  const BurstTrace ta = BurstTrace::collect(*a, 50);
  const BurstTrace tb = BurstTrace::collect(*b, 50);
  for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tb[i]);
}

TEST(Trace, PushRejectsGeometryMismatch) {
  BurstTrace trace(kCfg);
  EXPECT_THROW(trace.push(Burst(BusConfig{8, 4})), std::invalid_argument);
  EXPECT_THROW(BurstTrace(kCfg).push(Burst(BusConfig{16, 8})),
               std::invalid_argument);
}

TEST(Trace, StatsCountPayloadProperties) {
  const BusConfig cfg{8, 2};
  BurstTrace trace(cfg);
  trace.push(Burst(cfg, std::array<Word, 2>{0xFF, 0x00}));
  trace.push(Burst(cfg, std::array<Word, 2>{0x0F, 0x0F}));
  const TraceStats s = trace.stats();
  EXPECT_EQ(s.bursts, 2);
  EXPECT_EQ(s.payload_bits, 32);
  EXPECT_EQ(s.payload_zeros, 8 + 8);
  // Burst 1: FF (0 flips from all-ones) then 00 (8 flips) = 8;
  // burst 2: 0F (4 flips from boundary) then 0F (0) = 4.
  EXPECT_EQ(s.raw_transitions, 12);
  EXPECT_NEAR(s.zero_fraction(), 0.5, 1e-12);
}

TEST(Trace, EmptyStatsAreZero) {
  const BurstTrace trace(kCfg);
  const TraceStats s = trace.stats();
  EXPECT_EQ(s.bursts, 0);
  EXPECT_DOUBLE_EQ(s.zero_fraction(), 0.0);
}

TEST(Trace, SaveLoadRoundTrip) {
  auto src = make_uniform_source(kCfg, 23);
  const BurstTrace trace = BurstTrace::collect(*src, 64);
  std::stringstream ss;
  trace.save(ss);
  const BurstTrace loaded = BurstTrace::load(ss);
  ASSERT_EQ(loaded.size(), trace.size());
  EXPECT_EQ(loaded.config(), trace.config());
  for (std::size_t i = 0; i < trace.size(); ++i)
    EXPECT_EQ(loaded[i], trace[i]) << i;
}

TEST(Trace, SaveFormatIsStable) {
  const BusConfig cfg{8, 2};
  BurstTrace trace(cfg);
  trace.push(Burst(cfg, std::array<Word, 2>{0xAB, 0x01}));
  std::stringstream ss;
  trace.save(ss);
  EXPECT_EQ(ss.str(), "dbi-trace v1 8 2\nab 1\n");
}

TEST(Trace, LoadRejectsBadHeader) {
  std::stringstream ss("not-a-trace v1 8 8\n");
  EXPECT_THROW(BurstTrace::load(ss), std::runtime_error);
  std::stringstream ss2("dbi-trace v2 8 8\n");
  EXPECT_THROW(BurstTrace::load(ss2), std::runtime_error);
}

TEST(Trace, LoadRejectsOversizedWords) {
  std::stringstream ss("dbi-trace v1 8 2\nab 1ff\n");
  EXPECT_THROW(BurstTrace::load(ss), std::invalid_argument);
}

TEST(Trace, CollectRejectsNegativeCount) {
  auto src = make_uniform_source(kCfg, 1);
  EXPECT_THROW(BurstTrace::collect(*src, -1), std::invalid_argument);
}

}  // namespace
}  // namespace dbi::workload
