// Scenario corpus: named payload classes resolve, stream
// deterministically, and record to valid binary traces.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "engine/batch_encoder.hpp"
#include "trace/replay.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "workload/corpus.hpp"

namespace dbi::workload {
namespace {

constexpr BusConfig kCfg{8, 8};

TEST(Corpus, ScenarioNamesAreUniqueAndResolvable) {
  const auto scenarios = corpus_scenarios();
  EXPECT_GE(scenarios.size(), 5u);
  std::set<std::string> names;
  for (const CorpusScenario& s : scenarios) {
    EXPECT_TRUE(names.insert(std::string(s.name)).second) << s.name;
    EXPECT_FALSE(s.description.empty()) << s.name;
    auto src = make_corpus_source(s.name, kCfg, 1);
    ASSERT_NE(src, nullptr) << s.name;
    const Burst b = src->next();
    EXPECT_EQ(b.config(), kCfg) << s.name;
  }
}

TEST(Corpus, UnknownScenarioThrowsListingNames) {
  try {
    (void)make_corpus_source("no-such-scenario", kCfg, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-scenario"), std::string::npos);
    EXPECT_NE(what.find("cacheline-memcpy"), std::string::npos);
  }
}

TEST(Corpus, SourcesAreDeterministicPerSeed) {
  for (const CorpusScenario& s : corpus_scenarios()) {
    auto a = make_corpus_source(s.name, kCfg, 42);
    auto b = make_corpus_source(s.name, kCfg, 42);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(a->next(), b->next()) << s.name;
  }
}

TEST(Corpus, ScenariosDifferInPayloadStatistics) {
  // The corpus spans the coding-gain spectrum: the sparse class must be
  // zeros-dominated and the high-entropy class balanced.
  auto measure = [](std::string_view name) {
    auto src = make_corpus_source(name, kCfg, 3);
    std::int64_t zeros = 0;
    constexpr int kBursts = 400;
    for (int i = 0; i < kBursts; ++i) zeros += src->next().payload_zeros();
    return static_cast<double>(zeros) / (kBursts * 64.0);
  };
  EXPECT_GT(measure("sparse-zeros"), 0.8);
  const double uniform = measure("high-entropy");
  EXPECT_GT(uniform, 0.45);
  EXPECT_LT(uniform, 0.55);
  // Pointer-rich copies carry far more zero bytes than uniform data.
  EXPECT_GT(measure("cacheline-memcpy"), 0.55);
}

TEST(Corpus, RecordsToValidBinaryTrace) {
  for (const CorpusScenario& s : corpus_scenarios()) {
    std::ostringstream os(std::ios::binary);
    trace::TraceWriter writer(os, kCfg);
    auto src = make_corpus_source(s.name, kCfg, 7);
    for (int i = 0; i < 100; ++i) writer.write(src->next());
    writer.finish();
    const std::string image = os.str();
    const auto reader = trace::TraceReader::from_bytes(
        std::vector<std::uint8_t>(image.begin(), image.end()));
    EXPECT_EQ(reader.bursts(), 100) << s.name;
  }
}

TEST(Corpus, FillWideCorpusIsDeterministicAndMasksRemainderGroups) {
  const dbi::WideBusConfig cfg{12, 8};
  std::vector<std::uint8_t> a(static_cast<std::size_t>(cfg.bytes_per_burst()) *
                              64);
  std::vector<std::uint8_t> b(a.size());
  fill_wide_corpus("high-entropy", cfg, 9, a);
  fill_wide_corpus("high-entropy", cfg, 9, b);
  EXPECT_EQ(a, b);
  fill_wide_corpus("high-entropy", cfg, 10, b);
  EXPECT_NE(a, b);

  // Group 1 has 4 lanes: its bytes must stay inside 0x0..0xF.
  bool any_nonzero = false;
  for (std::size_t i = 1; i < a.size(); i += 2) {
    EXPECT_LE(a[i], 0x0FU) << "byte " << i;
    any_nonzero |= a[i] != 0;
  }
  EXPECT_TRUE(any_nonzero);

  EXPECT_THROW(fill_wide_corpus("no-such-scenario", cfg, 1, a),
               std::invalid_argument);
  std::vector<std::uint8_t> odd(cfg.bytes_per_burst() + 1);
  EXPECT_THROW(fill_wide_corpus("high-entropy", cfg, 1, odd),
               std::invalid_argument);
}

TEST(Corpus, WideRecordingsReplayForEveryScenario) {
  // Every scenario must stream at x32 into a valid wide trace whose
  // replay stats are reproducible.
  const dbi::WideBusConfig cfg{32, 8};
  const engine::BatchEncoder encoder(dbi::Scheme::kAc);
  for (const CorpusScenario& s : corpus_scenarios()) {
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(cfg.bytes_per_burst()) * 96);
    fill_wide_corpus(s.name, cfg, 5, bytes);
    std::ostringstream os(std::ios::binary);
    trace::TraceWriter writer(os, cfg);
    writer.write_packed(bytes);
    writer.finish();
    const std::string image = os.str();
    const auto reader = trace::TraceReader::from_bytes(
        std::vector<std::uint8_t>(image.begin(), image.end()));
    EXPECT_TRUE(reader.wide()) << s.name;
    EXPECT_EQ(reader.bursts(), 96) << s.name;
    const trace::ReplayTotals t1 = trace::replay_trace(reader, encoder, {});
    const trace::ReplayTotals t2 = trace::replay_trace(reader, encoder, {});
    EXPECT_EQ(t1.zeros, t2.zeros) << s.name;
    EXPECT_GT(t1.zeros, 0) << s.name;
  }
}

}  // namespace
}  // namespace dbi::workload
