// Trace lake: catalog round trip and corruption rejection, stale
// member detection, and the bit-exactness contract of lake replay —
// merged StreamStats AND per-burst masks must match sequentially
// replaying each member alone, at 1 and N workers, across geometries.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "lake/lake.hpp"
#include "lake/lake_replay.hpp"
#include "lake/lake_source.hpp"
#include "lake/sweep.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "workload/generators.hpp"

namespace dbi::lake {
namespace {

namespace fs = std::filesystem;

/// A fresh, unique lake directory under the system temp dir; removed
/// on destruction.
struct TempLake {
  std::string dir;

  TempLake() {
    static std::atomic<int> n{0};
    dir = (fs::temp_directory_path() /
           ("dbi_lake_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(n++)))
              .string();
    fs::create_directories(dir);
  }
  ~TempLake() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
};

/// Records a uniform payload trace at `g` into `path` through the same
/// Session + trace-sink pipeline `dbitool record` uses.
void record_trace(const std::string& path, const Geometry& g,
                  std::int64_t bursts, std::uint64_t seed,
                  std::uint32_t bursts_per_chunk = 64) {
  trace::TraceWriterOptions wopt;
  wopt.bursts_per_chunk = bursts_per_chunk;
  std::unique_ptr<trace::TraceWriter> writer;
  if (g.is_wide())
    writer = std::make_unique<trace::TraceWriter>(path, g.wide_bus(), wopt);
  else
    writer = std::make_unique<trace::TraceWriter>(path, g.bus(), wopt);
  const BusConfig gen_cfg =
      g.is_wide() ? BusConfig{8, g.burst_length()} : g.bus();
  auto generator = workload::make_uniform_source(gen_cfg, seed);
  auto source = dbi::make_generator_source(std::move(generator), bursts);
  SessionSpec spec;
  spec.policy = SchemePolicy::fixed(Scheme::kRaw);
  spec.geometry = g;
  Session session(spec);
  const auto sink = dbi::make_trace_sink(*writer);
  (void)session.run(*source, *sink);
}

/// The three-member fixture most tests use: two x8 members and one
/// wide x32, catalogued in that order.
TempLake build_lake() {
  TempLake lake;
  record_trace(lake.dir + "/a.dbt", Geometry::narrow(8, 8), 333, 7);
  record_trace(lake.dir + "/b.dbt", Geometry::narrow(8, 8), 190, 21, 48);
  record_trace(lake.dir + "/w.dbt", Geometry::wide(32, 8), 257, 5);
  LakeWriter writer = LakeWriter::create(lake.dir);
  writer.add("a.dbt");
  writer.add("b.dbt");
  writer.add("w.dbt");
  writer.write();
  return lake;
}

[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(LakeCatalog, RoundTripsEveryMemberField) {
  const TempLake lake = build_lake();
  const LakeReader reader = LakeReader::open(lake.dir);
  ASSERT_EQ(reader.members().size(), 3u);
  EXPECT_EQ(reader.total_bursts(), 333 + 190 + 257);

  const LakeMember& a = reader.members()[0];
  EXPECT_EQ(a.name, "a.dbt");
  EXPECT_EQ(a.geometry(), Geometry::narrow(8, 8));
  EXPECT_EQ(a.trace_version, 2);
  EXPECT_FALSE(a.encoded());
  EXPECT_EQ(a.stats.bursts, 333);
  EXPECT_EQ(a.first_burst, 0);
  const LakeMember& b = reader.members()[1];
  EXPECT_EQ(b.first_burst, 333);
  const LakeMember& w = reader.members()[2];
  EXPECT_EQ(w.name, "w.dbt");
  EXPECT_TRUE(w.wide());
  EXPECT_EQ(w.geometry(), Geometry::wide(32, 8));
  EXPECT_EQ(w.first_burst, 333 + 190);

  // Every catalog field must agree with the member file itself: the
  // deep check re-reads each through the full trace parser.
  EXPECT_NO_THROW(reader.verify_members());

  // A catalog survives a write -> append -> write cycle untouched.
  LakeWriter again = LakeWriter::append(lake.dir);
  again.write();
  const LakeReader reread = LakeReader::open(lake.dir);
  ASSERT_EQ(reread.members().size(), 3u);
  EXPECT_EQ(reread.members()[2].stats.raw_transitions,
            w.stats.raw_transitions);
}

TEST(LakeCatalog, RejectsCorruptImages) {
  const TempLake lake = build_lake();
  const std::vector<std::uint8_t> image =
      read_file(lake.dir + "/" + kCatalogName);
  ASSERT_GE(image.size(), kLakeHeaderBytes + kLakeFooterBytes);

  // Pristine image parses; every single-byte flip is rejected (CRC),
  // as are truncations at every boundary the parser walks.
  EXPECT_NO_THROW((void)LakeReader::from_bytes(image));
  for (const std::size_t at :
       {std::size_t{0}, std::size_t{4}, std::size_t{9},
        image.size() / 2, image.size() - 5}) {
    std::vector<std::uint8_t> bad = image;
    bad[at] ^= 0x40;
    EXPECT_THROW((void)LakeReader::from_bytes(bad), LakeError) << at;
  }
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, kLakeHeaderBytes,
        image.size() - 3}) {
    std::vector<std::uint8_t> bad(image.begin(),
                                  image.begin() +
                                      static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)LakeReader::from_bytes(bad), LakeError) << keep;
  }
  // Trailing garbage after the end magic is not "extra room", it is
  // corruption.
  std::vector<std::uint8_t> padded = image;
  padded.push_back(0);
  EXPECT_THROW((void)LakeReader::from_bytes(padded), LakeError);
}

TEST(LakeCatalog, DetectsStaleMembers) {
  const TempLake lake = build_lake();
  // Rewrite member b with different payload (and different CRC): the
  // catalog's stat + footer-CRC cross-check must fail loudly on open.
  record_trace(lake.dir + "/b.dbt", Geometry::narrow(8, 8), 190, 99, 48);
  EXPECT_THROW((void)LakeReader::open(lake.dir), LakeError);

  // Opening with the stale check off still works (the catalog itself
  // is intact) — but the deep verification names the bad member.
  LakeOptions opt;
  opt.check_members = false;
  const LakeReader reader = LakeReader::open(lake.dir, opt);
  try {
    reader.verify_members();
    FAIL() << "verify_members accepted a rewritten member";
  } catch (const LakeError& e) {
    EXPECT_NE(std::string(e.what()).find("b.dbt"), std::string::npos)
        << e.what();
  }

  // Truncation is staleness too (the size check catches it before any
  // byte of the member is trusted).
  fs::resize_file(lake.dir + "/a.dbt", 40);
  EXPECT_THROW((void)LakeReader::open(lake.dir), LakeError);
}

TEST(LakeCatalog, RejectsUnsafeMemberNames) {
  for (const char* name : {"", "/abs.dbt", "../up.dbt", "a/../b.dbt",
                           "a//b.dbt", "dir/.", "back\\slash.dbt"}) {
    EXPECT_THROW((void)validate_member_name(name), LakeError) << name;
  }
  EXPECT_NO_THROW((void)validate_member_name("sub/dir/trace.dbt"));
}

/// Per-member masks collected through a replay callback.
using MaskMap = std::map<std::size_t, std::vector<std::uint64_t>>;

[[nodiscard]] LakeReplayResult replay_collecting(const LakeReader& lake,
                                                 const SessionSpec& spec,
                                                 int workers,
                                                 MaskMap& masks) {
  std::mutex mu;
  LakeReplayOptions opt;
  opt.workers = workers;
  opt.on_results = [&](std::size_t member, std::int64_t first_burst,
                       std::span<const engine::BurstResult> results) {
    const std::scoped_lock lock(mu);
    std::vector<std::uint64_t>& out = masks[member];
    const auto need =
        static_cast<std::size_t>(first_burst) + results.size();
    if (out.size() < need) out.resize(need);
    for (std::size_t i = 0; i < results.size(); ++i)
      out[static_cast<std::size_t>(first_burst) + i] =
          results[i].invert_mask;
  };
  return replay_lake(lake, spec, opt);
}

TEST(LakeReplay, ParallelMatchesSequentialMatchesPerFile) {
  const TempLake lake = build_lake();
  const LakeReader reader = LakeReader::open(lake.dir);

  for (const Scheme scheme : {Scheme::kAc, Scheme::kOpt}) {
    SessionSpec spec;
    spec.policy = SchemePolicy::fixed(scheme);
    spec.lanes = 2;

    // Reference: each member replayed alone through its own Session.
    std::vector<StreamStats> ref_stats;
    MaskMap ref_masks;
    for (std::size_t k = 0; k < reader.members().size(); ++k) {
      const auto tr = trace::TraceReader::open(reader.member_path(k));
      SessionSpec s = spec;
      s.geometry = reader.members()[k].geometry();
      Session session(s);
      const auto source = dbi::make_trace_source(tr);
      const auto sink = dbi::make_observer_sink(
          [&ref_masks, k](std::int64_t first,
                          std::span<const engine::BurstResult> results) {
            std::vector<std::uint64_t>& out = ref_masks[k];
            for (std::size_t i = 0; i < results.size(); ++i) {
              const auto at = static_cast<std::size_t>(first) + i;
              if (out.size() <= at) out.resize(at + 1);
              out[at] = results[i].invert_mask;
            }
          });
      ref_stats.push_back(session.run(*source, *sink));
    }

    for (const int workers : {1, 3}) {
      MaskMap masks;
      const LakeReplayResult got =
          replay_collecting(reader, spec, workers, masks);
      ASSERT_EQ(got.member_stats.size(), ref_stats.size());
      StreamStats sum;
      for (std::size_t k = 0; k < ref_stats.size(); ++k) {
        sum += ref_stats[k];
        EXPECT_EQ(got.member_stats[k].bursts, ref_stats[k].bursts)
            << "member " << k << " workers " << workers;
        EXPECT_EQ(got.member_stats[k].zeros, ref_stats[k].zeros)
            << "member " << k << " workers " << workers;
        EXPECT_EQ(got.member_stats[k].transitions, ref_stats[k].transitions)
            << "member " << k << " workers " << workers;
        EXPECT_EQ(masks[k], ref_masks[k])
            << "member " << k << " workers " << workers;
      }
      EXPECT_EQ(got.totals.bursts, sum.bursts);
      EXPECT_EQ(got.totals.zeros, sum.zeros);
      EXPECT_EQ(got.totals.transitions, sum.transitions);
    }
  }
}

TEST(LakeReplay, ReadaheadOffIsBitExactToo) {
  const TempLake lake = build_lake();
  const LakeReader reader = LakeReader::open(lake.dir);
  SessionSpec spec;
  spec.policy = SchemePolicy::fixed(Scheme::kAc);

  LakeReplayOptions with;
  LakeReplayOptions without;
  without.readahead = false;
  const LakeReplayResult a = replay_lake(reader, spec, with);
  const LakeReplayResult b = replay_lake(reader, spec, without);
  EXPECT_EQ(a.totals.zeros, b.totals.zeros);
  EXPECT_EQ(a.totals.transitions, b.totals.transitions);
  EXPECT_EQ(a.totals.bursts, b.totals.bursts);
}

TEST(LakeSource, ConcatenatedSessionMatchesSummedPerFileReplay) {
  const TempLake lake = build_lake();
  const LakeReader reader = LakeReader::open(lake.dir);
  const Geometry g = Geometry::narrow(8, 8);

  for (const int lanes : {1, 3}) {
    SessionSpec spec;
    spec.policy = SchemePolicy::fixed(Scheme::kOpt);
    spec.geometry = g;
    spec.lanes = lanes;

    // Reference: the two x8 members replayed alone, totals summed and
    // masks concatenated in catalog order.
    StreamStats ref;
    std::vector<std::uint64_t> ref_masks;
    for (std::size_t k = 0; k < reader.members().size(); ++k) {
      if (reader.members()[k].geometry() != g) continue;
      const auto tr = trace::TraceReader::open(reader.member_path(k));
      Session session(spec);
      const auto source = dbi::make_trace_source(tr);
      const auto sink = dbi::make_observer_sink(
          [&ref_masks](std::int64_t, std::span<const engine::BurstResult> r) {
            for (const engine::BurstResult& b : r)
              ref_masks.push_back(b.invert_mask);
          });
      ref += session.run(*source, *sink);
    }

    // Lake source: one Session over the concatenated stream. Member
    // boundaries reset the bus state, so totals AND masks must be
    // bit-exact against the per-file replays.
    Session session(spec);
    const auto source = make_lake_source(reader);
    std::vector<std::uint64_t> got_masks;
    std::int64_t expected_next = 0;
    const auto sink = dbi::make_observer_sink(
        [&](std::int64_t first, std::span<const engine::BurstResult> r) {
          EXPECT_EQ(first, expected_next);  // sink-facing bursts continuous
          expected_next = first + static_cast<std::int64_t>(r.size());
          for (const engine::BurstResult& b : r)
            got_masks.push_back(b.invert_mask);
        });
    const StreamStats got = session.run(*source, *sink);
    EXPECT_EQ(got.bursts, ref.bursts) << "lanes " << lanes;
    EXPECT_EQ(got.zeros, ref.zeros) << "lanes " << lanes;
    EXPECT_EQ(got.transitions, ref.transitions) << "lanes " << lanes;
    EXPECT_EQ(got_masks, ref_masks) << "lanes " << lanes;
  }

  // Readahead off serves the identical stream.
  SessionSpec spec;
  spec.policy = SchemePolicy::fixed(Scheme::kAc);
  spec.geometry = g;
  LakeSourceOptions no_ra;
  no_ra.readahead = false;
  Session s1(spec);
  Session s2(spec);
  const auto src1 = make_lake_source(reader);
  const auto src2 = make_lake_source(reader, no_ra);
  const StreamStats t1 = s1.run(*src1);
  const StreamStats t2 = s2.run(*src2);
  EXPECT_EQ(t1.zeros, t2.zeros);
  EXPECT_EQ(t1.transitions, t2.transitions);

  // No member at the bound geometry: a named, typed error.
  Session s3([] {
    SessionSpec sp;
    sp.policy = SchemePolicy::fixed(Scheme::kAc);
    sp.geometry = Geometry::narrow(16, 8);
    return sp;
  }());
  const auto src3 = make_lake_source(reader);
  EXPECT_THROW((void)s3.run(*src3), std::invalid_argument);
}

TEST(LakeSweep, DeterministicAndResumable) {
  const TempLake lake = build_lake();
  const LakeReader reader = LakeReader::open(lake.dir);

  SweepOptions opt;
  opt.arms.push_back({"raw", SchemePolicy::fixed(Scheme::kRaw), {}});
  opt.arms.push_back({"ac", SchemePolicy::fixed(Scheme::kAc), {}});
  const std::string once = run_sweep(reader, opt);
  const std::string twice = run_sweep(reader, opt);
  EXPECT_EQ(once, twice);
  EXPECT_NE(once.find("\"schema\":\"dbi-lake-sweep-v1\""),
            std::string::npos);
  EXPECT_NE(once.find("\"arm\":\"ac\",\"member\":\"w.dbt\""),
            std::string::npos);

  // Per-cell resume: a cells directory populated by the first run
  // reproduces the identical report on the second.
  SweepOptions cached = opt;
  cached.cells_dir = lake.dir + "/cells";
  EXPECT_EQ(run_sweep(reader, cached), once);
  EXPECT_EQ(run_sweep(reader, cached), once);

  SweepOptions dup = opt;
  dup.arms.push_back({"ac", SchemePolicy::fixed(Scheme::kAc), {}});
  EXPECT_THROW((void)run_sweep(reader, dup), std::invalid_argument);
}

}  // namespace
}  // namespace dbi::lake
