#include "core/encoding.hpp"

#include <gtest/gtest.h>

#include <array>

#include "core/byte_utils.hpp"
#include "test_util.hpp"

namespace dbi {
namespace {

constexpr BusConfig kCfg{8, 8};

Burst sample_burst() {
  const std::array<Word, 8> words = {0x8E, 0x86, 0x96, 0xE9,
                                     0x7D, 0xB7, 0x57, 0xC4};
  return Burst(kCfg, words);
}

TEST(EncodedBurst, MaskZeroTransmitsVerbatim) {
  const Burst data = sample_burst();
  const EncodedBurst e = EncodedBurst::from_inversion_mask(data, 0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(e.beat(i).dq, data.word(i));
    EXPECT_TRUE(e.beat(i).dbi);
    EXPECT_FALSE(e.inverted(i));
  }
  EXPECT_EQ(e.inversion_mask(), 0u);
}

TEST(EncodedBurst, MaskInvertsSelectedBeats) {
  const Burst data = sample_burst();
  const EncodedBurst e = EncodedBurst::from_inversion_mask(data, 0b00000101);
  EXPECT_EQ(e.beat(0).dq, invert(data.word(0), kCfg));
  EXPECT_FALSE(e.beat(0).dbi);
  EXPECT_EQ(e.beat(1).dq, data.word(1));
  EXPECT_TRUE(e.beat(1).dbi);
  EXPECT_EQ(e.beat(2).dq, invert(data.word(2), kCfg));
  EXPECT_EQ(e.inversion_mask(), 0b00000101u);
}

TEST(EncodedBurst, RejectsMaskBeyondBurstLength) {
  EXPECT_THROW(EncodedBurst::from_inversion_mask(sample_burst(), 1u << 8),
               std::invalid_argument);
}

TEST(EncodedBurst, ZerosCountsDbiLine) {
  // 0x0F has 4 zeros; inverted beat adds the DBI-line zero.
  const Burst data(BusConfig{8, 2}, std::array<Word, 2>{0x0F, 0x0F});
  EXPECT_EQ(EncodedBurst::from_inversion_mask(data, 0b00).zeros(), 8);
  // Inverting beat 0: its payload now has 4 zeros too (0xF0), +1 DBI.
  EXPECT_EQ(EncodedBurst::from_inversion_mask(data, 0b01).zeros(), 9);
  EXPECT_EQ(EncodedBurst::from_inversion_mask(data, 0b11).zeros(), 10);
}

TEST(EncodedBurst, TransitionsAgainstBoundary) {
  const BusConfig cfg{8, 2};
  const Burst data(cfg, std::array<Word, 2>{0xFF, 0x00});
  const BusState prev = BusState::all_ones(cfg);
  // Beat0 0xFF (no change), beat1 0x00: 8 DQ lines flip.
  EXPECT_EQ(EncodedBurst::from_inversion_mask(data, 0b00).transitions(prev),
            8);
  // Inverting beat1 transmits 0xFF again but toggles the DBI line twice
  // (1 -> 0 between beats, and the initial state was 1): beats are
  // {0xFF,1},{0xFF,0} => only the DBI toggle remains.
  EXPECT_EQ(EncodedBurst::from_inversion_mask(data, 0b10).transitions(prev),
            1);
}

TEST(EncodedBurst, RawBurstIgnoresDbiLine) {
  const BusConfig cfg{8, 2};
  std::vector<Beat> beats = {{0x0F, true}, {0x0F, true}};
  const EncodedBurst raw(cfg, beats, /*uses_dbi_line=*/false);
  EXPECT_EQ(raw.zeros(), 8);
  // DBI line excluded from transitions as well.
  const EncodedBurst raw2(cfg, {{0x0F, false}, {0x0F, true}},
                          /*uses_dbi_line=*/false);
  EXPECT_EQ(raw2.transitions(BusState::all_ones(cfg)),
            4);  // only the first-beat DQ flips
}

TEST(EncodedBurst, DecodeRoundTripsAnyMask) {
  const Burst data = sample_burst();
  for (std::uint64_t mask = 0; mask < 256; mask += 13) {
    const EncodedBurst e = EncodedBurst::from_inversion_mask(data, mask);
    EXPECT_EQ(e.decode(), data) << "mask=" << mask;
  }
}

TEST(EncodedBurst, DecodeRoundTripsRandomBursts) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const Burst data = test::random_burst(kCfg, seed);
    const std::uint64_t mask = seed * 0x9E3779B9ull % 256;
    EXPECT_EQ(EncodedBurst::from_inversion_mask(data, mask).decode(), data);
  }
}

TEST(EncodedBurst, FinalStateIsLastBeat) {
  const Burst data = sample_burst();
  const EncodedBurst e = EncodedBurst::from_inversion_mask(data, 0b10000000);
  EXPECT_EQ(e.final_state().last.dq, invert(data.word(7), kCfg));
  EXPECT_FALSE(e.final_state().last.dbi);
}

TEST(EncodedBurst, StatsCombinesZerosAndTransitions) {
  const Burst data = sample_burst();
  const BusState prev = BusState::all_ones(kCfg);
  const EncodedBurst e = EncodedBurst::from_inversion_mask(data, 0x5A);
  const BurstStats s = e.stats(prev);
  EXPECT_EQ(s.zeros, e.zeros());
  EXPECT_EQ(s.transitions, e.transitions(prev));
}

TEST(BurstStats, Arithmetic) {
  const BurstStats a{3, 4};
  const BurstStats b{10, 20};
  EXPECT_EQ((a + b).zeros, 13);
  EXPECT_EQ((a + b).transitions, 24);
  BurstStats c = a;
  c += b;
  EXPECT_EQ(c, a + b);
}

TEST(EncodedBurst, ToStringFormat) {
  const BusConfig cfg{8, 1};
  const Burst data(cfg, std::array<Word, 1>{0b10001110});
  EXPECT_EQ(EncodedBurst::from_inversion_mask(data, 0).to_string(),
            "10001110 dbi=1\n");
  EXPECT_EQ(EncodedBurst::from_inversion_mask(data, 1).to_string(),
            "01110001 dbi=0\n");
}

TEST(EncodedBurst, RejectsGeometryViolations) {
  EXPECT_THROW(EncodedBurst(kCfg, std::vector<Beat>(3)),
               std::invalid_argument);
  std::vector<Beat> beats(8);
  beats[0].dq = 0x1FF;  // wider than the lane
  EXPECT_THROW(EncodedBurst(kCfg, beats), std::invalid_argument);
}

}  // namespace
}  // namespace dbi
