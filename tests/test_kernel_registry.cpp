// The kernel registry's contract: resolution order and overrides are
// deterministic, misuse throws with the candidate list, and — the core
// guarantee — every compiled-in variant is bit-exact against the
// portable "swar" reference on every path: same masks, same stats, same
// threaded state, same decoded bytes, with or without a pool.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "api/kernels.hpp"
#include "api/session.hpp"
#include "core/encoder.hpp"
#include "engine/batch_decoder.hpp"
#include "engine/batch_encoder.hpp"
#include "engine/kernel_registry.hpp"
#include "engine/shard_pool.hpp"
#include "workload/rng.hpp"

namespace dbi {
namespace {

using engine::KernelVariant;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  workload::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

/// Variants actually usable on this host (ISA present). Always contains
/// at least the portable reference.
std::vector<const KernelVariant*> usable_variants() {
  std::vector<const KernelVariant*> out;
  for (const KernelVariant* k : engine::registered_kernels())
    if (engine::isa_available(k->isa())) out.push_back(k);
  return out;
}

// ------------------------------------------------------------ resolution

TEST(KernelRegistry, PortableIsRegisteredLastAndAlwaysAvailable) {
  const auto kernels = engine::registered_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.back(), &engine::portable_kernel());
  EXPECT_EQ(engine::portable_kernel().name(), "swar");
  EXPECT_TRUE(engine::isa_available(engine::KernelIsa::kPortable));
  // Priority order is most-specialised first: portable appears once,
  // at the end, so the auto scan always terminates on it.
  for (const KernelVariant* k : kernels.first(kernels.size() - 1))
    EXPECT_NE(k->isa(), engine::KernelIsa::kPortable) << k->name();
}

TEST(KernelRegistry, FindAndResolveByName) {
  for (const KernelVariant* k : engine::registered_kernels())
    EXPECT_EQ(engine::find_kernel(k->name()), k);
  EXPECT_EQ(engine::find_kernel("frobnicate"), nullptr);
  EXPECT_EQ(&engine::resolve_kernel("swar"), &engine::portable_kernel());
  // "" and "auto" resolve to the hardware default: the first variant
  // whose ISA the host reports.
  const KernelVariant& autok = engine::resolve_kernel("auto");
  EXPECT_EQ(&engine::resolve_kernel(""), &autok);
  EXPECT_EQ(usable_variants().front(), &autok);
}

TEST(KernelRegistry, UnknownNameThrowsWithCandidates) {
  try {
    static_cast<void>(engine::resolve_kernel("frobnicate"));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("frobnicate"), std::string::npos) << msg;
    EXPECT_NE(msg.find("swar"), std::string::npos)
        << "candidate list missing: " << msg;
  }
}

TEST(KernelRegistry, EnvOverrideForcesAndReleases) {
  // DBI_KERNEL is read per default_kernel() call, so a test can force
  // the portable reference (the SIMD force-off switch) and release it.
  ASSERT_EQ(setenv("DBI_KERNEL", "swar", 1), 0);
  EXPECT_EQ(&engine::default_kernel(), &engine::portable_kernel());
  ASSERT_EQ(setenv("DBI_KERNEL", "no-such-kernel", 1), 0);
  EXPECT_THROW(static_cast<void>(engine::default_kernel()),
               std::invalid_argument);
  ASSERT_EQ(unsetenv("DBI_KERNEL"), 0);
  EXPECT_EQ(&engine::default_kernel(), usable_variants().front());
}

TEST(KernelRegistry, AvailableKernelsMirrorsRegistry) {
  const std::vector<KernelInfo> infos = available_kernels();
  const auto kernels = engine::registered_kernels();
  ASSERT_EQ(infos.size(), kernels.size());
  int selected = 0;
  for (std::size_t i = 0; i < infos.size(); ++i) {
    EXPECT_EQ(infos[i].name, kernels[i]->name());
    EXPECT_EQ(infos[i].isa, engine::isa_name(kernels[i]->isa()));
    EXPECT_FALSE(infos[i].envelope.empty());
    if (infos[i].selected) {
      ++selected;
      EXPECT_TRUE(infos[i].available);
    }
  }
  EXPECT_EQ(selected, 1);
  EXPECT_TRUE(infos.back().available);  // the portable reference
}

// ------------------------------------------------------- encode parity

constexpr Scheme kFixedSchemes[] = {Scheme::kRaw, Scheme::kDc, Scheme::kAc,
                                    Scheme::kAcDc};

/// Narrow packed-stream parity: variant vs portable, same bytes, same
/// threaded state, burst by burst.
void expect_packed_parity(const KernelVariant& variant, Scheme scheme,
                          const BusConfig& cfg, int bursts, bool reset,
                          std::uint64_t seed) {
  engine::BatchEncoder ref(scheme);
  ref.set_kernel(engine::portable_kernel());
  engine::BatchEncoder dut(scheme);
  dut.set_kernel(variant);

  const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());
  const auto bytes =
      random_bytes(static_cast<std::size_t>(bursts) * bb, seed);
  std::vector<engine::BurstResult> want(static_cast<std::size_t>(bursts));
  std::vector<engine::BurstResult> got(static_cast<std::size_t>(bursts));

  BusState ref_state = BusState::all_ones(cfg);
  BusState dut_state = BusState::all_ones(cfg);
  BurstStats ref_totals, dut_totals;
  for (int i = 0; i < bursts; ++i) {
    if (reset) {
      ref_state = BusState::all_ones(cfg);
      dut_state = BusState::all_ones(cfg);
    }
    const std::span<const std::uint8_t> burst(bytes.data() +
                                                  static_cast<std::size_t>(i) *
                                                      bb,
                                              bb);
    ref_totals += ref.encode_packed(burst, cfg, ref_state,
                                    want.data() + i);
    dut_totals += dut.encode_packed(burst, cfg, dut_state,
                                    got.data() + i);
    ASSERT_EQ(got[static_cast<std::size_t>(i)].invert_mask,
              want[static_cast<std::size_t>(i)].invert_mask)
        << variant.name() << " " << scheme_name(scheme) << " burst " << i
        << " bl " << cfg.burst_length;
    ASSERT_EQ(got[static_cast<std::size_t>(i)].stats,
              want[static_cast<std::size_t>(i)].stats)
        << variant.name() << " " << scheme_name(scheme) << " burst " << i;
    ASSERT_EQ(dut_state, ref_state)
        << variant.name() << " " << scheme_name(scheme) << " state after "
        << i;
  }
  EXPECT_EQ(dut_totals, ref_totals);

  // Whole-stream call (the vector path sees 8+ bursts at once, with a
  // tail) must agree with the burst-by-burst loop above.
  if (!reset) {
    BusState stream_state = BusState::all_ones(cfg);
    std::vector<engine::BurstResult> stream(static_cast<std::size_t>(bursts));
    const BurstStats stream_totals =
        dut.encode_packed(bytes, cfg, stream_state, stream.data());
    EXPECT_EQ(stream_totals, ref_totals) << variant.name();
    EXPECT_EQ(stream_state, ref_state) << variant.name();
    for (int i = 0; i < bursts; ++i) {
      ASSERT_EQ(stream[static_cast<std::size_t>(i)].invert_mask,
                want[static_cast<std::size_t>(i)].invert_mask)
          << variant.name() << " stream burst " << i;
      ASSERT_EQ(stream[static_cast<std::size_t>(i)].stats,
                want[static_cast<std::size_t>(i)].stats)
          << variant.name() << " stream burst " << i;
    }
  }
}

TEST(KernelParity, NarrowPackedAllVariantsSchemesPolicies) {
  for (const KernelVariant* v : usable_variants())
    for (Scheme s : kFixedSchemes)
      for (bool reset : {false, true}) {
        // In-envelope (bl 8) and envelope-fallback (bl 12) geometries;
        // 67 bursts leaves a 3-burst tail after the 8-wide blocks.
        expect_packed_parity(*v, s, BusConfig{8, 8}, 67, reset, 11);
        expect_packed_parity(*v, s, BusConfig{8, 12}, 20, reset, 13);
      }
}

/// Wide packed-stream parity (x12 exercises the remainder group, x16
/// and x64 the strided full-group kernels).
void expect_wide_parity(const KernelVariant& variant, Scheme scheme,
                        const WideBusConfig& cfg, int bursts,
                        std::uint64_t seed) {
  engine::BatchEncoder ref(scheme);
  ref.set_kernel(engine::portable_kernel());
  engine::BatchEncoder dut(scheme);
  dut.set_kernel(variant);

  const auto groups = static_cast<std::size_t>(cfg.groups());
  const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());
  auto bytes = random_bytes(static_cast<std::size_t>(bursts) * bb, seed);
  // Remainder-group bytes must fit the group's narrower mask.
  if (cfg.width % 8 != 0)
    for (std::size_t i = groups - 1; i < bytes.size(); i += groups)
      bytes[i] &= static_cast<std::uint8_t>(
          cfg.group_mask(cfg.groups() - 1));

  const std::size_t slots = static_cast<std::size_t>(bursts) * groups;
  std::vector<engine::BurstResult> want(slots), got(slots);
  std::vector<BusState> ref_states(groups), dut_states(groups);
  for (std::size_t g = 0; g < groups; ++g)
    ref_states[g] = dut_states[g] =
        BusState::all_ones(cfg.group_config(static_cast<int>(g)));

  const BurstStats want_totals =
      ref.encode_packed_wide(bytes, cfg, ref_states, want.data());
  const BurstStats got_totals =
      dut.encode_packed_wide(bytes, cfg, dut_states, got.data());
  EXPECT_EQ(got_totals, want_totals) << variant.name();
  for (std::size_t g = 0; g < groups; ++g)
    ASSERT_EQ(dut_states[g], ref_states[g]) << variant.name() << " group "
                                            << g;
  for (std::size_t i = 0; i < slots; ++i) {
    ASSERT_EQ(got[i].invert_mask, want[i].invert_mask)
        << variant.name() << " " << scheme_name(scheme) << " slot " << i;
    ASSERT_EQ(got[i].stats, want[i].stats)
        << variant.name() << " " << scheme_name(scheme) << " slot " << i;
  }
}

TEST(KernelParity, WidePackedAllVariantsAcrossGeometries) {
  for (const KernelVariant* v : usable_variants())
    for (Scheme s : kFixedSchemes) {
      expect_wide_parity(*v, s, WideBusConfig{12, 8}, 33, 17);
      expect_wide_parity(*v, s, WideBusConfig{16, 8}, 33, 19);
      expect_wide_parity(*v, s, WideBusConfig{64, 8}, 33, 23);
      expect_wide_parity(*v, s, WideBusConfig{64, 16}, 9, 29);
    }
}

// ------------------------------------------------------- decode parity

TEST(KernelParity, NarrowDecodeAllVariantsMatchesPortableAndRoundTrips) {
  for (const KernelVariant* v : usable_variants())
    for (const BusConfig cfg : {BusConfig{8, 8}, BusConfig{8, 16},
                                BusConfig{8, 12}, BusConfig{5, 8}}) {
      engine::BatchEncoder enc(Scheme::kAcDc);
      enc.set_kernel(engine::portable_kernel());
      engine::BatchDecoder ref;
      ref.set_kernel(engine::portable_kernel());
      engine::BatchDecoder dut;
      dut.set_kernel(*v);

      const int bursts = 37;
      const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());
      auto payload =
          random_bytes(static_cast<std::size_t>(bursts) * bb, 101);
      if (cfg.width < 8)
        for (auto& b : payload)
          b &= static_cast<std::uint8_t>(cfg.dq_mask());

      BusState state = BusState::all_ones(cfg);
      std::vector<engine::BurstResult> results(
          static_cast<std::size_t>(bursts));
      enc.encode_packed(payload, cfg, state, results.data());
      std::vector<std::uint64_t> masks;
      for (const auto& r : results) masks.push_back(r.invert_mask);

      // Materialise the wire stream, then decode it with both kernels.
      std::vector<std::uint8_t> tx(payload.size());
      ref.apply_packed(payload, masks, cfg, tx);
      std::vector<std::uint8_t> want(tx.size()), got(tx.size());
      ref.decode_packed(tx, masks, cfg, want);
      dut.decode_packed(tx, masks, cfg, got);
      ASSERT_EQ(got, want) << v->name() << " width " << cfg.width << " bl "
                           << cfg.burst_length;
      ASSERT_EQ(got, payload) << v->name() << " round trip";

      // In-place decode (out aliases tx exactly).
      dut.decode_packed(tx, masks, cfg, tx);
      ASSERT_EQ(tx, payload) << v->name() << " in-place";
    }
}

TEST(KernelParity, WideDecodeAllVariantsMatchesPortableAndRoundTrips) {
  for (const KernelVariant* v : usable_variants())
    for (const WideBusConfig cfg :
         {WideBusConfig{64, 8}, WideBusConfig{64, 16}, WideBusConfig{32, 8},
          WideBusConfig{60, 8}}) {
      engine::BatchEncoder enc(Scheme::kAc);
      enc.set_kernel(engine::portable_kernel());
      engine::BatchDecoder ref;
      ref.set_kernel(engine::portable_kernel());
      engine::BatchDecoder dut;
      dut.set_kernel(*v);

      const int bursts = 21;
      const auto groups = static_cast<std::size_t>(cfg.groups());
      const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());
      auto payload =
          random_bytes(static_cast<std::size_t>(bursts) * bb, 211);
      if (cfg.width % 8 != 0)
        for (std::size_t i = groups - 1; i < payload.size(); i += groups)
          payload[i] &= static_cast<std::uint8_t>(
              cfg.group_mask(cfg.groups() - 1));

      std::vector<BusState> states(groups);
      for (std::size_t g = 0; g < groups; ++g)
        states[g] = BusState::all_ones(cfg.group_config(static_cast<int>(g)));
      std::vector<engine::BurstResult> results(
          static_cast<std::size_t>(bursts) * groups);
      enc.encode_packed_wide(payload, cfg, states, results.data());
      std::vector<std::uint64_t> masks;
      for (const auto& r : results) masks.push_back(r.invert_mask);

      std::vector<std::uint8_t> tx(payload.size());
      ref.apply_packed_wide(payload, masks, cfg, tx);
      std::vector<std::uint8_t> want(tx.size()), got(tx.size());
      ref.decode_packed_wide(tx, masks, cfg, want);
      dut.decode_packed_wide(tx, masks, cfg, got);
      ASSERT_EQ(got, want) << v->name() << " width " << cfg.width;
      ASSERT_EQ(got, payload) << v->name() << " round trip width "
                              << cfg.width;
    }
}

// The width-60 case above is also a regression guard: 8 groups with a
// narrow remainder used to take the all-groups-full fast path, XORing
// a full 0xFF into the width-4 remainder group's flagged beats.

// ------------------------------------------------- pool determinism

TEST(KernelParity, PooledDecodeIsDeterministicPerVariant) {
  // Enough bursts that shard_bursts actually splits (>= 2 * 256).
  const BusConfig cfg{8, 8};
  const int bursts = 2048;
  const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());
  const auto tx = random_bytes(static_cast<std::size_t>(bursts) * bb, 307);
  std::vector<std::uint64_t> masks;
  workload::Xoshiro256 rng(308);
  for (int i = 0; i < bursts; ++i) masks.push_back(rng.next() & 0xFFU);

  engine::ShardPool pool(4);
  for (const KernelVariant* v : usable_variants()) {
    engine::BatchDecoder dec;
    dec.set_kernel(*v);
    std::vector<std::uint8_t> serial(tx.size()), pooled(tx.size());
    dec.decode_packed(tx, masks, cfg, serial, nullptr);
    dec.decode_packed(tx, masks, cfg, pooled, &pool);
    ASSERT_EQ(pooled, serial) << v->name();
  }
}

TEST(KernelParity, PooledWideEncodeIsDeterministicPerVariant) {
  const WideBusConfig cfg{64, 8};
  const int bursts = 512;
  const auto bytes = random_bytes(
      static_cast<std::size_t>(bursts) *
          static_cast<std::size_t>(cfg.bytes_per_burst()),
      401);
  engine::ShardPool pool(3);
  for (const KernelVariant* v : usable_variants()) {
    engine::BatchEncoder enc(Scheme::kAcDc);
    enc.set_kernel(*v);

    auto run = [&](engine::ShardPool* p) {
      std::vector<BusState> states(8);
      for (int g = 0; g < 8; ++g)
        states[static_cast<std::size_t>(g)] =
            BusState::all_ones(cfg.group_config(g));
      engine::WideLaneTask task;
      task.bytes = bytes;
      task.states = states;
      std::vector<engine::WideLaneTask> lanes{task};
      enc.encode_wide_lanes(cfg, lanes, p);
      return lanes[0].totals;
    };
    const BurstStats serial = run(nullptr);
    const BurstStats pooled = run(&pool);
    ASSERT_EQ(pooled, serial) << v->name();
  }
}

// ----------------------------------------------------- session surface

TEST(KernelSession, SpecPinsVariantAndReportNamesIt) {
  for (const KernelVariant* v : usable_variants()) {
    SessionSpec spec;
    spec.scheme = Scheme::kAcDc;
    spec.geometry = Geometry::narrow(8, 8);
    spec.kernel = std::string(v->name());
    // NEON's encode envelope is empty, but its decode envelope covers
    // this geometry, so construction succeeds for every usable variant.
    Session session(spec);
    const KernelReport rep = session.kernel_report();
    EXPECT_EQ(rep.variant, v->name());
    EXPECT_EQ(rep.isa, engine::isa_name(v->isa()));
    EXPECT_EQ(rep.trellis, "n/a");
    const bool enc8 = v->supports_fixed8(engine::Fixed8Rule::kAcDc, 8);
    EXPECT_EQ(rep.fixed_encode, enc8 ? v->name() : "swar");
    EXPECT_EQ(rep.planar_encode, "n/a");
  }
}

TEST(KernelSession, ReportCoversTrellisAndPlanarPaths) {
  SessionSpec spec;
  spec.scheme = Scheme::kOpt;
  spec.geometry = Geometry::narrow(8, 8);
  const Session opt(spec);
  EXPECT_EQ(opt.kernel_report().trellis, "swar");
  EXPECT_EQ(opt.kernel_report().fixed_encode, "n/a");

  spec.scheme = Scheme::kAc;
  spec.geometry = Geometry::narrow(5, 8);
  const Session planar(spec);
  EXPECT_EQ(planar.kernel_report().planar_encode, "swar");
  EXPECT_EQ(planar.kernel_report().fixed_encode, "n/a");
}

TEST(KernelSession, UnknownKernelThrowsWithCandidates) {
  SessionSpec spec;
  spec.kernel = "frobnicate";
  try {
    Session session(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("swar"), std::string::npos)
        << e.what();
  }
}

TEST(KernelSession, EnvelopeMismatchThrows) {
  // Pinning a SIMD variant onto a spec it cannot serve at all (trellis
  // scheme on a non-8 width: no fixed-encode path, no decode path) must
  // throw rather than silently run the portable fallback everywhere.
  for (const KernelVariant* v : usable_variants()) {
    if (v->isa() == engine::KernelIsa::kPortable) continue;
    SessionSpec spec;
    spec.scheme = Scheme::kOpt;
    spec.geometry = Geometry::narrow(5, 6);
    spec.kernel = std::string(v->name());
    EXPECT_THROW(Session{spec}, std::invalid_argument) << v->name();
  }
  // The portable reference pins everywhere.
  SessionSpec spec;
  spec.scheme = Scheme::kOpt;
  spec.geometry = Geometry::narrow(5, 6);
  spec.kernel = "swar";
  EXPECT_NO_THROW(Session{spec});
}

TEST(KernelSession, WriteStreamIdenticalAcrossVariants) {
  // The channel write surface routes through the wide in-place encoder;
  // stats must not depend on the selected variant.
  const auto data = random_bytes(8 * 8 * 64, 509);
  StreamStats want;
  bool first = true;
  for (const KernelVariant* v : usable_variants()) {
    SessionSpec spec;
    spec.scheme = Scheme::kAc;
    spec.geometry = Geometry::narrow(8, 8);
    spec.lanes = 8;
    spec.kernel = std::string(v->name());
    Session session(spec);
    const StreamStats got = session.write_stream(data);
    if (first) {
      want = got;
      first = false;
    } else {
      EXPECT_EQ(got.transitions, want.transitions) << v->name();
      EXPECT_EQ(got.zeros, want.zeros) << v->name();
      EXPECT_EQ(got.bursts, want.bursts) << v->name();
    }
  }
}

}  // namespace
}  // namespace dbi
