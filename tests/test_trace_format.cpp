// Binary trace format v2: write -> mmap-read round trips, RLE, CRC,
// and rejection of corrupted / truncated files.
#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>
#include <vector>

#include "trace/convert.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "workload/generators.hpp"
#include "workload/trace.hpp"

namespace dbi::trace {
namespace {

std::vector<std::uint8_t> write_to_bytes(const workload::BurstTrace& trace,
                                         const TraceWriterOptions& opt = {}) {
  std::ostringstream os(std::ios::binary);
  TraceWriter writer(os, trace.config(), opt);
  for (const Burst& b : trace.bursts()) writer.write(b);
  writer.finish();
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

workload::BurstTrace random_trace(const BusConfig& cfg, std::int64_t n,
                                  std::uint64_t seed) {
  auto src = workload::make_uniform_source(cfg, seed);
  return workload::BurstTrace::collect(*src, n);
}

void expect_equal(const workload::BurstTrace& a,
                  const workload::BurstTrace& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.config(), b.config());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
}

TEST(TraceFormat, RoundTripsRandomTracesAcrossGeometries) {
  for (const BusConfig cfg :
       {BusConfig{8, 8}, BusConfig{1, 1}, BusConfig{5, 3}, BusConfig{8, 64},
        BusConfig{16, 8}, BusConfig{32, 16}}) {
    const auto trace = random_trace(cfg, 300, 11 + cfg.width);
    TraceWriterOptions opt;
    opt.bursts_per_chunk = 64;  // force several chunks
    const auto image = write_to_bytes(trace, opt);
    const auto reader = TraceReader::from_bytes(image);
    EXPECT_EQ(reader.config(), cfg);
    EXPECT_EQ(reader.bursts(), 300);
    EXPECT_GE(reader.chunk_count(), 4u);
    expect_equal(reader.to_burst_trace(), trace);
  }
}

TEST(TraceFormat, FooterStatsMatchInMemoryStats) {
  const auto trace = random_trace(BusConfig{8, 8}, 500, 3);
  const auto reader = TraceReader::from_bytes(write_to_bytes(trace));
  const workload::TraceStats want = trace.stats();
  const workload::TraceStats& got = reader.stats();
  EXPECT_EQ(got.bursts, want.bursts);
  EXPECT_EQ(got.payload_bits, want.payload_bits);
  EXPECT_EQ(got.payload_zeros, want.payload_zeros);
  EXPECT_EQ(got.raw_transitions, want.raw_transitions);
}

TEST(TraceFormat, SparseTracesCompressAndRoundTrip) {
  const BusConfig cfg{8, 8};
  auto src = workload::make_sparse_source(cfg, 0.9, 5);
  const auto trace = workload::BurstTrace::collect(*src, 1000);
  const auto compressed = write_to_bytes(trace);
  TraceWriterOptions raw_opt;
  raw_opt.compress = false;
  const auto raw = write_to_bytes(trace, raw_opt);

  EXPECT_LT(compressed.size(), raw.size() / 2);
  const auto reader = TraceReader::from_bytes(compressed);
  ASSERT_GE(reader.chunk_count(), 1u);
  EXPECT_TRUE(reader.chunk(0).compressed());
  expect_equal(reader.to_burst_trace(), trace);
  expect_equal(TraceReader::from_bytes(raw).to_burst_trace(), trace);
}

TEST(TraceFormat, EmptyTraceRoundTrips) {
  const workload::BurstTrace trace(BusConfig{8, 8});
  const auto reader = TraceReader::from_bytes(write_to_bytes(trace));
  EXPECT_EQ(reader.bursts(), 0);
  EXPECT_EQ(reader.chunk_count(), 0u);
  EXPECT_TRUE(reader.to_burst_trace().empty());
}

TEST(TraceFormat, MmapAndInMemoryReadsAgree) {
  const auto trace = random_trace(BusConfig{8, 8}, 200, 17);
  const auto image = write_to_bytes(trace);
  const std::string path =
      ::testing::TempDir() + "/test_trace_format_roundtrip.dbt";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
    ASSERT_TRUE(out.good());
  }
  const auto reader = TraceReader::open(path);
  expect_equal(reader.to_burst_trace(), trace);
  std::remove(path.c_str());
}

TEST(TraceFormat, RejectsFlippedBytesEverywhere) {
  const auto trace = random_trace(BusConfig{8, 8}, 64, 29);
  const auto image = write_to_bytes(trace);
  // Flip one byte at a spread of offsets: header, chunk header, payload,
  // footer. Every flip must be rejected (CRC or structural check).
  for (const std::size_t off :
       {std::size_t{0}, std::size_t{5}, std::size_t{7}, kHeaderBytes,
        kHeaderBytes + 4, kHeaderBytes + kChunkHeaderBytes + 3,
        image.size() - kFooterBytes + 1, image.size() - 10,
        image.size() - 1}) {
    auto corrupt = image;
    corrupt[off] ^= 0x40U;
    EXPECT_THROW((void)TraceReader::from_bytes(std::move(corrupt)),
                 TraceError)
        << "offset " << off;
  }
}

TEST(TraceFormat, RejectsTruncationEverywhere) {
  const auto trace = random_trace(BusConfig{8, 8}, 64, 31);
  const auto image = write_to_bytes(trace);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, kHeaderBytes - 1, kHeaderBytes,
        kHeaderBytes + kChunkHeaderBytes + 5, image.size() - kFooterBytes,
        image.size() - 4, image.size() - 1}) {
    auto truncated = image;
    truncated.resize(keep);
    EXPECT_THROW((void)TraceReader::from_bytes(std::move(truncated)),
                 TraceError)
        << "keep " << keep;
  }
}

TEST(TraceFormat, RejectsBadGeometryAndVersion) {
  const auto trace = random_trace(BusConfig{8, 8}, 4, 37);
  const auto image = write_to_bytes(trace);
  {
    auto bad = image;
    bad[4] = 1;  // version
    EXPECT_THROW((void)TraceReader::from_bytes(std::move(bad)), TraceError);
  }
  {
    auto bad = image;
    bad[5] = 2;  // endianness tag
    EXPECT_THROW((void)TraceReader::from_bytes(std::move(bad)), TraceError);
  }
  {
    auto bad = image;
    bad[6] = 77;  // width out of range
    EXPECT_THROW((void)TraceReader::from_bytes(std::move(bad)), TraceError);
  }
}

// --------------------------------------------------- wide trace extension

std::vector<std::uint8_t> wide_bytes(const WideBusConfig& cfg, int bursts,
                                     std::uint8_t fill) {
  std::vector<std::uint8_t> bytes(
      static_cast<std::size_t>(bursts) *
          static_cast<std::size_t>(cfg.bytes_per_burst()),
      fill);
  const auto groups = static_cast<std::size_t>(cfg.groups());
  const Word last_mask = cfg.group_config(cfg.groups() - 1).dq_mask();
  for (std::size_t i = groups - 1; i < bytes.size(); i += groups)
    bytes[i] &= static_cast<std::uint8_t>(last_mask);
  return bytes;
}

std::vector<std::uint8_t> write_wide_to_bytes(
    const WideBusConfig& cfg, std::span<const std::uint8_t> payload,
    const TraceWriterOptions& opt = {}) {
  std::ostringstream os(std::ios::binary);
  TraceWriter writer(os, cfg, opt);
  writer.write_packed(payload);
  writer.finish();
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

TEST(TraceFormat, WideHeaderRoundTripsAndPayloadSurvives) {
  for (const WideBusConfig cfg :
       {WideBusConfig{16, 8}, WideBusConfig{12, 6}, WideBusConfig{64, 8}}) {
    const auto payload = wide_bytes(cfg, 100, 0x5A);
    TraceWriterOptions opt;
    opt.bursts_per_chunk = 32;  // several chunks
    const auto image = write_wide_to_bytes(cfg, payload, opt);
    EXPECT_EQ(image[16], static_cast<std::uint8_t>(cfg.groups()))
        << "header byte 16 carries the group count";

    const auto reader = TraceReader::from_bytes(image);
    EXPECT_TRUE(reader.wide());
    EXPECT_EQ(reader.header().groups, cfg.groups());
    EXPECT_EQ(reader.header().wide_config(), cfg);
    EXPECT_EQ(reader.header().bytes_per_burst(), cfg.bytes_per_burst());
    EXPECT_EQ(reader.bursts(), 100);

    // The chunk payloads concatenate back to the exact input bytes
    // (zero-run RLE round trips losslessly).
    std::vector<std::uint8_t> scratch;
    std::vector<std::uint8_t> got;
    for (std::size_t c = 0; c < reader.chunk_count(); ++c) {
      const auto view = reader.chunk_payload(c, scratch);
      got.insert(got.end(), view.begin(), view.end());
    }
    EXPECT_EQ(got, payload);
  }
}

TEST(TraceFormat, WideFooterStatsMatchDirectAccounting) {
  const WideBusConfig cfg{12, 8};
  std::vector<std::uint8_t> payload = wide_bytes(cfg, 64, 0xFF);
  // Mix in structure so zeros and transitions are non-trivial.
  for (std::size_t i = 0; i < payload.size(); i += 3) payload[i] = 0;
  for (std::size_t i = cfg.groups() - 1; i < payload.size();
       i += static_cast<std::size_t>(cfg.groups()))
    payload[i] &= 0x0FU;
  const auto reader =
      TraceReader::from_bytes(write_wide_to_bytes(cfg, payload));

  std::int64_t zeros = 0;
  std::int64_t transitions = 0;
  const int groups = cfg.groups();
  const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());
  for (std::size_t j = 0; j * bb < payload.size(); ++j) {
    for (int g = 0; g < groups; ++g) {
      const int gw = cfg.group_width(g);
      const Word gmask = cfg.group_config(g).dq_mask();
      Word last = gmask;  // all-ones boundary per burst
      for (int t = 0; t < cfg.burst_length; ++t) {
        const Word b = payload[j * bb + static_cast<std::size_t>(t * groups + g)];
        zeros += gw - std::popcount(b);
        transitions += std::popcount((last ^ b) & gmask);
        last = b;
      }
    }
  }
  EXPECT_EQ(reader.stats().payload_zeros, zeros);
  EXPECT_EQ(reader.stats().raw_transitions, transitions);
  EXPECT_EQ(reader.stats().payload_bits,
            static_cast<std::int64_t>(64) * cfg.width * cfg.burst_length);
}

TEST(TraceFormat, SingleGroupFilesKeepReservedZeroGroupsByte) {
  const auto image = write_to_bytes(random_trace(BusConfig{16, 8}, 10, 2));
  EXPECT_EQ(image[16], 0) << "legacy single-group layout must not change";
  const auto reader = TraceReader::from_bytes(image);
  EXPECT_FALSE(reader.wide());
}

TEST(TraceFormat, RejectsCorruptWideGeometry) {
  const WideBusConfig cfg{16, 8};
  const auto image = write_wide_to_bytes(cfg, wide_bytes(cfg, 8, 0x11));
  {
    auto bad = image;
    bad[16] = 5;  // width 16 has 2 groups, not 5
    EXPECT_THROW((void)TraceReader::from_bytes(std::move(bad), false),
                 TraceError);
  }
  {
    auto bad = image;
    bad[6] = 65;  // wide width out of range
    EXPECT_THROW((void)TraceReader::from_bytes(std::move(bad), false),
                 TraceError);
  }
  {
    // Clearing the groups byte of a width-24 wide trace reinterprets it
    // as single-group (4 bytes per beat, not 3): the chunk payload
    // sizes no longer match and the reader must say so.
    const WideBusConfig x24{24, 8};
    auto bad = write_wide_to_bytes(x24, wide_bytes(x24, 8, 0x33));
    bad[16] = 0;
    EXPECT_THROW((void)TraceReader::from_bytes(std::move(bad), false),
                 TraceError);
  }
}

TEST(TraceFormat, WideTracesHaveNoSingleGroupViews) {
  const WideBusConfig cfg{24, 4};
  const auto reader =
      TraceReader::from_bytes(write_wide_to_bytes(cfg, wide_bytes(cfg, 4, 7)));
  EXPECT_THROW((void)reader.to_burst_trace(), TraceError);
  std::vector<Word> words(4);
  std::vector<std::uint8_t> scratch;
  const auto payload = reader.chunk_payload(0, scratch);
  EXPECT_THROW(reader.unpack_burst_at(payload, 0, words), TraceError);
  std::ostringstream text;
  EXPECT_THROW(binary_to_text(reader, text), TraceError);
}

TEST(TraceFormat, WideWriterRejectsMisuse) {
  const WideBusConfig cfg{12, 4};
  std::ostringstream os(std::ios::binary);
  TraceWriter writer(os, cfg);
  EXPECT_TRUE(writer.wide());
  // Burst-based writes are single-group only.
  EXPECT_THROW(writer.write(Burst(BusConfig{12, 4})), std::invalid_argument);
  const std::vector<Word> words(4, 0);
  EXPECT_THROW(writer.write_words(words), std::invalid_argument);
  // Payload size and remainder-group range are validated per burst.
  const std::vector<std::uint8_t> short_bytes(7, 0);
  EXPECT_THROW(writer.write_packed(short_bytes), std::invalid_argument);
  std::vector<std::uint8_t> overflow(static_cast<std::size_t>(cfg.bytes_per_burst()), 0);
  overflow[1] = 0x20;  // beat 0, group 1: 4-lane group takes 0x0..0xF
  EXPECT_THROW(writer.write_packed(overflow), std::invalid_argument);
}

TEST(TraceFormat, OpenRejectsMissingFile) {
  EXPECT_THROW((void)TraceReader::open("/nonexistent/trace.dbt"), TraceError);
}

TEST(TraceFormat, WriterRejectsMisuse) {
  std::ostringstream os(std::ios::binary);
  TraceWriter writer(os, BusConfig{8, 8});
  EXPECT_THROW(writer.write(Burst(BusConfig{8, 4})), std::invalid_argument);
  const std::vector<Word> three(3, 0);
  EXPECT_THROW(writer.write_words(three), std::invalid_argument);
  const std::vector<Word> big(8, 0x1FF);
  EXPECT_THROW(writer.write_words(big), std::invalid_argument);
  writer.finish();
  const std::vector<Word> ok(8, 0x12);
  EXPECT_THROW(writer.write_words(ok), TraceError);
}

TEST(TraceFormat, RejectsCompressedChunkBeyondRleExpansionBound) {
  // Hand-craft a CRC-valid file whose single RLE chunk claims far more
  // bursts than a 1-byte payload can expand to (zero-run RLE grows at
  // most 128x): the reader must reject the header instead of sizing a
  // decompression buffer from it.
  std::vector<std::uint8_t> image;
  for (const std::uint8_t b : kFileMagic) image.push_back(b);
  image.push_back(kFormatVersion);
  image.push_back(kLittleEndianTag);
  put_le(image, 8, 2);                    // width
  put_le(image, 8, 2);                    // burst_length
  put_le(image, kFileFlagCompressed, 2);  // file flags
  put_le(image, 0x40000000U, 4);          // bursts_per_chunk
  image.resize(kHeaderBytes, 0);

  for (const std::uint8_t b : kChunkMagic) image.push_back(b);
  put_le(image, 1000, 4);  // burst_count: 8000 raw bytes
  put_le(image, kChunkFlagRle, 4);
  put_le(image, 1, 4);    // payload_bytes: expands <= 128
  image.push_back(0x80);  // payload: one zero byte

  for (const std::uint8_t b : kFooterMagic) image.push_back(b);
  put_le(image, 0, 4);
  put_le(image, 1, 8);     // chunk_count
  put_le(image, 1000, 8);  // bursts
  put_le(image, 0, 8);     // payload_bits
  put_le(image, 0, 8);     // payload_zeros
  put_le(image, 0, 8);     // raw_transitions
  put_le(image, 0, 8);     // reserved
  put_le(image, crc32(image), 4);
  for (const std::uint8_t b : kEndMagic) image.push_back(b);

  try {
    (void)TraceReader::from_bytes(std::move(image));
    FAIL() << "lying compressed chunk header was accepted";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("RLE expansion bound"),
              std::string::npos)
        << e.what();
  }
}

TEST(TraceFormat, WriterRejectsChunkCapacityBeyondU32PayloadField) {
  std::ostringstream os(std::ios::binary);
  TraceWriterOptions opt;
  opt.bursts_per_chunk = 0xFFFFFFFFU;  // * 8 bytes/burst overflows u32
  EXPECT_THROW(TraceWriter(os, BusConfig{8, 8}, opt), std::invalid_argument);
}

TEST(TraceFormat, RleRejectsMalformedStreams) {
  std::vector<std::uint8_t> out(8);
  // Truncated literal run: control promises 4 literals, 1 present.
  const std::vector<std::uint8_t> truncated{0x03, 0xAB};
  EXPECT_THROW(rle_decompress(truncated, out), TraceError);
  // Overrun: 128-byte zero run into an 8-byte output.
  const std::vector<std::uint8_t> overrun{0xFF};
  EXPECT_THROW(rle_decompress(overrun, out), TraceError);
  // Underfill: decodes 4 of 8 bytes.
  const std::vector<std::uint8_t> underfill{0x83};
  EXPECT_THROW(rle_decompress(underfill, out), TraceError);
}

TEST(TraceFormat, RleRoundTripsArbitraryBytes) {
  std::vector<std::uint8_t> in;
  for (int i = 0; i < 1000; ++i)
    in.push_back(static_cast<std::uint8_t>((i % 7 == 0) ? 0 : (i * 37) & 0xFF));
  in.insert(in.end(), 300, 0);  // long zero tail
  std::vector<std::uint8_t> packed;
  rle_compress(in, packed);
  std::vector<std::uint8_t> out(in.size());
  rle_decompress(packed, out);
  EXPECT_EQ(out, in);
}

TEST(TraceFormat, TextBinaryConversionIsLossless) {
  const auto trace = random_trace(BusConfig{8, 8}, 128, 41);
  std::ostringstream text1;
  trace.save(text1);

  std::istringstream text_in(text1.str());
  std::ostringstream binary(std::ios::binary);
  const workload::TraceStats s = text_to_binary(text_in, binary);
  EXPECT_EQ(s.bursts, 128);
  EXPECT_EQ(s.raw_transitions, trace.stats().raw_transitions);

  const std::string b = binary.str();
  const auto reader =
      TraceReader::from_bytes(std::vector<std::uint8_t>(b.begin(), b.end()));
  std::ostringstream text2;
  binary_to_text(reader, text2);
  EXPECT_EQ(text2.str(), text1.str());
  expect_equal(reader.to_burst_trace(), trace);
}

}  // namespace
}  // namespace dbi::trace
