// Encoded-trace format: mask-stream chunk round trips, the header
// encode metadata, and rejection of crafted chunk indexes (out-of-order
// mask riders, double masks, mismatched counts, unknown flags) — the
// hardening surface fuzz_trace_reader pounds on in CI.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "workload/rng.hpp"

namespace dbi::trace {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  workload::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> bytes(n);
  for (std::uint8_t& b : bytes) b = static_cast<std::uint8_t>(rng.next());
  return bytes;
}

std::vector<std::uint64_t> random_masks(std::size_t n, int burst_length,
                                        std::uint64_t seed) {
  workload::Xoshiro256 rng(seed);
  const std::uint64_t tail =
      burst_length >= 64 ? ~std::uint64_t{0}
                         : ((std::uint64_t{1} << burst_length) - 1);
  std::vector<std::uint64_t> masks(n);
  for (std::uint64_t& m : masks) m = rng.next() & tail;
  return masks;
}

/// Writes one encoded trace into memory.
template <typename Config>
std::vector<std::uint8_t> encoded_image(const Config& cfg,
                                        std::span<const std::uint8_t> tx,
                                        std::span<const std::uint64_t> masks,
                                        TraceWriterOptions opt = {}) {
  opt.encoded = true;
  std::ostringstream os(std::ios::binary);
  TraceWriter writer(os, cfg, opt);
  writer.write_encoded(tx, masks);
  writer.finish();
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

// --------------------------------------------------------- round trips

TEST(EncodedTrace, MaskStreamRoundTripsAcrossGeometriesAndChunking) {
  for (const bool compress : {true, false}) {
    // Narrow geometries.
    for (const BusConfig cfg : {BusConfig{8, 8}, BusConfig{12, 5},
                                BusConfig{8, 64}, BusConfig{32, 8}}) {
      const std::size_t n = 300;
      // Transmitted beats must fit the bus: mask the packed bytes.
      auto tx = random_bytes(
          n * static_cast<std::size_t>(cfg.bytes_per_burst()), 3);
      const auto bpb = static_cast<std::size_t>(cfg.bytes_per_beat());
      for (std::size_t t = 0; t < tx.size() / bpb; ++t)
        for (std::size_t b = 0; b < bpb; ++b)
          tx[t * bpb + b] &=
              static_cast<std::uint8_t>(cfg.dq_mask() >> (8 * b));
      const auto masks = random_masks(n, cfg.burst_length, 5);
      TraceWriterOptions opt;
      opt.bursts_per_chunk = 64;  // several chunks + a partial tail
      opt.compress = compress;
      opt.enc_scheme = 3;
      opt.enc_lanes = 4;
      opt.enc_policy = 1;
      const auto image = encoded_image(cfg, tx, masks, opt);
      const auto reader = TraceReader::from_bytes(image);

      ASSERT_TRUE(reader.encoded());
      EXPECT_EQ(reader.header().enc_scheme, 3);
      EXPECT_EQ(reader.header().enc_lanes, 4);
      EXPECT_EQ(reader.header().enc_policy, 1);
      EXPECT_EQ(reader.bursts(), static_cast<std::int64_t>(n));
      // Footer chunk_count counts payload chunks only.
      EXPECT_EQ(reader.chunk_count(), (n + 63) / 64);

      std::vector<std::uint8_t> scratch, mscratch;
      std::vector<std::uint64_t> mwords;
      std::vector<std::uint8_t> tx_read;
      std::vector<std::uint64_t> masks_read;
      for (std::size_t c = 0; c < reader.chunk_count(); ++c) {
        ASSERT_TRUE(reader.chunk(c).has_mask());
        const auto payload = reader.chunk_payload(c, scratch);
        tx_read.insert(tx_read.end(), payload.begin(), payload.end());
        const auto m = reader.chunk_masks(c, mscratch, mwords);
        masks_read.insert(masks_read.end(), m.begin(), m.end());
      }
      EXPECT_EQ(tx_read, tx);
      EXPECT_EQ(masks_read, masks);
    }

    // Wide geometry: one mask word per (burst, group).
    const WideBusConfig wide{20, 8};
    const std::size_t n = 120;
    auto tx =
        random_bytes(n * static_cast<std::size_t>(wide.bytes_per_burst()), 7);
    for (std::size_t i = 0; i < tx.size(); ++i)
      tx[i] &= static_cast<std::uint8_t>(
          wide.group_mask(static_cast<int>(i) % wide.groups()));
    const auto masks =
        random_masks(n * static_cast<std::size_t>(wide.groups()),
                     wide.burst_length, 9);
    TraceWriterOptions opt;
    opt.bursts_per_chunk = 50;
    opt.compress = compress;
    const auto image = encoded_image(wide, tx, masks, opt);
    const auto reader = TraceReader::from_bytes(image);
    ASSERT_TRUE(reader.encoded());
    ASSERT_TRUE(reader.wide());
    std::vector<std::uint8_t> scratch, mscratch;
    std::vector<std::uint64_t> mwords;
    std::vector<std::uint64_t> masks_read;
    for (std::size_t c = 0; c < reader.chunk_count(); ++c) {
      const auto m = reader.chunk_masks(c, mscratch, mwords);
      masks_read.insert(masks_read.end(), m.begin(), m.end());
    }
    EXPECT_EQ(masks_read, masks);
  }
}

TEST(EncodedTrace, PlainFilesKeepReservedMetaBytesZeroAndStayCompatible) {
  const BusConfig cfg{8, 8};
  std::ostringstream os(std::ios::binary);
  TraceWriter writer(os, cfg);
  writer.write_packed(random_bytes(8 * 16, 2));
  writer.finish();
  const std::string s = os.str();
  // Bytes 17..20 of the header stay zero for plain traces.
  EXPECT_EQ(s[17], 0);
  EXPECT_EQ(s[18], 0);
  EXPECT_EQ(s[19], 0);
  EXPECT_EQ(s[20], 0);
  const auto reader = TraceReader::from_bytes(
      std::vector<std::uint8_t>(s.begin(), s.end()));
  EXPECT_FALSE(reader.encoded());
  EXPECT_FALSE(reader.chunk(0).has_mask());
  std::vector<std::uint8_t> scratch;
  std::vector<std::uint64_t> words;
  EXPECT_THROW((void)reader.chunk_masks(0, scratch, words), TraceError);
}

// ------------------------------------------------------ writer misuse

TEST(EncodedTrace, WriterRejectsMisuse) {
  const BusConfig cfg{8, 8};
  const auto tx = random_bytes(8 * 4, 1);
  const auto masks = random_masks(4, 8, 2);

  {  // write_packed on an encoded writer.
    std::ostringstream os(std::ios::binary);
    TraceWriterOptions opt;
    opt.encoded = true;
    TraceWriter writer(os, cfg, opt);
    EXPECT_THROW(writer.write_packed(tx), std::invalid_argument);
    EXPECT_THROW(writer.write(Burst(cfg)), std::invalid_argument);
  }
  {  // write_encoded on a plain writer.
    std::ostringstream os(std::ios::binary);
    TraceWriter writer(os, cfg);
    EXPECT_THROW(writer.write_encoded(tx, masks), std::invalid_argument);
  }
  {  // Mask count / tail-bit violations.
    std::ostringstream os(std::ios::binary);
    TraceWriterOptions opt;
    opt.encoded = true;
    TraceWriter writer(os, cfg, opt);
    const auto short_masks = random_masks(3, 8, 2);
    EXPECT_THROW(writer.write_encoded(tx, short_masks),
                 std::invalid_argument);
    auto tail = masks;
    tail[1] |= std::uint64_t{1} << 8;
    EXPECT_THROW(writer.write_encoded(tx, tail), std::invalid_argument);
  }
  // Encode metadata without encoded mode.
  TraceWriterOptions bad;
  bad.enc_scheme = 3;
  std::ostringstream os(std::ios::binary);
  EXPECT_THROW(TraceWriter(os, cfg, bad), std::invalid_argument);
  TraceWriterOptions bad_tag;
  bad_tag.encoded = true;
  bad_tag.enc_scheme = 9;
  EXPECT_THROW(TraceWriter(os, cfg, bad_tag), std::invalid_argument);
}

// -------------------------------------------------- crafted rejections
//
// Hand-assembled files drive the chunk-index hardening: every
// out-of-order / overlapping / mismatched arrangement of payload and
// mask chunks must be rejected with a TraceError, never parsed. CRC
// verification is off so the index checks themselves are exercised.

void put_magic(std::vector<std::uint8_t>& out, const std::uint8_t (&m)[4]) {
  for (const std::uint8_t b : m) out.push_back(b);
}

std::vector<std::uint8_t> make_header(std::uint16_t flags,
                                      std::uint8_t enc_scheme = 0,
                                      std::uint16_t enc_lanes = 0,
                                      std::uint8_t enc_policy = 0) {
  std::vector<std::uint8_t> h;
  put_magic(h, kFileMagic);
  h.push_back(kFormatVersion);
  h.push_back(kLittleEndianTag);
  put_le(h, 8, 2);   // width
  put_le(h, 8, 2);   // burst_length
  put_le(h, flags, 2);
  put_le(h, 64, 4);  // bursts_per_chunk
  h.push_back(0);    // groups
  h.push_back(enc_scheme);
  put_le(h, enc_lanes, 2);
  h.push_back(enc_policy);
  h.resize(kHeaderBytes, 0);
  return h;
}

void append_chunk(std::vector<std::uint8_t>& file, std::uint32_t bursts,
                  std::uint32_t flags,
                  std::span<const std::uint8_t> payload) {
  put_magic(file, kChunkMagic);
  put_le(file, bursts, 4);
  put_le(file, flags, 4);
  put_le(file, payload.size(), 4);
  file.insert(file.end(), payload.begin(), payload.end());
}

void append_footer(std::vector<std::uint8_t>& file, std::uint64_t chunks,
                   std::int64_t bursts) {
  put_magic(file, kFooterMagic);
  put_le(file, 0, 4);
  put_le(file, chunks, 8);
  put_le(file, static_cast<std::uint64_t>(bursts), 8);
  put_le(file, 0, 8);  // payload_bits
  put_le(file, 0, 8);  // payload_zeros
  put_le(file, 0, 8);  // raw_transitions
  put_le(file, 0, 8);  // reserved
  put_le(file, 0, 4);  // crc (ignored: verify_crc = false)
  put_magic(file, kEndMagic);
}

std::vector<std::uint8_t> payload_bytes(std::uint32_t bursts) {
  return std::vector<std::uint8_t>(bursts * 8, 0xA5);
}

std::vector<std::uint8_t> mask_bytes(std::uint32_t bursts) {
  std::vector<std::uint8_t> m;
  for (std::uint32_t i = 0; i < bursts; ++i) put_le(m, 0x55, 8);
  return m;
}

void expect_rejected(const std::vector<std::uint8_t>& file) {
  EXPECT_THROW((void)TraceReader::from_bytes(file, /*verify_crc=*/false),
               TraceError);
}

TEST(EncodedTrace, RejectsCraftedChunkIndexes) {
  const std::uint16_t enc = kFileFlagEncoded;

  {  // Well-formed control: payload chunk + its mask rider parse fine.
    auto file = make_header(enc, 2, 1, 0);
    append_chunk(file, 4, 0, payload_bytes(4));
    append_chunk(file, 4, kChunkFlagMask, mask_bytes(4));
    append_footer(file, 1, 4);
    const auto reader = TraceReader::from_bytes(file, false);
    EXPECT_TRUE(reader.encoded());
    EXPECT_TRUE(reader.chunk(0).has_mask());
  }
  {  // Mask-stream chunk first: out-of-order chunk kinds.
    auto file = make_header(enc);
    append_chunk(file, 4, kChunkFlagMask, mask_bytes(4));
    append_chunk(file, 4, 0, payload_bytes(4));
    append_footer(file, 1, 4);
    expect_rejected(file);
  }
  {  // Two mask chunks behind one payload chunk.
    auto file = make_header(enc);
    append_chunk(file, 4, 0, payload_bytes(4));
    append_chunk(file, 4, kChunkFlagMask, mask_bytes(4));
    append_chunk(file, 4, kChunkFlagMask, mask_bytes(4));
    append_footer(file, 1, 4);
    expect_rejected(file);
  }
  {  // Mask rider whose burst count disagrees with its payload chunk.
    auto file = make_header(enc);
    append_chunk(file, 4, 0, payload_bytes(4));
    append_chunk(file, 3, kChunkFlagMask, mask_bytes(3));
    append_footer(file, 1, 4);
    expect_rejected(file);
  }
  {  // Encoded file with a bare payload chunk (missing final rider).
    auto file = make_header(enc);
    append_chunk(file, 4, 0, payload_bytes(4));
    append_footer(file, 1, 4);
    expect_rejected(file);
  }
  {  // Consecutive payload chunks in an encoded file.
    auto file = make_header(enc);
    append_chunk(file, 4, 0, payload_bytes(4));
    append_chunk(file, 4, 0, payload_bytes(4));
    append_chunk(file, 4, kChunkFlagMask, mask_bytes(4));
    append_footer(file, 2, 8);
    expect_rejected(file);
  }
  {  // Mask chunk in a file without the encoded flag.
    auto file = make_header(0);
    append_chunk(file, 4, 0, payload_bytes(4));
    append_chunk(file, 4, kChunkFlagMask, mask_bytes(4));
    append_footer(file, 1, 4);
    expect_rejected(file);
  }
  {  // Encode metadata without the encoded flag.
    auto file = make_header(0, /*enc_scheme=*/3);
    append_chunk(file, 4, 0, payload_bytes(4));
    append_footer(file, 1, 4);
    expect_rejected(file);
  }
  {  // Out-of-range scheme tag / policy byte.
    auto file = make_header(enc, /*enc_scheme=*/8);
    append_chunk(file, 4, 0, payload_bytes(4));
    append_chunk(file, 4, kChunkFlagMask, mask_bytes(4));
    append_footer(file, 1, 4);
    expect_rejected(file);
    auto file2 = make_header(enc, 2, 1, /*enc_policy=*/2);
    append_chunk(file2, 4, 0, payload_bytes(4));
    append_chunk(file2, 4, kChunkFlagMask, mask_bytes(4));
    append_footer(file2, 1, 4);
    expect_rejected(file2);
  }
  {  // Unknown chunk flag bits.
    auto file = make_header(enc);
    append_chunk(file, 4, 1U << 2, payload_bytes(4));
    append_chunk(file, 4, kChunkFlagMask, mask_bytes(4));
    append_footer(file, 1, 4);
    expect_rejected(file);
  }
  {  // Mask stream with the wrong uncompressed size.
    auto file = make_header(enc);
    append_chunk(file, 4, 0, payload_bytes(4));
    auto m = mask_bytes(4);
    m.pop_back();
    append_chunk(file, 4, kChunkFlagMask, m);
    append_footer(file, 1, 4);
    expect_rejected(file);
  }
  {  // Mask words with bits beyond burst_length are rejected on read.
    auto file = make_header(enc);
    append_chunk(file, 1, 0, payload_bytes(1));
    std::vector<std::uint8_t> m;
    put_le(m, std::uint64_t{1} << 9, 8);  // BL8 file, bit 9 set
    append_chunk(file, 1, kChunkFlagMask, m);
    append_footer(file, 1, 1);
    const auto reader = TraceReader::from_bytes(file, false);
    std::vector<std::uint8_t> scratch;
    std::vector<std::uint64_t> words;
    EXPECT_THROW((void)reader.chunk_masks(0, scratch, words), TraceError);
  }
}

TEST(EncodedTrace, ChunkIndexInvariantsHoldOnWellFormedFiles) {
  // The ordering/overlap validator's positive contract: on a real
  // multi-chunk encoded file every payload extent precedes its mask
  // extent, which precedes the next chunk, strictly.
  const BusConfig cfg{8, 8};
  const std::size_t n = 500;
  const auto tx = random_bytes(n * 8, 11);
  const auto masks = random_masks(n, 8, 13);
  TraceWriterOptions opt;
  opt.bursts_per_chunk = 100;
  const auto reader =
      TraceReader::from_bytes(encoded_image(cfg, tx, masks, opt));
  ASSERT_EQ(reader.chunk_count(), 5u);
  std::uint64_t prev_end = kHeaderBytes;
  for (std::size_t c = 0; c < reader.chunk_count(); ++c) {
    const ChunkInfo& info = reader.chunk(c);
    EXPECT_GE(info.payload_offset, prev_end + kChunkHeaderBytes);
    EXPECT_GE(info.mask_offset,
              info.payload_offset + info.payload_bytes + kChunkHeaderBytes);
    prev_end = info.mask_offset + info.mask_bytes;
  }
}

TEST(EncodedTrace, EncodedTracesRefuseLegacyMaterialisation) {
  const BusConfig cfg{8, 8};
  const auto image = encoded_image(cfg, random_bytes(8 * 8, 1),
                                   random_masks(8, 8, 2));
  const auto reader = TraceReader::from_bytes(image);
  EXPECT_THROW((void)reader.to_burst_trace(), TraceError);
}

}  // namespace
}  // namespace dbi::trace
