#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

namespace dbi::netlist {
namespace {

TEST(Netlist, BuildsSimpleGates) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.xor2(a, b);
  nl.mark_output(x, "x");
  EXPECT_EQ(nl.size(), 3u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.gate(x).kind, GateKind::kXor2);
  EXPECT_EQ(nl.gate(x).in[0], a);
  EXPECT_EQ(nl.gate(x).in[1], b);
}

TEST(Netlist, RejectsUndefinedFanin) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.and2(a, 42), std::invalid_argument);
  EXPECT_THROW(nl.mark_output(42, "x"), std::invalid_argument);
  EXPECT_THROW(nl.add_dff(42), std::invalid_argument);
}

TEST(Netlist, RejectsWrongFactory) {
  Netlist nl;
  EXPECT_THROW(nl.add_gate(GateKind::kInput), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateKind::kDff), std::invalid_argument);
}

TEST(Netlist, KindHistogramAndPhysicalCount) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId c = nl.add_const(true);
  const NetId n = nl.nand2(a, c);
  nl.inv(n);
  const auto h = nl.kind_histogram();
  EXPECT_EQ(h[static_cast<std::size_t>(GateKind::kInput)], 1u);
  EXPECT_EQ(h[static_cast<std::size_t>(GateKind::kConst1)], 1u);
  EXPECT_EQ(h[static_cast<std::size_t>(GateKind::kNand2)], 1u);
  EXPECT_EQ(h[static_cast<std::size_t>(GateKind::kInv)], 1u);
  EXPECT_EQ(nl.physical_gates(), 2u);  // inputs/constants are virtual
}

TEST(Netlist, LevelizeIsTopological) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.and2(a, b);
  const NetId y = nl.or2(x, a);
  (void)y;
  const auto& order = nl.levelize();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(nl.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[a], pos[x]);
  EXPECT_LT(pos[b], pos[x]);
  EXPECT_LT(pos[x], pos[y]);
}

TEST(Netlist, LevelizeDetectsUnconnectedDff) {
  Netlist nl;
  (void)nl.add_dff();
  EXPECT_THROW((void)nl.levelize(), std::logic_error);
}

TEST(Netlist, DffFeedbackIsLegal) {
  // Toggle flop: q feeds an inverter feeding d.
  Netlist nl;
  const NetId q = nl.add_dff();
  const NetId d = nl.inv(q);
  nl.set_dff_input(q, d);
  EXPECT_NO_THROW((void)nl.levelize());
  EXPECT_EQ(nl.dffs().size(), 1u);
}

TEST(Netlist, SetDffInputValidates) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.set_dff_input(a, a), std::invalid_argument);
  const NetId q = nl.add_dff();
  EXPECT_THROW(nl.set_dff_input(q, 99), std::invalid_argument);
}

TEST(Netlist, GateNamesAndArity) {
  EXPECT_EQ(gate_name(GateKind::kNand2), "NAND2");
  EXPECT_EQ(gate_name(GateKind::kDff), "DFF");
  EXPECT_EQ(fanin_count(GateKind::kInput), 0);
  EXPECT_EQ(fanin_count(GateKind::kInv), 1);
  EXPECT_EQ(fanin_count(GateKind::kXor2), 2);
  EXPECT_EQ(fanin_count(GateKind::kMux2), 3);
  EXPECT_EQ(fanin_count(GateKind::kDff), 1);
  EXPECT_FALSE(is_physical(GateKind::kInput));
  EXPECT_FALSE(is_physical(GateKind::kConst0));
  EXPECT_TRUE(is_physical(GateKind::kDff));
}

}  // namespace
}  // namespace dbi::netlist
