#include "hw/fault_study.hpp"

#include <gtest/gtest.h>

#include "netlist/sim.hpp"
#include "workload/generators.hpp"

namespace dbi {
namespace {

TEST(FaultInjection, StuckAtOverridesGateOutput) {
  netlist::Netlist nl;
  const netlist::NetId a = nl.add_input("a");
  const netlist::NetId g = nl.inv(a);
  const netlist::NetId h = nl.inv(g);
  netlist::Simulator sim(nl);
  sim.set_input(a, true);
  sim.eval();
  EXPECT_FALSE(sim.value(g));
  EXPECT_TRUE(sim.value(h));

  sim.inject_stuck_at(g, true);
  sim.eval();
  EXPECT_TRUE(sim.value(g));
  EXPECT_FALSE(sim.value(h));  // fault propagates downstream

  sim.clear_faults();
  sim.eval();
  EXPECT_FALSE(sim.value(g));
  EXPECT_THROW(sim.inject_stuck_at(99, true), std::invalid_argument);
}

class FaultStudyFixture : public ::testing::Test {
 protected:
  static const hw::FaultStudyResult& result() {
    static const hw::FaultStudyResult r = [] {
      auto src = workload::make_uniform_source(BusConfig{8, 8}, 4);
      const auto trace = workload::BurstTrace::collect(*src, 64);
      hw::FaultStudyOptions options;
      options.max_sites = 150;
      options.bursts_per_fault = 16;
      return hw::run_fault_study(trace, options);
    }();
    return r;
  }
};

TEST_F(FaultStudyFixture, ClassifiesEverySampledSite) {
  EXPECT_EQ(result().sites_tested, 150);
  EXPECT_EQ(result().benign + result().suboptimal + result().corrupting,
            result().sites_tested);
}

TEST_F(FaultStudyFixture, MostFaultsAreNotCorrupting) {
  // The paper's analog argument: the decision logic dominates the
  // encoder, and faults there only lose energy. Only the thin
  // output-XOR / DBI stage can corrupt data.
  EXPECT_LT(result().corrupting_fraction(), 0.35);
  EXPECT_GT(result().suboptimal + result().benign, result().corrupting);
}

TEST_F(FaultStudyFixture, SuboptimalFaultsExistAndAreBounded) {
  EXPECT_GT(result().suboptimal, 0);
  EXPECT_GT(result().worst_cost_increase, 0.0);
  // A single stuck decision cannot blow the cost up arbitrarily: even
  // the worst fault stays within 2x of optimal on random data.
  EXPECT_LT(result().worst_cost_increase, 1.0);
}

TEST(FaultStudy, RejectsBadInputs) {
  const workload::BurstTrace empty(BusConfig{8, 8});
  EXPECT_THROW((void)hw::run_fault_study(empty, hw::FaultStudyOptions{}),
               std::invalid_argument);
  auto src = workload::make_uniform_source(BusConfig{8, 4}, 1);
  const auto wrong = workload::BurstTrace::collect(*src, 4);
  EXPECT_THROW((void)hw::run_fault_study(wrong, hw::FaultStudyOptions{}),
               std::invalid_argument);
  auto src8 = workload::make_uniform_source(BusConfig{8, 8}, 1);
  const auto ok = workload::BurstTrace::collect(*src8, 4);
  hw::FaultStudyOptions bad;
  bad.bursts_per_fault = 0;
  EXPECT_THROW((void)hw::run_fault_study(ok, bad), std::invalid_argument);
}

}  // namespace
}  // namespace dbi
