#include <gtest/gtest.h>

#include <array>

#include "core/encoder.hpp"
#include "core/trellis.hpp"
#include "test_util.hpp"

namespace dbi {
namespace {

constexpr BusConfig kCfg{8, 8};

TEST(EncoderOpt, NamesAndFactory) {
  EXPECT_EQ(make_opt_encoder(CostWeights{1, 1})->name(), "DBI OPT");
  EXPECT_EQ(make_opt_fixed_encoder()->name(), "DBI OPT (Fixed)");
  EXPECT_EQ(make_encoder(Scheme::kOpt, CostWeights{1, 1})->name(),
            "DBI OPT");
  EXPECT_EQ(make_encoder(Scheme::kOptFixed)->name(), "DBI OPT (Fixed)");
  EXPECT_EQ(make_opt_int_encoder(IntCostWeights{3, 5})->name(),
            "DBI OPT (int 3,5)");
}

TEST(EncoderOpt, RejectsNegativeWeights) {
  EXPECT_THROW(make_opt_encoder(CostWeights{-1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(make_opt_int_encoder(IntCostWeights{1, -1}),
               std::invalid_argument);
}

// ------------------------------------------------------------------
// The headline property: the trellis encoding cost equals the true
// minimum over all 2^L inversion patterns, for every weight ratio.
// ------------------------------------------------------------------
class OptOptimality : public ::testing::TestWithParam<double> {};

TEST_P(OptOptimality, MatchesExhaustiveMinimum) {
  const double ac_cost = GetParam();
  const CostWeights w = CostWeights::ac_dc_tradeoff(ac_cost);
  const auto opt = make_opt_encoder(w);
  const auto brute = make_exhaustive_encoder(w);
  const BusState prev = BusState::all_ones(kCfg);
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const Burst data = test::random_burst(kCfg, seed * 31 + 1);
    const double opt_cost = encoded_cost(opt->encode(data, prev), prev, w);
    const double brute_cost =
        encoded_cost(brute->encode(data, prev), prev, w);
    EXPECT_NEAR(opt_cost, brute_cost, 1e-9)
        << "seed=" << seed << " ac_cost=" << ac_cost;
  }
}

INSTANTIATE_TEST_SUITE_P(WeightSweep, OptOptimality,
                         ::testing::Values(0.0, 0.1, 0.25, 0.4, 0.5, 0.56,
                                           0.7, 0.85, 1.0));

// Optimality must also hold for non-default boundary states and other
// burst lengths.
TEST(EncoderOpt, OptimalFromArbitraryBoundary) {
  const CostWeights w{0.4, 0.6};
  const auto opt = make_opt_encoder(w);
  const auto brute = make_exhaustive_encoder(w);
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 900);
    workload::Xoshiro256 rng(seed);
    const BusState prev{
        Beat{static_cast<Word>(rng.next()) & kCfg.dq_mask(),
             (rng.next() & 1) != 0}};
    EXPECT_NEAR(encoded_cost(opt->encode(data, prev), prev, w),
                encoded_cost(brute->encode(data, prev), prev, w), 1e-9);
  }
}

class OptGeometry : public ::testing::TestWithParam<int> {};

TEST_P(OptGeometry, OptimalForBurstLength) {
  const BusConfig cfg{8, GetParam()};
  const CostWeights w{0.5, 0.5};
  const auto opt = make_opt_encoder(w);
  const auto brute = make_exhaustive_encoder(w);
  const BusState prev = BusState::all_ones(cfg);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const Burst data = test::random_burst(cfg, seed + 17);
    EXPECT_NEAR(encoded_cost(opt->encode(data, prev), prev, w),
                encoded_cost(brute->encode(data, prev), prev, w), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(BurstLengths, OptGeometry,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 12, 16));

TEST(EncoderOpt, NeverWorseThanAnyOtherScheme) {
  const std::array<Scheme, 4> rivals = {Scheme::kRaw, Scheme::kDc,
                                        Scheme::kAc, Scheme::kAcDc};
  for (double ac_cost : {0.0, 0.3, 0.56, 0.8, 1.0}) {
    const CostWeights w = CostWeights::ac_dc_tradeoff(ac_cost);
    const auto opt = make_opt_encoder(w);
    const BusState prev = BusState::all_ones(kCfg);
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
      const Burst data = test::random_burst(kCfg, seed + 333);
      const double opt_cost = encoded_cost(opt->encode(data, prev), prev, w);
      for (Scheme rival : rivals) {
        const double rival_cost = encoded_cost(
            make_encoder(rival, w)->encode(data, prev), prev, w);
        EXPECT_LE(opt_cost, rival_cost + 1e-9)
            << scheme_name(rival) << " beat OPT at ac_cost=" << ac_cost;
      }
    }
  }
}

TEST(EncoderOpt, PureDcWeightsReproduceDbiDcCost) {
  // alpha = 0: OPT minimises zeros only; cost must equal DBI DC's zero
  // count (the Fig. 3 endpoint identity).
  const CostWeights w{0.0, 1.0};
  const auto opt = make_opt_encoder(w);
  const auto dc = make_dc_encoder();
  const BusState prev = BusState::all_ones(kCfg);
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const Burst data = test::random_burst(kCfg, seed);
    EXPECT_EQ(opt->encode(data, prev).zeros(),
              dc->encode(data, prev).zeros());
  }
}

TEST(EncoderOpt, PureAcWeightsReproduceDbiAcCost) {
  // beta = 0: OPT minimises transitions only. Per-beat greedy AC is
  // globally optimal here because the two options always split t and
  // 9 - t and the chain decouples; the costs must match.
  const CostWeights w{1.0, 0.0};
  const auto opt = make_opt_encoder(w);
  const auto ac = make_ac_encoder();
  const BusState prev = BusState::all_ones(kCfg);
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 4000);
    EXPECT_EQ(opt->encode(data, prev).transitions(prev),
              ac->encode(data, prev).transitions(prev));
  }
}

TEST(EncoderOpt, FixedEncoderEqualsIntUnitWeights) {
  const auto fixed = make_opt_fixed_encoder();
  const auto unit = make_opt_int_encoder(IntCostWeights{1, 1});
  const BusState prev = BusState::all_ones(kCfg);
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 5000);
    EXPECT_EQ(fixed->encode(data, prev).inversion_mask(),
              unit->encode(data, prev).inversion_mask());
  }
}

TEST(EncoderOpt, FixedCostWithinBoundsOfExactOpt) {
  // OPT(Fixed) is optimal for alpha = beta and can only lose elsewhere.
  const BusState prev = BusState::all_ones(kCfg);
  const CostWeights equal{0.5, 0.5};
  const auto fixed = make_opt_fixed_encoder();
  const auto opt = make_opt_encoder(equal);
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 6000);
    EXPECT_NEAR(encoded_cost(fixed->encode(data, prev), prev, equal),
                encoded_cost(opt->encode(data, prev), prev, equal), 1e-9);
  }
}

TEST(EncoderOpt, DecodeRecoversPayload) {
  const auto opt = make_opt_encoder(CostWeights{0.56, 0.44});
  const BusState prev = BusState::all_ones(kCfg);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 7000);
    EXPECT_EQ(opt->encode(data, prev).decode(), data);
  }
}

TEST(EncoderExhaustive, RefusesHugeBursts) {
  const BusConfig cfg{8, 24};
  const Burst data(cfg);
  EXPECT_THROW((void)make_exhaustive_encoder(CostWeights{1, 1})
                   ->encode(data, BusState::all_ones(cfg)),
               std::invalid_argument);
}

TEST(EncoderRaw, TransmitsVerbatimWithoutDbi) {
  const Burst data = test::random_burst(kCfg, 1);
  const auto e = make_raw_encoder()->encode(data, BusState::all_ones(kCfg));
  EXPECT_FALSE(e.uses_dbi_line());
  EXPECT_EQ(e.inversion_mask(), 0u);
  EXPECT_EQ(e.zeros(), data.payload_zeros());
}

}  // namespace
}  // namespace dbi
