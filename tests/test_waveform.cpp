#include "phy/waveform.hpp"

#include <gtest/gtest.h>

#include <array>

#include "core/encoder.hpp"
#include "power/interface_energy.hpp"
#include "test_util.hpp"

namespace dbi::phy {
namespace {

constexpr BusConfig kCfg{8, 8};

TEST(Waveform, GeometryAndBounds) {
  GroupWaveform w(kCfg);
  EXPECT_EQ(w.lines(), 9);
  EXPECT_EQ(w.bit_times(), 0);
  EXPECT_THROW((void)w.level(0, 0), std::invalid_argument);
  EXPECT_THROW((void)w.line_edges(9), std::invalid_argument);
  EXPECT_THROW(GroupWaveform(kCfg, Beat{0x1FF, true}),
               std::invalid_argument);
}

TEST(Waveform, RecordsLevelsPerLine) {
  const BusConfig cfg{8, 2};
  GroupWaveform w(cfg);
  const Burst data(cfg, std::array<Word, 2>{0b00000001, 0b10000000});
  w.append(EncodedBurst::from_inversion_mask(data, 0b10));
  ASSERT_EQ(w.bit_times(), 2);
  EXPECT_TRUE(w.level(0, 0));    // LSB of beat 0
  EXPECT_FALSE(w.level(7, 0));   // MSB of beat 0
  EXPECT_TRUE(w.level(8, 0));    // DBI high (non-inverted)
  EXPECT_FALSE(w.level(7, 1));   // beat 1 inverted: MSB 1 -> 0
  EXPECT_TRUE(w.level(0, 1));    // inverted LSB 0 -> 1
  EXPECT_FALSE(w.level(8, 1));   // DBI low
}

// The headline property: waveform-level accounting reproduces the
// beat-level counters for chained encoded bursts of any scheme.
class WaveformCrossCheck : public ::testing::TestWithParam<Scheme> {};

TEST_P(WaveformCrossCheck, MatchesBurstAccounting) {
  const auto encoder = make_encoder(GetParam(), CostWeights{0.5, 0.5});
  GroupWaveform wave(kCfg);
  BusState state = BusState::all_ones(kCfg);
  std::int64_t zeros = 0, transitions = 0;
  for (const Burst& b : test::random_bursts(kCfg, 40, 7)) {
    const EncodedBurst e = encoder->encode(b, state);
    const BurstStats s = e.stats(state);
    zeros += s.zeros;
    transitions += s.transitions;
    wave.append(e);
    state = e.final_state();
  }
  EXPECT_EQ(wave.zero_level_time(), zeros);
  EXPECT_EQ(wave.edges(), transitions);
}

INSTANTIATE_TEST_SUITE_P(Schemes, WaveformCrossCheck,
                         ::testing::Values(Scheme::kDc, Scheme::kAc,
                                           Scheme::kAcDc, Scheme::kOpt,
                                           Scheme::kOptFixed));

TEST(Waveform, RawStreamMatchesBurstAccounting) {
  // RAW parks the DBI wire high (its initial level), so the cross-check
  // holds for pure RAW streams too.
  const auto encoder = make_raw_encoder();
  GroupWaveform wave(kCfg);
  BusState state = BusState::all_ones(kCfg);
  std::int64_t zeros = 0, transitions = 0;
  for (const Burst& b : test::random_bursts(kCfg, 30, 17)) {
    const EncodedBurst e = encoder->encode(b, state);
    zeros += e.zeros();
    transitions += e.transitions(state);
    wave.append(e);
    state = e.final_state();
  }
  EXPECT_EQ(wave.zero_level_time(), zeros);
  EXPECT_EQ(wave.edges(), transitions);
  EXPECT_EQ(wave.line_edges(8), 0);      // DBI wire never moved
  EXPECT_EQ(wave.line_zero_time(8), 0);  // and idled high
}

TEST(Waveform, EnergyMatchesInterfaceModel) {
  const power::PodParams pod = power::PodParams::pod135(3e-12, 12e9);
  const auto encoder = make_opt_fixed_encoder();
  GroupWaveform wave(kCfg);
  BusState state = BusState::all_ones(kCfg);
  double burst_energy_sum = 0.0;
  for (const Burst& b : test::random_bursts(kCfg, 25, 27)) {
    const EncodedBurst e = encoder->encode(b, state);
    burst_energy_sum += power::burst_energy(pod, e.stats(state));
    wave.append(e);
    state = e.final_state();
  }
  EXPECT_NEAR(wave.energy(pod), burst_energy_sum, 1e-15);
}

TEST(Waveform, LongestZeroRunFindsWorstLine) {
  const BusConfig cfg{8, 4};
  GroupWaveform w(cfg);
  // Bit 0 low for all four beats; bit 1 low for two, high, low.
  const Burst data(cfg, std::array<Word, 4>{0b100, 0b100, 0b110, 0b100});
  w.append(EncodedBurst::from_inversion_mask(data, 0));
  EXPECT_EQ(w.line_longest_zero_run(0), 4);
  EXPECT_EQ(w.line_longest_zero_run(1), 2);
  EXPECT_EQ(w.line_longest_zero_run(2), 0);
  EXPECT_EQ(w.line_longest_zero_run(8), 0);  // DBI stayed high
}

TEST(Waveform, DbiDcBoundsZeroTimeShare) {
  // DBI DC guarantees <= 4 zeros per 9-line beat, so the waveform can
  // never spend more than 4/9 of its line-time at zero level.
  const auto encoder = make_dc_encoder();
  GroupWaveform wave(kCfg);
  BusState state = BusState::all_ones(kCfg);
  for (const Burst& b : test::random_bursts(kCfg, 60, 37)) {
    const EncodedBurst e = encoder->encode(b, state);
    wave.append(e);
    state = e.final_state();
  }
  const double share =
      static_cast<double>(wave.zero_level_time()) /
      (static_cast<double>(wave.bit_times()) * wave.lines());
  EXPECT_LE(share, 4.0 / 9.0);
}

TEST(Waveform, RejectsGeometryMismatch) {
  GroupWaveform w(kCfg);
  const Burst wrong(BusConfig{8, 4});
  EXPECT_THROW(
      w.append(EncodedBurst::from_inversion_mask(wrong, 0)),
      std::invalid_argument);
}

}  // namespace
}  // namespace dbi::phy
