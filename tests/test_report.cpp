#include "netlist/report.hpp"

#include <gtest/gtest.h>

namespace dbi::netlist {
namespace {

// A small circuit with known composition: 4 XOR + 2 INV.
Netlist small_design(Bus* in_out, Bus* out_bus) {
  Netlist nl;
  const Bus in = make_input_bus(nl, "in", 4);
  Bus out;
  for (int i = 0; i < 4; ++i)
    out.push_back(nl.xor2(in[static_cast<std::size_t>(i)],
                          in[static_cast<std::size_t>((i + 1) % 4)]));
  out[0] = nl.inv(out[0]);
  out[1] = nl.inv(out[1]);
  mark_output_bus(nl, out, "out");
  *in_out = in;
  *out_bus = out;
  return nl;
}

TEST(Report, AreaAndLeakageAreSums) {
  Bus in, out;
  const Netlist nl = small_design(&in, &out);
  const TechnologyModel tech = TechnologyModel::generic_32nm();
  Simulator sim(nl);
  sim.eval();
  sim.accumulate();
  const SynthesisReport r =
      synthesize("small", nl, tech, sim, PipelineSpec{1, 0, 0.6});
  const double expected_area = 4 * tech.cell(GateKind::kXor2).area_um2 +
                               2 * tech.cell(GateKind::kInv).area_um2;
  EXPECT_NEAR(r.area_um2, expected_area, 1e-9);
  const double expected_leak = 4 * tech.cell(GateKind::kXor2).leakage_w +
                               2 * tech.cell(GateKind::kInv).leakage_w;
  EXPECT_NEAR(r.static_power_w, expected_leak, 1e-15);
  EXPECT_EQ(r.cells, 6u);
  EXPECT_EQ(r.register_bits, 0u);  // single stage -> no retimed ranks
}

TEST(Report, DynamicEnergyFollowsMeasuredToggles) {
  Bus in, out;
  const Netlist nl = small_design(&in, &out);
  const TechnologyModel tech = TechnologyModel::generic_32nm();
  Simulator sim(nl);
  sim.set_input_bus(in, 0b0000);
  sim.eval();
  sim.accumulate();
  sim.set_input_bus(in, 0b1111);  // XOR outputs stay 0 -> INVs stay 1
  sim.eval();
  sim.accumulate();
  sim.set_input_bus(in, 0b0001);  // xors of neighbours toggle
  sim.eval();
  sim.accumulate();
  const SynthesisReport r =
      synthesize("small", nl, tech, sim, PipelineSpec{1, 0, 0.6});
  // Manual count: cycle2 no physical toggles; cycle3 in=0001:
  // xor pairs (0^0? ...) out bits = in[i]^in[i+1] = 1,0,0,1 vs previous
  // 0,0,0,0 -> xor0 and xor3 toggle; inv0 toggles. 2 xor + 1 inv.
  const double expected =
      (2 * tech.cell(GateKind::kXor2).toggle_energy_j +
       1 * tech.cell(GateKind::kInv).toggle_energy_j) /
      2.0;  // averaged over cycles-1 = 2
  EXPECT_NEAR(r.dyn_energy_per_cycle_j, expected, 1e-21);
}

TEST(Report, PipelineRegistersAddAreaAndClockEnergy) {
  Bus in, out;
  const Netlist nl = small_design(&in, &out);
  const TechnologyModel tech = TechnologyModel::generic_32nm();
  Simulator sim(nl);
  sim.eval();
  sim.accumulate();
  const SynthesisReport flat =
      synthesize("s1", nl, tech, sim, PipelineSpec{1, 0, 0.6});
  const SynthesisReport piped =
      synthesize("s4", nl, tech, sim, PipelineSpec{4, 0, 0.5});
  // 3 internal ranks x 0.5 x 4 output bits = 6 DFFs.
  EXPECT_EQ(piped.register_bits, 6u);
  EXPECT_NEAR(piped.area_um2 - flat.area_um2,
              6 * tech.cell(GateKind::kDff).area_um2, 1e-9);
  EXPECT_GT(piped.dyn_energy_per_cycle_j, flat.dyn_energy_per_cycle_j);
  EXPECT_GT(piped.fmax_hz, flat.fmax_hz);
}

TEST(Report, ExplicitCutWidthOverridesOutputs) {
  Bus in, out;
  const Netlist nl = small_design(&in, &out);
  const TechnologyModel tech = TechnologyModel::generic_32nm();
  Simulator sim(nl);
  sim.eval();
  sim.accumulate();
  const SynthesisReport r =
      synthesize("s", nl, tech, sim, PipelineSpec{3, 10, 1.0});
  EXPECT_EQ(r.register_bits, 20u);  // 2 ranks x 10 bits
}

TEST(Report, DerivedPowerNumbers) {
  SynthesisReport r;
  r.static_power_w = 100e-6;
  r.dyn_energy_per_cycle_j = 1e-12;
  EXPECT_NEAR(r.dynamic_power_at(1.5e9), 1.5e-3, 1e-12);
  EXPECT_NEAR(r.total_power_at(1.5e9), 1.5e-3 + 100e-6, 1e-12);
  EXPECT_NEAR(r.energy_per_burst_at(1e9), 1e-12 + 100e-6 / 1e9, 1e-20);
}

TEST(Report, RejectsBadPipelineSpecs) {
  Bus in, out;
  const Netlist nl = small_design(&in, &out);
  const TechnologyModel tech = TechnologyModel::generic_32nm();
  Simulator sim(nl);
  EXPECT_THROW(
      synthesize("s", nl, tech, sim, PipelineSpec{0, 0, 0.6}),
      std::invalid_argument);
  EXPECT_THROW(
      synthesize("s", nl, tech, sim, PipelineSpec{2, 0, 0.0}),
      std::invalid_argument);
  EXPECT_THROW(
      synthesize("s", nl, tech, sim, PipelineSpec{2, 0, 1.5}),
      std::invalid_argument);
}

}  // namespace
}  // namespace dbi::netlist
