// Batched decode engine + Session decode / round-trip directions:
// bit-exactness of BatchDecoder against the scalar receive path for
// every scheme and geometry, the kDecode / kRoundTrip Session
// pipelines, engine-speed fault injection, and corrupted-mask
// detection through verify_encoded_trace.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "api/session.hpp"
#include "api/verify.hpp"
#include "core/encoder.hpp"
#include "engine/batch_decoder.hpp"
#include "engine/batch_encoder.hpp"
#include "engine/shard_pool.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "workload/rng.hpp"

namespace dbi {
namespace {

constexpr Scheme kAllSchemes[] = {
    Scheme::kRaw, Scheme::kDc,       Scheme::kAc,        Scheme::kAcDc,
    Scheme::kOpt, Scheme::kOptFixed, Scheme::kExhaustive};

constexpr Scheme kFastSchemes[] = {Scheme::kRaw, Scheme::kDc, Scheme::kAc,
                                   Scheme::kAcDc, Scheme::kOpt,
                                   Scheme::kOptFixed};

/// Random packed payload at any geometry (remainder-group bytes masked
/// to their narrower group).
std::vector<std::uint8_t> random_payload(const Geometry& g, int bursts,
                                         std::uint64_t seed) {
  workload::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> bytes(
      static_cast<std::size_t>(bursts) *
      static_cast<std::size_t>(g.bytes_per_burst()));
  if (g.is_wide()) {
    const WideBusConfig cfg = g.wide_bus();
    const int groups = cfg.groups();
    for (std::size_t i = 0; i < bytes.size(); ++i)
      bytes[i] = static_cast<std::uint8_t>(
          rng.next() & cfg.group_mask(static_cast<int>(i) % groups));
  } else {
    const BusConfig cfg = g.bus();
    const auto bpb = static_cast<std::size_t>(cfg.bytes_per_beat());
    for (std::size_t t = 0; t < bytes.size() / bpb; ++t) {
      const Word w = static_cast<Word>(rng.next()) & cfg.dq_mask();
      for (std::size_t b = 0; b < bpb; ++b)
        bytes[t * bpb + b] = static_cast<std::uint8_t>(w >> (8 * b));
    }
  }
  return bytes;
}

/// Unpacks beat t of a packed narrow burst.
Word packed_word(const std::uint8_t* burst, const BusConfig& cfg, int t) {
  Word w = 0;
  for (int b = 0; b < cfg.bytes_per_beat(); ++b)
    w |= static_cast<Word>(burst[t * cfg.bytes_per_beat() + b]) << (8 * b);
  return w;
}

// ---------------------------------------------------------------- engine

// The scalar encoder produces the physical wire stream; BatchDecoder
// must recover the payload bit-exactly from (transmitted bytes, masks)
// for every scheme — including the exhaustive ablation, whose masks
// come from the brute-force search.
TEST(BatchDecoder, MatchesScalarReceivePathEverySchemeNarrow) {
  for (const Scheme scheme : kAllSchemes) {
    for (const BusConfig cfg :
         {BusConfig{8, 8}, BusConfig{12, 8}, BusConfig{8, 5},
          BusConfig{3, 8}, BusConfig{32, 8}}) {
      for (const bool reset_per_burst : {false, true}) {
      const Geometry g = Geometry::narrow(cfg.width, cfg.burst_length);
      const int n = scheme == Scheme::kExhaustive ? 24 : 80;
      const auto payload =
          random_payload(g, n, 17 + static_cast<std::uint64_t>(cfg.width));
      const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());

      const auto encoder = make_encoder(scheme, CostWeights{0.56, 0.44});
      std::vector<std::uint8_t> tx(payload.size());
      std::vector<std::uint64_t> masks(static_cast<std::size_t>(n));
      BusState state = BusState::all_ones(cfg);
      std::vector<Word> words(static_cast<std::size_t>(cfg.burst_length));
      for (int i = 0; i < n; ++i) {
        if (reset_per_burst) state = BusState::all_ones(cfg);
        const std::uint8_t* src = payload.data() + i * bb;
        for (int t = 0; t < cfg.burst_length; ++t)
          words[static_cast<std::size_t>(t)] = packed_word(src, cfg, t);
        const Burst burst(cfg, words);
        const EncodedBurst e = encoder->encode(burst, state);
        masks[static_cast<std::size_t>(i)] = e.inversion_mask();
        for (int t = 0; t < cfg.burst_length; ++t) {
          const Word w = e.beat(t).dq;
          for (int b = 0; b < cfg.bytes_per_beat(); ++b)
            tx[i * bb + static_cast<std::size_t>(t * cfg.bytes_per_beat() +
                                                 b)] =
                static_cast<std::uint8_t>(w >> (8 * b));
        }
        state = e.final_state();

        // Scalar twin agrees with EncodedBurst::decode.
        std::vector<Word> tx_words(
            static_cast<std::size_t>(cfg.burst_length));
        for (int t = 0; t < cfg.burst_length; ++t)
          tx_words[static_cast<std::size_t>(t)] = e.beat(t).dq;
        EXPECT_EQ(engine::BatchDecoder::decode_scalar(
                      cfg, tx_words, masks[static_cast<std::size_t>(i)]),
                  burst);
      }

      const engine::BatchDecoder decoder;
      std::vector<std::uint8_t> out(tx.size());
      decoder.decode_packed(tx, masks, cfg, out);
      EXPECT_EQ(out, payload) << scheme_name(scheme) << " x" << cfg.width
                              << " BL" << cfg.burst_length;

      // In-place decode over the transmitted buffer itself.
      std::vector<std::uint8_t> in_place = tx;
      decoder.decode_packed(in_place, masks, cfg, in_place);
      EXPECT_EQ(in_place, payload);
      }
    }
  }
}

TEST(BatchDecoder, MatchesPerGroupScalarReceivePathWide) {
  engine::ShardPool pool(3);
  for (const Scheme scheme : kFastSchemes) {
    for (const int width : {16, 64, 12, 20}) {
      const Geometry g = Geometry::wide(width);
      const WideBusConfig cfg = g.wide_bus();
      const int groups = cfg.groups();
      const int n = 64;
      const auto payload =
          random_payload(g, n, 31 + static_cast<std::uint64_t>(width));
      const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());

      const auto encoder = make_encoder(scheme, CostWeights{0.56, 0.44});
      std::vector<std::uint8_t> tx(payload.size());
      std::vector<std::uint64_t> masks(static_cast<std::size_t>(n) *
                                       static_cast<std::size_t>(groups));
      for (int grp = 0; grp < groups; ++grp) {
        const BusConfig gcfg = cfg.group_config(grp);
        BusState state = BusState::all_ones(gcfg);
        std::vector<Word> words(static_cast<std::size_t>(cfg.burst_length));
        for (int i = 0; i < n; ++i) {
          for (int t = 0; t < cfg.burst_length; ++t)
            words[static_cast<std::size_t>(t)] =
                payload[i * bb + static_cast<std::size_t>(t * groups + grp)];
          const Burst burst(gcfg, words);
          const EncodedBurst e = encoder->encode(burst, state);
          masks[static_cast<std::size_t>(i * groups + grp)] =
              e.inversion_mask();
          for (int t = 0; t < cfg.burst_length; ++t)
            tx[i * bb + static_cast<std::size_t>(t * groups + grp)] =
                static_cast<std::uint8_t>(e.beat(t).dq);
          state = e.final_state();
        }
      }

      const engine::BatchDecoder decoder;
      std::vector<std::uint8_t> out(tx.size());
      decoder.decode_packed_wide(tx, masks, cfg, out);
      EXPECT_EQ(out, payload) << scheme_name(scheme) << " wide x" << width;

      // Pool-sharded and in-place decodes are bit-identical.
      std::vector<std::uint8_t> pooled = tx;
      decoder.decode_packed_wide(pooled, masks, cfg, pooled, &pool);
      EXPECT_EQ(pooled, payload);
    }
  }
}

TEST(BatchDecoder, PoolShardingIsDeterministic) {
  const BusConfig cfg{8, 8};
  const Geometry g = Geometry::narrow(8);
  const int n = 4096;  // big enough to actually split across workers
  const auto payload = random_payload(g, n, 9);
  const engine::BatchEncoder engine(Scheme::kAc);
  std::vector<engine::BurstResult> results(static_cast<std::size_t>(n));
  BusState state = BusState::all_ones(cfg);
  (void)engine.encode_packed(payload, cfg, state, results.data());
  std::vector<std::uint64_t> masks(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    masks[static_cast<std::size_t>(i)] =
        results[static_cast<std::size_t>(i)].invert_mask;

  const engine::BatchDecoder decoder;
  std::vector<std::uint8_t> tx(payload.size());
  decoder.apply_packed(payload, masks, cfg, tx);
  std::vector<std::uint8_t> serial(tx.size());
  decoder.decode_packed(tx, masks, cfg, serial);
  EXPECT_EQ(serial, payload);
  for (const int workers : {2, 3, 7}) {
    engine::ShardPool pool(workers);
    std::vector<std::uint8_t> sharded(tx.size());
    decoder.decode_packed(tx, masks, cfg, sharded, &pool);
    EXPECT_EQ(sharded, serial) << workers;
  }
}

TEST(BatchDecoder, RejectsMalformedInput) {
  const engine::BatchDecoder decoder;
  const BusConfig cfg{8, 8};
  std::vector<std::uint8_t> tx(16);
  std::vector<std::uint64_t> masks(2);
  std::vector<std::uint8_t> out(16);

  std::vector<std::uint8_t> short_out(8);
  EXPECT_THROW(decoder.decode_packed(tx, masks, cfg, short_out),
               std::invalid_argument);
  std::vector<std::uint64_t> short_masks(1);
  EXPECT_THROW(decoder.decode_packed(tx, short_masks, cfg, out),
               std::invalid_argument);
  std::vector<std::uint8_t> ragged(13);
  EXPECT_THROW(decoder.decode_packed(ragged, masks, cfg, out),
               std::invalid_argument);
  // Mask bits beyond burst_length.
  std::vector<std::uint64_t> tail = {0, std::uint64_t{1} << 8};
  EXPECT_THROW(decoder.decode_packed(tx, tail, cfg, out),
               std::invalid_argument);
  // Transmitted beat outside a narrow bus.
  const BusConfig narrow{5, 8};
  std::vector<std::uint8_t> bad_tx(8, 0xFF);
  std::vector<std::uint64_t> one_mask(1);
  std::vector<std::uint8_t> narrow_out(8);
  EXPECT_THROW(decoder.decode_packed(bad_tx, one_mask, narrow, narrow_out),
               std::invalid_argument);
  // Remainder-group byte outside its mask.
  const WideBusConfig w12{12, 8};
  std::vector<std::uint8_t> w12_tx(
      static_cast<std::size_t>(w12.bytes_per_burst()), 0xFF);
  std::vector<std::uint64_t> w12_masks(2);
  std::vector<std::uint8_t> w12_out(w12_tx.size());
  EXPECT_THROW(decoder.decode_packed_wide(w12_tx, w12_masks, w12, w12_out),
               std::invalid_argument);
}

// --------------------------------------------------------------- session

TEST(SessionRoundTrip, BitExactEverySchemeGeometryLanesAndPolicy) {
  for (const Scheme scheme : kFastSchemes) {
    for (const Geometry g : {Geometry::narrow(8), Geometry::narrow(12),
                             Geometry::wide(16), Geometry::wide(64)}) {
      for (const int lanes : {1, 3}) {
        for (const StatePolicy policy :
             {StatePolicy::kThread, StatePolicy::kResetPerBurst}) {
          const int n = 300;
          const auto payload = random_payload(
              g, n,
              101 + static_cast<std::uint64_t>(g.width()) +
                  static_cast<std::uint64_t>(lanes));

          SessionSpec spec;
          spec.scheme = scheme;
          spec.geometry = g;
          spec.lanes = lanes;
          spec.state_policy = policy;
          spec.direction = Direction::kRoundTrip;
          Session session(spec);
          auto source = make_packed_source(payload);
          std::vector<std::uint8_t> receiver_view;
          auto sink = make_payload_sink(receiver_view);
          const StreamStats totals = session.run(*source, *sink);

          EXPECT_TRUE(session.verify_report().ok())
              << scheme_name(scheme) << " " << g.to_string() << " lanes "
              << lanes;
          EXPECT_EQ(session.verify_report().bursts, n);
          EXPECT_EQ(totals.bursts, n);
          // The sink sees the receiver-side payload == the original.
          EXPECT_EQ(receiver_view, payload);

          // Totals match a plain encode run of the same stream.
          SessionSpec enc_spec = spec;
          enc_spec.direction = Direction::kEncode;
          Session enc_session(enc_spec);
          auto enc_source = make_packed_source(payload);
          EXPECT_EQ(enc_session.run(*enc_source), totals);
        }
      }
    }
  }
}

TEST(SessionRoundTrip, FaultInjectionReportsExactSites) {
  const Geometry g = Geometry::narrow(8);
  const int n = 64;
  const auto payload = random_payload(g, n, 55);

  SessionSpec spec;
  spec.scheme = Scheme::kAc;
  spec.geometry = g;
  spec.lanes = 3;
  spec.direction = Direction::kRoundTrip;
  spec.fault_injector = [](std::int64_t first_burst,
                           std::span<std::uint8_t> tx,
                           std::span<std::uint64_t> masks) {
    if (first_burst != 0) return;
    tx[7 * 8 + 2] ^= 0x10;         // burst 7, beat 2: one wire bit
    masks[12] ^= std::uint64_t{1} << 4;  // burst 12: one DBI decision
  };
  Session session(spec);
  auto source = make_packed_source(payload);
  (void)session.run(*source);

  const VerifyReport& report = session.verify_report();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.mismatched_units, 2);
  EXPECT_EQ(report.mismatched_beats, 2);
  ASSERT_EQ(report.sites.size(), 2u);
  EXPECT_EQ(report.sites[0],
            (MismatchSite{7, 7 % 3, 0, std::uint64_t{1} << 2}));
  EXPECT_EQ(report.sites[1],
            (MismatchSite{12, 12 % 3, 0, std::uint64_t{1} << 4}));
}

TEST(SessionRoundTrip, WideFaultInjectionAttributesGroup) {
  const Geometry g = Geometry::wide(64);
  const int n = 40;
  const auto payload = random_payload(g, n, 77);
  const int groups = g.groups();
  const auto bb = static_cast<std::size_t>(g.bytes_per_burst());

  SessionSpec spec;
  spec.scheme = Scheme::kDc;
  spec.geometry = g;
  spec.direction = Direction::kRoundTrip;
  spec.fault_injector = [&](std::int64_t first_burst,
                            std::span<std::uint8_t> tx,
                            std::span<std::uint64_t>) {
    if (first_burst != 0) return;
    tx[5 * bb + static_cast<std::size_t>(6 * groups + 3)] ^= 0x01;
  };
  Session session(spec);
  auto source = make_packed_source(payload);
  (void)session.run(*source);

  const VerifyReport& report = session.verify_report();
  ASSERT_EQ(report.sites.size(), 1u);
  EXPECT_EQ(report.sites[0],
            (MismatchSite{5, 0, 3, std::uint64_t{1} << 6}));
}

// The fault-study dichotomy (hw/fault_study.hpp) at engine speed: a
// fault that flips a *decision* but keeps data/DBI coherent transmits a
// legal, merely suboptimal encoding — the receiver still recovers the
// payload exactly (the paper's Section II robustness argument). Only a
// coherence-breaking fault corrupts data, and the round trip flags it.
TEST(SessionRoundTrip, CoherentFaultsStayDecodableIncoherentFaultsAreCaught) {
  const Geometry g = Geometry::narrow(8);
  const auto payload = random_payload(g, 128, 3);

  const auto run_with = [&](auto injector) {
    SessionSpec spec;
    spec.scheme = Scheme::kAc;
    spec.geometry = g;
    spec.direction = Direction::kRoundTrip;
    spec.fault_injector = injector;
    Session session(spec);
    auto source = make_packed_source(payload);
    (void)session.run(*source);
    return session.verify_report();
  };

  // Suboptimal-but-coherent: flip the decision AND the wire together.
  const auto coherent = run_with([](std::int64_t first,
                                    std::span<std::uint8_t> tx,
                                    std::span<std::uint64_t> masks) {
    if (first != 0) return;
    for (const int burst : {9, 40, 100}) {
      masks[static_cast<std::size_t>(burst)] ^= std::uint64_t{1} << 5;
      tx[static_cast<std::size_t>(burst) * 8 + 5] ^= 0xFF;
    }
  });
  EXPECT_TRUE(coherent.ok());

  // The same decision flips without the wire flip break coherence.
  const auto incoherent = run_with([](std::int64_t first,
                                      std::span<std::uint8_t>,
                                      std::span<std::uint64_t> masks) {
    if (first != 0) return;
    for (const int burst : {9, 40, 100})
      masks[static_cast<std::size_t>(burst)] ^= std::uint64_t{1} << 5;
  });
  EXPECT_FALSE(incoherent.ok());
  EXPECT_EQ(incoherent.mismatched_units, 3);
}

/// Writes an encoded trace into memory through the Session pipeline.
std::vector<std::uint8_t> record_encoded(const Geometry& g, Scheme scheme,
                                         int lanes,
                                         std::span<const std::uint8_t> payload,
                                         std::uint32_t chunk = 256,
                                         bool compress = true) {
  std::ostringstream os(std::ios::binary);
  trace::TraceWriterOptions wopt;
  wopt.bursts_per_chunk = chunk;
  wopt.compress = compress;
  wopt.encoded = true;
  wopt.enc_scheme = scheme_to_tag(scheme);
  wopt.enc_lanes = static_cast<std::uint16_t>(lanes);
  wopt.enc_policy = 0;
  auto writer =
      g.is_wide()
          ? std::make_unique<trace::TraceWriter>(os, g.wide_bus(), wopt)
          : std::make_unique<trace::TraceWriter>(os, g.bus(), wopt);

  SessionSpec spec;
  spec.scheme = scheme;
  spec.geometry = g;
  spec.lanes = lanes;
  Session session(spec);
  auto source = make_packed_source(payload);
  auto sink = make_encoded_trace_sink(*writer);
  (void)session.run(*source, *sink);
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

TEST(SessionDecode, RecoversPayloadFromEncodedTrace) {
  for (const Geometry g : {Geometry::narrow(8), Geometry::wide(64)}) {
    const int n = 2000;
    const auto payload = random_payload(g, n, 13);
    const auto image =
        record_encoded(g, Scheme::kAcDc, 2, payload, /*chunk=*/256);
    const auto reader = trace::TraceReader::from_bytes(image);
    ASSERT_TRUE(reader.encoded());
    ASSERT_GT(reader.chunk_count(), 4u);
    EXPECT_EQ(reader.header().enc_scheme, scheme_to_tag(Scheme::kAcDc));
    EXPECT_EQ(reader.header().enc_lanes, 2);

    SessionSpec spec;
    spec.direction = Direction::kDecode;
    spec.geometry = g;
    Session session(spec);
    auto source = make_trace_source(reader);
    std::vector<std::uint8_t> decoded;
    auto sink = make_payload_sink(decoded);
    const StreamStats totals = session.run(*source, *sink);

    EXPECT_EQ(decoded,
              std::vector<std::uint8_t>(payload.begin(), payload.end()));
    EXPECT_EQ(totals.bursts, n);
    // The receiver re-derives no line statistics.
    EXPECT_EQ(totals.zeros, 0);
    EXPECT_EQ(totals.transitions, 0);
  }
}

TEST(SessionDecode, RecoversPayloadFromEncodedPackedSource) {
  const Geometry g = Geometry::narrow(8);
  const BusConfig cfg = g.bus();
  const int n = 500;
  const auto payload = random_payload(g, n, 21);

  const engine::BatchEncoder engine(Scheme::kOpt, CostWeights{0.56, 0.44});
  std::vector<engine::BurstResult> results(static_cast<std::size_t>(n));
  BusState state = BusState::all_ones(cfg);
  (void)engine.encode_packed(payload, cfg, state, results.data());
  std::vector<std::uint64_t> masks(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    masks[static_cast<std::size_t>(i)] =
        results[static_cast<std::size_t>(i)].invert_mask;
  std::vector<std::uint8_t> tx(payload.size());
  engine::BatchDecoder().apply_packed(payload, masks, cfg, tx);

  SessionSpec spec;
  spec.direction = Direction::kDecode;
  spec.geometry = g;
  Session session(spec);
  auto source = make_encoded_packed_source(tx, masks);
  std::vector<std::uint8_t> decoded;
  auto sink = make_payload_sink(decoded);
  (void)session.run(*source, *sink);
  EXPECT_EQ(decoded, payload);
}

TEST(SessionDirections, RejectMisuse) {
  const Geometry g = Geometry::narrow(8);
  const auto payload = random_payload(g, 8, 1);
  const auto image = record_encoded(g, Scheme::kAc, 1, payload);
  const auto reader = trace::TraceReader::from_bytes(image);

  {  // kDecode needs masks.
    SessionSpec spec;
    spec.direction = Direction::kDecode;
    Session session(spec);
    auto source = make_packed_source(payload);
    EXPECT_THROW((void)session.run(*source), std::invalid_argument);
  }
  {  // kEncode refuses an encoded source (both trace and packed).
    Session session{SessionSpec{}};
    auto source = make_trace_source(reader);
    EXPECT_THROW((void)session.run(*source), std::invalid_argument);
  }
  {  // kRoundTrip refuses an encoded source.
    SessionSpec spec;
    spec.direction = Direction::kRoundTrip;
    Session session(spec);
    auto source = make_trace_source(reader);
    EXPECT_THROW((void)session.run(*source), std::invalid_argument);
  }
  {  // The incremental write surface is encode-only.
    SessionSpec spec;
    spec.direction = Direction::kDecode;
    Session session(spec);
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(session.bytes_per_write()));
    EXPECT_THROW((void)session.write(data), std::logic_error);
    EXPECT_THROW((void)session.write_stream(data), std::logic_error);
  }
  {  // fault_injector is round-trip-only.
    SessionSpec spec;
    spec.fault_injector = [](std::int64_t, std::span<std::uint8_t>,
                             std::span<std::uint64_t>) {};
    EXPECT_THROW(Session{spec}, std::invalid_argument);
  }
}

// ---------------------------------------------------------------- verify

TEST(VerifyEncodedTrace, CleanTraceIsBitExact) {
  for (const Geometry g : {Geometry::narrow(8), Geometry::wide(32)}) {
    const auto payload = random_payload(g, 600, 41);
    const auto image = record_encoded(g, Scheme::kAc, 3, payload);
    const auto reader = trace::TraceReader::from_bytes(image);
    const VerifyReport report = verify_encoded_trace(reader);
    EXPECT_TRUE(report.ok()) << g.to_string();
    EXPECT_EQ(report.bursts, 600);
  }
}

TEST(VerifyEncodedTrace, DetectsCorruptedMaskStream) {
  const Geometry g = Geometry::narrow(8);
  const auto payload = random_payload(g, 400, 91);
  // No compression so the mask chunk sits raw in the file and single
  // bytes can be flipped surgically.
  auto image = record_encoded(g, Scheme::kAc, 1, payload, /*chunk=*/4096,
                              /*compress=*/false);
  const auto clean = trace::TraceReader::from_bytes(image);
  ASSERT_TRUE(clean.chunk(0).has_mask());
  ASSERT_FALSE((clean.chunk(0).mask_flags & trace::kChunkFlagRle) != 0);

  // Flip burst 37's eight DBI decisions. (A SINGLE flipped decision can
  // be indistinguishable by construction: (tx, mask') is then often a
  // legal AC encoding of the shifted payload — DBI carries no
  // redundancy. Eight simultaneous flips cannot re-encode consistently
  // on this stream, so the coherence check must fire.)
  const std::size_t tamper_at =
      static_cast<std::size_t>(clean.chunk(0).mask_offset) +
      37 * trace::kMaskBytesPerBurst;
  image[tamper_at] ^= 0xFF;
  const auto tampered =
      trace::TraceReader::from_bytes(image, /*verify_crc=*/false);
  const VerifyReport report = verify_encoded_trace(tampered);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.sites.empty());
  EXPECT_GE(report.sites[0].burst, 37);

  // The CRC catches the same tampering when left on.
  EXPECT_THROW((void)trace::TraceReader::from_bytes(image),
               trace::TraceError);
}

TEST(VerifyEncodedTrace, WrongSchemeOverrideMismatches) {
  const Geometry g = Geometry::narrow(8);
  const auto payload = random_payload(g, 300, 23);
  const auto image = record_encoded(g, Scheme::kDc, 1, payload);
  const auto reader = trace::TraceReader::from_bytes(image);
  VerifyOptions opt;
  opt.scheme = Scheme::kAc;  // not what produced the masks
  EXPECT_FALSE(verify_encoded_trace(reader, opt).ok());
}

TEST(VerifyEncodedTrace, RequiresSchemeWhenHeaderHasNone) {
  const Geometry g = Geometry::narrow(8);
  const auto payload = random_payload(g, 64, 7);

  std::ostringstream os(std::ios::binary);
  trace::TraceWriterOptions wopt;
  wopt.encoded = true;  // no enc_scheme recorded
  trace::TraceWriter writer(os, g.bus(), wopt);
  const engine::BatchEncoder engine(Scheme::kAc);
  std::vector<engine::BurstResult> results(64);
  BusState state = BusState::all_ones(g.bus());
  (void)engine.encode_packed(payload, g.bus(), state, results.data());
  std::vector<std::uint64_t> masks(64);
  for (int i = 0; i < 64; ++i)
    masks[static_cast<std::size_t>(i)] =
        results[static_cast<std::size_t>(i)].invert_mask;
  std::vector<std::uint8_t> tx(payload.size());
  engine::BatchDecoder().apply_packed(payload, masks, g.bus(), tx);
  writer.write_encoded(tx, masks);
  writer.finish();
  const std::string s = os.str();
  const auto reader = trace::TraceReader::from_bytes(
      std::vector<std::uint8_t>(s.begin(), s.end()));

  EXPECT_THROW((void)verify_encoded_trace(reader), std::invalid_argument);
  VerifyOptions opt;
  opt.scheme = Scheme::kAc;
  EXPECT_TRUE(verify_encoded_trace(reader, opt).ok());
  // verify_encoded_trace refuses plain payload traces outright.
  std::ostringstream plain_os(std::ios::binary);
  trace::TraceWriter plain(plain_os, g.bus());
  plain.write_packed(payload);
  plain.finish();
  const std::string p = plain_os.str();
  const auto plain_reader = trace::TraceReader::from_bytes(
      std::vector<std::uint8_t>(p.begin(), p.end()));
  EXPECT_THROW((void)verify_encoded_trace(plain_reader),
               std::invalid_argument);
}

}  // namespace
}  // namespace dbi
