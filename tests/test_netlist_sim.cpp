#include "netlist/sim.hpp"

#include <gtest/gtest.h>

namespace dbi::netlist {
namespace {

TEST(Simulator, EvaluatesAllGateKinds) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId s = nl.add_input("s");
  const NetId g_buf = nl.buf(a);
  const NetId g_inv = nl.inv(a);
  const NetId g_and = nl.and2(a, b);
  const NetId g_nand = nl.nand2(a, b);
  const NetId g_or = nl.or2(a, b);
  const NetId g_nor = nl.nor2(a, b);
  const NetId g_xor = nl.xor2(a, b);
  const NetId g_xnor = nl.xnor2(a, b);
  const NetId g_mux = nl.mux2(a, b, s);
  Simulator sim(nl);
  for (int va = 0; va < 2; ++va)
    for (int vb = 0; vb < 2; ++vb)
      for (int vs = 0; vs < 2; ++vs) {
        sim.set_input(a, va);
        sim.set_input(b, vb);
        sim.set_input(s, vs);
        sim.eval();
        EXPECT_EQ(sim.value(g_buf), va == 1);
        EXPECT_EQ(sim.value(g_inv), va == 0);
        EXPECT_EQ(sim.value(g_and), va && vb);
        EXPECT_EQ(sim.value(g_nand), !(va && vb));
        EXPECT_EQ(sim.value(g_or), va || vb);
        EXPECT_EQ(sim.value(g_nor), !(va || vb));
        EXPECT_EQ(sim.value(g_xor), va != vb);
        EXPECT_EQ(sim.value(g_xnor), va == vb);
        EXPECT_EQ(sim.value(g_mux), vs ? vb : va);
      }
}

TEST(Simulator, RejectsDrivingNonInputs) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId g = nl.inv(a);
  Simulator sim(nl);
  EXPECT_THROW(sim.set_input(g, true), std::invalid_argument);
  EXPECT_THROW(sim.set_input(99, true), std::invalid_argument);
  EXPECT_THROW((void)sim.value(99), std::invalid_argument);
}

TEST(Simulator, ToggleFlopDividesClock) {
  Netlist nl;
  const NetId q = nl.add_dff();
  const NetId d = nl.inv(q);
  nl.set_dff_input(q, d);
  Simulator sim(nl);
  sim.eval();
  EXPECT_FALSE(sim.value(q));
  sim.clock();
  EXPECT_TRUE(sim.value(q));
  sim.clock();
  EXPECT_FALSE(sim.value(q));
  sim.clock();
  EXPECT_TRUE(sim.value(q));
}

TEST(Simulator, AccumulateCountsSettledToggles) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId n = nl.inv(a);
  const NetId x = nl.xor2(a, n);  // constant true after settling
  (void)x;
  Simulator sim(nl);
  sim.set_input(a, false);
  sim.eval();
  sim.accumulate();  // first cycle: snapshot only
  sim.set_input(a, true);
  sim.eval();
  sim.accumulate();  // a toggled, inv toggled, xor stayed 1
  const auto& t = sim.toggle_counts();
  EXPECT_EQ(t[static_cast<std::size_t>(GateKind::kInput)], 1);
  EXPECT_EQ(t[static_cast<std::size_t>(GateKind::kInv)], 1);
  EXPECT_EQ(t[static_cast<std::size_t>(GateKind::kXor2)], 0);
  EXPECT_EQ(sim.cycles(), 2);
  // Physical toggles only: the input toggle is not charged energy.
  EXPECT_DOUBLE_EQ(sim.mean_toggles_per_cycle(), 1.0);
}

TEST(Simulator, ResetActivityClearsCounters) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  (void)nl.inv(a);
  Simulator sim(nl);
  sim.set_input(a, false);
  sim.eval();
  sim.accumulate();
  sim.set_input(a, true);
  sim.eval();
  sim.accumulate();
  sim.reset_activity();
  EXPECT_EQ(sim.cycles(), 0);
  EXPECT_DOUBLE_EQ(sim.mean_toggles_per_cycle(), 0.0);
  EXPECT_EQ(sim.toggle_counts()[static_cast<std::size_t>(GateKind::kInv)],
            0);
}

TEST(Simulator, ShiftRegisterPropagatesOverCycles) {
  Netlist nl;
  const NetId in = nl.add_input("in");
  const NetId q0 = nl.add_dff(in);
  const NetId q1 = nl.add_dff(q0);
  const NetId q2 = nl.add_dff(q1);
  Simulator sim(nl);
  // Shift a single 1 through three stages.
  sim.set_input(in, true);
  sim.eval();
  sim.clock();
  sim.set_input(in, false);
  sim.eval();
  EXPECT_TRUE(sim.value(q0));
  EXPECT_FALSE(sim.value(q1));
  sim.clock();
  EXPECT_TRUE(sim.value(q1));
  EXPECT_FALSE(sim.value(q2));
  sim.clock();
  EXPECT_TRUE(sim.value(q2));
}

}  // namespace
}  // namespace dbi::netlist
