#include "netlist/timing.hpp"

#include <gtest/gtest.h>

namespace dbi::netlist {
namespace {

TEST(Timing, ChainDelayAccumulates) {
  Netlist nl;
  const TechnologyModel tech = TechnologyModel::generic_32nm();
  const NetId a = nl.add_input("a");
  NetId n = a;
  for (int i = 0; i < 5; ++i) n = nl.inv(n);
  nl.mark_output(n, "out");
  const TimingReport r = analyze_timing(nl, tech);
  EXPECT_NEAR(r.critical_path_s, 5 * tech.cell(GateKind::kInv).delay_s,
              1e-15);
  EXPECT_EQ(r.depth(), 6);  // input + 5 inverters on the recorded path
}

TEST(Timing, PicksTheLongerBranch) {
  Netlist nl;
  const TechnologyModel tech = TechnologyModel::generic_32nm();
  const NetId a = nl.add_input("a");
  const NetId short_path = nl.inv(a);
  NetId long_path = a;
  for (int i = 0; i < 4; ++i) long_path = nl.xor2(long_path, short_path);
  const NetId out = nl.and2(short_path, long_path);
  nl.mark_output(out, "out");
  const TimingReport r = analyze_timing(nl, tech);
  const double expected = tech.cell(GateKind::kInv).delay_s +
                          4 * tech.cell(GateKind::kXor2).delay_s +
                          tech.cell(GateKind::kAnd2).delay_s;
  EXPECT_NEAR(r.critical_path_s, expected, 1e-15);
}

TEST(Timing, RegisterBoundedPathsIncludeSequencing) {
  // in -> logic -> DFF: sink adds setup; DFF -> logic -> out starts at
  // clk-to-q.
  Netlist nl;
  const TechnologyModel tech = TechnologyModel::generic_32nm();
  const NetId a = nl.add_input("a");
  const NetId g = nl.xor2(a, a);
  (void)nl.add_dff(g);
  const TimingReport r = analyze_timing(nl, tech);
  EXPECT_NEAR(r.critical_path_s,
              tech.cell(GateKind::kXor2).delay_s + tech.dff_setup_s(),
              1e-15);

  Netlist nl2;
  const NetId q = nl2.add_dff();
  nl2.set_dff_input(q, nl2.add_const(false));
  const NetId out = nl2.inv(q);
  nl2.mark_output(out, "out");
  const TimingReport r2 = analyze_timing(nl2, tech);
  EXPECT_NEAR(r2.critical_path_s,
              tech.dff_clk_to_q_s() + tech.cell(GateKind::kInv).delay_s,
              1e-15);
}

TEST(Timing, EmptyNetlistHasZeroDelay) {
  const Netlist nl;
  const TimingReport r =
      analyze_timing(nl, TechnologyModel::generic_32nm());
  EXPECT_DOUBLE_EQ(r.critical_path_s, 0.0);
}

TEST(Timing, PipelineStagesRaiseFmax) {
  const TechnologyModel tech = TechnologyModel::generic_32nm();
  TimingReport r;
  r.critical_path_s = 4e-9;
  const double f1 = pipelined_fmax_hz(r, tech, 1);
  const double f4 = pipelined_fmax_hz(r, tech, 4);
  const double f8 = pipelined_fmax_hz(r, tech, 8);
  EXPECT_LT(f1, f4);
  EXPECT_LT(f4, f8);
  // Sequencing overhead bounds the return: never a linear 8x speedup.
  EXPECT_LT(f8, 8.0 * f1);
  EXPECT_NEAR(f1, 1.0 / (4e-9 + tech.dff_clk_to_q_s() + tech.dff_setup_s()),
              1.0);
  EXPECT_THROW((void)pipelined_fmax_hz(r, tech, 0), std::invalid_argument);
}

}  // namespace
}  // namespace dbi::netlist
