// Reproduces every number of the paper's Fig. 2 worked example and the
// Section III discussion around it — the strongest end-to-end anchor
// that our conventions (DBI polarity, zero/transition counting,
// boundary condition) are the paper's.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "core/encoder.hpp"
#include "core/pareto.hpp"
#include "core/trellis.hpp"
#include "sim/experiments.hpp"

namespace dbi {
namespace {

const BusState kBoundary = BusState::all_ones(BusConfig{8, 8});

TEST(PaperFig2, BurstParsesToTheListedBytes) {
  const Burst b = sim::paper_example_burst();
  EXPECT_EQ(b.word(0), 0x8Eu);  // 10001110
  EXPECT_EQ(b.word(1), 0x86u);  // 10000110
  EXPECT_EQ(b.word(2), 0x96u);  // 10010110
  EXPECT_EQ(b.word(3), 0xE9u);  // 11101001
  EXPECT_EQ(b.word(4), 0x7Du);  // 01111101
  EXPECT_EQ(b.word(5), 0xB7u);  // 10110111
  EXPECT_EQ(b.word(6), 0x57u);  // 01010111
  EXPECT_EQ(b.word(7), 0xC4u);  // 11000100
}

TEST(PaperFig2, DbiDcProduces26Zeros42Transitions) {
  const auto e = make_dc_encoder()->encode(sim::paper_example_burst(),
                                           kBoundary);
  EXPECT_EQ(e.zeros(), 26);
  EXPECT_EQ(e.transitions(kBoundary), 42);
  // The paper's Section III: cost 26 + 42 = 68 at alpha = beta = 1.
  EXPECT_DOUBLE_EQ(encoded_cost(e, kBoundary, CostWeights{1, 1}), 68.0);
}

TEST(PaperFig2, DbiAcProduces43Zeros22Transitions) {
  const auto e = make_ac_encoder()->encode(sim::paper_example_burst(),
                                           kBoundary);
  EXPECT_EQ(e.zeros(), 43);
  EXPECT_EQ(e.transitions(kBoundary), 22);
  EXPECT_DOUBLE_EQ(encoded_cost(e, kBoundary, CostWeights{1, 1}), 65.0);
}

TEST(PaperFig2, OptimalCostIs52) {
  const auto e = make_opt_encoder(CostWeights{1, 1})
                     ->encode(sim::paper_example_burst(), kBoundary);
  EXPECT_DOUBLE_EQ(encoded_cost(e, kBoundary, CostWeights{1, 1}), 52.0);
  // The paper reports the optimum 28 zeros + 24 transitions; the burst
  // also admits a second cost-52 optimum at (29, 23) and the trellis
  // tie-breaking may return either. Both are Pareto-optimal (checked
  // in ParetoFrontierHoldsTheBalancedEncodings).
  const std::pair<int, int> found{e.zeros(), e.transitions(kBoundary)};
  const bool is_known_optimum =
      found == std::pair<int, int>{28, 24} ||
      found == std::pair<int, int>{29, 23};
  EXPECT_TRUE(is_known_optimum)
      << "zeros=" << found.first << " transitions=" << found.second;
}

TEST(PaperFig2, ExhaustiveSearchConfirms52IsTheMinimum) {
  const auto e = make_exhaustive_encoder(CostWeights{1, 1})
                     ->encode(sim::paper_example_burst(), kBoundary);
  EXPECT_DOUBLE_EQ(encoded_cost(e, kBoundary, CostWeights{1, 1}), 52.0);
}

TEST(PaperFig2, StartEdgeWeightsAre8And10) {
  // Fig. 2 labels the two edges leaving the start node with 8
  // (non-inverted byte 0) and 10 (inverted byte 0) for alpha = beta = 1.
  const auto r = solve_trellis(sim::paper_example_burst(), kBoundary,
                               IntCostWeights{1, 1});
  EXPECT_EQ(r.node_costs[0][0], 8);
  EXPECT_EQ(r.node_costs[0][1], 10);
}

TEST(PaperFig2, FixedCoefficientEncoderAlsoFinds52) {
  const auto e = make_opt_fixed_encoder()->encode(sim::paper_example_burst(),
                                                  kBoundary);
  EXPECT_DOUBLE_EQ(encoded_cost(e, kBoundary, CostWeights{1, 1}), 52.0);
}

TEST(PaperFig2, ParetoFrontierHoldsTheBalancedEncodings) {
  // Section III: besides the DC (26, 42) and AC (43, 22) endpoints
  // there are balanced Pareto-optimal encodings that neither
  // conventional scheme can find. Exhaustive enumeration gives exactly
  // five distinct non-dominated (zeros, transitions) pairs for this
  // burst; the paper's "5 other pareto optimal encoding options"
  // counts encodings (inversion patterns), several of which share a
  // metric pair.
  const auto frontier =
      pareto_frontier(sim::paper_example_burst(), kBoundary);
  EXPECT_EQ(frontier.size(), 5u);
  EXPECT_TRUE(on_frontier(frontier, 26, 42));  // DBI DC endpoint
  EXPECT_TRUE(on_frontier(frontier, 27, 28));
  EXPECT_TRUE(on_frontier(frontier, 28, 24));  // the paper's optimum
  EXPECT_TRUE(on_frontier(frontier, 29, 23));  // cost-52 twin
  EXPECT_TRUE(on_frontier(frontier, 43, 22));  // DBI AC endpoint
  // DC / AC picks are the extreme ends.
  EXPECT_EQ(frontier.front().zeros, 26);
  EXPECT_EQ(frontier.back().transitions, 22);
}

TEST(PaperFig2, VaryingWeightsWalksTheFrontier) {
  // Sweeping alpha from 0 to 1 must visit several distinct Pareto
  // points, including the endpoints.
  const Burst b = sim::paper_example_burst();
  std::set<std::pair<int, int>> visited;
  for (int i = 0; i <= 100; ++i) {
    const auto w = CostWeights::ac_dc_tradeoff(i / 100.0);
    const auto e = make_opt_encoder(w)->encode(b, kBoundary);
    visited.insert({e.zeros(), e.transitions(kBoundary)});
  }
  EXPECT_GE(visited.size(), 4u);
  EXPECT_TRUE(visited.count({26, 42}));
  EXPECT_TRUE(visited.count({43, 22}));
}

}  // namespace
}  // namespace dbi
