// Cross-geometry property tests: the library is generic in bus width
// and burst length; these sweeps pin the core invariants everywhere,
// not just at the paper's 8x8 point.
#include <gtest/gtest.h>

#include <tuple>

#include "core/byte_utils.hpp"
#include "core/encoder.hpp"
#include "core/pareto.hpp"
#include "core/trellis.hpp"
#include "test_util.hpp"

namespace dbi {
namespace {

using Geometry = std::tuple<int, int>;  // width, burst_length

class GeometryProperties : public ::testing::TestWithParam<Geometry> {
 protected:
  [[nodiscard]] BusConfig config() const {
    const auto [width, bl] = GetParam();
    return BusConfig{width, bl};
  }
};

TEST_P(GeometryProperties, OptMatchesExhaustive) {
  const BusConfig cfg = config();
  const CostWeights w{0.37, 0.63};
  const auto opt = make_opt_encoder(w);
  const auto brute = make_exhaustive_encoder(w);
  const BusState prev = BusState::all_ones(cfg);
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const Burst data = test::random_burst(cfg, seed * 7 + 1);
    EXPECT_NEAR(encoded_cost(opt->encode(data, prev), prev, w),
                encoded_cost(brute->encode(data, prev), prev, w), 1e-9);
  }
}

TEST_P(GeometryProperties, DcBeatZeroBound) {
  // General form of the JEDEC guarantee: a DC-encoded beat never
  // transmits more than floor((width + 1) / 2) zeros.
  const BusConfig cfg = config();
  const int bound = (cfg.width + 1) / 2;
  const auto dc = make_dc_encoder();
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const auto e =
        dc->encode(test::random_burst(cfg, seed + 50),
                   BusState::all_ones(cfg));
    for (int i = 0; i < e.length(); ++i)
      EXPECT_LE(beat_zeros(e.beat(i), cfg), bound);
  }
}

TEST_P(GeometryProperties, AcBeatTransitionBound) {
  // Dual guarantee: an AC-encoded beat toggles at most
  // floor((width + 1) / 2) of the width + 1 lines.
  const BusConfig cfg = config();
  const int bound = (cfg.width + 1) / 2;
  const auto ac = make_ac_encoder();
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const BusState prev = BusState::all_ones(cfg);
    const auto e = ac->encode(test::random_burst(cfg, seed + 80), prev);
    Beat last = prev.last;
    for (int i = 0; i < e.length(); ++i) {
      EXPECT_LE(beat_transitions(last, e.beat(i), cfg), bound);
      last = e.beat(i);
    }
  }
}

TEST_P(GeometryProperties, AllSchemesDecode) {
  const BusConfig cfg = config();
  const BusState prev = BusState::all_ones(cfg);
  for (Scheme s : {Scheme::kDc, Scheme::kAc, Scheme::kAcDc, Scheme::kOpt,
                   Scheme::kOptFixed}) {
    const auto enc = make_encoder(s, CostWeights{0.5, 0.5});
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const Burst data = test::random_burst(cfg, seed + 111);
      EXPECT_EQ(enc->encode(data, prev).decode(), data)
          << scheme_name(s) << " width=" << cfg.width;
    }
  }
}

TEST_P(GeometryProperties, OptNeverLosesToAnyScheme) {
  const BusConfig cfg = config();
  const CostWeights w{0.5, 0.5};
  const auto opt = make_opt_encoder(w);
  const BusState prev = BusState::all_ones(cfg);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Burst data = test::random_burst(cfg, seed + 222);
    const double opt_cost = encoded_cost(opt->encode(data, prev), prev, w);
    for (Scheme s : {Scheme::kRaw, Scheme::kDc, Scheme::kAc,
                     Scheme::kAcDc}) {
      EXPECT_LE(opt_cost,
                encoded_cost(make_encoder(s, w)->encode(data, prev), prev,
                             w) +
                    1e-9);
    }
  }
}

TEST_P(GeometryProperties, TrellisIntDoubleAgreement) {
  const BusConfig cfg = config();
  const BusState prev = BusState::all_ones(cfg);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Burst data = test::random_burst(cfg, seed + 333);
    const auto ri = solve_trellis(data, prev, IntCostWeights{3, 4});
    const auto rd = solve_trellis(data, prev, CostWeights{3.0, 4.0});
    EXPECT_EQ(ri.invert_mask, rd.invert_mask);
    EXPECT_DOUBLE_EQ(static_cast<double>(ri.cost), rd.cost);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometryProperties,
    ::testing::Values(Geometry{1, 8}, Geometry{4, 8}, Geometry{5, 6},
                      Geometry{8, 4}, Geometry{8, 16}, Geometry{12, 8},
                      Geometry{16, 8}, Geometry{24, 4}, Geometry{32, 8}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "bl" +
             std::to_string(std::get<1>(info.param));
    });

// Weight-grid property: for every rational weight pair, scaling to
// integers preserves the trellis decision (the Section III argument
// that only alpha/beta matters).
class WeightScaling
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(WeightScaling, IntegerScalingPreservesDecisions) {
  const auto [a, b] = GetParam();
  const BusConfig cfg{8, 8};
  const BusState prev = BusState::all_ones(cfg);
  const double scale = 0.001;
  const CostWeights scaled{a * scale, b * scale};
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const Burst data = test::random_burst(cfg, seed * 13 + 5);
    const auto exact = solve_trellis(data, prev, scaled);
    const auto integer = solve_trellis(data, prev, IntCostWeights{a, b});
    // Costs must agree up to the scale factor; masks may differ only
    // between cost-equal optima (floating rounding can flip a
    // tie-break), so compare the masks through their costs.
    EXPECT_NEAR(exact.cost, scale * static_cast<double>(integer.cost),
                1e-9)
        << "a=" << a << " b=" << b;
    const auto from_int =
        EncodedBurst::from_inversion_mask(data, integer.invert_mask);
    EXPECT_NEAR(encoded_cost(from_int, prev, scaled), exact.cost, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, WeightScaling,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 3},
                                           std::pair{3, 1}, std::pair{2, 5},
                                           std::pair{7, 2}, std::pair{5, 8},
                                           std::pair{1, 10},
                                           std::pair{10, 1}));

// Chained-burst property: encoding a stream burst-by-burst with state
// threading equals the per-burst stats summed — no accounting leaks at
// burst boundaries (the channel relies on this).
TEST(StreamProperties, ChainedStatsAreConsistent) {
  const BusConfig cfg{8, 8};
  const auto enc = make_opt_fixed_encoder();
  BusState state = BusState::all_ones(cfg);
  BurstStats total;
  Beat last = state.last;
  std::vector<Beat> all_beats;
  for (const Burst& b : test::random_bursts(cfg, 30, 77)) {
    const EncodedBurst e = enc->encode(b, state);
    total += e.stats(state);
    for (int i = 0; i < e.length(); ++i) all_beats.push_back(e.beat(i));
    state = e.final_state();
  }
  // Recount from the flat beat sequence.
  int zeros = 0, transitions = 0;
  for (const Beat& beat : all_beats) {
    zeros += beat_zeros(beat, cfg);
    transitions += beat_transitions(last, beat, cfg);
    last = beat;
  }
  EXPECT_EQ(total.zeros, zeros);
  EXPECT_EQ(total.transitions, transitions);
}

// Pareto consistency at other geometries.
TEST(StreamProperties, ParetoHoldsOffDefaultGeometry) {
  const BusConfig cfg{6, 6};
  const BusState prev = BusState::all_ones(cfg);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Burst data = test::random_burst(cfg, seed + 404);
    const auto frontier = pareto_frontier(data, prev);
    for (double ac_cost : {0.2, 0.5, 0.8}) {
      const auto e = make_opt_encoder(CostWeights::ac_dc_tradeoff(ac_cost))
                         ->encode(data, prev);
      EXPECT_TRUE(on_frontier(frontier, e.zeros(), e.transitions(prev)));
    }
  }
}

}  // namespace
}  // namespace dbi
