// dbi::Session facade parity suite: for every Scheme x geometry
// (narrow x8, odd narrow x12, wide x16/x64, odd wide x12) x Source/Sink
// pairing, Session::run must be bit-exact — per-burst inversion masks
// and 64-bit totals — against an independent scalar reference that
// replays the documented semantics (burst g -> lane g % lanes, one
// threaded BusState per (lane, group), or the paper's all-ones
// boundary per burst). Also covers the incremental write surface
// against the scalar Channel path and the 64-bit counter satellites.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <type_traits>
#include <vector>

#include "api/session.hpp"
#include "core/encoder.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "workload/channel.hpp"
#include "workload/rng.hpp"

namespace {

using namespace dbi;

struct RefResult {
  std::uint64_t mask = 0;
  BurstStats stats;
};

struct Reference {
  std::vector<RefResult> results;  // [burst * groups + group]
  StreamStats totals;
};

/// Packs `bursts` random bursts at `g` into the beat-major packed
/// layout (every word masked to its group / lane width).
std::vector<std::uint8_t> random_packed(const Geometry& g, int bursts,
                                        std::uint64_t seed) {
  workload::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> bytes(
      static_cast<std::size_t>(bursts) *
      static_cast<std::size_t>(g.bytes_per_burst()));
  if (g.is_wide()) {
    const WideBusConfig cfg = g.wide_bus();
    std::size_t pos = 0;
    for (int i = 0; i < bursts; ++i)
      for (int t = 0; t < cfg.burst_length; ++t)
        for (int grp = 0; grp < cfg.groups(); ++grp)
          bytes[pos++] = static_cast<std::uint8_t>(rng.next() &
                                                   cfg.group_mask(grp));
  } else {
    const BusConfig cfg = g.bus();
    const int bpb = cfg.bytes_per_beat();
    std::size_t pos = 0;
    for (int i = 0; i < bursts; ++i)
      for (int t = 0; t < cfg.burst_length; ++t) {
        const Word w = static_cast<Word>(rng.next()) & cfg.dq_mask();
        for (int k = 0; k < bpb; ++k)
          bytes[pos++] = static_cast<std::uint8_t>(w >> (8 * k));
      }
  }
  return bytes;
}

/// Unpacks group `grp` of packed burst `i` into a standalone Burst.
Burst unpack_group(const Geometry& g, std::span<const std::uint8_t> bytes,
                   int i, int grp) {
  const BusConfig cfg = g.group_config(grp);
  Burst burst(cfg);
  const auto bb = static_cast<std::size_t>(g.bytes_per_burst());
  const std::uint8_t* base = bytes.data() + static_cast<std::size_t>(i) * bb;
  if (g.is_wide()) {
    const auto stride = static_cast<std::size_t>(g.groups());
    for (int t = 0; t < cfg.burst_length; ++t)
      burst.set_word(t, base[static_cast<std::size_t>(t) * stride +
                             static_cast<std::size_t>(grp)]);
  } else {
    const int bpb = g.bytes_per_beat();
    for (int t = 0; t < cfg.burst_length; ++t) {
      Word w = 0;
      for (int k = 0; k < bpb; ++k)
        w |= static_cast<Word>(base[static_cast<std::size_t>(t * bpb + k)])
             << (8 * k);
      burst.set_word(t, w);
    }
  }
  return burst;
}

/// Independent reference: the scalar Encoder hierarchy driven with the
/// documented Session semantics.
Reference reference_encode(const Geometry& g, std::span<const std::uint8_t> bytes,
                           int bursts, Scheme scheme, const CostWeights& w,
                           int lanes, bool reset_per_burst) {
  const auto encoder = make_encoder(scheme, w);
  const int groups = g.groups();
  std::vector<BusState> states(static_cast<std::size_t>(lanes) *
                               static_cast<std::size_t>(groups));
  for (int l = 0; l < lanes; ++l)
    for (int grp = 0; grp < groups; ++grp)
      states[static_cast<std::size_t>(l * groups + grp)] =
          BusState::all_ones(g.group_config(grp));

  Reference ref;
  ref.results.resize(static_cast<std::size_t>(bursts) *
                     static_cast<std::size_t>(groups));
  for (int i = 0; i < bursts; ++i) {
    const int lane = i % lanes;
    for (int grp = 0; grp < groups; ++grp) {
      BusState& state = states[static_cast<std::size_t>(lane * groups + grp)];
      if (reset_per_burst) state = BusState::all_ones(g.group_config(grp));
      const Burst burst = unpack_group(g, bytes, i, grp);
      const EncodedBurst e = encoder->encode(burst, state);
      RefResult r;
      r.mask = e.inversion_mask();
      r.stats = e.stats(state);
      state = e.final_state();
      ref.results[static_cast<std::size_t>(i) *
                      static_cast<std::size_t>(groups) +
                  static_cast<std::size_t>(grp)] = r;
      ref.totals.add(r.stats);
    }
  }
  return ref;
}

SessionSpec spec_for(const Geometry& g, Scheme scheme, const CostWeights& w,
                     int lanes, bool reset_per_burst) {
  SessionSpec spec;
  spec.scheme = scheme;
  spec.geometry = g;
  spec.lanes = lanes;
  spec.weights = w;
  spec.state_policy =
      reset_per_burst ? StatePolicy::kResetPerBurst : StatePolicy::kThread;
  return spec;
}

void expect_matches(const Reference& ref, const StreamStats& totals,
                    const std::vector<engine::BurstResult>& results,
                    const std::string& label) {
  EXPECT_EQ(totals.zeros, ref.totals.zeros) << label;
  EXPECT_EQ(totals.transitions, ref.totals.transitions) << label;
  ASSERT_EQ(results.size(), ref.results.size()) << label;
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].invert_mask, ref.results[i].mask)
        << label << " result " << i;
    EXPECT_EQ(results[i].stats, ref.results[i].stats)
        << label << " result " << i;
  }
}

const Geometry kGeometries[] = {
    Geometry::narrow(8), Geometry::narrow(12), Geometry::wide(12),
    Geometry::wide(16),  Geometry::wide(64),
};

// ------------------------------------------------- packed-source parity

TEST(SessionParity, PackedSourceEverySchemeGeometryLanesPolicy) {
  const CostWeights w{0.56, 0.44};
  for (const Geometry& g : kGeometries) {
    const std::vector<std::uint8_t> bytes = random_packed(g, 257, 99);
    for (const Scheme scheme :
         {Scheme::kRaw, Scheme::kDc, Scheme::kAc, Scheme::kAcDc, Scheme::kOpt,
          Scheme::kOptFixed}) {
      for (const int lanes : {1, 3}) {
        for (const bool reset : {false, true}) {
          const Reference ref =
              reference_encode(g, bytes, 257, scheme, w, lanes, reset);
          Session session(spec_for(g, scheme, w, lanes, reset));
          const auto source = make_packed_source(bytes);
          std::vector<engine::BurstResult> results;
          const auto sink = make_result_sink(results);
          const StreamStats totals = session.run(*source, *sink);
          expect_matches(ref, totals, results,
                         g.to_string() + " scheme " +
                             std::to_string(static_cast<int>(scheme)) +
                             " lanes " + std::to_string(lanes) +
                             (reset ? " reset" : " threaded"));
        }
      }
    }
  }
}

TEST(SessionParity, ExhaustiveFallbackSmall) {
  const CostWeights w{0.5, 0.5};
  for (const Geometry& g : {Geometry::narrow(8), Geometry::wide(12)}) {
    const std::vector<std::uint8_t> bytes = random_packed(g, 23, 7);
    const Reference ref =
        reference_encode(g, bytes, 23, Scheme::kExhaustive, w, 2, false);
    Session session(spec_for(g, Scheme::kExhaustive, w, 2, false));
    const auto source = make_packed_source(bytes);
    std::vector<engine::BurstResult> results;
    const auto sink = make_result_sink(results);
    const StreamStats totals = session.run(*source, *sink);
    expect_matches(ref, totals, results, "exhaustive " + g.to_string());
  }
}

// ----------------------------------------------- source-kind equivalence

TEST(SessionParity, BurstSourceMatchesPackedSource) {
  const Geometry g = Geometry::narrow(12);
  const std::vector<std::uint8_t> bytes = random_packed(g, 300, 5);
  std::vector<Burst> bursts;
  for (int i = 0; i < 300; ++i) bursts.push_back(unpack_group(g, bytes, i, 0));

  for (const bool reset : {false, true}) {
    Session a(spec_for(g, Scheme::kOpt, CostWeights{0.3, 0.7}, 1, reset));
    Session b(spec_for(g, Scheme::kOpt, CostWeights{0.3, 0.7}, 1, reset));
    const auto packed = make_packed_source(bytes);
    const auto spanned = make_burst_source(bursts);
    EXPECT_EQ(b.run(*spanned), a.run(*packed)) << "reset=" << reset;
  }
}

TEST(SessionParity, TraceSourceMatchesPackedSourceWithMasks) {
  for (const Geometry& g : {Geometry::narrow(8), Geometry::wide(16)}) {
    const std::vector<std::uint8_t> bytes = random_packed(g, 500, 31);
    // Round-trip through the binary trace format (small chunks so the
    // replay pipeline sees several of them).
    std::ostringstream image;
    {
      trace::TraceWriterOptions opt;
      opt.bursts_per_chunk = 64;
      auto writer =
          g.is_wide()
              ? trace::TraceWriter(image, g.wide_bus(), opt)
              : trace::TraceWriter(image, g.bus(), opt);
      writer.write_packed(bytes);
      writer.finish();
    }
    const std::string data = image.str();
    const auto reader = trace::TraceReader::from_bytes(
        std::vector<std::uint8_t>(data.begin(), data.end()));

    for (const int lanes : {1, 3}) {
      Session a(spec_for(g, Scheme::kAcDc, {}, lanes, false));
      Session b(spec_for(g, Scheme::kAcDc, {}, lanes, false));
      std::vector<engine::BurstResult> packed_results;
      std::vector<engine::BurstResult> trace_results;
      const auto packed = make_packed_source(bytes);
      const auto traced = make_trace_source(reader);
      const auto packed_sink = make_result_sink(packed_results);
      const auto trace_sink = make_result_sink(trace_results);
      const StreamStats pa = a.run(*packed, *packed_sink);
      const StreamStats tb = b.run(*traced, *trace_sink);
      EXPECT_EQ(pa.zeros, tb.zeros);
      EXPECT_EQ(pa.transitions, tb.transitions);
      EXPECT_EQ(pa.bursts, tb.bursts);
      EXPECT_EQ(packed_results, trace_results) << g.to_string();
    }
  }
}

TEST(SessionParity, CorpusSourceIsDeterministicAcrossRuns) {
  Session session(spec_for(Geometry::wide(32), Scheme::kAc, {}, 1, false));
  const auto s1 = make_corpus_source("float-tensor", 2048, 17);
  const auto s2 = make_corpus_source("float-tensor", 2048, 17);
  const StreamStats a = session.run(*s1);
  const StreamStats b = session.run(*s2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.bursts, 2048);
  EXPECT_GT(a.transitions, 0);
}

TEST(SessionParity, GeneratorSourceIsSinglePass) {
  Session session(spec_for(Geometry::narrow(8), Scheme::kDc, {}, 1, false));
  auto source = dbi::make_generator_source(
      workload::make_uniform_source(BusConfig{8, 8}, 3), 100);
  (void)session.run(*source);
  EXPECT_THROW((void)session.run(*source), std::logic_error);
}

// ------------------------------------------------- sink-kind equivalence

TEST(SessionParity, ObserverSinkSeesResultSinkResults) {
  const Geometry g = Geometry::wide(64);
  const std::vector<std::uint8_t> bytes = random_packed(g, 400, 77);
  Session session(spec_for(g, Scheme::kOptFixed, {}, 2, false));

  std::vector<engine::BurstResult> buffered;
  {
    const auto source = make_packed_source(bytes);
    const auto sink = make_result_sink(buffered);
    (void)session.run(*source, *sink);
  }
  std::vector<engine::BurstResult> observed;
  std::int64_t expected_next = 0;
  {
    const auto source = make_packed_source(bytes);
    const auto sink = make_observer_sink(
        [&](std::int64_t first, std::span<const engine::BurstResult> r) {
          EXPECT_EQ(first, expected_next);
          expected_next +=
              static_cast<std::int64_t>(r.size()) / g.groups();
          observed.insert(observed.end(), r.begin(), r.end());
        });
    (void)session.run(*source, *sink);
  }
  EXPECT_EQ(buffered, observed);
}

TEST(SessionParity, TraceSinkRecordsTheExactPayload) {
  // Record a corpus scenario through the Session pipeline, then replay
  // the file and check it matches the direct corpus run burst-exactly.
  const Geometry g = Geometry::wide(16);
  std::ostringstream image;
  {
    trace::TraceWriter writer(image, g.wide_bus(), {});
    const auto sink = make_trace_sink(writer);
    Session recorder(spec_for(g, Scheme::kRaw, {}, 1, false));
    const auto source = make_corpus_source("cacheline-memcpy", 1000, 9);
    const StreamStats totals = recorder.run(*source, *sink);
    EXPECT_EQ(totals.bursts, 1000);
    EXPECT_EQ(writer.bursts_written(), 1000);
  }
  const std::string data = image.str();
  const auto reader = trace::TraceReader::from_bytes(
      std::vector<std::uint8_t>(data.begin(), data.end()));

  Session replayer(spec_for(g, Scheme::kAc, {}, 1, false));
  Session direct(spec_for(g, Scheme::kAc, {}, 1, false));
  const auto traced = make_trace_source(reader);
  const auto corpus = make_corpus_source("cacheline-memcpy", 1000, 9);
  EXPECT_EQ(replayer.run(*traced), direct.run(*corpus));
}

TEST(SessionParity, StatsSinkMatchesResultSinkTotals) {
  const Geometry g = Geometry::narrow(8);
  const std::vector<std::uint8_t> bytes = random_packed(g, 512, 2);
  Session a(spec_for(g, Scheme::kDc, {}, 4, false));
  Session b(spec_for(g, Scheme::kDc, {}, 4, false));
  const auto s1 = make_packed_source(bytes);
  const auto s2 = make_packed_source(bytes);
  std::vector<engine::BurstResult> results;
  const auto rsink = make_result_sink(results);
  const StreamStats with_results = a.run(*s1, *rsink);
  const StreamStats stats_only = b.run(*s2);
  EXPECT_EQ(with_results, stats_only);
  const auto sum = std::accumulate(
      results.begin(), results.end(), std::int64_t{0},
      [](std::int64_t acc, const engine::BurstResult& r) {
        return acc + r.stats.zeros + r.stats.transitions;
      });
  EXPECT_EQ(sum, stats_only.zeros + stats_only.transitions);
}

// ----------------------------------------------- threading determinism

TEST(SessionParity, OwnedPoolMatchesSerial) {
  const Geometry g = Geometry::wide(64);
  const std::vector<std::uint8_t> bytes = random_packed(g, 600, 123);
  SessionSpec serial = spec_for(g, Scheme::kAc, {}, 3, false);
  SessionSpec pooled = serial;
  pooled.threads = 4;
  Session a(serial);
  Session b(pooled);
  const auto s1 = make_packed_source(bytes);
  const auto s2 = make_packed_source(bytes);
  EXPECT_EQ(a.run(*s1), b.run(*s2));
}

// ------------------------------------------------- geometry validation

TEST(SessionSpecValidation, RejectsBadGeometryAndMismatchedSources) {
  SessionSpec spec;
  spec.geometry = Geometry::wide(65);
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  EXPECT_THROW(Geometry::narrow(33).validate(), std::invalid_argument);
  EXPECT_THROW((void)Geometry::narrow(8).wide_bus(), std::logic_error);
  EXPECT_THROW((void)Geometry::wide(16).bus(), std::logic_error);

  // A wide-geometry session rejects a narrow Burst-span source.
  Session session(spec_for(Geometry::wide(16), Scheme::kDc, {}, 1, false));
  std::vector<Burst> bursts(3, Burst(BusConfig{8, 8}));
  auto source = make_burst_source(bursts);
  EXPECT_THROW((void)session.run(*source), std::invalid_argument);

  // Packed payloads must be whole bursts.
  Session narrow(spec_for(Geometry::narrow(8), Scheme::kDc, {}, 1, false));
  const std::vector<std::uint8_t> ragged(13, 0);
  auto packed = make_packed_source(ragged);
  EXPECT_THROW((void)narrow.run(*packed), std::invalid_argument);
}

// --------------------------------------------- incremental write surface

TEST(SessionWrite, MatchesScalarChannelIncludingResetPolicy) {
  workload::Xoshiro256 rng(2027);
  for (const bool reset : {false, true}) {
    for (const int lanes : {4, 8}) {
      workload::ChannelConfig cfg{lanes, BusConfig{8, 8}, reset};
      workload::Channel scalar(cfg, make_encoder(Scheme::kAcDc, {}));
      SessionSpec spec = spec_for(Geometry::narrow(8), Scheme::kAcDc, {},
                                  lanes, reset);
      Session session(spec);

      std::vector<std::uint8_t> data(
          static_cast<std::size_t>(cfg.bytes_per_write()) * 64);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());

      // Interleave write() and write_stream() so both surfaces share
      // the same threaded line state.
      const auto one = std::span<const std::uint8_t>(data).first(
          static_cast<std::size_t>(cfg.bytes_per_write()));
      std::vector<EncodedBurst> mine;
      (void)session.write(one, &mine);
      const std::vector<EncodedBurst> theirs = scalar.write(one);
      ASSERT_EQ(mine.size(), theirs.size());
      for (std::size_t l = 0; l < mine.size(); ++l)
        EXPECT_EQ(mine[l].inversion_mask(), theirs[l].inversion_mask());

      const StreamStats d1 = session.write_stream(data);
      const StreamStats d2 = scalar.write_stream(data);
      EXPECT_EQ(d1, d2) << "lanes=" << lanes << " reset=" << reset;
      EXPECT_EQ(session.stats(), scalar.stats());

      session.reset();
      EXPECT_EQ(session.stats(), StreamStats{});
    }
  }
}

TEST(SessionWrite, RejectsNonChannelGeometry) {
  Session session(spec_for(Geometry::wide(32), Scheme::kDc, {}, 1, false));
  const std::vector<std::uint8_t> data(32, 0);
  EXPECT_THROW((void)session.write_stream(data), std::logic_error);
  EXPECT_THROW((void)session.write(data), std::logic_error);
}

// --------------------------------------------------- 64-bit satellites

TEST(StreamStats64Bit, CountersAndChannelByteMathAre64Bit) {
  static_assert(
      std::is_same_v<decltype(workload::ChannelConfig{}.bytes_per_write()),
                     std::int64_t>,
      "bytes_per_write must be 64-bit so byte offsets never overflow int");
  static_assert(std::is_same_v<decltype(StreamStats{}.zeros), std::int64_t>);

  // The maximal channel geometry times a multi-billion write count must
  // not wrap: 4096 B/write * 2^21 writes ~ 8.6 GB > INT32_MAX.
  const workload::ChannelConfig cfg{64, BusConfig{8, 64}, false};
  EXPECT_EQ(cfg.bytes_per_write(), 4096);
  const std::int64_t writes = std::int64_t{1} << 21;
  EXPECT_EQ(cfg.bytes_per_write() * writes, std::int64_t{1} << 33);

  // StreamStats accumulation past INT32_MAX (the old int-typed
  // BurstStats ceiling).
  StreamStats stats;
  const BurstStats chunk{2'000'000'000, 2'000'000'000};
  stats.add(chunk);
  stats.add(chunk);
  EXPECT_EQ(stats.zeros, 4'000'000'000LL);
  EXPECT_EQ(stats.transitions, 4'000'000'000LL);
  EXPECT_EQ(stats.bursts, 2);
  EXPECT_DOUBLE_EQ(stats.zeros_per_burst(), 2'000'000'000.0);
}

}  // namespace
