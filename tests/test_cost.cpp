#include "core/cost.hpp"

#include <gtest/gtest.h>

namespace dbi {
namespace {

TEST(CostWeights, BurstCostIsLinear) {
  const BurstStats s{26, 42};
  EXPECT_DOUBLE_EQ(burst_cost(s, CostWeights{1.0, 1.0}), 68.0);
  EXPECT_DOUBLE_EQ(burst_cost(s, CostWeights{0.0, 1.0}), 26.0);
  EXPECT_DOUBLE_EQ(burst_cost(s, CostWeights{1.0, 0.0}), 42.0);
  EXPECT_DOUBLE_EQ(burst_cost(s, CostWeights{0.5, 0.25}), 21.0 + 6.5);
}

TEST(CostWeights, IntegerCostMatchesDouble) {
  const BurstStats s{13, 7};
  EXPECT_EQ(burst_cost(s, IntCostWeights{3, 2}), 3 * 7 + 2 * 13);
  EXPECT_DOUBLE_EQ(burst_cost(s, CostWeights{3.0, 2.0}),
                   static_cast<double>(burst_cost(s, IntCostWeights{3, 2})));
}

TEST(CostWeights, ValidateRejectsNegative) {
  EXPECT_THROW((CostWeights{-0.1, 1.0}.validate()), std::invalid_argument);
  EXPECT_THROW((CostWeights{1.0, -1.0}.validate()), std::invalid_argument);
  EXPECT_NO_THROW((CostWeights{0.0, 0.0}.validate()));
  EXPECT_THROW((IntCostWeights{-1, 1}.validate()), std::invalid_argument);
}

TEST(CostWeights, AcDcTradeoffIsConvex) {
  const CostWeights w = CostWeights::ac_dc_tradeoff(0.3);
  EXPECT_DOUBLE_EQ(w.alpha, 0.3);
  EXPECT_DOUBLE_EQ(w.beta, 0.7);
  EXPECT_THROW((void)CostWeights::ac_dc_tradeoff(-0.01),
               std::invalid_argument);
  EXPECT_THROW((void)CostWeights::ac_dc_tradeoff(1.01),
               std::invalid_argument);
}

TEST(QuantizeWeights, EqualWeightsBecomeEqualIntegers) {
  for (int bits = 1; bits <= 8; ++bits) {
    const IntCostWeights q = quantize_weights(CostWeights{1.0, 1.0}, bits);
    EXPECT_EQ(q.alpha, q.beta);
    EXPECT_GT(q.alpha, 0);
    EXPECT_LE(q.alpha, (1 << bits) - 1);
  }
}

TEST(QuantizeWeights, PreservesRatioWithinGrid) {
  const CostWeights w{0.3, 0.7};
  const IntCostWeights q = quantize_weights(w, 8);
  const double ratio = static_cast<double>(q.alpha) / q.beta;
  EXPECT_NEAR(ratio, w.alpha / w.beta, 0.02);
}

TEST(QuantizeWeights, LargerCoefficientSaturatesRange) {
  const IntCostWeights q = quantize_weights(CostWeights{0.1, 0.9}, 3);
  EXPECT_EQ(q.beta, 7);  // 3-bit full scale
  EXPECT_GE(q.alpha, 1);
}

TEST(QuantizeWeights, ZeroStaysZeroPositiveStaysPositive) {
  const IntCostWeights q = quantize_weights(CostWeights{0.0, 1.0}, 3);
  EXPECT_EQ(q.alpha, 0);
  EXPECT_EQ(q.beta, 7);
  // A tiny-but-positive weight must not be rounded to "free".
  const IntCostWeights tiny = quantize_weights(CostWeights{1e-6, 1.0}, 3);
  EXPECT_GE(tiny.alpha, 1);
}

TEST(QuantizeWeights, RejectsBadArguments) {
  EXPECT_THROW((void)quantize_weights(CostWeights{1, 1}, 0),
               std::invalid_argument);
  EXPECT_THROW((void)quantize_weights(CostWeights{1, 1}, 17),
               std::invalid_argument);
  EXPECT_THROW((void)quantize_weights(CostWeights{-1, 1}, 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace dbi
