// ReplayPipeline: streaming replay must be observationally identical —
// stats and per-burst inversion masks — to the in-memory Channel /
// BatchEncoder paths, for every Scheme, sharded or serial, buffered or
// not, compressed or raw.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "engine/batch_encoder.hpp"
#include "engine/shard_pool.hpp"
#include "power/interface_energy.hpp"
#include "sim/experiments.hpp"
#include "trace/replay.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "workload/channel.hpp"
#include "workload/generators.hpp"

namespace dbi::trace {
namespace {

workload::BurstTrace random_trace(const BusConfig& cfg, std::int64_t n,
                                  std::uint64_t seed) {
  auto src = workload::make_uniform_source(cfg, seed);
  return workload::BurstTrace::collect(*src, n);
}

TraceReader reader_for(const workload::BurstTrace& trace,
                       std::uint32_t bursts_per_chunk = 64,
                       bool compress = true) {
  std::ostringstream os(std::ios::binary);
  TraceWriterOptions opt;
  opt.bursts_per_chunk = bursts_per_chunk;
  opt.compress = compress;
  TraceWriter writer(os, trace.config(), opt);
  for (const Burst& b : trace.bursts()) writer.write(b);
  writer.finish();
  const std::string s = os.str();
  return TraceReader::from_bytes(std::vector<std::uint8_t>(s.begin(),
                                                           s.end()));
}

/// Reference: encode burst g with lane (g % lanes)'s threaded state via
/// the per-burst engine API, collecting totals and masks.
struct Reference {
  std::int64_t zeros = 0;
  std::int64_t transitions = 0;
  std::vector<std::uint64_t> masks;
};

Reference reference_replay(const workload::BurstTrace& trace,
                           const engine::BatchEncoder& encoder, int lanes,
                           bool reset_per_burst = false) {
  std::vector<BusState> states(
      static_cast<std::size_t>(lanes), BusState::all_ones(trace.config()));
  Reference ref;
  for (std::size_t g = 0; g < trace.size(); ++g) {
    BusState& state = states[g % static_cast<std::size_t>(lanes)];
    if (reset_per_burst) state = BusState::all_ones(trace.config());
    const engine::BurstResult r = encoder.encode(trace[g], state);
    ref.zeros += r.stats.zeros;
    ref.transitions += r.stats.transitions;
    ref.masks.push_back(r.invert_mask);
  }
  return ref;
}

TEST(Replay, MatchesPerBurstEngineForEverySchemeWithMasks) {
  const BusConfig cfg{8, 8};
  const auto trace = random_trace(cfg, 333, 7);  // several uneven chunks
  const CostWeights w{0.56, 0.44};
  for (Scheme s : {Scheme::kRaw, Scheme::kDc, Scheme::kAc, Scheme::kAcDc,
                   Scheme::kOpt, Scheme::kOptFixed}) {
    const engine::BatchEncoder encoder(s, w);
    const auto reader = reader_for(trace);
    for (const int lanes : {1, 3, 8}) {
      const Reference ref = reference_replay(trace, encoder, lanes);

      std::vector<std::uint64_t> masks(trace.size());
      ReplayOptions opt;
      opt.lanes = lanes;
      opt.on_results = [&](std::int64_t first,
                           std::span<const engine::BurstResult> results) {
        for (std::size_t i = 0; i < results.size(); ++i)
          masks[static_cast<std::size_t>(first) + i] =
              results[i].invert_mask;
      };
      const ReplayTotals totals = replay_trace(reader, encoder, opt);
      EXPECT_EQ(totals.bursts, static_cast<std::int64_t>(trace.size()));
      EXPECT_EQ(totals.zeros, ref.zeros) << scheme_name(s) << " lanes "
                                         << lanes;
      EXPECT_EQ(totals.transitions, ref.transitions)
          << scheme_name(s) << " lanes " << lanes;
      EXPECT_EQ(masks, ref.masks) << scheme_name(s) << " lanes " << lanes;
    }
  }
}

TEST(Replay, ExhaustiveSchemeFallsBackToScalarAndMatches) {
  const BusConfig cfg{8, 4};
  const auto trace = random_trace(cfg, 40, 13);
  const engine::BatchEncoder encoder(Scheme::kExhaustive,
                                     CostWeights{0.5, 0.5});
  const auto reader = reader_for(trace, 16);
  const Reference ref = reference_replay(trace, encoder, 2);
  ReplayOptions opt;
  opt.lanes = 2;
  const ReplayTotals totals = replay_trace(reader, encoder, opt);
  EXPECT_EQ(totals.zeros, ref.zeros);
  EXPECT_EQ(totals.transitions, ref.transitions);
}

TEST(Replay, MatchesChannelWriteStream) {
  // The replay interleave (burst g -> lane g % L) is exactly Channel's
  // write order, so totals must equal write_stream on the interleaved
  // byte stream.
  const workload::ChannelConfig ccfg{4, BusConfig{8, 8}, false};
  constexpr int kWrites = 200;
  const auto bpw = static_cast<std::size_t>(ccfg.bytes_per_write());

  auto src = workload::make_uniform_source(ccfg.lane, 99);
  std::vector<Burst> bursts;
  for (int i = 0; i < kWrites * ccfg.lanes; ++i) bursts.push_back(src->next());

  // Interleaved byte stream: byte of beat t, lane l, write w.
  std::vector<std::uint8_t> data(kWrites * bpw);
  for (int wi = 0; wi < kWrites; ++wi)
    for (int l = 0; l < ccfg.lanes; ++l)
      for (int t = 0; t < ccfg.lane.burst_length; ++t)
        data[static_cast<std::size_t>(wi) * bpw +
             static_cast<std::size_t>(t * ccfg.lanes + l)] =
            static_cast<std::uint8_t>(
                bursts[static_cast<std::size_t>(wi * ccfg.lanes + l)].word(t));

  workload::BurstTrace trace(ccfg.lane);
  for (const Burst& b : bursts) trace.push(b);

  for (Scheme s : {Scheme::kDc, Scheme::kAc, Scheme::kOptFixed}) {
    workload::Channel channel(ccfg, s);
    const workload::ChannelStats want = channel.write_stream(data);

    const engine::BatchEncoder encoder(s);
    const auto reader = reader_for(trace, 128);
    ReplayOptions opt;
    opt.lanes = ccfg.lanes;
    const ReplayTotals got = replay_trace(reader, encoder, opt);
    EXPECT_EQ(got.bursts, kWrites * ccfg.lanes);
    EXPECT_EQ(got.zeros, want.zeros) << scheme_name(s);
    EXPECT_EQ(got.transitions, want.transitions) << scheme_name(s);
  }
}

TEST(Replay, PoolSerialAndBufferingModesAgree) {
  const auto trace = random_trace(BusConfig{8, 8}, 500, 21);
  const engine::BatchEncoder encoder(Scheme::kAcDc);
  const auto reader = reader_for(trace, 64);

  ReplayOptions serial;
  serial.lanes = 4;
  serial.double_buffer = false;
  const ReplayTotals want = replay_trace(reader, encoder, serial);

  engine::ShardPool pool(3);
  for (const bool double_buffer : {false, true}) {
    ReplayOptions opt;
    opt.lanes = 4;
    opt.pool = &pool;
    opt.double_buffer = double_buffer;
    const ReplayTotals got = replay_trace(reader, encoder, opt);
    EXPECT_EQ(got.zeros, want.zeros) << double_buffer;
    EXPECT_EQ(got.transitions, want.transitions) << double_buffer;
  }
}

TEST(Replay, CompressedAndRawTracesReplayIdentically) {
  const BusConfig cfg{8, 8};
  auto src = workload::make_sparse_source(cfg, 0.85, 23);
  const auto trace = workload::BurstTrace::collect(*src, 700);
  const engine::BatchEncoder encoder(Scheme::kDc);

  const auto compressed = reader_for(trace, 64, true);
  const auto raw = reader_for(trace, 64, false);
  ASSERT_TRUE(compressed.chunk(0).compressed());
  ASSERT_FALSE(raw.chunk(0).compressed());

  ReplayOptions opt;
  opt.lanes = 2;
  const ReplayTotals a = replay_trace(compressed, encoder, opt);
  const ReplayTotals b = replay_trace(raw, encoder, opt);
  EXPECT_EQ(a.zeros, b.zeros);
  EXPECT_EQ(a.transitions, b.transitions);
}

TEST(Replay, ResetPerBurstMatchesBoundaryTotals) {
  const auto trace = random_trace(BusConfig{8, 8}, 150, 27);
  const engine::BatchEncoder encoder(Scheme::kOptFixed);
  const auto reader = reader_for(trace, 32);

  const BurstStats want = encoder.boundary_totals(
      trace.bursts(), BusState::all_ones(trace.config()));
  ReplayOptions opt;
  opt.lanes = 3;
  opt.reset_state_per_burst = true;
  const ReplayTotals got = replay_trace(reader, encoder, opt);
  EXPECT_EQ(got.zeros, want.zeros);
  EXPECT_EQ(got.transitions, want.transitions);
}

TEST(Replay, RunIsRestartable) {
  const auto trace = random_trace(BusConfig{8, 8}, 120, 31);
  const engine::BatchEncoder encoder(Scheme::kAc);
  const auto reader = reader_for(trace, 50);
  ReplayOptions opt;
  opt.lanes = 2;
  ReplayPipeline pipeline(reader, encoder, opt);
  const ReplayTotals first = pipeline.run();
  const ReplayTotals second = pipeline.run();
  EXPECT_EQ(first.zeros, second.zeros);
  EXPECT_EQ(first.transitions, second.transitions);
}

TEST(Replay, SummaryComputesMeansAndEnergy) {
  ReplayTotals totals;
  totals.bursts = 100;
  totals.zeros = 2500;
  totals.transitions = 900;
  const sim::ReplaySummary plain = sim::summarize_replay(totals);
  EXPECT_DOUBLE_EQ(plain.zeros, 25.0);
  EXPECT_DOUBLE_EQ(plain.transitions, 9.0);
  EXPECT_DOUBLE_EQ(plain.interface_pj, 0.0);

  const power::PodParams pod = power::PodParams::pod135(3e-12, 12e9);
  const sim::ReplaySummary with_pod = sim::summarize_replay(totals, &pod);
  const double want = (25.0 * power::energy_zero(pod) +
                       9.0 * power::energy_transition(pod)) *
                      1e12;
  EXPECT_DOUBLE_EQ(with_pod.interface_pj, want);
}

TEST(Replay, RejectsBadLaneCounts) {
  ReplayOptions opt;
  opt.lanes = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt.lanes = 1 << 17;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace dbi::trace
