// ReplayPipeline: streaming replay must be observationally identical —
// stats and per-burst inversion masks — to the in-memory Channel /
// BatchEncoder paths, for every Scheme, sharded or serial, buffered or
// not, compressed or raw.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "engine/batch_encoder.hpp"
#include "engine/shard_pool.hpp"
#include "power/interface_energy.hpp"
#include "sim/experiments.hpp"
#include "trace/replay.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "workload/channel.hpp"
#include "workload/generators.hpp"
#include "workload/rng.hpp"

namespace dbi::trace {
namespace {

workload::BurstTrace random_trace(const BusConfig& cfg, std::int64_t n,
                                  std::uint64_t seed) {
  auto src = workload::make_uniform_source(cfg, seed);
  return workload::BurstTrace::collect(*src, n);
}

TraceReader reader_for(const workload::BurstTrace& trace,
                       std::uint32_t bursts_per_chunk = 64,
                       bool compress = true) {
  std::ostringstream os(std::ios::binary);
  TraceWriterOptions opt;
  opt.bursts_per_chunk = bursts_per_chunk;
  opt.compress = compress;
  TraceWriter writer(os, trace.config(), opt);
  for (const Burst& b : trace.bursts()) writer.write(b);
  writer.finish();
  const std::string s = os.str();
  return TraceReader::from_bytes(std::vector<std::uint8_t>(s.begin(),
                                                           s.end()));
}

/// Reference: encode burst g with lane (g % lanes)'s threaded state via
/// the per-burst engine API, collecting totals and masks.
struct Reference {
  std::int64_t zeros = 0;
  std::int64_t transitions = 0;
  std::vector<std::uint64_t> masks;
};

Reference reference_replay(const workload::BurstTrace& trace,
                           const engine::BatchEncoder& encoder, int lanes,
                           bool reset_per_burst = false) {
  std::vector<BusState> states(
      static_cast<std::size_t>(lanes), BusState::all_ones(trace.config()));
  Reference ref;
  for (std::size_t g = 0; g < trace.size(); ++g) {
    BusState& state = states[g % static_cast<std::size_t>(lanes)];
    if (reset_per_burst) state = BusState::all_ones(trace.config());
    const engine::BurstResult r = encoder.encode(trace[g], state);
    ref.zeros += r.stats.zeros;
    ref.transitions += r.stats.transitions;
    ref.masks.push_back(r.invert_mask);
  }
  return ref;
}

TEST(Replay, MatchesPerBurstEngineForEverySchemeWithMasks) {
  const BusConfig cfg{8, 8};
  const auto trace = random_trace(cfg, 333, 7);  // several uneven chunks
  const CostWeights w{0.56, 0.44};
  for (Scheme s : {Scheme::kRaw, Scheme::kDc, Scheme::kAc, Scheme::kAcDc,
                   Scheme::kOpt, Scheme::kOptFixed}) {
    const engine::BatchEncoder encoder(s, w);
    const auto reader = reader_for(trace);
    for (const int lanes : {1, 3, 8}) {
      const Reference ref = reference_replay(trace, encoder, lanes);

      std::vector<std::uint64_t> masks(trace.size());
      ReplayOptions opt;
      opt.lanes = lanes;
      opt.on_results = [&](std::int64_t first,
                           std::span<const engine::BurstResult> results) {
        for (std::size_t i = 0; i < results.size(); ++i)
          masks[static_cast<std::size_t>(first) + i] =
              results[i].invert_mask;
      };
      const ReplayTotals totals = replay_trace(reader, encoder, opt);
      EXPECT_EQ(totals.bursts, static_cast<std::int64_t>(trace.size()));
      EXPECT_EQ(totals.zeros, ref.zeros) << scheme_name(s) << " lanes "
                                         << lanes;
      EXPECT_EQ(totals.transitions, ref.transitions)
          << scheme_name(s) << " lanes " << lanes;
      EXPECT_EQ(masks, ref.masks) << scheme_name(s) << " lanes " << lanes;
    }
  }
}

TEST(Replay, ExhaustiveSchemeFallsBackToScalarAndMatches) {
  const BusConfig cfg{8, 4};
  const auto trace = random_trace(cfg, 40, 13);
  const engine::BatchEncoder encoder(Scheme::kExhaustive,
                                     CostWeights{0.5, 0.5});
  const auto reader = reader_for(trace, 16);
  const Reference ref = reference_replay(trace, encoder, 2);
  ReplayOptions opt;
  opt.lanes = 2;
  const ReplayTotals totals = replay_trace(reader, encoder, opt);
  EXPECT_EQ(totals.zeros, ref.zeros);
  EXPECT_EQ(totals.transitions, ref.transitions);
}

TEST(Replay, MatchesChannelWriteStream) {
  // The replay interleave (burst g -> lane g % L) is exactly Channel's
  // write order, so totals must equal write_stream on the interleaved
  // byte stream.
  const workload::ChannelConfig ccfg{4, BusConfig{8, 8}, false};
  constexpr int kWrites = 200;
  const auto bpw = static_cast<std::size_t>(ccfg.bytes_per_write());

  auto src = workload::make_uniform_source(ccfg.lane, 99);
  std::vector<Burst> bursts;
  for (int i = 0; i < kWrites * ccfg.lanes; ++i) bursts.push_back(src->next());

  // Interleaved byte stream: byte of beat t, lane l, write w.
  std::vector<std::uint8_t> data(kWrites * bpw);
  for (int wi = 0; wi < kWrites; ++wi)
    for (int l = 0; l < ccfg.lanes; ++l)
      for (int t = 0; t < ccfg.lane.burst_length; ++t)
        data[static_cast<std::size_t>(wi) * bpw +
             static_cast<std::size_t>(t * ccfg.lanes + l)] =
            static_cast<std::uint8_t>(
                bursts[static_cast<std::size_t>(wi * ccfg.lanes + l)].word(t));

  workload::BurstTrace trace(ccfg.lane);
  for (const Burst& b : bursts) trace.push(b);

  for (Scheme s : {Scheme::kDc, Scheme::kAc, Scheme::kOptFixed}) {
    workload::Channel channel(ccfg, s);
    const workload::ChannelStats want = channel.write_stream(data);

    const engine::BatchEncoder encoder(s);
    const auto reader = reader_for(trace, 128);
    ReplayOptions opt;
    opt.lanes = ccfg.lanes;
    const ReplayTotals got = replay_trace(reader, encoder, opt);
    EXPECT_EQ(got.bursts, kWrites * ccfg.lanes);
    EXPECT_EQ(got.zeros, want.zeros) << scheme_name(s);
    EXPECT_EQ(got.transitions, want.transitions) << scheme_name(s);
  }
}

TEST(Replay, PoolSerialAndBufferingModesAgree) {
  const auto trace = random_trace(BusConfig{8, 8}, 500, 21);
  const engine::BatchEncoder encoder(Scheme::kAcDc);
  const auto reader = reader_for(trace, 64);

  ReplayOptions serial;
  serial.lanes = 4;
  serial.double_buffer = false;
  const ReplayTotals want = replay_trace(reader, encoder, serial);

  engine::ShardPool pool(3);
  for (const bool double_buffer : {false, true}) {
    ReplayOptions opt;
    opt.lanes = 4;
    opt.pool = &pool;
    opt.double_buffer = double_buffer;
    const ReplayTotals got = replay_trace(reader, encoder, opt);
    EXPECT_EQ(got.zeros, want.zeros) << double_buffer;
    EXPECT_EQ(got.transitions, want.transitions) << double_buffer;
  }
}

TEST(Replay, CompressedAndRawTracesReplayIdentically) {
  const BusConfig cfg{8, 8};
  auto src = workload::make_sparse_source(cfg, 0.85, 23);
  const auto trace = workload::BurstTrace::collect(*src, 700);
  const engine::BatchEncoder encoder(Scheme::kDc);

  const auto compressed = reader_for(trace, 64, true);
  const auto raw = reader_for(trace, 64, false);
  ASSERT_TRUE(compressed.chunk(0).compressed());
  ASSERT_FALSE(raw.chunk(0).compressed());

  ReplayOptions opt;
  opt.lanes = 2;
  const ReplayTotals a = replay_trace(compressed, encoder, opt);
  const ReplayTotals b = replay_trace(raw, encoder, opt);
  EXPECT_EQ(a.zeros, b.zeros);
  EXPECT_EQ(a.transitions, b.transitions);
}

TEST(Replay, ResetPerBurstMatchesBoundaryTotals) {
  const auto trace = random_trace(BusConfig{8, 8}, 150, 27);
  const engine::BatchEncoder encoder(Scheme::kOptFixed);
  const auto reader = reader_for(trace, 32);

  const BurstStats want = encoder.boundary_totals(
      trace.bursts(), BusState::all_ones(trace.config()));
  ReplayOptions opt;
  opt.lanes = 3;
  opt.reset_state_per_burst = true;
  const ReplayTotals got = replay_trace(reader, encoder, opt);
  EXPECT_EQ(got.zeros, want.zeros);
  EXPECT_EQ(got.transitions, want.transitions);
}

TEST(Replay, RunIsRestartable) {
  const auto trace = random_trace(BusConfig{8, 8}, 120, 31);
  const engine::BatchEncoder encoder(Scheme::kAc);
  const auto reader = reader_for(trace, 50);
  ReplayOptions opt;
  opt.lanes = 2;
  ReplayPipeline pipeline(reader, encoder, opt);
  const ReplayTotals first = pipeline.run();
  const ReplayTotals second = pipeline.run();
  EXPECT_EQ(first.zeros, second.zeros);
  EXPECT_EQ(first.transitions, second.transitions);
}

TEST(Replay, SummaryComputesMeansAndEnergy) {
  ReplayTotals totals;
  totals.bursts = 100;
  totals.zeros = 2500;
  totals.transitions = 900;
  const sim::ReplaySummary plain = sim::summarize_replay(totals);
  EXPECT_DOUBLE_EQ(plain.zeros, 25.0);
  EXPECT_DOUBLE_EQ(plain.transitions, 9.0);
  EXPECT_DOUBLE_EQ(plain.interface_pj, 0.0);

  const power::PodParams pod = power::PodParams::pod135(3e-12, 12e9);
  const sim::ReplaySummary with_pod = sim::summarize_replay(totals, &pod);
  const double want = (25.0 * power::energy_zero(pod) +
                       9.0 * power::energy_transition(pod)) *
                      1e12;
  EXPECT_DOUBLE_EQ(with_pod.interface_pj, want);
}

TEST(Replay, RejectsBadLaneCounts) {
  ReplayOptions opt;
  opt.lanes = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt.lanes = 1 << 17;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
}

// ------------------------------------------------- wide multi-group replay

/// Compressible deterministic wide payload (runs of zero bytes), with
/// remainder-group bytes masked.
std::vector<std::uint8_t> wide_payload(const WideBusConfig& cfg, int bursts,
                                       std::uint64_t seed) {
  workload::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> bytes(
      static_cast<std::size_t>(bursts) *
      static_cast<std::size_t>(cfg.bytes_per_burst()));
  const auto groups = static_cast<std::size_t>(cfg.groups());
  const Word last_mask = cfg.group_config(cfg.groups() - 1).dq_mask();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::uint64_t r = rng.next();
    bytes[i] = (r & 3U) == 0 ? 0 : static_cast<std::uint8_t>(r >> 8);
    if (i % groups == groups - 1)
      bytes[i] &= static_cast<std::uint8_t>(last_mask);
  }
  return bytes;
}

TraceReader wide_reader_for(const WideBusConfig& cfg,
                            std::span<const std::uint8_t> payload,
                            std::uint32_t bursts_per_chunk = 64,
                            bool compress = true) {
  std::ostringstream os(std::ios::binary);
  TraceWriterOptions opt;
  opt.bursts_per_chunk = bursts_per_chunk;
  opt.compress = compress;
  TraceWriter writer(os, cfg, opt);
  writer.write_packed(payload);
  writer.finish();
  const std::string s = os.str();
  return TraceReader::from_bytes(
      std::vector<std::uint8_t>(s.begin(), s.end()));
}

/// Scalar reference: burst j goes to lane j % lanes; every group of the
/// lane threads its own scalar-encoder state.
struct WideReference {
  std::int64_t zeros = 0;
  std::int64_t transitions = 0;
  std::vector<std::uint64_t> masks;  // [burst * groups + group]
};

WideReference wide_reference(const WideBusConfig& cfg,
                             std::span<const std::uint8_t> payload, Scheme s,
                             const CostWeights& w, int lanes,
                             bool reset_per_burst = false) {
  const auto scalar = make_encoder(s, w);
  const int groups = cfg.groups();
  const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());
  const std::size_t bursts = payload.size() / bb;
  std::vector<std::vector<BusState>> states(
      static_cast<std::size_t>(lanes));
  for (auto& lane_states : states) {
    lane_states.resize(static_cast<std::size_t>(groups));
    for (int g = 0; g < groups; ++g)
      lane_states[static_cast<std::size_t>(g)] =
          BusState::all_ones(cfg.group_config(g));
  }
  WideReference ref;
  ref.masks.resize(bursts * static_cast<std::size_t>(groups));
  for (std::size_t j = 0; j < bursts; ++j) {
    auto& lane_states = states[j % static_cast<std::size_t>(lanes)];
    for (int g = 0; g < groups; ++g) {
      const BusConfig gcfg = cfg.group_config(g);
      BusState& state = lane_states[static_cast<std::size_t>(g)];
      if (reset_per_burst) state = BusState::all_ones(gcfg);
      Burst data(gcfg);
      for (int t = 0; t < cfg.burst_length; ++t)
        data.set_word(
            t, payload[j * bb + static_cast<std::size_t>(t * groups + g)]);
      const EncodedBurst e = scalar->encode(data, state);
      const BurstStats st = e.stats(state);
      ref.zeros += st.zeros;
      ref.transitions += st.transitions;
      ref.masks[j * static_cast<std::size_t>(groups) +
                static_cast<std::size_t>(g)] = e.inversion_mask();
      state = e.final_state();
    }
  }
  return ref;
}

TEST(WideReplay, MatchesScalarPerGroupForEverySchemeWithMasks) {
  const CostWeights w{0.56, 0.44};
  for (const int width : {16, 32, 64, 12}) {
    const WideBusConfig cfg{width, 8};
    const int groups = cfg.groups();
    const auto payload = wide_payload(cfg, 150, 21 + static_cast<std::uint64_t>(width));
    for (Scheme s : {Scheme::kRaw, Scheme::kDc, Scheme::kAc, Scheme::kAcDc,
                     Scheme::kOpt, Scheme::kOptFixed}) {
      const engine::BatchEncoder encoder(s, w);
      const auto reader = wide_reader_for(cfg, payload);
      ASSERT_TRUE(reader.wide());
      for (const int lanes : {1, 3}) {
        const WideReference ref =
            wide_reference(cfg, payload, s, w, lanes);

        std::vector<std::uint64_t> masks(ref.masks.size());
        ReplayOptions opt;
        opt.lanes = lanes;
        opt.on_results = [&](std::int64_t first,
                             std::span<const engine::BurstResult> results) {
          const auto base =
              static_cast<std::size_t>(first) * static_cast<std::size_t>(groups);
          for (std::size_t i = 0; i < results.size(); ++i)
            masks[base + i] = results[i].invert_mask;
        };
        const ReplayTotals totals = replay_trace(reader, encoder, opt);
        EXPECT_EQ(totals.bursts, 150) << scheme_name(s);
        EXPECT_EQ(totals.zeros, ref.zeros)
            << scheme_name(s) << " width " << width << " lanes " << lanes;
        EXPECT_EQ(totals.transitions, ref.transitions)
            << scheme_name(s) << " width " << width << " lanes " << lanes;
        EXPECT_EQ(masks, ref.masks)
            << scheme_name(s) << " width " << width << " lanes " << lanes;
      }
    }
  }
}

TEST(WideReplay, ResetStatePerBurstMatchesScalarBoundary) {
  const WideBusConfig cfg{32, 8};
  const CostWeights w{0.5, 0.5};
  const auto payload = wide_payload(cfg, 90, 5);
  const engine::BatchEncoder encoder(Scheme::kAcDc, w);
  const auto reader = wide_reader_for(cfg, payload);
  const WideReference ref =
      wide_reference(cfg, payload, Scheme::kAcDc, w, 2, true);

  ReplayOptions opt;
  opt.lanes = 2;
  opt.reset_state_per_burst = true;
  const ReplayTotals totals = replay_trace(reader, encoder, opt);
  EXPECT_EQ(totals.zeros, ref.zeros);
  EXPECT_EQ(totals.transitions, ref.transitions);
}

TEST(WideReplay, PoolAndDoubleBufferDoNotChangeResults) {
  const WideBusConfig cfg{64, 8};
  const auto payload = wide_payload(cfg, 500, 77);
  const engine::BatchEncoder encoder(Scheme::kAc);
  // Small chunks so the producer/consumer hand-off actually cycles.
  const auto reader = wide_reader_for(cfg, payload, 32);

  ReplayOptions serial;
  serial.lanes = 4;
  serial.double_buffer = false;
  const ReplayTotals want = replay_trace(reader, encoder, serial);

  engine::ShardPool pool(3);  // != lanes * groups on purpose
  ReplayOptions sharded;
  sharded.lanes = 4;
  sharded.pool = &pool;
  sharded.double_buffer = true;
  const ReplayTotals got = replay_trace(reader, encoder, sharded);
  EXPECT_EQ(got.zeros, want.zeros);
  EXPECT_EQ(got.transitions, want.transitions);
  EXPECT_EQ(got.bursts, want.bursts);

  // The exhaustive-search fallback must ride along on wide traces too.
  const WideBusConfig small{12, 4};
  const auto small_payload = wide_payload(small, 40, 3);
  const auto small_reader = wide_reader_for(small, small_payload);
  const engine::BatchEncoder ex(Scheme::kExhaustive, CostWeights{0.5, 0.5});
  const WideReference ref = wide_reference(small, small_payload,
                                           Scheme::kExhaustive,
                                           CostWeights{0.5, 0.5}, 1);
  const ReplayTotals ex_totals = replay_trace(small_reader, ex, {});
  EXPECT_EQ(ex_totals.zeros, ref.zeros);
  EXPECT_EQ(ex_totals.transitions, ref.transitions);
}

}  // namespace
}  // namespace dbi::trace
