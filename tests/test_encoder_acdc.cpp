#include <gtest/gtest.h>

#include <array>

#include "core/byte_utils.hpp"
#include "core/encoder.hpp"
#include "test_util.hpp"

namespace dbi {
namespace {

constexpr BusConfig kCfg{8, 8};

TEST(EncoderAcDc, NameAndFactory) {
  EXPECT_EQ(make_acdc_encoder()->name(), "DBI ACDC");
  EXPECT_EQ(make_encoder(Scheme::kAcDc)->name(), "DBI ACDC");
}

TEST(EncoderAcDc, IdenticalToAcUnderAllOnesBoundary) {
  // The paper (Section II): "Due to this boundary condition DBI AC
  // performs identical to DBI ACDC."
  const auto acdc = make_acdc_encoder();
  const auto ac = make_ac_encoder();
  const BusState prev = BusState::all_ones(kCfg);
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const Burst data = test::random_burst(kCfg, seed);
    EXPECT_EQ(acdc->encode(data, prev).inversion_mask(),
              ac->encode(data, prev).inversion_mask())
        << "seed=" << seed;
  }
}

TEST(EncoderAcDc, FirstBeatUsesDcRuleRegardlessOfHistory) {
  // A beat with 5 zeros is inverted by the DC rule even when that is
  // transition-wise worse for the given history.
  const BusConfig cfg{8, 2};
  const Burst data(cfg, std::array<Word, 2>{0x07, 0xFF});  // 5 zeros first
  // History all-zeros: AC would keep 0x07 (ham(0,07)=3+dbi=4 vs
  // inverse ham(0,F8)=5+0=5); ACDC's DC rule inverts it anyway.
  const auto acdc = make_acdc_encoder()->encode(data, BusState::all_zeros());
  const auto ac = make_ac_encoder()->encode(data, BusState::all_zeros());
  EXPECT_TRUE(acdc.inverted(0));
  EXPECT_FALSE(ac.inverted(0));
}

TEST(EncoderAcDc, RemainingBeatsFollowAcGreedy) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 42);
    const BusState prev = BusState::all_zeros();  // force divergence
    const auto e = make_acdc_encoder()->encode(data, prev);
    // Re-run AC from the state after beat 0 and compare beats 1...
    Beat last = e.beat(0);
    for (int i = 1; i < e.length(); ++i) {
      const Beat keep{data.word(i), true};
      const Beat inv{invert(data.word(i), kCfg), false};
      const bool invert_better = beat_transitions(last, inv, kCfg) <
                                 beat_transitions(last, keep, kCfg);
      EXPECT_EQ(e.inverted(i), invert_better) << "seed=" << seed;
      last = e.beat(i);
    }
  }
}

TEST(EncoderAcDc, DecodeRecoversPayload) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 7);
    EXPECT_EQ(make_acdc_encoder()
                  ->encode(data, BusState::all_zeros())
                  .decode(),
              data);
  }
}

}  // namespace
}  // namespace dbi
