// Observability layer: the metrics registry must aggregate exactly
// (across threads, for counters, gauges and histograms), snapshots of
// a deterministic Session replay must equal the StreamStats the run
// returned (bursts / bytes / zeros / transitions, per-kernel dispatch
// counts == call counts), the Chrome trace JSON must parse back, rings
// must wrap without losing accounting, and disabled mode must produce
// nothing at all.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "api/verify.hpp"
#include "engine/kernel_registry.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/span_trace.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "workload/generators.hpp"
#include "workload/trace.hpp"

namespace dbi::obs {
namespace {

// ------------------------------------------------------------ registry

TEST(Metrics, CounterGaugeExactOnOneThread) {
  Registry r;
  const Counter c = r.counter("test_total");
  const Gauge g = r.gauge("test_gauge");
  for (int i = 0; i < 1000; ++i) c.inc();
  c.add(234);
  g.set(2.5);
  const Snapshot s = r.snapshot();
  EXPECT_EQ(s.value("test_total"), 1234.0);
  EXPECT_EQ(s.value("test_gauge"), 2.5);
  EXPECT_EQ(s.value("absent_metric"), 0.0);
}

TEST(Metrics, CountersSumExactlyAcrossThreads) {
  Registry r;
  const Counter c = r.counter("threads_total");
  const Counter labeled = r.counter("threads_total", "shard=\"a\"");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
      labeled.add(3);
    });
  for (std::thread& w : workers) w.join();
  const Snapshot s = r.snapshot();
  EXPECT_EQ(s.value("threads_total"),
            static_cast<double>(kThreads) * kPerThread);
  EXPECT_EQ(s.value("threads_total", "shard=\"a\""), 3.0 * kThreads);
}

TEST(Metrics, HistogramCountSumMaxQuantiles) {
  Registry r;
  const Histogram h = r.histogram("dur_ns");
  // 900 observations of 7 (bucket 3) and 100 of 1000 (bucket 10): p50
  // and p90 land in the low bucket, p99 in the high one; max is exact.
  for (int i = 0; i < 900; ++i) h.observe(7);
  for (int i = 0; i < 100; ++i) h.observe(1000);
  const Snapshot s = r.snapshot();
  const MetricPoint* p = s.find("dur_ns");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, MetricKind::kHistogram);
  EXPECT_EQ(p->count, 1000u);
  EXPECT_EQ(p->sum, 900.0 * 7 + 100.0 * 1000);
  EXPECT_EQ(p->max, 1000u);
  EXPECT_EQ(p->p50, 7.0);   // bucket upper bound == the value itself
  EXPECT_EQ(p->p90, 7.0);
  EXPECT_EQ(p->p99, 1000.0);  // clamped to the observed max
}

TEST(Metrics, HistogramExactUnderConcurrency) {
  Registry r;
  const Histogram h = r.histogram("conc_ns");
  constexpr int kThreads = 6;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(static_cast<std::uint64_t>(t + 1));
    });
  for (std::thread& w : workers) w.join();
  const Snapshot s = r.snapshot();
  const MetricPoint* p = s.find("conc_ns");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  double sum = 0;
  for (int t = 0; t < kThreads; ++t) sum += (t + 1.0) * kPerThread;
  EXPECT_EQ(p->sum, sum);
  EXPECT_EQ(p->max, static_cast<std::uint64_t>(kThreads));
}

TEST(Metrics, ReRegistrationIsIdempotentAndKindMismatchThrows) {
  Registry r;
  const Counter a = r.counter("same_total");
  const Counter b = r.counter("same_total");
  a.inc();
  b.inc();
  EXPECT_EQ(r.snapshot().value("same_total"), 2.0);
  EXPECT_EQ(r.metric_count(), 1u);
  EXPECT_THROW((void)r.gauge("same_total"), std::invalid_argument);
}

TEST(Metrics, DefaultHandlesAreNoOps) {
  const Counter c;
  const Gauge g;
  const Histogram h;
  EXPECT_FALSE(static_cast<bool>(c));
  c.inc();       // must not crash
  g.set(1.0);
  h.observe(1);
}

TEST(Metrics, JsonExportParsesBackAndPrometheusNamesEveryMetric) {
  Registry r;
  r.counter("a_total", "k=\"v\"").add(7);
  r.gauge("b_gauge").set(1.5);
  r.histogram("c_ns").observe(31);
  const Snapshot s = r.snapshot();

  const json::Value doc = json::parse(s.to_json());
  const json::Value* metrics = doc.get("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_array());
  std::set<std::string> names;
  for (const json::Value& m : metrics->array)
    names.insert(std::string(m.get_string("name")));
  EXPECT_TRUE(names.count("a_total"));
  EXPECT_TRUE(names.count("b_gauge"));
  EXPECT_TRUE(names.count("c_ns"));

  const std::string prom = s.to_prometheus();
  EXPECT_NE(prom.find("a_total{k=\"v\"} 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE b_gauge gauge"), std::string::npos);
  EXPECT_NE(prom.find("c_ns_count 1"), std::string::npos);
}

// -------------------------------------------------------------- tracer

TEST(Tracer, RingWrapKeepsNewestAndCountsDropped) {
  Tracer t(Tracer::Options{16, 1});
  for (int i = 0; i < 100; ++i)
    t.record(Stage::kCrc, static_cast<std::uint64_t>(i), 1, i, -1);
  EXPECT_EQ(t.retained(), 16u);
  EXPECT_EQ(t.dropped(), 84u);

  std::ostringstream os;
  t.write_chrome_json(os);
  const json::Value doc = json::parse(os.str());
  const json::Value* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 16 "X" spans (the newest — a0 84..99) plus thread metadata.
  std::vector<double> kept;
  for (const json::Value& e : events->array)
    if (e.get_string("ph") == "X") {
      EXPECT_EQ(e.get_string("name"), "crc");
      const json::Value* args = e.get("args");
      ASSERT_NE(args, nullptr);
      kept.push_back(args->get_number("bytes", -1));
    }
  ASSERT_EQ(kept.size(), 16u);
  EXPECT_EQ(kept.front(), 84.0);  // oldest retained, emitted first
  EXPECT_EQ(kept.back(), 99.0);
}

TEST(Tracer, StrideSamplingKeepsEveryNth) {
  Tracer t(Tracer::Options{64, 3});
  int kept = 0;
  for (int i = 0; i < 9; ++i)
    if (t.sample(Stage::kEncodeChunk)) ++kept;
  EXPECT_EQ(kept, 3);
  // Independent per-stage counters: a different stage starts fresh.
  EXPECT_TRUE(t.sample(Stage::kGather));
}

// ----------------------------------------------------- session parity

trace::TraceReader make_trace(std::int64_t bursts,
                              std::uint32_t per_chunk = 64) {
  const BusConfig cfg{8, 8};
  auto src = workload::make_uniform_source(cfg, 11);
  const auto trace = workload::BurstTrace::collect(*src, bursts);
  std::ostringstream os(std::ios::binary);
  trace::TraceWriterOptions opt;
  opt.bursts_per_chunk = per_chunk;
  trace::TraceWriter writer(os, cfg, opt);
  for (const Burst& b : trace.bursts()) writer.write(b);
  writer.finish();
  const std::string s = os.str();
  return trace::TraceReader::from_bytes(
      std::vector<std::uint8_t>(s.begin(), s.end()));
}

TEST(Observer, DisabledSessionProducesNothing) {
  const auto reader = make_trace(100);
  SessionSpec spec;
  spec.scheme = Scheme::kAc;
  Session session(spec);
  const auto source = make_trace_source(reader);
  (void)session.run(*source);
  EXPECT_EQ(session.observer(), nullptr);
  EXPECT_TRUE(session.metrics_report().points.empty());
}

TEST(Observer, SnapshotEqualsStreamStatsOnDeterministicReplay) {
  const auto reader = make_trace(333);
  SessionSpec spec;
  spec.scheme = Scheme::kOpt;
  spec.lanes = 2;
  spec.obs.level = ObsLevel::kCounters;
  Session session(spec);
  const auto source = make_trace_source(reader);
  const StreamStats a = session.run(*source);
  const StreamStats b = session.run(*source);  // restartable: same totals
  EXPECT_EQ(a, b);

  const Snapshot s = session.metrics_report();
  EXPECT_EQ(s.value("dbi_runs_total"), 2.0);
  EXPECT_EQ(s.value("dbi_bursts_total"),
            static_cast<double>(a.bursts + b.bursts));
  EXPECT_EQ(s.value("dbi_zeros_total"),
            static_cast<double>(a.zeros + b.zeros));
  EXPECT_EQ(s.value("dbi_transitions_total"),
            static_cast<double>(a.transitions + b.transitions));
  EXPECT_EQ(s.value("dbi_bytes_total"),
            static_cast<double>((a.bursts + b.bursts) *
                                spec.geometry.bytes_per_burst()));
  EXPECT_EQ(s.value("dbi_chunks_total"),
            2.0 * static_cast<double>(reader.chunk_count()));
  // Replay publishes the trace-file gauges.
  EXPECT_EQ(s.value("dbi_trace_file_bytes"),
            static_cast<double>(reader.file_bytes()));
}

TEST(Observer, EncodeDispatchCountersAreExactOnSerialReplay) {
  // Serial, lanes=1, threaded state: the fixed8 engine path dispatches
  // its kernel exactly once per chunk, so the per-kernel counters must
  // sum to the chunk count exactly.
  const auto reader = make_trace(333, 64);  // 6 chunks (5 full + tail)
  SessionSpec spec;
  spec.scheme = Scheme::kAc;
  spec.lanes = 1;
  spec.obs.level = ObsLevel::kCounters;
  Session session(spec);
  const auto source = make_trace_source(reader);
  (void)session.run(*source);

  const Snapshot s = session.metrics_report();
  double dispatches = 0;
  for (const engine::KernelVariant* v : engine::registered_kernels())
    dispatches += s.value("dbi_kernel_dispatch_total",
                          "kernel=\"" + std::string(v->name()) +
                              "\",path=\"encode\"");
  EXPECT_EQ(dispatches, static_cast<double>(reader.chunk_count()));
  // The fallback counter can never exceed the dispatch total.
  EXPECT_LE(s.value("dbi_kernel_fallback_total", "path=\"encode\""),
            dispatches);
}

TEST(Observer, PoolMetricsPublishedOnThreadedReplay) {
  const auto reader = make_trace(512, 64);
  SessionSpec spec;
  spec.scheme = Scheme::kOpt;
  spec.lanes = 4;
  spec.threads = 2;
  spec.obs.level = ObsLevel::kCounters;
  Session session(spec);
  const auto source = make_trace_source(reader);
  (void)session.run(*source);

  const Snapshot s = session.metrics_report();
  EXPECT_EQ(s.value("dbi_pool_workers"), 2.0);
  EXPECT_GE(s.value("dbi_pool_runs_total"), 1.0);
  EXPECT_GE(s.value("dbi_pool_shards_total"), s.value("dbi_pool_runs_total"));
  // Per-worker busy counters exist for both workers (values are timing-
  // dependent, existence and kind are not).
  EXPECT_NE(s.find("dbi_pool_worker_busy_ns_total", "worker=\"0\""), nullptr);
  EXPECT_NE(s.find("dbi_pool_worker_busy_ns_total", "worker=\"1\""), nullptr);
}

TEST(Observer, SharedExternalObserverAggregatesConcurrentSessions) {
  // Several sessions on separate threads share one caller-owned
  // observer (SessionSpec::observer) — the multi-tenant daemon's
  // arrangement. The registry must aggregate exactly under that
  // concurrency: totals equal the summed per-session StreamStats.
  obs::ObsConfig cfg;
  cfg.level = ObsLevel::kCounters;
  obs::Observer shared(cfg);

  constexpr int kThreads = 4;
  constexpr std::int64_t kBursts = 256;
  std::vector<StreamStats> stats(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] {
      const auto reader = make_trace(kBursts, 64);
      SessionSpec spec;
      spec.scheme = Scheme::kAc;
      spec.observer = &shared;
      Session session(spec);
      ASSERT_EQ(session.observer(), &shared);
      const auto source = make_trace_source(reader);
      stats[t] = session.run(*source);
    });
  for (std::thread& w : workers) w.join();

  std::int64_t bursts = 0, zeros = 0, transitions = 0;
  for (const StreamStats& s : stats) {
    bursts += s.bursts;
    zeros += s.zeros;
    transitions += s.transitions;
  }
  const obs::Snapshot s = shared.snapshot();
  EXPECT_EQ(s.value("dbi_runs_total"), static_cast<double>(kThreads));
  EXPECT_EQ(s.value("dbi_bursts_total"), static_cast<double>(bursts));
  EXPECT_EQ(s.value("dbi_zeros_total"), static_cast<double>(zeros));
  EXPECT_EQ(s.value("dbi_transitions_total"), static_cast<double>(transitions));
}

TEST(Observer, TraceJsonFromFullSessionParsesAndNamesStages) {
  const auto reader = make_trace(256, 64);
  SessionSpec spec;
  spec.scheme = Scheme::kAc;
  spec.lanes = 2;
  spec.obs.level = ObsLevel::kFull;
  Session session(spec);
  const auto source = make_trace_source(reader);
  (void)session.run(*source);

  ASSERT_NE(session.observer(), nullptr);
  std::ostringstream os;
  ASSERT_TRUE(session.observer()->write_trace_json(os));
  const json::Value doc = json::parse(os.str());
  const json::Value* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  std::set<std::string> names;
  for (const json::Value& e : events->array)
    if (e.get_string("ph") == "X")
      names.insert(std::string(e.get_string("name")));
  EXPECT_TRUE(names.count("encode_chunk"));
  EXPECT_TRUE(names.count("chunk_prepare"));
  // The stage histograms were fed by the same spans.
  const Snapshot s = session.metrics_report();
  const MetricPoint* enc =
      s.find("dbi_stage_duration_ns", "stage=\"encode_chunk\"");
  ASSERT_NE(enc, nullptr);
  EXPECT_GE(enc->count, static_cast<std::uint64_t>(reader.chunk_count()));
}

TEST(Observer, CountersLevelWritesNoTrace) {
  Observer obs(ObsConfig{.level = ObsLevel::kCounters});
  EXPECT_EQ(obs.tracer(), nullptr);
  std::ostringstream os;
  EXPECT_FALSE(obs.write_trace_json(os));
  EXPECT_TRUE(os.str().empty());
  // ScopedSpan over a counters-only observer is inert.
  {
    ScopedSpan span(&obs, Stage::kEncodeChunk, 1, 2);
    EXPECT_FALSE(span.active());
  }
  const MetricPoint* p =
      obs.snapshot().find("dbi_stage_duration_ns", "stage=\"encode_chunk\"");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->count, 0u);
}

TEST(Observer, SharedObserverAggregatesAcrossSessions) {
  const auto reader = make_trace(128, 64);
  Observer shared(ObsConfig{.level = ObsLevel::kCounters});
  StreamStats sum;
  for (const Scheme scheme : {Scheme::kRaw, Scheme::kAc, Scheme::kOpt}) {
    SessionSpec spec;
    spec.scheme = scheme;
    spec.observer = &shared;
    Session session(spec);
    const auto source = make_trace_source(reader);
    sum += session.run(*source);
  }
  const Snapshot s = shared.snapshot();
  EXPECT_EQ(s.value("dbi_runs_total"), 3.0);
  EXPECT_EQ(s.value("dbi_bursts_total"), static_cast<double>(sum.bursts));
}

TEST(Observer, VerifyEncodedTracePublishesTotals) {
  // Round-trip an encoded in-memory trace through verify_encoded_trace
  // with an observer: run totals and chunk counts must be exact.
  const BusConfig cfg{8, 8};
  auto src = workload::make_uniform_source(cfg, 5);
  const auto trace = workload::BurstTrace::collect(*src, 200);
  std::ostringstream os(std::ios::binary);
  trace::TraceWriterOptions opt;
  opt.bursts_per_chunk = 64;
  opt.encoded = true;
  opt.enc_scheme = scheme_to_tag(Scheme::kAc);
  opt.enc_lanes = 1;
  trace::TraceWriter writer(os, cfg, opt);
  {
    SessionSpec spec;
    spec.scheme = Scheme::kAc;
    Session session(spec);
    const auto source = make_burst_source(trace.bursts());
    const auto sink = make_encoded_trace_sink(writer);
    (void)session.run(*source, *sink);
  }
  const std::string bytes = os.str();
  const auto reader = trace::TraceReader::from_bytes(
      std::vector<std::uint8_t>(bytes.begin(), bytes.end()));

  Observer obs(ObsConfig{.level = ObsLevel::kCounters});
  VerifyOptions vopt;
  vopt.obs = &obs;
  const VerifyReport report = verify_encoded_trace(reader, vopt);
  EXPECT_TRUE(report.ok());
  const Snapshot s = obs.snapshot();
  EXPECT_EQ(s.value("dbi_bursts_total"), static_cast<double>(report.bursts));
  EXPECT_EQ(s.value("dbi_chunks_total"),
            static_cast<double>(reader.chunk_count()));
}

// ------------------------------------------------ zero-burst regression

TEST(StreamStatsRegression, ZeroBurstsYieldZeroNotNaN) {
  const StreamStats empty;
  EXPECT_EQ(empty.zeros_per_burst(), 0.0);
  EXPECT_EQ(empty.transitions_per_burst(), 0.0);
  EXPECT_EQ(empty.zeros_per_write(), 0.0);
  EXPECT_EQ(empty.transitions_per_write(), 0.0);

  // A session run over an empty source publishes clean zeros too.
  SessionSpec spec;
  spec.obs.level = ObsLevel::kCounters;
  Session session(spec);
  const std::vector<Burst> none;
  const auto source = make_burst_source(none);
  const StreamStats totals = session.run(*source);
  EXPECT_EQ(totals.bursts, 0);
  EXPECT_EQ(totals.zeros_per_burst(), 0.0);
  EXPECT_EQ(session.metrics_report().value("dbi_bursts_total"), 0.0);
}

}  // namespace
}  // namespace dbi::obs
