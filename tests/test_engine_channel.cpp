// Engine-backed Channel: the Scheme constructor and the batched
// write_stream path must be observationally identical to the original
// per-burst virtual-encoder channel.
#include <gtest/gtest.h>

#include <vector>

#include "engine/shard_pool.hpp"
#include "workload/channel.hpp"
#include "workload/rng.hpp"

namespace dbi::workload {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (std::uint8_t& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

void expect_same_stats(const ChannelStats& a, const ChannelStats& b) {
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.zeros, b.zeros);
  EXPECT_EQ(a.transitions, b.transitions);
}

TEST(EngineChannel, SchemeChannelMatchesEncoderChannelWriteByWrite) {
  const ChannelConfig cfg{4, dbi::BusConfig{8, 8}, false};
  for (dbi::Scheme s : {dbi::Scheme::kRaw, dbi::Scheme::kDc, dbi::Scheme::kAc,
                        dbi::Scheme::kAcDc, dbi::Scheme::kOpt,
                        dbi::Scheme::kOptFixed}) {
    const dbi::CostWeights w{0.56, 0.44};
    Channel scalar(cfg, dbi::make_encoder(s, w));
    Channel engine(cfg, s, w);
    EXPECT_FALSE(scalar.uses_engine());
    EXPECT_TRUE(engine.uses_engine());

    const std::vector<std::uint8_t> data = random_bytes(
        static_cast<std::size_t>(cfg.bytes_per_write()) * 50, 11);
    for (int wi = 0; wi < 50; ++wi) {
      const auto bytes =
          std::span(data).subspan(static_cast<std::size_t>(wi) *
                                      static_cast<std::size_t>(
                                          cfg.bytes_per_write()),
                                  static_cast<std::size_t>(
                                      cfg.bytes_per_write()));
      const auto want = scalar.write(bytes);
      const auto got = engine.write(bytes);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t lane = 0; lane < got.size(); ++lane) {
        EXPECT_EQ(got[lane].inversion_mask(), want[lane].inversion_mask())
            << dbi::scheme_name(s) << " write " << wi << " lane " << lane;
        EXPECT_EQ(got[lane].uses_dbi_line(), want[lane].uses_dbi_line());
      }
    }
    expect_same_stats(engine.stats(), scalar.stats());
  }
}

TEST(EngineChannel, WriteStreamMatchesSequentialWrites) {
  const ChannelConfig cfg{8, dbi::BusConfig{8, 8}, false};
  constexpr int kWrites = 40;
  const std::vector<std::uint8_t> data = random_bytes(
      static_cast<std::size_t>(cfg.bytes_per_write()) * kWrites, 23);

  for (dbi::Scheme s : {dbi::Scheme::kDc, dbi::Scheme::kAc, dbi::Scheme::kAcDc,
                        dbi::Scheme::kOptFixed}) {
    Channel sequential(cfg, s);
    for (int wi = 0; wi < kWrites; ++wi)
      (void)sequential.write(std::span(data).subspan(
          static_cast<std::size_t>(wi) *
              static_cast<std::size_t>(cfg.bytes_per_write()),
          static_cast<std::size_t>(cfg.bytes_per_write())));

    Channel streamed(cfg, s);
    const ChannelStats delta = streamed.write_stream(data);
    expect_same_stats(streamed.stats(), sequential.stats());
    EXPECT_EQ(delta.writes, kWrites);
    EXPECT_EQ(delta.zeros, sequential.stats().zeros);
    EXPECT_EQ(delta.transitions, sequential.stats().transitions);

    // A second stream continues from the threaded lane state.
    const ChannelStats d1 = streamed.write_stream(data);
    for (int wi = 0; wi < kWrites; ++wi)
      (void)sequential.write(std::span(data).subspan(
          static_cast<std::size_t>(wi) *
              static_cast<std::size_t>(cfg.bytes_per_write()),
          static_cast<std::size_t>(cfg.bytes_per_write())));
    expect_same_stats(streamed.stats(), sequential.stats());
    EXPECT_EQ(d1.writes, kWrites);
  }
}

TEST(EngineChannel, WriteStreamCrossesGatherBlockBoundaries) {
  // write_stream gathers in blocks of 1024 writes; a stream spanning
  // several blocks must thread lane state seamlessly across the seams.
  const ChannelConfig cfg{2, dbi::BusConfig{8, 8}, false};
  constexpr int kWrites = 2600;
  const std::vector<std::uint8_t> data = random_bytes(
      static_cast<std::size_t>(cfg.bytes_per_write()) * kWrites, 63);

  Channel sequential(cfg, dbi::Scheme::kAc);
  for (int wi = 0; wi < kWrites; ++wi)
    (void)sequential.write(std::span(data).subspan(
        static_cast<std::size_t>(wi) *
            static_cast<std::size_t>(cfg.bytes_per_write()),
        static_cast<std::size_t>(cfg.bytes_per_write())));

  Channel streamed(cfg, dbi::Scheme::kAc);
  const ChannelStats delta = streamed.write_stream(data);
  EXPECT_EQ(delta.writes, kWrites);
  expect_same_stats(streamed.stats(), sequential.stats());
}

TEST(EngineChannel, WriteStreamShardedAcrossPoolIsIdentical) {
  const ChannelConfig cfg{8, dbi::BusConfig{8, 8}, false};
  constexpr int kWrites = 64;
  const std::vector<std::uint8_t> data = random_bytes(
      static_cast<std::size_t>(cfg.bytes_per_write()) * kWrites, 37);

  Channel serial(cfg, dbi::Scheme::kOptFixed);
  const ChannelStats want = serial.write_stream(data);

  engine::ShardPool pool(3);
  Channel sharded(cfg, dbi::Scheme::kOptFixed);
  const ChannelStats got = sharded.write_stream(data, &pool);
  expect_same_stats(got, want);
  expect_same_stats(sharded.stats(), serial.stats());
}

TEST(EngineChannel, WriteStreamHonoursPerWriteResetBoundary) {
  ChannelConfig cfg{4, dbi::BusConfig{8, 8}, true};
  constexpr int kWrites = 16;
  const std::vector<std::uint8_t> data = random_bytes(
      static_cast<std::size_t>(cfg.bytes_per_write()) * kWrites, 51);

  Channel sequential(cfg, dbi::Scheme::kAc);
  for (int wi = 0; wi < kWrites; ++wi)
    (void)sequential.write(std::span(data).subspan(
        static_cast<std::size_t>(wi) *
            static_cast<std::size_t>(cfg.bytes_per_write()),
        static_cast<std::size_t>(cfg.bytes_per_write())));

  Channel streamed(cfg, dbi::Scheme::kAc);
  (void)streamed.write_stream(data);
  expect_same_stats(streamed.stats(), sequential.stats());
}

TEST(EngineChannel, WriteStreamOnEncoderChannelTakesScalarRoute) {
  const ChannelConfig cfg{4, dbi::BusConfig{8, 8}, false};
  constexpr int kWrites = 12;
  const std::vector<std::uint8_t> data = random_bytes(
      static_cast<std::size_t>(cfg.bytes_per_write()) * kWrites, 77);

  Channel engine_backed(cfg, dbi::Scheme::kAcDc);
  Channel encoder_backed(cfg, dbi::make_acdc_encoder());
  (void)engine_backed.write_stream(data);
  (void)encoder_backed.write_stream(data);
  expect_same_stats(encoder_backed.stats(), engine_backed.stats());
}

TEST(EngineChannel, WriteStreamWithStatefulEncoderStaysDeterministicUnderPool) {
  // An encoder-backed channel may hold hidden state (the noisy
  // wrapper's PRNG); write_stream must not shard it across workers, so
  // pool and no-pool runs replay identically for a fixed seed.
  const ChannelConfig cfg{4, dbi::BusConfig{8, 8}, false};
  constexpr int kWrites = 24;
  const std::vector<std::uint8_t> data = random_bytes(
      static_cast<std::size_t>(cfg.bytes_per_write()) * kWrites, 91);

  auto make_noisy_channel = [&] {
    return Channel(cfg, dbi::make_noisy_encoder(
                            dbi::make_opt_encoder(dbi::CostWeights{0.5, 0.5}),
                            0.2, 1234));
  };
  Channel serial = make_noisy_channel();
  (void)serial.write_stream(data);

  engine::ShardPool pool(4);
  Channel pooled = make_noisy_channel();
  (void)pooled.write_stream(data, &pool);
  expect_same_stats(pooled.stats(), serial.stats());
}

TEST(EngineChannel, WriteStreamAcceptsEmptyStream) {
  engine::ShardPool pool(2);
  Channel engine_backed(ChannelConfig{4, dbi::BusConfig{8, 8}, false},
                        dbi::Scheme::kDc);
  Channel encoder_backed(ChannelConfig{4, dbi::BusConfig{8, 8}, false},
                         dbi::make_dc_encoder());
  const std::vector<std::uint8_t> empty;
  for (Channel* c : {&engine_backed, &encoder_backed}) {
    const ChannelStats delta = c->write_stream(empty, &pool);
    EXPECT_EQ(delta.writes, 0);
    EXPECT_EQ(delta.zeros, 0);
    EXPECT_EQ(delta.transitions, 0);
    EXPECT_EQ(c->stats().writes, 0);
  }
}

TEST(EngineChannel, WriteStreamHandlesCountsOffThe64BeatGroups) {
  // The SWAR kernels chew 8 beats per 64-bit word and the gather runs
  // in 1024-write blocks; write counts that straddle neither boundary
  // (1, 7, 63, 65, 100) must still match the per-write path exactly.
  const ChannelConfig cfg{2, dbi::BusConfig{8, 8}, false};
  for (const int writes : {1, 7, 63, 65, 100}) {
    const std::vector<std::uint8_t> data = random_bytes(
        static_cast<std::size_t>(cfg.bytes_per_write()) *
            static_cast<std::size_t>(writes),
        static_cast<std::uint64_t>(writes) * 131);

    Channel sequential(cfg, dbi::Scheme::kAcDc);
    for (int wi = 0; wi < writes; ++wi)
      (void)sequential.write(std::span(data).subspan(
          static_cast<std::size_t>(wi) *
              static_cast<std::size_t>(cfg.bytes_per_write()),
          static_cast<std::size_t>(cfg.bytes_per_write())));

    Channel streamed(cfg, dbi::Scheme::kAcDc);
    const ChannelStats delta = streamed.write_stream(data);
    EXPECT_EQ(delta.writes, writes);
    expect_same_stats(streamed.stats(), sequential.stats());
  }
}

TEST(EngineChannel, WriteStreamSerialFallbackMatchesPerWritePath) {
  // Encoder-backed channels take the scalar serial route; for a
  // deterministic stateless encoder that must equal the per-write
  // virtual path bit for bit, pool or no pool.
  const ChannelConfig cfg{4, dbi::BusConfig{8, 8}, false};
  constexpr int kWrites = 30;
  const std::vector<std::uint8_t> data = random_bytes(
      static_cast<std::size_t>(cfg.bytes_per_write()) * kWrites, 17);

  Channel per_write(cfg, dbi::make_opt_encoder(dbi::CostWeights{0.56, 0.44}));
  for (int wi = 0; wi < kWrites; ++wi)
    (void)per_write.write(std::span(data).subspan(
        static_cast<std::size_t>(wi) *
            static_cast<std::size_t>(cfg.bytes_per_write()),
        static_cast<std::size_t>(cfg.bytes_per_write())));

  engine::ShardPool pool(3);
  for (engine::ShardPool* p : {static_cast<engine::ShardPool*>(nullptr),
                               &pool}) {
    Channel streamed(cfg,
                     dbi::make_opt_encoder(dbi::CostWeights{0.56, 0.44}));
    (void)streamed.write_stream(data, p);
    expect_same_stats(streamed.stats(), per_write.stats());
  }
}

TEST(EngineChannel, WriteStreamRejectsRaggedSizes) {
  Channel c(ChannelConfig{4, dbi::BusConfig{8, 8}, false}, dbi::Scheme::kDc);
  const std::vector<std::uint8_t> bad(33);
  EXPECT_THROW((void)c.write_stream(bad), std::invalid_argument);
}

}  // namespace
}  // namespace dbi::workload
