#include "core/pareto.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "core/encoder.hpp"
#include "core/encoding.hpp"
#include "test_util.hpp"

namespace dbi {
namespace {

constexpr BusConfig kCfg{8, 8};

TEST(Pareto, FrontierPointsAreMutuallyNonDominated) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Burst data = test::random_burst(kCfg, seed);
    const BusState prev = BusState::all_ones(kCfg);
    const auto frontier = pareto_frontier(data, prev);
    ASSERT_FALSE(frontier.empty());
    for (std::size_t i = 1; i < frontier.size(); ++i) {
      EXPECT_GT(frontier[i].zeros, frontier[i - 1].zeros);
      EXPECT_LT(frontier[i].transitions, frontier[i - 1].transitions);
    }
  }
}

TEST(Pareto, FrontierMasksReproduceTheirMetrics) {
  const Burst data = test::random_burst(kCfg, 3);
  const BusState prev = BusState::all_ones(kCfg);
  for (const ParetoPoint& p : pareto_frontier(data, prev)) {
    const auto e = EncodedBurst::from_inversion_mask(data, p.invert_mask);
    EXPECT_EQ(e.zeros(), p.zeros);
    EXPECT_EQ(e.transitions(prev), p.transitions);
  }
}

TEST(Pareto, DcAndAcResultsAreNeverBelowFrontier) {
  // Every achievable (zeros, transitions) pair is dominated-or-equal by
  // the frontier; in particular the DC and AC encodings.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 50);
    const BusState prev = BusState::all_ones(kCfg);
    const auto frontier = pareto_frontier(data, prev);
    for (Scheme s : {Scheme::kDc, Scheme::kAc}) {
      const auto e = make_encoder(s)->encode(data, prev);
      const int z = e.zeros(), t = e.transitions(prev);
      const bool dominated_or_on =
          std::any_of(frontier.begin(), frontier.end(),
                      [&](const ParetoPoint& p) {
                        return p.zeros <= z && p.transitions <= t;
                      });
      EXPECT_TRUE(dominated_or_on);
    }
  }
}

TEST(Pareto, DcIsTheMinimalZerosEndpoint) {
  // DBI DC minimises zeros, so the frontier's first point (fewest
  // zeros) must have exactly DC's zero count.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 150);
    const BusState prev = BusState::all_ones(kCfg);
    const auto frontier = pareto_frontier(data, prev);
    const auto dc = make_dc_encoder()->encode(data, prev);
    EXPECT_EQ(frontier.front().zeros, dc.zeros());
  }
}

TEST(Pareto, AcIsTheMinimalTransitionsEndpoint) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 250);
    const BusState prev = BusState::all_ones(kCfg);
    const auto frontier = pareto_frontier(data, prev);
    const auto ac = make_ac_encoder()->encode(data, prev);
    EXPECT_EQ(frontier.back().transitions, ac.transitions(prev));
  }
}

TEST(Pareto, OptChoicesLieOnFrontierForEveryWeight) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 350);
    const BusState prev = BusState::all_ones(kCfg);
    const auto frontier = pareto_frontier(data, prev);
    for (double ac_cost : {0.05, 0.2, 0.4, 0.5, 0.6, 0.8, 0.95}) {
      const auto e = make_opt_encoder(CostWeights::ac_dc_tradeoff(ac_cost))
                         ->encode(data, prev);
      EXPECT_TRUE(on_frontier(frontier, e.zeros(), e.transitions(prev)))
          << "seed=" << seed << " ac_cost=" << ac_cost;
    }
  }
}

TEST(Pareto, SingleBeatFrontier) {
  const BusConfig cfg{8, 1};
  const Burst data(cfg, std::array<Word, 1>{0x00});
  const auto frontier = pareto_frontier(data, BusState::all_ones(cfg));
  // Options: keep (8 zeros, 8 transitions) or invert (1 zero [DBI],
  // 1 transition [DBI]); invert dominates keep.
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_EQ(frontier[0].zeros, 1);
  EXPECT_EQ(frontier[0].transitions, 1);
  EXPECT_EQ(frontier[0].invert_mask, 1u);
}

TEST(Pareto, RefusesHugeBursts) {
  const BusConfig cfg{8, 21};
  EXPECT_THROW(pareto_frontier(Burst(cfg), BusState::all_ones(cfg)),
               std::invalid_argument);
}

TEST(Pareto, OnFrontierHelper) {
  const std::vector<ParetoPoint> f = {{3, 10, 0}, {5, 7, 1}};
  EXPECT_TRUE(on_frontier(f, 3, 10));
  EXPECT_TRUE(on_frontier(f, 5, 7));
  EXPECT_FALSE(on_frontier(f, 4, 9));
}

}  // namespace
}  // namespace dbi
