// The engine's contract: BatchEncoder is a bit-exact drop-in for the
// scalar Encoder hierarchy for every Scheme — same inversion masks, same
// zero/transition stats, same threaded bus state — on random streams,
// across geometries, fast path and fallback alike.
#include <gtest/gtest.h>

#include <vector>

#include "core/encoder.hpp"
#include "engine/batch_encoder.hpp"
#include "test_util.hpp"

namespace dbi {
namespace {

constexpr Scheme kAllSchemes[] = {
    Scheme::kRaw, Scheme::kDc,       Scheme::kAc,         Scheme::kAcDc,
    Scheme::kOpt, Scheme::kOptFixed, Scheme::kExhaustive,
};

/// Chains `bursts` through both the scalar encoder and the engine and
/// asserts identical masks, stats and threaded state at every step.
void expect_parity(Scheme scheme, const CostWeights& w, const BusConfig& cfg,
                   int bursts, std::uint64_t seed) {
  const auto scalar = make_encoder(scheme, w);
  const engine::BatchEncoder batch(scheme, w);

  BusState scalar_state = BusState::all_ones(cfg);
  BusState engine_state = BusState::all_ones(cfg);
  for (int i = 0; i < bursts; ++i) {
    const Burst data = test::random_burst(cfg, seed + static_cast<std::uint64_t>(i));

    const EncodedBurst e = scalar->encode(data, scalar_state);
    const BurstStats want = e.stats(scalar_state);
    scalar_state = e.final_state();

    const engine::BurstResult got = batch.encode(data, engine_state);
    ASSERT_EQ(got.invert_mask, e.inversion_mask())
        << scheme_name(scheme) << " burst " << i << " width " << cfg.width
        << " bl " << cfg.burst_length;
    ASSERT_EQ(got.stats, want) << scheme_name(scheme) << " burst " << i;
    ASSERT_EQ(engine_state, scalar_state)
        << scheme_name(scheme) << " state after burst " << i;
  }
}

TEST(EngineParity, ByteLaneFastPathsAllSchemes) {
  for (Scheme s : kAllSchemes)
    expect_parity(s, CostWeights{0.56, 0.44}, BusConfig{8, 8}, 200, 1);
}

TEST(EngineParity, BurstLengthSweep) {
  // Exercises partial SWAR chunks (bl % 8 != 0) and multi-chunk carries.
  for (int bl : {1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 64}) {
    const BusConfig cfg{8, bl};
    for (Scheme s : {Scheme::kRaw, Scheme::kDc, Scheme::kAc, Scheme::kAcDc,
                     Scheme::kOpt, Scheme::kOptFixed})
      expect_parity(s, CostWeights{0.3, 0.7}, cfg, 50,
                    static_cast<std::uint64_t>(bl) * 1000);
  }
}

TEST(EngineParity, NonByteWidthsUseExactFallbacksAndKernels) {
  // Odd and wide geometries: fixed schemes fall back to scalar, the
  // trellis kernel runs natively — both must stay exact.
  for (int width : {1, 3, 5, 7, 9, 16, 31, 32}) {
    const BusConfig cfg{width, 6};
    for (Scheme s : kAllSchemes)
      expect_parity(s, CostWeights{0.5, 0.5}, cfg, 30,
                    static_cast<std::uint64_t>(width) * 777);
  }
}

TEST(EngineParity, OptAcrossTieProneWeights) {
  // Degenerate and tie-heavy weights stress the comparator ordering of
  // the flat kernel against the reference DP.
  const CostWeights weights[] = {{0.0, 1.0}, {1.0, 0.0}, {0.5, 0.5},
                                 {1.0, 1.0}, {0.56, 0.44}, {1e-9, 1.0}};
  for (const CostWeights& w : weights) {
    expect_parity(Scheme::kOpt, w, BusConfig{8, 8}, 120, 42);
    expect_parity(Scheme::kOpt, w, BusConfig{8, 16}, 60, 43);
  }
}

TEST(EngineParity, EncodeLaneMatchesPerBurstEncode) {
  const BusConfig cfg{8, 8};
  const std::vector<Burst> bursts = test::random_bursts(cfg, 100, 9);
  const engine::BatchEncoder batch(Scheme::kAcDc);

  BusState a = BusState::all_ones(cfg);
  BusState b = BusState::all_ones(cfg);
  std::vector<engine::BurstResult> lane_results(bursts.size());
  const BurstStats totals = batch.encode_lane(bursts, a, lane_results.data());

  BurstStats want_totals;
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    const engine::BurstResult r = batch.encode(bursts[i], b);
    EXPECT_EQ(lane_results[i], r) << "burst " << i;
    want_totals += r.stats;
  }
  EXPECT_EQ(totals, want_totals);
  EXPECT_EQ(a, b);
}

TEST(EngineParity, BoundaryTotalsMatchScalarBoundaryLoop) {
  const BusConfig cfg{8, 8};
  const BusState boundary = BusState::all_ones(cfg);
  const std::vector<Burst> bursts = test::random_bursts(cfg, 200, 31);
  for (Scheme s : {Scheme::kRaw, Scheme::kDc, Scheme::kAc, Scheme::kAcDc,
                   Scheme::kOpt, Scheme::kOptFixed}) {
    const CostWeights w{0.56, 0.44};
    const auto scalar = make_encoder(s, w);
    BurstStats want;
    for (const Burst& b : bursts)
      want += scalar->encode(b, boundary).stats(boundary);
    const engine::BatchEncoder batch(s, w);
    EXPECT_EQ(batch.boundary_totals(bursts, boundary), want)
        << scheme_name(s);
  }
}

TEST(EngineParity, MaterializeReconstructsThePhysicalBurst) {
  const BusConfig cfg{8, 8};
  for (Scheme s : {Scheme::kRaw, Scheme::kAc, Scheme::kOptFixed}) {
    const auto scalar = make_encoder(s);
    const engine::BatchEncoder batch(s);
    BusState scalar_state = BusState::all_ones(cfg);
    BusState engine_state = BusState::all_ones(cfg);
    for (int i = 0; i < 20; ++i) {
      const Burst data = test::random_burst(cfg, 500 + static_cast<std::uint64_t>(i));
      const EncodedBurst want = scalar->encode(data, scalar_state);
      const engine::BurstResult r = batch.encode(data, engine_state);
      const EncodedBurst got = batch.materialize(data, r);
      ASSERT_EQ(got.beats().size(), want.beats().size());
      for (int t = 0; t < got.length(); ++t)
        EXPECT_EQ(got.beat(t), want.beat(t)) << scheme_name(s) << " beat " << t;
      EXPECT_EQ(got.uses_dbi_line(), want.uses_dbi_line());
      EXPECT_EQ(got.decode(), data);
      scalar_state = want.final_state();
    }
  }
}

TEST(EngineParity, NoisyWrapperIsDeterministicUnderFixedSeed) {
  // The decision-noise wrapper must replay bit-identically for a fixed
  // (seed, call sequence) — the property batch replays rely on.
  const BusConfig cfg{8, 8};
  const CostWeights w{0.56, 0.44};
  const auto a = make_noisy_encoder(make_opt_encoder(w), 0.25, 99);
  const auto b = make_noisy_encoder(make_opt_encoder(w), 0.25, 99);
  const auto other_seed = make_noisy_encoder(make_opt_encoder(w), 0.25, 100);
  const BusState boundary = BusState::all_ones(cfg);

  bool any_difference = false;
  for (int i = 0; i < 100; ++i) {
    const Burst data = test::random_burst(cfg, 700 + static_cast<std::uint64_t>(i));
    const EncodedBurst ea = a->encode(data, boundary);
    const std::uint64_t ma = ea.inversion_mask();
    const std::uint64_t mb = b->encode(data, boundary).inversion_mask();
    EXPECT_EQ(ma, mb) << "burst " << i;
    any_difference |=
        ma != other_seed->encode(data, boundary).inversion_mask();
    // Noise never breaks decodability.
    EXPECT_EQ(ea.decode(), data);
  }
  EXPECT_TRUE(any_difference) << "different seeds should diverge somewhere";
}

}  // namespace
}  // namespace dbi
