#include "power/encoder_energy.hpp"

#include <gtest/gtest.h>

namespace dbi::power {
namespace {

TEST(EncoderEnergy, Table1RowsMatchThePaper) {
  // Energy per burst at each design's own rate (Table I last column).
  EXPECT_NEAR(table1_hardware(Scheme::kDc).energy_per_burst(1.5e9) * 1e12,
              0.14, 0.01);
  EXPECT_NEAR(table1_hardware(Scheme::kAc).energy_per_burst(1.5e9) * 1e12,
              0.28, 0.01);
  EXPECT_NEAR(
      table1_hardware(Scheme::kOptFixed).energy_per_burst(1.5e9) * 1e12,
      1.66, 0.01);
  EXPECT_NEAR(table1_opt_3bit().energy_per_burst(0.5e9) * 1e12, 17.6, 0.1);
}

TEST(EncoderEnergy, Table1AreasMatchThePaper) {
  EXPECT_DOUBLE_EQ(table1_hardware(Scheme::kDc).area_um2, 275);
  EXPECT_DOUBLE_EQ(table1_hardware(Scheme::kAc).area_um2, 578);
  EXPECT_DOUBLE_EQ(table1_hardware(Scheme::kOptFixed).area_um2, 3807);
  EXPECT_DOUBLE_EQ(table1_opt_3bit().area_um2, 16584);
}

TEST(EncoderEnergy, TotalPowerMatchesTable1TotalColumn) {
  EXPECT_NEAR(table1_hardware(Scheme::kDc).total_power(1.5e9) * 1e6, 216, 1);
  EXPECT_NEAR(table1_hardware(Scheme::kAc).total_power(1.5e9) * 1e6, 420, 1);
  EXPECT_NEAR(table1_hardware(Scheme::kOptFixed).total_power(1.5e9) * 1e6,
              2490, 1);
  EXPECT_NEAR(table1_opt_3bit().total_power(0.5e9) * 1e6, 8800, 1);
}

TEST(EncoderEnergy, RawSchemeIsFree) {
  const EncoderHardware raw = table1_hardware(Scheme::kRaw);
  EXPECT_EQ(raw.units_needed(1.5e9), 0);
  EXPECT_DOUBLE_EQ(raw.energy_per_burst(1.5e9), 0.0);
  EXPECT_DOUBLE_EQ(raw.total_area(1.5e9), 0.0);
}

TEST(EncoderEnergy, SlowDesignNeedsParallelUnits) {
  // The paper: 3 units of the 0.5 GHz 3-bit design for a 1.5 GHz
  // channel, tripling area.
  const EncoderHardware hw = table1_opt_3bit();
  EXPECT_EQ(hw.units_needed(0.5e9), 1);
  EXPECT_EQ(hw.units_needed(1.0e9), 2);
  EXPECT_EQ(hw.units_needed(1.5e9), 3);
  EXPECT_DOUBLE_EQ(hw.total_area(1.5e9), 3 * 16584.0);
}

TEST(EncoderEnergy, EnergyPerBurstFallsThenLeakageAmortizes) {
  // At lower burst rates leakage is integrated over a longer period, so
  // energy per burst grows as the rate drops.
  const EncoderHardware hw = table1_hardware(Scheme::kOptFixed);
  EXPECT_GT(hw.energy_per_burst(0.1e9), hw.energy_per_burst(1.5e9));
}

TEST(EncoderEnergy, ParallelUnitsLeakTogether) {
  const EncoderHardware hw = table1_opt_3bit();
  // At 1.5 GHz, 3 units leak: E/burst = dyn + 3 * static / rate.
  const double expected = hw.dyn_energy_per_burst_j +
                          3.0 * hw.static_power_w / 1.5e9;
  EXPECT_NEAR(hw.energy_per_burst(1.5e9), expected, 1e-18);
}

TEST(EncoderEnergy, RejectsNonPositiveRate) {
  EXPECT_THROW((void)table1_hardware(Scheme::kDc).units_needed(0.0),
               std::invalid_argument);
}

TEST(EncoderEnergy, AcdcMapsToAcCost) {
  EXPECT_DOUBLE_EQ(table1_hardware(Scheme::kAcDc).area_um2,
                   table1_hardware(Scheme::kAc).area_um2);
}

TEST(EncoderEnergy, OptMapsToConfigurableDesign) {
  EXPECT_DOUBLE_EQ(table1_hardware(Scheme::kOpt).area_um2,
                   table1_opt_3bit().area_um2);
}

}  // namespace
}  // namespace dbi::power
