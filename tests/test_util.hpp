// Shared helpers for the test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "core/burst.hpp"
#include "core/types.hpp"
#include "workload/rng.hpp"

namespace dbi::test {

/// Deterministic random burst with the given geometry.
inline Burst random_burst(const BusConfig& cfg, std::uint64_t seed) {
  workload::Xoshiro256 rng(seed);
  Burst b(cfg);
  for (int i = 0; i < b.length(); ++i)
    b.set_word(i, static_cast<Word>(rng.next()) & cfg.dq_mask());
  return b;
}

/// A batch of deterministic random bursts.
inline std::vector<Burst> random_bursts(const BusConfig& cfg, int count,
                                        std::uint64_t seed) {
  std::vector<Burst> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    out.push_back(random_burst(cfg, seed + static_cast<std::uint64_t>(i)));
  return out;
}

}  // namespace dbi::test
