// Wide multi-group buses: a width-8g interface decomposes into g byte
// groups with one DBI line each, and the engine's per-group kernels
// must be bit-exact against the scalar encoder applied to every group
// slice independently — masks, stats, threaded state — at every width,
// for every Scheme, with or without a ShardPool.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "core/encoder.hpp"
#include "engine/batch_encoder.hpp"
#include "engine/shard_pool.hpp"
#include "workload/rng.hpp"

namespace dbi {
namespace {

constexpr Scheme kAllSchemes[] = {
    Scheme::kRaw, Scheme::kDc,       Scheme::kAc,         Scheme::kAcDc,
    Scheme::kOpt, Scheme::kOptFixed, Scheme::kExhaustive,
};

/// Deterministic packed wide payload: every byte random, remainder-group
/// bytes masked to the group's lane count.
std::vector<std::uint8_t> random_wide_bytes(const WideBusConfig& cfg,
                                            int bursts, std::uint64_t seed) {
  workload::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> bytes(
      static_cast<std::size_t>(bursts) *
      static_cast<std::size_t>(cfg.bytes_per_burst()));
  const auto groups = static_cast<std::size_t>(cfg.groups());
  const Word last_mask = cfg.group_config(cfg.groups() - 1).dq_mask();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(rng.next());
    if (i % groups == groups - 1) bytes[i] &= static_cast<std::uint8_t>(last_mask);
  }
  return bytes;
}

/// Scalar reference for one group slice: the width-8 (or remainder)
/// encoder chained over the group's strided bytes.
struct GroupReference {
  std::vector<engine::BurstResult> results;
  BurstStats totals;
  BusState final_state;
};

GroupReference scalar_group_reference(Scheme scheme, const CostWeights& w,
                                      std::span<const std::uint8_t> bytes,
                                      const WideBusConfig& cfg, int group) {
  const auto scalar = make_encoder(scheme, w);
  const BusConfig gcfg = cfg.group_config(group);
  const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());
  const auto groups = static_cast<std::size_t>(cfg.groups());
  GroupReference ref;
  ref.final_state = BusState::all_ones(gcfg);
  for (std::size_t i = 0; i * bb < bytes.size(); ++i) {
    Burst data(gcfg);
    for (int t = 0; t < cfg.burst_length; ++t)
      data.set_word(t, bytes[i * bb + static_cast<std::size_t>(t) * groups +
                             static_cast<std::size_t>(group)]);
    const EncodedBurst e = scalar->encode(data, ref.final_state);
    const BurstStats s = e.stats(ref.final_state);
    ref.results.push_back(engine::BurstResult{e.inversion_mask(), s});
    ref.totals += s;
    ref.final_state = e.final_state();
  }
  return ref;
}

void expect_wide_parity(Scheme scheme, const CostWeights& w,
                        const WideBusConfig& cfg, int bursts,
                        std::uint64_t seed) {
  const auto bytes = random_wide_bytes(cfg, bursts, seed);
  const int groups = cfg.groups();
  const engine::BatchEncoder batch(scheme, w);

  std::vector<BusState> states(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g)
    states[static_cast<std::size_t>(g)] = BusState::all_ones(cfg.group_config(g));
  std::vector<engine::BurstResult> results(
      static_cast<std::size_t>(bursts) * static_cast<std::size_t>(groups));
  const BurstStats totals =
      batch.encode_packed_wide(bytes, cfg, states, results.data());

  BurstStats want_totals;
  for (int g = 0; g < groups; ++g) {
    const GroupReference ref = scalar_group_reference(scheme, w, bytes, cfg, g);
    want_totals += ref.totals;
    ASSERT_EQ(states[static_cast<std::size_t>(g)], ref.final_state)
        << scheme_name(scheme) << " width " << cfg.width << " group " << g;
    for (int i = 0; i < bursts; ++i) {
      const auto slot = static_cast<std::size_t>(i) *
                            static_cast<std::size_t>(groups) +
                        static_cast<std::size_t>(g);
      ASSERT_EQ(results[slot], ref.results[static_cast<std::size_t>(i)])
          << scheme_name(scheme) << " width " << cfg.width << " group " << g
          << " burst " << i;
    }
  }
  EXPECT_EQ(totals, want_totals) << scheme_name(scheme) << " width "
                                 << cfg.width;
}

TEST(WideBus, ConfigGeometry) {
  const WideBusConfig x16{16, 8};
  EXPECT_EQ(x16.groups(), 2);
  EXPECT_EQ(x16.group_width(0), 8);
  EXPECT_EQ(x16.group_width(1), 8);
  EXPECT_EQ(x16.bytes_per_beat(), 2);
  EXPECT_EQ(x16.bytes_per_burst(), 16);
  EXPECT_EQ(x16.lines(), 18);

  const WideBusConfig x12{12, 6};
  EXPECT_EQ(x12.groups(), 2);
  EXPECT_EQ(x12.group_width(0), 8);
  EXPECT_EQ(x12.group_width(1), 4);
  EXPECT_EQ(x12.group_config(1), (BusConfig{4, 6}));
  EXPECT_EQ(x12.lines(), 14);

  const WideBusConfig x64{64, 8};
  EXPECT_EQ(x64.groups(), 8);
  EXPECT_EQ(x64.bytes_per_burst(), 64);
  EXPECT_EQ(x64.lines(), 72);

  EXPECT_NO_THROW((WideBusConfig{1, 1}.validate()));
  EXPECT_NO_THROW((WideBusConfig{64, 64}.validate()));
  EXPECT_THROW((WideBusConfig{0, 8}.validate()), std::invalid_argument);
  EXPECT_THROW((WideBusConfig{65, 8}.validate()), std::invalid_argument);
  EXPECT_THROW((WideBusConfig{8, 0}.validate()), std::invalid_argument);
  EXPECT_THROW((WideBusConfig{8, 65}.validate()), std::invalid_argument);
}

TEST(WideBus, PerGroupParityAllSchemesAcrossWidths) {
  // Exhaustive search rides along at a short burst length; every group
  // of every width must match its scalar twin bit for bit.
  const CostWeights w{0.56, 0.44};
  for (const int width : {8, 12, 16, 24, 32, 64}) {
    expect_wide_parity(Scheme::kExhaustive, w, WideBusConfig{width, 6}, 12,
                       static_cast<std::uint64_t>(width));
    for (const Scheme s :
         {Scheme::kRaw, Scheme::kDc, Scheme::kAc, Scheme::kAcDc, Scheme::kOpt,
          Scheme::kOptFixed})
      expect_wide_parity(s, w, WideBusConfig{width, 8}, 40,
                         static_cast<std::uint64_t>(width) * 131);
  }
}

TEST(WideBus, ParityAtOddBurstLengthsAndWidths) {
  // Partial SWAR chunks, non-multiple-of-8 widths with a remainder
  // group, and tie-prone odd group widths.
  const CostWeights w{0.5, 0.5};
  for (const int width : {9, 12, 20, 33, 52, 63}) {
    for (const int bl : {1, 5, 8, 17, 64}) {
      for (const Scheme s : {Scheme::kDc, Scheme::kAc, Scheme::kAcDc,
                             Scheme::kOptFixed})
        expect_wide_parity(s, w, WideBusConfig{width, bl}, 12,
                           static_cast<std::uint64_t>(width * 100 + bl));
    }
  }
}

TEST(WideBus, EncodeWideLanesMatchesSerialAndPool) {
  const WideBusConfig cfg{64, 8};
  const int groups = cfg.groups();
  constexpr int kLanes = 3;
  constexpr int kBursts = 64;
  const CostWeights w{0.56, 0.44};
  const engine::BatchEncoder batch(Scheme::kAc, w);

  std::vector<std::vector<std::uint8_t>> lane_bytes;
  for (int l = 0; l < kLanes; ++l)
    lane_bytes.push_back(
        random_wide_bytes(cfg, kBursts, 900 + static_cast<std::uint64_t>(l)));

  auto run = [&](engine::ShardPool* pool) {
    std::vector<std::vector<BusState>> states(kLanes);
    std::vector<std::vector<engine::BurstResult>> results(kLanes);
    std::vector<engine::WideLaneTask> tasks(kLanes);
    for (int l = 0; l < kLanes; ++l) {
      states[static_cast<std::size_t>(l)].resize(
          static_cast<std::size_t>(groups));
      for (int g = 0; g < groups; ++g)
        states[static_cast<std::size_t>(l)][static_cast<std::size_t>(g)] =
            BusState::all_ones(cfg.group_config(g));
      results[static_cast<std::size_t>(l)].resize(
          static_cast<std::size_t>(kBursts) * static_cast<std::size_t>(groups));
      tasks[static_cast<std::size_t>(l)] = engine::WideLaneTask{
          lane_bytes[static_cast<std::size_t>(l)],
          states[static_cast<std::size_t>(l)],
          results[static_cast<std::size_t>(l)].data(),
          {}};
    }
    batch.encode_wide_lanes(cfg, tasks, pool);
    return std::make_tuple(std::move(states), std::move(results),
                           tasks[0].totals, tasks[kLanes - 1].totals);
  };

  const auto serial = run(nullptr);
  engine::ShardPool pool(5);  // deliberately != lanes * groups
  const auto sharded = run(&pool);
  EXPECT_EQ(std::get<0>(serial), std::get<0>(sharded));
  EXPECT_EQ(std::get<1>(serial), std::get<1>(sharded));
  EXPECT_EQ(std::get<2>(serial), std::get<2>(sharded));
  EXPECT_EQ(std::get<3>(serial), std::get<3>(sharded));

  // And the serial run must equal the single-call wide encode.
  std::vector<BusState> states(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g)
    states[static_cast<std::size_t>(g)] = BusState::all_ones(cfg.group_config(g));
  const BurstStats direct =
      batch.encode_packed_wide(lane_bytes[0], cfg, states);
  EXPECT_EQ(direct, std::get<2>(serial));
}

TEST(WideBus, RejectsBadGeometryWithIndexedDiagnostics) {
  const WideBusConfig cfg{12, 8};
  const engine::BatchEncoder batch(Scheme::kDc);
  std::vector<BusState> states(2, BusState::all_ones(BusConfig{8, 8}));

  // Payload not a multiple of the packed wide burst size.
  const std::vector<std::uint8_t> short_payload(cfg.bytes_per_burst() + 1, 0);
  try {
    (void)batch.encode_packed_wide(short_payload, cfg, states);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("17 bytes"), std::string::npos) << what;
    EXPECT_NE(what.find("16-byte"), std::string::npos) << what;
  }

  // Remainder-group byte outside the 4-lane mask, named by position.
  auto bytes = random_wide_bytes(cfg, 3, 5);
  bytes[1 * static_cast<std::size_t>(cfg.bytes_per_burst()) + 2 * 2 + 1] =
      0x10;  // burst 1, beat 2, group 1
  try {
    (void)batch.encode_packed_wide(bytes, cfg, states);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("burst 1"), std::string::npos) << what;
    EXPECT_NE(what.find("beat 2"), std::string::npos) << what;
    EXPECT_NE(what.find("width-4"), std::string::npos) << what;
  }

  // Wrong number of group states.
  std::vector<BusState> one_state(1);
  EXPECT_THROW(
      (void)batch.encode_packed_wide(random_wide_bytes(cfg, 1, 6), cfg,
                                     one_state),
      std::invalid_argument);
  EXPECT_THROW((void)batch.encode_packed_group(random_wide_bytes(cfg, 1, 7),
                                               cfg, 2, states[0]),
               std::invalid_argument);
}

TEST(WideBus, EncodePackedNamesOffendingBurstAndBeat) {
  // The single-group packed path's geometry diagnostics carry burst and
  // beat numbers too.
  const BusConfig cfg{12, 4};
  const engine::BatchEncoder batch(Scheme::kDc);
  BusState state = BusState::all_ones(cfg);

  std::vector<std::uint8_t> bytes(
      static_cast<std::size_t>(cfg.bytes_per_burst()) * 2, 0);
  bytes[static_cast<std::size_t>(cfg.bytes_per_burst()) + 2 * 2 + 1] =
      0xF0;  // burst 1, beat 2: word 0xf00x exceeds 12 lanes
  try {
    (void)batch.encode_packed(bytes, cfg, state);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("burst 1"), std::string::npos) << what;
    EXPECT_NE(what.find("beat 2"), std::string::npos) << what;
    EXPECT_NE(what.find("width-12"), std::string::npos) << what;
  }

  try {
    (void)batch.encode_packed(
        std::span<const std::uint8_t>(bytes.data(), 3), cfg, state);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("3 bytes"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace dbi
