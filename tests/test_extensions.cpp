// Tests for the extension studies: granularity and decision-noise
// sweeps of sim/experiments.
#include <gtest/gtest.h>

#include <vector>

#include "sim/experiments.hpp"
#include "workload/generators.hpp"

namespace dbi::sim {
namespace {

const workload::BurstTrace& trace() {
  static const workload::BurstTrace t = [] {
    auto src = workload::make_uniform_source(BusConfig{8, 8}, 314);
    return workload::BurstTrace::collect(*src, 1500);
  }();
  return t;
}

TEST(Granularity, SingleGroupMatchesPlainOpt) {
  const CostWeights w{0.5, 0.5};
  const std::vector<int> groups = {1};
  const auto sweep = granularity_sweep(trace(), w, groups);
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_EQ(sweep[0].total_lines, 9);
  const auto direct = mean_stats(trace(), *make_opt_encoder(w));
  EXPECT_NEAR(sweep[0].mean_cost,
              0.5 * (direct.zeros + direct.transitions), 1e-9);
}

TEST(Granularity, LineCountGrowsWithGroups) {
  const std::vector<int> groups = {1, 2, 4, 8};
  const auto sweep = granularity_sweep(trace(), CostWeights{0.5, 0.5},
                                       groups);
  ASSERT_EQ(sweep.size(), 4u);
  EXPECT_EQ(sweep[0].total_lines, 9);
  EXPECT_EQ(sweep[1].total_lines, 10);
  EXPECT_EQ(sweep[2].total_lines, 12);
  EXPECT_EQ(sweep[3].total_lines, 16);
}

TEST(Granularity, NormalisationIsRelativeToSingleWire) {
  const std::vector<int> groups = {1, 2};
  const auto sweep = granularity_sweep(trace(), CostWeights{0.5, 0.5},
                                       groups);
  EXPECT_DOUBLE_EQ(sweep[0].vs_single_dbi, 1.0);
  EXPECT_NEAR(sweep[1].vs_single_dbi,
              sweep[1].mean_cost / sweep[0].mean_cost, 1e-12);
}

TEST(Granularity, ExtremeCaseOneWirePerLineIsCounterproductive) {
  // With one DBI wire per data line, inverting never pays for random
  // data (the control wire costs as much as it can save), so the cost
  // exceeds the classic 8+1 arrangement.
  const std::vector<int> groups = {1, 8};
  const auto sweep = granularity_sweep(trace(), CostWeights{0.5, 0.5},
                                       groups);
  EXPECT_GT(sweep[1].mean_cost, sweep[0].mean_cost);
}

TEST(Granularity, RejectsNonDividingGroups) {
  const std::vector<int> bad = {3};
  EXPECT_THROW(
      (void)granularity_sweep(trace(), CostWeights{1, 1}, bad),
      std::invalid_argument);
}

TEST(Noise, CleanPointHasZeroLoss) {
  const std::vector<double> rates = {0.0, 0.01};
  const auto sweep = noise_sweep(trace(), CostWeights{0.5, 0.5}, rates, 9);
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_NEAR(sweep[0].loss_vs_clean, 0.0, 1e-12);
  EXPECT_GT(sweep[1].loss_vs_clean, 0.0);
}

TEST(Noise, LossGrowsWithErrorRate) {
  const std::vector<double> rates = {0.001, 0.01, 0.1};
  const auto sweep = noise_sweep(trace(), CostWeights{0.5, 0.5}, rates, 9);
  EXPECT_LT(sweep[0].loss_vs_clean, sweep[1].loss_vs_clean);
  EXPECT_LT(sweep[1].loss_vs_clean, sweep[2].loss_vs_clean);
}

TEST(Noise, SmallErrorRatesAreCheap) {
  // The quantitative form of the paper's analog remark: 1e-3 decision
  // errors cost well under 1% energy.
  const std::vector<double> rates = {0.001};
  const auto sweep = noise_sweep(trace(), CostWeights{0.5, 0.5}, rates, 9);
  EXPECT_LT(sweep[0].loss_vs_clean, 0.01);
}

}  // namespace
}  // namespace dbi::sim
