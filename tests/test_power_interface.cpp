#include "power/interface_energy.hpp"

#include <gtest/gtest.h>

namespace dbi::power {
namespace {

TEST(PodParams, PresetsAreElectricallyValid) {
  EXPECT_NO_THROW(PodParams::pod135().validate());
  EXPECT_NO_THROW(PodParams::pod12().validate());
  EXPECT_NO_THROW(PodParams::pod15().validate());
  EXPECT_DOUBLE_EQ(PodParams::pod135().vddq, 1.35);
  EXPECT_DOUBLE_EQ(PodParams::pod12().vddq, 1.2);
  EXPECT_DOUBLE_EQ(PodParams::pod15().vddq, 1.5);
}

TEST(PodParams, ValidateRejectsNonsense) {
  PodParams p = PodParams::pod135();
  p.vddq = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = PodParams::pod135();
  p.r_pullup = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = PodParams::pod135();
  p.data_rate = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(PodParams, AtRateAndWithLoadAreNonMutating) {
  const PodParams base = PodParams::pod135(3e-12, 12e9);
  const PodParams faster = base.at_rate(16e9);
  const PodParams heavier = base.with_load(8e-12);
  EXPECT_DOUBLE_EQ(base.data_rate, 12e9);
  EXPECT_DOUBLE_EQ(base.c_load, 3e-12);
  EXPECT_DOUBLE_EQ(faster.data_rate, 16e9);
  EXPECT_DOUBLE_EQ(heavier.c_load, 8e-12);
}

TEST(InterfaceEnergy, VswingMatchesEq3) {
  // POD135, 60/40 ohm: Vswing = 1.35 * 60 / 100 = 0.81 V.
  EXPECT_NEAR(v_swing(PodParams::pod135()), 0.81, 1e-12);
  // POD12, 60/34 ohm: 1.2 * 60 / 94.
  EXPECT_NEAR(v_swing(PodParams::pod12()), 1.2 * 60.0 / 94.0, 1e-12);
}

TEST(InterfaceEnergy, EnergyZeroMatchesEq1) {
  // POD135 at 12 Gbps: 1.35^2 / 100 / 12e9 = 1.51875e-12 J.
  EXPECT_NEAR(energy_zero(PodParams::pod135(3e-12, 12e9)), 1.519e-12,
              1e-15);
}

TEST(InterfaceEnergy, EnergyZeroScalesInverselyWithRate) {
  const PodParams p = PodParams::pod135();
  EXPECT_NEAR(energy_zero(p.at_rate(6e9)), 2.0 * energy_zero(p.at_rate(12e9)),
              1e-18);
}

TEST(InterfaceEnergy, EnergyTransitionMatchesEq2) {
  // 0.5 * 1.35 * 0.81 * 3e-12 = 1.640e-12 J; independent of rate.
  const PodParams p = PodParams::pod135(3e-12, 12e9);
  EXPECT_NEAR(energy_transition(p), 0.5 * 1.35 * 0.81 * 3e-12, 1e-18);
  EXPECT_DOUBLE_EQ(energy_transition(p), energy_transition(p.at_rate(1e9)));
}

TEST(InterfaceEnergy, EnergyTransitionScalesWithLoad) {
  const PodParams p = PodParams::pod135(3e-12, 12e9);
  EXPECT_NEAR(energy_transition(p.with_load(6e-12)),
              2.0 * energy_transition(p), 1e-18);
}

TEST(InterfaceEnergy, BurstEnergyMatchesEq4) {
  const PodParams p = PodParams::pod135(3e-12, 12e9);
  const BurstStats s{26, 42};
  EXPECT_NEAR(burst_energy(p, s),
              26 * energy_zero(p) + 42 * energy_transition(p), 1e-18);
}

TEST(InterfaceEnergy, WeightsFromPodAreTheEnergyCoefficients) {
  const PodParams p = PodParams::pod12(2e-12, 3.2e9);
  const CostWeights w = weights_from_pod(p);
  EXPECT_DOUBLE_EQ(w.alpha, energy_transition(p));
  EXPECT_DOUBLE_EQ(w.beta, energy_zero(p));
}

TEST(InterfaceEnergy, ZeroCostDominatesAtLowRatesTransitionsAtHigh) {
  // The physical driver of Fig. 7: beta/alpha falls as the rate grows.
  const PodParams p = PodParams::pod135(3e-12, 12e9);
  const CostWeights slow = weights_from_pod(p.at_rate(1e9));
  const CostWeights fast = weights_from_pod(p.at_rate(20e9));
  EXPECT_GT(slow.beta / slow.alpha, 1.0);
  EXPECT_LT(fast.beta / fast.alpha, 1.0);
}

}  // namespace
}  // namespace dbi::power
