// Experiment-engine tests: the paper's Fig. 3/4/7/8 claims asserted as
// properties with tolerances (the bench binaries print the full
// series; these tests pin the shape).
#include "sim/experiments.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "engine/batch_encoder.hpp"
#include "workload/generators.hpp"
#include "workload/rng.hpp"

namespace dbi::sim {
namespace {

const workload::BurstTrace& trace() {
  // 3000 bursts keep the full suite fast while the statistics stay
  // well inside the tolerances below (the benches use 10000).
  static const workload::BurstTrace t = [] {
    auto src = workload::make_uniform_source(BusConfig{8, 8}, 20180319);
    return workload::BurstTrace::collect(*src, 3000);
  }();
  return t;
}

const std::vector<AlphaSweepPoint>& sweep() {
  static const std::vector<AlphaSweepPoint> s = alpha_sweep(trace(), 51);
  return s;
}

TEST(MeanStats, RawRandomDataAveragesMatchTheory) {
  const MeanStats raw = mean_stats(trace(), *make_raw_encoder());
  // Uniform bits: 32 zeros, 32 transitions expected per burst (the
  // all-ones boundary makes the first beat's transitions = zeros).
  EXPECT_NEAR(raw.zeros, 32.0, 0.5);
  EXPECT_NEAR(raw.transitions, 32.0, 0.5);
}

TEST(MeanStats, ChainedAccountingMatchesManualThreading) {
  const auto enc = make_ac_encoder();
  const MeanStats chained = mean_stats_chained(trace(), *enc);
  BusState state = BusState::all_ones(trace().config());
  double zeros = 0, transitions = 0;
  for (const Burst& b : trace().bursts()) {
    const EncodedBurst e = enc->encode(b, state);
    zeros += e.zeros();
    transitions += e.transitions(state);
    state = e.final_state();
  }
  const auto n = static_cast<double>(trace().size());
  EXPECT_NEAR(chained.zeros, zeros / n, 1e-9);
  EXPECT_NEAR(chained.transitions, transitions / n, 1e-9);
}

TEST(MeanStats, ChainedDiffersFromBoundaryOnlyViaFirstBeat) {
  // Zeros are boundary-independent for DC (per-beat rule); transitions
  // differ by a bounded per-burst amount (only the first beat sees a
  // different predecessor).
  const auto enc = make_dc_encoder();
  const MeanStats paper = mean_stats(trace(), *enc);
  const MeanStats chained = mean_stats_chained(trace(), *enc);
  EXPECT_NEAR(paper.zeros, chained.zeros, 1e-9);
  EXPECT_LT(std::abs(paper.transitions - chained.transitions), 4.5);
}

TEST(Fig3, OptLowerBoundsEverythingEverywhere) {
  for (const AlphaSweepPoint& p : sweep()) {
    EXPECT_LE(p.opt, p.dc + 1e-9) << "ac_cost=" << p.ac_cost;
    EXPECT_LE(p.opt, p.ac + 1e-9);
    EXPECT_LE(p.opt, p.acdc + 1e-9);
    EXPECT_LE(p.opt, p.raw + 1e-9);
    EXPECT_LE(p.opt, p.opt_fixed + 1e-9);
  }
}

TEST(Fig3, EndpointIdentities) {
  // alpha = 0: OPT == DC; alpha = 1: OPT == AC (Section III).
  EXPECT_NEAR(sweep().front().opt, sweep().front().dc, 1e-9);
  EXPECT_NEAR(sweep().back().opt, sweep().back().ac, 1e-9);
}

TEST(Fig3, EndpointMeansMatchClosedForm) {
  // E[zeros] after DBI DC on uniform bytes = 8 * 837 / 256 ~ 26.16;
  // by symmetry DBI AC's transition mean is the same value.
  EXPECT_NEAR(sweep().front().dc, 8.0 * 837.0 / 256.0, 0.25);
  EXPECT_NEAR(sweep().back().ac, 8.0 * 837.0 / 256.0, 0.25);
}

TEST(Fig3, AcDcCrossoverNearPoint56) {
  const AlphaSweepSummary s = summarize_alpha_sweep(sweep());
  EXPECT_NEAR(s.ac_dc_crossover, 0.56, 0.06);
}

TEST(Fig3, PeakOptGainNearSevenPercentAtCrossover) {
  const AlphaSweepSummary s = summarize_alpha_sweep(sweep());
  EXPECT_NEAR(s.max_gain_opt, 0.0675, 0.015);
  EXPECT_NEAR(s.max_gain_opt_alpha, 0.56, 0.1);
}

TEST(Fig3, DcAndAcAreWorseThanRawAtTheWrongEnd) {
  // Paper: "Both DBI AC and DBI DC perform worse than unencoded (RAW)
  // data, when used together with high DC cost or AC cost".
  EXPECT_GT(sweep().back().dc, sweep().back().raw);    // DC at alpha = 1
  EXPECT_GT(sweep().front().ac, sweep().front().raw);  // AC at alpha = 0
}

TEST(Fig3, DcStaysNearOptimalUntilAcCost015) {
  for (const AlphaSweepPoint& p : sweep()) {
    if (p.ac_cost <= 0.15) {
      EXPECT_LT((p.dc - p.opt) / p.opt, 0.02) << "ac_cost=" << p.ac_cost;
    }
    if (p.ac_cost >= 0.85) {
      EXPECT_LT((p.ac - p.opt) / p.opt, 0.02) << "ac_cost=" << p.ac_cost;
    }
  }
}

TEST(Fig3, AcdcEqualsAcUnderPaperBoundary) {
  for (const AlphaSweepPoint& p : sweep())
    EXPECT_NEAR(p.acdc, p.ac, 1e-9);
}

TEST(Fig4, FixedCoefficientWindowMatchesPaper) {
  const AlphaSweepSummary s = summarize_alpha_sweep(sweep());
  // Paper: OPT(Fixed) beats the best conventional scheme from AC cost
  // 0.23 to 0.79 and its peak gain ~6.58% is close to full OPT.
  EXPECT_NEAR(s.fixed_win_lo, 0.23, 0.07);
  EXPECT_NEAR(s.fixed_win_hi, 0.79, 0.07);
  EXPECT_NEAR(s.max_gain_fixed, 0.0658, 0.015);
  EXPECT_LE(s.max_gain_fixed, s.max_gain_opt + 1e-9);
}

TEST(Fig4, FixedIsExactlyOptimalAtEqualWeights) {
  for (const AlphaSweepPoint& p : sweep()) {
    if (std::abs(p.ac_cost - 0.5) < 1e-9) {
      EXPECT_NEAR(p.opt_fixed, p.opt, 1e-9);
    }
  }
}

TEST(AlphaSweep, RejectsBadArguments) {
  EXPECT_THROW((void)alpha_sweep(trace(), 1), std::invalid_argument);
  const workload::BurstTrace empty(BusConfig{8, 8});
  EXPECT_THROW((void)alpha_sweep(empty, 11), std::invalid_argument);
  EXPECT_THROW((void)summarize_alpha_sweep({}), std::invalid_argument);
}

// ------------------------------------------------------------- Fig. 7

std::vector<double> fig7_rates() {
  std::vector<double> rates;
  for (double g = 1.0; g <= 20.0; g += 1.0) rates.push_back(g);
  return rates;
}

TEST(Fig7, OptNeverAboveRawOrConventional) {
  const auto rates = fig7_rates();
  const auto sweep7 =
      datarate_sweep(power::PodParams::pod135(3e-12, 12e9), trace(), rates);
  ASSERT_EQ(sweep7.size(), rates.size());
  for (const RateSweepPoint& p : sweep7) {
    EXPECT_LE(p.opt, 1.0 + 1e-9) << p.gbps;  // never worse than RAW
    EXPECT_LE(p.opt, p.dc + 1e-9);
    EXPECT_LE(p.opt, p.ac + 1e-9);
    EXPECT_LE(p.opt, p.opt_fixed + 1e-9);
  }
}

TEST(Fig7, DcWinsAtLowRatesFixedWinsAtHighRates) {
  const auto sweep7 = datarate_sweep(power::PodParams::pod135(3e-12, 12e9),
                                     trace(), fig7_rates());
  // 1 Gbps: zeros dominate -> DC below OPT(Fixed).
  EXPECT_LT(sweep7.front().dc, sweep7.front().opt_fixed);
  // 14 Gbps (paper's max-gain region): OPT(Fixed) below DC and AC.
  const RateSweepPoint& high = sweep7[13];
  EXPECT_LT(high.opt_fixed, high.dc);
  EXPECT_LT(high.opt_fixed, high.ac);
}

TEST(Fig7, FixedOvertakesDcSomewhereBelow6Gbps) {
  // Paper: crossover at ~3.8 Gbps; our R_on/ODT presets land nearby.
  std::vector<double> rates;
  for (double g = 1.0; g <= 8.0; g += 0.25) rates.push_back(g);
  const auto sweep7 = datarate_sweep(power::PodParams::pod135(3e-12, 12e9),
                                     trace(), rates);
  double crossover = 0.0;
  for (const RateSweepPoint& p : sweep7) {
    if (p.opt_fixed < p.dc) {
      crossover = p.gbps;
      break;
    }
  }
  EXPECT_GT(crossover, 1.5);
  EXPECT_LT(crossover, 6.0);
}

TEST(Fig7, AcApproachesOptAsRateGrows) {
  const auto sweep7 = datarate_sweep(power::PodParams::pod135(3e-12, 12e9),
                                     trace(), fig7_rates());
  EXPECT_GT(sweep7.front().ac, 1.0);  // AC worse than RAW at low rate
  EXPECT_LT(sweep7.back().ac - sweep7.back().opt,
            sweep7.front().ac - sweep7.front().opt);
}

TEST(Fig7, Pod12BehavesLikePod135) {
  // Paper: "results for DDR4 with POD12 are almost identical".
  const auto a = datarate_sweep(power::PodParams::pod135(3e-12, 12e9),
                                trace(), fig7_rates());
  const auto b = datarate_sweep(power::PodParams::pod12(3e-12, 12e9),
                                trace(), fig7_rates());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i].opt, b[i].opt, 0.05);
}

// ------------------------------------------------------------- Fig. 8

TEST(Fig8, FixedBeatsBestConventionalAtItsSweetSpot) {
  const auto hw_dc = power::table1_hardware(Scheme::kDc);
  const auto hw_ac = power::table1_hardware(Scheme::kAc);
  const auto hw_fx = power::table1_hardware(Scheme::kOptFixed);
  std::vector<double> rates;
  for (double g = 2.0; g <= 20.0; g += 1.0) rates.push_back(g);
  const auto sweep8 =
      total_energy_sweep(power::PodParams::pod135(3e-12, 12e9), trace(),
                         rates, hw_dc, hw_ac, hw_fx);
  double best_ratio = 1e9;
  for (const TotalEnergyPoint& p : sweep8)
    best_ratio = std::min(best_ratio, p.ratio);
  // Paper: 5-6% net saving at the best operating points for 3 pF.
  EXPECT_LT(best_ratio, 0.96);
  EXPECT_GT(best_ratio, 0.90);
}

TEST(Fig8, HigherLoadMovesTheSweetSpotToLowerRates) {
  const auto hw_dc = power::table1_hardware(Scheme::kDc);
  const auto hw_ac = power::table1_hardware(Scheme::kAc);
  const auto hw_fx = power::table1_hardware(Scheme::kOptFixed);
  std::vector<double> rates;
  for (double g = 1.0; g <= 20.0; g += 0.5) rates.push_back(g);
  auto best_rate = [&](double c_load) {
    const auto sweep8 =
        total_energy_sweep(power::PodParams::pod135(c_load, 12e9), trace(),
                           rates, hw_dc, hw_ac, hw_fx);
    double best = 1e9, at = 0;
    for (const TotalEnergyPoint& p : sweep8)
      if (p.ratio < best) {
        best = p.ratio;
        at = p.gbps;
      }
    return at;
  };
  EXPECT_GT(best_rate(1e-12), best_rate(8e-12));
}

TEST(Fig8, EncoderEnergyShrinksTheInterfaceGain) {
  // Interface-only gain (Fig. 7) must exceed the total gain (Fig. 8)
  // at the same operating point: encoding is never free.
  const double rate = 14.0;
  const auto pod = power::PodParams::pod135(3e-12, 12e9);
  const std::vector<double> rates = {rate};
  const auto if_only = datarate_sweep(pod, trace(), rates);
  const auto total = total_energy_sweep(
      pod, trace(), rates, power::table1_hardware(Scheme::kDc),
      power::table1_hardware(Scheme::kAc),
      power::table1_hardware(Scheme::kOptFixed));
  const double if_ratio =
      if_only[0].opt_fixed / std::min(if_only[0].dc, if_only[0].ac);
  EXPECT_LT(if_ratio, total[0].ratio);
}

// ---------------------------------------------------------- Ablations

TEST(Quantization, MoreBitsNeverHurtMuchAndConvergeToExact) {
  const CostWeights w{0.35, 0.65};
  const auto q = quantization_sweep(trace(), w, 8);
  ASSERT_EQ(q.size(), 8u);
  for (const QuantizationPoint& p : q) EXPECT_GE(p.loss_vs_exact, -1e-9);
  EXPECT_LT(q.back().loss_vs_exact, 0.002);   // 8 bits ~ exact
  EXPECT_LT(q[2].loss_vs_exact, 0.02);        // 3 bits already close
  EXPECT_GE(q.front().loss_vs_exact, q.back().loss_vs_exact - 1e-9);
}

TEST(Window, LookaheadConvergesToFullOpt) {
  const CostWeights w{0.5, 0.5};
  const std::vector<int> windows = {1, 2, 4, 8};
  const auto s = window_sweep(trace(), w, windows);
  ASSERT_EQ(s.size(), 4u);
  for (const WindowPoint& p : s) EXPECT_GE(p.loss_vs_full, -1e-9);
  EXPECT_NEAR(s.back().loss_vs_full, 0.0, 1e-12);  // window 8 == OPT
  EXPECT_GT(s.front().loss_vs_full, s.back().loss_vs_full);
  // Monotone improvement with lookahead.
  for (std::size_t i = 1; i < s.size(); ++i)
    EXPECT_LE(s[i].loss_vs_full, s[i - 1].loss_vs_full + 1e-9);
}

TEST(WideWidthSweep, MatchesEnginePackedTotalsAndScalesWithWidth) {
  // 512 bursts of 64 bytes each feed every width cleanly.
  workload::Xoshiro256 rng(44);
  std::vector<std::uint8_t> bytes(512 * 64);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());

  const std::vector<int> widths = {8, 16, 32, 64};
  const auto sweep = wide_width_sweep(Scheme::kDc, CostWeights{0.5, 0.5},
                                      bytes, 8, widths);
  ASSERT_EQ(sweep.size(), widths.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(sweep[i].width, widths[i]);
    EXPECT_EQ(sweep[i].bursts,
              static_cast<std::int64_t>(bytes.size()) / (widths[i]));
    EXPECT_GT(sweep[i].zeros, 0.0);
    EXPECT_GT(sweep[i].transitions, 0.0);
  }

  // Width 8 is a single byte group: the sweep point must equal the
  // engine's plain packed encode of the same bytes.
  const engine::BatchEncoder batch(Scheme::kDc);
  BusState state = BusState::all_ones(BusConfig{8, 8});
  const BurstStats direct =
      batch.encode_packed(bytes, BusConfig{8, 8}, state);
  const auto n = static_cast<double>(sweep[0].bursts);
  EXPECT_DOUBLE_EQ(sweep[0].zeros, direct.zeros / n);
  EXPECT_DOUBLE_EQ(sweep[0].transitions, direct.transitions / n);

  // Same payload, twice the lanes: per-burst zeros roughly double from
  // width 32 to 64 (identical bits, half as many bursts).
  EXPECT_NEAR(sweep[3].zeros / sweep[2].zeros, 2.0, 0.2);

  EXPECT_THROW((void)wide_width_sweep(Scheme::kDc, {}, bytes, 8,
                                      std::vector<int>{65}),
               std::invalid_argument);
  const std::vector<std::uint8_t> odd(33, 0);
  EXPECT_THROW((void)wide_width_sweep(Scheme::kDc, {}, odd, 8,
                                      std::vector<int>{16}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dbi::sim
