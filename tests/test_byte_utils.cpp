#include "core/byte_utils.hpp"

#include <gtest/gtest.h>

namespace dbi {
namespace {

constexpr BusConfig kByte{8, 8};

TEST(ByteUtils, CountOnesByteLane) {
  EXPECT_EQ(count_ones(0x00, kByte), 0);
  EXPECT_EQ(count_ones(0xFF, kByte), 8);
  EXPECT_EQ(count_ones(0b10001110, kByte), 4);
  EXPECT_EQ(count_ones(0b01010101, kByte), 4);
}

TEST(ByteUtils, CountOnesIgnoresBitsAboveWidth) {
  // Word may carry garbage above the lane width; helpers must mask.
  EXPECT_EQ(count_ones(0xFFFFFF00u, kByte), 0);
  EXPECT_EQ(count_ones(0xFFFFFF0Fu, kByte), 4);
}

TEST(ByteUtils, CountZerosComplementsCountOnes) {
  for (Word w = 0; w < 256; ++w)
    EXPECT_EQ(count_zeros(w, kByte), 8 - count_ones(w, kByte)) << w;
}

TEST(ByteUtils, NarrowLaneCounts) {
  constexpr BusConfig narrow{4, 8};
  EXPECT_EQ(count_ones(0b1111, narrow), 4);
  EXPECT_EQ(count_zeros(0b0101, narrow), 2);
  EXPECT_EQ(count_ones(0xF0, narrow), 0);  // bits above width ignored
}

TEST(ByteUtils, InvertIsMaskedComplement) {
  EXPECT_EQ(invert(0x00, kByte), 0xFFu);
  EXPECT_EQ(invert(0xFF, kByte), 0x00u);
  EXPECT_EQ(invert(0b10001110, kByte), 0b01110001u);
  constexpr BusConfig narrow{5, 8};
  EXPECT_EQ(invert(0b00011, narrow), 0b11100u);
}

TEST(ByteUtils, InvertIsInvolution) {
  for (Word w = 0; w < 256; ++w)
    EXPECT_EQ(invert(invert(w, kByte), kByte), w);
}

TEST(ByteUtils, HammingBasics) {
  EXPECT_EQ(hamming(0x00, 0xFF, kByte), 8);
  EXPECT_EQ(hamming(0xAA, 0xAA, kByte), 0);
  EXPECT_EQ(hamming(0b10001110, 0b01111001, kByte), 7);  // Fig. 2 pair
}

TEST(ByteUtils, HammingSymmetricAndTriangle) {
  const Word a = 0x3C, b = 0xC3, c = 0x5A;
  EXPECT_EQ(hamming(a, b, kByte), hamming(b, a, kByte));
  EXPECT_LE(hamming(a, c, kByte),
            hamming(a, b, kByte) + hamming(b, c, kByte));
}

TEST(ByteUtils, HammingToInverseIsComplement) {
  for (Word w = 0; w < 256; w += 7) {
    const Word other = (w * 37 + 11) & 0xFF;
    EXPECT_EQ(hamming(w, other, kByte) + hamming(w, invert(other, kByte),
                                                 kByte),
              8);
  }
}

TEST(ByteUtils, BeatTransitionsCountsDbiLine) {
  const Beat prev{0xFF, true};
  EXPECT_EQ(beat_transitions(prev, Beat{0xFF, true}, kByte), 0);
  EXPECT_EQ(beat_transitions(prev, Beat{0xFF, false}, kByte), 1);
  EXPECT_EQ(beat_transitions(prev, Beat{0x00, false}, kByte), 9);
  EXPECT_EQ(beat_transitions(prev, Beat{0xF0, true}, kByte), 4);
}

TEST(ByteUtils, BeatZerosCountsDbiLine) {
  EXPECT_EQ(beat_zeros(Beat{0xFF, true}, kByte), 0);
  EXPECT_EQ(beat_zeros(Beat{0xFF, false}, kByte), 1);
  EXPECT_EQ(beat_zeros(Beat{0x00, true}, kByte), 8);
  EXPECT_EQ(beat_zeros(Beat{0x0F, false}, kByte), 5);
}

TEST(ByteUtils, ComplementaryBeatOptionsCoverAllLines) {
  // For any previous beat and any data word, transmitting the word
  // non-inverted vs inverted toggles t and (width + 1) - t lines: the
  // identity behind the DBI AC rule.
  const Beat prev{0b1011001, true};
  constexpr BusConfig cfg{7, 8};
  for (Word w = 0; w < (1u << 7); ++w) {
    const int keep = beat_transitions(prev, Beat{w, true}, cfg);
    const int inv = beat_transitions(prev, Beat{invert(w, cfg), false}, cfg);
    EXPECT_EQ(keep + inv, cfg.lines()) << w;
  }
}

}  // namespace
}  // namespace dbi
