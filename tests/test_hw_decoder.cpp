#include <gtest/gtest.h>

#include "hw/hw_design.hpp"
#include "hw/hw_encoder.hpp"
#include "netlist/report.hpp"
#include "netlist/sim.hpp"
#include "netlist/tech.hpp"
#include "test_util.hpp"

namespace dbi::hw {
namespace {

constexpr BusConfig kCfg{8, 8};
const BusState kBoundary = BusState::all_ones(kCfg);

/// Pushes an encoded burst through the decoder netlist and returns the
/// recovered payload words.
std::vector<Word> decode_through_netlist(const HwDesign& decoder,
                                         netlist::Simulator& sim,
                                         const EncodedBurst& e) {
  for (int i = 0; i < e.length(); ++i) {
    sim.set_input_bus(decoder.byte_in[static_cast<std::size_t>(i)],
                      e.beat(i).dq);
    sim.set_input(decoder.dbi_out[static_cast<std::size_t>(i)],
                  e.beat(i).dbi);
  }
  sim.eval();
  std::vector<Word> out;
  for (int i = 0; i < e.length(); ++i)
    out.push_back(static_cast<Word>(
        sim.bus(decoder.data_out[static_cast<std::size_t>(i)])));
  return out;
}

TEST(HwDecoder, InvertsEncoderForEveryScheme) {
  const HwDesign decoder = build_dbi_decoder();
  netlist::Simulator sim(decoder.net);
  for (auto build : {build_dbi_dc, build_dbi_ac, build_dbi_opt_fixed}) {
    HwEncoder encoder(build(8));
    for (const Burst& b : test::random_bursts(kCfg, 60, 99)) {
      const EncodedBurst e = encoder.encode(b, kBoundary);
      const std::vector<Word> decoded =
          decode_through_netlist(decoder, sim, e);
      for (int i = 0; i < b.length(); ++i)
        EXPECT_EQ(decoded[static_cast<std::size_t>(i)], b.word(i));
    }
  }
}

TEST(HwDecoder, HandlesExplicitPatterns) {
  const HwDesign decoder = build_dbi_decoder();
  netlist::Simulator sim(decoder.net);
  const Burst data(kCfg, std::array<Word, 8>{0x00, 0xFF, 0x55, 0xAA, 0x0F,
                                             0xF0, 0x01, 0x80});
  for (std::uint64_t mask : {0x00ull, 0xFFull, 0xA5ull, 0x01ull}) {
    const EncodedBurst e = EncodedBurst::from_inversion_mask(data, mask);
    const auto decoded = decode_through_netlist(decoder, sim, e);
    for (int i = 0; i < 8; ++i)
      EXPECT_EQ(decoded[static_cast<std::size_t>(i)], data.word(i))
          << "mask=" << mask;
  }
}

TEST(HwDecoder, IsTinyComparedToTheEncoder) {
  // The asymmetry behind the paper's conclusion about read-path DBI:
  // decoding needs ~1/30 of the optimal encoder's cells.
  const HwDesign decoder = build_dbi_decoder();
  const HwDesign encoder = build_dbi_opt_fixed();
  EXPECT_LT(decoder.net.physical_gates() * 20,
            encoder.net.physical_gates());
  // And it is purely one XOR + one INV per byte.
  EXPECT_EQ(decoder.net.physical_gates(), 8u * 9u);
}

TEST(HwDecoder, SynthesisReportIsCheap) {
  const HwDesign decoder = build_dbi_decoder();
  netlist::Simulator sim(decoder.net);
  sim.eval();
  sim.accumulate();
  const auto report =
      netlist::synthesize("decoder", decoder.net,
                          netlist::TechnologyModel::generic_32nm(), sim,
                          decoder.pipeline);
  EXPECT_LT(report.area_um2, 300.0);
  EXPECT_GT(report.fmax_hz, 3e9);  // single XOR level: far beyond 1.5 GHz
}

TEST(HwDecoder, RejectsSillySizes) {
  EXPECT_THROW(build_dbi_decoder(0), std::invalid_argument);
  EXPECT_THROW(build_dbi_decoder(99), std::invalid_argument);
}

}  // namespace
}  // namespace dbi::hw
