#include "workload/generators.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>

#include "core/byte_utils.hpp"

namespace dbi::workload {
namespace {

constexpr BusConfig kCfg{8, 8};

double zero_fraction(BurstSource& src, int bursts) {
  std::int64_t zeros = 0, bits = 0;
  for (int i = 0; i < bursts; ++i) {
    const Burst b = src.next();
    zeros += b.payload_zeros();
    bits += b.config().width * b.config().burst_length;
  }
  return static_cast<double>(zeros) / static_cast<double>(bits);
}

TEST(Generators, UniformIsDeterministicPerSeed) {
  auto a = make_uniform_source(kCfg, 42);
  auto b = make_uniform_source(kCfg, 42);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a->next(), b->next());
}

TEST(Generators, UniformHasHalfZeros) {
  auto src = make_uniform_source(kCfg, 1);
  EXPECT_NEAR(zero_fraction(*src, 3000), 0.5, 0.01);
}

TEST(Generators, UniformRespectsGeometry) {
  const BusConfig cfg{5, 3};
  auto src = make_uniform_source(cfg, 7);
  const Burst b = src->next();
  EXPECT_EQ(b.config(), cfg);
  for (int i = 0; i < b.length(); ++i)
    EXPECT_EQ(b.word(i) & ~cfg.dq_mask(), 0u);
}

TEST(Generators, BiasedMatchesProbability) {
  auto src = make_biased_source(kCfg, 0.8, 3);
  EXPECT_NEAR(zero_fraction(*src, 3000), 0.2, 0.01);
  EXPECT_THROW(make_biased_source(kCfg, 1.5, 3), std::invalid_argument);
}

TEST(Generators, SparseProducesZeroWords) {
  auto src = make_sparse_source(kCfg, 0.75, 5);
  std::int64_t zero_words = 0, words = 0;
  for (int i = 0; i < 2000; ++i) {
    const Burst b = src->next();
    for (int j = 0; j < b.length(); ++j) {
      ++words;
      if (b.word(j) == 0) ++zero_words;
    }
  }
  // 75% forced zero words plus ~0.4% random all-zero bytes.
  EXPECT_NEAR(static_cast<double>(zero_words) / words, 0.751, 0.02);
}

TEST(Generators, CounterIncrements) {
  auto src = make_counter_source(kCfg, 250, 1);
  const Burst b = src->next();
  EXPECT_EQ(b.word(0), 250u);
  EXPECT_EQ(b.word(5), 255u);
  EXPECT_EQ(b.word(6), 0u);  // wraps at the lane width
  const Burst b2 = src->next();
  EXPECT_EQ(b2.word(0), 2u);  // continues across bursts
}

TEST(Generators, CounterStride) {
  auto src = make_counter_source(kCfg, 0, 4);
  const Burst b = src->next();
  EXPECT_EQ(b.word(1), 4u);
  EXPECT_EQ(b.word(2), 8u);
}

TEST(Generators, GrayCounterFlipsOneBitPerBeat) {
  auto src = make_gray_counter_source(kCfg, 0);
  Word prev = 0;
  bool first = true;
  for (int burst = 0; burst < 30; ++burst) {
    const Burst b = src->next();
    for (int i = 0; i < b.length(); ++i) {
      if (!first) {
        EXPECT_EQ(hamming(prev, b.word(i), kCfg), 1);
      }
      first = false;
      prev = b.word(i);
    }
  }
}

TEST(Generators, WalkingOnesHasSingleBit) {
  auto src = make_walking_ones_source(kCfg);
  for (int burst = 0; burst < 5; ++burst) {
    const Burst b = src->next();
    for (int i = 0; i < b.length(); ++i)
      EXPECT_EQ(std::popcount(b.word(i)), 1);
  }
  // Position walks across all 8 lanes.
  auto fresh = make_walking_ones_source(kCfg);
  const Burst b = fresh->next();
  EXPECT_EQ(b.word(0), 1u);
  EXPECT_EQ(b.word(7), 128u);
}

TEST(Generators, TextIsPrintableAscii) {
  auto src = make_text_source(kCfg, 11);
  for (int burst = 0; burst < 200; ++burst) {
    const Burst b = src->next();
    for (int i = 0; i < b.length(); ++i) {
      const Word c = b.word(i);
      EXPECT_TRUE(c == ' ' || (c >= 'A' && c <= 'Z') ||
                  (c >= 'a' && c <= 'z'))
          << c;
    }
  }
}

TEST(Generators, TextRequiresByteLanes) {
  EXPECT_THROW(make_text_source(BusConfig{16, 8}, 1), std::invalid_argument);
}

TEST(Generators, TextTopBitIsAlwaysZero) {
  // ASCII => MSB of every byte is 0: structured data DBI can exploit.
  auto src = make_text_source(kCfg, 13);
  for (int burst = 0; burst < 100; ++burst) {
    const Burst b = src->next();
    for (int i = 0; i < b.length(); ++i) EXPECT_EQ(b.word(i) & 0x80u, 0u);
  }
}

TEST(Generators, FloatStreamParsesBackToDriftingValues) {
  auto src = make_float_source(kCfg, 17);
  std::vector<std::uint8_t> bytes;
  for (int burst = 0; burst < 4; ++burst) {
    const Burst b = src->next();
    for (int i = 0; i < b.length(); ++i)
      bytes.push_back(static_cast<std::uint8_t>(b.word(i)));
  }
  ASSERT_EQ(bytes.size() % 4, 0u);
  float prev = 1.0f;
  for (std::size_t i = 0; i < bytes.size(); i += 4) {
    float f = 0;
    std::memcpy(&f, bytes.data() + i, 4);
    EXPECT_TRUE(std::isfinite(f));
    EXPECT_NEAR(f, prev, 1.0f);  // slow random walk
    prev = f;
  }
}

TEST(Generators, MarkovHighStayProbabilityReducesTransitions) {
  auto sticky = make_markov_source(kCfg, 0.95, 19);
  auto jumpy = make_markov_source(kCfg, 0.5, 19);
  auto raw_transitions = [](BurstSource& src) {
    std::int64_t t = 0;
    Word prev = src.config().dq_mask();
    for (int i = 0; i < 500; ++i) {
      const Burst b = src.next();
      for (int j = 0; j < b.length(); ++j) {
        t += hamming(prev, b.word(j), kCfg);
        prev = b.word(j);
      }
    }
    return t;
  };
  EXPECT_LT(raw_transitions(*sticky), raw_transitions(*jumpy) / 4);
  EXPECT_THROW(make_markov_source(kCfg, -0.1, 1), std::invalid_argument);
}

TEST(Generators, SourcesReportNames) {
  EXPECT_EQ(make_uniform_source(kCfg, 1)->name(), "uniform");
  EXPECT_EQ(make_text_source(kCfg, 1)->name(), "text");
  EXPECT_EQ(make_float_source(kCfg, 1)->name(), "float32");
  EXPECT_EQ(make_markov_source(kCfg, 0.9, 1)->name(), "markov");
  EXPECT_EQ(make_framebuffer_source(kCfg, 1)->name(), "framebuffer");
  EXPECT_EQ(make_tensor_source(kCfg, 1)->name(), "tensor");
}

TEST(Generators, FramebufferAlphaBytesSaturate) {
  // Every 4th byte is the alpha channel, pinned at (or dithered around)
  // 0xFF — the structure that makes framebuffer traffic DBI-friendly.
  auto src = make_framebuffer_source(kCfg, 3);
  int alpha_high = 0, alpha_total = 0;
  for (int burst = 0; burst < 200; ++burst) {
    const Burst b = src->next();
    for (int i = 3; i < b.length(); i += 4) {
      ++alpha_total;
      if (b.word(i) >= 0xFE) ++alpha_high;
    }
  }
  EXPECT_GT(static_cast<double>(alpha_high) / alpha_total, 0.95);
}

TEST(Generators, FramebufferColourIsTemporallyCorrelated) {
  // Adjacent pixels along a scanline differ by ~1 LSB of gradient plus
  // dither, far below the 64 random-data average distance.
  auto src = make_framebuffer_source(kCfg, 5);
  double total_diff = 0;
  int samples = 0;
  Word prev_blue = 0;
  bool have_prev = false;
  for (int burst = 0; burst < 300; ++burst) {
    const Burst b = src->next();
    for (int i = 0; i < b.length(); i += 4) {
      if (have_prev) {
        total_diff += std::abs(static_cast<int>(b.word(i)) -
                               static_cast<int>(prev_blue));
        ++samples;
      }
      prev_blue = b.word(i);
      have_prev = true;
    }
  }
  EXPECT_LT(total_diff / samples, 20.0);
}

TEST(Generators, TensorWeightsAreSmallFloats) {
  auto src = make_tensor_source(kCfg, 7);
  std::vector<std::uint8_t> bytes;
  for (int burst = 0; burst < 100; ++burst) {
    const Burst b = src->next();
    for (int i = 0; i < b.length(); ++i)
      bytes.push_back(static_cast<std::uint8_t>(b.word(i)));
  }
  int small = 0, total = 0;
  for (std::size_t i = 0; i + 4 <= bytes.size(); i += 4) {
    float w = 0;
    std::memcpy(&w, bytes.data() + i, 4);
    EXPECT_TRUE(std::isfinite(w));
    ++total;
    if (std::fabs(w) < 0.5f) ++small;
  }
  EXPECT_GT(static_cast<double>(small) / total, 0.99);
}

TEST(Generators, GraphicsSourcesRequireByteLanes) {
  EXPECT_THROW(make_framebuffer_source(BusConfig{16, 8}, 1),
               std::invalid_argument);
  EXPECT_THROW(make_tensor_source(BusConfig{4, 8}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace dbi::workload
