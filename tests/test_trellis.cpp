#include "core/trellis.hpp"

#include <gtest/gtest.h>

#include <array>

#include "core/byte_utils.hpp"
#include "core/encoding.hpp"
#include "test_util.hpp"

namespace dbi {
namespace {

constexpr BusConfig kCfg{8, 8};

TEST(Trellis, SingleBeatPicksCheaperNode) {
  const BusConfig cfg{8, 1};
  // 0x03 has 6 zeros: non-inverted cost (alpha=beta=1) from all-ones:
  // zeros 6 + transitions 6 = 12; inverted (0xFC): zeros 2+1, trans 2+1
  // = 6 -> invert.
  const Burst data(cfg, std::array<Word, 1>{0x03});
  const auto r = solve_trellis(data, BusState::all_ones(cfg),
                               IntCostWeights{1, 1});
  EXPECT_EQ(r.invert_mask, 0b1u);
  EXPECT_EQ(r.cost, 6);
  EXPECT_EQ(r.node_costs[0][0], 12);
  EXPECT_EQ(r.node_costs[0][1], 6);
}

TEST(Trellis, TieBreaksToNonInvertedEndNode) {
  const BusConfig cfg{8, 1};
  // 0x0F: non-inverted zeros 4 + trans 4 = 8; inverted zeros 4+1,
  // trans 4+1 = 10 -> keep. And with alpha=0,beta=1: 4 vs 5 -> keep.
  const Burst data(cfg, std::array<Word, 1>{0x0F});
  const auto r = solve_trellis(data, BusState::all_ones(cfg),
                               IntCostWeights{1, 1});
  EXPECT_EQ(r.invert_mask, 0u);

  // Construct an exact tie: width-7 word with alpha=1, beta=0.
  // Transitions keep vs invert sum to 8; 0b1111000 from all-ones: keep
  // toggles 3+0(dbi)=3... choose word so both options cost 4.
  const BusConfig c7{7, 1};
  // keep: ham(1111111, w) + 0; inv: 7-ham +1. Tie at ham = 4.
  const Burst d7(c7, std::array<Word, 1>{0b0000111});  // ham=4
  const auto tie = solve_trellis(d7, BusState::all_ones(c7),
                                 IntCostWeights{1, 0});
  EXPECT_EQ(tie.node_costs[0][0], tie.node_costs[0][1]);
  EXPECT_EQ(tie.invert_mask, 0u) << "tie must resolve to non-inverted";
}

TEST(Trellis, NodeCostsAreMonotoneAlongBurst) {
  const Burst data = test::random_burst(kCfg, 7);
  const auto r =
      solve_trellis(data, BusState::all_ones(kCfg), IntCostWeights{2, 3});
  for (std::size_t i = 1; i < r.node_costs.size(); ++i) {
    const auto prev_min = std::min(r.node_costs[i - 1][0],
                                   r.node_costs[i - 1][1]);
    EXPECT_GE(r.node_costs[i][0], prev_min);
    EXPECT_GE(r.node_costs[i][1], prev_min);
  }
  EXPECT_EQ(r.cost, std::min(r.node_costs.back()[0], r.node_costs.back()[1]));
}

TEST(Trellis, MaskCostMatchesRecomputedEncodingCost) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const Burst data = test::random_burst(kCfg, seed);
    const BusState prev = BusState::all_ones(kCfg);
    const IntCostWeights w{3, 5};
    const auto r = solve_trellis(data, prev, w);
    const auto e = EncodedBurst::from_inversion_mask(data, r.invert_mask);
    EXPECT_EQ(r.cost, burst_cost(e.stats(prev), w)) << "seed=" << seed;
  }
}

TEST(Trellis, DoubleAndIntAgreeOnIntegerWeights) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 100);
    const BusState prev = BusState::all_ones(kCfg);
    const auto ri = solve_trellis(data, prev, IntCostWeights{2, 7});
    const auto rd = solve_trellis(data, prev, CostWeights{2.0, 7.0});
    EXPECT_DOUBLE_EQ(rd.cost, static_cast<double>(ri.cost));
    EXPECT_EQ(rd.invert_mask, ri.invert_mask);
  }
}

TEST(Trellis, ScalingWeightsPreservesDecision) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Burst data = test::random_burst(kCfg, seed + 500);
    const BusState prev = BusState::all_ones(kCfg);
    const auto a = solve_trellis(data, prev, CostWeights{0.3, 0.7});
    const auto b = solve_trellis(data, prev, CostWeights{3.0, 7.0});
    EXPECT_EQ(a.invert_mask, b.invert_mask);
    EXPECT_NEAR(b.cost, 10.0 * a.cost, 1e-9);
  }
}

TEST(Trellis, RespectsArbitraryBoundaryState) {
  const BusConfig cfg{8, 1};
  const Burst data(cfg, std::array<Word, 1>{0xF0});
  // From all-zeros boundary (dbi low): keep costs trans ham(0,F0)=4 +
  // dbi 0->1 = 5, zeros 4: total 9. invert (0x0F, dbi stays 0): trans
  // 4, zeros 4+1: total 9 -> tie -> keep.
  const auto r = solve_trellis(data, BusState::all_zeros(),
                               IntCostWeights{1, 1});
  EXPECT_EQ(r.node_costs[0][0], 9);
  EXPECT_EQ(r.node_costs[0][1], 9);
  EXPECT_EQ(r.invert_mask, 0u);
}

TEST(Trellis, PredecessorBitsDescribeOptimalPath) {
  const Burst data = test::random_burst(kCfg, 99);
  const auto r =
      solve_trellis(data, BusState::all_ones(kCfg), IntCostWeights{1, 1});
  // Walk the predecessor chain from the chosen end state; it must
  // reproduce invert_mask.
  int s = (r.invert_mask >> 7) & 1;
  std::uint64_t rebuilt = 0;
  for (int i = 7; i >= 0; --i) {
    if (s) rebuilt |= std::uint64_t{1} << i;
    s = r.pred[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)];
  }
  EXPECT_EQ(rebuilt, r.invert_mask);
}

TEST(EdgeCosts, MatchesFig5Formulas) {
  const IntCostWeights w{3, 2};
  // prev = 0xFF, cur = 0x8E (Fig. 2 byte 0): x = ham = 4, ones = 4.
  const EdgeCosts e = edge_costs(0xFF, 0x8E, kCfg, w);
  EXPECT_EQ(e.ac0, 3 * 4);
  EXPECT_EQ(e.ac1, 3 * (9 - 4));
  EXPECT_EQ(e.dc0, 2 * (8 - 4));
  EXPECT_EQ(e.dc1, 2 * (4 + 1));
}

TEST(EdgeCosts, AcPairSumsToAlphaTimesLines) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    workload::Xoshiro256 rng(seed);
    const Word a = static_cast<Word>(rng.next()) & 0xFF;
    const Word b = static_cast<Word>(rng.next()) & 0xFF;
    const EdgeCosts e = edge_costs(a, b, kCfg, IntCostWeights{5, 1});
    EXPECT_EQ(e.ac0 + e.ac1, 5 * kCfg.lines());
    EXPECT_EQ(e.dc0 + e.dc1, 1 * kCfg.lines());
  }
}

}  // namespace
}  // namespace dbi
