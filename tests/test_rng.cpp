#include "workload/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <set>

namespace dbi::workload {
namespace {

TEST(Rng, SplitMix64KnownSequence) {
  // Reference values from the splitmix64 reference implementation
  // seeded with 0: first output must be 0x16294671...-class constant;
  // we pin the values our implementation produces so any accidental
  // change to the generator breaks loudly (workloads must be stable
  // across releases for reproducibility).
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);  // same seed, same stream
}

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Xoshiro256 a2(42), c2(43);
  bool all_equal = true;
  for (int i = 0; i < 100; ++i)
    if (a2.next() != c2.next()) all_equal = false;
  EXPECT_FALSE(all_equal);
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanIsAboutHalf) {
  Xoshiro256 rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 255ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowCoversTheRange) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BiasedBitsMatchProbability) {
  Xoshiro256 rng(9);
  std::int64_t ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += std::popcount(rng.next_biased_bits(8, 0.25));
  EXPECT_NEAR(static_cast<double>(ones) / (8.0 * n), 0.25, 0.01);
}

TEST(Rng, BiasedBitsExtremes) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_biased_bits(8, 0.0), 0u);
    EXPECT_EQ(rng.next_biased_bits(8, 1.0), 0xFFu);
  }
}

TEST(Rng, BitsAreBalancedPerPosition) {
  Xoshiro256 rng(17);
  std::array<int, 64> counts{};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = rng.next();
    for (int bit = 0; bit < 64; ++bit)
      counts[static_cast<std::size_t>(bit)] +=
          static_cast<int>((v >> bit) & 1);
  }
  for (int bit = 0; bit < 64; ++bit)
    EXPECT_NEAR(counts[static_cast<std::size_t>(bit)] /
                    static_cast<double>(n),
                0.5, 0.02)
        << "bit " << bit;
}

}  // namespace
}  // namespace dbi::workload
