// Serving daemon: the framed protocol must round-trip losslessly, a
// served stream chunked over many requests must encode bit-identically
// to one offline StreamEncoder pass (state threads across requests and
// reconnects), bounded queues must reject with typed kBusy frames, DRR
// must keep a flooding tenant from inflating its neighbours' latency,
// graceful stop must answer every admitted request, and the soak — 8
// concurrent tenants, fault injection on two — must hold all of the
// above at once.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/geometry.hpp"
#include "engine/batch_decoder.hpp"
#include "engine/batch_encoder.hpp"
#include "engine/kernel_registry.hpp"
#include "engine/stream_encoder.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace dbi::serve {
namespace {

// ------------------------------------------------------------ protocol

TEST(Protocol, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Frame sent = make_frame(FrameType::kEncode, 42,
                          std::vector<std::uint8_t>{1, 2, 3, 4, 5});
  write_frame(fds[0], sent);
  Frame got;
  ASSERT_TRUE(read_frame(fds[1], got));
  EXPECT_EQ(got.type, FrameType::kEncode);
  EXPECT_EQ(got.seq, 42u);
  EXPECT_EQ(got.payload, sent.payload);

  ::close(fds[0]);
  EXPECT_FALSE(read_frame(fds[1], got));  // clean EOF, not a throw
  ::close(fds[1]);
}

TEST(Protocol, BadMagicThrows) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint8_t junk[16] = {0xde, 0xad, 0xbe, 0xef};
  ASSERT_EQ(::send(fds[0], junk, sizeof(junk), 0),
            static_cast<ssize_t>(sizeof(junk)));
  Frame got;
  EXPECT_THROW((void)read_frame(fds[1], got), ProtocolError);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Protocol, HelloPayloadRoundTrip) {
  HelloRequest h;
  h.tenant = "tenant-a";
  h.scheme = Scheme::kAcDc;
  h.geometry = Geometry::wide(32, 8);
  h.lanes = 4;
  h.reset_state_per_burst = true;
  h.kernel = "swar";
  const HelloRequest back = HelloRequest::parse(h.to_payload());
  EXPECT_EQ(back.tenant, "tenant-a");
  EXPECT_EQ(back.scheme, Scheme::kAcDc);
  EXPECT_TRUE(back.geometry.is_wide());
  EXPECT_EQ(back.geometry.width(), 32);
  EXPECT_EQ(back.lanes, 4);
  EXPECT_TRUE(back.reset_state_per_burst);
  EXPECT_EQ(back.kernel, "swar");
}

TEST(Protocol, EncodeAckPayloadRoundTrip) {
  EncodeAck ack;
  ack.burst_count = 3;
  ack.zeros = 17;
  ack.transitions = 23;
  ack.masks = {0x11, 0x22, 0x33};
  ack.tx = {9, 8, 7};
  const EncodeAck back = EncodeAck::parse(ack.to_payload());
  EXPECT_EQ(back.burst_count, 3u);
  EXPECT_EQ(back.zeros, 17u);
  EXPECT_EQ(back.transitions, 23u);
  EXPECT_EQ(back.masks, ack.masks);
  EXPECT_EQ(back.tx, ack.tx);
}

// ------------------------------------------------------------- fixture

std::string unique_socket(const char* tag) {
  static std::atomic<int> n{0};
  return (std::filesystem::temp_directory_path() /
          ("dbid_test_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + "_" + std::to_string(n++) + ".sock"))
      .string();
}

struct TestServer {
  explicit TestServer(ServerOptions opt) : server(std::move(opt)) {
    server.start();
  }
  Server server;

  [[nodiscard]] Client client(const std::string& tenant,
                              const Geometry& geometry,
                              Scheme scheme = Scheme::kAc) const {
    Client::Options o;
    o.socket_path = server.options().socket_path;
    o.tenant = tenant;
    o.scheme = scheme;
    o.geometry = geometry;
    return Client::connect(o);
  }
};

std::vector<std::uint8_t> random_payload(std::size_t bytes,
                                         std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint8_t> out(bytes);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

/// One offline StreamEncoder pass over the whole payload — the ground
/// truth a served stream (any request chunking) must reproduce.
std::vector<std::uint64_t> offline_masks(const Geometry& geometry,
                                         Scheme scheme,
                                         std::span<const std::uint8_t> payload,
                                         std::size_t bursts) {
  engine::BatchEncoder encoder(scheme);
  engine::StreamEncodeOptions sopt;
  std::unique_ptr<engine::StreamEncoder> stream;
  if (geometry.is_wide())
    stream = std::make_unique<engine::StreamEncoder>(
        encoder, geometry.wide_bus(), sopt);
  else
    stream =
        std::make_unique<engine::StreamEncoder>(encoder, geometry.bus(), sopt);
  const auto results = stream->encode_chunk(0, payload, bursts, true);
  std::vector<std::uint64_t> masks;
  masks.reserve(results.size());
  for (const auto& r : results) masks.push_back(r.invert_mask);
  return masks;
}

// ------------------------------------------------------- served stream

TEST(Serve, ChunkedRequestsMatchOfflineEncode) {
  const Geometry g = Geometry::narrow(8, 8);
  ServerOptions opt;
  opt.socket_path = unique_socket("chunked");
  TestServer ts(std::move(opt));

  constexpr std::size_t kBursts = 256;
  const auto bpb = static_cast<std::size_t>(g.bytes_per_burst());
  const auto payload = random_payload(kBursts * bpb, 1);
  const auto expect = offline_masks(g, Scheme::kAc, payload, kBursts);

  // Served in uneven slices: the daemon must thread BusState across
  // requests so the concatenated masks equal the one-shot encode.
  auto client = ts.client("chunked", g);
  std::vector<std::uint64_t> served;
  std::uint64_t zeros = 0;
  const std::size_t slices[] = {1, 7, 64, 184};
  std::size_t at = 0;
  for (const std::size_t n : slices) {
    const auto r = client.encode(
        std::span(payload).subspan(at * bpb, n * bpb),
        static_cast<std::uint32_t>(n));
    ASSERT_EQ(r.outcome, Client::Outcome::kOk);
    served.insert(served.end(), r.ack.masks.begin(), r.ack.masks.end());
    zeros += r.ack.zeros;
    at += n;
  }
  ASSERT_EQ(at, kBursts);
  EXPECT_EQ(served, expect);
  EXPECT_GT(zeros, 0u);
}

TEST(Serve, WantTxReturnsInvolutionOfPayload) {
  const Geometry g = Geometry::wide(32, 8);
  ServerOptions opt;
  opt.socket_path = unique_socket("wanttx");
  TestServer ts(std::move(opt));

  constexpr std::size_t kBursts = 64;
  const auto bpb = static_cast<std::size_t>(g.bytes_per_burst());
  const auto payload = random_payload(kBursts * bpb, 2);
  auto client = ts.client("wanttx", g, Scheme::kAcDc);
  const auto r = client.encode(payload, kBursts, /*want_tx=*/true);
  ASSERT_EQ(r.outcome, Client::Outcome::kOk);
  ASSERT_EQ(r.ack.tx.size(), payload.size());

  // Decoding the returned wire bytes with the returned masks (on the
  // server, exercising kDecode too) must recover the payload exactly.
  const auto d = client.decode(r.ack.tx, r.ack.masks, kBursts);
  ASSERT_EQ(d.outcome, Client::Outcome::kOk);
  EXPECT_EQ(d.payload, payload);
}

TEST(Serve, ReconnectKeepsTenantState) {
  const Geometry g = Geometry::narrow(8, 8);
  ServerOptions opt;
  opt.socket_path = unique_socket("reconnect");
  TestServer ts(std::move(opt));

  constexpr std::size_t kBursts = 128;
  const auto bpb = static_cast<std::size_t>(g.bytes_per_burst());
  const auto payload = random_payload(kBursts * bpb, 3);
  const auto expect = offline_masks(g, Scheme::kAc, payload, kBursts);

  std::vector<std::uint64_t> served;
  {
    auto first = ts.client("sticky", g);
    const auto r = first.encode(std::span(payload).first(64 * bpb), 64);
    ASSERT_EQ(r.outcome, Client::Outcome::kOk);
    served.insert(served.end(), r.ack.masks.begin(), r.ack.masks.end());
  }  // connection dropped; tenant state must survive
  {
    auto second = ts.client("sticky", g);
    const auto r = second.encode(std::span(payload).subspan(64 * bpb), 64);
    ASSERT_EQ(r.outcome, Client::Outcome::kOk);
    served.insert(served.end(), r.ack.masks.begin(), r.ack.masks.end());
  }
  EXPECT_EQ(served, expect);

  // Reconnecting under the same name with a different spec is a typed
  // error, not silent state reuse.
  Client::Options o;
  o.socket_path = ts.server.options().socket_path;
  o.tenant = "sticky";
  o.scheme = Scheme::kDc;  // mismatch
  o.geometry = g;
  try {
    (void)Client::connect(o);
    FAIL() << "spec mismatch must be rejected";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.status(), StatusCode::kBadState);
  }
}

TEST(Serve, DataRequestBeforeHelloIsBadState) {
  ServerOptions opt;
  opt.socket_path = unique_socket("nohello");
  TestServer ts(std::move(opt));

  auto control = Client::connect_control(ts.server.options().socket_path);
  const auto payload = random_payload(8, 4);
  try {
    (void)control.encode(payload, 1);
    FAIL() << "encode before hello must be rejected";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.status(), StatusCode::kBadState);
  }
}

TEST(Serve, StatsFrameExposesBuildAndTenantSeries) {
  const Geometry g = Geometry::narrow(8, 8);
  ServerOptions opt;
  opt.socket_path = unique_socket("stats");
  TestServer ts(std::move(opt));

  auto client = ts.client("metered", g);
  const auto payload = random_payload(32 * 8, 5);
  ASSERT_EQ(client.encode(payload, 32).outcome, Client::Outcome::kOk);

  auto control = Client::connect_control(ts.server.options().socket_path);
  const std::string text = control.stats();
  EXPECT_NE(text.find("dbi_build_info{version="), std::string::npos);
  EXPECT_NE(text.find("dbi_serve_requests_total{tenant=\"metered\""),
            std::string::npos);
  EXPECT_NE(text.find("dbi_serve_request_latency_ns{tenant=\"metered\""),
            std::string::npos);

  const obs::Snapshot snap = ts.server.metrics();
  EXPECT_EQ(snap.value("dbi_serve_bursts_total", "tenant=\"metered\""), 32.0);
  EXPECT_EQ(snap.value("dbi_serve_tenants"), 1.0);
}

// --------------------------------------------------------- backpressure

TEST(Serve, FullQueueRejectsWithBusy) {
  const Geometry g = Geometry::narrow(8, 8);
  ServerOptions opt;
  opt.socket_path = unique_socket("busy");
  opt.max_queue_requests = 0;  // admit nothing: every data frame is kBusy
  TestServer ts(std::move(opt));

  auto client = ts.client("throttled", g);
  EXPECT_EQ(client.max_queue_requests(), 0u);
  const auto payload = random_payload(8, 6);
  const auto r = client.encode(payload, 1);
  EXPECT_EQ(r.outcome, Client::Outcome::kBusy);

  const obs::Snapshot snap = ts.server.metrics();
  EXPECT_EQ(snap.value("dbi_serve_busy_total", "tenant=\"throttled\""), 1.0);
}

TEST(Serve, PipelinedFloodSeesBusyThenRecovers) {
  const Geometry g = Geometry::narrow(8, 8);
  ServerOptions opt;
  opt.socket_path = unique_socket("flood");
  opt.max_queue_requests = 2;
  opt.batch_delay = std::chrono::milliseconds(5);  // force queue build-up
  TestServer ts(std::move(opt));

  auto client = ts.client("flood", g);
  const auto payload = random_payload(8, 7);
  constexpr int kInFlight = 16;
  for (int i = 0; i < kInFlight; ++i)
    (void)client.submit_encode(payload, 1);
  int ok = 0, busy = 0;
  for (int i = 0; i < kInFlight; ++i) {
    const auto r = client.next_response();
    (r.outcome == Client::Outcome::kOk ? ok : busy)++;
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(busy, 0);

  // Backpressure is transient: a later synchronous request succeeds.
  const auto r = client.encode(payload, 1);
  EXPECT_EQ(r.outcome, Client::Outcome::kOk);
}

TEST(Serve, GracefulStopAnswersEveryAdmittedRequest) {
  const Geometry g = Geometry::narrow(8, 8);
  ServerOptions opt;
  opt.socket_path = unique_socket("drain");
  opt.batch_delay = std::chrono::milliseconds(2);
  auto ts = std::make_unique<TestServer>(std::move(opt));

  auto client = ts->client("drainee", g);
  const auto payload = random_payload(8 * 8, 8);
  constexpr int kInFlight = 8;
  for (int i = 0; i < kInFlight; ++i)
    (void)client.submit_encode(payload, 8);

  // stop() must finish the already-admitted requests before tearing
  // down the readers: all responses (acks or typed rejections) arrive.
  std::thread stopper([&] { ts->server.stop(); });
  int answered = 0;
  try {
    for (int i = 0; i < kInFlight; ++i) {
      (void)client.next_response();
      ++answered;
    }
  } catch (const ServerError&) {
    ++answered;  // a typed kShuttingDown rejection still answers it
  } catch (const ProtocolError&) {
    // EOF after the drain — only acceptable once responses stopped.
  }
  stopper.join();
  EXPECT_GT(answered, 0);
  EXPECT_FALSE(ts->server.running());
}

TEST(Serve, OverCapResponseRejectedAtAdmission) {
  // A want_tx encode whose ack (masks + echoed tx) would exceed the
  // 64 MiB frame cap must be rejected with a typed kBadFrame at
  // admission — not worked on and then silently unanswerable.
  const Geometry g = Geometry::narrow(8, 8);
  ServerOptions opt;
  opt.socket_path = unique_socket("overcap");
  TestServer ts(std::move(opt));

  auto client = ts.client("overcap", g);
  const auto bpb = static_cast<std::size_t>(g.bytes_per_burst());
  // ack = 28 + bursts*8 (masks) + bursts*bpb (tx): past the cap while
  // the request payload itself still fits.
  constexpr std::uint32_t kBursts = 4'194'303;
  const std::vector<std::uint8_t> payload(kBursts * bpb, 0xA5);
  try {
    (void)client.encode(payload, kBursts, /*want_tx=*/true);
    FAIL() << "over-cap want_tx response was not rejected";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.status(), StatusCode::kBadFrame);
  }
  // The rejection is per-request: the connection stays usable.
  const auto r = client.encode(std::span(payload).first(8 * bpb), 8);
  EXPECT_EQ(r.outcome, Client::Outcome::kOk);
}

std::size_t open_fd_count() {
  std::size_t n = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++n;
  }
  return n;
}

TEST(Serve, DisconnectedConnectionsAreReaped) {
  const Geometry g = Geometry::narrow(8, 8);
  ServerOptions opt;
  opt.socket_path = unique_socket("reap");
  TestServer ts(std::move(opt));
  const std::size_t baseline = open_fd_count();

  // Each round opens a connection (one fd on each side) and drops it;
  // the server must return to the baseline fd count instead of holding
  // every disconnected socket until shutdown.
  const auto payload = random_payload(8 * 8, 9);
  for (int i = 0; i < 16; ++i) {
    auto client = ts.client("reap", g);
    const auto r = client.encode(payload, 8);
    ASSERT_EQ(r.outcome, Client::Outcome::kOk);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::size_t now = open_fd_count();
  while (now > baseline && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    now = open_fd_count();
  }
  EXPECT_LE(now, baseline);
}

TEST(Serve, SlowConsumerIsDroppedWithoutStallingNeighbours) {
  const Geometry g = Geometry::narrow(8, 8);
  ServerOptions opt;
  opt.socket_path = unique_socket("slowpeer");
  opt.send_timeout = std::chrono::milliseconds(200);
  opt.max_queue_requests = 1024;
  TestServer ts(std::move(opt));
  const auto bpb = static_cast<std::size_t>(g.bytes_per_burst());

  // Raw flooding connection: hello, then pipeline want_tx encodes and
  // never read a response, so the server-side socket buffer fills.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, ts.server.options().socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  HelloRequest h;
  h.tenant = "slowpeer";
  h.geometry = g;
  write_frame(fd, make_frame(FrameType::kHello, 1, h.to_payload()));
  Frame ack;
  ASSERT_TRUE(read_frame(fd, ack));
  ASSERT_EQ(ack.type, FrameType::kHelloAck);

  EncodeRequest req;
  req.flags = EncodeRequest::kWantTx;
  req.burst_count = 64;
  const auto payload = random_payload(64 * bpb, 11);
  req.payload = payload;
  const auto reqp = req.to_payload();
  try {
    for (int i = 0; i < 512; ++i)
      write_frame(fd, make_frame(FrameType::kEncode, 100 + i, reqp));
  } catch (const std::system_error&) {
    // The server already dropped us mid-flood — that's the fix working.
  }

  // While the flooder never reads, a neighbour must still get served:
  // before the send timeout existed, the scheduler blocked forever on
  // the flooder's full socket and every other tenant starved.
  auto victim = ts.client("victim", g);
  const auto vp = random_payload(32 * bpb, 12);
  const auto r = victim.encode(vp, 32);
  EXPECT_EQ(r.outcome, Client::Outcome::kOk);

  // The flooder's connection ends in a drop (EOF / reset after the
  // buffered responses drain), never an open-ended hang.
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::vector<std::uint8_t> buf(65536);
  ssize_t m;
  do {
    m = ::recv(fd, buf.data(), buf.size(), 0);
  } while (m > 0);
  EXPECT_LE(m, 0);
  ::close(fd);
}

// ---------------------------------------------------------------- soak

TEST(ServeSoak, EightTenantsWithFaultInjectionAndIsolation) {
  const Geometry g = Geometry::narrow(8, 8);
  ServerOptions opt;
  opt.socket_path = unique_socket("soak");
  opt.max_queue_requests = 64;
  opt.quantum_bursts = 256;
  opt.max_batch_bursts = 1024;
  // Corrupt one wire byte per verify request for tenants named fault-*:
  // their round trips must report mismatches while every other tenant
  // stays bit-exact on the same shared scheduler and pool.
  opt.fault_injector = [](std::string_view tenant, std::int64_t,
                          std::span<std::uint8_t> tx,
                          std::span<std::uint64_t>) {
    if (tenant.substr(0, 6) == "fault-" && !tx.empty()) tx[0] ^= 0x40;
  };
  TestServer ts(std::move(opt));

  constexpr int kTenants = 8;
  constexpr int kRequests = 12;
  constexpr std::size_t kBurstsPerRequest = 96;
  const auto bpb = static_cast<std::size_t>(g.bytes_per_burst());

  struct Outcome {
    bool ok = true;
    std::uint64_t mismatched = 0;
    std::vector<std::uint64_t> masks;
    std::string error;
  };
  std::vector<Outcome> outcomes(kTenants);
  std::vector<std::vector<std::uint8_t>> payloads(kTenants);
  for (int t = 0; t < kTenants; ++t)
    payloads[t] = random_payload(kRequests * kBurstsPerRequest * bpb,
                                 1000 + static_cast<std::uint64_t>(t));

  std::vector<std::thread> tenants;
  for (int t = 0; t < kTenants; ++t) {
    tenants.emplace_back([&, t] {
      Outcome& out = outcomes[t];
      try {
        const bool faulty = t < 2;
        const std::string name =
            (faulty ? "fault-" : "clean-") + std::to_string(t);
        auto client = ts.client(name, g);
        for (int q = 0; q < kRequests; ++q) {
          const auto slice = std::span(payloads[t]).subspan(
              static_cast<std::size_t>(q) * kBurstsPerRequest * bpb,
              kBurstsPerRequest * bpb);
          if (q % 3 == 2) {  // every third request round-trips server-side
            Client::VerifyResult r;
            do {
              r = client.verify(slice, kBurstsPerRequest);
            } while (r.outcome == Client::Outcome::kBusy);
            out.ok = out.ok && r.ack.ok;
            out.mismatched += r.ack.mismatched_bytes;
          } else {
            Client::EncodeResult r;
            do {
              r = client.encode(slice, kBurstsPerRequest);
            } while (r.outcome == Client::Outcome::kBusy);
            out.masks.insert(out.masks.end(), r.ack.masks.begin(),
                             r.ack.masks.end());
          }
        }
      } catch (const std::exception& e) {
        out.ok = false;
        out.error = e.what();
      }
    });
  }
  for (auto& th : tenants) th.join();

  for (int t = 0; t < kTenants; ++t) {
    const Outcome& out = outcomes[t];
    ASSERT_TRUE(out.error.empty()) << "tenant " << t << ": " << out.error;
    if (t < 2) {
      // Faulted tenants: every verify saw the corrupted wire byte.
      EXPECT_FALSE(out.ok) << "tenant " << t;
      EXPECT_GT(out.mismatched, 0u) << "tenant " << t;
    } else {
      EXPECT_TRUE(out.ok) << "tenant " << t;
      EXPECT_EQ(out.mismatched, 0u) << "tenant " << t;
    }
    // Interleaved scheduling must not leak state between tenants: each
    // tenant's concatenated masks equal its own offline single pass
    // (verify requests advance state exactly like encode, so the
    // offline reference spans the full payload).
    const auto expect = offline_masks(g, Scheme::kAc, payloads[t],
                                      kRequests * kBurstsPerRequest);
    std::vector<std::uint64_t> expect_encoded;
    for (int q = 0; q < kRequests; ++q) {
      if (q % 3 == 2) continue;
      const auto begin =
          expect.begin() +
          static_cast<std::ptrdiff_t>(q * kBurstsPerRequest) * g.groups();
      expect_encoded.insert(
          expect_encoded.end(), begin,
          begin + static_cast<std::ptrdiff_t>(kBurstsPerRequest) * g.groups());
    }
    EXPECT_EQ(out.masks, expect_encoded) << "tenant " << t;
  }

  const obs::Snapshot snap = ts.server.metrics();
  EXPECT_GE(snap.value("dbi_serve_tenants"), 8.0);
  EXPECT_EQ(snap.value("dbi_serve_errors_total", "tenant=\"clean-7\""), 0.0);
}

TEST(ServeSoak, FloodingTenantDoesNotInflateNeighbourLatency) {
  const Geometry g = Geometry::narrow(8, 8);
  ServerOptions opt;
  opt.socket_path = unique_socket("isolation");
  opt.max_queue_requests = 64;
  opt.quantum_bursts = 64;
  opt.max_batch_bursts = 256;
  opt.batch_delay = std::chrono::microseconds(500);
  TestServer ts(std::move(opt));

  const auto bpb = static_cast<std::size_t>(g.bytes_per_burst());
  std::atomic<bool> stop{false};

  // The flooder keeps 32 large requests in flight for the whole run.
  std::thread flooder([&] {
    auto client = ts.client("flood", g);
    const auto payload = random_payload(64 * bpb, 42);
    constexpr int kWindow = 32;
    for (int i = 0; i < kWindow; ++i) (void)client.submit_encode(payload, 64);
    while (!stop.load()) {
      (void)client.next_response();
      (void)client.submit_encode(payload, 64);
    }
    for (int i = 0; i < kWindow; ++i) (void)client.next_response();
  });

  // Victims do small synchronous requests — with DRR each waits at
  // most one quantum of the flooder, never its whole backlog.
  std::vector<std::thread> victims;
  for (int v = 0; v < 3; ++v) {
    victims.emplace_back([&, v] {
      auto client = ts.client("victim-" + std::to_string(v), g);
      const auto payload =
          random_payload(4 * bpb, 100 + static_cast<std::uint64_t>(v));
      for (int q = 0; q < 24; ++q) {
        Client::EncodeResult r;
        do {
          r = client.encode(payload, 4);
        } while (r.outcome == Client::Outcome::kBusy);
      }
    });
  }
  for (auto& th : victims) th.join();
  stop.store(true);
  flooder.join();

  const obs::Snapshot snap = ts.server.metrics();
  const obs::MetricPoint* flood =
      snap.find("dbi_serve_request_latency_ns", "tenant=\"flood\"");
  ASSERT_NE(flood, nullptr);
  for (int v = 0; v < 3; ++v) {
    const obs::MetricPoint* victim =
        snap.find("dbi_serve_request_latency_ns",
                  "tenant=\"victim-" + std::to_string(v) + "\"");
    ASSERT_NE(victim, nullptr);
    // The flooder keeps ~32 requests queued; a victim's p99 must stay
    // below the flooder's (its requests jump the backlog via DRR).
    EXPECT_LT(victim->p99, flood->p99) << "victim-" << v;
  }
}

}  // namespace
}  // namespace dbi::serve
