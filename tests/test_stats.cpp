#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dbi::sim {
namespace {

TEST(Accumulator, EmptyIsZero) {
  const Accumulator a;
  EXPECT_EQ(a.count(), 0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(a.sem(), 0.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator a;
  a.add(5.0);
  EXPECT_EQ(a.count(), 1);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  // Sample variance of this classic data set: 32 / 7.
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(a.sem(), std::sqrt(32.0 / 7.0 / 8.0), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i < 37 ? left : right).add(x);
  }
  left += right;
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a += empty;
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  Accumulator b;
  b += a;
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Accumulator, NumericallyStableAroundLargeOffsets) {
  Accumulator a;
  for (int i = 0; i < 1000; ++i) a.add(1e9 + (i % 2));
  EXPECT_NEAR(a.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(a.variance(), 0.25 * 1000 / 999, 1e-6);
}

}  // namespace
}  // namespace dbi::sim
