// Integration tests: the gate-level encoder designs must reproduce the
// behavioural encoders bit-for-bit — the netlists ARE the paper's
// Fig. 5 hardware, the behavioural encoders ARE the specification.
#include <gtest/gtest.h>

#include <array>

#include "core/encoder.hpp"
#include "hw/hw_encoder.hpp"
#include "sim/experiments.hpp"
#include "test_util.hpp"

namespace dbi::hw {
namespace {

constexpr BusConfig kCfg{8, 8};
const BusState kBoundary = BusState::all_ones(kCfg);

std::vector<Burst> interesting_bursts() {
  std::vector<Burst> bursts = test::random_bursts(kCfg, 300, 12345);
  // Corner patterns that stress carries, ties and the backtrack chain.
  const std::array<std::array<Word, 8>, 6> corners = {{
      {0, 0, 0, 0, 0, 0, 0, 0},
      {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
      {0x00, 0xFF, 0x00, 0xFF, 0x00, 0xFF, 0x00, 0xFF},
      {0x0F, 0xF0, 0x0F, 0xF0, 0x0F, 0xF0, 0x0F, 0xF0},
      {0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA},
      {0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80},
  }};
  for (const auto& words : corners) bursts.emplace_back(kCfg, words);
  bursts.push_back(sim::paper_example_burst());
  return bursts;
}

TEST(HwEquivalence, DcNetlistMatchesBehaviouralDc) {
  HwEncoder hw(build_dbi_dc());
  const auto ref = make_dc_encoder();
  for (const Burst& b : interesting_bursts())
    EXPECT_EQ(hw.encode(b, kBoundary).inversion_mask(),
              ref->encode(b, kBoundary).inversion_mask());
}

TEST(HwEquivalence, AcNetlistMatchesBehaviouralAc) {
  HwEncoder hw(build_dbi_ac());
  const auto ref = make_ac_encoder();
  for (const Burst& b : interesting_bursts())
    EXPECT_EQ(hw.encode(b, kBoundary).inversion_mask(),
              ref->encode(b, kBoundary).inversion_mask());
}

TEST(HwEquivalence, OptFixedNetlistMatchesTrellis) {
  HwEncoder hw(build_dbi_opt_fixed());
  const auto ref = make_opt_fixed_encoder();
  for (const Burst& b : interesting_bursts())
    EXPECT_EQ(hw.encode(b, kBoundary).inversion_mask(),
              ref->encode(b, kBoundary).inversion_mask());
}

class Opt3BitCoefficients
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Opt3BitCoefficients, NetlistMatchesIntTrellis) {
  const auto [alpha, beta] = GetParam();
  HwEncoder hw(build_dbi_opt_3bit(), alpha, beta);
  const auto ref = make_opt_int_encoder(IntCostWeights{alpha, beta});
  for (const Burst& b : test::random_bursts(kCfg, 150, 999))
    EXPECT_EQ(hw.encode(b, kBoundary).inversion_mask(),
              ref->encode(b, kBoundary).inversion_mask())
        << "alpha=" << alpha << " beta=" << beta;
}

INSTANTIATE_TEST_SUITE_P(
    CoefficientGrid, Opt3BitCoefficients,
    ::testing::Values(std::pair{1, 1}, std::pair{0, 1}, std::pair{1, 0},
                      std::pair{3, 2}, std::pair{7, 7}, std::pair{7, 1},
                      std::pair{1, 7}, std::pair{5, 3}));

TEST(HwEquivalence, OptFixedProducesOptimalCosts) {
  // Beyond matching the reference implementation, the netlist output
  // must be cost-optimal (alpha = beta = 1) — checked independently via
  // exhaustive search.
  HwEncoder hw(build_dbi_opt_fixed());
  const auto brute = make_exhaustive_encoder(CostWeights{1, 1});
  for (const Burst& b : test::random_bursts(kCfg, 50, 31415)) {
    const double hw_cost =
        encoded_cost(hw.encode(b, kBoundary), kBoundary, CostWeights{1, 1});
    const double best =
        encoded_cost(brute->encode(b, kBoundary), kBoundary,
                     CostWeights{1, 1});
    EXPECT_DOUBLE_EQ(hw_cost, best);
  }
}

TEST(HwEquivalence, DecodabilityThroughTheNetlist) {
  HwEncoder hw(build_dbi_opt_fixed());
  for (const Burst& b : test::random_bursts(kCfg, 50, 777))
    EXPECT_EQ(hw.encode(b, kBoundary).decode(), b);
}

TEST(HwEncoder, RejectsWrongBoundaryOrGeometry) {
  HwEncoder hw(build_dbi_dc());
  const Burst b = test::random_burst(kCfg, 1);
  EXPECT_THROW((void)hw.encode(b, BusState::all_zeros()),
               std::invalid_argument);
  const Burst shorter(BusConfig{8, 4});
  EXPECT_THROW((void)hw.encode(shorter, BusState::all_ones(BusConfig{8, 4})),
               std::invalid_argument);
}

TEST(HwEncoder, RejectsIllegalCoefficients) {
  EXPECT_THROW(HwEncoder(build_dbi_dc(), 2, 1), std::invalid_argument);
  EXPECT_THROW(HwEncoder(build_dbi_opt_3bit(), 8, 1), std::invalid_argument);
  EXPECT_THROW(HwEncoder(build_dbi_opt_3bit(), 1, -1), std::invalid_argument);
  EXPECT_NO_THROW(HwEncoder(build_dbi_opt_3bit(), 7, 7));
}

TEST(HwEncoder, AccumulatesActivityAcrossEncodes) {
  HwEncoder hw(build_dbi_dc());
  for (const Burst& b : test::random_bursts(kCfg, 10, 5))
    (void)hw.encode(b, kBoundary);
  EXPECT_EQ(hw.simulator().cycles(), 10);
  EXPECT_GT(hw.simulator().mean_toggles_per_cycle(), 0.0);
}

TEST(HwDesigns, SmallerBurstVariantsWork) {
  // The builders are parameterised; a BL4 OPT encoder must also match.
  const BusConfig cfg{8, 4};
  const BusState boundary = BusState::all_ones(cfg);
  HwEncoder hw(build_dbi_opt_fixed(4));
  const auto ref = make_opt_fixed_encoder();
  for (const Burst& b : test::random_bursts(cfg, 100, 2024))
    EXPECT_EQ(hw.encode(b, boundary).inversion_mask(),
              ref->encode(b, boundary).inversion_mask());
}

TEST(HwDesigns, BuildersRejectSillySizes) {
  EXPECT_THROW(build_dbi_dc(0), std::invalid_argument);
  EXPECT_THROW(build_dbi_ac(17), std::invalid_argument);
  EXPECT_THROW(build_dbi_opt_fixed(-1), std::invalid_argument);
}

}  // namespace
}  // namespace dbi::hw
