// Table I reproduction checks. Absolute calibration to Synopsys
// numbers is out of scope (see DESIGN.md); what must hold is the
// paper's qualitative story: DC is tiny, AC is small, OPT (Fixed) is an
// order of magnitude bigger, the 3-bit configurable design is bigger
// and slower still, and DC/AC/OPT(Fixed) sustain GDDR5X-class rates.
#include "hw/synthesis.hpp"

#include <gtest/gtest.h>

#include "workload/generators.hpp"

namespace dbi::hw {
namespace {

const workload::BurstTrace& activity_trace() {
  static const workload::BurstTrace trace = [] {
    auto src = workload::make_uniform_source(BusConfig{8, 8}, 2718);
    return workload::BurstTrace::collect(*src, 500);
  }();
  return trace;
}

const std::vector<Table1Row>& rows() {
  static const std::vector<Table1Row> r = [] {
    Table1Options opt;
    opt.max_activity_bursts = 500;
    return table1_synthesis(activity_trace(), opt);
  }();
  return r;
}

TEST(Table1, ReportsAllFourDesigns) {
  ASSERT_EQ(rows().size(), 4u);
  EXPECT_EQ(rows()[0].scheme, "DBI DC");
  EXPECT_EQ(rows()[1].scheme, "DBI AC");
  EXPECT_EQ(rows()[2].scheme, "DBI OPT (Fixed Coeff.)");
  EXPECT_EQ(rows()[3].scheme, "DBI OPT (3-Bit Coeff.)");
}

TEST(Table1, AreaOrderingMatchesPaper) {
  EXPECT_LT(rows()[0].area_um2, rows()[1].area_um2);
  EXPECT_LT(rows()[1].area_um2, rows()[2].area_um2);
  EXPECT_LT(rows()[2].area_um2, rows()[3].area_um2);
  // Paper ratios: OPT(Fixed)/DC ~ 13.8x, 3-bit/fixed ~ 4.4x. Require
  // the same magnitude class, not the exact Synopsys value.
  EXPECT_GT(rows()[2].area_um2 / rows()[0].area_um2, 5.0);
  EXPECT_GT(rows()[3].area_um2 / rows()[2].area_um2, 1.3);
}

TEST(Table1, AreasAreInThePapersOrderOfMagnitude) {
  EXPECT_GT(rows()[0].area_um2, 100.0);
  EXPECT_LT(rows()[0].area_um2, 1500.0);
  EXPECT_GT(rows()[2].area_um2, 1500.0);
  EXPECT_LT(rows()[2].area_um2, 30000.0);
}

TEST(Table1, PowerOrderingMatchesPaper) {
  EXPECT_LT(rows()[0].total_uw, rows()[1].total_uw);
  EXPECT_LT(rows()[1].total_uw, rows()[2].total_uw);
  EXPECT_LT(rows()[2].energy_per_burst_pj, rows()[3].energy_per_burst_pj);
  for (const Table1Row& r : rows()) {
    EXPECT_GT(r.static_uw, 0.0);
    EXPECT_GT(r.dynamic_uw, 0.0);
    EXPECT_NEAR(r.total_uw, r.static_uw + r.dynamic_uw, 1e-6);
  }
}

TEST(Table1, SimpleSchemesSustainGddr5xRates) {
  // Paper: DC / AC / OPT(Fixed) close 1.5 GHz (12 Gbps); the 3-bit
  // design cannot and needs parallel instances.
  EXPECT_GT(rows()[0].fmax_ghz, 1.5);
  EXPECT_GT(rows()[1].fmax_ghz, 1.5);
  EXPECT_GT(rows()[2].fmax_ghz, 1.4);
  EXPECT_LT(rows()[3].fmax_ghz, rows()[2].fmax_ghz);
  // Operating rates are capped at the 1.5 GHz channel requirement.
  EXPECT_NEAR(rows()[0].burst_rate_ghz, 1.5, 1e-9);
  EXPECT_NEAR(rows()[1].burst_rate_ghz, 1.5, 1e-9);
  EXPECT_LE(rows()[3].burst_rate_ghz, rows()[3].fmax_ghz + 1e-9);
  // The slow configurable design needs more than one instance.
  EXPECT_EQ(rows()[0].units_for_target, 1);
  EXPECT_GE(rows()[3].units_for_target, 2);
}

TEST(Table1, ConfigurableDesignPaysForMultipliers) {
  // Longer combinational path and more cells than the fixed design.
  EXPECT_GT(rows()[3].critical_path_ns, rows()[2].critical_path_ns);
  EXPECT_GT(rows()[3].cells, rows()[2].cells);
}

TEST(Table1, EnergyPerBurstIsConsistent) {
  for (const Table1Row& r : rows()) {
    const double expected =
        (r.dynamic_uw + r.static_uw) / (r.burst_rate_ghz * 1e3);
    EXPECT_NEAR(r.energy_per_burst_pj, expected, 1e-6) << r.scheme;
  }
}

TEST(Table1, ToEncoderHardwareRoundTrips) {
  const power::EncoderHardware hw = to_encoder_hardware(rows()[2]);
  EXPECT_NEAR(hw.area_um2, rows()[2].area_um2, 1e-9);
  EXPECT_NEAR(hw.max_burst_rate_hz, rows()[2].fmax_ghz * 1e9, 1.0);
  // Energy per burst at the table's operating rate must reproduce the
  // table value (one unit suffices there by construction).
  EXPECT_NEAR(hw.energy_per_burst(rows()[2].burst_rate_ghz * 1e9) * 1e12,
              rows()[2].energy_per_burst_pj, 1e-6);
}

TEST(Table1, RejectsBadInputs) {
  const workload::BurstTrace empty(BusConfig{8, 8});
  EXPECT_THROW(table1_synthesis(empty, Table1Options{}),
               std::invalid_argument);
  auto src = workload::make_uniform_source(BusConfig{8, 4}, 1);
  const auto short_trace = workload::BurstTrace::collect(*src, 10);
  EXPECT_THROW(table1_synthesis(short_trace, Table1Options{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dbi::hw
