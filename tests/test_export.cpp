#include "netlist/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "hw/hw_design.hpp"
#include "netlist/blocks.hpp"

namespace dbi::netlist {
namespace {

TEST(Export, SanitizeIdentifier) {
  EXPECT_EQ(sanitize_identifier("byte0[3]"), "byte0_3_");
  EXPECT_EQ(sanitize_identifier("plain"), "plain");
  EXPECT_EQ(sanitize_identifier("3bad"), "_3bad");
  EXPECT_EQ(sanitize_identifier(""), "_");
}

TEST(Export, VerilogCombinationalStructure) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.mark_output(nl.xor2(a, b), "y");
  std::ostringstream os;
  write_verilog(os, nl, "xor_gate");
  const std::string v = os.str();
  EXPECT_NE(v.find("module xor_gate ("), std::string::npos);
  EXPECT_NE(v.find("input  wire a,"), std::string::npos);
  EXPECT_NE(v.find("output wire y"), std::string::npos);
  EXPECT_NE(v.find("= (a ^ b);"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Purely combinational: no clock port, no always block.
  EXPECT_EQ(v.find("clk"), std::string::npos);
  EXPECT_EQ(v.find("always"), std::string::npos);
}

TEST(Export, VerilogEmitsAllGateFlavours) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId s = nl.add_input("s");
  nl.mark_output(nl.nand2(a, b), "o_nand");
  nl.mark_output(nl.nor2(a, b), "o_nor");
  nl.mark_output(nl.xnor2(a, b), "o_xnor");
  nl.mark_output(nl.mux2(a, b, s), "o_mux");
  nl.mark_output(nl.inv(a), "o_inv");
  nl.mark_output(nl.add_const(true), "o_one");
  std::ostringstream os;
  write_verilog(os, nl, "zoo");
  const std::string v = os.str();
  EXPECT_NE(v.find("~(a & b)"), std::string::npos);
  EXPECT_NE(v.find("~(a | b)"), std::string::npos);
  EXPECT_NE(v.find("~(a ^ b)"), std::string::npos);
  EXPECT_NE(v.find("s ? b : a"), std::string::npos);
  EXPECT_NE(v.find("= ~a;"), std::string::npos);
  EXPECT_NE(v.find("1'b1"), std::string::npos);
}

TEST(Export, VerilogSequentialGetsClockAndAlways) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId q = nl.add_dff(d);
  nl.mark_output(q, "q");
  std::ostringstream os;
  write_verilog(os, nl, "flop");
  const std::string v = os.str();
  EXPECT_NE(v.find("input  wire clk,"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("<= d;"), std::string::npos);
  EXPECT_NE(v.find("reg "), std::string::npos);
}

TEST(Export, VerilogOfRealDesignsIsWellFormed) {
  for (const hw::HwDesign& design :
       {hw::build_dbi_dc(), hw::build_dbi_ac(), hw::build_dbi_opt_fixed(),
        hw::build_dbi_decoder()}) {
    std::ostringstream os;
    write_verilog(os, design.net, design.name);
    const std::string v = os.str();
    EXPECT_NE(v.find("module "), std::string::npos) << design.name;
    EXPECT_NE(v.find("endmodule"), std::string::npos);
    // Every output port must be assigned exactly once.
    for (const Port& out : design.net.outputs())
      EXPECT_NE(v.find("assign " + sanitize_identifier(out.name) + " = "),
                std::string::npos)
          << design.name << " missing " << out.name;
  }
}

TEST(Export, DotContainsNodesAndEdges) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId g = nl.inv(a);
  nl.mark_output(g, "y");
  std::ostringstream os;
  write_dot(os, nl, "tiny");
  const std::string d = os.str();
  EXPECT_NE(d.find("digraph tiny {"), std::string::npos);
  EXPECT_NE(d.find("INV"), std::string::npos);
  EXPECT_NE(d.find("n0 -> n1;"), std::string::npos);
  EXPECT_NE(d.find("out_y"), std::string::npos);
}

TEST(Export, DotRefusesHugeNetlists) {
  const hw::HwDesign big = hw::build_dbi_opt_3bit();
  std::ostringstream os;
  EXPECT_THROW(write_dot(os, big.net, "big", 100), std::invalid_argument);
}

}  // namespace
}  // namespace dbi::netlist
