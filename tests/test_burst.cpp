#include "core/burst.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string_view>

namespace dbi {
namespace {

constexpr BusConfig kCfg{8, 8};

TEST(Burst, DefaultConstructedIsAllZero) {
  const Burst b(kCfg);
  EXPECT_EQ(b.length(), 8);
  for (int i = 0; i < b.length(); ++i) EXPECT_EQ(b.word(i), 0u);
  EXPECT_EQ(b.payload_zeros(), 64);
}

TEST(Burst, ConstructFromWords) {
  const std::array<Word, 8> words = {1, 2, 3, 4, 5, 6, 7, 8};
  const Burst b(kCfg, words);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(b.word(i), words[static_cast<std::size_t>(i)]);
}

TEST(Burst, RejectsWrongWordCount) {
  const std::array<Word, 3> words = {1, 2, 3};
  EXPECT_THROW(Burst(kCfg, words), std::invalid_argument);
}

TEST(Burst, RejectsOutOfRangeWord) {
  std::array<Word, 8> words{};
  words[5] = 0x100;  // does not fit 8 lanes
  EXPECT_THROW(Burst(kCfg, words), std::invalid_argument);
}

TEST(Burst, RejectsInvalidConfig) {
  EXPECT_THROW(Burst(BusConfig{0, 8}), std::invalid_argument);
}

TEST(Burst, SetWordValidates) {
  Burst b(kCfg);
  b.set_word(2, 0xAB);
  EXPECT_EQ(b.word(2), 0xABu);
  EXPECT_THROW(b.set_word(2, 0x1FF), std::invalid_argument);
  EXPECT_THROW(b.set_word(8, 0x01), std::out_of_range);
  EXPECT_THROW((void)b.word(-1), std::out_of_range);
}

TEST(Burst, FromBytes) {
  const std::array<std::uint8_t, 8> bytes = {0x00, 0xFF, 0x55, 0xAA,
                                             0x0F, 0xF0, 0x01, 0x80};
  const Burst b = Burst::from_bytes(kCfg, bytes);
  EXPECT_EQ(b.word(0), 0x00u);
  EXPECT_EQ(b.word(1), 0xFFu);
  EXPECT_EQ(b.word(7), 0x80u);
}

TEST(Burst, FromBytesRequiresByteWidth) {
  const std::array<std::uint8_t, 8> bytes{};
  EXPECT_THROW(Burst::from_bytes(BusConfig{16, 8}, bytes),
               std::invalid_argument);
}

TEST(Burst, FromBitStringsMsbFirst) {
  const std::array<std::string_view, 2> beats = {"10000001", "00000010"};
  const Burst b = Burst::from_bit_strings(BusConfig{8, 2}, beats);
  EXPECT_EQ(b.word(0), 0x81u);
  EXPECT_EQ(b.word(1), 0x02u);
}

TEST(Burst, FromBitStringsRejectsBadInput) {
  const std::array<std::string_view, 2> wrong_len = {"1010", "00000010"};
  EXPECT_THROW(Burst::from_bit_strings(BusConfig{8, 2}, wrong_len),
               std::invalid_argument);
  const std::array<std::string_view, 2> bad_char = {"1000000x", "00000010"};
  EXPECT_THROW(Burst::from_bit_strings(BusConfig{8, 2}, bad_char),
               std::invalid_argument);
}

TEST(Burst, PayloadZeros) {
  const std::array<Word, 4> words = {0xFF, 0x00, 0xF0, 0b10101010};
  const Burst b(BusConfig{8, 4}, words);
  EXPECT_EQ(b.payload_zeros(), 0 + 8 + 4 + 4);
}

TEST(Burst, EqualityComparesContentAndGeometry) {
  const std::array<Word, 8> words = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(Burst(kCfg, words), Burst(kCfg, words));
  Burst changed(kCfg, words);
  changed.set_word(0, 9);
  EXPECT_NE(Burst(kCfg, words), changed);
}

}  // namespace
}  // namespace dbi
