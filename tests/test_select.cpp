// Adaptive per-chunk scheme selection ("mixed-block" coding) suite:
// the SchemePolicy API and its SessionSpec::scheme shim, exact-mode
// per-block optimality (bit-exact against fixed-scheme Sessions forced
// on each block), the strict mixed-corpus win over every single fixed
// scheme, trace format v3 round-trip / decode / verify with v2
// byte-identity preserved, malformed-tag rejection, and predicted-mode
// determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "api/verify.hpp"
#include "trace/format.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace dbi;

// ------------------------------------------------------------ helpers

/// Packs `bursts` bursts of a named corpus scenario at narrow x8 BL8
/// into the beat-major packed layout (one byte per beat).
std::vector<std::uint8_t> corpus_packed(std::string_view scenario,
                                        int bursts, std::uint64_t seed) {
  const BusConfig cfg{8, 8};
  const auto source = workload::make_corpus_source(scenario, cfg, seed);
  std::vector<std::uint8_t> bytes;
  bytes.reserve(static_cast<std::size_t>(bursts) * 8);
  for (int i = 0; i < bursts; ++i) {
    const Burst b = source->next();
    for (int t = 0; t < b.length(); ++t)
      bytes.push_back(static_cast<std::uint8_t>(b.word(t)));
  }
  return bytes;
}

/// The kEnergy block cost over a whole run, in StreamStats terms.
double energy(const StreamStats& s, const CostWeights& w = {}) {
  return w.alpha * static_cast<double>(s.transitions) +
         w.beta * static_cast<double>(s.zeros);
}

/// Runs a fixed-scheme session over `payload` and returns its totals.
StreamStats run_fixed(Scheme scheme, std::span<const std::uint8_t> payload,
                      StatePolicy state = StatePolicy::kResetPerBurst,
                      std::vector<engine::BurstResult>* results = nullptr) {
  SessionSpec spec;
  spec.policy = SchemePolicy::fixed(scheme);
  spec.state_policy = state;
  Session session(spec);
  const auto source = make_packed_source(payload);
  if (!results) return session.run(*source);
  const auto sink = make_result_sink(*results);
  return session.run(*source, *sink);
}

/// One adaptive block as delivered to the sink.
struct CapturedBlock {
  std::int64_t first_burst = 0;
  std::int64_t bursts = 0;
  std::optional<Scheme> scheme;
  std::vector<std::uint8_t> payload;
  std::vector<engine::BurstResult> results;
};

class CaptureSink final : public Sink {
 public:
  [[nodiscard]] bool wants_results() const override { return true; }
  [[nodiscard]] bool wants_payload() const override { return true; }
  void consume(const SinkChunk& chunk) override {
    CapturedBlock b;
    b.first_burst = chunk.first_burst;
    b.bursts = chunk.bursts;
    b.scheme = chunk.scheme;
    b.payload.assign(chunk.payload.begin(), chunk.payload.end());
    b.results.assign(chunk.results.begin(), chunk.results.end());
    blocks.push_back(std::move(b));
  }
  std::vector<CapturedBlock> blocks;
};

SessionSpec adaptive_spec(SchemePolicy policy,
                          StatePolicy state = StatePolicy::kResetPerBurst) {
  SessionSpec spec;
  spec.policy = std::move(policy);
  spec.state_policy = state;
  return spec;
}

/// Records `payload` through an adaptive session into an encoded mixed
/// (v3) trace image.
std::vector<std::uint8_t> record_mixed_trace(
    const SessionSpec& spec, std::span<const std::uint8_t> payload) {
  std::ostringstream os;
  trace::TraceWriterOptions opt;
  opt.encoded = true;
  opt.per_chunk_schemes = true;
  opt.enc_lanes = 1;
  opt.enc_policy = spec.state_policy == StatePolicy::kResetPerBurst ? 1 : 0;
  trace::TraceWriter writer(os, BusConfig{8, 8}, opt);
  Session session(spec);
  const auto source = make_packed_source(payload);
  const auto sink = make_encoded_trace_sink(writer);
  session.run(*source, *sink);
  writer.finish();
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

// ------------------------------------------------- SchemePolicy API

TEST(SchemePolicy, DefaultFollowsSchemeSlot) {
  const SchemePolicy p;
  EXPECT_EQ(p.mode(), SchemePolicy::Mode::kFollowScheme);
  EXPECT_FALSE(p.adaptive());
  EXPECT_EQ(p.describe(), "follow-scheme");

  SessionSpec spec;
  spec.scheme = Scheme::kAc;
  const SchemePolicy resolved = spec.resolved_policy();
  EXPECT_EQ(resolved.mode(), SchemePolicy::Mode::kFixed);
  EXPECT_EQ(resolved.fixed_scheme(), Scheme::kAc);
}

TEST(SchemePolicy, BareSchemeConvertsToFixed) {
  SessionSpec spec;
  spec.policy = Scheme::kDc;  // implicit shim
  EXPECT_EQ(spec.policy.mode(), SchemePolicy::Mode::kFixed);
  EXPECT_EQ(spec.policy.fixed_scheme(), Scheme::kDc);
  EXPECT_EQ(spec.policy.describe(), "fixed(dc)");
}

TEST(SchemePolicy, DescribeUsesShortSlugs) {
  EXPECT_EQ(scheme_slug(Scheme::kAcDc), "acdc");
  EXPECT_EQ(scheme_slug(Scheme::kOptFixed), "opt-fixed");
  const auto p = SchemePolicy::adaptive_exact(
      {Scheme::kDc, Scheme::kAc, Scheme::kAcDc, Scheme::kOpt});
  EXPECT_EQ(p.describe(), "adaptive-exact(dc,ac,acdc,opt; cost=transitions)");
  const auto q = SchemePolicy::adaptive_predicted({Scheme::kDc, Scheme::kAc},
                                                  CostModel::kEnergy);
  EXPECT_EQ(q.describe(), "adaptive-predicted(dc,ac; cost=energy)");
}

TEST(SchemePolicy, ValidateRejectsBadConfigs) {
  EXPECT_THROW(SchemePolicy::adaptive_exact({Scheme::kDc}).validate(),
               std::invalid_argument);
  EXPECT_THROW(
      SchemePolicy::adaptive_exact({Scheme::kDc, Scheme::kDc}).validate(),
      std::invalid_argument);
  EXPECT_THROW(SchemePolicy::adaptive_exact().set_block_bursts(0).validate(),
               std::invalid_argument);
  EXPECT_THROW(SchemePolicy::adaptive_predicted({Scheme::kDc, Scheme::kAc},
                                                CostModel::kTransitions, 0)
                   .validate(),
               std::invalid_argument);
  EXPECT_NO_THROW(SchemePolicy::adaptive_exact().validate());
}

TEST(SchemePolicy, FixedPolicySyncsDeprecatedSchemeSlot) {
  SessionSpec spec;
  spec.policy = SchemePolicy::fixed(Scheme::kAc);
  Session session(spec);
  EXPECT_EQ(session.spec().scheme, Scheme::kAc);
  EXPECT_EQ(session.scheme_name(), "DBI AC");
}

TEST(SchemePolicy, AdaptiveSessionGuards) {
  SessionSpec spec = adaptive_spec(SchemePolicy::adaptive_exact());
  spec.direction = Direction::kDecode;
  EXPECT_THROW(Session{spec}, std::invalid_argument);

  Session session(adaptive_spec(SchemePolicy::adaptive_exact()));
  EXPECT_EQ(session.scheme_name(), "adaptive-exact");
  const std::vector<std::uint8_t> data(64, 0);
  EXPECT_THROW(session.write(data), std::logic_error);
}

// ------------------------------------------------- exact-mode optimality

TEST(AdaptiveExact, PicksPerBlockMinimumBitExactly) {
  const std::vector<std::uint8_t> payload = corpus_packed("mixed", 512, 11);
  auto policy = SchemePolicy::adaptive_exact(
      {Scheme::kDc, Scheme::kAc, Scheme::kAcDc}, CostModel::kEnergy);
  policy.set_block_bursts(64);
  Session session(adaptive_spec(policy));
  const auto source = make_packed_source(payload);
  CaptureSink capture;
  const StreamStats totals = session.run(*source, capture);
  ASSERT_EQ(capture.blocks.size(), 8u);

  StreamStats summed;
  for (const CapturedBlock& block : capture.blocks) {
    ASSERT_TRUE(block.scheme.has_value());
    ASSERT_EQ(block.results.size(),
              static_cast<std::size_t>(block.bursts));
    double best = std::numeric_limits<double>::infinity();
    double chosen = std::numeric_limits<double>::infinity();
    for (const Scheme s : policy.candidates()) {
      // With kResetPerBurst every block is history-free, so forcing
      // the scheme on the block alone reproduces the selector's trial.
      std::vector<engine::BurstResult> forced;
      const StreamStats st = run_fixed(s, block.payload,
                                       StatePolicy::kResetPerBurst, &forced);
      const double cost = energy(st);
      best = std::min(best, cost);
      if (s == *block.scheme) {
        chosen = cost;
        EXPECT_EQ(block.results, forced)
            << "winner masks differ at burst " << block.first_burst;
        summed += st;
      }
    }
    EXPECT_EQ(chosen, best) << "block at burst " << block.first_burst
                            << " did not pick the cheapest scheme";
  }
  EXPECT_EQ(totals.bursts, summed.bursts);
  EXPECT_EQ(totals.zeros, summed.zeros);
  EXPECT_EQ(totals.transitions, summed.transitions);
}

// The paper-level claim this PR reproduces: on a block-heterogeneous
// stream, mixed-block coding strictly beats EVERY single fixed scheme.
TEST(AdaptiveExact, StrictlyBeatsBestFixedSchemeOnMixedCorpus) {
  const std::vector<Scheme> candidates{Scheme::kDc, Scheme::kAc};
  const std::vector<std::uint8_t> payload = corpus_packed("mixed", 1536, 3);
  Session session(adaptive_spec(
      SchemePolicy::adaptive_exact(candidates, CostModel::kEnergy)));
  const auto source = make_packed_source(payload);
  const StreamStats totals = session.run(*source);
  const double adaptive_cost = energy(totals);

  double best_fixed = std::numeric_limits<double>::infinity();
  for (const Scheme s : candidates)
    best_fixed = std::min(best_fixed, energy(run_fixed(s, payload)));
  EXPECT_LT(adaptive_cost, best_fixed)
      << "mixed-block coding must strictly beat the best fixed scheme";

  const select::SelectionReport& report = session.selection_report();
  EXPECT_EQ(report.mode, SchemePolicy::Mode::kAdaptiveExact);
  EXPECT_EQ(report.bursts, 1536);
  EXPECT_DOUBLE_EQ(report.selected_cost, adaptive_cost);
  // In exact mode each candidate's trial_cost is its forced-everywhere
  // cost, so best_trial_cost reproduces the best fixed baseline.
  EXPECT_DOUBLE_EQ(report.best_trial_cost, best_fixed);
  EXPECT_GT(report.cost_ratio_vs_best_fixed(), 1.0);
  ASSERT_EQ(report.candidates.size(), candidates.size());
  std::int64_t chosen_blocks = 0;
  for (const auto& c : report.candidates) {
    EXPECT_EQ(c.trial_blocks, report.blocks);
    EXPECT_GT(c.blocks_chosen, 0) << "both schemes must win some phase";
    chosen_blocks += c.blocks_chosen;
  }
  EXPECT_EQ(chosen_blocks, report.blocks);
}

// ------------------------------------------------- trace format v3

TEST(TraceV3, MixedTraceRoundTripsDecodesAndVerifies) {
  const std::vector<std::uint8_t> payload = corpus_packed("mixed", 1024, 7);
  auto policy = SchemePolicy::adaptive_exact({Scheme::kDc, Scheme::kAc},
                                             CostModel::kEnergy);
  policy.set_block_bursts(256);
  const std::vector<std::uint8_t> image =
      record_mixed_trace(adaptive_spec(policy), payload);

  ASSERT_GT(image.size(), 32u);
  EXPECT_EQ(image[4], trace::kFormatVersionMixed);  // header version byte

  const auto reader = trace::TraceReader::from_bytes(image);
  EXPECT_EQ(reader.header().version, trace::kFormatVersionMixed);
  EXPECT_TRUE(reader.header().mixed());
  EXPECT_EQ(reader.header().enc_scheme, trace::kEncSchemeMixed);
  EXPECT_EQ(reader.bursts(), 1024);

  std::vector<bool> seen(8, false);
  int distinct = 0;
  for (std::size_t c = 0; c < reader.chunk_count(); ++c) {
    const trace::ChunkInfo& info = reader.chunk(c);
    ASSERT_TRUE(info.has_scheme_tag());
    const auto tagged = scheme_from_tag(info.scheme_tag);
    ASSERT_TRUE(tagged.has_value());
    if (!seen[info.scheme_tag]) {
      seen[info.scheme_tag] = true;
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 2) << "the mixed corpus must produce >= 2 tags";

  // Decode the transmitted stream back to the original payload.
  SessionSpec decode_spec;
  decode_spec.direction = Direction::kDecode;
  Session decoder(decode_spec);
  const auto source = make_trace_source(reader);
  std::vector<std::uint8_t> recovered;
  const auto sink = make_payload_sink(recovered);
  decoder.run(*source, *sink);
  EXPECT_EQ(recovered, payload);

  // Self-describing verify: clean, and no single-scheme override.
  const VerifyReport verdict = verify_encoded_trace(reader);
  EXPECT_TRUE(verdict.ok());
  EXPECT_EQ(verdict.bursts, 1024);
  VerifyOptions override_scheme;
  override_scheme.scheme = Scheme::kAc;
  EXPECT_THROW(verify_encoded_trace(reader, override_scheme),
               std::invalid_argument);
}

TEST(TraceV3, ThreadedMixedTraceVerifiesAcrossChunkBoundaries) {
  // Persistent line state threads the bus history across blocks of
  // different schemes; verify must reproduce that exact history.
  const std::vector<std::uint8_t> payload = corpus_packed("mixed", 768, 21);
  auto policy = SchemePolicy::adaptive_exact(
      {Scheme::kDc, Scheme::kAc, Scheme::kAcDc}, CostModel::kEnergy);
  policy.set_block_bursts(128);
  const std::vector<std::uint8_t> image = record_mixed_trace(
      adaptive_spec(policy, StatePolicy::kThread), payload);
  const auto reader = trace::TraceReader::from_bytes(image);
  EXPECT_TRUE(reader.header().mixed());
  EXPECT_TRUE(verify_encoded_trace(reader).ok());
}

TEST(TraceV3, FixedPolicyTraceStaysByteIdenticalV2) {
  const std::vector<std::uint8_t> payload =
      corpus_packed("cacheline-memcpy", 512, 5);
  const auto record = [&](const SessionSpec& spec) {
    std::ostringstream os;
    trace::TraceWriterOptions opt;
    opt.encoded = true;
    opt.enc_scheme = scheme_to_tag(Scheme::kAc);
    opt.enc_lanes = 1;
    opt.enc_policy = 1;
    trace::TraceWriter writer(os, BusConfig{8, 8}, opt);
    Session session(spec);
    const auto source = make_packed_source(payload);
    const auto sink = make_encoded_trace_sink(writer);
    session.run(*source, *sink);
    writer.finish();
    return os.str();
  };

  SessionSpec legacy;  // pre-policy spelling
  legacy.scheme = Scheme::kAc;
  legacy.state_policy = StatePolicy::kResetPerBurst;
  SessionSpec via_policy;
  via_policy.policy = SchemePolicy::fixed(Scheme::kAc);
  via_policy.state_policy = StatePolicy::kResetPerBurst;

  const std::string a = record(legacy);
  const std::string b = record(via_policy);
  EXPECT_EQ(a, b) << "the policy shim must not change a single byte";
  ASSERT_GT(a.size(), 4u);
  EXPECT_EQ(static_cast<std::uint8_t>(a[4]), trace::kFormatVersion);
}

TEST(TraceV3, RejectsMalformedSchemeTags) {
  const std::vector<std::uint8_t> payload = corpus_packed("mixed", 512, 9);
  auto policy = SchemePolicy::adaptive_exact({Scheme::kDc, Scheme::kAc},
                                             CostModel::kEnergy);
  policy.set_block_bursts(128);
  const std::vector<std::uint8_t> image =
      record_mixed_trace(adaptive_spec(policy), payload);

  // First chunk header at file offset 32: "CHNK" + burst_count u32 +
  // flags u32 (little-endian; scheme tag lives in flag bits 8..15).
  constexpr std::size_t kFlagsByte = 32 + 8;
  constexpr std::size_t kTagByte = 32 + 9;
  ASSERT_TRUE(image[kFlagsByte] & trace::kChunkFlagSchemeTag);
  ASSERT_GE(image[kTagByte], 1);

  auto tampered = [&](auto&& mutate) {
    std::vector<std::uint8_t> copy = image;
    mutate(copy);
    // verify_crc off so the tag validation itself is what rejects.
    return trace::TraceReader::from_bytes(std::move(copy),
                                          /*verify_crc=*/false);
  };
  // Tag value 0 (flag present, tag missing).
  EXPECT_THROW(tampered([&](auto& c) { c[kTagByte] = 0; }),
               trace::TraceError);
  // Tag out of the 1..7 scheme range.
  EXPECT_THROW(tampered([&](auto& c) { c[kTagByte] = 8; }),
               trace::TraceError);
  // Tag bits without the scheme-tag flag.
  EXPECT_THROW(
      tampered([&](auto& c) {
        c[kFlagsByte] =
            static_cast<std::uint8_t>(c[kFlagsByte] &
                                      ~trace::kChunkFlagSchemeTag);
      }),
      trace::TraceError);
  // And the CRC catches any of these when left on.
  {
    std::vector<std::uint8_t> copy = image;
    copy[kTagByte] = 0;
    EXPECT_THROW(trace::TraceReader::from_bytes(std::move(copy)),
                 trace::TraceError);
  }
}

// ------------------------------------------------- predicted mode

TEST(AdaptivePredicted, DeterministicAcrossRuns) {
  const std::vector<std::uint8_t> payload = corpus_packed("mixed", 1280, 13);
  auto policy = SchemePolicy::adaptive_predicted(
      {Scheme::kDc, Scheme::kAc, Scheme::kAcDc}, CostModel::kEnergy,
      /*probe_interval=*/4);
  policy.set_block_bursts(64);

  const auto run_once = [&](StreamStats& totals,
                            select::SelectionReport& report) {
    Session session(adaptive_spec(policy));
    const auto source = make_packed_source(payload);
    totals = session.run(*source);
    report = session.selection_report();
  };
  StreamStats t1, t2;
  select::SelectionReport r1, r2;
  run_once(t1, r1);
  run_once(t2, r2);

  EXPECT_EQ(t1, t2);
  EXPECT_EQ(r1.mode, SchemePolicy::Mode::kAdaptivePredicted);
  EXPECT_EQ(r1.blocks, 20);
  EXPECT_EQ(r1.probes, r2.probes);
  EXPECT_EQ(r1.probe_hits, r2.probe_hits);
  EXPECT_DOUBLE_EQ(r1.selected_cost, r2.selected_cost);
  EXPECT_GT(r1.probes, 0);
  EXPECT_GE(r1.accuracy(), 0.0);
  EXPECT_LE(r1.accuracy(), 1.0);
  EXPECT_EQ(r1.to_json(), r2.to_json());
}

TEST(AdaptivePredicted, MixedTraceDecodesAndVerifies) {
  const std::vector<std::uint8_t> payload = corpus_packed("mixed", 1024, 17);
  auto policy = SchemePolicy::adaptive_predicted(
      {Scheme::kDc, Scheme::kAc}, CostModel::kEnergy, /*probe_interval=*/2);
  policy.set_block_bursts(128);
  const std::vector<std::uint8_t> image =
      record_mixed_trace(adaptive_spec(policy), payload);
  const auto reader = trace::TraceReader::from_bytes(image);
  EXPECT_TRUE(verify_encoded_trace(reader).ok());

  SessionSpec decode_spec;
  decode_spec.direction = Direction::kDecode;
  Session decoder(decode_spec);
  const auto source = make_trace_source(reader);
  std::vector<std::uint8_t> recovered;
  const auto sink = make_payload_sink(recovered);
  decoder.run(*source, *sink);
  EXPECT_EQ(recovered, payload);
}

// ------------------------------------------------- unified report

TEST(SessionReport, UnifiedReportCarriesSelectionAndMetrics) {
  const std::vector<std::uint8_t> payload = corpus_packed("mixed", 512, 29);
  SessionSpec spec = adaptive_spec(SchemePolicy::adaptive_exact(
      {Scheme::kDc, Scheme::kAc}, CostModel::kEnergy));
  spec.policy.set_block_bursts(128);
  spec.obs.level = obs::ObsLevel::kCounters;
  Session session(spec);
  const auto source = make_packed_source(payload);
  session.run(*source);

  const SessionReport report = session.report();
  EXPECT_TRUE(report.adaptive);
  EXPECT_EQ(report.scheme, "adaptive-exact");
  EXPECT_EQ(report.policy, "adaptive-exact(dc,ac; cost=energy)");
  EXPECT_EQ(report.selection.blocks, 4);
  EXPECT_EQ(report.selection.bursts, 512);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"policy\":\"adaptive-exact(dc,ac; cost=energy)\""),
            std::string::npos);
  EXPECT_NE(json.find("\"selection\":"), std::string::npos);
  EXPECT_NE(json.find("\"cost_model\":\"energy\""), std::string::npos);
  EXPECT_NE(json.find("\"scheme\":\"dc\""), std::string::npos);
  // Per-scheme chosen-block counters land in the metrics registry.
  EXPECT_NE(json.find("dbi_select_chunks_total"), std::string::npos);
  EXPECT_NE(json.find("dbi_select_bursts_total"), std::string::npos);

  // Fixed sessions keep the report shape with adaptive off.
  SessionSpec fixed;
  fixed.policy = SchemePolicy::fixed(Scheme::kAc);
  Session plain(fixed);
  const SessionReport fr = plain.report();
  EXPECT_FALSE(fr.adaptive);
  EXPECT_EQ(fr.selection.blocks, 0);
  EXPECT_EQ(fr.policy, "fixed(ac)");
}

// ------------------------------------------------- cost model: bytes

TEST(AdaptiveExact, BytesCostModelRuns) {
  const std::vector<std::uint8_t> payload = corpus_packed("mixed", 512, 41);
  auto policy = SchemePolicy::adaptive_exact(
      {Scheme::kDc, Scheme::kAc, Scheme::kOpt}, CostModel::kBytes);
  policy.set_block_bursts(128);
  Session session(adaptive_spec(policy));
  const auto source = make_packed_source(payload);
  const StreamStats totals = session.run(*source);
  EXPECT_EQ(totals.bursts, 512);
  const select::SelectionReport& report = session.selection_report();
  EXPECT_EQ(report.cost_model, CostModel::kBytes);
  EXPECT_GT(report.selected_cost, 0.0);
  EXPECT_LE(report.selected_cost, report.best_trial_cost);
}

}  // namespace
