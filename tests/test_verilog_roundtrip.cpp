// Round-trip validation of the Verilog exporter: parse the emitted
// structural Verilog back into a Netlist (the exporter's output is a
// deterministic one-assign-per-line subset) and prove the rebuilt
// circuit simulation-equivalent to the original on random vectors.
// This tests the exporter's *semantics*, not just its text.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "hw/hw_design.hpp"
#include "netlist/export.hpp"
#include "netlist/sim.hpp"
#include "workload/rng.hpp"

namespace dbi::netlist {
namespace {

// Minimal parser for the exporter's combinational subset.
class VerilogReader {
 public:
  explicit VerilogReader(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) parse_line(strip(line));
  }

  Netlist& netlist() { return nl_; }
  [[nodiscard]] NetId input(const std::string& name) const {
    return nets_.at(name);
  }
  [[nodiscard]] NetId output(const std::string& name) const {
    return nets_.at("assigned:" + name);
  }

 private:
  static std::string strip(std::string s) {
    const auto a = s.find_first_not_of(" \t");
    if (a == std::string::npos) return "";
    const auto b = s.find_last_not_of(" \t");
    return s.substr(a, b - a + 1);
  }

  void parse_line(const std::string& line) {
    if (line.rfind("input  wire ", 0) == 0) {
      std::string name = line.substr(12);
      if (!name.empty() && name.back() == ',') name.pop_back();
      nets_[name] = nl_.add_input(name);
      return;
    }
    if (line.rfind("assign ", 0) == 0) {
      const auto eq = line.find(" = ");
      ASSERT_NE(eq, std::string::npos) << line;
      const std::string lhs = line.substr(7, eq - 7);
      std::string rhs = line.substr(eq + 3);
      ASSERT_FALSE(rhs.empty());
      ASSERT_EQ(rhs.back(), ';') << line;
      rhs.pop_back();
      const NetId net = parse_expr(rhs);
      // Output-port assigns alias an existing net; internal wires
      // define a new name.
      if (lhs.rfind('n', 0) == 0 &&
          lhs.find_first_not_of("0123456789", 1) == std::string::npos)
        nets_[lhs] = net;
      else
        nets_["assigned:" + lhs] = net;
      return;
    }
    // module/ports/wire declarations/endmodule: structural noise.
  }

  NetId parse_expr(const std::string& expr) {
    if (expr == "1'b0") return nl_.add_const(false);
    if (expr == "1'b1") return nl_.add_const(true);
    if (expr.rfind("~(", 0) == 0)
      return invert_of(parse_binary(expr.substr(1)));
    if (expr.front() == '(') return parse_binary(expr);
    if (expr.front() == '~') return invert_of(ref(expr.substr(1)));
    const auto q = expr.find(" ? ");
    if (q != std::string::npos) {
      const auto c = expr.find(" : ", q);
      const NetId sel = ref(expr.substr(0, q));
      const NetId b = ref(expr.substr(q + 3, c - q - 3));
      const NetId a = ref(expr.substr(c + 3));
      return nl_.mux2(a, b, sel);
    }
    return ref(expr);  // plain alias (BUF collapsed by the reader)
  }

  NetId parse_binary(const std::string& expr) {
    // "(A op B)" with op in & | ^.
    EXPECT_EQ(expr.front(), '(');
    EXPECT_EQ(expr.back(), ')');
    const std::string inner = expr.substr(1, expr.size() - 2);
    const auto sp = inner.find(' ');
    const char op = inner[sp + 1];
    const NetId a = ref(inner.substr(0, sp));
    const NetId b = ref(inner.substr(sp + 3));
    switch (op) {
      case '&':
        return nl_.and2(a, b);
      case '|':
        return nl_.or2(a, b);
      case '^':
        return nl_.xor2(a, b);
      default:
        ADD_FAILURE() << "bad operator in: " << expr;
        return nl_.add_const(false);
    }
  }

  NetId invert_of(NetId a) { return nl_.inv(a); }
  NetId ref(const std::string& name) { return nets_.at(name); }

  Netlist nl_;
  std::map<std::string, NetId> nets_;
};

class VerilogRoundTrip
    : public ::testing::TestWithParam<hw::HwDesign (*)(int)> {};

TEST_P(VerilogRoundTrip, ReimportedNetlistIsEquivalent) {
  const hw::HwDesign design = GetParam()(8);
  std::ostringstream os;
  write_verilog(os, design.net, design.name);
  VerilogReader reader(os.str());

  Simulator original(design.net);
  Simulator rebuilt(reader.netlist());

  workload::Xoshiro256 rng(20180319);
  for (int round = 0; round < 150; ++round) {
    // Drive identical random values into both circuits by port name.
    for (const Port& in : design.net.inputs()) {
      const bool v = (rng.next() & 1) != 0;
      original.set_input(in.net, v);
      rebuilt.set_input(reader.input(sanitize_identifier(in.name)), v);
    }
    original.eval();
    rebuilt.eval();
    for (const Port& out : design.net.outputs())
      ASSERT_EQ(original.value(out.net),
                rebuilt.value(reader.output(sanitize_identifier(out.name))))
          << design.name << " output " << out.name << " round " << round;
  }
}

std::string roundtrip_name(
    const ::testing::TestParamInfo<hw::HwDesign (*)(int)>& info) {
  switch (info.index) {
    case 0:
      return "dc";
    case 1:
      return "ac";
    case 2:
      return "opt_fixed";
    default:
      return "decoder";
  }
}

INSTANTIATE_TEST_SUITE_P(Designs, VerilogRoundTrip,
                         ::testing::Values(&hw::build_dbi_dc,
                                           &hw::build_dbi_ac,
                                           &hw::build_dbi_opt_fixed,
                                           &hw::build_dbi_decoder),
                         roundtrip_name);

}  // namespace
}  // namespace dbi::netlist
