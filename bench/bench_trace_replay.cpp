// Streaming trace replay vs the in-memory engine path.
//
// Writes a >= 1M-burst binary trace to disk, then compares, per fixed
// scheme:
//   (a) Channel::write_stream over the interleaved byte stream held in
//       RAM (the engine fast path behind the dbi::Session facade,
//       sharded across the pool);
//   (b) a trace-source Session streaming the same bursts back from the
//       mmap'd file (the double-buffered zero-copy replay pipeline
//       behind the facade), with the identical lane interleave
//       (burst g -> lane g % lanes), so both paths encode the very
//       same per-lane burst sequences.
// A streaming section records a zeros-heavy corpus with RLE compression
// and replays it, reporting the on-disk ratio and throughput.
// Emits one JSON object (BENCH_*.json trajectory format).
//
//   ./bench_trace_replay [writes-per-lane] [lanes] [workers] [repeats]
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "engine/shard_pool.hpp"
#include "lake/lake.hpp"
#include "lake/lake_replay.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "workload/channel.hpp"
#include "workload/corpus.hpp"
#include "workload/rng.hpp"

namespace {

using namespace dbi;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string temp_trace_path(const char* tag) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir && *dir ? dir : "/tmp";
  path += "/bench_trace_replay_";
  path += tag;
  path += "_";
  path += std::to_string(static_cast<long>(::getpid()));
  path += ".dbt";
  return path;
}

struct SchemeReport {
  std::string scheme;
  double stream_mbps = 0;  // mega-bursts/s, in-memory write_stream
  double replay_mbps = 0;  // mega-bursts/s, mmap streaming replay
  double ratio = 0;        // replay / stream (>= 1: no regression)
};

}  // namespace

int main(int argc, char** argv) {
  const long writes = argc > 1 ? std::atol(argv[1]) : 131072;
  const int lanes = argc > 2 ? std::atoi(argv[2]) : 8;
  const int workers =
      argc > 3 ? std::atoi(argv[3]) : engine::ShardPool::default_workers();
  const int repeats = argc > 4 ? std::atoi(argv[4]) : 3;
  if (writes < 1 || lanes < 1 || lanes > 64 || workers < 1 || repeats < 1) {
    std::fprintf(stderr,
                 "usage: %s [writes-per-lane >= 1] [lanes 1..64] "
                 "[workers >= 1] [repeats >= 1]\n",
                 argv[0]);
    return 2;
  }

  const workload::ChannelConfig ccfg{lanes, BusConfig{8, 8}, false};
  const auto bpw = static_cast<std::size_t>(ccfg.bytes_per_write());
  const std::int64_t bursts = writes * lanes;

  // The interleaved channel byte stream (beat-major, like a x(8*lanes)
  // device) — the exact input Channel::write_stream consumes.
  std::vector<std::uint8_t> data(static_cast<std::size_t>(writes) * bpw);
  workload::Xoshiro256 rng(2026);
  for (std::uint8_t& b : data) b = static_cast<std::uint8_t>(rng.next());

  // Record the same bursts, in channel write order (write w emits lane
  // 0..L-1), so replay's g % lanes interleave reproduces each lane's
  // stream exactly.
  const std::string path = temp_trace_path("uniform");
  {
    trace::TraceWriterOptions wopt;
    wopt.compress = false;  // uniform bytes are incompressible
    trace::TraceWriter writer(path, ccfg.lane, wopt);
    std::vector<Word> burst(static_cast<std::size_t>(ccfg.lane.burst_length));
    for (long w = 0; w < writes; ++w) {
      for (int l = 0; l < lanes; ++l) {
        for (int t = 0; t < ccfg.lane.burst_length; ++t)
          burst[static_cast<std::size_t>(t)] =
              data[static_cast<std::size_t>(w) * bpw +
                   static_cast<std::size_t>(t * lanes + l)];
        writer.write_words(burst);
      }
    }
    writer.finish();
  }

  engine::ShardPool pool(workers);
  const auto reader = trace::TraceReader::open(path);
  const CostWeights w{0.56, 0.44};

  const Scheme schemes[] = {Scheme::kDc, Scheme::kAc, Scheme::kAcDc,
                            Scheme::kOptFixed};
  std::vector<SchemeReport> reports;
  for (const Scheme scheme : schemes) {
    SchemeReport rep;
    const double total =
        static_cast<double>(bursts) * static_cast<double>(repeats);

    {
      workload::Channel channel(ccfg, scheme, w);
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        channel.reset();
        (void)channel.write_stream(data, &pool);
      }
      rep.stream_mbps = total / seconds_since(t0) / 1e6;
    }

    {
      SessionSpec spec;
      spec.scheme = scheme;
      spec.geometry = Geometry::of(reader.config());
      spec.lanes = lanes;
      spec.weights = w;
      spec.pool = &pool;
      Session session(spec);
      rep.scheme = std::string(session.scheme_name());
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        const auto source = make_trace_source(reader);
        (void)session.run(*source);
      }
      rep.replay_mbps = total / seconds_since(t0) / 1e6;
    }

    rep.ratio = rep.stream_mbps > 0 ? rep.replay_mbps / rep.stream_mbps : 0;
    reports.push_back(rep);
  }

  // Observability overhead: the same streaming replay with the observer
  // off vs at kFull (counters + stage spans; per-chunk stages exact,
  // per-unit stages sampled at the default stride). Each round runs the
  // two arms back-to-back (order alternating, so warm-up bias cancels)
  // and yields one paired full/off ratio; the gated number is the
  // median ratio across rounds. Pairing keeps a noise band honest — it
  // slows both arms of its round instead of masquerading as
  // instrumentation cost — and the median discards the rounds a band
  // did split. The ratio gates in CI at 0.98. A session is built per
  // arm because the kFull session attaches its observer to the shared
  // pool for the duration of its lifetime.
  double obs_off_mbps = 0;
  double obs_full_mbps = 0;
  double obs_ratio = 0;
  long long obs_spans = 0;
  {
    SessionSpec spec;
    spec.scheme = Scheme::kAc;
    spec.geometry = Geometry::of(reader.config());
    spec.lanes = lanes;
    spec.weights = w;
    spec.pool = &pool;
    // Several replays per timed region: single replays are short enough
    // that one scheduler quantum shifts the reading by percents.
    constexpr int kReplaysPerArm = 5;
    auto one_run = [&](bool full) {
      SessionSpec arm = spec;
      if (full) arm.obs.level = obs::ObsLevel::kFull;
      Session session(arm);
      const auto t0 = std::chrono::steady_clock::now();
      for (int k = 0; k < kReplaysPerArm; ++k) {
        const auto source = make_trace_source(reader);
        (void)session.run(*source);
      }
      const double mbps = kReplaysPerArm * static_cast<double>(bursts) /
                          seconds_since(t0) / 1e6;
      if (full) {
        obs_full_mbps = std::max(obs_full_mbps, mbps);
        obs_spans = static_cast<long long>(
            session.observer()->tracer()->retained());
      } else {
        obs_off_mbps = std::max(obs_off_mbps, mbps);
      }
      return mbps;
    };
    const int rounds = std::max(4 * repeats, 16);
    std::vector<double> ratios;
    for (int r = 0; r < rounds; ++r) {
      const bool full_first = (r & 1) != 0;
      const double a = one_run(full_first);
      const double b = one_run(!full_first);
      const double off = full_first ? b : a;
      const double full = full_first ? a : b;
      if (off > 0) ratios.push_back(full / off);
    }
    std::sort(ratios.begin(), ratios.end());
    if (!ratios.empty()) obs_ratio = ratios[ratios.size() / 2];
  }
  std::remove(path.c_str());

  // Compressed streaming: a zeros-heavy corpus recorded with RLE, so
  // the producer thread's decompression overlaps the encode.
  const std::string sparse_path = temp_trace_path("sparse");
  double sparse_mbps = 0;
  double sparse_ratio = 0;
  std::int64_t sparse_bursts = bursts;
  {
    trace::TraceWriter writer(sparse_path, ccfg.lane, {});
    auto src = workload::make_corpus_source("sparse-zeros", ccfg.lane, 9);
    for (std::int64_t i = 0; i < sparse_bursts; ++i)
      writer.write(src->next());
    writer.finish();
    const auto sparse_reader = trace::TraceReader::open(sparse_path);
    sparse_ratio =
        static_cast<double>(sparse_reader.file_bytes()) /
        (static_cast<double>(sparse_bursts) *
         static_cast<double>(ccfg.lane.bytes_per_burst()));
    SessionSpec spec;
    spec.scheme = Scheme::kAc;
    spec.geometry = Geometry::of(sparse_reader.config());
    spec.lanes = lanes;
    spec.pool = &pool;
    Session session(spec);
    const auto source = make_trace_source(sparse_reader);
    const auto t0 = std::chrono::steady_clock::now();
    const StreamStats totals = session.run(*source);
    sparse_mbps = static_cast<double>(totals.bursts) / seconds_since(t0) / 1e6;
  }
  std::remove(sparse_path.c_str());

  std::printf("{\n  \"bench\": \"trace_replay\",\n");
  std::printf("  \"config\": {\"width\": %d, \"burst_length\": %d, "
              "\"lanes\": %d, \"writes_per_lane\": %ld, \"bursts\": %lld, "
              "\"workers\": %d, \"repeats\": %d},\n",
              ccfg.lane.width, ccfg.lane.burst_length, lanes, writes,
              static_cast<long long>(bursts), workers, repeats);
  std::printf("  \"schemes\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const SchemeReport& r = reports[i];
    std::printf("    {\"scheme\": \"%s\", \"stream_mbursts_per_s\": %.2f, "
                "\"replay_mbursts_per_s\": %.2f, \"replay_vs_stream\": "
                "%.3f}%s\n",
                r.scheme.c_str(), r.stream_mbps, r.replay_mbps, r.ratio,
                i + 1 < reports.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"compressed\": {\"corpus\": \"sparse-zeros\", "
              "\"bursts\": %lld, \"on_disk_ratio\": %.3f, "
              "\"replay_mbursts_per_s\": %.2f},\n",
              static_cast<long long>(sparse_bursts), sparse_ratio,
              sparse_mbps);
  std::printf("  \"obs\": {\"scheme\": \"DBI AC\", "
              "\"off_mbursts_per_s\": %.2f, \"full_mbursts_per_s\": %.2f, "
              "\"obs_vs_off\": %.3f, \"spans_retained\": %lld},\n",
              obs_off_mbps, obs_full_mbps, obs_ratio, obs_spans);

  // Wide multi-group streaming: a x64 trace replayed zero-copy off the
  // mmap (strided group kernels, (lane, group) sharding) vs the same
  // bytes encoded straight from RAM — the ratio is the streaming tax.
  {
    const WideBusConfig wcfg{64, 8};
    const auto wide_bursts = static_cast<std::int64_t>(writes) * lanes / 8;
    std::vector<std::uint8_t> wide_data(
        static_cast<std::size_t>(wide_bursts) *
        static_cast<std::size_t>(wcfg.bytes_per_burst()));
    workload::Xoshiro256 wide_rng(4096);
    for (std::uint8_t& b : wide_data)
      b = static_cast<std::uint8_t>(wide_rng.next());

    const std::string wide_path = temp_trace_path("wide64");
    {
      trace::TraceWriterOptions wopt;
      wopt.compress = false;
      trace::TraceWriter writer(wide_path, wcfg, wopt);
      writer.write_packed(wide_data);
      writer.finish();
    }
    const auto wide_reader = trace::TraceReader::open(wide_path);
    const int groups = wcfg.groups();
    const double total =
        static_cast<double>(wide_bursts) * static_cast<double>(repeats);

    SessionSpec spec;
    spec.scheme = Scheme::kAc;
    spec.geometry = Geometry::of(wcfg);
    spec.lanes = 1;  // zero-copy in-place path; groups shard the pool
    spec.pool = &pool;

    double memory_mbps = 0;
    {
      Session session(spec);
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        const auto source = make_packed_source(wide_data);
        (void)session.run(*source);
      }
      memory_mbps = total / seconds_since(t0) / 1e6;
    }

    double wide_replay_mbps = 0;
    {
      Session session(spec);
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        const auto source = make_trace_source(wide_reader);
        (void)session.run(*source);
      }
      wide_replay_mbps = total / seconds_since(t0) / 1e6;
    }
    std::remove(wide_path.c_str());

    std::printf("  \"wide\": {\"width\": %d, \"groups\": %d, "
                "\"bursts\": %lld, \"memory_mbursts_per_s\": %.2f, "
                "\"replay_mbursts_per_s\": %.2f, \"replay_vs_memory\": "
                "%.3f},\n",
                wcfg.width, groups, static_cast<long long>(wide_bursts),
                memory_mbps, wide_replay_mbps,
                memory_mbps > 0 ? wide_replay_mbps / memory_mbps : 0);
  }

  // Trace lake: a three-member x8 corpus replayed through the catalog
  // (replay_lake, sequential with readahead) against the same member
  // files replayed one by one with per-file Sessions — the catalog
  // machinery plus the cross-member merge may cost at most 10%
  // (lake_vs_per_file gates at a hard 0.9 floor). The readahead
  // on-vs-off ratio measures what the prefetch thread buys on this
  // machine; it is trend-gated only (warm page caches make it ~1.0,
  // cold NFS-ish storage makes it >1).
  {
    namespace fs = std::filesystem;
    const char* tmp = std::getenv("TMPDIR");
    std::string lake_dir = tmp && *tmp ? tmp : "/tmp";
    lake_dir += "/bench_trace_replay_lake_";
    lake_dir += std::to_string(static_cast<long>(::getpid()));
    fs::remove_all(lake_dir);
    fs::create_directories(lake_dir);

    // Unequal member sizes, so the merge order is doing real work.
    const std::int64_t m0_bursts = bursts * 2 / 5;
    const std::int64_t m1_bursts = bursts * 7 / 20;
    const std::int64_t member_bursts[3] = {m0_bursts, m1_bursts,
                                           bursts - m0_bursts - m1_bursts};
    const BusConfig lane{8, 8};
    lake::LakeWriter lw = lake::LakeWriter::create(lake_dir);
    for (int m = 0; m < 3; ++m) {
      std::string name = "m";
      name += std::to_string(m);
      name += ".dbt";
      std::string member_path = lake_dir;
      member_path += '/';
      member_path += name;
      trace::TraceWriterOptions wopt;
      wopt.compress = false;  // uniform bytes are incompressible
      trace::TraceWriter writer(member_path, lane, wopt);
      workload::Xoshiro256 member_rng(static_cast<std::uint64_t>(100 + m));
      std::vector<Word> burst(static_cast<std::size_t>(lane.burst_length));
      for (std::int64_t i = 0; i < member_bursts[m]; ++i) {
        for (Word& word : burst)
          word = static_cast<Word>(member_rng.next() & 0xff);
        writer.write_words(burst);
      }
      writer.finish();
      (void)lw.add(name);
    }
    lw.write();
    const auto lake_reader = lake::LakeReader::open(lake_dir);
    const double total =
        static_cast<double>(bursts) * static_cast<double>(repeats);

    SessionSpec spec;
    spec.scheme = Scheme::kAc;
    spec.geometry = Geometry::of(lane);
    spec.lanes = lanes;
    spec.weights = w;
    spec.pool = &pool;

    // Reference arm: each member replayed alone, fresh Session and
    // reader per file (exactly what replay_lake does internally, minus
    // the catalog and the merge).
    double per_file_mbps = 0;
    {
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        for (std::size_t m = 0; m < lake_reader.members().size(); ++m) {
          const auto member_reader =
              trace::TraceReader::open(lake_reader.member_path(m));
          Session session(spec);
          const auto source = make_trace_source(member_reader);
          (void)session.run(*source);
        }
      }
      per_file_mbps = total / seconds_since(t0) / 1e6;
    }

    const auto run_lake = [&](bool readahead) {
      lake::LakeReplayOptions opt;
      opt.readahead = readahead;
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r)
        (void)lake::replay_lake(lake_reader, spec, opt);
      return total / seconds_since(t0) / 1e6;
    };
    const double lake_off_mbps = run_lake(false);
    const double lake_mbps = run_lake(true);
    fs::remove_all(lake_dir);

    std::printf("  \"lake\": {\"members\": %zu, \"bursts\": %lld, "
                "\"per_file_mbursts_per_s\": %.2f, "
                "\"lake_mbursts_per_s\": %.2f, \"lake_vs_per_file\": %.3f, "
                "\"readahead_off_mbursts_per_s\": %.2f, "
                "\"readahead_on_vs_off\": %.3f}\n",
                lake_reader.members().size(),
                static_cast<long long>(lake_reader.total_bursts()),
                per_file_mbps, lake_mbps,
                per_file_mbps > 0 ? lake_mbps / per_file_mbps : 0,
                lake_off_mbps,
                lake_off_mbps > 0 ? lake_mbps / lake_off_mbps : 0);
  }
  std::printf("}\n");
  return 0;
}
