// Fig. 4 reproduction: the alpha sweep of Fig. 3 with DBI OPT (Fixed)
// added — the paper's hardware-friendly variant that always encodes
// with alpha = beta = 1 regardless of the true energy ratio.
//
// PAPER: OPT (Fixed) beats the best conventional scheme for AC cost in
// ~[0.23, 0.79]; its maximum energy reduction (~6.58%) is nearly the
// full OPT's 6.75%; the shaded area (loss vs true-coefficient OPT) is
// small.
#include <iostream>

#include "sim/experiments.hpp"
#include "sim/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace dbi;

  const BusConfig cfg{8, 8};
  auto src = workload::make_uniform_source(cfg, 20180319);
  const auto trace = workload::BurstTrace::collect(*src, 10000);
  std::cout << "=== Fig. 4: fixed coefficients (alpha = beta = 1) vs exact "
               "coefficients ===\n\n";

  const auto sweep = sim::alpha_sweep(trace, 21);
  sim::Table table({"AC cost", "DBI DC", "DBI AC", "DBI OPT", "OPT (Fixed)",
                    "fixed loss vs OPT"});
  for (const auto& p : sweep)
    table.add_row({sim::fmt(p.ac_cost, 2), sim::fmt(p.dc, 2),
                   sim::fmt(p.ac, 2), sim::fmt(p.opt, 2),
                   sim::fmt(p.opt_fixed, 2),
                   sim::fmt(100.0 * (p.opt_fixed - p.opt) / p.opt, 2) +
                       " %"});
  std::cout << table;

  const auto dense = sim::alpha_sweep(trace, 101);
  const auto s = sim::summarize_alpha_sweep(dense);
  std::cout << "\nOPT (Fixed) beats best conventional for alpha in ["
            << sim::fmt(s.fixed_win_lo, 2) << ", "
            << sim::fmt(s.fixed_win_hi, 2) << "]   PAPER: [0.23, 0.79]\n";
  std::cout << "Peak OPT (Fixed) gain = " << sim::fmt(100.0 * s.max_gain_fixed, 2)
            << " %   PAPER: 6.58 %\n";
  std::cout << "Peak exact-OPT gain   = " << sim::fmt(100.0 * s.max_gain_opt, 2)
            << " %   PAPER: 6.75 %\n";
  return 0;
}
