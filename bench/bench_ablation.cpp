// Ablation studies beyond the paper's figures:
//   A. Coefficient quantisation — how many coefficient bits does OPT
//      need? (Substantiates the paper's "small integer coefficients
//      without significant loss" remark and the 3-bit design choice.)
//   B. Lookahead window — how much of the whole-burst shortest path is
//      actually needed vs a windowed/greedy encoder?
//   C. Burst length — does the OPT advantage grow with BL?
//   D. Boundary condition — ACDC vs AC with realistic persistent line
//      state instead of the paper's all-ones boundary.
#include <algorithm>
#include <iostream>
#include <vector>

#include "power/interface_energy.hpp"
#include "sim/experiments.hpp"
#include "sim/table.hpp"
#include "workload/channel.hpp"
#include "workload/generators.hpp"
#include "workload/rng.hpp"

namespace {

using namespace dbi;

void quantization_study(const workload::BurstTrace& trace) {
  std::cout << "--- A. Coefficient quantisation (weights from POD135 @ 14 "
               "Gbps, 3 pF) ---\n\n";
  const power::PodParams pod = power::PodParams::pod135(3e-12, 14e9);
  const CostWeights w = power::weights_from_pod(pod);
  const auto sweep = sim::quantization_sweep(trace, w, 8);
  sim::Table table({"coeff bits", "mean cost [pJ]", "loss vs exact"});
  for (const auto& p : sweep)
    table.add_row({std::to_string(p.bits), sim::fmt(p.mean_cost * 1e12, 4),
                   sim::fmt(100.0 * p.loss_vs_exact, 3) + " %"});
  std::cout << table
            << "PAPER (Section III): integer coefficients suffice "
               "\"without a significant loss\";\nthe hardware uses 3-bit "
               "coefficients.\n\n";
}

void window_study(const workload::BurstTrace& trace) {
  std::cout << "--- B. Lookahead window (alpha = beta = 0.5) ---\n\n";
  const std::vector<int> windows = {1, 2, 4, 8};
  const auto sweep = sim::window_sweep(trace, CostWeights{0.5, 0.5},
                                       windows);
  sim::Table table({"window [beats]", "mean cost", "loss vs full OPT"});
  for (const auto& p : sweep)
    table.add_row({std::to_string(p.window), sim::fmt(p.mean_cost, 3),
                   sim::fmt(100.0 * p.loss_vs_full, 3) + " %"});
  std::cout << table
            << "(window = burst length reproduces the paper's encoder; "
               "the gap to window 1\nis the value of solving the whole "
               "shortest-path problem.)\n\n";
}

void burst_length_study() {
  std::cout << "--- C. Burst length (alpha = beta = 0.5, uniform data) "
               "---\n\n";
  sim::Table table({"burst length", "DC", "AC", "OPT",
                    "OPT gain vs best"});
  for (int bl : {2, 4, 8, 16}) {
    const BusConfig cfg{8, bl};
    auto src = workload::make_uniform_source(cfg, 5);
    const auto trace = workload::BurstTrace::collect(*src, 4000);
    const auto sweep = sim::alpha_sweep(trace, 3);  // midpoint = 0.5
    const auto& mid = sweep[1];
    const double best = std::min(mid.dc, mid.ac);
    table.add_row({std::to_string(bl), sim::fmt(mid.dc / bl, 3),
                   sim::fmt(mid.ac / bl, 3), sim::fmt(mid.opt / bl, 3),
                   sim::fmt(100.0 * (best - mid.opt) / best, 2) + " %"});
  }
  std::cout << table
            << "(per-beat costs; longer bursts amortise the boundary beat "
               "and give the trellis\nmore room, increasing OPT's "
               "advantage.)\n\n";
}

void boundary_study() {
  std::cout << "--- D. ACDC vs AC under realistic persistent line state "
               "---\n\n";
  const BusConfig lane{8, 8};
  workload::ChannelConfig cfg;
  cfg.lanes = 4;

  sim::Table table({"scheme", "zeros/write", "transitions/write",
                    "cost/write (a=b=1)"});
  (void)lane;
  for (Scheme s : {Scheme::kAc, Scheme::kAcDc, Scheme::kOptFixed}) {
    workload::Channel channel(cfg, make_encoder(s, CostWeights{1, 1}));
    workload::Xoshiro256 rng(9);  // same data for every scheme
    for (int i = 0; i < 4000; ++i) {
      std::vector<std::uint8_t> line(32);
      for (auto& b : line) b = static_cast<std::uint8_t>(rng.next());
      (void)channel.write(line);
    }
    const auto& st = channel.stats();
    table.add_row({std::string(scheme_name(s)),
                   sim::fmt(st.zeros_per_write(), 2),
                   sim::fmt(st.transitions_per_write(), 2),
                   sim::fmt(st.zeros_per_write() +
                            st.transitions_per_write(), 2)});
  }
  std::cout << table
            << "PAPER (Section II): under the all-ones boundary ACDC == "
               "AC; with persistent\nstate the first-beat DC rule makes "
               "ACDC diverge slightly — quantified here.\n";
}

void accounting_study() {
  std::cout << "--- E. Per-burst boundary vs persistent line state "
               "---\n\n";
  const BusConfig cfg{8, 8};
  sim::Table table({"workload", "scheme", "cost (paper boundary)",
                    "cost (persistent)", "delta"});
  const struct {
    const char* label;
    int kind;
  } workloads[] = {{"uniform", 0}, {"markov p=0.9", 1}, {"text", 2}};
  for (const auto& wl : workloads) {
    auto make_src = [&]() -> std::unique_ptr<workload::BurstSource> {
      switch (wl.kind) {
        case 1:
          return workload::make_markov_source(cfg, 0.9, 5);
        case 2:
          return workload::make_text_source(cfg, 5);
        default:
          return workload::make_uniform_source(cfg, 5);
      }
    };
    auto src = make_src();
    const auto trace = workload::BurstTrace::collect(*src, 3000);
    for (Scheme s : {Scheme::kDc, Scheme::kAc, Scheme::kOptFixed}) {
      const auto enc = make_encoder(s, CostWeights{0.5, 0.5});
      const auto paper = sim::mean_stats(trace, *enc);
      const auto chained = sim::mean_stats_chained(trace, *enc);
      const double cost_paper = 0.5 * (paper.zeros + paper.transitions);
      const double cost_chained =
          0.5 * (chained.zeros + chained.transitions);
      table.add_row({wl.label, std::string(scheme_name(s)),
                     sim::fmt(cost_paper, 3), sim::fmt(cost_chained, 3),
                     sim::fmt(100.0 * (cost_chained / cost_paper - 1.0), 2) +
                         " %"});
    }
  }
  std::cout << table
            << "(the paper resets every burst to all-ones lines — a "
               "mildly favourable start; a\nreal controller sees the "
               "previous burst's final state. The effect is a few\n"
               "percent at most and never reorders the schemes, so the "
               "paper's boundary\nconvention is benign.)\n\n";
}

void termination_sensitivity_study(const workload::BurstTrace& trace) {
  std::cout << "--- F. Fig. 7 crossovers vs termination choice ---\n\n";
  // The paper states POD135 but not the exact R_on/ODT pair; this sweep
  // shows every plausible JEDEC setting lands the crossovers in the
  // same band, i.e. the Fig. 7 conclusions do not hinge on our preset.
  std::vector<double> rates;
  for (double g = 1.0; g <= 20.0 + 1e-9; g += 0.25) rates.push_back(g);
  sim::Table table({"driver [ohm]", "ODT [ohm]", "OPT(F) beats DC at",
                    "peak gain at", "peak gain"});
  const std::pair<double, double> settings[] = {
      {34, 60}, {40, 60}, {40, 48}, {50, 50}, {40, 120}};
  for (const auto& [rpd, rpu] : settings) {
    power::PodParams pod = power::PodParams::pod135(3e-12, 12e9);
    pod.r_pulldown = rpd;
    pod.r_pullup = rpu;
    const auto sweep = sim::datarate_sweep(pod, trace, rates);
    double crossover = 0.0, peak_at = 0.0, peak = -1.0;
    for (const auto& p : sweep) {
      if (crossover == 0.0 && p.opt_fixed < p.dc) crossover = p.gbps;
      const double gain = (std::min(p.dc, p.ac) - p.opt_fixed) /
                          std::min(p.dc, p.ac);
      if (gain > peak) {
        peak = gain;
        peak_at = p.gbps;
      }
    }
    table.add_row({sim::fmt(rpd, 0), sim::fmt(rpu, 0),
                   sim::fmt(crossover, 2) + " Gbps",
                   sim::fmt(peak_at, 2) + " Gbps",
                   sim::fmt(100.0 * peak, 2) + " %"});
  }
  std::cout << table
            << "PAPER: crossover ~3.8 Gbps, peak around 14 Gbps (exact "
               "R values unstated).\n";
}

}  // namespace

int main() {
  const BusConfig cfg{8, 8};
  auto src = workload::make_uniform_source(cfg, 20180319);
  const auto trace = workload::BurstTrace::collect(*src, 4000);

  std::cout << "=== Ablation studies (beyond the paper's figures) ===\n\n";
  quantization_study(trace);
  window_study(trace);
  burst_length_study();
  boundary_study();
  accounting_study();
  termination_sensitivity_study(trace);
  return 0;
}
