// Table I reproduction: synthesis results for the four encoder
// designs. The paper used VHDL + Synopsys DC + the Synopsys 32 nm
// generic library; this repository builds the same architectures as
// gate netlists and reports area / leakage / simulated dynamic power /
// achievable burst rate from its own technology model (see DESIGN.md
// for the substitution argument). Expect the paper's ordering and
// magnitude classes, not its exact Synopsys digits.
//
// PAPER (32 nm):
//   scheme            area[um2] static[uW] dyn[uW] rate[GHz] total[uW] E/burst[pJ]
//   DBI DC                  275        105     111       1.5       216        0.14
//   DBI AC                  578        170     250       1.5       420        0.28
//   DBI OPT (Fixed)        3807        257    2233       1.5      2490        1.66
//   DBI OPT (3-Bit)       16584       5200    3600       0.5      8800        17.6
#include <iostream>

#include "hw/synthesis.hpp"
#include "sim/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace dbi;

  auto src = workload::make_uniform_source(BusConfig{8, 8}, 32);
  const auto trace = workload::BurstTrace::collect(*src, 2000);

  std::cout << "=== Table I: synthesis results (netlist substrate, generic "
               "32 nm model) ===\n\n";
  hw::Table1Options options;
  const auto rows = hw::table1_synthesis(trace, options);

  sim::Table table({"Scheme", "Cells", "Area [um2]", "Static [uW]",
                    "Dynamic [uW]", "Burst Rate [GHz]", "fmax [GHz]",
                    "Total [uW]", "E/Burst [pJ]", "Units @ 1.5 GHz"});
  for (const auto& r : rows)
    table.add_row({r.scheme, std::to_string(r.cells), sim::fmt(r.area_um2, 0),
                   sim::fmt(r.static_uw, 0), sim::fmt(r.dynamic_uw, 0),
                   sim::fmt(r.burst_rate_ghz, 2), sim::fmt(r.fmax_ghz, 2),
                   sim::fmt(r.total_uw, 0),
                   sim::fmt(r.energy_per_burst_pj, 2),
                   std::to_string(r.units_for_target)});
  std::cout << table;

  std::cout << "\nKey ratios (measured vs PAPER):\n";
  std::cout << "  area OPT(Fixed)/DC   = "
            << sim::fmt(rows[2].area_um2 / rows[0].area_um2, 1)
            << "x   PAPER: 13.8x\n";
  std::cout << "  area 3-bit/Fixed     = "
            << sim::fmt(rows[3].area_um2 / rows[2].area_um2, 1)
            << "x   PAPER: 4.4x\n";
  std::cout << "  E/burst 3-bit/Fixed  = "
            << sim::fmt(rows[3].energy_per_burst_pj /
                            rows[2].energy_per_burst_pj, 1)
            << "x   PAPER: 10.6x\n";
  std::cout << "  fmax Fixed/3-bit     = "
            << sim::fmt(rows[2].fmax_ghz / rows[3].fmax_ghz, 1)
            << "x   PAPER: 3.0x\n";
  std::cout << "\nPAPER: DC/AC/OPT(Fixed) meet 1.5 GHz (12 Gbps); the 3-bit "
               "design needs 3 parallel\nunits for the same throughput "
               "(ours needs " << rows[3].units_for_target
            << " — our ideal-retiming model is kinder to the multiplier "
               "datapath\nthan Synopsys DC was; see EXPERIMENTS.md).\n";
  return 0;
}
