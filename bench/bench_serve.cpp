// bench_serve — the multi-tenant daemon against the single-stream
// engine baseline.
//
// Measures aggregate served encode throughput at 1 and 8 concurrent
// pipelined tenants over an in-process Server (Unix socket, framed
// protocol, DRR scheduler) and the same total work as one offline
// StreamEncoder pass. Emits JSON on stdout for the CI bench gate:
//
//   serve_vs_session   aggregate served rate / single-stream rate
//                      (floor-gated: >= 0.7 at 8 tenants — protocol,
//                      scheduling and per-tenant state may cost at
//                      most 30% of the raw engine)
//   p99_amplification  worst-tenant served p99 at 8 tenants / p99 at
//                      1 tenant (CEILING-gated: lower is better; fair
//                      scheduling must keep the tail bounded as
//                      tenancy grows)
//
// usage: bench_serve [bursts_per_tenant] [req_bursts] [workers] [scheme]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/geometry.hpp"
#include "engine/batch_encoder.hpp"
#include "engine/stream_encoder.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<std::uint8_t> random_payload(std::size_t bytes,
                                         std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint8_t> out(bytes);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

/// One offline StreamEncoder pass over `bursts` bursts — the
/// single-stream baseline the served rates are normalised against.
/// Best of `repeats`.
double session_mbursts(const dbi::Geometry& g, dbi::Scheme scheme,
                       std::span<const std::uint8_t> payload,
                       std::size_t bursts, int repeats) {
  double best = 0;
  for (int r = 0; r < repeats; ++r) {
    dbi::engine::BatchEncoder encoder(scheme);
    dbi::engine::StreamEncodeOptions sopt;
    dbi::engine::StreamEncoder stream(encoder, g.bus(), sopt);
    const auto t0 = Clock::now();
    (void)stream.encode_chunk(0, payload, bursts, true);
    const double rate =
        static_cast<double>(bursts) / seconds_since(t0) / 1e6;
    if (rate > best) best = rate;
  }
  return best;
}

struct ServedRun {
  double mbursts = 0;
  double p50_us = 0;  ///< worst tenant's server-side p50
  double p99_us = 0;  ///< worst tenant's server-side p99
};

ServedRun served_mbursts(const dbi::Geometry& g, dbi::Scheme scheme,
                         std::span<const std::uint8_t> payload, int tenants,
                         std::size_t bursts_per_tenant,
                         std::size_t req_bursts, int workers) {
  static int run_id = 0;
  dbi::serve::ServerOptions opt;
  opt.socket_path =
      (std::filesystem::temp_directory_path() /
       ("bench_serve_" + std::to_string(::getpid()) + "_" +
        std::to_string(run_id++) + ".sock"))
          .string();
  opt.workers = workers;
  opt.max_queue_requests = 64;
  dbi::serve::Server server(std::move(opt));
  server.start();

  const auto bpb = static_cast<std::size_t>(g.bytes_per_burst());
  const std::size_t requests = bursts_per_tenant / req_bursts;
  constexpr std::size_t kWindow = 4;  // pipelined requests in flight

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < tenants; ++t) {
    threads.emplace_back([&, t] {
      dbi::serve::Client::Options copt;
      copt.socket_path = server.options().socket_path;
      copt.tenant = "bench-" + std::to_string(t);
      copt.scheme = scheme;
      copt.geometry = g;
      auto client = dbi::serve::Client::connect(copt);
      std::size_t sent = 0, answered = 0;
      const auto slice = [&](std::size_t q) {
        return payload.subspan((q % kWindow) * req_bursts * bpb,
                               req_bursts * bpb);
      };
      while (sent < std::min(kWindow, requests))
        (void)client.submit_encode(slice(sent++),
                                   static_cast<std::uint32_t>(req_bursts));
      while (answered < requests) {
        const auto r = client.next_response();
        ++answered;
        // kBusy never triggers here (window << queue bound), but a
        // rejected request still needs re-submitting to keep the count.
        if (r.outcome == dbi::serve::Client::Outcome::kBusy) --answered;
        if (sent < requests)
          (void)client.submit_encode(slice(sent++),
                                     static_cast<std::uint32_t>(req_bursts));
      }
    });
  }
  for (auto& th : threads) th.join();
  const double elapsed = seconds_since(t0);

  ServedRun out;
  out.mbursts = static_cast<double>(tenants) *
                static_cast<double>(requests * req_bursts) / elapsed / 1e6;
  const dbi::obs::Snapshot snap = server.metrics();
  for (int t = 0; t < tenants; ++t) {
    const dbi::obs::MetricPoint* p =
        snap.find("dbi_serve_request_latency_ns",
                  "tenant=\"bench-" + std::to_string(t) + "\"");
    if (p == nullptr) continue;
    if (p->p50 / 1e3 > out.p50_us) out.p50_us = p->p50 / 1e3;
    if (p->p99 / 1e3 > out.p99_us) out.p99_us = p->p99 / 1e3;
  }
  server.stop();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t bursts_per_tenant =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1u << 17);
  const std::size_t req_bursts =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4096;
  const int workers = argc > 3 ? std::atoi(argv[3]) : 0;
  const std::string scheme_name = argc > 4 ? argv[4] : "ac";
  const dbi::Geometry g = dbi::Geometry::narrow(8, 8);
  const dbi::Scheme scheme = scheme_name == "raw" ? dbi::Scheme::kRaw
                             : scheme_name == "dc" ? dbi::Scheme::kDc
                                                   : dbi::Scheme::kAc;
  const auto bpb = static_cast<std::size_t>(g.bytes_per_burst());

  // One pipelining window's worth of payload per tenant is enough: the
  // slices cycle through it, keeping the working set cache-friendly
  // for served and offline runs alike.
  const auto window_payload = random_payload(4 * req_bursts * bpb, 7);
  const auto baseline_payload = random_payload(bursts_per_tenant * bpb, 7);

  // Warm-up: populates the kernel registry caches and the page cache.
  (void)served_mbursts(g, scheme, window_payload, 1, req_bursts * 4,
                       req_bursts, workers);

  const double session =
      session_mbursts(g, scheme, baseline_payload, bursts_per_tenant, 3);

  std::printf("{\n  \"bench\": \"serve\",\n");
  std::printf(
      "  \"config\": {\"width\": %d, \"burst_length\": %d, "
      "\"scheme\": \"%s\", \"bursts_per_tenant\": %zu, "
      "\"req_bursts\": %zu, \"window\": 4, \"workers\": %d},\n",
      g.width(), g.burst_length(), scheme_name.c_str(), bursts_per_tenant,
      req_bursts, workers);
  std::printf("  \"rows\": [\n");

  double p99_at_1 = 0;
  const int kTenantCounts[] = {1, 8};
  for (std::size_t i = 0; i < std::size(kTenantCounts); ++i) {
    const int tenants = kTenantCounts[i];
    // Best of two full runs: the served path spans many threads, so a
    // single run is noisier than the offline loop.
    ServedRun run = served_mbursts(g, scheme, window_payload, tenants,
                                   bursts_per_tenant, req_bursts, workers);
    const ServedRun again =
        served_mbursts(g, scheme, window_payload, tenants, bursts_per_tenant,
                       req_bursts, workers);
    if (again.mbursts > run.mbursts) run = again;

    std::printf(
        "    {\"tenants\": %d, \"serve_mbursts_per_s\": %.2f, "
        "\"session_mbursts_per_s\": %.2f, \"serve_vs_session\": %.3f, "
        "\"p50_us\": %.1f, \"p99_us\": %.1f",
        tenants, run.mbursts, session, run.mbursts / session, run.p50_us,
        run.p99_us);
    if (tenants == 1) {
      p99_at_1 = run.p99_us;
    } else if (p99_at_1 > 0) {
      std::printf(", \"p99_amplification\": %.2f", run.p99_us / p99_at_1);
    }
    std::printf("}%s\n", i + 1 < std::size(kTenantCounts) ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
