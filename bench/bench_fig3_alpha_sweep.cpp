// Fig. 3 reproduction: mean energy per burst of RAW / DBI DC / DBI AC /
// DBI OPT over 10000 uniform random bursts while sweeping the
// transition cost alpha from 0 to 1 (beta = 1 - alpha).
//
// PAPER: DC == OPT at AC cost 0, AC == OPT at DC cost 0; DC (resp. AC)
// stays near-optimal until AC (resp. DC) cost ~0.15; AC crosses below
// DC at alpha ~0.56; OPT's peak advantage ~2 points / 6.75% there; DC
// and AC are worse than RAW at their wrong end of the sweep.
#include <algorithm>
#include <iostream>

#include "sim/experiments.hpp"
#include "sim/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace dbi;

  const BusConfig cfg{8, 8};
  auto src = workload::make_uniform_source(cfg, 20180319);
  const auto trace = workload::BurstTrace::collect(*src, 10000);
  std::cout << "=== Fig. 3: energy per burst vs AC cost (10000 random "
               "bursts) ===\n\n";

  const auto sweep = sim::alpha_sweep(trace, 21);
  sim::Table table({"AC cost", "DC cost", "RAW", "DBI DC", "DBI AC",
                    "DBI OPT", "OPT gain vs best"});
  for (const auto& p : sweep) {
    const double best = std::min(p.dc, p.ac);
    table.add_row({sim::fmt(p.ac_cost, 2), sim::fmt(1.0 - p.ac_cost, 2),
                   sim::fmt(p.raw, 2), sim::fmt(p.dc, 2), sim::fmt(p.ac, 2),
                   sim::fmt(p.opt, 2),
                   sim::fmt(100.0 * (best - p.opt) / best, 2) + " %"});
  }
  std::cout << table;

  const auto dense = sim::alpha_sweep(trace, 101);
  const auto s = sim::summarize_alpha_sweep(dense);
  std::cout << "\nAC cheaper than DC from alpha = "
            << sim::fmt(s.ac_dc_crossover, 2)
            << "   PAPER: 0.56\n";
  std::cout << "Peak OPT gain vs best conventional = "
            << sim::fmt(100.0 * s.max_gain_opt, 2) << " % at alpha = "
            << sim::fmt(s.max_gain_opt_alpha, 2)
            << "   PAPER: 6.75 % at 0.56\n";
  return 0;
}
