// Fig. 8 reproduction: total energy per burst (interface + encoding)
// of DBI OPT (Fixed) normalised to the better of DBI DC and DBI AC
// (each including its own encoder energy from the Table I model), for
// load capacitances of 1-8 pF across the data-rate sweep.
//
// PAPER: 5-6% net reduction at the best operating points for 3-8 pF;
// higher load moves the best operating point to lower data rates; at
// very low rates (DC regime) the fixed encoder is a net loss.
#include <iostream>
#include <vector>

#include "sim/experiments.hpp"
#include "sim/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace dbi;

  const BusConfig cfg{8, 8};
  auto src = workload::make_uniform_source(cfg, 20180319);
  const auto trace = workload::BurstTrace::collect(*src, 10000);

  const auto hw_dc = power::table1_hardware(Scheme::kDc);
  const auto hw_ac = power::table1_hardware(Scheme::kAc);
  const auto hw_fx = power::table1_hardware(Scheme::kOptFixed);

  std::vector<double> rates;
  for (double g = 1.0; g <= 20.0 + 1e-9; g += 1.0) rates.push_back(g);
  const std::vector<double> loads_pf = {1, 2, 3, 4, 6, 8};

  std::cout << "=== Fig. 8: OPT (Fixed) total energy / best conventional "
               "(POD135, incl. encoder energy) ===\n\n";

  sim::Table table([&] {
    std::vector<std::string> headers = {"rate [Gbps]"};
    for (double pf : loads_pf)
      headers.push_back(sim::fmt(pf, 0) + " pF");
    return headers;
  }());

  std::vector<std::vector<sim::TotalEnergyPoint>> columns;
  for (double pf : loads_pf) {
    const power::PodParams pod = power::PodParams::pod135(pf * 1e-12, 12e9);
    columns.push_back(
        sim::total_energy_sweep(pod, trace, rates, hw_dc, hw_ac, hw_fx));
  }
  for (std::size_t r = 0; r < rates.size(); ++r) {
    std::vector<std::string> row = {sim::fmt(rates[r], 0)};
    for (const auto& col : columns) row.push_back(sim::fmt(col[r].ratio, 4));
    table.add_row(row);
  }
  std::cout << table;

  std::cout << "\nBest operating point per load:\n";
  for (std::size_t c = 0; c < loads_pf.size(); ++c) {
    double best = 1e9, at = 0;
    for (const auto& p : columns[c])
      if (p.ratio < best) {
        best = p.ratio;
        at = p.gbps;
      }
    std::cout << "  " << sim::fmt(loads_pf[c], 0) << " pF: ratio "
              << sim::fmt(best, 3) << " (" << sim::fmt(100 * (1 - best), 1)
              << " % saved) at " << sim::fmt(at, 0) << " Gbps\n";
  }
  std::cout << "PAPER: 5-6 % savings at the best operating points for 3-8 "
               "pF; the best point\nmoves to lower rates as the load "
               "grows.\n";
  return 0;
}
