// Encoder throughput microbenchmarks (google-benchmark).
//
// Context (paper Section IV-B): a 12 Gbps GDDR5X pin needs 1.5e9
// bursts/s per byte lane from the hardware encoder. The software
// encoders here are the behavioural models — the numbers show the
// relative algorithmic cost (DC < AC < trellis OPT << exhaustive) and
// that even the trellis solver runs millions of bursts per second in
// software, which is what makes the 10000x101-point sweeps of
// Figs. 3/4 cheap to regenerate.
#include <benchmark/benchmark.h>

#include <vector>

#include "api/session.hpp"
#include "core/encoder.hpp"
#include "engine/shard_pool.hpp"
#include "hw/hw_encoder.hpp"
#include "workload/generators.hpp"

namespace {

using namespace dbi;

const std::vector<Burst>& bursts() {
  static const std::vector<Burst> data = [] {
    auto src = workload::make_uniform_source(BusConfig{8, 8}, 11);
    std::vector<Burst> out;
    out.reserve(1024);
    for (int i = 0; i < 1024; ++i) out.push_back(src->next());
    return out;
  }();
  return data;
}

void run_encoder(benchmark::State& state, const Encoder& encoder) {
  const BusState boundary = BusState::all_ones(BusConfig{8, 8});
  std::size_t i = 0;
  for (auto _ : state) {
    const EncodedBurst e =
        encoder.encode(bursts()[i++ & 1023], boundary);
    benchmark::DoNotOptimize(e.beat(0));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 8);
}

void BM_Raw(benchmark::State& state) {
  run_encoder(state, *make_raw_encoder());
}
void BM_DbiDc(benchmark::State& state) {
  run_encoder(state, *make_dc_encoder());
}
void BM_DbiAc(benchmark::State& state) {
  run_encoder(state, *make_ac_encoder());
}
void BM_DbiAcDc(benchmark::State& state) {
  run_encoder(state, *make_acdc_encoder());
}
void BM_DbiOpt(benchmark::State& state) {
  run_encoder(state, *make_opt_encoder(CostWeights{0.56, 0.44}));
}
void BM_DbiOptFixed(benchmark::State& state) {
  run_encoder(state, *make_opt_fixed_encoder());
}
void BM_Exhaustive(benchmark::State& state) {
  run_encoder(state, *make_exhaustive_encoder(CostWeights{0.5, 0.5}));
}
void BM_GateLevelOptFixed(benchmark::State& state) {
  // The netlist simulation of the Fig. 5 datapath — the "RTL sim" cost,
  // orders of magnitude slower than the behavioural model, included to
  // show what the equivalence tests pay.
  const hw::HwEncoder encoder(hw::build_dbi_opt_fixed());
  run_encoder(state, encoder);
}

BENCHMARK(BM_Raw);
BENCHMARK(BM_DbiDc);
BENCHMARK(BM_DbiAc);
BENCHMARK(BM_DbiAcDc);
BENCHMARK(BM_DbiOpt);
BENCHMARK(BM_DbiOptFixed);
BENCHMARK(BM_Exhaustive);
BENCHMARK(BM_GateLevelOptFixed);

// ------------------------------------------------------------ batch engine
// The Session-facade counterparts: same bursts, whole-stream encode
// via the bit-parallel fast paths / flat trellis kernel behind
// dbi::Session.

void run_engine(benchmark::State& state, Scheme scheme,
                const CostWeights& w = {}) {
  SessionSpec spec;
  spec.scheme = scheme;
  spec.geometry = Geometry::narrow(8, 8);
  spec.weights = w;
  Session session(spec);
  for (auto _ : state) {
    const auto source = make_burst_source(bursts());
    const StreamStats s = session.run(*source);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bursts().size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bursts().size()) * 8);
}

void BM_EngineDc(benchmark::State& state) {
  run_engine(state, Scheme::kDc);
}
void BM_EngineAc(benchmark::State& state) {
  run_engine(state, Scheme::kAc);
}
void BM_EngineAcDc(benchmark::State& state) {
  run_engine(state, Scheme::kAcDc);
}
void BM_EngineOpt(benchmark::State& state) {
  run_engine(state, Scheme::kOpt, CostWeights{0.56, 0.44});
}
void BM_EngineOptFixed(benchmark::State& state) {
  run_engine(state, Scheme::kOptFixed);
}

BENCHMARK(BM_EngineDc);
BENCHMARK(BM_EngineAc);
BENCHMARK(BM_EngineAcDc);
BENCHMARK(BM_EngineOpt);
BENCHMARK(BM_EngineOptFixed);

// Multi-core scaling: lane-group shards across the deterministic pool.
// Arg = worker count; 16 lanes of 1024 bursts each per iteration.
void BM_EngineShardedOptFixed(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const BusConfig cfg{8, 8};
  constexpr int kLanes = 16;
  static const std::vector<std::vector<Burst>> lanes = [] {
    std::vector<std::vector<Burst>> out;
    for (int l = 0; l < kLanes; ++l) {
      auto src = workload::make_uniform_source(
          BusConfig{8, 8}, 40 + static_cast<std::uint64_t>(l));
      std::vector<Burst> lane;
      for (int i = 0; i < 1024; ++i) lane.push_back(src->next());
      out.push_back(std::move(lane));
    }
    return out;
  }();

  // One interleaved packed stream (burst g -> lane g % kLanes), the
  // layout a multi-lane Session shards across the pool.
  static const std::vector<std::uint8_t> interleaved = [] {
    std::vector<std::uint8_t> out;
    out.reserve(kLanes * 1024 * 8);
    for (int i = 0; i < 1024; ++i)
      for (int l = 0; l < kLanes; ++l)
        for (int t = 0; t < 8; ++t)
          out.push_back(static_cast<std::uint8_t>(
              lanes[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)]
                  .word(t)));
    return out;
  }();
  (void)cfg;

  engine::ShardPool pool(workers);
  SessionSpec spec;
  spec.scheme = Scheme::kOptFixed;
  spec.geometry = Geometry::narrow(8, 8);
  spec.lanes = kLanes;
  spec.pool = &pool;
  Session session(spec);
  for (auto _ : state) {
    const auto source = make_packed_source(interleaved);
    const StreamStats s = session.run(*source);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * kLanes * 1024);
}
BENCHMARK(BM_EngineShardedOptFixed)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_TrellisByBurstLength(benchmark::State& state) {
  const int bl = static_cast<int>(state.range(0));
  const BusConfig cfg{8, bl};
  auto src = workload::make_uniform_source(cfg, 13);
  std::vector<Burst> data;
  for (int i = 0; i < 256; ++i) data.push_back(src->next());
  const auto encoder = make_opt_fixed_encoder();
  const BusState boundary = BusState::all_ones(cfg);
  std::size_t i = 0;
  for (auto _ : state) {
    const EncodedBurst e = encoder->encode(data[i++ & 255], boundary);
    benchmark::DoNotOptimize(e.beat(0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrellisByBurstLength)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
