// Encoder throughput microbenchmarks (google-benchmark).
//
// Context (paper Section IV-B): a 12 Gbps GDDR5X pin needs 1.5e9
// bursts/s per byte lane from the hardware encoder. The software
// encoders here are the behavioural models — the numbers show the
// relative algorithmic cost (DC < AC < trellis OPT << exhaustive) and
// that even the trellis solver runs millions of bursts per second in
// software, which is what makes the 10000x101-point sweeps of
// Figs. 3/4 cheap to regenerate.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/encoder.hpp"
#include "hw/hw_encoder.hpp"
#include "workload/generators.hpp"

namespace {

using namespace dbi;

const std::vector<Burst>& bursts() {
  static const std::vector<Burst> data = [] {
    auto src = workload::make_uniform_source(BusConfig{8, 8}, 11);
    std::vector<Burst> out;
    out.reserve(1024);
    for (int i = 0; i < 1024; ++i) out.push_back(src->next());
    return out;
  }();
  return data;
}

void run_encoder(benchmark::State& state, const Encoder& encoder) {
  const BusState boundary = BusState::all_ones(BusConfig{8, 8});
  std::size_t i = 0;
  for (auto _ : state) {
    const EncodedBurst e =
        encoder.encode(bursts()[i++ & 1023], boundary);
    benchmark::DoNotOptimize(e.beat(0));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 8);
}

void BM_Raw(benchmark::State& state) {
  run_encoder(state, *make_raw_encoder());
}
void BM_DbiDc(benchmark::State& state) {
  run_encoder(state, *make_dc_encoder());
}
void BM_DbiAc(benchmark::State& state) {
  run_encoder(state, *make_ac_encoder());
}
void BM_DbiAcDc(benchmark::State& state) {
  run_encoder(state, *make_acdc_encoder());
}
void BM_DbiOpt(benchmark::State& state) {
  run_encoder(state, *make_opt_encoder(CostWeights{0.56, 0.44}));
}
void BM_DbiOptFixed(benchmark::State& state) {
  run_encoder(state, *make_opt_fixed_encoder());
}
void BM_Exhaustive(benchmark::State& state) {
  run_encoder(state, *make_exhaustive_encoder(CostWeights{0.5, 0.5}));
}
void BM_GateLevelOptFixed(benchmark::State& state) {
  // The netlist simulation of the Fig. 5 datapath — the "RTL sim" cost,
  // orders of magnitude slower than the behavioural model, included to
  // show what the equivalence tests pay.
  const hw::HwEncoder encoder(hw::build_dbi_opt_fixed());
  run_encoder(state, encoder);
}

BENCHMARK(BM_Raw);
BENCHMARK(BM_DbiDc);
BENCHMARK(BM_DbiAc);
BENCHMARK(BM_DbiAcDc);
BENCHMARK(BM_DbiOpt);
BENCHMARK(BM_DbiOptFixed);
BENCHMARK(BM_Exhaustive);
BENCHMARK(BM_GateLevelOptFixed);

void BM_TrellisByBurstLength(benchmark::State& state) {
  const int bl = static_cast<int>(state.range(0));
  const BusConfig cfg{8, bl};
  auto src = workload::make_uniform_source(cfg, 13);
  std::vector<Burst> data;
  for (int i = 0; i < 256; ++i) data.push_back(src->next());
  const auto encoder = make_opt_fixed_encoder();
  const BusState boundary = BusState::all_ones(cfg);
  std::size_t i = 0;
  for (auto _ : state) {
    const EncodedBurst e = encoder->encode(data[i++ & 255], boundary);
    benchmark::DoNotOptimize(e.beat(0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrellisByBurstLength)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
