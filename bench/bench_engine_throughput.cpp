// Batch-engine throughput through the dbi::Session facade: bursts/sec
// per scheme for
//   (a) the per-burst virtual-call path (Encoder::encode + stats, the
//       route every sim loop took before the engine existed),
//   (b) a single-thread Session over the engine fast paths,
//   (c) a Session sharding interleaved lanes across a ShardPool.
// A second section benches the wide multi-group path (x16/x32/x64): the
// per-group scalar loop every wide caller used to need vs a wide
// Session in place over the beat-major bytes, single-thread and
// sharded per (lane, group). A third section measures the facade tax
// itself: Session::run vs the direct BatchEncoder entry points on the
// same payload (the only place the bench touches the engine directly —
// it is the overhead reference the CI gate holds Session against,
// acceptance <= 2%). Emits a single JSON object so the numbers can be
// tracked as a trajectory across commits (BENCH_*.json, gated by
// tools/bench_compare.py).
//
//   ./bench_engine_throughput [bursts-per-lane] [lanes] [workers]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "core/encoder.hpp"
#include "engine/batch_decoder.hpp"
#include "engine/batch_encoder.hpp"
#include "engine/shard_pool.hpp"
#include "select/scheme_policy.hpp"
#include "workload/corpus.hpp"
#include "workload/generators.hpp"
#include "workload/rng.hpp"

namespace {

using namespace dbi;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct SchemeReport {
  std::string scheme;
  double scalar_mbps = 0;   // mega-bursts per second, virtual path
  double engine_mbps = 0;   // single thread, Session over the engine
  double sharded_mbps = 0;  // Session across the pool
  double speedup = 0;       // session single-thread vs scalar
};

SchemeReport run_scheme(Scheme scheme, const CostWeights& w,
                        const std::vector<std::vector<Burst>>& lanes,
                        std::span<const std::uint8_t> interleaved,
                        engine::ShardPool& pool, int repeats) {
  const BusConfig cfg = lanes.front().front().config();
  const auto total_bursts = static_cast<double>(lanes.size()) *
                            static_cast<double>(lanes.front().size()) *
                            repeats;
  SchemeReport rep;

  // (a) scalar virtual-call path: encode + stats + state threading,
  // exactly what workload::Channel / sim loops did per burst.
  {
    const auto scalar = make_encoder(scheme, w);
    rep.scheme = std::string(scalar->name());
    std::int64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      for (const std::vector<Burst>& lane : lanes) {
        BusState state = BusState::all_ones(cfg);
        for (const Burst& b : lane) {
          const EncodedBurst e = scalar->encode(b, state);
          const BurstStats s = e.stats(state);
          sink += s.zeros + s.transitions;
          state = e.final_state();
        }
      }
    }
    const double dt = seconds_since(t0);
    if (sink == 42) std::puts("");  // defeat dead-code elimination
    rep.scalar_mbps = total_bursts / dt / 1e6;
  }

  // (b) single-thread Session per lane (the facade's Burst-span fast
  // path routes straight to the engine's lane kernel).
  {
    SessionSpec spec;
    spec.scheme = scheme;
    spec.geometry = Geometry::of(cfg);
    spec.weights = w;
    Session session(spec);
    std::int64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      for (const std::vector<Burst>& lane : lanes) {
        const auto source = make_burst_source(lane);
        const StreamStats s = session.run(*source);
        sink += s.zeros + s.transitions;
      }
    }
    const double dt = seconds_since(t0);
    if (sink == 42) std::puts("");
    rep.engine_mbps = total_bursts / dt / 1e6;
  }

  // (c) Session sharding the interleaved lane stream across the pool
  // (burst g -> lane g % L, each lane threading its own state).
  {
    SessionSpec spec;
    spec.scheme = scheme;
    spec.geometry = Geometry::of(cfg);
    spec.lanes = static_cast<int>(lanes.size());
    spec.weights = w;
    spec.pool = &pool;
    Session session(spec);
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      const auto source = make_packed_source(interleaved);
      (void)session.run(*source);
    }
    const double dt = seconds_since(t0);
    rep.sharded_mbps = total_bursts / dt / 1e6;
  }

  rep.speedup = rep.scalar_mbps > 0 ? rep.engine_mbps / rep.scalar_mbps : 0;
  return rep;
}

struct WideReport {
  int width = 0;
  std::string scheme;
  double scalar_mbps = 0;   // per-group scalar loop (the old fallback)
  double engine_mbps = 0;   // wide Session in place, single thread
  double sharded_mbps = 0;  // wide Session across the pool
  double speedup = 0;       // session single-thread vs scalar
};

WideReport run_wide(Scheme scheme, const CostWeights& w, int width,
                    int bursts, engine::ShardPool& pool, int repeats) {
  const WideBusConfig cfg{width, 8};
  const int groups = cfg.groups();
  WideReport rep;
  rep.width = width;
  const double total = static_cast<double>(bursts) * repeats;

  std::vector<std::uint8_t> bytes(
      static_cast<std::size_t>(bursts) *
      static_cast<std::size_t>(cfg.bytes_per_burst()));
  workload::Xoshiro256 rng(7 + static_cast<std::uint64_t>(width));
  for (std::uint8_t& b : bytes) b = static_cast<std::uint8_t>(rng.next());

  // (a) per-group scalar loop: materialised group Bursts through the
  // virtual encoder, the only wide route before the group kernels.
  {
    std::vector<std::vector<Burst>> group_bursts(
        static_cast<std::size_t>(groups));
    for (int g = 0; g < groups; ++g) {
      auto& lane = group_bursts[static_cast<std::size_t>(g)];
      lane.reserve(static_cast<std::size_t>(bursts));
      for (int i = 0; i < bursts; ++i) {
        Burst b(cfg.group_config(g));
        for (int t = 0; t < cfg.burst_length; ++t)
          b.set_word(t, bytes[static_cast<std::size_t>(i) *
                                  static_cast<std::size_t>(cfg.bytes_per_burst()) +
                              static_cast<std::size_t>(t * groups + g)]);
        lane.push_back(std::move(b));
      }
    }
    const auto scalar = make_encoder(scheme, w);
    rep.scheme = std::string(scalar->name());
    std::int64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      for (int g = 0; g < groups; ++g) {
        BusState state = BusState::all_ones(cfg.group_config(g));
        for (const Burst& b : group_bursts[static_cast<std::size_t>(g)]) {
          const EncodedBurst e = scalar->encode(b, state);
          const BurstStats s = e.stats(state);
          sink += s.zeros + s.transitions;
          state = e.final_state();
        }
      }
    }
    const double dt = seconds_since(t0);
    if (sink == 42) std::puts("");
    rep.scalar_mbps = total / dt / 1e6;
  }

  SessionSpec spec;
  spec.scheme = scheme;
  spec.geometry = Geometry::wide(width, 8);
  spec.weights = w;

  // (b) wide Session, single thread, in place over the packed bytes.
  {
    Session session(spec);
    std::int64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      const auto source = make_packed_source(bytes);
      const StreamStats s = session.run(*source);
      sink += s.zeros + s.transitions;
    }
    const double dt = seconds_since(t0);
    if (sink == 42) std::puts("");
    rep.engine_mbps = total / dt / 1e6;
  }

  // (c) wide Session sharded: one lane, groups units across the pool.
  {
    spec.pool = &pool;
    Session session(spec);
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      const auto source = make_packed_source(bytes);
      (void)session.run(*source);
    }
    const double dt = seconds_since(t0);
    rep.sharded_mbps = total / dt / 1e6;
  }

  rep.speedup = rep.scalar_mbps > 0 ? rep.engine_mbps / rep.scalar_mbps : 0;
  return rep;
}

// Receive side: the scalar receive path (materialised EncodedBursts,
// EncodedBurst::decode() per burst — what every consumer of encoded
// data did before the decode engine) vs BatchDecoder's packed kernels
// over the same transmitted stream. Encoding and wire materialisation
// happen outside the timed region. decode_vs_scalar carries a hard 4x
// floor for the fixed schemes at x8 and x64 (tools/bench_compare.py).
struct DecodeReport {
  std::string geometry;  // "x8" | "wide_x64"
  std::string scheme;
  double scalar_mbps = 0;  // mega-bursts decoded per second, scalar path
  double engine_mbps = 0;  // BatchDecoder packed kernel
  double ratio = 0;        // engine / scalar
};

DecodeReport run_decode_narrow(Scheme scheme, int bursts, int repeats) {
  const BusConfig cfg{8, 8};
  DecodeReport rep;
  rep.geometry = "x8";
  const double total = static_cast<double>(bursts) * repeats;
  const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());

  std::vector<std::uint8_t> payload(static_cast<std::size_t>(bursts) * bb);
  workload::Xoshiro256 rng(21);
  for (std::uint8_t& b : payload) b = static_cast<std::uint8_t>(rng.next());

  // Untimed: encode the stream and materialise the wire bytes.
  const engine::BatchEncoder engine(scheme);
  rep.scheme = std::string(engine.name());
  std::vector<engine::BurstResult> results(
      static_cast<std::size_t>(bursts));
  BusState state = BusState::all_ones(cfg);
  (void)engine.encode_packed(payload, cfg, state, results.data());
  std::vector<std::uint64_t> masks(static_cast<std::size_t>(bursts));
  for (int i = 0; i < bursts; ++i)
    masks[static_cast<std::size_t>(i)] =
        results[static_cast<std::size_t>(i)].invert_mask;
  const engine::BatchDecoder decoder;
  std::vector<std::uint8_t> tx(payload.size());
  decoder.apply_packed(payload, masks, cfg, tx);

  // (a) scalar receive path, on pre-materialised physical bursts.
  {
    std::vector<EncodedBurst> wire;
    wire.reserve(static_cast<std::size_t>(bursts));
    for (int i = 0; i < bursts; ++i) {
      std::vector<Beat> beats;
      beats.reserve(8);
      for (int t = 0; t < 8; ++t)
        beats.push_back(
            Beat{static_cast<Word>(tx[static_cast<std::size_t>(i) * bb +
                                      static_cast<std::size_t>(t)]),
                 ((masks[static_cast<std::size_t>(i)] >> t) & 1U) == 0});
      wire.emplace_back(cfg, std::move(beats));
    }
    std::int64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r)
      for (const EncodedBurst& e : wire) sink += e.decode().word(0);
    const double dt = seconds_since(t0);
    if (sink == 42) std::puts("");
    rep.scalar_mbps = total / dt / 1e6;
  }

  // (b) packed decode kernel.
  {
    std::vector<std::uint8_t> out(tx.size());
    std::int64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      decoder.decode_packed(tx, masks, cfg, out);
      sink += out[0];
    }
    const double dt = seconds_since(t0);
    if (sink == 42) std::puts("");
    rep.engine_mbps = total / dt / 1e6;
  }

  rep.ratio = rep.scalar_mbps > 0 ? rep.engine_mbps / rep.scalar_mbps : 0;
  return rep;
}

DecodeReport run_decode_wide(Scheme scheme, int bursts, int repeats) {
  const WideBusConfig cfg{64, 8};
  const int groups = cfg.groups();
  DecodeReport rep;
  rep.geometry = "wide_x64";
  const double total = static_cast<double>(bursts) * repeats;
  const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());

  std::vector<std::uint8_t> payload(static_cast<std::size_t>(bursts) * bb);
  workload::Xoshiro256 rng(23);
  for (std::uint8_t& b : payload) b = static_cast<std::uint8_t>(rng.next());

  const engine::BatchEncoder engine(scheme);
  rep.scheme = std::string(engine.name());
  std::vector<engine::BurstResult> results(
      static_cast<std::size_t>(bursts) * static_cast<std::size_t>(groups));
  std::vector<BusState> states(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g)
    states[static_cast<std::size_t>(g)] =
        BusState::all_ones(cfg.group_config(g));
  (void)engine.encode_packed_wide(payload, cfg, states, results.data());
  std::vector<std::uint64_t> masks(results.size());
  for (std::size_t i = 0; i < results.size(); ++i)
    masks[i] = results[i].invert_mask;
  const engine::BatchDecoder decoder;
  std::vector<std::uint8_t> tx(payload.size());
  decoder.apply_packed_wide(payload, masks, cfg, tx);

  // (a) scalar receive path: one EncodedBurst per (burst, group).
  {
    std::vector<EncodedBurst> wire;
    wire.reserve(results.size());
    for (int i = 0; i < bursts; ++i) {
      for (int g = 0; g < groups; ++g) {
        std::vector<Beat> beats;
        beats.reserve(8);
        const std::uint64_t m =
            masks[static_cast<std::size_t>(i * groups + g)];
        for (int t = 0; t < 8; ++t)
          beats.push_back(
              Beat{static_cast<Word>(
                       tx[static_cast<std::size_t>(i) * bb +
                          static_cast<std::size_t>(t * groups + g)]),
                   ((m >> t) & 1U) == 0});
        wire.emplace_back(cfg.group_config(g), std::move(beats));
      }
    }
    std::int64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r)
      for (const EncodedBurst& e : wire) sink += e.decode().word(0);
    const double dt = seconds_since(t0);
    if (sink == 42) std::puts("");
    // Normalise to whole wide bursts, like the engine side.
    rep.scalar_mbps = total / dt / 1e6;
  }

  // (b) packed wide decode kernel.
  {
    std::vector<std::uint8_t> out(tx.size());
    std::int64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      decoder.decode_packed_wide(tx, masks, cfg, out);
      sink += out[0];
    }
    const double dt = seconds_since(t0);
    if (sink == 42) std::puts("");
    rep.engine_mbps = total / dt / 1e6;
  }

  rep.ratio = rep.scalar_mbps > 0 ? rep.engine_mbps / rep.scalar_mbps : 0;
  return rep;
}

// Per-ISA kernel section: every registered kernel variant (the
// portable "swar" reference, AVX2, AVX-512, NEON where compiled in)
// measured on the four hot paths it can serve — narrow x8 fixed-scheme
// encode, wide x64 byte-group encode, x8 decode, wide x64 decode — all
// through the public set_kernel dispatch, same payload, same threaded
// states. Ratios are reported against the portable reference measured
// in the same process; tools/bench_compare.py holds the SIMD encode
// ratios to a hard 1.5x floor (and everything to >= 1x) on hardware
// that has the ISA, and records a skipped-isa status where CI does not.
struct KernelCaseReport {
  const engine::KernelVariant* variant = nullptr;
  bool available = false;
  double encode_x8 = 0;      // mega-bursts/s, narrow x8 BL8 ACDC
  double encode_wide_x64 = 0;  // mega-bursts/s, wide x64 BL8 ACDC
  double decode_x8 = 0;
  double decode_wide_x64 = 0;
};

struct KernelWorkload {
  BusConfig narrow_cfg{8, 8};
  WideBusConfig wide_cfg{64, 8};
  std::vector<std::uint8_t> narrow_payload;
  std::vector<std::uint8_t> wide_payload;
  std::vector<std::uint64_t> narrow_masks;
  std::vector<std::uint64_t> wide_masks;
  std::vector<std::uint8_t> narrow_tx;
  std::vector<std::uint8_t> wide_tx;

  explicit KernelWorkload(int bursts) {
    narrow_payload.resize(static_cast<std::size_t>(bursts) *
                          static_cast<std::size_t>(
                              narrow_cfg.bytes_per_burst()));
    wide_payload.resize(static_cast<std::size_t>(bursts) *
                        static_cast<std::size_t>(wide_cfg.bytes_per_burst()));
    workload::Xoshiro256 rng(31);
    for (std::uint8_t& b : narrow_payload)
      b = static_cast<std::uint8_t>(rng.next());
    for (std::uint8_t& b : wide_payload)
      b = static_cast<std::uint8_t>(rng.next());

    // Untimed: materialise masks and wire bytes once, via the portable
    // reference, for the decode measurements.
    const engine::BatchEncoder enc(Scheme::kAcDc);
    std::vector<engine::BurstResult> results(static_cast<std::size_t>(bursts));
    BusState state = BusState::all_ones(narrow_cfg);
    (void)enc.encode_packed(narrow_payload, narrow_cfg, state, results.data());
    for (const auto& r : results) narrow_masks.push_back(r.invert_mask);
    std::vector<engine::BurstResult> wide_results(
        static_cast<std::size_t>(bursts) *
        static_cast<std::size_t>(wide_cfg.groups()));
    std::vector<BusState> states(static_cast<std::size_t>(wide_cfg.groups()));
    for (int g = 0; g < wide_cfg.groups(); ++g)
      states[static_cast<std::size_t>(g)] =
          BusState::all_ones(wide_cfg.group_config(g));
    (void)enc.encode_packed_wide(wide_payload, wide_cfg, states,
                                 wide_results.data());
    for (const auto& r : wide_results) wide_masks.push_back(r.invert_mask);
    const engine::BatchDecoder dec;
    narrow_tx.resize(narrow_payload.size());
    dec.apply_packed(narrow_payload, narrow_masks, narrow_cfg, narrow_tx);
    wide_tx.resize(wide_payload.size());
    dec.apply_packed_wide(wide_payload, wide_masks, wide_cfg, wide_tx);
  }
};

KernelCaseReport run_kernel(const engine::KernelVariant& k,
                            const KernelWorkload& wl, int repeats) {
  KernelCaseReport rep;
  rep.variant = &k;
  rep.available = engine::isa_available(k.isa());
  if (!rep.available) return rep;

  const auto bursts = static_cast<double>(wl.narrow_masks.size());
  engine::BatchEncoder enc(Scheme::kAcDc);
  enc.set_kernel(k);
  engine::BatchDecoder dec;
  dec.set_kernel(k);

  // Best-of-3 trials per path: these ratios carry hard floors in the
  // CI gate, so the noise floor has to sit well under the tolerance.
  for (int trial = 0; trial < 3; ++trial) {
    {
      std::int64_t sink = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        BusState state = BusState::all_ones(wl.narrow_cfg);
        const BurstStats s =
            enc.encode_packed(wl.narrow_payload, wl.narrow_cfg, state);
        sink += s.zeros + s.transitions;
      }
      const double dt = seconds_since(t0);
      if (sink == 42) std::puts("");
      rep.encode_x8 = std::max(rep.encode_x8, bursts * repeats / dt / 1e6);
    }
    {
      std::vector<BusState> states(
          static_cast<std::size_t>(wl.wide_cfg.groups()));
      std::int64_t sink = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        for (int g = 0; g < wl.wide_cfg.groups(); ++g)
          states[static_cast<std::size_t>(g)] =
              BusState::all_ones(wl.wide_cfg.group_config(g));
        const BurstStats s =
            enc.encode_packed_wide(wl.wide_payload, wl.wide_cfg, states);
        sink += s.zeros + s.transitions;
      }
      const double dt = seconds_since(t0);
      if (sink == 42) std::puts("");
      rep.encode_wide_x64 =
          std::max(rep.encode_wide_x64, bursts * repeats / dt / 1e6);
    }
    {
      std::vector<std::uint8_t> out(wl.narrow_tx.size());
      std::int64_t sink = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        dec.decode_packed(wl.narrow_tx, wl.narrow_masks, wl.narrow_cfg, out);
        sink += out[0];
      }
      const double dt = seconds_since(t0);
      if (sink == 42) std::puts("");
      rep.decode_x8 = std::max(rep.decode_x8, bursts * repeats / dt / 1e6);
    }
    {
      std::vector<std::uint8_t> out(wl.wide_tx.size());
      std::int64_t sink = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        dec.decode_packed_wide(wl.wide_tx, wl.wide_masks, wl.wide_cfg, out);
        sink += out[0];
      }
      const double dt = seconds_since(t0);
      if (sink == 42) std::puts("");
      rep.decode_wide_x64 =
          std::max(rep.decode_wide_x64, bursts * repeats / dt / 1e6);
    }
  }
  return rep;
}

// Adaptive mixed-block selection on the "mixed" corpus scenario (the
// block-interleaved phase mix no single scheme wins): fixed-scheme
// sessions vs adaptive-exact / adaptive-predicted policies over the
// same packed payload, all with per-burst state reset so the energy
// totals are directly comparable. Each adaptive row reports a Pareto
// pair — energy saved vs the best fixed candidate, encode-cost
// multiplier vs the slowest ("floor") fixed candidate.
// tools/bench_compare.py holds exact mode to >= 1/len(candidates) of
// the fixed floor and predicted mode to >= 0.8x.
struct SelectReport {
  std::string label;
  double mbps = 0;    // mega-bursts per second through the session
  double energy = 0;  // alpha * transitions + beta * zeros, one pass
};

SelectReport run_select(const std::string& label, const SchemePolicy& policy,
                        std::span<const std::uint8_t> payload, int repeats) {
  SelectReport rep;
  rep.label = label;
  SessionSpec spec;
  spec.policy = policy;
  spec.geometry = Geometry::of(BusConfig{8, 8});
  spec.state_policy = StatePolicy::kResetPerBurst;
  Session session(spec);
  const double total =
      static_cast<double>(payload.size()) / 8.0 * repeats;
  for (int trial = 0; trial < 3; ++trial) {
    StreamStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      const auto source = make_packed_source(payload);
      stats = session.run(*source);
    }
    const double dt = seconds_since(t0);
    rep.mbps = std::max(rep.mbps, total / dt / 1e6);
    rep.energy =
        spec.weights.alpha * static_cast<double>(stats.transitions) +
        spec.weights.beta * static_cast<double>(stats.zeros);
  }
  return rep;
}

// Facade tax: Session::run vs the direct engine entry point on the
// same payload. These are the only direct BatchEncoder calls in the
// bench — they exist as the overhead reference the CI gate compares
// against (session_vs_engine must stay >= 0.98).
struct FacadeReport {
  std::string label;
  double engine_mbps = 0;
  double session_mbps = 0;
  double ratio = 0;  // session / engine
};

FacadeReport facade_narrow(const std::vector<Burst>& lane, int repeats) {
  FacadeReport rep;
  rep.label = "narrow_x8_lane/DBI AC";
  const BusConfig cfg = lane.front().config();
  const double total = static_cast<double>(lane.size()) * repeats;
  const engine::BatchEncoder batch(Scheme::kAc);
  SessionSpec spec;
  spec.scheme = Scheme::kAc;
  spec.geometry = Geometry::of(cfg);
  Session session(spec);

  // Alternating best-of-5 trials: a 2% gate needs the noise floor well
  // under 2%, which one short back-to-back measurement does not give.
  for (int trial = 0; trial < 5; ++trial) {
    {
      std::int64_t sink = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        BusState state = BusState::all_ones(cfg);
        const BurstStats s = batch.encode_lane(lane, state);
        sink += s.zeros + s.transitions;
      }
      const double dt = seconds_since(t0);
      if (sink == 42) std::puts("");
      rep.engine_mbps = std::max(rep.engine_mbps, total / dt / 1e6);
    }
    {
      std::int64_t sink = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        const auto source = make_burst_source(lane);
        const StreamStats s = session.run(*source);
        sink += s.zeros + s.transitions;
      }
      const double dt = seconds_since(t0);
      if (sink == 42) std::puts("");
      rep.session_mbps = std::max(rep.session_mbps, total / dt / 1e6);
    }
  }
  rep.ratio = rep.engine_mbps > 0 ? rep.session_mbps / rep.engine_mbps : 0;
  return rep;
}

FacadeReport facade_wide(std::span<const std::uint8_t> bytes, int width,
                         int repeats) {
  FacadeReport rep;
  rep.label = "wide_x" + std::to_string(width) + "_packed/DBI AC";
  const WideBusConfig cfg{width, 8};
  const auto bursts =
      static_cast<double>(bytes.size()) / cfg.bytes_per_burst();
  const double total = bursts * repeats;
  const engine::BatchEncoder batch(Scheme::kAc);
  SessionSpec spec;
  spec.scheme = Scheme::kAc;
  spec.geometry = Geometry::wide(width, 8);
  Session session(spec);

  for (int trial = 0; trial < 5; ++trial) {
    {
      std::vector<BusState> states(static_cast<std::size_t>(cfg.groups()));
      std::int64_t sink = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        for (int g = 0; g < cfg.groups(); ++g)
          states[static_cast<std::size_t>(g)] =
              BusState::all_ones(cfg.group_config(g));
        const BurstStats s = batch.encode_packed_wide(bytes, cfg, states);
        sink += s.zeros + s.transitions;
      }
      const double dt = seconds_since(t0);
      if (sink == 42) std::puts("");
      rep.engine_mbps = std::max(rep.engine_mbps, total / dt / 1e6);
    }
    {
      std::int64_t sink = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        const auto source = make_packed_source(bytes);
        const StreamStats s = session.run(*source);
        sink += s.zeros + s.transitions;
      }
      const double dt = seconds_since(t0);
      if (sink == 42) std::puts("");
      rep.session_mbps = std::max(rep.session_mbps, total / dt / 1e6);
    }
  }
  rep.ratio = rep.engine_mbps > 0 ? rep.session_mbps / rep.engine_mbps : 0;
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  const int bursts_per_lane = argc > 1 ? std::atoi(argv[1]) : 16384;
  const int lane_count = argc > 2 ? std::atoi(argv[2]) : 8;
  const int workers =
      argc > 3 ? std::atoi(argv[3]) : engine::ShardPool::default_workers();
  if (bursts_per_lane < 1 || lane_count < 1 || workers < 1) {
    std::fprintf(stderr,
                 "usage: %s [bursts-per-lane >= 1] [lanes >= 1] "
                 "[workers >= 1]\n",
                 argv[0]);
    return 2;
  }

  const BusConfig cfg{8, 8};
  std::vector<std::vector<Burst>> lanes;
  lanes.reserve(static_cast<std::size_t>(lane_count));
  for (int l = 0; l < lane_count; ++l) {
    auto src = workload::make_uniform_source(
        cfg, 100 + static_cast<std::uint64_t>(l));
    std::vector<Burst> lane;
    lane.reserve(static_cast<std::size_t>(bursts_per_lane));
    for (int i = 0; i < bursts_per_lane; ++i) lane.push_back(src->next());
    lanes.push_back(std::move(lane));
  }

  // The same bursts as one interleaved packed stream (burst g = lane
  // g % L's burst g / L), the layout the sharded Session consumes.
  std::vector<std::uint8_t> interleaved(
      static_cast<std::size_t>(lane_count) *
      static_cast<std::size_t>(bursts_per_lane) *
      static_cast<std::size_t>(cfg.bytes_per_burst()));
  {
    std::size_t pos = 0;
    for (int i = 0; i < bursts_per_lane; ++i)
      for (int l = 0; l < lane_count; ++l)
        for (int t = 0; t < cfg.burst_length; ++t)
          interleaved[pos++] = static_cast<std::uint8_t>(
              lanes[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)]
                  .word(t));
  }

  engine::ShardPool pool(workers);
  const CostWeights w{0.56, 0.44};

  struct Case {
    Scheme scheme;
    int repeats;
  };
  const Case cases[] = {
      {Scheme::kDc, 8},  {Scheme::kAc, 8},       {Scheme::kAcDc, 8},
      {Scheme::kOpt, 2}, {Scheme::kOptFixed, 2},
  };

  std::printf("{\n  \"bench\": \"engine_throughput\",\n");
  std::printf("  \"config\": {\"width\": %d, \"burst_length\": %d, "
              "\"lanes\": %d, \"bursts_per_lane\": %d, \"workers\": %d},\n",
              cfg.width, cfg.burst_length, lane_count, bursts_per_lane,
              workers);
  std::printf("  \"schemes\": [\n");
  bool first = true;
  for (const Case& c : cases) {
    const SchemeReport r =
        run_scheme(c.scheme, w, lanes, interleaved, pool, c.repeats);
    std::printf("%s    {\"scheme\": \"%s\", \"scalar_mbursts_per_s\": %.2f, "
                "\"engine_mbursts_per_s\": %.2f, "
                "\"sharded_mbursts_per_s\": %.2f, \"speedup\": %.2f}",
                first ? "" : ",\n", r.scheme.c_str(), r.scalar_mbps,
                r.engine_mbps, r.sharded_mbps, r.speedup);
    first = false;
  }
  std::printf("\n  ],\n");

  // Wide multi-group path: x16/x32/x64 interfaces, fixed schemes plus
  // the flat trellis. The acceptance floor is a >= 4x single-thread
  // speedup over the per-group scalar loop at widths 32 and 64.
  std::printf("  \"wide\": [\n");
  first = true;
  for (const int width : {16, 32, 64}) {
    for (const Scheme s :
         {Scheme::kDc, Scheme::kAc, Scheme::kAcDc, Scheme::kOptFixed}) {
      const WideReport r =
          run_wide(s, w, width, bursts_per_lane, pool, 2);
      std::printf(
          "%s    {\"width\": %d, \"scheme\": \"%s\", "
          "\"scalar_mbursts_per_s\": %.2f, \"engine_mbursts_per_s\": %.2f, "
          "\"sharded_mbursts_per_s\": %.2f, \"speedup\": %.2f}",
          first ? "" : ",\n", r.width, r.scheme.c_str(), r.scalar_mbps,
          r.engine_mbps, r.sharded_mbps, r.speedup);
      first = false;
    }
  }
  std::printf("\n  ],\n");

  // Receive side: scalar EncodedBurst::decode vs the packed decode
  // kernels. Gated at a hard 4x floor for the fixed schemes at x8 and
  // x64 by tools/bench_compare.py.
  std::printf("  \"decode\": [\n");
  first = true;
  for (const Scheme s : {Scheme::kDc, Scheme::kAc, Scheme::kAcDc}) {
    for (const bool wide : {false, true}) {
      const DecodeReport r =
          wide ? run_decode_wide(s, bursts_per_lane, 4)
               : run_decode_narrow(s, bursts_per_lane, 8);
      std::printf(
          "%s    {\"geometry\": \"%s\", \"scheme\": \"%s\", "
          "\"scalar_mbursts_per_s\": %.2f, \"engine_mbursts_per_s\": %.2f, "
          "\"decode_vs_scalar\": %.2f}",
          first ? "" : ",\n", r.geometry.c_str(), r.scheme.c_str(),
          r.scalar_mbps, r.engine_mbps, r.ratio);
      first = false;
    }
  }
  std::printf("\n  ],\n");

  // Per-ISA kernel variants vs the portable reference, same payload and
  // dispatch surface. Unavailable ISAs report available=false and zero
  // throughput; the gate records them as skipped-isa instead of
  // failing.
  {
    const KernelWorkload wl(bursts_per_lane);
    const int repeats = static_cast<int>(
        std::max<std::int64_t>(8, 2'000'000 / bursts_per_lane));
    KernelCaseReport swar_rep;
    std::vector<KernelCaseReport> reports;
    for (const engine::KernelVariant* k : engine::registered_kernels()) {
      reports.push_back(run_kernel(*k, wl, repeats));
      if (k == &engine::portable_kernel()) swar_rep = reports.back();
    }
    const auto ratio = [](double cur, double ref) {
      return ref > 0 ? cur / ref : 0.0;
    };
    std::printf("  \"kernels\": [\n");
    first = true;
    for (const KernelCaseReport& r : reports) {
      const bool selected = r.variant == &engine::default_kernel();
      std::printf(
          "%s    {\"kernel\": \"%s\", \"isa\": \"%s\", \"available\": %s, "
          "\"selected\": %s,\n"
          "     \"encode_x8_mbursts_per_s\": %.2f, "
          "\"encode_wide_x64_mbursts_per_s\": %.2f, "
          "\"decode_x8_mbursts_per_s\": %.2f, "
          "\"decode_wide_x64_mbursts_per_s\": %.2f,\n"
          "     \"encode_x8_vs_swar\": %.2f, "
          "\"encode_wide_x64_vs_swar\": %.2f, \"decode_x8_vs_swar\": %.2f, "
          "\"decode_wide_x64_vs_swar\": %.2f}",
          first ? "" : ",\n",
          std::string(r.variant->name()).c_str(),
          std::string(engine::isa_name(r.variant->isa())).c_str(),
          r.available ? "true" : "false", selected ? "true" : "false",
          r.encode_x8, r.encode_wide_x64, r.decode_x8, r.decode_wide_x64,
          ratio(r.encode_x8, swar_rep.encode_x8),
          ratio(r.encode_wide_x64, swar_rep.encode_wide_x64),
          ratio(r.decode_x8, swar_rep.decode_x8),
          ratio(r.decode_wide_x64, swar_rep.decode_wide_x64));
      first = false;
    }
    std::printf("\n  ],\n");
  }

  // Adaptive selection Pareto: fixed schemes vs exact / predicted
  // mixed-block policies on the "mixed" corpus payload. The ratio
  // metrics (vs_fixed_floor, energy_saved_ratio) are gated; the
  // absolute rows land in the trend artifact.
  {
    const int select_bursts = bursts_per_lane;
    const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());
    std::vector<std::uint8_t> mixed(static_cast<std::size_t>(select_bursts) *
                                    bb);
    {
      const auto src = workload::make_corpus_source("mixed", cfg, 77);
      std::size_t pos = 0;
      for (int i = 0; i < select_bursts; ++i) {
        const Burst b = src->next();
        for (int t = 0; t < cfg.burst_length; ++t)
          mixed[pos++] = static_cast<std::uint8_t>(b.word(t));
      }
    }
    const std::vector<Scheme> pair_set{Scheme::kDc, Scheme::kAc};
    const std::vector<Scheme> full_set{Scheme::kDc, Scheme::kAc,
                                       Scheme::kAcDc, Scheme::kOpt};
    const int fast_repeats = static_cast<int>(
        std::max<std::int64_t>(4, 1'000'000 / select_bursts));
    const int slow_repeats = static_cast<int>(
        std::max<std::int64_t>(2, 250'000 / select_bursts));

    std::vector<std::pair<Scheme, SelectReport>> fixed;
    for (const Scheme s : full_set)
      fixed.emplace_back(
          s, run_select("fixed/" + std::string(scheme_slug(s)),
                        SchemePolicy::fixed(s), mixed,
                        s == Scheme::kOpt ? slow_repeats : fast_repeats));
    const auto fixed_row = [&](Scheme s) -> const SelectReport& {
      for (const auto& [scheme, rep] : fixed)
        if (scheme == s) return rep;
      return fixed.front().second;
    };
    // The gate's reference: the slowest fixed-scheme row in the section
    // (the trellis) — the single-scheme throughput floor an adaptive
    // policy is allowed to trade against. The Pareto multiplier instead
    // compares against the fastest fixed candidate, the price actually
    // paid for the energy saving.
    double fixed_floor = fixed.front().second.mbps;
    for (const auto& [scheme, rep] : fixed)
      fixed_floor = std::min(fixed_floor, rep.mbps);
    const auto fastest_mbps = [&](const std::vector<Scheme>& cand) {
      double fastest = fixed_row(cand.front()).mbps;
      for (const Scheme s : cand)
        fastest = std::max(fastest, fixed_row(s).mbps);
      return fastest;
    };
    const auto best_energy = [&](const std::vector<Scheme>& cand) {
      double best = fixed_row(cand.front()).energy;
      for (const Scheme s : cand) best = std::min(best, fixed_row(s).energy);
      return best;
    };
    const auto slugs = [](const std::vector<Scheme>& cand) {
      std::string out;
      for (const Scheme s : cand) {
        if (!out.empty()) out += ',';
        out += scheme_slug(s);
      }
      return out;
    };

    std::printf("  \"select\": [\n");
    first = true;
    for (const auto& [scheme, r] : fixed) {
      std::printf("%s    {\"mode\": \"fixed\", \"label\": \"%s\", "
                  "\"mbursts_per_s\": %.2f, \"energy_cost\": %.0f}",
                  first ? "" : ",\n", r.label.c_str(), r.mbps, r.energy);
      first = false;
    }
    struct AdaptiveCase {
      std::string mode;
      std::string label;
      const std::vector<Scheme>& cand;
      SchemePolicy policy;
      int repeats;
    };
    const AdaptiveCase adaptive_cases[] = {
        {"exact", "exact/c2", pair_set,
         SchemePolicy::adaptive_exact(pair_set, CostModel::kEnergy),
         fast_repeats},
        {"exact", "exact/c4", full_set,
         SchemePolicy::adaptive_exact(full_set, CostModel::kEnergy),
         slow_repeats},
        {"predicted", "predicted/c4", full_set,
         SchemePolicy::adaptive_predicted(full_set, CostModel::kEnergy),
         slow_repeats},
    };
    for (const AdaptiveCase& c : adaptive_cases) {
      const SelectReport r = run_select(c.label, c.policy, mixed, c.repeats);
      const double best = best_energy(c.cand);
      const double fastest = fastest_mbps(c.cand);
      std::printf(
          "%s    {\"mode\": \"%s\", \"label\": \"%s\", "
          "\"candidates\": \"%s\", \"mbursts_per_s\": %.2f, "
          "\"energy_cost\": %.0f,\n"
          "     \"vs_fixed_floor\": %.3f, \"energy_saved_ratio\": %.4f, "
          "\"encode_cost_multiplier\": %.2f}",
          first ? "" : ",\n", c.mode.c_str(), c.label.c_str(),
          slugs(c.cand).c_str(), r.mbps, r.energy,
          fixed_floor > 0 ? r.mbps / fixed_floor : 0,
          r.energy > 0 ? best / r.energy : 0,
          r.mbps > 0 ? fastest / r.mbps : 0);
      first = false;
    }
    std::printf("\n  ],\n");
  }

  // Facade overhead: Session vs the direct engine entry points. Gated
  // at >= 0.98 (<= 2% tax) by tools/bench_compare.py.
  {
    std::vector<std::uint8_t> wide_bytes(
        static_cast<std::size_t>(bursts_per_lane) *
        static_cast<std::size_t>(WideBusConfig{64, 8}.bytes_per_burst()));
    workload::Xoshiro256 rng(11);
    for (std::uint8_t& b : wide_bytes)
      b = static_cast<std::uint8_t>(rng.next());
    const int narrow_repeats = static_cast<int>(
        std::max<std::int64_t>(16, 4'000'000 / bursts_per_lane));
    const int wide_repeats = static_cast<int>(
        std::max<std::int64_t>(8, 1'000'000 / bursts_per_lane));
    const FacadeReport reports[] = {
        facade_narrow(lanes.front(), narrow_repeats),
        facade_wide(wide_bytes, 64, wide_repeats),
    };
    std::printf("  \"facade\": [\n");
    first = true;
    for (const FacadeReport& r : reports) {
      std::printf("%s    {\"case\": \"%s\", \"engine_mbursts_per_s\": %.2f, "
                  "\"session_mbursts_per_s\": %.2f, "
                  "\"session_vs_engine\": %.3f}",
                  first ? "" : ",\n", r.label.c_str(), r.engine_mbps,
                  r.session_mbps, r.ratio);
      first = false;
    }
    std::printf("\n  ]\n}\n");
  }
  return 0;
}
