// Batch-engine throughput: bursts/sec per scheme for
//   (a) the per-burst virtual-call path (Encoder::encode + stats, the
//       route every sim loop took before the engine existed),
//   (b) the BatchEncoder single-thread fast paths,
//   (c) the BatchEncoder sharded across a ShardPool (one worker per
//       lane-group shard).
// A second section benches the wide multi-group path (x16/x32/x64): the
// per-group scalar loop every wide caller used to need vs
// encode_packed_wide in place over the beat-major bytes, single-thread
// and sharded per (lane, group). Emits a single JSON object so the
// numbers can be tracked as a trajectory across commits (BENCH_*.json,
// gated by tools/bench_compare.py).
//
//   ./bench_engine_throughput [bursts-per-lane] [lanes] [workers]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "engine/batch_encoder.hpp"
#include "engine/shard_pool.hpp"
#include "workload/generators.hpp"
#include "workload/rng.hpp"

namespace {

using namespace dbi;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct SchemeReport {
  std::string scheme;
  double scalar_mbps = 0;   // mega-bursts per second, virtual path
  double engine_mbps = 0;   // single thread, engine
  double sharded_mbps = 0;  // engine across the pool
  double speedup = 0;       // engine single-thread vs scalar
};

SchemeReport run_scheme(Scheme scheme, const CostWeights& w,
                        const std::vector<std::vector<Burst>>& lanes,
                        engine::ShardPool& pool, int repeats) {
  const BusConfig cfg = lanes.front().front().config();
  const auto total_bursts = static_cast<double>(lanes.size()) *
                            static_cast<double>(lanes.front().size()) *
                            repeats;
  SchemeReport rep;
  const engine::BatchEncoder batch(scheme, w);
  rep.scheme = std::string(batch.name());

  // (a) scalar virtual-call path: encode + stats + state threading,
  // exactly what workload::Channel / sim loops did per burst.
  {
    const auto scalar = make_encoder(scheme, w);
    std::int64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      for (const std::vector<Burst>& lane : lanes) {
        BusState state = BusState::all_ones(cfg);
        for (const Burst& b : lane) {
          const EncodedBurst e = scalar->encode(b, state);
          const BurstStats s = e.stats(state);
          sink += s.zeros + s.transitions;
          state = e.final_state();
        }
      }
    }
    const double dt = seconds_since(t0);
    if (sink == 42) std::puts("");  // defeat dead-code elimination
    rep.scalar_mbps = total_bursts / dt / 1e6;
  }

  // (b) engine, single thread.
  {
    std::int64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      for (const std::vector<Burst>& lane : lanes) {
        BusState state = BusState::all_ones(cfg);
        const BurstStats s = batch.encode_lane(lane, state);
        sink += s.zeros + s.transitions;
      }
    }
    const double dt = seconds_since(t0);
    if (sink == 42) std::puts("");
    rep.engine_mbps = total_bursts / dt / 1e6;
  }

  // (c) engine, lanes sharded across the pool.
  {
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      std::vector<BusState> states(lanes.size(), BusState::all_ones(cfg));
      std::vector<engine::LaneTask> tasks(lanes.size());
      for (std::size_t l = 0; l < lanes.size(); ++l)
        tasks[l] = engine::LaneTask{lanes[l], &states[l], nullptr, {}};
      batch.encode_lanes(tasks, &pool);
    }
    const double dt = seconds_since(t0);
    rep.sharded_mbps = total_bursts / dt / 1e6;
  }

  rep.speedup = rep.scalar_mbps > 0 ? rep.engine_mbps / rep.scalar_mbps : 0;
  return rep;
}

struct WideReport {
  int width = 0;
  std::string scheme;
  double scalar_mbps = 0;   // per-group scalar loop (the old fallback)
  double engine_mbps = 0;   // encode_packed_wide, single thread
  double sharded_mbps = 0;  // encode_wide_lanes across the pool
  double speedup = 0;       // engine single-thread vs scalar
};

WideReport run_wide(Scheme scheme, const CostWeights& w, int width,
                    int bursts, engine::ShardPool& pool, int repeats) {
  const WideBusConfig cfg{width, 8};
  const int groups = cfg.groups();
  WideReport rep;
  rep.width = width;
  const engine::BatchEncoder batch(scheme, w);
  rep.scheme = std::string(batch.name());
  const double total = static_cast<double>(bursts) * repeats;

  std::vector<std::uint8_t> bytes(
      static_cast<std::size_t>(bursts) *
      static_cast<std::size_t>(cfg.bytes_per_burst()));
  workload::Xoshiro256 rng(7 + static_cast<std::uint64_t>(width));
  for (std::uint8_t& b : bytes) b = static_cast<std::uint8_t>(rng.next());

  // (a) per-group scalar loop: materialised group Bursts through the
  // virtual encoder, the only wide route before the group kernels.
  {
    std::vector<std::vector<Burst>> group_bursts(
        static_cast<std::size_t>(groups));
    for (int g = 0; g < groups; ++g) {
      auto& lane = group_bursts[static_cast<std::size_t>(g)];
      lane.reserve(static_cast<std::size_t>(bursts));
      for (int i = 0; i < bursts; ++i) {
        Burst b(cfg.group_config(g));
        for (int t = 0; t < cfg.burst_length; ++t)
          b.set_word(t, bytes[static_cast<std::size_t>(i) *
                                  static_cast<std::size_t>(cfg.bytes_per_burst()) +
                              static_cast<std::size_t>(t * groups + g)]);
        lane.push_back(std::move(b));
      }
    }
    const auto scalar = make_encoder(scheme, w);
    std::int64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      for (int g = 0; g < groups; ++g) {
        BusState state = BusState::all_ones(cfg.group_config(g));
        for (const Burst& b : group_bursts[static_cast<std::size_t>(g)]) {
          const EncodedBurst e = scalar->encode(b, state);
          const BurstStats s = e.stats(state);
          sink += s.zeros + s.transitions;
          state = e.final_state();
        }
      }
    }
    const double dt = seconds_since(t0);
    if (sink == 42) std::puts("");
    rep.scalar_mbps = total / dt / 1e6;
  }

  // (b) wide engine, single thread, in place over the packed bytes.
  {
    std::vector<BusState> states(static_cast<std::size_t>(groups));
    std::int64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      for (int g = 0; g < groups; ++g)
        states[static_cast<std::size_t>(g)] =
            BusState::all_ones(cfg.group_config(g));
      const BurstStats s = batch.encode_packed_wide(bytes, cfg, states);
      sink += s.zeros + s.transitions;
    }
    const double dt = seconds_since(t0);
    if (sink == 42) std::puts("");
    rep.engine_mbps = total / dt / 1e6;
  }

  // (c) wide engine sharded: one lane, groups units across the pool.
  {
    std::vector<BusState> states(static_cast<std::size_t>(groups));
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      for (int g = 0; g < groups; ++g)
        states[static_cast<std::size_t>(g)] =
            BusState::all_ones(cfg.group_config(g));
      engine::WideLaneTask task{bytes, states, nullptr, {}};
      batch.encode_wide_lanes(cfg, std::span<engine::WideLaneTask>(&task, 1),
                              &pool);
    }
    const double dt = seconds_since(t0);
    rep.sharded_mbps = total / dt / 1e6;
  }

  rep.speedup = rep.scalar_mbps > 0 ? rep.engine_mbps / rep.scalar_mbps : 0;
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  const int bursts_per_lane = argc > 1 ? std::atoi(argv[1]) : 16384;
  const int lane_count = argc > 2 ? std::atoi(argv[2]) : 8;
  const int workers =
      argc > 3 ? std::atoi(argv[3]) : engine::ShardPool::default_workers();
  if (bursts_per_lane < 1 || lane_count < 1 || workers < 1) {
    std::fprintf(stderr,
                 "usage: %s [bursts-per-lane >= 1] [lanes >= 1] "
                 "[workers >= 1]\n",
                 argv[0]);
    return 2;
  }

  const BusConfig cfg{8, 8};
  std::vector<std::vector<Burst>> lanes;
  lanes.reserve(static_cast<std::size_t>(lane_count));
  for (int l = 0; l < lane_count; ++l) {
    auto src = workload::make_uniform_source(
        cfg, 100 + static_cast<std::uint64_t>(l));
    std::vector<Burst> lane;
    lane.reserve(static_cast<std::size_t>(bursts_per_lane));
    for (int i = 0; i < bursts_per_lane; ++i) lane.push_back(src->next());
    lanes.push_back(std::move(lane));
  }

  engine::ShardPool pool(workers);
  const CostWeights w{0.56, 0.44};

  struct Case {
    Scheme scheme;
    int repeats;
  };
  const Case cases[] = {
      {Scheme::kDc, 8},  {Scheme::kAc, 8},       {Scheme::kAcDc, 8},
      {Scheme::kOpt, 2}, {Scheme::kOptFixed, 2},
  };

  std::printf("{\n  \"bench\": \"engine_throughput\",\n");
  std::printf("  \"config\": {\"width\": %d, \"burst_length\": %d, "
              "\"lanes\": %d, \"bursts_per_lane\": %d, \"workers\": %d},\n",
              cfg.width, cfg.burst_length, lane_count, bursts_per_lane,
              workers);
  std::printf("  \"schemes\": [\n");
  bool first = true;
  for (const Case& c : cases) {
    const SchemeReport r = run_scheme(c.scheme, w, lanes, pool, c.repeats);
    std::printf("%s    {\"scheme\": \"%s\", \"scalar_mbursts_per_s\": %.2f, "
                "\"engine_mbursts_per_s\": %.2f, "
                "\"sharded_mbursts_per_s\": %.2f, \"speedup\": %.2f}",
                first ? "" : ",\n", r.scheme.c_str(), r.scalar_mbps,
                r.engine_mbps, r.sharded_mbps, r.speedup);
    first = false;
  }
  std::printf("\n  ],\n");

  // Wide multi-group path: x16/x32/x64 interfaces, fixed schemes plus
  // the flat trellis. The acceptance floor is a >= 4x single-thread
  // speedup over the per-group scalar loop at widths 32 and 64.
  std::printf("  \"wide\": [\n");
  first = true;
  for (const int width : {16, 32, 64}) {
    for (const Scheme s :
         {Scheme::kDc, Scheme::kAc, Scheme::kAcDc, Scheme::kOptFixed}) {
      const WideReport r =
          run_wide(s, w, width, bursts_per_lane, pool, 2);
      std::printf(
          "%s    {\"width\": %d, \"scheme\": \"%s\", "
          "\"scalar_mbursts_per_s\": %.2f, \"engine_mbursts_per_s\": %.2f, "
          "\"sharded_mbursts_per_s\": %.2f, \"speedup\": %.2f}",
          first ? "" : ",\n", r.width, r.scheme.c_str(), r.scalar_mbps,
          r.engine_mbps, r.sharded_mbps, r.speedup);
      first = false;
    }
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
