// Extension studies built on the reproduction substrate — each one
// substantiates a remark the paper makes but does not evaluate:
//   A. Decoder cost (Conclusions: reads could adopt DBI "without
//      changing existing memories" — because decode is a XOR rank).
//   B. Stuck-at fault robustness of the OPT (Fixed) netlist
//      (Section II: wrong analog decisions are "unlikely to cause
//      application errors").
//   C. Decision-noise energy loss (same remark, quantified at the
//      behavioural level).
//   D. DBI granularity (Section II, Narayanan et al.: more invert
//      wires buy finer control — at the cost of more lines).
#include <iostream>
#include <sstream>
#include <vector>

#include "hw/fault_study.hpp"
#include "hw/hw_encoder.hpp"
#include "hw/synthesis.hpp"
#include "netlist/export.hpp"
#include "netlist/report.hpp"
#include "netlist/tech.hpp"
#include "power/interface_energy.hpp"
#include "sim/experiments.hpp"
#include "sim/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace dbi;

void decoder_study(const workload::BurstTrace& trace) {
  std::cout << "--- A. Receiver-side decoder cost ---\n\n";
  hw::HwEncoder encoder(hw::build_dbi_opt_fixed());
  const BusState boundary = BusState::all_ones(trace.config());

  // Decoder activity: replay the encoder outputs through the decoder.
  const hw::HwDesign decoder = hw::build_dbi_decoder();
  netlist::Simulator dec_sim(decoder.net);
  for (std::size_t i = 0; i < 300; ++i) {
    const EncodedBurst e = encoder.encode(trace[i], boundary);
    for (int b = 0; b < e.length(); ++b) {
      dec_sim.set_input_bus(decoder.byte_in[static_cast<std::size_t>(b)],
                            e.beat(b).dq);
      dec_sim.set_input(decoder.dbi_out[static_cast<std::size_t>(b)],
                        e.beat(b).dbi);
    }
    dec_sim.eval();
    dec_sim.accumulate();
  }
  const auto tech = netlist::TechnologyModel::generic_32nm();
  const auto enc_report = netlist::synthesize(
      "DBI OPT (Fixed) encoder", encoder.design().net, tech,
      encoder.simulator(), encoder.design().pipeline);
  const auto dec_report = netlist::synthesize(
      "DBI decoder", decoder.net, tech, dec_sim, decoder.pipeline);

  sim::Table table({"block", "cells", "area [um2]", "E/burst @1.5GHz [pJ]"});
  for (const auto& r : {enc_report, dec_report})
    table.add_row({r.design, std::to_string(r.cells),
                   sim::fmt(r.area_um2, 0),
                   sim::fmt(r.energy_per_burst_at(1.5e9) * 1e12, 3)});
  std::cout << table;
  std::cout << "decoder/encoder area ratio: "
            << sim::fmt(dec_report.area_um2 / enc_report.area_um2, 3)
            << "  (decode is one XOR rank — the asymmetry behind the "
               "paper's read-path remark)\n\n";
}

void fault_study(const workload::BurstTrace& trace) {
  std::cout << "--- B. Stuck-at faults in the OPT (Fixed) netlist ---\n\n";
  hw::FaultStudyOptions options;
  options.max_sites = 300;
  options.bursts_per_fault = 30;
  const hw::FaultStudyResult r = hw::run_fault_study(trace, options);
  sim::Table table({"effect", "sites", "share"});
  const auto share = [&](int n) {
    return sim::fmt(100.0 * n / r.sites_tested, 1) + " %";
  };
  table.add_row({"benign (outputs unchanged)", std::to_string(r.benign),
                 share(r.benign)});
  table.add_row({"suboptimal (decodable, costlier)",
                 std::to_string(r.suboptimal), share(r.suboptimal)});
  table.add_row({"corrupting (data loss)", std::to_string(r.corrupting),
                 share(r.corrupting)});
  std::cout << table;
  std::cout << "worst mean cost increase among suboptimal faults: "
            << sim::fmt(100.0 * r.worst_cost_increase, 1) << " %\n";
  std::cout << "PAPER (Section II): wrong encoding decisions only waste "
               "energy; data corruption\nrequires a fault in the thin "
               "output/DBI stage — the sites classified corrupting.\n\n";
}

void noise_study(const workload::BurstTrace& trace) {
  std::cout << "--- C. Analog decision noise (behavioural) ---\n\n";
  const power::PodParams pod = power::PodParams::pod135(3e-12, 14e9);
  const CostWeights w = power::weights_from_pod(pod);
  const std::vector<double> rates = {0.0, 1e-4, 1e-3, 1e-2, 0.05, 0.1};
  const auto sweep = sim::noise_sweep(trace, w, rates, 7);
  sim::Table table({"decision error rate", "mean cost [pJ]",
                    "loss vs clean"});
  for (const auto& p : sweep)
    table.add_row({sim::fmt(p.error_rate, 4),
                   sim::fmt(p.mean_cost * 1e12, 4),
                   sim::fmt(100.0 * p.loss_vs_clean, 3) + " %"});
  std::cout << table;
  std::cout << "(every output remains decodable by construction; a 1e-3 "
               "comparator error rate\ncosts well under a percent of "
               "energy — the analog-implementation argument.)\n\n";
}

void granularity_study(const workload::BurstTrace& trace) {
  std::cout << "--- D. DBI granularity (invert wires per 8-bit lane) "
               "---\n\n";
  const CostWeights w{0.5, 0.5};
  const std::vector<int> groups = {1, 2, 4, 8};
  const auto sweep = sim::granularity_sweep(trace, w, groups);
  sim::Table table({"DBI wires", "total lines", "mean cost",
                    "vs 1-wire DBI"});
  for (const auto& p : sweep)
    table.add_row({std::to_string(p.groups), std::to_string(p.total_lines),
                   sim::fmt(p.mean_cost, 3), sim::fmt(p.vs_single_dbi, 3)});
  std::cout << table;
  std::cout << "(finer inversion control must carry the extra wires' own "
               "zeros/edges: the\nclassic enhanced-bus-invert trade-off "
               "the paper cites via Narayanan et al.)\n\n";
}

void verilog_demo() {
  std::cout << "--- E. Structural Verilog export (first lines of the DBI "
               "DC encoder) ---\n\n";
  std::ostringstream os;
  netlist::write_verilog(os, hw::build_dbi_dc().net, "dbi_dc_encoder");
  const std::string v = os.str();
  std::istringstream lines(v);
  std::string line;
  for (int i = 0; i < 12 && std::getline(lines, line); ++i)
    std::cout << "  " << line << '\n';
  std::cout << "  ...\n  (" << v.size()
            << " bytes total; every Table I design exports the same way "
               "for reuse in a real flow)\n";
}

}  // namespace

int main() {
  const BusConfig cfg{8, 8};
  auto src = workload::make_uniform_source(cfg, 20180319);
  const auto trace = workload::BurstTrace::collect(*src, 2000);

  std::cout << "=== Extension studies ===\n\n";
  decoder_study(trace);
  fault_study(trace);
  noise_study(trace);
  granularity_study(trace);
  verilog_demo();
  return 0;
}
