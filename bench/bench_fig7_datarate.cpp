// Fig. 7 reproduction: interface energy per burst, normalised to
// unencoded (RAW) transmission, as the per-pin data rate sweeps from
// 0.5 to 20 Gbps. POD135 (GDDR5X) with 3 pF total load; DBI OPT is
// re-optimised at every rate with the true (alpha, beta) energy
// coefficients of Eqs. (1)-(3).
//
// PAPER: DBI DC is best below ~3.8 Gbps; OPT (Fixed) overtakes it
// there and peaks around 14 Gbps; DBI AC needs far more than 20 Gbps
// to beat OPT (Fixed); POD12 (DDR4) results are almost identical.
#include <algorithm>
#include <iostream>
#include <vector>

#include "sim/experiments.hpp"
#include "sim/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace dbi;

  const BusConfig cfg{8, 8};
  auto src = workload::make_uniform_source(cfg, 20180319);
  const auto trace = workload::BurstTrace::collect(*src, 10000);

  std::vector<double> rates;
  for (double g = 0.5; g <= 20.0 + 1e-9; g += 0.5) rates.push_back(g);

  for (const char* preset : {"POD135", "POD12"}) {
    const power::PodParams pod = (std::string_view(preset) == "POD135")
                                     ? power::PodParams::pod135(3e-12, 12e9)
                                     : power::PodParams::pod12(3e-12, 12e9);
    std::cout << "=== Fig. 7: normalised interface energy vs data rate ("
              << preset << ", 3 pF) ===\n\n";
    const auto sweep = sim::datarate_sweep(pod, trace, rates);
    sim::Table table({"rate [Gbps]", "RAW [pJ]", "DC", "AC", "OPT",
                      "OPT (Fixed)"});
    for (const auto& p : sweep)
      table.add_row({sim::fmt(p.gbps, 1), sim::fmt(p.raw_pj, 1),
                     sim::fmt(p.dc, 4), sim::fmt(p.ac, 4),
                     sim::fmt(p.opt, 4), sim::fmt(p.opt_fixed, 4)});
    std::cout << table;

    double crossover = 0.0, best_rate = 0.0, best_gain = -1e9;
    for (const auto& p : sweep) {
      if (crossover == 0.0 && p.opt_fixed < p.dc) crossover = p.gbps;
      // Gain of OPT (Fixed) over the best conventional scheme — the
      // quantity whose peak the paper locates around 14 Gbps.
      const double best_conv = std::min(p.dc, p.ac);
      const double gain = (best_conv - p.opt_fixed) / best_conv;
      if (gain > best_gain) {
        best_gain = gain;
        best_rate = p.gbps;
      }
    }
    std::cout << "\nOPT (Fixed) overtakes DC at " << sim::fmt(crossover, 1)
              << " Gbps   PAPER: ~3.8 Gbps\n";
    std::cout << "OPT (Fixed) peak gain vs best conventional: "
              << sim::fmt(100.0 * best_gain, 2) << " % at "
              << sim::fmt(best_rate, 1)
              << " Gbps   PAPER: peak gain around 14 Gbps\n\n";
  }
  return 0;
}
