// Fig. 2 reproduction: the worked shortest-path example of Section III.
// Prints the encodings DBI DC / AC / OPT find for the paper's 8-byte
// burst, the trellis path metrics, and the full Pareto frontier.
//
// PAPER: DC -> 26 zeros / 42 transitions (cost 68 at alpha=beta=1)
// PAPER: AC -> 43 zeros / 22 transitions (cost 65)
// PAPER: OPT -> 28 zeros + 24 transitions = cost 52
// PAPER: several balanced Pareto-optimal encodings invisible to DC/AC
#include <cstdio>
#include <iostream>

#include "core/byte_utils.hpp"
#include "core/encoder.hpp"
#include "core/pareto.hpp"
#include "core/trellis.hpp"
#include "sim/experiments.hpp"
#include "sim/table.hpp"

int main() {
  using namespace dbi;

  const Burst data = sim::paper_example_burst();
  const BusState boundary = BusState::all_ones(data.config());
  const CostWeights unit{1.0, 1.0};

  std::cout << "=== Fig. 2: optimal DBI encoding as a shortest path ===\n\n";
  std::cout << "Burst (beat: non-inverted / inverted):\n";
  for (int i = 0; i < data.length(); ++i) {
    const Word w = data.word(i);
    std::printf("  byte %d: 0x%02X / 0x%02X\n", i, w,
                invert(w, data.config()));
  }

  sim::Table table({"scheme", "zeros (DC)", "transitions (AC)",
                    "cost a=b=1", "paper"});
  const struct {
    Scheme scheme;
    const char* paper;
  } rows[] = {
      {Scheme::kDc, "26 / 42, cost 68"},
      {Scheme::kAc, "43 / 22, cost 65"},
      {Scheme::kOpt, "28 / 24, cost 52"},
      {Scheme::kOptFixed, "cost 52"},
      {Scheme::kExhaustive, "cost 52 (reference)"},
  };
  for (const auto& r : rows) {
    const auto e = make_encoder(r.scheme, unit)->encode(data, boundary);
    table.add_row({std::string(scheme_name(r.scheme)),
                   std::to_string(e.zeros()),
                   std::to_string(e.transitions(boundary)),
                   sim::fmt(encoded_cost(e, boundary, unit), 0), r.paper});
  }
  std::cout << "\n" << table;

  // The hardware-visible path metrics (cost / cost_inv per block).
  const auto trellis = solve_trellis(data, boundary, IntCostWeights{1, 1});
  std::cout << "\nTrellis path metrics (Fig. 5 signals cost(i+1) / "
               "cost_inv(i+1)):\n";
  sim::Table metrics({"after byte", "cost", "cost_inv", "pred", "pred_inv"});
  for (std::size_t i = 0; i < trellis.node_costs.size(); ++i)
    metrics.add_row({std::to_string(i),
                     std::to_string(trellis.node_costs[i][0]),
                     std::to_string(trellis.node_costs[i][1]),
                     std::to_string(trellis.pred[i][0]),
                     std::to_string(trellis.pred[i][1])});
  std::cout << metrics;
  std::cout << "PAPER: start-edge weights 8 (non-inverted) / 10 (inverted); "
               "optimal total 52\n";

  std::cout << "\nPareto frontier (every achievable zeros/transitions "
               "trade-off):\n";
  sim::Table frontier_table({"zeros", "transitions", "invert mask"});
  const auto frontier = pareto_frontier(data, boundary);
  for (const ParetoPoint& p : frontier) {
    char mask[8];
    std::snprintf(mask, sizeof mask, "0x%02X",
                  static_cast<unsigned>(p.invert_mask));
    frontier_table.add_row({std::to_string(p.zeros),
                            std::to_string(p.transitions), mask});
  }
  std::cout << frontier_table;
  std::cout << "PAPER: frontier spans DC's (26,42) to AC's (43,22) with "
               "balanced points\n       (e.g. 28/24) in between that "
               "neither conventional scheme can find.\n";
  return 0;
}
