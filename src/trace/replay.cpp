#include "trace/replay.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace dbi::trace {

namespace {

/// Sub-block size (bursts) for int64 accumulation: BurstStats counts in
/// int, and (width+1) * burst_length <= 33 * 64 line-beats per burst,
/// so 64K bursts stay far inside int range per encode_packed call.
constexpr std::size_t kAccumBlockBursts = 1 << 16;

}  // namespace

void ReplayOptions::validate() const {
  if (lanes < 1 || lanes > 65536)
    throw std::invalid_argument("ReplayOptions: lanes must be in [1, 65536]");
}

ReplayPipeline::ReplayPipeline(const TraceReader& reader,
                               const engine::BatchEncoder& encoder,
                               ReplayOptions options)
    : reader_(reader), encoder_(encoder), opt_(std::move(options)) {
  opt_.validate();
  lanes_.resize(static_cast<std::size_t>(opt_.lanes));
}

void ReplayPipeline::encode_lane_slice(int lane, const ChunkInfo& info,
                                       std::span<const std::uint8_t> payload) {
  const dbi::BusConfig& cfg = reader_.config();
  const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());
  const std::size_t count = info.burst_count;
  const int L = opt_.lanes;
  LaneScratch& ls = lanes_[static_cast<std::size_t>(lane)];
  const bool want_results = static_cast<bool>(opt_.on_results);

  // First chunk-local index owned by this lane (global index % L == lane).
  const auto base_mod = static_cast<std::size_t>(
      info.first_burst % static_cast<std::int64_t>(L));
  const std::size_t j0 =
      (static_cast<std::size_t>(lane) + static_cast<std::size_t>(L) -
       base_mod) %
      static_cast<std::size_t>(L);
  if (j0 >= count) return;
  const std::size_t mine = (count - j0 + static_cast<std::size_t>(L) - 1) /
                           static_cast<std::size_t>(L);

  std::span<const std::uint8_t> bytes;
  if (L == 1) {
    // Single-lane replay consumes the chunk view in place — for
    // uncompressed chunks that is the mmap page itself (zero copy).
    bytes = payload;
  } else {
    ls.bytes.resize(mine * bb);
    std::uint8_t* dst = ls.bytes.data();
    const std::uint8_t* src = payload.data();
    for (std::size_t j = j0; j < count; j += static_cast<std::size_t>(L)) {
      std::memcpy(dst, src + j * bb, bb);
      dst += bb;
    }
    bytes = ls.bytes;
  }
  if (want_results) {
    ls.results.resize(mine);
    ls.positions.clear();
    for (std::size_t j = j0; j < count; j += static_cast<std::size_t>(L))
      ls.positions.push_back(j);
  }

  if (opt_.reset_state_per_burst) {
    for (std::size_t k = 0; k < mine; ++k) {
      ls.state = dbi::BusState::all_ones(cfg);
      const dbi::BurstStats s = encoder_.encode_packed(
          bytes.subspan(k * bb, bb), cfg, ls.state,
          want_results ? &ls.results[k] : nullptr);
      ls.zeros += s.zeros;
      ls.transitions += s.transitions;
    }
  } else {
    for (std::size_t k0 = 0; k0 < mine; k0 += kAccumBlockBursts) {
      const std::size_t block = std::min(kAccumBlockBursts, mine - k0);
      const dbi::BurstStats s = encoder_.encode_packed(
          bytes.subspan(k0 * bb, block * bb), cfg, ls.state,
          want_results ? ls.results.data() + k0 : nullptr);
      ls.zeros += s.zeros;
      ls.transitions += s.transitions;
    }
  }

  if (want_results)
    for (std::size_t k = 0; k < mine; ++k)
      chunk_results_[ls.positions[k]] = ls.results[k];
}

void ReplayPipeline::encode_chunk(const ChunkInfo& info,
                                  std::span<const std::uint8_t> payload) {
  if (opt_.on_results) chunk_results_.resize(info.burst_count);
  auto run_lane = [this, &info, payload](int lane) {
    encode_lane_slice(lane, info, payload);
  };
  if (opt_.pool) {
    opt_.pool->run(opt_.lanes, run_lane);
  } else {
    for (int l = 0; l < opt_.lanes; ++l) run_lane(l);
  }
  if (opt_.on_results) opt_.on_results(info.first_burst, chunk_results_);
}

ReplayTotals ReplayPipeline::run() {
  const dbi::BusConfig& cfg = reader_.config();
  for (LaneScratch& ls : lanes_) {
    ls.state = dbi::BusState::all_ones(cfg);
    ls.zeros = 0;
    ls.transitions = 0;
  }

  const std::size_t n = reader_.chunk_count();
  if (!opt_.double_buffer || n <= 1) {
    std::vector<std::uint8_t> scratch;
    for (std::size_t c = 0; c < n; ++c)
      encode_chunk(reader_.chunk(c), reader_.chunk_payload(c, scratch));
  } else {
    // Two-slot pipeline: the producer prepares chunk c+1 (RLE
    // decompression / paging-in of the mapped view) while this thread
    // and the pool encode chunk c.
    struct Slot {
      std::vector<std::uint8_t> storage;
      std::span<const std::uint8_t> payload;
      bool ready = false;
    };
    Slot slots[2];
    std::mutex mu;
    std::condition_variable cv;
    bool abort = false;
    std::exception_ptr producer_error;

    std::thread producer([&] {
      try {
        for (std::size_t c = 0; c < n; ++c) {
          Slot& s = slots[c % 2];
          {
            std::unique_lock<std::mutex> lk(mu);
            cv.wait(lk, [&] { return !s.ready || abort; });
            if (abort) return;
          }
          s.payload = reader_.chunk_payload(c, s.storage);
          if (!reader_.chunk(c).compressed()) {
            // Touch one byte per page so the consumer never stalls on
            // a major fault mid-encode.
            volatile std::uint8_t sink = 0;
            for (std::size_t off = 0; off < s.payload.size(); off += 4096)
              sink = sink ^ s.payload[off];
          }
          {
            std::lock_guard<std::mutex> lk(mu);
            s.ready = true;
          }
          cv.notify_all();
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(mu);
          producer_error = std::current_exception();
          abort = true;
        }
        cv.notify_all();
      }
    });

    try {
      for (std::size_t c = 0; c < n; ++c) {
        Slot& s = slots[c % 2];
        {
          std::unique_lock<std::mutex> lk(mu);
          cv.wait(lk, [&] { return s.ready || abort; });
          if (abort) break;
        }
        encode_chunk(reader_.chunk(c), s.payload);
        {
          std::lock_guard<std::mutex> lk(mu);
          s.ready = false;
        }
        cv.notify_all();
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(mu);
        abort = true;
      }
      cv.notify_all();
      producer.join();
      throw;
    }
    producer.join();
    if (producer_error) std::rethrow_exception(producer_error);
  }

  ReplayTotals totals;
  totals.bursts = reader_.bursts();
  for (const LaneScratch& ls : lanes_) {
    totals.zeros += ls.zeros;
    totals.transitions += ls.transitions;
  }
  return totals;
}

ReplayTotals replay_trace(const TraceReader& reader,
                          const engine::BatchEncoder& encoder,
                          const ReplayOptions& options) {
  ReplayPipeline pipeline(reader, encoder, options);
  return pipeline.run();
}

}  // namespace dbi::trace
