#include "trace/replay.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace dbi::trace {

namespace {

/// Sub-block size (bursts) for int64 accumulation: BurstStats counts in
/// int, and (width+1) * burst_length <= 33 * 64 line-beats per burst,
/// so 64K bursts stay far inside int range per encode_packed call.
constexpr std::size_t kAccumBlockBursts = 1 << 16;

}  // namespace

void ReplayOptions::validate() const {
  if (lanes < 1 || lanes > 65536)
    throw std::invalid_argument("ReplayOptions: lanes must be in [1, 65536]");
}

ReplayPipeline::ReplayPipeline(const TraceReader& reader,
                               const engine::BatchEncoder& encoder,
                               ReplayOptions options)
    : reader_(reader), encoder_(encoder), opt_(std::move(options)) {
  opt_.validate();
  groups_ = reader_.wide() ? reader_.header().wide_config().groups() : 1;
  units_.resize(static_cast<std::size_t>(opt_.lanes) *
                static_cast<std::size_t>(groups_));
}

void ReplayPipeline::encode_unit_slice(int unit, const ChunkInfo& info,
                                       std::span<const std::uint8_t> payload) {
  const bool wide = groups_ > 1;
  const dbi::WideBusConfig wcfg =
      wide ? reader_.header().wide_config() : dbi::WideBusConfig{};
  // Geometry of the slice this unit encodes: its byte group for wide
  // traces, the whole burst otherwise.
  const dbi::BusConfig cfg =
      wide ? wcfg.group_config(unit % groups_) : reader_.config();
  const int lane = unit / groups_;
  const int group = unit % groups_;
  const auto bb = static_cast<std::size_t>(reader_.header().bytes_per_burst());
  const std::size_t count = info.burst_count;
  const int L = opt_.lanes;
  UnitScratch& us = units_[static_cast<std::size_t>(unit)];
  const bool want_results = static_cast<bool>(opt_.on_results);

  // First chunk-local index owned by this lane (global index % L == lane).
  const auto base_mod = static_cast<std::size_t>(
      info.first_burst % static_cast<std::int64_t>(L));
  const std::size_t j0 =
      (static_cast<std::size_t>(lane) + static_cast<std::size_t>(L) -
       base_mod) %
      static_cast<std::size_t>(L);
  if (j0 >= count) return;
  const std::size_t mine = (count - j0 + static_cast<std::size_t>(L) - 1) /
                           static_cast<std::size_t>(L);

  // A wide unit encodes one byte per beat once its slice is gathered.
  const auto slice_bb =
      wide ? static_cast<std::size_t>(wcfg.burst_length) : bb;

  std::span<const std::uint8_t> bytes;
  bool in_place_wide = false;
  if (L == 1) {
    // Single-lane replay consumes the chunk view in place — for
    // uncompressed chunks that is the mmap page itself (zero copy; wide
    // groups read their bytes at stride groups_).
    bytes = payload;
    in_place_wide = wide;
  } else if (!wide) {
    us.bytes.resize(mine * bb);
    std::uint8_t* dst = us.bytes.data();
    const std::uint8_t* src = payload.data();
    for (std::size_t j = j0; j < count; j += static_cast<std::size_t>(L)) {
      std::memcpy(dst, src + j * bb, bb);
      dst += bb;
    }
    bytes = us.bytes;
  } else {
    // Gather only this unit's group slice (1 byte per beat), so the L
    // x groups units never copy a byte twice.
    us.bytes.resize(mine * slice_bb);
    std::uint8_t* dst = us.bytes.data();
    const std::uint8_t* src = payload.data();
    const auto stride = static_cast<std::size_t>(groups_);
    for (std::size_t j = j0; j < count; j += static_cast<std::size_t>(L)) {
      const std::uint8_t* burst = src + j * bb + group;
      for (std::size_t t = 0; t < slice_bb; ++t) dst[t] = burst[t * stride];
      dst += slice_bb;
    }
    bytes = us.bytes;
  }
  if (want_results) {
    us.results.resize(mine);
    us.positions.clear();
    for (std::size_t j = j0; j < count; j += static_cast<std::size_t>(L))
      us.positions.push_back(j);
  }

  auto encode_block = [&](std::span<const std::uint8_t> block_bytes,
                          engine::BurstResult* results) {
    return in_place_wide
               ? encoder_.encode_packed_group(block_bytes, wcfg, group,
                                              us.state, results)
               : encoder_.encode_packed(block_bytes, cfg, us.state, results);
  };
  const std::size_t step = in_place_wide ? bb : slice_bb;

  if (opt_.reset_state_per_burst) {
    for (std::size_t k = 0; k < mine; ++k) {
      us.state = dbi::BusState::all_ones(cfg);
      const dbi::BurstStats s =
          encode_block(bytes.subspan(k * step, step),
                       want_results ? &us.results[k] : nullptr);
      us.zeros += s.zeros;
      us.transitions += s.transitions;
    }
  } else {
    for (std::size_t k0 = 0; k0 < mine; k0 += kAccumBlockBursts) {
      const std::size_t block = std::min(kAccumBlockBursts, mine - k0);
      const dbi::BurstStats s =
          encode_block(bytes.subspan(k0 * step, block * step),
                       want_results ? us.results.data() + k0 : nullptr);
      us.zeros += s.zeros;
      us.transitions += s.transitions;
    }
  }

  if (want_results) {
    const auto g = static_cast<std::size_t>(groups_);
    for (std::size_t k = 0; k < mine; ++k)
      chunk_results_[us.positions[k] * g + static_cast<std::size_t>(group)] =
          us.results[k];
  }
}

void ReplayPipeline::encode_chunk(const ChunkInfo& info,
                                  std::span<const std::uint8_t> payload) {
  if (opt_.on_results)
    chunk_results_.resize(static_cast<std::size_t>(info.burst_count) *
                          static_cast<std::size_t>(groups_));
  const auto units = static_cast<int>(units_.size());
  auto run_unit = [this, &info, payload](int unit) {
    encode_unit_slice(unit, info, payload);
  };
  if (opt_.pool) {
    opt_.pool->run(units, run_unit);
  } else {
    for (int u = 0; u < units; ++u) run_unit(u);
  }
  if (opt_.on_results) opt_.on_results(info.first_burst, chunk_results_);
}

ReplayTotals ReplayPipeline::run() {
  for (std::size_t u = 0; u < units_.size(); ++u) {
    UnitScratch& us = units_[u];
    const dbi::BusConfig cfg =
        groups_ > 1 ? reader_.header().wide_config().group_config(
                          static_cast<int>(u) % groups_)
                    : reader_.config();
    us.state = dbi::BusState::all_ones(cfg);
    us.zeros = 0;
    us.transitions = 0;
  }

  const std::size_t n = reader_.chunk_count();
  if (!opt_.double_buffer || n <= 1) {
    std::vector<std::uint8_t> scratch;
    for (std::size_t c = 0; c < n; ++c)
      encode_chunk(reader_.chunk(c), reader_.chunk_payload(c, scratch));
  } else {
    // Two-slot pipeline: the producer prepares chunk c+1 (RLE
    // decompression / paging-in of the mapped view) while this thread
    // and the pool encode chunk c.
    struct Slot {
      std::vector<std::uint8_t> storage;
      std::span<const std::uint8_t> payload;
      bool ready = false;
    };
    Slot slots[2];
    std::mutex mu;
    std::condition_variable cv;
    bool abort = false;
    std::exception_ptr producer_error;

    std::thread producer([&] {
      try {
        for (std::size_t c = 0; c < n; ++c) {
          Slot& s = slots[c % 2];
          {
            std::unique_lock<std::mutex> lk(mu);
            cv.wait(lk, [&] { return !s.ready || abort; });
            if (abort) return;
          }
          s.payload = reader_.chunk_payload(c, s.storage);
          if (!reader_.chunk(c).compressed()) {
            // Touch one byte per page so the consumer never stalls on
            // a major fault mid-encode.
            volatile std::uint8_t sink = 0;
            for (std::size_t off = 0; off < s.payload.size(); off += 4096)
              sink = sink ^ s.payload[off];
          }
          {
            std::lock_guard<std::mutex> lk(mu);
            s.ready = true;
          }
          cv.notify_all();
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(mu);
          producer_error = std::current_exception();
          abort = true;
        }
        cv.notify_all();
      }
    });

    try {
      for (std::size_t c = 0; c < n; ++c) {
        Slot& s = slots[c % 2];
        {
          std::unique_lock<std::mutex> lk(mu);
          cv.wait(lk, [&] { return s.ready || abort; });
          if (abort) break;
        }
        encode_chunk(reader_.chunk(c), s.payload);
        {
          std::lock_guard<std::mutex> lk(mu);
          s.ready = false;
        }
        cv.notify_all();
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(mu);
        abort = true;
      }
      cv.notify_all();
      producer.join();
      throw;
    }
    producer.join();
    if (producer_error) std::rethrow_exception(producer_error);
  }

  ReplayTotals totals;
  totals.bursts = reader_.bursts();
  for (const UnitScratch& us : units_) {
    totals.zeros += us.zeros;
    totals.transitions += us.transitions;
  }
  return totals;
}

ReplayTotals replay_trace(const TraceReader& reader,
                          const engine::BatchEncoder& encoder,
                          const ReplayOptions& options) {
  ReplayPipeline pipeline(reader, encoder, options);
  return pipeline.run();
}

}  // namespace dbi::trace
