#include "trace/replay.hpp"

#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/observer.hpp"

namespace dbi::trace {

namespace {

engine::StreamEncodeOptions stream_options(const ReplayOptions& opt) {
  engine::StreamEncodeOptions so;
  so.lanes = opt.lanes;
  so.reset_state_per_burst = opt.reset_state_per_burst;
  so.pool = opt.pool;
  so.obs = opt.obs;
  return so;
}

engine::StreamEncoder make_stream(const TraceReader& reader,
                                  const engine::BatchEncoder& encoder,
                                  const ReplayOptions& opt) {
  if (reader.encoded())
    throw std::invalid_argument(
        "replay: the trace holds an already-encoded (transmitted) stream; "
        "decode it first or verify it instead of re-encoding it");
  return reader.wide()
             ? engine::StreamEncoder(encoder, reader.header().wide_config(),
                                     stream_options(opt))
             : engine::StreamEncoder(encoder, reader.config(),
                                     stream_options(opt));
}

}  // namespace

void ReplayOptions::validate() const {
  if (lanes < 1 || lanes > 65536)
    throw std::invalid_argument("ReplayOptions: lanes must be in [1, 65536]");
}

ReplayPipeline::ReplayPipeline(const TraceReader& reader,
                               const engine::BatchEncoder& encoder,
                               ReplayOptions options)
    : reader_(reader),
      opt_(std::move(options)),
      stream_((opt_.validate(), make_stream(reader, encoder, opt_))) {}

void ReplayPipeline::encode_chunk(const ChunkInfo& info,
                                  std::span<const std::uint8_t> payload) {
  const std::span<const engine::BurstResult> results = stream_.encode_chunk(
      info.first_burst, payload, info.burst_count,
      /*collect_results=*/static_cast<bool>(opt_.on_results));
  if (opt_.on_results) opt_.on_results(info.first_burst, results);
}

ReplayTotals ReplayPipeline::run() {
  stream_.reset();

  const std::size_t n = reader_.chunk_count();
  if (!opt_.double_buffer || n <= 1) {
    std::vector<std::uint8_t> scratch;
    for (std::size_t c = 0; c < n; ++c)
      encode_chunk(reader_.chunk(c), reader_.chunk_payload(c, scratch));
  } else {
    // Two-slot pipeline: the producer prepares chunk c+1 (RLE
    // decompression / paging-in of the mapped view) while this thread
    // and the pool encode chunk c.
    struct Slot {
      std::vector<std::uint8_t> storage;
      std::span<const std::uint8_t> payload;
      bool ready = false;
    };
    Slot slots[2];
    std::mutex mu;
    std::condition_variable cv;
    bool abort = false;
    std::exception_ptr producer_error;

    std::thread producer([&] {
      try {
        for (std::size_t c = 0; c < n; ++c) {
          Slot& s = slots[c % 2];
          {
            std::unique_lock<std::mutex> lk(mu);
            // Producer starved of a free slot: encoding is the
            // bottleneck for this chunk.
            if (opt_.obs && s.ready && !abort)
              opt_.obs->replay_producer_starved.inc();
            cv.wait(lk, [&] { return !s.ready || abort; });
            if (abort) return;
          }
          {
            obs::ScopedSpan prep_span(opt_.obs, obs::Stage::kChunkPrepare,
                                      static_cast<std::int64_t>(c),
                                      reader_.chunk(c).compressed() ? 1 : 0);
            s.payload = reader_.chunk_payload(c, s.storage);
            if (!reader_.chunk(c).compressed()) {
              // Touch one byte per page so the consumer never stalls on
              // a major fault mid-encode.
              volatile std::uint8_t sink = 0;
              for (std::size_t off = 0; off < s.payload.size(); off += 4096)
                sink = sink ^ s.payload[off];
            }
          }
          {
            std::lock_guard<std::mutex> lk(mu);
            s.ready = true;
          }
          cv.notify_all();
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(mu);
          producer_error = std::current_exception();
          abort = true;
        }
        cv.notify_all();
      }
    });

    try {
      for (std::size_t c = 0; c < n; ++c) {
        Slot& s = slots[c % 2];
        {
          std::unique_lock<std::mutex> lk(mu);
          // Consumer starved of a prepared chunk: preparation (I/O,
          // RLE expand) is the bottleneck for this chunk.
          if (opt_.obs && !s.ready && !abort)
            opt_.obs->replay_consumer_starved.inc();
          cv.wait(lk, [&] { return s.ready || abort; });
          if (abort) break;
        }
        encode_chunk(reader_.chunk(c), s.payload);
        {
          std::lock_guard<std::mutex> lk(mu);
          s.ready = false;
        }
        cv.notify_all();
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(mu);
        abort = true;
      }
      cv.notify_all();
      producer.join();
      throw;
    }
    producer.join();
    if (producer_error) std::rethrow_exception(producer_error);
  }

  ReplayTotals totals;
  totals.bursts = reader_.bursts();
  totals.zeros = stream_.zeros();
  totals.transitions = stream_.transitions();
  return totals;
}

ReplayTotals replay_trace(const TraceReader& reader,
                          const engine::BatchEncoder& encoder,
                          const ReplayOptions& options) {
  ReplayPipeline pipeline(reader, encoder, options);
  return pipeline.run();
}

}  // namespace dbi::trace
