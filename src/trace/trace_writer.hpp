// TraceWriter: buffered, chunked writer for the binary trace format v2.
//
// Bursts are appended one at a time (or as flat word buffers), packed
// into fixed-capacity chunks, optionally zero-run RLE compressed per
// chunk (only kept when it actually shrinks the payload), and flushed
// with a trailing stats footer + CRC on finish(). Payload statistics
// (zeros / raw transitions with the paper's all-ones boundary) are
// accumulated on the fly in 64-bit counters, so recording a trace also
// yields its workload::TraceStats without a second pass.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/burst.hpp"
#include "core/encoder.hpp"
#include "core/types.hpp"
#include "trace/format.hpp"
#include "workload/trace.hpp"

namespace dbi::trace {

struct TraceWriterOptions {
  std::uint32_t bursts_per_chunk = kDefaultBurstsPerChunk;
  bool compress = true;  ///< try zero-run RLE per chunk, keep if smaller
  /// Encoded trace: payload chunks hold the transmitted (post-DBI)
  /// stream and every payload chunk is followed by a mask-stream chunk
  /// with the per-(burst, group) inversion decisions. Bursts are
  /// appended with write_encoded() only.
  bool encoded = false;
  /// Encode metadata stamped into header bytes 17..20 (encoded traces
  /// only): 1 + Scheme enum value, lane interleave and state policy the
  /// masks were produced with, so decode / verify are self-describing.
  /// enc_scheme == 0 leaves the metadata "not recorded".
  std::uint8_t enc_scheme = 0;
  std::uint16_t enc_lanes = 0;
  std::uint8_t enc_policy = 0;
  /// Mixed-scheme trace (format v3): the encode scheme varies per
  /// chunk. Requires encoded; the writer stamps version 3 and the
  /// enc_scheme = kEncSchemeMixed sentinel, and every chunk must be
  /// preceded by a set_chunk_scheme() call so its tag is known. Leave
  /// false for single-scheme traces, which stay byte-identical v2.
  bool per_chunk_schemes = false;

  void validate() const;
};

class TraceWriter {
 public:
  /// Writes to a caller-owned stream (must outlive the writer).
  TraceWriter(std::ostream& os, const dbi::BusConfig& cfg,
              const TraceWriterOptions& opt = {});

  /// Opens `path` for binary writing; throws TraceError on failure.
  TraceWriter(const std::string& path, const dbi::BusConfig& cfg,
              const TraceWriterOptions& opt = {});

  /// Wide multi-group trace (one DBI line per byte group, beat-major
  /// packed payload). Bursts are appended with write_packed(); the
  /// Burst-based write paths do not apply to wide geometry and throw.
  TraceWriter(std::ostream& os, const dbi::WideBusConfig& wide,
              const TraceWriterOptions& opt = {});
  TraceWriter(const std::string& path, const dbi::WideBusConfig& wide,
              const TraceWriterOptions& opt = {});

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Finishes implicitly, swallowing errors; call finish() yourself to
  /// see them.
  ~TraceWriter();

  [[nodiscard]] const dbi::BusConfig& config() const { return cfg_; }
  [[nodiscard]] bool wide() const { return wide_mode_; }
  /// Only meaningful in wide mode.
  [[nodiscard]] const dbi::WideBusConfig& wide_config() const { return wcfg_; }

  void write(const dbi::Burst& burst);

  /// Flat-buffer variant: `words` holds consecutive bursts back to back
  /// (a multiple of burst_length words, each inside cfg.dq_mask()).
  void write_words(std::span<const dbi::Word> words);

  /// Packed-byte variant, the only write path wide traces take:
  /// `bytes` holds consecutive bursts in the on-disk payload layout
  /// (bytes_per_burst() bytes each — little-endian beat words for
  /// single-group traces, beat-major group bytes for wide ones).
  /// Remainder-group / out-of-mask beats throw with the burst and beat
  /// index.
  void write_packed(std::span<const std::uint8_t> bytes);

  /// Encoded-trace write path (TraceWriterOptions::encoded only):
  /// `bytes` is the packed TRANSMITTED stream in the same layout as
  /// write_packed, and `masks` holds one u64 inversion mask per
  /// (burst, group) pair, burst-major / group-minor — the engine's
  /// BurstResult order. Mask bits at or beyond burst_length throw.
  void write_encoded(std::span<const std::uint8_t> bytes,
                     std::span<const std::uint64_t> masks);

  /// Mixed-scheme traces only (TraceWriterOptions::per_chunk_schemes):
  /// declares the scheme of the bursts appended from here on. Changing
  /// the scheme flushes the open chunk, so every on-disk chunk is
  /// scheme-uniform and carries one v3 tag. Must be called before the
  /// first burst; throws on single-scheme writers.
  void set_chunk_scheme(dbi::Scheme scheme);

  [[nodiscard]] bool per_chunk_schemes() const {
    return opt_.per_chunk_schemes;
  }

  /// Flushes the pending chunk and writes the footer. Idempotent; no
  /// bursts can be appended afterwards.
  void finish();

  /// Payload statistics of everything written so far.
  [[nodiscard]] const workload::TraceStats& stats() const { return stats_; }
  [[nodiscard]] std::int64_t bursts_written() const { return stats_.bursts; }

 private:
  void init();
  void emit(std::span<const std::uint8_t> bytes);
  void flush_chunk();
  void emit_chunk(std::uint32_t bursts, std::uint32_t kind_flags,
                  std::span<const std::uint8_t> raw);
  void account(std::span<const dbi::Word> words);
  void account_packed_wide(std::span<const std::uint8_t> burst);
  void append_packed(std::span<const std::uint8_t> bytes,
                     const std::uint64_t* masks);
  [[nodiscard]] std::size_t bytes_per_burst() const;
  [[nodiscard]] int group_count() const {
    return wide_mode_ ? wcfg_.groups() : 1;
  }

  dbi::BusConfig cfg_;
  dbi::WideBusConfig wcfg_{};
  bool wide_mode_ = false;
  TraceWriterOptions opt_;
  std::unique_ptr<std::ofstream> owned_os_;
  std::ostream* os_;

  std::vector<std::uint8_t> pending_;  // packed payload of open chunk
  std::vector<std::uint8_t> pending_masks_;  // mask stream (encoded mode)
  std::uint32_t pending_bursts_ = 0;
  /// Scheme of the open chunk (mixed mode; nullopt until declared).
  std::optional<dbi::Scheme> chunk_scheme_;
  std::vector<std::uint8_t> scratch_;  // chunk header / RLE staging
  Crc32 crc_;
  workload::TraceStats stats_;
  std::uint64_t chunks_ = 0;
  bool finished_ = false;
};

}  // namespace dbi::trace
