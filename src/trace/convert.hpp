// Lossless conversion between the v1 line-oriented hex text format
// (workload::BurstTrace) and the binary trace format v2. Both
// directions stream burst by burst, so converting never materialises
// the whole trace in RAM.
#pragma once

#include <iosfwd>

#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "workload/trace.hpp"

namespace dbi::trace {

/// Streams a v1 text trace ("dbi-trace v1 <w> <bl>" + hex lines) into a
/// v2 binary trace on `binary`, taking the geometry from the text
/// header. Returns the payload statistics of the converted trace.
/// Malformed text throws with the same line-level diagnostics as
/// workload::BurstTrace::load.
workload::TraceStats text_to_binary(std::istream& text, std::ostream& binary,
                                    const TraceWriterOptions& opt = {});

/// Streams every burst of `reader` out as v1 text.
void binary_to_text(const TraceReader& reader, std::ostream& text);

}  // namespace dbi::trace
