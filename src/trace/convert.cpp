#include "trace/convert.hpp"

#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace dbi::trace {

workload::TraceStats text_to_binary(std::istream& text, std::ostream& binary,
                                    const TraceWriterOptions& opt) {
  const dbi::BusConfig cfg = workload::parse_text_trace_header(text);
  TraceWriter writer(binary, cfg, opt);
  std::string line;
  std::vector<dbi::Word> words;
  std::int64_t line_no = 1;
  while (std::getline(text, line)) {
    ++line_no;
    if (workload::parse_text_trace_line(line, cfg, line_no, words))
      writer.write_words(words);
  }
  writer.finish();
  return writer.stats();
}

void binary_to_text(const TraceReader& reader, std::ostream& text) {
  if (reader.wide())
    throw TraceError(
        "convert: the v1 text format is single-group only; wide "
        "multi-group traces replay through the engine instead "
        "(dbitool replay)");
  if (reader.encoded())
    throw TraceError(
        "convert: encoded traces hold the transmitted stream; decode "
        "first (dbitool decode)");
  const dbi::BusConfig& cfg = reader.config();
  text << "dbi-trace v1 " << cfg.width << ' ' << cfg.burst_length << '\n';
  text << std::hex;
  std::vector<std::uint8_t> scratch;
  std::vector<dbi::Word> words(static_cast<std::size_t>(cfg.burst_length));
  for (std::size_t c = 0; c < reader.chunk_count(); ++c) {
    const auto payload = reader.chunk_payload(c, scratch);
    for (std::size_t j = 0; j < reader.chunk(c).burst_count; ++j) {
      reader.unpack_burst_at(payload, j, words);
      for (std::size_t t = 0; t < words.size(); ++t) {
        if (t) text << ' ';
        text << words[t];
      }
      text << '\n';
    }
  }
  text << std::dec;
  if (!text) throw TraceError("convert: text write failed");
}

}  // namespace dbi::trace
