#include "trace/trace_writer.hpp"

#include <algorithm>
#include <bit>

namespace dbi::trace {
namespace {

/// push_back-based append of the 4-byte magics: gcc 12's
/// -Wstringop-overflow misfires on vector::insert from small constant
/// arrays (same family as the -Wrestrict workaround in netlist/export).
void put_magic(std::vector<std::uint8_t>& out, const std::uint8_t (&m)[4]) {
  for (const std::uint8_t b : m) out.push_back(b);
}

}  // namespace

void TraceWriterOptions::validate() const {
  if (bursts_per_chunk < 1)
    throw std::invalid_argument("TraceWriterOptions: bursts_per_chunk >= 1");
  if (!encoded && (enc_scheme != 0 || enc_lanes != 0 || enc_policy != 0))
    throw std::invalid_argument(
        "TraceWriterOptions: encode metadata (enc_scheme / enc_lanes / "
        "enc_policy) requires encoded = true");
  if (!encoded && per_chunk_schemes)
    throw std::invalid_argument(
        "TraceWriterOptions: per_chunk_schemes (mixed-scheme v3 trace) "
        "requires encoded = true");
  if (per_chunk_schemes) {
    if (enc_scheme != 0 && enc_scheme != kEncSchemeMixed)
      throw std::invalid_argument(
          "TraceWriterOptions: a mixed-scheme trace records its schemes "
          "per chunk; enc_scheme must be left 0 (the writer stamps the "
          "0xFF sentinel)");
  } else if (enc_scheme > 7) {
    throw std::invalid_argument(
        "TraceWriterOptions: enc_scheme must be 0 (not recorded) or "
        "1 + Scheme enum value (<= 7)");
  }
  if (enc_policy > 1)
    throw std::invalid_argument(
        "TraceWriterOptions: enc_policy must be 0 (threaded) or 1 (reset)");
}

TraceWriter::TraceWriter(std::ostream& os, const dbi::BusConfig& cfg,
                         const TraceWriterOptions& opt)
    : cfg_(cfg), opt_(opt), os_(&os) {
  init();
}

TraceWriter::TraceWriter(const std::string& path, const dbi::BusConfig& cfg,
                         const TraceWriterOptions& opt)
    : cfg_(cfg),
      opt_(opt),
      owned_os_(std::make_unique<std::ofstream>(
          path, std::ios::binary | std::ios::trunc)),
      os_(owned_os_.get()) {
  if (!*owned_os_)
    throw TraceError("TraceWriter: cannot open " + path + " for writing");
  init();
}

TraceWriter::TraceWriter(std::ostream& os, const dbi::WideBusConfig& wide,
                         const TraceWriterOptions& opt)
    : cfg_{wide.width, wide.burst_length},
      wcfg_(wide),
      wide_mode_(true),
      opt_(opt),
      os_(&os) {
  init();
}

TraceWriter::TraceWriter(const std::string& path,
                         const dbi::WideBusConfig& wide,
                         const TraceWriterOptions& opt)
    : cfg_{wide.width, wide.burst_length},
      wcfg_(wide),
      wide_mode_(true),
      opt_(opt),
      owned_os_(std::make_unique<std::ofstream>(
          path, std::ios::binary | std::ios::trunc)),
      os_(owned_os_.get()) {
  if (!*owned_os_)
    throw TraceError("TraceWriter: cannot open " + path + " for writing");
  init();
}

std::size_t TraceWriter::bytes_per_burst() const {
  return static_cast<std::size_t>(wide_mode_ ? wcfg_.bytes_per_burst()
                                             : cfg_.bytes_per_burst());
}

void TraceWriter::init() {
  if (wide_mode_) {
    wcfg_.validate();
  } else {
    cfg_.validate();
  }
  opt_.validate();
  // The chunk header stores the payload size as a u32; compression only
  // ever shrinks a kept payload, so bounding the raw chunk bounds both.
  const std::uint64_t max_chunk_bytes =
      static_cast<std::uint64_t>(opt_.bursts_per_chunk) *
      std::max<std::uint64_t>(
          static_cast<std::uint64_t>(bytes_per_burst()),
          opt_.encoded ? static_cast<std::uint64_t>(group_count()) *
                             kMaskBytesPerBurst
                       : 0);
  if (max_chunk_bytes > 0xFFFFFFFFULL)
    throw std::invalid_argument(
        "TraceWriter: bursts_per_chunk * bytes_per_burst exceeds the u32 "
        "chunk payload size field");
  pending_.reserve(static_cast<std::size_t>(opt_.bursts_per_chunk) *
                   bytes_per_burst());

  std::vector<std::uint8_t> header;
  put_magic(header, kFileMagic);
  // Version 3 marks ONLY mixed-scheme traces; everything else stays a
  // byte-identical version-2 file.
  header.push_back(opt_.per_chunk_schemes ? kFormatVersionMixed
                                          : kFormatVersion);
  header.push_back(kLittleEndianTag);
  put_le(header, static_cast<std::uint64_t>(cfg_.width), 2);
  put_le(header, static_cast<std::uint64_t>(cfg_.burst_length), 2);
  put_le(header,
         (opt_.compress ? kFileFlagCompressed : 0) |
             (opt_.encoded ? kFileFlagEncoded : 0),
         2);
  put_le(header, opt_.bursts_per_chunk, 4);
  // Byte 16: DBI group count; single-group files keep the legacy
  // reserved zero, so they stay byte-identical to pre-wide writers.
  header.push_back(wide_mode_
                       ? static_cast<std::uint8_t>(wcfg_.groups())
                       : std::uint8_t{0});
  // Bytes 17..20: encode metadata (zero for plain payload traces, so
  // those stay byte-identical to pre-encoded writers). Mixed traces
  // stamp the per-chunk sentinel.
  header.push_back(opt_.per_chunk_schemes ? kEncSchemeMixed
                                          : opt_.enc_scheme);
  put_le(header, opt_.enc_lanes, 2);
  header.push_back(opt_.enc_policy);
  header.resize(kHeaderBytes, 0);
  emit(header);
}

TraceWriter::~TraceWriter() {
  try {
    finish();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
    // Destructors must not throw; call finish() explicitly to observe
    // write errors.
  }
}

void TraceWriter::emit(std::span<const std::uint8_t> bytes) {
  crc_.update(bytes);
  os_->write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!*os_) throw TraceError("TraceWriter: write failed");
}

void TraceWriter::account(std::span<const dbi::Word> words) {
  stats_.bursts += 1;
  stats_.payload_bits += cfg_.width * cfg_.burst_length;
  dbi::Word last = cfg_.dq_mask();  // the paper's all-ones boundary
  for (const dbi::Word w : words) {
    stats_.payload_zeros += cfg_.width - std::popcount(w);
    stats_.raw_transitions += std::popcount((last ^ w) & cfg_.dq_mask());
    last = w;
  }
}

void TraceWriter::write(const dbi::Burst& burst) {
  if (!(burst.config() == cfg_))
    throw std::invalid_argument("TraceWriter: burst geometry mismatch");
  write_words(burst.words());
}

void TraceWriter::account_packed_wide(std::span<const std::uint8_t> burst) {
  stats_.bursts += 1;
  stats_.payload_bits += wcfg_.width * wcfg_.burst_length;
  const int groups = wcfg_.groups();
  for (int g = 0; g < groups; ++g) {
    const int gw = wcfg_.group_width(g);
    const std::uint32_t gmask = wcfg_.group_mask(g);
    std::uint32_t last = gmask;  // the paper's all-ones boundary
    for (int t = 0; t < wcfg_.burst_length; ++t) {
      const std::uint32_t b =
          burst[static_cast<std::size_t>(t * groups + g)];
      stats_.payload_zeros += gw - std::popcount(b);
      stats_.raw_transitions += std::popcount((last ^ b) & gmask);
      last = b;
    }
  }
}

void TraceWriter::write_packed(std::span<const std::uint8_t> bytes) {
  if (opt_.encoded)
    throw std::invalid_argument(
        "TraceWriter: encoded traces take write_encoded(bytes, masks), "
        "not write_packed");
  append_packed(bytes, nullptr);
}

void TraceWriter::write_encoded(std::span<const std::uint8_t> bytes,
                                std::span<const std::uint64_t> masks) {
  if (!opt_.encoded)
    throw std::invalid_argument(
        "TraceWriter: write_encoded needs TraceWriterOptions::encoded");
  const std::size_t bb = bytes_per_burst();
  if (bb != 0 && bytes.size() % bb != 0)
    throw std::invalid_argument(
        "TraceWriter::write_encoded: payload of " +
        std::to_string(bytes.size()) + " bytes is not a multiple of the " +
        std::to_string(bb) + "-byte packed burst");
  const std::size_t bursts = bytes.size() / bb;
  const auto groups = static_cast<std::size_t>(group_count());
  if (masks.size() != bursts * groups)
    throw std::invalid_argument(
        "TraceWriter::write_encoded: " + std::to_string(bursts) +
        " bursts of " + std::to_string(groups) + " DBI groups need " +
        std::to_string(bursts * groups) + " masks, got " +
        std::to_string(masks.size()));
  const int bl = wide_mode_ ? wcfg_.burst_length : cfg_.burst_length;
  if (bl < 64) {
    for (std::size_t i = 0; i < masks.size(); ++i)
      if ((masks[i] >> bl) != 0)
        throw std::invalid_argument(
            "TraceWriter::write_encoded: burst " +
            std::to_string(i / groups) + " group " +
            std::to_string(i % groups) +
            ": inversion mask has bits beyond burst length " +
            std::to_string(bl));
  }
  append_packed(bytes, masks.data());
}

void TraceWriter::set_chunk_scheme(dbi::Scheme scheme) {
  if (!opt_.per_chunk_schemes)
    throw std::invalid_argument(
        "TraceWriter::set_chunk_scheme: the writer was not opened with "
        "per_chunk_schemes (mixed-scheme v3 mode)");
  if (finished_) throw TraceError("TraceWriter: already finished");
  if (chunk_scheme_ && *chunk_scheme_ != scheme) flush_chunk();
  chunk_scheme_ = scheme;
}

void TraceWriter::append_packed(std::span<const std::uint8_t> bytes,
                                const std::uint64_t* masks) {
  if (finished_) throw TraceError("TraceWriter: already finished");
  if (opt_.per_chunk_schemes && !chunk_scheme_)
    throw std::invalid_argument(
        "TraceWriter: a mixed-scheme trace needs set_chunk_scheme() "
        "before its first burst");
  const std::size_t bb = bytes_per_burst();
  if (bytes.size() % bb != 0)
    throw std::invalid_argument(
        "TraceWriter::write_packed: payload of " +
        std::to_string(bytes.size()) + " bytes is not a multiple of the " +
        std::to_string(bb) + "-byte packed burst");
  std::vector<dbi::Word> words(
      static_cast<std::size_t>(cfg_.burst_length));
  for (std::size_t i = 0; i * bb < bytes.size(); ++i) {
    const auto burst = bytes.subspan(i * bb, bb);
    if (wide_mode_) {
      // Full byte groups accept any value; remainder-group bytes must
      // fit their narrower mask.
      const int groups = wcfg_.groups();
      const int gw_last = wcfg_.group_width(groups - 1);
      if (gw_last < 8) {
        const auto gmask =
            static_cast<std::uint8_t>(wcfg_.group_mask(groups - 1));
        for (int t = 0; t < wcfg_.burst_length; ++t) {
          const std::uint8_t b =
              burst[static_cast<std::size_t>(t * groups + groups - 1)];
          if ((b & ~gmask) != 0)
            throw std::invalid_argument(
                "TraceWriter::write_packed: burst " + std::to_string(i) +
                " beat " + std::to_string(t) + ": byte does not fit the " +
                "width-" + std::to_string(gw_last) + " remainder group");
        }
      }
      account_packed_wide(burst);
    } else {
      // Unpack validates each beat against the single-group mask.
      try {
        unpack_burst(burst.data(), cfg_, words);
      } catch (const TraceError& e) {
        throw std::invalid_argument("TraceWriter::write_packed: burst " +
                                    std::to_string(i) + ": " + e.what());
      }
      account(words);
    }
    pending_.insert(pending_.end(), burst.begin(), burst.end());
    if (masks) {
      const auto groups = static_cast<std::size_t>(group_count());
      for (std::size_t g = 0; g < groups; ++g)
        put_le(pending_masks_, masks[i * groups + g],
               static_cast<int>(kMaskBytesPerBurst));
    }
    if (++pending_bursts_ == opt_.bursts_per_chunk) flush_chunk();
  }
}

void TraceWriter::write_words(std::span<const dbi::Word> words) {
  if (finished_) throw TraceError("TraceWriter: already finished");
  if (opt_.encoded)
    throw std::invalid_argument(
        "TraceWriter: encoded traces take write_encoded(bytes, masks), "
        "not Burst words");
  if (wide_mode_)
    throw std::invalid_argument(
        "TraceWriter: wide traces take write_packed(), not Burst words");
  const auto bl = static_cast<std::size_t>(cfg_.burst_length);
  if (words.size() % bl != 0)
    throw std::invalid_argument(
        "TraceWriter: word count not a multiple of burst_length");
  const dbi::Word mask = cfg_.dq_mask();
  for (std::size_t i = 0; i < words.size(); i += bl) {
    const auto burst = words.subspan(i, bl);
    for (const dbi::Word w : burst)
      if ((w & ~mask) != 0)
        throw std::invalid_argument("TraceWriter: word does not fit width");
    const std::size_t at = pending_.size();
    pending_.resize(at + static_cast<std::size_t>(cfg_.bytes_per_burst()));
    pack_burst(burst, cfg_, pending_.data() + at);
    account(burst);
    if (++pending_bursts_ == opt_.bursts_per_chunk) flush_chunk();
  }
}

void TraceWriter::emit_chunk(std::uint32_t bursts, std::uint32_t kind_flags,
                             std::span<const std::uint8_t> raw) {
  std::uint32_t flags = kind_flags;
  std::span<const std::uint8_t> payload = raw;
  if (opt_.compress) {
    scratch_.clear();
    rle_compress(raw, scratch_);
    if (scratch_.size() < raw.size()) {
      flags |= kChunkFlagRle;
      payload = scratch_;
    }
  }

  std::vector<std::uint8_t> header;
  put_magic(header, kChunkMagic);
  put_le(header, bursts, 4);
  put_le(header, flags, 4);
  put_le(header, payload.size(), 4);
  emit(header);
  emit(payload);
}

void TraceWriter::flush_chunk() {
  if (pending_bursts_ == 0) return;

  std::uint32_t payload_flags = 0;
  if (opt_.per_chunk_schemes)
    payload_flags = chunk_scheme_flags(
        static_cast<std::uint8_t>(1 + static_cast<int>(*chunk_scheme_)));
  emit_chunk(pending_bursts_, payload_flags, pending_);
  // The mask-stream chunk rides directly behind its payload chunk; it
  // is not counted in chunks_ (the footer describes the payload stream).
  if (opt_.encoded) {
    emit_chunk(pending_bursts_, kChunkFlagMask, pending_masks_);
    pending_masks_.clear();
  }

  ++chunks_;
  pending_.clear();
  pending_bursts_ = 0;
}

void TraceWriter::finish() {
  if (finished_) return;
  flush_chunk();

  std::vector<std::uint8_t> footer;
  put_magic(footer, kFooterMagic);
  put_le(footer, 0, 4);
  put_le(footer, chunks_, 8);
  put_le(footer, static_cast<std::uint64_t>(stats_.bursts), 8);
  put_le(footer, static_cast<std::uint64_t>(stats_.payload_bits), 8);
  put_le(footer, static_cast<std::uint64_t>(stats_.payload_zeros), 8);
  put_le(footer, static_cast<std::uint64_t>(stats_.raw_transitions), 8);
  put_le(footer, 0, 8);
  emit(footer);

  // The CRC seals everything before it, including the footer stats.
  std::vector<std::uint8_t> tail;
  put_le(tail, crc_.value(), 4);
  put_magic(tail, kEndMagic);
  os_->write(reinterpret_cast<const char*>(tail.data()),
             static_cast<std::streamsize>(tail.size()));
  os_->flush();
  if (!*os_) throw TraceError("TraceWriter: write failed");
  finished_ = true;
}

}  // namespace dbi::trace
