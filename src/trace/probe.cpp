#include "trace/probe.hpp"

#include <array>
#include <fstream>
#include <stdexcept>

namespace dbi::trace {

TraceFileProbe probe_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError("trace: cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff end = in.tellg();
  if (end < 0) throw TraceError("trace: cannot stat " + path);
  const auto size = static_cast<std::uint64_t>(end);
  if (size < kHeaderBytes + kFooterBytes)
    throw TraceError("trace: file too small (" + std::to_string(size) +
                     " bytes) for a v2 header + footer: " + path);

  std::array<std::uint8_t, kHeaderBytes> hbuf{};
  std::array<std::uint8_t, kFooterBytes> fbuf{};
  in.seekg(0, std::ios::beg);
  in.read(reinterpret_cast<char*>(hbuf.data()),
          static_cast<std::streamsize>(hbuf.size()));
  in.seekg(end - static_cast<std::streamoff>(kFooterBytes), std::ios::beg);
  in.read(reinterpret_cast<char*>(fbuf.data()),
          static_cast<std::streamsize>(fbuf.size()));
  if (!in) throw TraceError("trace: read failed for " + path);

  TraceFileProbe p;
  p.file_bytes = size;

  // Header — the same field checks TraceReader::parse applies.
  ByteReader hdr(hbuf, "trace header");
  hdr.expect_magic(kFileMagic, "file");
  const auto version = static_cast<std::uint8_t>(hdr.le(1));
  if (version != kFormatVersion && version != kFormatVersionMixed)
    throw TraceError("trace: unsupported version " + std::to_string(version));
  p.header.version = version;
  const auto endianness = static_cast<std::uint8_t>(hdr.le(1));
  if (endianness != kLittleEndianTag)
    throw TraceError("trace: unsupported endianness tag " +
                     std::to_string(endianness));
  p.header.cfg.width = static_cast<int>(hdr.le(2));
  p.header.cfg.burst_length = static_cast<int>(hdr.le(2));
  p.header.flags = static_cast<std::uint16_t>(hdr.le(2));
  p.header.bursts_per_chunk = static_cast<std::uint32_t>(hdr.le(4));
  p.header.groups = static_cast<std::uint8_t>(hdr.le(1));
  p.header.enc_scheme = static_cast<std::uint8_t>(hdr.le(1));
  p.header.enc_lanes = static_cast<std::uint16_t>(hdr.le(2));
  p.header.enc_policy = static_cast<std::uint8_t>(hdr.le(1));
  if (!p.header.encoded() &&
      (p.header.enc_scheme != 0 || p.header.enc_lanes != 0 ||
       p.header.enc_policy != 0))
    throw TraceError(
        "trace: encode metadata set in a trace without the encoded flag");
  if (version == kFormatVersionMixed) {
    if (!p.header.encoded() || p.header.enc_scheme != kEncSchemeMixed)
      throw TraceError(
          "trace: a version-3 file must be an encoded mixed-scheme trace "
          "(enc_scheme = 0xFF)");
  } else if (p.header.enc_scheme > 7) {
    throw TraceError("trace: encode scheme tag " +
                     std::to_string(p.header.enc_scheme) + " out of range");
  }
  if (p.header.enc_policy > 1)
    throw TraceError("trace: encode state-policy byte " +
                     std::to_string(p.header.enc_policy) + " out of range");
  try {
    if (p.header.groups == 0) {
      p.header.cfg.validate();
    } else {
      const dbi::WideBusConfig wide = p.header.wide_config();
      wide.validate();
      if (static_cast<int>(p.header.groups) != wide.groups())
        throw std::invalid_argument(
            "dbi_groups byte " + std::to_string(p.header.groups) +
            " does not match width " + std::to_string(wide.width) + " (" +
            std::to_string(wide.groups()) + " byte groups)");
    }
  } catch (const std::invalid_argument& e) {
    throw TraceError(std::string("trace: bad geometry: ") + e.what());
  }
  if (p.header.bursts_per_chunk < 1)
    throw TraceError("trace: bursts_per_chunk must be >= 1");

  // Footer.
  ByteReader ftr(fbuf, "trace footer");
  ftr.expect_magic(kFooterMagic, "footer");
  (void)ftr.le(4);  // reserved
  p.chunk_count = ftr.le(8);
  p.stats.bursts = static_cast<std::int64_t>(ftr.le(8));
  p.stats.payload_bits = static_cast<std::int64_t>(ftr.le(8));
  p.stats.payload_zeros = static_cast<std::int64_t>(ftr.le(8));
  p.stats.raw_transitions = static_cast<std::int64_t>(ftr.le(8));
  (void)ftr.le(8);  // reserved
  p.crc = static_cast<std::uint32_t>(ftr.le(4));
  ByteReader endm(std::span<const std::uint8_t>(fbuf).subspan(kFooterBytes - 4),
                  "trace footer");
  endm.expect_magic(kEndMagic, "end");
  if (p.stats.bursts < 0)
    throw TraceError("trace: negative burst count in footer");
  if (p.stats.payload_bits < 0 || p.stats.payload_zeros < 0 ||
      p.stats.raw_transitions < 0)
    throw TraceError("trace: negative payload stats in footer");
  // Every chunk costs at least a 16-byte header, so a chunk count the
  // file cannot physically hold is footer corruption.
  if (p.chunk_count > (size - kHeaderBytes - kFooterBytes) / kChunkHeaderBytes)
    throw TraceError("trace: footer chunk count " +
                     std::to_string(p.chunk_count) +
                     " exceeds what the file can hold");
  return p;
}

}  // namespace dbi::trace
