// Binary trace format v2/v3: the on-disk layout shared by TraceWriter
// and TraceReader, plus the small codecs (CRC-32, zero-run RLE, packed
// little-endian beat words) both sides use.
//
// File layout (all integers little-endian):
//
//   Header (32 bytes)
//     0   u8[4]  magic "DBT2"
//     4   u8     version (2, or 3 for mixed-scheme encoded traces)
//     5   u8     endianness tag (1 = little endian payload words)
//     6   u16    width            (total DQ lines; 1..32 single-group,
//                                  1..64 wide multi-group)
//     8   u16    burst_length     (beats per burst, 1..64)
//     10  u16    file flags       (bit 0: chunks may be RLE-compressed)
//     12  u32    bursts_per_chunk (chunk capacity, >= 1)
//     16  u8     dbi_groups       (0: single-group trace, one DBI line
//                                  over all `width` lanes — the original
//                                  v2 layout, reserved-zero there; >= 1:
//                                  wide trace of ceil(width / 8) byte
//                                  groups, one DBI line each, and the
//                                  value must equal that group count)
//     17  u8     enc_scheme       (encoded traces: 1 + Scheme enum value
//                                  of the encoder that produced the
//                                  masks; 0 = not recorded / not encoded)
//     18  u16    enc_lanes        (encoded traces: lane interleave the
//                                  masks were encoded with; 0 = not
//                                  recorded / not encoded)
//     20  u8     enc_policy       (encoded traces: 0 = line state
//                                  threaded per lane, 1 = reset to the
//                                  all-ones boundary per burst)
//     21  u8[11] reserved (zero)
//
//   Chunk (repeated; at least one unless the trace is empty)
//     0   u8[4]  magic "CHNK"
//     4   u32    burst_count   (1 .. bursts_per_chunk)
//     8   u32    chunk flags   (bit 0: payload is zero-run RLE;
//                               bit 1: mask-stream chunk, see below)
//     12  u32    payload_bytes (on-disk payload size)
//     16  u8[payload_bytes]    payload
//
//   Uncompressed chunk payload: burst_count bursts back to back, each
//   burst_length beats of bytes_per_beat() little-endian bytes — for
//   the canonical 8-lane x BL8 group, one burst is exactly 8 bytes
//   (one packed 64-bit lane word, the engine's SWAR unit). Wide traces
//   use the WideBusConfig beat-major layout instead: one byte per group
//   per beat (byte g of a beat = byte group g), so group g's stream is
//   the payload read at stride dbi_groups — the engine's strided
//   zero-copy unit.
//
//   Encoded traces (file flag bit 1): the payload chunks store the
//   TRANSMITTED stream (the physical DQ values after inversion), and
//   every payload chunk is immediately followed by exactly one
//   mask-stream chunk (chunk flag bit 1) carrying the per-burst DBI
//   decisions: burst_count x dbi-group little-endian u64 inversion
//   masks (bit t set = beat t transmitted inverted, DBI low), burst-
//   major / group-minor — the engine's BurstResult order. Mask chunks
//   share the payload chunks' RLE option and ride between them in the
//   file, but they are not counted in the footer's chunk_count or
//   bursts (those describe the payload stream). Header bytes 17..20
//   record how the trace was encoded (scheme / lanes / state policy)
//   so a decoder or verifier can re-derive the masks without being
//   told; byte 17 == 0 means "not recorded".
//
//   Mixed-scheme encoded traces (version 3): an adaptive session picks
//   the scheme per chunk, so no single header byte can describe the
//   masks. Such traces carry version 3, header enc_scheme = 0xFF
//   ("per-chunk"), and every payload chunk sets chunk flag bit 2 with
//   the chunk's scheme tag (1 + Scheme enum value, same mapping as
//   header byte 17) stored in flag bits 8..15. Version 3 is emitted
//   ONLY for mixed traces — every fixed-scheme or plain trace stays a
//   byte-identical version-2 file — and a version-3 file must be
//   encoded, carry the 0xFF sentinel, and tag every payload chunk;
//   readers reject tag bits in v2 files and missing/invalid tags in v3.
//
//   Footer (64 bytes)
//     0   u8[4]  magic "DBTF"
//     4   u32    reserved (zero)
//     8   u64    chunk_count
//     16  i64    bursts
//     24  i64    payload_bits
//     32  i64    payload_zeros
//     40  i64    raw_transitions
//     48  u64    reserved (zero)
//     56  u32    crc32 of file bytes [0, footer_offset + 56)
//     60  u8[4]  end magic "2TBD"
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"

namespace dbi::trace {

/// Every malformed-file condition surfaces as a TraceError (corrupted
/// and truncated inputs are rejected with messages, never UB).
class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint8_t kFileMagic[4] = {'D', 'B', 'T', '2'};
inline constexpr std::uint8_t kChunkMagic[4] = {'C', 'H', 'N', 'K'};
inline constexpr std::uint8_t kFooterMagic[4] = {'D', 'B', 'T', 'F'};
inline constexpr std::uint8_t kEndMagic[4] = {'2', 'T', 'B', 'D'};
inline constexpr std::uint8_t kFormatVersion = 2;
/// Mixed-scheme encoded traces (per-chunk scheme tags) only.
inline constexpr std::uint8_t kFormatVersionMixed = 3;
inline constexpr std::uint8_t kLittleEndianTag = 1;

inline constexpr std::size_t kHeaderBytes = 32;
inline constexpr std::size_t kChunkHeaderBytes = 16;
inline constexpr std::size_t kFooterBytes = 64;

inline constexpr std::uint16_t kFileFlagCompressed = 1U << 0;
/// The payload chunks hold the transmitted (post-inversion) stream and
/// each is followed by a mask-stream chunk with the DBI decisions.
inline constexpr std::uint16_t kFileFlagEncoded = 1U << 1;
inline constexpr std::uint32_t kChunkFlagRle = 1U << 0;
/// Mask-stream chunk: burst_count x groups little-endian u64 inversion
/// masks riding behind its payload chunk (encoded traces only).
inline constexpr std::uint32_t kChunkFlagMask = 1U << 1;
/// Version-3 payload chunk carrying its scheme tag in flag bits 8..15
/// (mixed-scheme encoded traces only; never set in v2 files).
inline constexpr std::uint32_t kChunkFlagSchemeTag = 1U << 2;
inline constexpr int kChunkSchemeTagShift = 8;
inline constexpr std::uint32_t kChunkSchemeTagMask = 0xFFU
                                                    << kChunkSchemeTagShift;
/// Header enc_scheme sentinel of a mixed-scheme (v3) trace: the scheme
/// varies per chunk; consult the chunk tags.
inline constexpr std::uint8_t kEncSchemeMixed = 0xFF;

/// On-disk size of one burst's mask record (u64 per DBI group).
inline constexpr std::size_t kMaskBytesPerBurst = 8;

inline constexpr std::uint32_t kDefaultBurstsPerChunk = 4096;

// ------------------------------------------------------------- raw codec

/// Appends `v` to `out` as `n` little-endian bytes.
void put_le(std::vector<std::uint8_t>& out, std::uint64_t v, int n);

/// Bounds-checked little-endian cursor over a byte view; every overrun
/// throws TraceError instead of reading past the buffer.
class ByteReader {
 public:
  ByteReader(std::span<const std::uint8_t> data, std::string_view what)
      : data_(data), what_(what) {}

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  [[nodiscard]] std::uint64_t le(int n);
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n);
  void expect_magic(const std::uint8_t (&magic)[4], std::string_view name);

 private:
  std::span<const std::uint8_t> data_;
  std::string_view what_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------- CRC-32

/// Streaming CRC-32 (ISO-HDLC, polynomial 0xEDB88320 reflected — the
/// zlib/PNG checksum).
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> bytes);
  [[nodiscard]] std::uint32_t value() const { return ~state_; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFU;
};

[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes);

// ------------------------------------------------------------- zero RLE

/// Zero-run RLE over bytes. Token stream: control byte c, then
///   c & 0x80 set  -> (c & 0x7F) + 1 zero bytes, no payload;
///   c & 0x80 clear -> c + 1 literal bytes follow.
/// Appends the encoding of `in` to `out`.
void rle_compress(std::span<const std::uint8_t> in,
                  std::vector<std::uint8_t>& out);

/// Decodes into `out`, which must be filled exactly; short, overlong and
/// truncated token streams throw TraceError.
void rle_decompress(std::span<const std::uint8_t> in,
                    std::span<std::uint8_t> out);

// ----------------------------------------------------- beat word packing

/// Packs one burst's beat words into `cfg.bytes_per_burst()` bytes at
/// `out` (little-endian, bytes_per_beat() bytes per beat).
void pack_burst(std::span<const dbi::Word> words, const dbi::BusConfig& cfg,
                std::uint8_t* out);

/// Unpacks one burst; beats exceeding cfg.dq_mask() throw TraceError.
void unpack_burst(const std::uint8_t* in, const dbi::BusConfig& cfg,
                  std::span<dbi::Word> words);

// --------------------------------------------------------------- headers

struct TraceHeader {
  /// Geometry. For single-group traces (groups <= 1) this is the full
  /// story; for wide traces cfg.width is the TOTAL bus width (may
  /// exceed BusConfig's 32-lane ceiling) and only wide_config() views
  /// are meaningful.
  dbi::BusConfig cfg;
  std::uint8_t groups = 0;  ///< header byte 16; 0 = single-group file
  std::uint16_t flags = 0;
  std::uint32_t bursts_per_chunk = kDefaultBurstsPerChunk;
  /// Encode metadata (bytes 17..20), nonzero only in encoded traces:
  /// 1 + Scheme enum value / lane interleave / state policy the masks
  /// were produced with. enc_scheme == 0 means "not recorded";
  /// enc_scheme == kEncSchemeMixed (v3) means "per-chunk — see the
  /// chunk scheme tags".
  std::uint8_t enc_scheme = 0;
  std::uint16_t enc_lanes = 0;
  std::uint8_t enc_policy = 0;
  /// Header byte 4 as parsed (kFormatVersion, or kFormatVersionMixed
  /// for mixed-scheme traces).
  std::uint8_t version = kFormatVersion;

  /// True when the payload is the multi-group beat-major wide layout.
  [[nodiscard]] bool wide() const { return groups > 1; }

  /// True when payload chunks carry the transmitted stream and each is
  /// paired with a mask-stream chunk.
  [[nodiscard]] bool encoded() const {
    return (flags & kFileFlagEncoded) != 0;
  }

  /// True for a version-3 mixed-scheme trace: the encode scheme varies
  /// per chunk (ChunkInfo::scheme_tag), enc_scheme is the sentinel.
  [[nodiscard]] bool mixed() const {
    return encoded() && enc_scheme == kEncSchemeMixed;
  }

  [[nodiscard]] dbi::WideBusConfig wide_config() const {
    return dbi::WideBusConfig{cfg.width, cfg.burst_length};
  }

  /// DBI groups per burst (mask words per burst in encoded traces).
  [[nodiscard]] int group_count() const { return wide() ? groups : 1; }

  /// On-disk payload size of one burst, either layout.
  [[nodiscard]] int bytes_per_burst() const {
    return wide() ? wide_config().bytes_per_burst() : cfg.bytes_per_burst();
  }
};

struct ChunkHeader {
  std::uint32_t burst_count = 0;
  std::uint32_t flags = 0;
  std::uint32_t payload_bytes = 0;

  [[nodiscard]] bool compressed() const { return (flags & kChunkFlagRle) != 0; }
};

/// Flag bits a v3 payload chunk carries for scheme tag `tag`
/// (1 + Scheme enum value, the header-byte-17 mapping).
[[nodiscard]] constexpr std::uint32_t chunk_scheme_flags(std::uint8_t tag) {
  return kChunkFlagSchemeTag |
         (static_cast<std::uint32_t>(tag) << kChunkSchemeTagShift);
}

}  // namespace dbi::trace
