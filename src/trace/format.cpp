#include "trace/format.hpp"

#include <array>
#include <cstring>

namespace dbi::trace {

void put_le(std::vector<std::uint8_t>& out, std::uint64_t v, int n) {
  for (int i = 0; i < n; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t ByteReader::le(int n) {
  if (remaining() < static_cast<std::size_t>(n))
    throw TraceError(std::string(what_) + ": truncated (need " +
                     std::to_string(n) + " bytes at offset " +
                     std::to_string(pos_) + ")");
  std::uint64_t v = 0;
  for (int i = 0; i < n; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  pos_ += static_cast<std::size_t>(n);
  return v;
}

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  if (remaining() < n)
    throw TraceError(std::string(what_) + ": truncated (need " +
                     std::to_string(n) + " bytes at offset " +
                     std::to_string(pos_) + ")");
  const auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

void ByteReader::expect_magic(const std::uint8_t (&magic)[4],
                              std::string_view name) {
  const auto got = bytes(4);
  if (std::memcmp(got.data(), magic, 4) != 0)
    throw TraceError(std::string(what_) + ": bad " + std::string(name) +
                     " magic at offset " + std::to_string(pos_ - 4));
}

// ---------------------------------------------------------------- CRC-32

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1U) ? (0xEDB88320U ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

void Crc32::update(std::span<const std::uint8_t> bytes) {
  std::uint32_t c = state_;
  for (const std::uint8_t b : bytes) c = kCrcTable[(c ^ b) & 0xFFU] ^ (c >> 8);
  state_ = c;
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  Crc32 crc;
  crc.update(bytes);
  return crc.value();
}

// ------------------------------------------------------------- zero RLE

void rle_compress(std::span<const std::uint8_t> in,
                  std::vector<std::uint8_t>& out) {
  std::size_t i = 0;
  const std::size_t n = in.size();
  while (i < n) {
    if (in[i] == 0) {
      std::size_t run = 1;
      while (i + run < n && run < 128 && in[i + run] == 0) ++run;
      out.push_back(static_cast<std::uint8_t>(0x80U | (run - 1)));
      i += run;
    } else {
      // Literal run: stop at a zero pair so short isolated zeros don't
      // fragment the stream into one-byte tokens.
      std::size_t run = 1;
      while (i + run < n && run < 128 &&
             !(in[i + run] == 0 &&
               (i + run + 1 >= n || in[i + run + 1] == 0)))
        ++run;
      out.push_back(static_cast<std::uint8_t>(run - 1));
      out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(i),
                 in.begin() + static_cast<std::ptrdiff_t>(i + run));
      i += run;
    }
  }
}

void rle_decompress(std::span<const std::uint8_t> in,
                    std::span<std::uint8_t> out) {
  std::size_t ip = 0;
  std::size_t op = 0;
  while (ip < in.size()) {
    const std::uint8_t c = in[ip++];
    const std::size_t run = static_cast<std::size_t>(c & 0x7FU) + 1;
    if (op + run > out.size())
      throw TraceError("rle: decoded size exceeds chunk payload size");
    if (c & 0x80U) {
      std::memset(out.data() + op, 0, run);
    } else {
      if (in.size() - ip < run)
        throw TraceError("rle: truncated literal run");
      std::memcpy(out.data() + op, in.data() + ip, run);
      ip += run;
    }
    op += run;
  }
  if (op != out.size())
    throw TraceError("rle: decoded size " + std::to_string(op) +
                     " != expected " + std::to_string(out.size()));
}

// ----------------------------------------------------- beat word packing

void pack_burst(std::span<const dbi::Word> words, const dbi::BusConfig& cfg,
                std::uint8_t* out) {
  const int bpb = cfg.bytes_per_beat();
  for (const dbi::Word w : words) {
    for (int i = 0; i < bpb; ++i)
      *out++ = static_cast<std::uint8_t>(w >> (8 * i));
  }
}

void unpack_burst(const std::uint8_t* in, const dbi::BusConfig& cfg,
                  std::span<dbi::Word> words) {
  const int bpb = cfg.bytes_per_beat();
  const dbi::Word mask = cfg.dq_mask();
  for (dbi::Word& w : words) {
    dbi::Word v = 0;
    for (int i = 0; i < bpb; ++i)
      v |= static_cast<dbi::Word>(*in++) << (8 * i);
    if ((v & ~mask) != 0)
      throw TraceError("trace payload: beat word exceeds width-" +
                       std::to_string(cfg.width) + " mask");
    w = v;
  }
}

}  // namespace dbi::trace
