#include "trace/trace_reader.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DBI_TRACE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define DBI_TRACE_HAVE_MMAP 0
#endif

namespace dbi::trace {

// ------------------------------------------------------------ MappedFile

MappedFile::~MappedFile() {
#if DBI_TRACE_HAVE_MMAP
  if (mapped_ && data_ != nullptr)
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
#endif
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  if (!mapped_) data_ = fallback_.data();
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
#if DBI_TRACE_HAVE_MMAP
    if (mapped_ && data_ != nullptr)
      ::munmap(const_cast<std::uint8_t*>(data_), size_);
#endif
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
    if (!mapped_) data_ = fallback_.data();
  }
  return *this;
}

MappedFile MappedFile::from_vector(std::vector<std::uint8_t> data) {
  MappedFile mf;
  mf.fallback_ = std::move(data);
  mf.data_ = mf.fallback_.data();
  mf.size_ = mf.fallback_.size();
  mf.mapped_ = false;
  return mf;
}

MappedFile MappedFile::open(const std::string& path) {
#if DBI_TRACE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw TraceError("trace: cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw TraceError("trace: cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  MappedFile mf;
  if (size > 0) {
    void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      throw TraceError("trace: mmap failed for " + path);
    }
#if defined(POSIX_MADV_SEQUENTIAL)
    (void)::posix_madvise(p, size, POSIX_MADV_SEQUENTIAL);
#endif
    mf.data_ = static_cast<const std::uint8_t*>(p);
    mf.size_ = size;
    mf.mapped_ = true;
  }
  ::close(fd);
  return mf;
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError("trace: cannot open " + path);
  std::vector<std::uint8_t> data(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw TraceError("trace: read failed for " + path);
  return from_vector(std::move(data));
#endif
}

// ------------------------------------------------------------ TraceReader

TraceReader TraceReader::open(const std::string& path, bool verify_crc) {
  TraceReader r(MappedFile::open(path));
  r.parse(verify_crc);
  return r;
}

TraceReader TraceReader::from_bytes(std::vector<std::uint8_t> image,
                                    bool verify_crc) {
  TraceReader r(MappedFile::from_vector(std::move(image)));
  r.parse(verify_crc);
  return r;
}

void TraceReader::parse(bool verify_crc) {
  const std::span<const std::uint8_t> file = file_.bytes();
  if (file.size() < kHeaderBytes + kFooterBytes)
    throw TraceError("trace: file too small (" + std::to_string(file.size()) +
                     " bytes) for a v2 header + footer");

  // Header.
  ByteReader hdr(file, "trace header");
  hdr.expect_magic(kFileMagic, "file");
  const auto version = static_cast<std::uint8_t>(hdr.le(1));
  if (version != kFormatVersion)
    throw TraceError("trace: unsupported version " + std::to_string(version));
  const auto endianness = static_cast<std::uint8_t>(hdr.le(1));
  if (endianness != kLittleEndianTag)
    throw TraceError("trace: unsupported endianness tag " +
                     std::to_string(endianness));
  header_.cfg.width = static_cast<int>(hdr.le(2));
  header_.cfg.burst_length = static_cast<int>(hdr.le(2));
  header_.flags = static_cast<std::uint16_t>(hdr.le(2));
  header_.bursts_per_chunk = static_cast<std::uint32_t>(hdr.le(4));
  header_.groups = static_cast<std::uint8_t>(hdr.le(1));
  try {
    if (header_.groups == 0) {
      // Legacy single-group file: byte 16 was reserved-zero.
      header_.cfg.validate();
    } else {
      // Wide multi-group file: the group count is derived from the
      // width, so a mismatching byte means corruption.
      const dbi::WideBusConfig wide = header_.wide_config();
      wide.validate();
      if (static_cast<int>(header_.groups) != wide.groups())
        throw std::invalid_argument(
            "dbi_groups byte " + std::to_string(header_.groups) +
            " does not match width " + std::to_string(wide.width) + " (" +
            std::to_string(wide.groups()) + " byte groups)");
    }
  } catch (const std::invalid_argument& e) {
    throw TraceError(std::string("trace: bad geometry: ") + e.what());
  }
  if (header_.bursts_per_chunk < 1)
    throw TraceError("trace: bursts_per_chunk must be >= 1");

  // Footer.
  const std::size_t footer_off = file.size() - kFooterBytes;
  ByteReader ftr(file.subspan(footer_off), "trace footer");
  ftr.expect_magic(kFooterMagic, "footer");
  (void)ftr.le(4);  // reserved
  const std::uint64_t chunk_count = ftr.le(8);
  stats_.bursts = static_cast<std::int64_t>(ftr.le(8));
  stats_.payload_bits = static_cast<std::int64_t>(ftr.le(8));
  stats_.payload_zeros = static_cast<std::int64_t>(ftr.le(8));
  stats_.raw_transitions = static_cast<std::int64_t>(ftr.le(8));
  (void)ftr.le(8);  // reserved
  const auto stored_crc = static_cast<std::uint32_t>(ftr.le(4));
  ByteReader end(file.subspan(footer_off + kFooterBytes - 4), "trace footer");
  end.expect_magic(kEndMagic, "end");
  if (stats_.bursts < 0)
    throw TraceError("trace: negative burst count in footer");

  if (verify_crc) {
    const std::uint32_t got = crc32(file.first(footer_off + kFooterBytes - 8));
    if (got != stored_crc)
      throw TraceError("trace: CRC mismatch (file corrupted or truncated)");
  }

  // Chunk index.
  const auto burst_bytes =
      static_cast<std::uint64_t>(header_.bytes_per_burst());
  ByteReader cur(file.first(footer_off), "trace chunks");
  (void)cur.bytes(kHeaderBytes);
  std::int64_t bursts_seen = 0;
  // Clamp the reserve: with verify_crc off, a corrupted footer must not
  // drive a huge allocation before the chunk walk catches it.
  chunks_.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(chunk_count, file.size() / kChunkHeaderBytes)));
  while (cur.remaining() > 0) {
    cur.expect_magic(kChunkMagic, "chunk");
    ChunkInfo info;
    info.burst_count = static_cast<std::uint32_t>(cur.le(4));
    info.flags = static_cast<std::uint32_t>(cur.le(4));
    info.payload_bytes = static_cast<std::uint32_t>(cur.le(4));
    info.first_burst = bursts_seen;
    if (info.burst_count < 1 || info.burst_count > header_.bursts_per_chunk)
      throw TraceError("trace: chunk burst count " +
                       std::to_string(info.burst_count) +
                       " outside [1, bursts_per_chunk]");
    const std::uint64_t raw_bytes = info.burst_count * burst_bytes;
    if (!info.compressed() && info.payload_bytes != raw_bytes)
      throw TraceError("trace: uncompressed chunk payload size mismatch");
    if (info.compressed() && (header_.flags & kFileFlagCompressed) == 0)
      throw TraceError("trace: compressed chunk in an uncompressed file");
    // Zero-run RLE expands at most 128x (one control byte per up to 128
    // zeros), so a decoded size beyond that bound can never be produced
    // by the writer — reject it here so chunk_payload never sizes its
    // scratch buffer from a lying header.
    if (info.compressed() &&
        raw_bytes > static_cast<std::uint64_t>(info.payload_bytes) * 128)
      throw TraceError("trace: compressed chunk decoded size exceeds the "
                       "128x RLE expansion bound");
    info.payload_offset = cur.pos();
    (void)cur.bytes(info.payload_bytes);
    bursts_seen += info.burst_count;
    chunks_.push_back(info);
  }
  if (chunks_.size() != chunk_count)
    throw TraceError("trace: footer chunk count " +
                     std::to_string(chunk_count) + " != chunks present " +
                     std::to_string(chunks_.size()));
  if (bursts_seen != stats_.bursts)
    throw TraceError("trace: footer burst count " +
                     std::to_string(stats_.bursts) + " != bursts present " +
                     std::to_string(bursts_seen));
}

std::span<const std::uint8_t> TraceReader::chunk_payload(
    std::size_t i, std::vector<std::uint8_t>& scratch) const {
  const ChunkInfo& info = chunks_.at(i);
  const auto on_disk = file_.bytes().subspan(
      static_cast<std::size_t>(info.payload_offset), info.payload_bytes);
  if (!info.compressed()) return on_disk;  // zero copy
  const std::size_t raw =
      static_cast<std::size_t>(info.burst_count) *
      static_cast<std::size_t>(header_.bytes_per_burst());
  scratch.resize(raw);
  rle_decompress(on_disk, scratch);
  return scratch;
}

void TraceReader::unpack_burst_at(std::span<const std::uint8_t> payload,
                                  std::size_t j,
                                  std::span<dbi::Word> words) const {
  if (header_.wide())
    throw TraceError(
        "trace: wide multi-group bursts have no single-word beat view; "
        "slice per group (see WideBusConfig) or replay through the engine");
  const auto bb = static_cast<std::size_t>(header_.cfg.bytes_per_burst());
  if ((j + 1) * bb > payload.size())
    throw TraceError("trace: burst index outside chunk payload");
  unpack_burst(payload.data() + j * bb, header_.cfg, words);
}

workload::BurstTrace TraceReader::to_burst_trace() const {
  if (header_.wide())
    throw TraceError(
        "trace: wide multi-group traces cannot be materialised as a "
        "single-group BurstTrace; replay through the engine instead");
  workload::BurstTrace trace(header_.cfg);
  std::vector<std::uint8_t> scratch;
  std::vector<dbi::Word> words(
      static_cast<std::size_t>(header_.cfg.burst_length));
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    const auto payload = chunk_payload(c, scratch);
    for (std::size_t j = 0; j < chunks_[c].burst_count; ++j) {
      unpack_burst_at(payload, j, words);
      trace.push(dbi::Burst(header_.cfg, words));
    }
  }
  return trace;
}

}  // namespace dbi::trace
