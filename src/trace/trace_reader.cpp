#include "trace/trace_reader.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DBI_TRACE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define DBI_TRACE_HAVE_MMAP 0
#endif

namespace dbi::trace {

// ------------------------------------------------------------ MappedFile

MappedFile::~MappedFile() {
#if DBI_TRACE_HAVE_MMAP
  if (mapped_ && data_ != nullptr)
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
#endif
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  if (!mapped_) data_ = fallback_.data();
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
#if DBI_TRACE_HAVE_MMAP
    if (mapped_ && data_ != nullptr)
      ::munmap(const_cast<std::uint8_t*>(data_), size_);
#endif
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
    if (!mapped_) data_ = fallback_.data();
  }
  return *this;
}

MappedFile MappedFile::from_vector(std::vector<std::uint8_t> data) {
  MappedFile mf;
  mf.fallback_ = std::move(data);
  mf.data_ = mf.fallback_.data();
  mf.size_ = mf.fallback_.size();
  mf.mapped_ = false;
  return mf;
}

MappedFile MappedFile::open(const std::string& path) {
#if DBI_TRACE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw TraceError("trace: cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw TraceError("trace: cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  MappedFile mf;
  if (size > 0) {
    void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      throw TraceError("trace: mmap failed for " + path);
    }
#if defined(POSIX_MADV_SEQUENTIAL)
    (void)::posix_madvise(p, size, POSIX_MADV_SEQUENTIAL);
#endif
    mf.data_ = static_cast<const std::uint8_t*>(p);
    mf.size_ = size;
    mf.mapped_ = true;
  }
  ::close(fd);
  return mf;
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError("trace: cannot open " + path);
  std::vector<std::uint8_t> data(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw TraceError("trace: read failed for " + path);
  return from_vector(std::move(data));
#endif
}

// ------------------------------------------------------------ TraceReader

TraceReader TraceReader::open(const std::string& path, bool verify_crc) {
  TraceReader r(MappedFile::open(path));
  r.parse(verify_crc);
  return r;
}

TraceReader TraceReader::from_bytes(std::vector<std::uint8_t> image,
                                    bool verify_crc) {
  TraceReader r(MappedFile::from_vector(std::move(image)));
  r.parse(verify_crc);
  return r;
}

void TraceReader::parse(bool verify_crc) {
  const std::span<const std::uint8_t> file = file_.bytes();
  if (file.size() < kHeaderBytes + kFooterBytes)
    throw TraceError("trace: file too small (" + std::to_string(file.size()) +
                     " bytes) for a v2 header + footer");

  // Header.
  ByteReader hdr(file, "trace header");
  hdr.expect_magic(kFileMagic, "file");
  const auto version = static_cast<std::uint8_t>(hdr.le(1));
  if (version != kFormatVersion && version != kFormatVersionMixed)
    throw TraceError("trace: unsupported version " + std::to_string(version));
  header_.version = version;
  const auto endianness = static_cast<std::uint8_t>(hdr.le(1));
  if (endianness != kLittleEndianTag)
    throw TraceError("trace: unsupported endianness tag " +
                     std::to_string(endianness));
  header_.cfg.width = static_cast<int>(hdr.le(2));
  header_.cfg.burst_length = static_cast<int>(hdr.le(2));
  header_.flags = static_cast<std::uint16_t>(hdr.le(2));
  header_.bursts_per_chunk = static_cast<std::uint32_t>(hdr.le(4));
  header_.groups = static_cast<std::uint8_t>(hdr.le(1));
  header_.enc_scheme = static_cast<std::uint8_t>(hdr.le(1));
  header_.enc_lanes = static_cast<std::uint16_t>(hdr.le(2));
  header_.enc_policy = static_cast<std::uint8_t>(hdr.le(1));
  if (!header_.encoded() &&
      (header_.enc_scheme != 0 || header_.enc_lanes != 0 ||
       header_.enc_policy != 0))
    throw TraceError(
        "trace: encode metadata set in a trace without the encoded flag");
  if (version == kFormatVersionMixed) {
    // Version 3 exists only for mixed-scheme encoded traces: it must
    // carry the per-chunk sentinel, and every payload chunk its tag.
    if (!header_.encoded() || header_.enc_scheme != kEncSchemeMixed)
      throw TraceError(
          "trace: a version-3 file must be an encoded mixed-scheme trace "
          "(enc_scheme = 0xFF)");
  } else if (header_.enc_scheme > 7) {
    throw TraceError("trace: encode scheme tag " +
                     std::to_string(header_.enc_scheme) + " out of range");
  }
  if (header_.enc_policy > 1)
    throw TraceError("trace: encode state-policy byte " +
                     std::to_string(header_.enc_policy) + " out of range");
  try {
    if (header_.groups == 0) {
      // Legacy single-group file: byte 16 was reserved-zero.
      header_.cfg.validate();
    } else {
      // Wide multi-group file: the group count is derived from the
      // width, so a mismatching byte means corruption.
      const dbi::WideBusConfig wide = header_.wide_config();
      wide.validate();
      if (static_cast<int>(header_.groups) != wide.groups())
        throw std::invalid_argument(
            "dbi_groups byte " + std::to_string(header_.groups) +
            " does not match width " + std::to_string(wide.width) + " (" +
            std::to_string(wide.groups()) + " byte groups)");
    }
  } catch (const std::invalid_argument& e) {
    throw TraceError(std::string("trace: bad geometry: ") + e.what());
  }
  if (header_.bursts_per_chunk < 1)
    throw TraceError("trace: bursts_per_chunk must be >= 1");

  // Footer.
  const std::size_t footer_off = file.size() - kFooterBytes;
  ByteReader ftr(file.subspan(footer_off), "trace footer");
  ftr.expect_magic(kFooterMagic, "footer");
  (void)ftr.le(4);  // reserved
  const std::uint64_t chunk_count = ftr.le(8);
  stats_.bursts = static_cast<std::int64_t>(ftr.le(8));
  stats_.payload_bits = static_cast<std::int64_t>(ftr.le(8));
  stats_.payload_zeros = static_cast<std::int64_t>(ftr.le(8));
  stats_.raw_transitions = static_cast<std::int64_t>(ftr.le(8));
  (void)ftr.le(8);  // reserved
  const auto stored_crc = static_cast<std::uint32_t>(ftr.le(4));
  ByteReader end(file.subspan(footer_off + kFooterBytes - 4), "trace footer");
  end.expect_magic(kEndMagic, "end");
  if (stats_.bursts < 0)
    throw TraceError("trace: negative burst count in footer");

  if (verify_crc) {
    const auto crc_start = std::chrono::steady_clock::now();
    const std::uint32_t got = crc32(file.first(footer_off + kFooterBytes - 8));
    metrics_->crc_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - crc_start)
            .count());
    if (got != stored_crc)
      throw TraceError("trace: CRC mismatch (file corrupted or truncated)");
  }

  // Chunk index.
  const auto burst_bytes =
      static_cast<std::uint64_t>(header_.bytes_per_burst());
  ByteReader cur(file.first(footer_off), "trace chunks");
  (void)cur.bytes(kHeaderBytes);
  std::int64_t bursts_seen = 0;
  // Clamp the reserve: with verify_crc off, a corrupted footer must not
  // drive a huge allocation before the chunk walk catches it.
  chunks_.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(chunk_count, file.size() / kChunkHeaderBytes)));
  while (cur.remaining() > 0) {
    cur.expect_magic(kChunkMagic, "chunk");
    const auto burst_count = static_cast<std::uint32_t>(cur.le(4));
    const auto flags = static_cast<std::uint32_t>(cur.le(4));
    const auto payload_bytes = static_cast<std::uint32_t>(cur.le(4));
    // Scheme-tag bits are legal only in v3 files (payload chunks);
    // anything else is an unknown-flag rejection, so v2 stays strict.
    const std::uint32_t known_flags =
        kChunkFlagRle | kChunkFlagMask |
        (header_.version == kFormatVersionMixed
             ? kChunkFlagSchemeTag | kChunkSchemeTagMask
             : 0U);
    if ((flags & ~known_flags) != 0)
      throw TraceError("trace: chunk carries unknown flag bits");
    if ((flags & kChunkSchemeTagMask) != 0 &&
        (flags & kChunkFlagSchemeTag) == 0)
      throw TraceError(
          "trace: chunk carries scheme-tag bits without the scheme-tag "
          "flag");
    if (burst_count < 1 || burst_count > header_.bursts_per_chunk)
      throw TraceError("trace: chunk burst count " +
                       std::to_string(burst_count) +
                       " outside [1, bursts_per_chunk]");
    const bool compressed = (flags & kChunkFlagRle) != 0;
    const bool mask_chunk = (flags & kChunkFlagMask) != 0;
    const std::uint64_t raw_bytes =
        burst_count *
        (mask_chunk ? static_cast<std::uint64_t>(header_.group_count()) *
                          kMaskBytesPerBurst
                    : burst_bytes);
    if (!compressed && payload_bytes != raw_bytes)
      throw TraceError("trace: uncompressed chunk payload size mismatch");
    if (compressed && (header_.flags & kFileFlagCompressed) == 0)
      throw TraceError("trace: compressed chunk in an uncompressed file");
    // Zero-run RLE expands at most 128x (one control byte per up to 128
    // zeros), so a decoded size beyond that bound can never be produced
    // by the writer — reject it here so chunk_payload never sizes its
    // scratch buffer from a lying header.
    if (compressed &&
        raw_bytes > static_cast<std::uint64_t>(payload_bytes) * 128)
      throw TraceError("trace: compressed chunk decoded size exceeds the "
                       "128x RLE expansion bound");

    std::uint8_t scheme_tag = 0;
    if (header_.version == kFormatVersionMixed && !mask_chunk) {
      if ((flags & kChunkFlagSchemeTag) == 0)
        throw TraceError(
            "trace: mixed-scheme (v3) payload chunk is missing its scheme "
            "tag");
      scheme_tag =
          static_cast<std::uint8_t>(flags >> kChunkSchemeTagShift);
      if (scheme_tag < 1 || scheme_tag > 7)
        throw TraceError("trace: chunk scheme tag " +
                         std::to_string(scheme_tag) + " out of range");
    }
    if (mask_chunk && (flags & kChunkFlagSchemeTag) != 0)
      throw TraceError(
          "trace: mask-stream chunk carries a scheme tag (tags belong to "
          "payload chunks)");

    if (mask_chunk) {
      // A mask-stream chunk is the rider of the payload chunk directly
      // before it: out-of-order riders (mask first, two masks in a row,
      // mask in a non-encoded file) are index corruption.
      if (!header_.encoded())
        throw TraceError(
            "trace: mask-stream chunk in a trace without the encoded flag");
      if (chunks_.empty() || chunks_.back().has_mask())
        throw TraceError(
            "trace: mask-stream chunk without a payload chunk directly "
            "before it (out-of-order chunk index)");
      ChunkInfo& owner = chunks_.back();
      if (burst_count != owner.burst_count)
        throw TraceError("trace: mask-stream burst count " +
                         std::to_string(burst_count) +
                         " != its payload chunk's " +
                         std::to_string(owner.burst_count));
      owner.mask_offset = cur.pos();
      owner.mask_flags = flags;
      owner.mask_bytes = payload_bytes;
      (void)cur.bytes(payload_bytes);
      continue;
    }

    if (header_.encoded() && !chunks_.empty() && !chunks_.back().has_mask())
      throw TraceError(
          "trace: encoded trace has consecutive payload chunks (chunk " +
          std::to_string(chunks_.size() - 1) + " is missing its mask "
          "stream)");
    ChunkInfo info;
    info.burst_count = burst_count;
    info.flags = flags;
    info.payload_bytes = payload_bytes;
    info.scheme_tag = scheme_tag;
    info.first_burst = bursts_seen;
    info.payload_offset = cur.pos();
    (void)cur.bytes(info.payload_bytes);
    bursts_seen += info.burst_count;
    chunks_.push_back(info);
  }
  if (header_.encoded() && !chunks_.empty() && !chunks_.back().has_mask())
    throw TraceError(
        "trace: encoded trace is missing the final mask-stream chunk");
  if (chunks_.size() != chunk_count)
    throw TraceError("trace: footer chunk count " +
                     std::to_string(chunk_count) + " != chunks present " +
                     std::to_string(chunks_.size()));
  if (bursts_seen != stats_.bursts)
    throw TraceError("trace: footer burst count " +
                     std::to_string(stats_.bursts) + " != bursts present " +
                     std::to_string(bursts_seen));
  validate_chunk_index(footer_off);
}

void TraceReader::validate_chunk_index(std::size_t footer_off) const {
  // Defense in depth for the offsets chunk_payload() / chunk_masks()
  // trust for the reader's lifetime: every chunk's extent (header +
  // payload, then its mask rider) must start after the previous extent
  // ends and finish before the footer, in strictly increasing file
  // order. The sequential walk above derives offsets from a bounded
  // cursor, so a violation here means the index-construction invariant
  // itself broke — fail loudly instead of serving overlapping views.
  std::uint64_t prev_end = kHeaderBytes;
  std::int64_t prev_first = -1;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    const ChunkInfo& c = chunks_[i];
    if (c.first_burst <= prev_first)
      throw TraceError("trace: chunk " + std::to_string(i) +
                       " first_burst out of order");
    prev_first = c.first_burst;
    if (c.payload_offset < prev_end + kChunkHeaderBytes ||
        c.payload_offset + c.payload_bytes < c.payload_offset)
      throw TraceError("trace: chunk " + std::to_string(i) +
                       " payload offset overlaps the preceding chunk");
    prev_end = c.payload_offset + c.payload_bytes;
    if (c.has_mask()) {
      if (c.mask_offset < prev_end + kChunkHeaderBytes ||
          c.mask_offset + c.mask_bytes < c.mask_offset)
        throw TraceError("trace: chunk " + std::to_string(i) +
                         " mask offset overlaps its payload chunk");
      prev_end = c.mask_offset + c.mask_bytes;
    }
    if (prev_end > footer_off)
      throw TraceError("trace: chunk " + std::to_string(i) +
                       " extends into the footer");
  }
}

std::span<const std::uint8_t> TraceReader::chunk_payload(
    std::size_t i, std::vector<std::uint8_t>& scratch) const {
  const ChunkInfo& info = chunks_.at(i);
  const auto on_disk = file_.bytes().subspan(
      static_cast<std::size_t>(info.payload_offset), info.payload_bytes);
  if (!info.compressed()) return on_disk;  // zero copy
  const std::size_t raw =
      static_cast<std::size_t>(info.burst_count) *
      static_cast<std::size_t>(header_.bytes_per_burst());
  scratch.resize(raw);
  rle_decompress(on_disk, scratch);
  metrics_->rle_chunks.fetch_add(1, std::memory_order_relaxed);
  metrics_->rle_bytes_compressed.fetch_add(on_disk.size(),
                                           std::memory_order_relaxed);
  metrics_->rle_bytes_expanded.fetch_add(raw, std::memory_order_relaxed);
  return scratch;
}

std::span<const std::uint64_t> TraceReader::chunk_masks(
    std::size_t i, std::vector<std::uint8_t>& scratch,
    std::vector<std::uint64_t>& out) const {
  const ChunkInfo& info = chunks_.at(i);
  if (!info.has_mask())
    throw TraceError(
        "trace: chunk has no mask stream (not an encoded trace)");
  const auto on_disk = file_.bytes().subspan(
      static_cast<std::size_t>(info.mask_offset), info.mask_bytes);
  const std::size_t raw = static_cast<std::size_t>(info.burst_count) *
                          static_cast<std::size_t>(header_.group_count()) *
                          kMaskBytesPerBurst;
  std::span<const std::uint8_t> bytes = on_disk;
  if ((info.mask_flags & kChunkFlagRle) != 0) {
    scratch.resize(raw);
    rle_decompress(on_disk, scratch);
    metrics_->rle_chunks.fetch_add(1, std::memory_order_relaxed);
    metrics_->rle_bytes_compressed.fetch_add(on_disk.size(),
                                             std::memory_order_relaxed);
    metrics_->rle_bytes_expanded.fetch_add(raw, std::memory_order_relaxed);
    bytes = scratch;
  }
  out.resize(raw / kMaskBytesPerBurst);
  const int bl = header_.cfg.burst_length;
  for (std::size_t w = 0; w < out.size(); ++w) {
    std::uint64_t m = 0;
    for (std::size_t b = 0; b < kMaskBytesPerBurst; ++b)
      m |= static_cast<std::uint64_t>(bytes[w * kMaskBytesPerBurst + b])
           << (8 * b);
    if (bl < 64 && (m >> bl) != 0) {
      const auto groups = static_cast<std::size_t>(header_.group_count());
      throw TraceError("trace: inversion mask of burst " +
                       std::to_string(w / groups) + " group " +
                       std::to_string(w % groups) +
                       " has bits beyond burst length " + std::to_string(bl));
    }
    out[w] = m;
  }
  return out;
}

void TraceReader::unpack_burst_at(std::span<const std::uint8_t> payload,
                                  std::size_t j,
                                  std::span<dbi::Word> words) const {
  if (header_.wide())
    throw TraceError(
        "trace: wide multi-group bursts have no single-word beat view; "
        "slice per group (see WideBusConfig) or replay through the engine");
  const auto bb = static_cast<std::size_t>(header_.cfg.bytes_per_burst());
  if ((j + 1) * bb > payload.size())
    throw TraceError("trace: burst index outside chunk payload");
  unpack_burst(payload.data() + j * bb, header_.cfg, words);
}

workload::BurstTrace TraceReader::to_burst_trace() const {
  if (header_.wide())
    throw TraceError(
        "trace: wide multi-group traces cannot be materialised as a "
        "single-group BurstTrace; replay through the engine instead");
  if (header_.encoded())
    throw TraceError(
        "trace: encoded traces hold the transmitted stream, not payload "
        "bursts; decode first (dbitool decode / a kDecode Session)");
  workload::BurstTrace trace(header_.cfg);
  std::vector<std::uint8_t> scratch;
  std::vector<dbi::Word> words(
      static_cast<std::size_t>(header_.cfg.burst_length));
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    const auto payload = chunk_payload(c, scratch);
    for (std::size_t j = 0; j < chunks_[c].burst_count; ++j) {
      unpack_burst_at(payload, j, words);
      trace.push(dbi::Burst(header_.cfg, words));
    }
  }
  return trace;
}

}  // namespace dbi::trace
