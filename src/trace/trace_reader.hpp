// TraceReader: mmap-backed, zero-copy reader for the binary trace
// format v2/v3 (v3 = mixed-scheme encoded traces with per-chunk
// scheme tags; see trace/format.hpp).
//
// open() maps the whole file read-only (falling back to a buffered read
// on platforms without mmap), validates header, chunk index, footer and
// CRC up front, and then serves fixed-size chunks as views straight
// into the mapping: uncompressed chunks cost no copy at all, RLE chunks
// decompress into a caller-provided scratch buffer that is reused
// across chunks — no per-burst allocation anywhere.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "trace/format.hpp"
#include "workload/trace.hpp"

namespace dbi::trace {

/// Read-only mapping of an entire file. Uses POSIX mmap where available
/// (advising the kernel of sequential access); otherwise reads the file
/// into memory, preserving the same view semantics.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Throws TraceError when the file cannot be opened or mapped.
  [[nodiscard]] static MappedFile open(const std::string& path);

  /// Wraps an in-memory image (tests, pipes) with view semantics.
  [[nodiscard]] static MappedFile from_vector(std::vector<std::uint8_t> data);

  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {data_, size_};
  }
  [[nodiscard]] bool is_mmap() const { return mapped_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;                 // true: munmap on destruction
  std::vector<std::uint8_t> fallback_;  // owns the data when !mapped_
};

/// Location and shape of one payload chunk inside the file. In encoded
/// traces the mask-stream chunk riding behind it is folded into the
/// same record (mask_* fields), so consumers index payload chunks only.
struct ChunkInfo {
  std::uint64_t payload_offset = 0;  ///< file offset of the payload bytes
  std::uint32_t burst_count = 0;
  std::uint32_t flags = 0;
  std::uint32_t payload_bytes = 0;  ///< on-disk (possibly compressed) size
  std::int64_t first_burst = 0;     ///< global index of its first burst
  std::uint64_t mask_offset = 0;    ///< file offset of the mask bytes
  std::uint32_t mask_flags = 0;
  std::uint32_t mask_bytes = 0;  ///< on-disk (possibly compressed) size
  /// Mixed-scheme (v3) traces: this chunk's scheme tag (1 + Scheme enum
  /// value, the header-byte-17 mapping, validated 1..7 at parse).
  /// 0 in v2 traces — consult the header's enc_scheme there.
  std::uint8_t scheme_tag = 0;

  [[nodiscard]] bool compressed() const { return (flags & kChunkFlagRle) != 0; }
  [[nodiscard]] bool has_mask() const {
    return (mask_flags & kChunkFlagMask) != 0;
  }
  [[nodiscard]] bool has_scheme_tag() const { return scheme_tag != 0; }
};

/// Running I/O-side tallies of one reader: RLE expansion volume
/// (updated as chunks are served, from any thread) and the one-time CRC
/// verification cost. Heap-held so the reader stays movable.
struct ReaderMetrics {
  std::atomic<std::uint64_t> rle_chunks{0};
  std::atomic<std::uint64_t> rle_bytes_compressed{0};  // on-disk bytes
  std::atomic<std::uint64_t> rle_bytes_expanded{0};
  std::uint64_t crc_ns = 0;  // set once in parse(); 0 when CRC skipped
};

class TraceReader {
 public:
  /// Maps and fully validates `path`: magics, version, geometry, chunk
  /// index consistency, footer stats and (unless `verify_crc` is off)
  /// the whole-file CRC. Throws TraceError on any violation.
  [[nodiscard]] static TraceReader open(const std::string& path,
                                        bool verify_crc = true);

  /// Same, over an in-memory image (tests, pipes).
  [[nodiscard]] static TraceReader from_bytes(std::vector<std::uint8_t> image,
                                              bool verify_crc = true);

  /// Single-group geometry; for wide traces only width / burst_length
  /// are meaningful (see header().wide_config()).
  [[nodiscard]] const dbi::BusConfig& config() const { return header_.cfg; }
  /// True when this is a wide multi-group trace (one DBI per byte
  /// group, beat-major payload).
  [[nodiscard]] bool wide() const { return header_.wide(); }
  /// True when the payload chunks hold the transmitted (post-DBI)
  /// stream and every chunk carries a mask stream (chunk_masks()).
  [[nodiscard]] bool encoded() const { return header_.encoded(); }
  [[nodiscard]] const TraceHeader& header() const { return header_; }
  [[nodiscard]] const workload::TraceStats& stats() const { return stats_; }
  [[nodiscard]] std::int64_t bursts() const { return stats_.bursts; }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  [[nodiscard]] const ChunkInfo& chunk(std::size_t i) const {
    return chunks_.at(i);
  }
  [[nodiscard]] std::size_t file_bytes() const { return file_.bytes().size(); }
  [[nodiscard]] bool is_mmap() const { return file_.is_mmap(); }
  [[nodiscard]] const ReaderMetrics& metrics() const { return *metrics_; }

  /// Unpacked-on-disk payload of chunk `i`: burst_count bursts of
  /// bytes_per_burst() packed little-endian bytes. Uncompressed chunks
  /// return a view into the mapping (zero copy); RLE chunks decompress
  /// into `scratch` (resized as needed, reuse it across chunks).
  [[nodiscard]] std::span<const std::uint8_t> chunk_payload(
      std::size_t i, std::vector<std::uint8_t>& scratch) const;

  /// Inversion masks of chunk `i` (encoded traces only): one u64 per
  /// (burst, group) pair in burst-major / group-minor order — burst j's
  /// group g at [j * group_count + g], matching the engine's
  /// BurstResult order. RLE'd mask streams decompress into `scratch`;
  /// the little-endian words are assembled into `out` (resized), and
  /// mask bits at or beyond burst_length throw. Both buffers are reused
  /// across chunks; the returned span is valid until they are touched.
  [[nodiscard]] std::span<const std::uint64_t> chunk_masks(
      std::size_t i, std::vector<std::uint8_t>& scratch,
      std::vector<std::uint64_t>& out) const;

  /// Decodes burst `j` of chunk `i` into `words` (burst_length slots).
  /// Convenience for inspection paths; streaming consumers should work
  /// on whole chunk payloads.
  void unpack_burst_at(std::span<const std::uint8_t> payload, std::size_t j,
                       std::span<dbi::Word> words) const;

  /// Materialises the whole trace (small files, tests, text conversion).
  [[nodiscard]] workload::BurstTrace to_burst_trace() const;

 private:
  explicit TraceReader(MappedFile file) : file_(std::move(file)) {}
  void parse(bool verify_crc);
  void validate_chunk_index(std::size_t footer_off) const;

  MappedFile file_;
  TraceHeader header_;
  workload::TraceStats stats_;
  std::vector<ChunkInfo> chunks_;
  std::unique_ptr<ReaderMetrics> metrics_ = std::make_unique<ReaderMetrics>();
};

}  // namespace dbi::trace
