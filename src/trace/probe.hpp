// probe_trace_file: catalog-grade metadata probe of a binary trace.
//
// Reads ONLY the 32-byte header and 64-byte footer of a v2/v3 trace
// file — two bounded reads, no mmap, no chunk walk, no CRC pass — and
// validates what it sees with the same strictness TraceReader applies
// to those regions. This is what the lake catalog builder records for
// every member (geometry, scheme, burst count, byte extent, stored
// CRC) and what stale-catalog detection re-reads per file: cheap
// enough to run on thousands of members, strict enough that a probe
// that succeeds describes a structurally plausible trace. Full
// validation of the chunk index and payload CRC stays TraceReader's
// job (`LakeReader::verify_members`, `dbitool lake verify`).
#pragma once

#include <cstdint>
#include <string>

#include "trace/format.hpp"
#include "workload/trace.hpp"

namespace dbi::trace {

/// Header + footer metadata of one trace file.
struct TraceFileProbe {
  TraceHeader header;
  workload::TraceStats stats;  ///< footer totals (payload stream)
  std::uint64_t chunk_count = 0;
  std::uint64_t file_bytes = 0;
  std::uint32_t crc = 0;  ///< stored footer CRC-32 (not re-verified here)
};

/// Probes `path`. Throws TraceError on I/O failure or any header /
/// footer violation (bad magic, unsupported version, bad geometry,
/// negative counts, ...).
[[nodiscard]] TraceFileProbe probe_trace_file(const std::string& path);

}  // namespace dbi::trace
