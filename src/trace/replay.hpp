// ReplayPipeline: streams a binary trace through the batch encode
// engine at line rate.
//
// The trace is interpreted exactly like a workload::Channel stream:
// burst g belongs to lane g % lanes, and each lane threads its own
// persistent BusState through its bursts (or resets to the paper's
// all-ones boundary per burst). Chunks flow through a two-slot
// producer/consumer pipeline — a producer thread prepares chunk N+1
// (RLE decompression, page warm-up of the mmap view) while the
// ShardPool workers encode chunk N — and the lane/group sharding,
// zero-copy single-lane encode and 64-bit accumulation are the shared
// engine::StreamEncoder core, so gigabyte-scale traces replay without
// ever materialising a Burst.
//
// This is an internal dispatch target of dbi::Session (the public
// front-end): Session routes trace-backed sources here so the
// double-buffer loop and the mmap zero-copy path are preserved behind
// the facade.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "api/stream_stats.hpp"
#include "engine/batch_encoder.hpp"
#include "engine/shard_pool.hpp"
#include "engine/stream_encoder.hpp"
#include "trace/trace_reader.hpp"

namespace dbi::trace {

struct ReplayOptions {
  /// Interleaved lane streams: burst g goes to lane g % lanes, each
  /// with its own threaded line state (matches Channel's write order).
  int lanes = 1;
  /// Reset every lane to the all-ones boundary before each burst
  /// (the paper's per-burst assumption) instead of threading state.
  bool reset_state_per_burst = false;
  /// Shard lanes across this pool (lane l -> worker l % workers);
  /// null replays serially. Results are identical either way.
  engine::ShardPool* pool = nullptr;
  /// Overlap chunk preparation with encoding via a producer thread.
  bool double_buffer = true;
  /// Double-buffer stall counters (producer- vs consumer-starved) and
  /// chunk-prepare spans; forwarded to the StreamEncoder core too.
  /// Null disables; must outlive the pipeline.
  const obs::Observer* obs = nullptr;
  /// Optional per-chunk observer: called in trace order with the global
  /// index of the chunk's first burst and one BurstResult per
  /// (burst, group) pair — burst j's group g at results[j * groups + g]
  /// (groups == 1 for single-group traces, so plain per-burst order
  /// there). Enables mask-exact verification and inspection.
  std::function<void(std::int64_t first_burst,
                     std::span<const engine::BurstResult> results)>
      on_results;

  void validate() const;
};

/// 64-bit aggregate of one replay run (the unified streaming totals
/// type; `writes` stays 0 on the replay path).
using ReplayTotals = dbi::StreamStats;

class ReplayPipeline {
 public:
  /// Reader and encoder must outlive the pipeline; geometry comes from
  /// the reader.
  ReplayPipeline(const TraceReader& reader,
                 const engine::BatchEncoder& encoder,
                 ReplayOptions options = {});

  /// Replays the whole trace once and returns the totals. Restartable:
  /// every run starts from fresh all-ones lane states.
  ReplayTotals run();

 private:
  void encode_chunk(const ChunkInfo& info,
                    std::span<const std::uint8_t> payload);

  const TraceReader& reader_;
  ReplayOptions opt_;
  engine::StreamEncoder stream_;
};

/// One-shot convenience wrapper.
ReplayTotals replay_trace(const TraceReader& reader,
                          const engine::BatchEncoder& encoder,
                          const ReplayOptions& options = {});

}  // namespace dbi::trace
