// ReplayPipeline: streams a binary trace through the batch encode
// engine at line rate.
//
// The trace is interpreted exactly like a workload::Channel stream:
// burst g belongs to lane g % lanes, and each lane threads its own
// persistent BusState through its bursts (or resets to the paper's
// all-ones boundary per burst). Chunks flow through a two-slot
// producer/consumer pipeline — a producer thread prepares chunk N+1
// (RLE decompression, page warm-up of the mmap view) while the
// ShardPool workers encode chunk N — and per-lane zero / transition
// totals accumulate in 64-bit counters, so gigabyte-scale traces
// replay without ever materialising a Burst.
//
// Wide multi-group traces shard one level finer: the pool unit is a
// (lane, byte group) pair, each threading its own group BusState, so a
// single x64 lane still spreads across 8 workers. Single-lane wide
// replay consumes the beat-major chunk view in place (group g read at
// stride groups — zero copy off the mmap); multi-lane replay gathers
// each unit's group slice into a contiguous per-unit buffer.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "engine/batch_encoder.hpp"
#include "engine/shard_pool.hpp"
#include "trace/trace_reader.hpp"

namespace dbi::trace {

struct ReplayOptions {
  /// Interleaved lane streams: burst g goes to lane g % lanes, each
  /// with its own threaded line state (matches Channel's write order).
  int lanes = 1;
  /// Reset every lane to the all-ones boundary before each burst
  /// (the paper's per-burst assumption) instead of threading state.
  bool reset_state_per_burst = false;
  /// Shard lanes across this pool (lane l -> worker l % workers);
  /// null replays serially. Results are identical either way.
  engine::ShardPool* pool = nullptr;
  /// Overlap chunk preparation with encoding via a producer thread.
  bool double_buffer = true;
  /// Optional per-chunk observer: called in trace order with the global
  /// index of the chunk's first burst and one BurstResult per
  /// (burst, group) pair — burst j's group g at results[j * groups + g]
  /// (groups == 1 for single-group traces, so plain per-burst order
  /// there). Enables mask-exact verification and inspection.
  std::function<void(std::int64_t first_burst,
                     std::span<const engine::BurstResult> results)>
      on_results;

  void validate() const;
};

/// 64-bit aggregate of one replay run.
struct ReplayTotals {
  std::int64_t bursts = 0;
  std::int64_t zeros = 0;
  std::int64_t transitions = 0;

  [[nodiscard]] double zeros_per_burst() const {
    return bursts ? static_cast<double>(zeros) / static_cast<double>(bursts)
                  : 0.0;
  }
  [[nodiscard]] double transitions_per_burst() const {
    return bursts
               ? static_cast<double>(transitions) / static_cast<double>(bursts)
               : 0.0;
  }
};

class ReplayPipeline {
 public:
  /// Reader and encoder must outlive the pipeline; geometry comes from
  /// the reader.
  ReplayPipeline(const TraceReader& reader,
                 const engine::BatchEncoder& encoder,
                 ReplayOptions options = {});

  /// Replays the whole trace once and returns the totals. Restartable:
  /// every run starts from fresh all-ones lane states.
  ReplayTotals run();

 private:
  /// Scratch of one shard unit — (lane, group); group is always 0 for
  /// single-group traces.
  struct UnitScratch {
    std::vector<std::uint8_t> bytes;           // gathered packed slice
    std::vector<engine::BurstResult> results;  // only with on_results
    std::vector<std::size_t> positions;        // chunk-order burst slots
    dbi::BusState state = dbi::BusState::all_zeros();
    std::int64_t zeros = 0;
    std::int64_t transitions = 0;
  };

  void encode_chunk(const ChunkInfo& info,
                    std::span<const std::uint8_t> payload);
  void encode_unit_slice(int unit, const ChunkInfo& info,
                         std::span<const std::uint8_t> payload);

  const TraceReader& reader_;
  const engine::BatchEncoder& encoder_;
  ReplayOptions opt_;
  int groups_ = 1;  ///< DBI groups per burst (1 unless the trace is wide)
  std::vector<UnitScratch> units_;  ///< lanes x groups, group-minor
  std::vector<engine::BurstResult> chunk_results_;  // only with on_results
};

/// One-shot convenience wrapper.
ReplayTotals replay_trace(const TraceReader& reader,
                          const engine::BatchEncoder& encoder,
                          const ReplayOptions& options = {});

}  // namespace dbi::trace
