// The "avx512-fixed8" kernel variant: AVX-512 (F+BW+DQ+VL, the
// Skylake-server baseline) implementations of the hot fixed-scheme
// paths. This TU is compiled with per-file -mavx512* flags (see the
// DBI_SIMD block in CMakeLists.txt) and registers itself only when
// CMake defined DBI_HAVE_AVX512 for it; the registry additionally gates
// selection on runtime CPUID, so the binary stays portable.
//
// Envelope (everything else falls back to the portable reference):
//   * encode_fixed8: DC / AC / ACDC at burst_length 8 — 8 bursts per
//     zmm. Per-byte popcounts via the nibble LUT + shuffle, decision
//     flags straight into __mmask64 compares, mask -> 0xFF lane spread
//     with vpmovm2b, per-burst ones/transition counts from vpsadbw
//     against the byte-shifted stream. The AC beat-0 boundary (previous
//     transmitted byte + DBI value) and the 8-bit decision prefix XOR
//     stay scalar per burst: that recurrence is serial across bursts by
//     construction, but it is ~10 cheap ops against a vectorised rest.
//   * decode_fixed8: width 8, burst_length % 8 == 0 — mask bits to XOR
//     bytes with vpmovm2b, 64 transmitted bytes per step.
//   * decode_wide8: burst_length % 8 == 0 — the 8x8 mask-tile transpose
//     feeds vpmovm2b directly, one zmm per 8 wide beats.
//
// Bit-exactness vs the SWAR reference is structural: the flags computed
// here are the same per-byte popcount thresholds, the prefix XOR is the
// same recurrence, and stats come from the same popcount identities —
// the parity suite and the differential fuzzer hold every path to that.
#include "engine/kernel_variants.hpp"

#if defined(DBI_HAVE_AVX512)

#include <immintrin.h>

#include <bit>
#include <cstring>

#include "engine/kernels_portable.hpp"

namespace dbi::engine {
namespace {

/// Per-byte popcount of 64 bytes: nibble LUT + vpshufb, twice.
inline __m512i byte_popcount512(__m512i v) {
  // (Not _mm512_broadcast_i32x4: its _mm512_undefined_epi32 pass-through
  // trips gcc 12's -Wmaybe-uninitialized under -Werror.)
  const __m512i lut = _mm512_set_epi8(
      4, 3, 3, 2, 3, 2, 2, 1, 3, 2, 2, 1, 2, 1, 1, 0,
      4, 3, 3, 2, 3, 2, 2, 1, 3, 2, 2, 1, 2, 1, 1, 0,
      4, 3, 3, 2, 3, 2, 2, 1, 3, 2, 2, 1, 2, 1, 1, 0,
      4, 3, 3, 2, 3, 2, 2, 1, 3, 2, 2, 1, 2, 1, 1, 0);
  const __m512i nib = _mm512_set1_epi8(0x0F);
  const __m512i lo = _mm512_and_si512(v, nib);
  const __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), nib);
  return _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo),
                         _mm512_shuffle_epi8(lut, hi));
}

/// 8-bit in-register prefix XOR: bit k of the result = XOR of bits 0..k.
inline std::uint8_t prefix_xor8(std::uint8_t g) {
  g = static_cast<std::uint8_t>(g ^ (g << 1));
  g = static_cast<std::uint8_t>(g ^ (g << 2));
  g = static_cast<std::uint8_t>(g ^ (g << 4));
  return g;
}

class Avx512Kernel final : public KernelVariant {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "avx512-fixed8";
  }
  [[nodiscard]] KernelIsa isa() const override { return KernelIsa::kAvx512; }
  [[nodiscard]] std::string_view envelope() const override {
    return "DC/AC/ACDC encode at burst length 8 (8 bursts per vector); "
           "width-8 and full-group wide decode at burst lengths divisible "
           "by 8";
  }

  [[nodiscard]] bool supports_fixed8(Fixed8Rule rule,
                                     int burst_length) const override {
    return rule != Fixed8Rule::kRaw && burst_length == 8;
  }
  [[nodiscard]] bool supports_decode8(const dbi::BusConfig& cfg)
      const override {
    return cfg.width == 8 && cfg.burst_length % 8 == 0;
  }
  [[nodiscard]] bool supports_decode_wide8(int burst_length) const override {
    return burst_length % 8 == 0;
  }

  dbi::BurstStats encode_fixed8(Fixed8Rule rule, const std::uint8_t* bytes,
                                std::size_t bursts, int burst_length,
                                int stride, dbi::BusState& state,
                                BurstResult* results,
                                std::size_t results_stride) const override {
    if (burst_length != 8 || rule == Fixed8Rule::kRaw) {
      // Outside the vector envelope (callers normally pre-check with
      // supports_fixed8): portable reference.
      return portable_kernel().encode_fixed8(rule, bytes, bursts, burst_length,
                                             stride, state, results,
                                             results_stride);
    }

    dbi::BurstStats totals;
    std::uint64_t prev_tx = state.last.dq & 0xFFU;
    bool prev_dbi = state.last.dbi;
    const std::uint8_t* p = bytes;
    std::size_t i = 0;

    alignas(64) std::uint8_t gbuf[64];
    // Byte-shift-with-carry scratch for the transition stream: the
    // block's transmitted bytes at sc+8, the carried previous byte at
    // sc+7, so an unaligned reload at sc+7 is "every byte's
    // predecessor" — valid across burst boundaries because bursts are
    // time-consecutive on the wire.
    alignas(64) std::uint8_t sc[72];
    alignas(64) std::uint64_t txq[8];
    alignas(64) std::uint64_t txpop[8];
    alignas(64) std::uint64_t adjpop[8];

    for (; i + 8 <= bursts; i += 8, p += std::size_t{64} * stride) {
      const std::uint8_t* b = p;
      if (stride != 1) {
        for (int k = 0; k < 64; ++k)
          gbuf[k] = p[static_cast<std::size_t>(k) *
                      static_cast<std::size_t>(stride)];
        b = gbuf;
      }
      const __m512i v = _mm512_loadu_si512(b);
      const __m512i pop = byte_popcount512(v);

      std::uint64_t s64;
      if (rule == Fixed8Rule::kDc) {
        // DC: invert iff popcount(byte) <= 3; no recurrence at all.
        s64 = _mm512_cmple_epu8_mask(pop, _mm512_set1_epi8(3));
      } else {
        // AC / ACDC: h-flags for beats 1..7 of every burst in one
        // compare. The lane-local byte shift corrupts only each lane's
        // byte 0 — beat 0 of a burst, whose flag the boundary rule
        // overwrites anyway.
        const __m512i h =
            byte_popcount512(_mm512_xor_si512(v, _mm512_bslli_epi128(v, 1)));
        const std::uint64_t g_bits =
            _mm512_cmp_epu8_mask(h, _mm512_set1_epi8(5), _MM_CMPINT_NLT);
        std::uint64_t dc_bits = 0;
        if (rule == Fixed8Rule::kAcDc)
          dc_bits = _mm512_cmple_epu8_mask(pop, _mm512_set1_epi8(3));

        // Serial per-burst fixup: beat 0 decides against the physical
        // bus state, then the burst's 8 decision bits collapse with a
        // register prefix XOR. Threads a local (tx, dbi) shadow of the
        // carry chain; the stats pass below recomputes the same values.
        std::uint64_t ptx = prev_tx;
        bool pdbi = prev_dbi;
        s64 = 0;
        for (int j = 0; j < 8; ++j) {
          std::uint8_t gb =
              static_cast<std::uint8_t>((g_bits >> (8 * j)) & 0xFE);
          bool g0;
          if (rule == Fixed8Rule::kAcDc) {
            g0 = ((dc_bits >> (8 * j)) & 1U) != 0;
          } else {
            const int t0 =
                std::popcount(static_cast<std::uint32_t>(
                    (b[8 * j] ^ ptx) & 0xFFU)) +
                (pdbi ? 0 : 1);
            g0 = t0 >= 5;
          }
          const std::uint8_t sb =
              prefix_xor8(static_cast<std::uint8_t>(gb | (g0 ? 1 : 0)));
          s64 |= static_cast<std::uint64_t>(sb) << (8 * j);
          ptx = b[8 * j + 7] ^ ((sb & 0x80U) ? 0xFFU : 0U);
          pdbi = (sb & 0x80U) == 0;
        }
      }

      const __m512i tx =
          _mm512_xor_si512(v, _mm512_movm_epi8(static_cast<__mmask64>(s64)));
      _mm512_store_si512(txq, tx);
      _mm512_store_si512(txpop,
                         _mm512_sad_epu8(byte_popcount512(tx),
                                         _mm512_setzero_si512()));
      sc[7] = static_cast<std::uint8_t>(prev_tx);
      _mm512_storeu_si512(sc + 8, tx);
      const __m512i prevv = _mm512_loadu_si512(sc + 7);
      _mm512_store_si512(
          adjpop, _mm512_sad_epu8(byte_popcount512(_mm512_xor_si512(tx, prevv)),
                                  _mm512_setzero_si512()));

      for (int j = 0; j < 8; ++j) {
        const auto sb = static_cast<std::uint32_t>((s64 >> (8 * j)) & 0xFFU);
        dbi::BurstStats st;
        st.zeros = 64 - static_cast<int>(txpop[j]) +
                   std::popcount(sb);
        const std::uint32_t dbi_bits = ~sb & 0xFFU;
        const std::uint32_t dbi_adj =
            (dbi_bits ^ ((dbi_bits << 1) | (prev_dbi ? 1U : 0U))) & 0xFFU;
        st.transitions =
            static_cast<int>(adjpop[j]) + std::popcount(dbi_adj);
        totals += st;
        if (results)
          results[(i + static_cast<std::size_t>(j)) * results_stride] =
              BurstResult{sb, st};
        prev_tx = (txq[j] >> 56) & 0xFFU;
        prev_dbi = (sb & 0x80U) == 0;
      }
    }

    state.last = dbi::Beat{static_cast<dbi::Word>(prev_tx), prev_dbi};
    // Tail bursts (< 8): the shared portable per-burst kernel, carrying
    // the threaded state — bit-exact by construction.
    for (; i < bursts; ++i, p += std::size_t{8} * stride) {
      BurstResult r;
      if (stride == 1) {
        r = kernels::encode_burst8(rule, kernels::ByteBeats{p, 8}, state);
      } else {
        r = kernels::encode_burst8(rule, kernels::StridedBeats{p, 8, stride},
                                   state);
      }
      totals += r.stats;
      if (results) results[i * results_stride] = r;
    }
    return totals;
  }

  void decode_fixed8(const std::uint8_t* tx, const std::uint64_t* masks,
                     std::size_t bursts, const dbi::BusConfig& cfg,
                     std::uint8_t* out) const override {
    if (cfg.width != 8 || cfg.burst_length % 8 != 0) {
      portable_kernel().decode_fixed8(tx, masks, bursts, cfg, out);
      return;
    }
    // Width 8: every 8 consecutive transmitted bytes are one 8-beat
    // block whose flags are one byte of its burst's mask. Eight blocks
    // make a zmm regardless of where the burst boundaries fall.
    const auto bpb = static_cast<std::size_t>(cfg.burst_length) / 8;
    const std::size_t blocks = bursts * bpb;
    std::size_t bk = 0;
    for (; bk + 8 <= blocks; bk += 8) {
      std::uint64_t m64 = 0;
      for (std::size_t j = 0; j < 8; ++j) {
        const std::size_t block = bk + j;
        m64 |= ((masks[block / bpb] >> (8 * (block % bpb))) & 0xFFULL)
               << (8 * j);
      }
      const __m512i v = _mm512_loadu_si512(tx + bk * 8);
      _mm512_storeu_si512(
          out + bk * 8,
          _mm512_xor_si512(v, _mm512_movm_epi8(static_cast<__mmask64>(m64))));
    }
    for (; bk < blocks; ++bk) {
      const std::uint64_t inv = kernels::spread_bits_to_bytes(
          (masks[bk / bpb] >> (8 * (bk % bpb))) & 0xFFULL);
      std::uint64_t p = 0;
      std::memcpy(&p, tx + bk * 8, 8);
      p ^= inv;
      std::memcpy(out + bk * 8, &p, 8);
    }
  }

  void decode_wide8(std::uint8_t* data, const std::uint64_t* masks,
                    std::size_t bursts, int burst_length) const override {
    if (burst_length % 8 != 0) {
      portable_kernel().decode_wide8(data, masks, bursts, burst_length);
      return;
    }
    // Full 8-group beats: transposing the 8 group-mask bytes of an
    // 8-beat chunk yields, bit (8k + g), "invert group g of beat k" —
    // exactly vpmovm2b's lane order over the beat-major payload.
    const int bl = burst_length;
    const auto bb = static_cast<std::size_t>(bl) * 8;
    for (std::size_t i = 0; i < bursts; ++i) {
      const std::uint64_t* mk = masks + i * 8;
      std::uint8_t* base = data + i * bb;
      for (int t0 = 0; t0 < bl; t0 += 8) {
        std::uint64_t m8 = 0;
        for (int g = 0; g < 8; ++g)
          m8 |= ((mk[g] >> t0) & 0xFFULL) << (8 * g);
        const std::uint64_t tile = transpose8(m8);
        std::uint8_t* p = base + static_cast<std::size_t>(t0) * 8;
        const __m512i v = _mm512_loadu_si512(p);
        _mm512_storeu_si512(
            p,
            _mm512_xor_si512(v, _mm512_movm_epi8(static_cast<__mmask64>(tile))));
      }
    }
  }
};

}  // namespace

const KernelVariant* avx512_kernel() {
  static const Avx512Kernel kernel;
  return &kernel;
}

}  // namespace dbi::engine

#else  // !DBI_HAVE_AVX512

namespace dbi::engine {

const KernelVariant* avx512_kernel() { return nullptr; }

}  // namespace dbi::engine

#endif
