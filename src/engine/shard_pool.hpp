// ShardPool: a work-stealing-free thread pool for lane-group shards.
//
// Every run() distributes shards to workers by the fixed rule
// shard -> worker (shard % workers), and each worker processes its
// shards in increasing order. No stealing, no dynamic scheduling:
// a given (workers, shards) pair always yields the same
// shard-to-thread assignment and per-thread execution order, so
// multi-threaded encoding runs are reproducible and debuggable.
// Shards must write to disjoint state (the engine gives every lane its
// own BusState and result span), which keeps the pool barrier-free.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dbi::obs {
class Observer;
}

namespace dbi::engine {

class ShardPool {
 public:
  /// Spawns `workers` persistent worker threads (clamped to >= 1).
  explicit ShardPool(int workers);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  [[nodiscard]] int workers() const { return static_cast<int>(threads_.size()); }

  /// Runs fn(shard) for every shard in [0, shards): shard s executes on
  /// worker s % workers(), workers process their shards in increasing
  /// order. Blocks until every shard finished. If any fn throws, the
  /// first exception (in worker index order) is rethrown here after all
  /// workers went idle. Not reentrant; one run() at a time.
  void run(int shards, const std::function<void(int shard)>& fn);

  /// A good default worker count for this machine.
  [[nodiscard]] static int default_workers();

  /// Points run() / worker accounting at an observer (nullptr detaches).
  /// The observer must outlive the pool or be detached first; normally
  /// set through obs::Observer::attach_pool().
  void set_observer(const obs::Observer* observer) {
    observer_.store(observer, std::memory_order_release);
  }

 private:
  void worker_loop(int worker_id);

  std::atomic<const obs::Observer*> observer_{nullptr};

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // run() waits for completion
  std::vector<std::thread> threads_;
  std::vector<std::exception_ptr> errors_;  // one slot per worker

  // Job state, guarded by mu_.
  const std::function<void(int)>* fn_ = nullptr;
  int shards_ = 0;
  std::uint64_t generation_ = 0;
  int workers_done_ = 0;
  bool stopping_ = false;
};

}  // namespace dbi::engine
