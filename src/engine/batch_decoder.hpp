// BatchDecoder: line-rate receive side of the DBI code — the SWAR /
// bit-plane twin of BatchEncoder for the decode direction.
//
// The receiver is scheme-blind: every scheme of the family (DC, AC,
// ACDC, OPT, the ablations) transmits value-domain beats with the DBI
// line low on inverted beats, so recovering the payload is one
// flag-masked XOR per beat — the paper's core asymmetry (a trellis to
// encode, an inverter and a handful of XOR gates to decode; see
// hw/hw_dbi_decoder.cpp for the gate-level model this mirrors). DBI AC
// *decides* in the transition domain, but that decision is resolved at
// the transmitter and already folded into the inversion mask; the
// receive path re-derives nothing. The per-scheme parity tests prove
// this against EncodedBurst::decode for every scheme and geometry.
//
// Kernels:
//   * byte groups (width == 8, the trace format's 1-byte-per-beat
//     layout) decode 8 beats per 64-bit XOR: the mask bits spread to
//     0xFF lane bytes with one multiply, so a burst costs two loads,
//     two logic ops and a store;
//   * other narrow widths XOR dq_mask() into each flagged beat's
//     little-endian bytes (validating that transmitted beats fit the
//     bus, like encode_packed);
//   * wide multi-group payloads decode in the beat-major layout in
//     place; the x64 fast path transposes the 8 group masks into
//     per-beat XOR words (8x8 bit transpose + bit->byte spread), and
//     every other group count takes a strided per-group pass with the
//     remainder group's narrower mask.
//
// Because the conditional XOR is an involution, the same kernels apply
// masks in the encode direction (payload -> transmitted stream):
// apply_packed / apply_packed_wide are the documented aliases Session
// and the encoded-trace sink use to materialise the wire stream.
//
// Decoding threads no line state, so bursts are independent and a
// ShardPool splits any call into contiguous burst ranges (results are
// identical with or without a pool).
#pragma once

#include <cstdint>
#include <span>

#include "core/burst.hpp"
#include "core/types.hpp"
#include "engine/kernel_registry.hpp"
#include "engine/shard_pool.hpp"

namespace dbi::engine {

class BatchDecoder {
 public:
  BatchDecoder() : kernel_(&default_kernel()) {}

  /// The kernel variant serving the hot decode paths (byte-per-beat
  /// lanes and the groups==8 wide fast path). Defaults to the
  /// registry's auto selection; geometries outside the variant's
  /// envelope fall back to the portable "swar" reference, so decode is
  /// bit-exact under every variant.
  void set_kernel(const KernelVariant& kernel) { kernel_ = &kernel; }
  [[nodiscard]] const KernelVariant& kernel() const { return *kernel_; }

  /// Attaches per-variant dispatch / fallback counters to the hot
  /// decode paths (nullptr detaches; the observer must outlive the
  /// decoder or be detached first).
  void set_observer(const obs::Observer* obs) { obs_ = obs; }

  /// Recovers the payload of `tx` (packed transmitted bursts in the
  /// binary trace layout: burst_length beats of cfg.bytes_per_beat()
  /// little-endian bytes each) given one inversion mask per burst.
  /// `out` must be tx.size() bytes and may alias `tx` exactly (decode
  /// in place). Transmitted beats outside cfg.dq_mask() and mask bits
  /// at or beyond burst_length throw. With a pool, contiguous burst
  /// ranges decode on different workers.
  void decode_packed(std::span<const std::uint8_t> tx,
                     std::span<const std::uint64_t> masks,
                     const dbi::BusConfig& cfg, std::span<std::uint8_t> out,
                     ShardPool* pool = nullptr) const;

  /// Wide multi-group twin: `tx` holds beat-major packed wide bursts
  /// (cfg.bytes_per_burst() bytes each, byte g of a beat = group g) and
  /// `masks` one u64 per (burst, group) pair, burst-major / group-minor
  /// — the engine's BurstResult order and the trace mask-stream order.
  void decode_packed_wide(std::span<const std::uint8_t> tx,
                          std::span<const std::uint64_t> masks,
                          const dbi::WideBusConfig& cfg,
                          std::span<std::uint8_t> out,
                          ShardPool* pool = nullptr) const;

  /// Encode-direction aliases: the conditional lane XOR is an
  /// involution, so applying masks to a payload yields the transmitted
  /// stream through the very same kernels.
  void apply_packed(std::span<const std::uint8_t> payload,
                    std::span<const std::uint64_t> masks,
                    const dbi::BusConfig& cfg, std::span<std::uint8_t> out,
                    ShardPool* pool = nullptr) const {
    decode_packed(payload, masks, cfg, out, pool);
  }
  void apply_packed_wide(std::span<const std::uint8_t> payload,
                         std::span<const std::uint64_t> masks,
                         const dbi::WideBusConfig& cfg,
                         std::span<std::uint8_t> out,
                         ShardPool* pool = nullptr) const {
    decode_packed_wide(payload, masks, cfg, out, pool);
  }

  /// Scalar reference twin (the pre-engine receive path): materialises
  /// the physical beats as an EncodedBurst and decodes per beat. The
  /// exhaustive ablation and the parity tests hold the kernels to this.
  [[nodiscard]] static dbi::Burst decode_scalar(
      const dbi::BusConfig& cfg, std::span<const dbi::Word> tx,
      std::uint64_t mask);

 private:
  void decode_range(std::span<const std::uint8_t> tx,
                    std::span<const std::uint64_t> masks,
                    const dbi::BusConfig& cfg,
                    std::span<std::uint8_t> out) const;
  void decode_range_wide(std::span<const std::uint8_t> tx,
                         std::span<const std::uint64_t> masks,
                         const dbi::WideBusConfig& cfg,
                         std::span<std::uint8_t> out) const;

  const KernelVariant* kernel_;         // never null
  const obs::Observer* obs_ = nullptr;  // dispatch counters; nullable
};

}  // namespace dbi::engine
