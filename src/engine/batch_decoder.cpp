#include "engine/batch_decoder.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/encoding.hpp"
#include "obs/observer.hpp"

namespace dbi::engine {
namespace {

using dbi::Beat;
using dbi::BusConfig;
using dbi::Word;

void check_mask_tails(std::span<const std::uint64_t> masks, int burst_length,
                      int groups) {
  if (burst_length >= 64) return;
  for (std::size_t i = 0; i < masks.size(); ++i)
    if ((masks[i] >> burst_length) != 0)
      throw std::invalid_argument(
          "BatchDecoder: burst " +
          std::to_string(i / static_cast<std::size_t>(groups)) + " group " +
          std::to_string(i % static_cast<std::size_t>(groups)) +
          ": inversion mask has bits beyond burst length " +
          std::to_string(burst_length));
}

[[noreturn]] void throw_bad_beat(std::size_t burst, int beat, int width) {
  throw std::invalid_argument(
      "BatchDecoder: burst " + std::to_string(burst) + " beat " +
      std::to_string(beat) + ": transmitted word exceeds the width-" +
      std::to_string(width) + " bus");
}

/// Splits `bursts` into one contiguous range per worker. Decoding
/// threads no state, so the split is purely a load balancer and the
/// output is bit-identical with or without the pool.
template <typename Fn>
void shard_bursts(std::size_t bursts, ShardPool* pool, const Fn& fn) {
  constexpr std::size_t kMinBurstsPerWorker = 256;
  const int workers = pool ? pool->workers() : 1;
  if (!pool || workers <= 1 || bursts < 2 * kMinBurstsPerWorker) {
    fn(std::size_t{0}, bursts);
    return;
  }
  const auto w = static_cast<std::size_t>(workers);
  const std::size_t per = (bursts + w - 1) / w;
  pool->run(workers, [&](int r) {
    const std::size_t b0 = static_cast<std::size_t>(r) * per;
    if (b0 >= bursts) return;
    fn(b0, std::min(per, bursts - b0));
  });
}

}  // namespace

void BatchDecoder::decode_range(std::span<const std::uint8_t> tx,
                                std::span<const std::uint64_t> masks,
                                const dbi::BusConfig& cfg,
                                std::span<std::uint8_t> out) const {
  const int bl = cfg.burst_length;
  const auto bpb = static_cast<std::size_t>(cfg.bytes_per_beat());
  const std::size_t bb = static_cast<std::size_t>(bl) * bpb;
  const std::size_t n = tx.size() / bb;
  const Word dq_mask = cfg.dq_mask();

  if (bpb == 1) {
    // Byte-per-beat lanes go through the selected kernel variant
    // (portable reference outside its envelope): 8+ beats decode per
    // flag-masked XOR word, sub-8-wide groups with the lane mask
    // narrowed.
    const KernelVariant& k =
        kernel_->supports_decode8(cfg) ? *kernel_ : portable_kernel();
    if (obs_) obs_->count_decode_dispatch(k, &k != kernel_);
    k.decode_fixed8(tx.data(), masks.data(), n, cfg, out.data());
    return;
  }

  // 2- and 4-byte beats: XOR dq_mask into each flagged beat's
  // little-endian bytes (validating the transmitted word like
  // encode_packed does).
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t m = masks[i];
    const std::uint8_t* src = tx.data() + i * bb;
    std::uint8_t* dst = out.data() + i * bb;
    for (int t = 0; t < bl; ++t) {
      Word w = 0;
      for (std::size_t b = 0; b < bpb; ++b)
        w |= static_cast<Word>(src[static_cast<std::size_t>(t) * bpb + b])
             << (8 * b);
      if ((w & ~dq_mask) != 0) throw_bad_beat(i, t, cfg.width);
      if ((m >> t) & 1U) w ^= dq_mask;
      for (std::size_t b = 0; b < bpb; ++b)
        dst[static_cast<std::size_t>(t) * bpb + b] =
            static_cast<std::uint8_t>(w >> (8 * b));
    }
  }
}

void BatchDecoder::decode_packed(std::span<const std::uint8_t> tx,
                                 std::span<const std::uint64_t> masks,
                                 const dbi::BusConfig& cfg,
                                 std::span<std::uint8_t> out,
                                 ShardPool* pool) const {
  cfg.validate();
  const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());
  if (tx.size() % bb != 0)
    throw std::invalid_argument(
        "BatchDecoder::decode_packed: payload of " +
        std::to_string(tx.size()) + " bytes is not a multiple of the " +
        std::to_string(bb) + "-byte packed burst (width " +
        std::to_string(cfg.width) + ", burst_length " +
        std::to_string(cfg.burst_length) + ")");
  const std::size_t n = tx.size() / bb;
  if (masks.size() != n)
    throw std::invalid_argument(
        "BatchDecoder::decode_packed: " + std::to_string(n) +
        " bursts need " + std::to_string(n) + " masks, got " +
        std::to_string(masks.size()));
  if (out.size() != tx.size())
    throw std::invalid_argument(
        "BatchDecoder::decode_packed: output of " +
        std::to_string(out.size()) + " bytes != input of " +
        std::to_string(tx.size()));
  check_mask_tails(masks, cfg.burst_length, 1);

  shard_bursts(n, pool, [&](std::size_t b0, std::size_t count) {
    decode_range(tx.subspan(b0 * bb, count * bb), masks.subspan(b0, count),
                 cfg, out.subspan(b0 * bb, count * bb));
  });
}

void BatchDecoder::decode_range_wide(std::span<const std::uint8_t> tx,
                                     std::span<const std::uint64_t> masks,
                                     const dbi::WideBusConfig& cfg,
                                     std::span<std::uint8_t> out) const {
  const int groups = cfg.groups();
  const int bl = cfg.burst_length;
  const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());
  const std::size_t n = tx.size() / bb;

  // Start from the transmitted bytes; an exact alias decodes in place.
  if (out.data() != tx.data()) std::memcpy(out.data(), tx.data(), tx.size());

  if (groups == 8 && cfg.width % 8 == 0) {
    // x64 fast path (all groups full) through the selected kernel
    // variant: per beat, the 8 group flags become one XOR word over the
    // beat-major payload (8x8 mask transpose + bit->byte spread).
    const KernelVariant& k =
        kernel_->supports_decode_wide8(bl) ? *kernel_ : portable_kernel();
    if (obs_) obs_->count_decode_wide_dispatch(k, &k != kernel_);
    k.decode_wide8(out.data(), masks.data(), n, bl);
    return;
  }

  // Generic group counts (including remainder groups): strided
  // per-group conditional XOR with the group's own lane mask.
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t* base = out.data() + i * bb;
    for (int g = 0; g < groups; ++g) {
      const auto gmask = static_cast<std::uint8_t>(cfg.group_mask(g));
      const std::uint64_t m = masks[i * static_cast<std::size_t>(groups) +
                                    static_cast<std::size_t>(g)];
      const bool narrow_group = cfg.group_width(g) < 8;
      for (int t = 0; t < bl; ++t) {
        std::uint8_t& b = base[static_cast<std::size_t>(t) *
                                   static_cast<std::size_t>(groups) +
                               static_cast<std::size_t>(g)];
        if (narrow_group && (b & ~gmask) != 0)
          throw std::invalid_argument(
              "BatchDecoder::decode_packed_wide: burst " + std::to_string(i) +
              " beat " + std::to_string(t) +
              ": transmitted byte exceeds the width-" +
              std::to_string(cfg.group_width(g)) + " remainder group " +
              std::to_string(g));
        if ((m >> t) & 1U) b ^= gmask;
      }
    }
  }
}

void BatchDecoder::decode_packed_wide(std::span<const std::uint8_t> tx,
                                      std::span<const std::uint64_t> masks,
                                      const dbi::WideBusConfig& cfg,
                                      std::span<std::uint8_t> out,
                                      ShardPool* pool) const {
  cfg.validate();
  const int groups = cfg.groups();
  const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());
  if (tx.size() % bb != 0)
    throw std::invalid_argument(
        "BatchDecoder::decode_packed_wide: payload of " +
        std::to_string(tx.size()) + " bytes is not a multiple of the " +
        std::to_string(bb) + "-byte packed wide burst (width " +
        std::to_string(cfg.width) + ", " + std::to_string(groups) +
        " groups, burst_length " + std::to_string(cfg.burst_length) + ")");
  const std::size_t n = tx.size() / bb;
  if (masks.size() != n * static_cast<std::size_t>(groups))
    throw std::invalid_argument(
        "BatchDecoder::decode_packed_wide: " + std::to_string(n) +
        " bursts of " + std::to_string(groups) + " groups need " +
        std::to_string(n * static_cast<std::size_t>(groups)) +
        " masks, got " + std::to_string(masks.size()));
  if (out.size() != tx.size())
    throw std::invalid_argument(
        "BatchDecoder::decode_packed_wide: output of " +
        std::to_string(out.size()) + " bytes != input of " +
        std::to_string(tx.size()));
  check_mask_tails(masks, cfg.burst_length, groups);

  const auto gs = static_cast<std::size_t>(groups);
  shard_bursts(n, pool, [&](std::size_t b0, std::size_t count) {
    decode_range_wide(tx.subspan(b0 * bb, count * bb),
                      masks.subspan(b0 * gs, count * gs), cfg,
                      out.subspan(b0 * bb, count * bb));
  });
}

dbi::Burst BatchDecoder::decode_scalar(const dbi::BusConfig& cfg,
                                       std::span<const dbi::Word> tx,
                                       std::uint64_t mask) {
  std::vector<Beat> beats;
  beats.reserve(tx.size());
  for (std::size_t i = 0; i < tx.size(); ++i)
    beats.push_back(Beat{tx[i], ((mask >> i) & 1U) == 0});
  return dbi::EncodedBurst(cfg, std::move(beats)).decode();
}

}  // namespace dbi::engine
