// Shared SWAR primitives of the encode and decode kernels. These are
// subtle enough that two private copies would silently diverge; both
// BatchEncoder and BatchDecoder include this single definition.
#pragma once

#include <cstdint>

namespace dbi::engine {

/// Transposes a u64 viewed as an 8x8 bit matrix (row k = byte k):
/// result byte r bit k = input byte k bit r (Hacker's Delight 7-2).
constexpr std::uint64_t transpose8(std::uint64_t x) {
  std::uint64_t t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAULL;
  x ^= t ^ (t << 7);
  t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCULL;
  x ^= t ^ (t << 14);
  t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ULL;
  x ^= t ^ (t << 28);
  return x;
}

}  // namespace dbi::engine
