// Kernel registry: runtime-dispatched variants of the engine's hot
// fixed-scheme paths.
//
// The engine's inner loops — the width-8 SWAR batch encode, the strided
// wide byte-group kernels, and the flag-masked XOR decode — exist in
// several implementations: the portable SWAR reference ("swar", always
// available) and explicit-SIMD variants (AVX2 / AVX-512 / NEON), each
// compiled in its own TU with per-file -m flags so the binary stays
// portable. A KernelVariant names one implementation, declares the ISA
// it needs and the (rule, burst length) envelope its vector loops
// accept, and exposes the three entry points BatchEncoder/BatchDecoder
// dispatch through. Outside a variant's envelope the caller falls back
// to the portable reference, so every geometry works under every
// variant and results are bit-exact by construction (the SIMD TUs reuse
// the portable kernels for their tails).
//
// Selection: default_kernel() picks the highest-priority variant whose
// ISA the host CPU reports (__builtin_cpu_supports / getauxval), unless
// the DBI_KERNEL environment variable overrides it by name ("swar"
// forces the portable reference everywhere — CI uses this to run the
// whole tier-1 suite under each compiled-in variant). The public
// surface (dbi::available_kernels(), SessionSpec::kernel,
// Session::kernel_report(), dbitool --kernel / kernels) sits on top of
// this registry; see src/api/kernels.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "core/encoder.hpp"
#include "core/encoding.hpp"
#include "core/types.hpp"

namespace dbi::engine {

/// Compact encode result for one burst: the per-beat inversion
/// decisions plus the zero / transition counts against the pre-burst
/// bus state (DBI line included for every scheme except RAW).
struct BurstResult {
  std::uint64_t invert_mask = 0;
  dbi::BurstStats stats;

  friend constexpr bool operator==(const BurstResult&, const BurstResult&) =
      default;
};

/// Instruction-set requirement of a kernel variant.
enum class KernelIsa { kPortable, kAvx2, kAvx512, kNeon };

[[nodiscard]] std::string_view isa_name(KernelIsa isa);

/// Whether the host CPU can execute `isa` (cached CPUID / hwcap probe;
/// kPortable is always true).
[[nodiscard]] bool isa_available(KernelIsa isa);

/// The per-burst decision rule of the width-8 fixed-scheme kernels.
enum class Fixed8Rule { kRaw, kDc, kAc, kAcDc };

/// Maps a Scheme to its fixed width-8 rule; empty for the trellis /
/// exhaustive schemes, which always run the portable kernels.
[[nodiscard]] constexpr std::optional<Fixed8Rule> fixed8_rule(
    dbi::Scheme scheme) {
  switch (scheme) {
    case dbi::Scheme::kRaw:
      return Fixed8Rule::kRaw;
    case dbi::Scheme::kDc:
      return Fixed8Rule::kDc;
    case dbi::Scheme::kAc:
      return Fixed8Rule::kAc;
    case dbi::Scheme::kAcDc:
      return Fixed8Rule::kAcDc;
    default:
      return std::nullopt;
  }
}

/// One implementation of the engine's hot fixed-scheme paths.
///
/// Entry-point contracts (callers check the supports_* envelope first;
/// the portable reference supports everything):
///
///   encode_fixed8: encodes `bursts` consecutive width-8 bursts of
///   `burst_length` beats each, beat t of burst i read from
///   bytes[(i * burst_length + t) * stride] (stride 1 = the packed
///   narrow layout, stride = groups() = one group slice of a wide
///   beat-major payload). Threads `state` through all bursts exactly
///   like the SWAR reference, writes burst i's result to
///   results[i * results_stride] when `results` is non-null, and
///   returns the summed stats.
///
///   decode_fixed8: byte-per-beat masked-XOR decode (BusConfig widths
///   1..8): XORs dq_mask into every flagged beat of each burst; `out`
///   may alias `tx` exactly. Beats outside dq_mask throw (width < 8).
///
///   decode_wide8: the groups()==8 wide fast path, in place over the
///   beat-major payload (8 bytes per beat, burst_length beats per
///   burst, 8 masks per burst in group order).
class KernelVariant {
 public:
  virtual ~KernelVariant() = default;

  KernelVariant() = default;
  KernelVariant(const KernelVariant&) = delete;
  KernelVariant& operator=(const KernelVariant&) = delete;

  /// Registry name, e.g. "swar" / "avx2-fixed8" / "avx512-fixed8".
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual KernelIsa isa() const = 0;
  /// Human-readable envelope summary for listings and error messages.
  [[nodiscard]] virtual std::string_view envelope() const = 0;

  // --- envelope checks: callers dispatch only when these return true
  [[nodiscard]] virtual bool supports_fixed8(Fixed8Rule rule,
                                             int burst_length) const = 0;
  [[nodiscard]] virtual bool supports_decode8(
      const dbi::BusConfig& cfg) const = 0;
  [[nodiscard]] virtual bool supports_decode_wide8(int burst_length) const = 0;

  // --- entry points
  virtual dbi::BurstStats encode_fixed8(Fixed8Rule rule,
                                        const std::uint8_t* bytes,
                                        std::size_t bursts, int burst_length,
                                        int stride, dbi::BusState& state,
                                        BurstResult* results,
                                        std::size_t results_stride) const = 0;
  virtual void decode_fixed8(const std::uint8_t* tx,
                             const std::uint64_t* masks, std::size_t bursts,
                             const dbi::BusConfig& cfg,
                             std::uint8_t* out) const = 0;
  virtual void decode_wide8(std::uint8_t* data, const std::uint64_t* masks,
                            std::size_t bursts, int burst_length) const = 0;
};

/// Every variant compiled into this binary, selection priority order
/// (most specialised first); the portable reference is always last.
[[nodiscard]] std::span<const KernelVariant* const> registered_kernels();

/// The always-available SWAR / bit-plane reference variant ("swar").
[[nodiscard]] const KernelVariant& portable_kernel();

/// Looks a variant up by registry name; nullptr when no compiled-in
/// variant has that name.
[[nodiscard]] const KernelVariant* find_kernel(std::string_view name);

/// Resolves a user-facing selection: "auto" (or empty) picks the
/// highest-priority variant the host CPU supports; any other name must
/// match a compiled-in variant whose ISA is available. Throws
/// std::invalid_argument naming the candidates otherwise.
[[nodiscard]] const KernelVariant& resolve_kernel(std::string_view name);

/// The process-wide default: resolve_kernel(DBI_KERNEL) when the
/// environment override is set, the hardware auto-selection otherwise.
[[nodiscard]] const KernelVariant& default_kernel();

/// "swar, avx2-fixed8 (unavailable: needs avx2), ..." — the candidate
/// list misuse errors embed.
[[nodiscard]] std::string kernel_candidates();

}  // namespace dbi::engine
