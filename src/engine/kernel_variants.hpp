// Internal registration hooks between the kernel registry and the
// per-ISA variant TUs. Each TU always defines its hook; the body
// returns nullptr unless the TU was compiled with the matching
// DBI_HAVE_* definition (set per-file by CMake together with the -m
// flags), so the registry never references symbols that do not exist
// and the binary stays portable.
#pragma once

#include "engine/kernel_registry.hpp"

namespace dbi::engine {

/// AVX2 variant ("avx2-fixed8"); nullptr when not compiled in.
const KernelVariant* avx2_kernel();

/// AVX-512 variant ("avx512-fixed8"); nullptr when not compiled in.
const KernelVariant* avx512_kernel();

/// NEON variant ("neon-fixed8"); nullptr when not compiled in.
const KernelVariant* neon_kernel();

}  // namespace dbi::engine
