// The "swar" kernel variant: the portable SWAR / bit-plane reference,
// re-homed from BatchEncoder/BatchDecoder behind the registry
// interface. Always compiled, always available, and the bit-exactness
// anchor every SIMD variant is held to — its entry points are straight
// loops over the shared kernels in kernels_portable.hpp.
#include <cstring>
#include <stdexcept>
#include <string>

#include "engine/kernel_registry.hpp"
#include "engine/kernels_portable.hpp"

namespace dbi::engine {
namespace {

[[noreturn]] void throw_bad_beat(std::size_t burst, int beat, int width) {
  throw std::invalid_argument(
      "BatchDecoder: burst " + std::to_string(burst) + " beat " +
      std::to_string(beat) + ": transmitted word exceeds the width-" +
      std::to_string(width) + " bus");
}

class PortableKernel final : public KernelVariant {
 public:
  [[nodiscard]] std::string_view name() const override { return "swar"; }
  [[nodiscard]] KernelIsa isa() const override { return KernelIsa::kPortable; }
  [[nodiscard]] std::string_view envelope() const override {
    return "every fixed rule, width and burst length (SWAR/bit-plane "
           "reference)";
  }

  [[nodiscard]] bool supports_fixed8(Fixed8Rule, int) const override {
    return true;
  }
  [[nodiscard]] bool supports_decode8(const dbi::BusConfig&) const override {
    return true;
  }
  [[nodiscard]] bool supports_decode_wide8(int) const override { return true; }

  dbi::BurstStats encode_fixed8(Fixed8Rule rule, const std::uint8_t* bytes,
                                std::size_t bursts, int burst_length,
                                int stride, dbi::BusState& state,
                                BurstResult* results,
                                std::size_t results_stride) const override {
    const auto burst_bytes = static_cast<std::size_t>(burst_length) *
                             static_cast<std::size_t>(stride);
    dbi::BurstStats totals;
    const std::uint8_t* p = bytes;
    for (std::size_t i = 0; i < bursts; ++i, p += burst_bytes) {
      BurstResult r;
      if (stride == 1) {
        r = kernels::encode_burst8(rule, kernels::ByteBeats{p, burst_length},
                                   state);
      } else {
        r = kernels::encode_burst8(
            rule, kernels::StridedBeats{p, burst_length, stride}, state);
      }
      totals += r.stats;
      if (results) results[i * results_stride] = r;
    }
    return totals;
  }

  void decode_fixed8(const std::uint8_t* tx, const std::uint64_t* masks,
                     std::size_t bursts, const dbi::BusConfig& cfg,
                     std::uint8_t* out) const override {
    // Byte-per-beat lanes: 8 beats decode per 64-bit XOR. Sub-8-wide
    // groups reuse the same path with the lane mask narrowed (their
    // inverted beats toggle dq_mask, not 0xFF).
    const int bl = cfg.burst_length;
    const auto bb = static_cast<std::size_t>(bl);
    const dbi::Word dq_mask = cfg.dq_mask();
    const std::uint64_t lane_mask =
        kernels::kL01 * static_cast<std::uint64_t>(dq_mask);
    for (std::size_t i = 0; i < bursts; ++i) {
      const std::uint64_t m = masks[i];
      const std::uint8_t* src = tx + i * bb;
      std::uint8_t* dst = out + i * bb;
      for (int t0 = 0; t0 < bl; t0 += 8) {
        const int cnt = (bl - t0 < 8) ? (bl - t0) : 8;
        std::uint64_t p = 0;
        std::memcpy(&p, src + t0, static_cast<std::size_t>(cnt));
        if (cfg.width < 8 && (p & ~lane_mask) != 0) {
          for (int k = 0; k < cnt; ++k)
            if ((src[t0 + k] & ~dq_mask) != 0)
              throw_bad_beat(i, t0 + k, cfg.width);
        }
        const std::uint64_t inv =
            kernels::spread_bits_to_bytes((m >> t0) & 0xFFU) & lane_mask;
        p ^= inv;
        std::memcpy(dst + t0, &p, static_cast<std::size_t>(cnt));
      }
    }
  }

  void decode_wide8(std::uint8_t* data, const std::uint64_t* masks,
                    std::size_t bursts, int burst_length) const override {
    // x64 fast path: all groups full, every beat is one aligned-enough
    // u64 of the beat-major payload. Transposing the 8 group masks
    // gives, per beat, the 8 group flags as one byte; spreading that
    // byte to 0xFF lanes yields the beat's XOR word directly.
    const int bl = burst_length;
    const auto bb = static_cast<std::size_t>(bl) * 8;
    for (std::size_t i = 0; i < bursts; ++i) {
      const std::uint64_t* mk = masks + i * 8;
      std::uint8_t* base = data + i * bb;
      for (int t0 = 0; t0 < bl; t0 += 8) {
        const int cnt = (bl - t0 < 8) ? (bl - t0) : 8;
        std::uint64_t m8 = 0;
        for (int g = 0; g < 8; ++g)
          m8 |= ((mk[g] >> t0) & 0xFFULL) << (8 * g);
        const std::uint64_t tile = transpose8(m8);
        for (int k = 0; k < cnt; ++k) {
          const std::uint64_t xorw =
              kernels::spread_bits_to_bytes((tile >> (8 * k)) & 0xFFULL);
          if (xorw == 0) continue;
          std::uint64_t beat = 0;
          std::uint8_t* p = base + static_cast<std::size_t>(t0 + k) * 8;
          std::memcpy(&beat, p, 8);
          beat ^= xorw;
          std::memcpy(p, &beat, 8);
        }
      }
    }
  }
};

}  // namespace

const KernelVariant& portable_kernel() {
  static const PortableKernel kernel;
  return kernel;
}

}  // namespace dbi::engine
