// Portable reference kernels: the SWAR byte-lane and bit-plane encode
// paths, shared between the registry's always-available "swar" variant
// (kernel_portable.cpp), BatchEncoder's Burst/word entry points, and
// the SIMD variant TUs (which reuse them for tail bursts and for every
// geometry outside their vector envelope, so fallbacks stay bit-exact
// by construction).
//
// Everything here is allocation-free and branch-light:
//   * width-8 groups pack 8 beats per 64-bit lane word (beat k in byte
//     k) and decide whole words at a time with SWAR popcounts and a
//     prefix XOR for the AC recurrence;
//   * every other width (1..32) transposes the burst into one 64-bit
//     plane per DQ line and decides all beats with bit-sliced vertical
//     counters (see encode_planar below).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

#include "core/types.hpp"
#include "engine/bits.hpp"
#include "engine/kernel_registry.hpp"

namespace dbi::engine::kernels {

// ------------------------------------------------------------------ SWAR
// Bit-parallel helpers on packed byte lanes: 8 beats of a width-8 group
// per 64-bit machine word, beat k in byte k.

inline constexpr std::uint64_t kL01 = 0x0101010101010101ULL;
inline constexpr std::uint64_t kL0F = 0x0F0F0F0F0F0F0F0FULL;
inline constexpr std::uint64_t kL33 = 0x3333333333333333ULL;
inline constexpr std::uint64_t kL55 = 0x5555555555555555ULL;
inline constexpr std::uint64_t kL7F = 0x7F7F7F7F7F7F7F7FULL;
inline constexpr std::uint64_t kL80 = 0x8080808080808080ULL;

/// Per-byte popcount: byte k of the result = popcount(byte k of v).
constexpr std::uint64_t byte_popcount(std::uint64_t v) {
  v -= (v >> 1) & kL55;
  v = (v & kL33) + ((v >> 2) & kL33);
  return (v + (v >> 4)) & kL0F;
}

/// Packs bytes that are each 0 or 1 into the low 8 bits (byte k -> bit k).
constexpr std::uint64_t movemask01(std::uint64_t bytes01) {
  return (bytes01 * 0x0102040810204080ULL) >> 56;
}

/// Per-byte flag (0/1): 1 iff byte k of `counts` >= `threshold`.
/// Valid for counts <= 127 per byte; ours are popcounts <= 9.
constexpr std::uint64_t byte_ge(std::uint64_t counts, int threshold) {
  const std::uint64_t bias =
      static_cast<std::uint64_t>(0x80 - threshold) * kL01;
  return ((counts + bias) & kL80) >> 7;
}

/// Spreads per-byte 0/1 flags to 0x00 / 0xFF full-byte masks.
constexpr std::uint64_t spread01(std::uint64_t bytes01) {
  return bytes01 * 0xFFULL;
}

/// Spreads the low 8 bits to full bytes: byte k of the result is 0xFF
/// iff bit k of `bits8` is set. One multiply selects bit k into byte k
/// (at position k), the +0x7F carry turns any nonzero byte into a high
/// bit, and the final multiply widens the 0/1 bytes to 0x00/0xFF.
constexpr std::uint64_t spread_bits_to_bytes(std::uint64_t bits8) {
  const std::uint64_t sel = (bits8 * kL01) & 0x8040201008040201ULL;
  return (((sel + kL7F) & kL80) >> 7) * 0xFFULL;
}

/// Byte-granular prefix XOR: byte k of the result = XOR of bytes 0..k.
constexpr std::uint64_t byte_prefix_xor(std::uint64_t v) {
  v ^= v << 8;
  v ^= v << 16;
  v ^= v << 32;
  return v;
}

/// Beat sources for the packed kernels: all expose size(), operator[]
/// and pack8(i0, m) — up to 8 consecutive beats' low bytes packed into
/// one 64-bit lane word, beat i0+k in byte k. pack8_col(i0, m, c) is
/// the generalisation the bit-plane transpose uses: byte column c
/// (payload bits 8c..8c+7) of up to 8 consecutive beats.
struct WordBeats {
  std::span<const dbi::Word> words;

  [[nodiscard]] int size() const { return static_cast<int>(words.size()); }
  [[nodiscard]] dbi::Word operator[](int i) const {
    return words[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::uint64_t pack8(int i0, int m) const {
    return pack8_col(i0, m, 0);
  }
  [[nodiscard]] std::uint64_t pack8_col(int i0, int m, int c) const {
    std::uint64_t p = 0;
    for (int k = 0; k < m; ++k)
      p |= static_cast<std::uint64_t>(
               (words[static_cast<std::size_t>(i0 + k)] >> (8 * c)) & 0xFFU)
           << (8 * k);
    return p;
  }
};

/// One byte per beat, the binary trace format's width-8 payload layout:
/// the packed lane word is a straight (little-endian) 8-byte load, so
/// mmap'd trace chunks feed the SWAR kernels with no widening pass.
struct ByteBeats {
  const std::uint8_t* bytes;
  int n;

  [[nodiscard]] int size() const { return n; }
  [[nodiscard]] dbi::Word operator[](int i) const {
    return static_cast<dbi::Word>(bytes[i]);
  }
  [[nodiscard]] std::uint64_t pack8(int i0, int m) const {
    if constexpr (std::endian::native == std::endian::little) {
      std::uint64_t p = 0;
      std::memcpy(&p, bytes + i0, static_cast<std::size_t>(m));
      return p;
    } else {
      std::uint64_t p = 0;
      for (int k = 0; k < m; ++k)
        p |= static_cast<std::uint64_t>(bytes[i0 + k]) << (8 * k);
      return p;
    }
  }
  [[nodiscard]] std::uint64_t pack8_col(int i0, int m, int /*c*/) const {
    return pack8(i0, m);  // one byte per beat: column 0 only
  }
};

/// One byte per beat at a fixed stride — group g of a wide beat-major
/// payload (stride = groups(), offset g applied by the caller). This is
/// how the kernels consume mmap'd wide trace chunks in place: no
/// widening or de-interleaving pass, just strided byte gathers.
struct StridedBeats {
  const std::uint8_t* bytes;  ///< first beat's byte of this group
  int n;
  int stride;  ///< bytes per beat of the enclosing wide payload

  [[nodiscard]] int size() const { return n; }
  [[nodiscard]] dbi::Word operator[](int i) const {
    return static_cast<dbi::Word>(bytes[static_cast<std::size_t>(i) *
                                        static_cast<std::size_t>(stride)]);
  }
  [[nodiscard]] std::uint64_t pack8(int i0, int m) const {
    std::uint64_t p = 0;
    for (int k = 0; k < m; ++k)
      p |= static_cast<std::uint64_t>(
               bytes[static_cast<std::size_t>(i0 + k) *
                     static_cast<std::size_t>(stride)])
           << (8 * k);
    return p;
  }
  [[nodiscard]] std::uint64_t pack8_col(int i0, int m, int /*c*/) const {
    return pack8(i0, m);  // one byte per beat: column 0 only
  }
};

// ------------------------------------------------- width-8 fixed schemes
//
// The fixed schemes decide whole 64-bit lane words at a time:
//   DC:   invert beat iff popcount(byte) <= 3        (2 * zeros > 9)
//   AC:   with h = hd(raw prev word, raw cur word), the transmitted
//         comparison collapses to invert = (h >= 5) XOR s_prev, because
//         t_keep + t_inv == 9 on the 9 lines of a byte group; the scan
//         over beats is therefore a prefix XOR of the (h >= 5) flags.
//   ACDC: AC with the first flag replaced by the DC rule for beat 0.
// Stats (zeros, DQ + DBI transitions) come from whole-word popcounts of
// the packed transmitted chunk against its shifted self.

template <typename Beats>
BurstResult encode_fixed8(Fixed8Rule rule, const Beats& beats,
                          dbi::BusState& state) {
  const int n = beats.size();
  BurstResult r;
  // Carries threaded between 8-beat chunks.
  std::uint64_t prev_raw = state.last.dq & 0xFFU;  // raw word of beat i-1
  std::uint64_t prev_tx = state.last.dq & 0xFFU;   // transmitted word
  bool prev_s = false;      // inversion state of beat i-1 (pre-burst: none)
  bool prev_dbi = state.last.dbi;  // physical DBI value of beat i-1

  for (int i0 = 0; i0 < n; i0 += 8) {
    const int m = (n - i0 < 8) ? (n - i0) : 8;
    const std::uint64_t valid =
        (m == 8) ? ~std::uint64_t{0} : ((std::uint64_t{1} << (8 * m)) - 1);
    const std::uint64_t valid_bits = (std::uint64_t{1} << m) - 1;
    const std::uint64_t p = beats.pack8(i0, m);

    // Per-byte inversion decisions as 0/1 flags.
    std::uint64_t s01;
    if (rule == Fixed8Rule::kDc) {
      s01 = (byte_ge(byte_popcount(p), 4) ^ kL01) & kL01 & valid;
    } else {
      const std::uint64_t d = p ^ ((p << 8) | prev_raw);
      std::uint64_t g01 = byte_ge(byte_popcount(d), 5) & kL01;
      if (i0 == 0) {
        // Beat 0 sees the pre-burst bus state, not a raw predecessor.
        bool g0;
        if (rule == Fixed8Rule::kAcDc) {
          g0 = std::popcount(static_cast<std::uint32_t>(p & 0xFF)) <= 3;
        } else {
          const int t0 = std::popcount(static_cast<std::uint32_t>(
                             (p ^ prev_raw) & 0xFF)) +
                         (state.last.dbi != true ? 1 : 0);
          g0 = t0 >= 5;
        }
        g01 = (g01 & ~std::uint64_t{0xFF}) | (g0 ? 1 : 0);
      }
      // s_i = g_i XOR s_{i-1}: prefix XOR, then fold in the chunk carry.
      s01 = byte_prefix_xor(g01);
      if (prev_s) s01 ^= kL01;
      s01 &= kL01 & valid;
    }

    const std::uint64_t inv_bytes = spread01(s01) & valid;
    const std::uint64_t tx = (p ^ inv_bytes) & valid;
    const std::uint64_t s_bits = movemask01(s01) & valid_bits;
    r.invert_mask |= s_bits << i0;

    // Zeros: 8 per beat minus transmitted ones, plus the DBI-low beats.
    r.stats.zeros += 8 * m - std::popcount(tx) +
                     std::popcount(s_bits);
    // DQ transitions: packed chunk vs itself shifted one beat.
    const std::uint64_t adj = tx ^ ((tx << 8) | prev_tx);
    r.stats.transitions += std::popcount(adj & valid);
    // DBI transitions: physical DBI is !s; pre-chunk value is prev_dbi.
    const std::uint64_t dbi_bits = ~s_bits & valid_bits;
    const std::uint64_t dbi_adj =
        (dbi_bits ^ ((dbi_bits << 1) | (prev_dbi ? 1 : 0))) & valid_bits;
    r.stats.transitions += std::popcount(dbi_adj);

    prev_raw = (p >> (8 * (m - 1))) & 0xFF;
    prev_tx = (tx >> (8 * (m - 1))) & 0xFF;
    prev_s = (s_bits >> (m - 1)) & 1;
    prev_dbi = !prev_s;
  }

  state.last = dbi::Beat{static_cast<dbi::Word>(prev_tx), prev_dbi};
  return r;
}

/// RAW on a packed byte lane: no DBI wire, data as-is.
template <typename Beats>
BurstResult encode_raw8(const Beats& beats, dbi::BusState& state) {
  const int n = beats.size();
  BurstResult r;
  std::uint64_t prev_tx = state.last.dq & 0xFFU;
  for (int i0 = 0; i0 < n; i0 += 8) {
    const int m = (n - i0 < 8) ? (n - i0) : 8;
    const std::uint64_t valid =
        (m == 8) ? ~std::uint64_t{0} : ((std::uint64_t{1} << (8 * m)) - 1);
    const std::uint64_t p = beats.pack8(i0, m);
    r.stats.zeros += 8 * m - std::popcount(p & valid);
    r.stats.transitions += std::popcount((p ^ ((p << 8) | prev_tx)) & valid);
    prev_tx = (p >> (8 * (m - 1))) & 0xFF;
  }
  // RAW beats carry an idle-high DBI value (see RawEncoder).
  state.last = dbi::Beat{static_cast<dbi::Word>(prev_tx), true};
  return r;
}

/// One width-8 burst under any fixed rule (the per-burst unit the SIMD
/// variants use for tail bursts outside their vector envelope).
template <typename Beats>
BurstResult encode_burst8(Fixed8Rule rule, const Beats& beats,
                          dbi::BusState& state) {
  if (rule == Fixed8Rule::kRaw) return encode_raw8(beats, state);
  return encode_fixed8(rule, beats, state);
}

// ------------------------------------------------- bit-plane fixed kernel
//
// Width-generic twin of the width-8 SWAR kernels, for every other group
// width (1..32). The burst is transposed into one 64-bit plane per DQ
// line (bit i of plane b = bit b of beat i; a burst is at most 64 beats,
// so one word per line always suffices). Per-beat popcounts — ones for
// the DC rule, Hamming distances for the AC rule — come from bit-sliced
// vertical counters over the planes, threshold tests from a carry
// ripple over the slices, and the AC decision recurrence from a 64-bit
// prefix XOR (even widths) or a 64-step flag scan that also handles the
// odd-width tie reset. The decision rules are the scalar encoders'
// exactly:
//   DC:   invert iff 2 * zeros > width + 1      <=>  ones < width / 2
//   AC:   invert iff the inverted beat toggles strictly fewer of the
//         width + 1 lines; against the raw predecessor with Hamming
//         distance h this is g = (2h > width + 1) XOR s_prev — except
//         when 2h == width + 1 (odd widths only), where BOTH choices
//         tie or lose and the non-inverted beat wins regardless of
//         s_prev, resetting the XOR chain to 0.
//   ACDC: AC with the first flag replaced by the DC rule for beat 0.

/// Fills planes[b] (b < width) with bit b of every beat: bit i = bit b
/// of beat i. Works in 8-beat x 8-line tiles via transpose8.
template <typename Beats>
void fill_planes(const Beats& beats, int width, std::uint64_t* planes) {
  const int n = beats.size();
  const int cols = (width + 7) / 8;
  for (int b = 0; b < 8 * cols; ++b) planes[b] = 0;
  for (int i0 = 0; i0 < n; i0 += 8) {
    const int m = (n - i0 < 8) ? (n - i0) : 8;
    for (int c = 0; c < cols; ++c) {
      const std::uint64_t tile = transpose8(beats.pack8_col(i0, m, c));
      for (int r = 0; r < 8; ++r)
        planes[8 * c + r] |= ((tile >> (8 * r)) & 0xFFULL) << i0;
    }
  }
}

/// Bit-sliced per-beat counter: slice j holds bit j of 64 independent
/// sums (one per beat column). Sums stay <= 33 (width + 1), so six
/// slices are plenty.
struct BeatCounts {
  std::uint64_t s[6] = {};

  /// Adds the 0/1 plane `x` to every beat's sum (ripple full-adder).
  void add(std::uint64_t x) {
    for (int j = 0; j < 6 && x != 0; ++j) {
      const std::uint64_t carry = s[j] & x;
      s[j] ^= x;
      x = carry;
    }
  }

  /// Mask of beats whose sum >= c, via the carry-out of sum + (64 - c).
  [[nodiscard]] std::uint64_t ge(int c) const {
    if (c <= 0) return ~std::uint64_t{0};
    const auto k = static_cast<std::uint64_t>(64 - c);
    std::uint64_t carry = 0;
    for (int j = 0; j < 6; ++j) {
      const std::uint64_t a = ((k >> j) & 1U) ? ~std::uint64_t{0} : 0;
      carry = (s[j] & a) | (carry & (s[j] ^ a));
    }
    return carry;
  }
};

/// Whole-word prefix XOR over bits: bit i of the result = XOR of bits
/// 0..i — the beat-granular twin of byte_prefix_xor.
constexpr std::uint64_t bit_prefix_xor(std::uint64_t v) {
  v ^= v << 1;
  v ^= v << 2;
  v ^= v << 4;
  v ^= v << 8;
  v ^= v << 16;
  v ^= v << 32;
  return v;
}

enum class PlanarRule { kRaw, kDc, kAc, kAcDc };

template <typename Beats>
BurstResult encode_planar(PlanarRule rule, const Beats& beats,
                          const dbi::BusConfig& cfg, dbi::BusState& state) {
  const int n = beats.size();
  const int width = cfg.width;
  const dbi::Word mask = cfg.dq_mask();
  const std::uint64_t valid =
      (n >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);

  std::uint64_t planes[32];
  fill_planes(beats, width, planes);

  std::uint64_t s_bits = 0;  // bit i: beat i transmitted inverted
  if (rule == PlanarRule::kDc) {
    BeatCounts ones;
    for (int b = 0; b < width; ++b) ones.add(planes[b]);
    s_bits = ~ones.ge(width / 2) & valid;
  } else if (rule == PlanarRule::kAc || rule == PlanarRule::kAcDc) {
    // Hamming distance of each beat against its raw predecessor; beat
    // 0's column is garbage here and is overwritten by the scalar
    // boundary decision below (columns are independent).
    BeatCounts h;
    for (int b = 0; b < width; ++b) {
      const std::uint64_t prev_bit = (state.last.dq >> b) & 1U;
      h.add((planes[b] ^ ((planes[b] << 1) | prev_bit)) & valid);
    }
    std::uint64_t g01 = h.ge((width + 3) / 2) & valid;
    // Odd widths can tie (2h == width + 1): both choices toggle the
    // same number of lines, keep wins and the inversion state resets.
    std::uint64_t eq01 = 0;
    if (width & 1)
      eq01 = (h.ge((width + 1) / 2) & ~h.ge((width + 1) / 2 + 1)) & valid;

    // Beat 0 decides against the physical bus state (transmitted DQ
    // values + DBI line), not a raw predecessor.
    const dbi::Word w0 = static_cast<dbi::Word>(beats[0]) & mask;
    bool g0;
    if (rule == PlanarRule::kAcDc) {
      const int zeros0 = width - std::popcount(w0);
      g0 = 2 * zeros0 > width + 1;
    } else {
      const int h0 = std::popcount((state.last.dq ^ w0) & mask);
      g0 = 2 * h0 > width + (state.last.dbi ? 1 : -1);
    }
    g01 = (g01 & ~std::uint64_t{1}) | (g0 ? 1 : 0);
    eq01 &= ~std::uint64_t{1};

    if (eq01 == 0) {
      s_bits = bit_prefix_xor(g01) & valid;
    } else {
      std::uint64_t s = 0;
      for (int i = 0; i < n; ++i) {
        s = (((g01 >> i) ^ s) & 1U) & ~((eq01 >> i) & 1U);
        s_bits |= s << i;
      }
    }
  }

  // Stats + final state from the transmitted planes, like apply_mask
  // but popcounting whole lines at a time.
  BurstResult r;
  r.invert_mask = s_bits;
  dbi::Word last_dq = 0;
  int zeros = 0;
  int transitions = 0;
  for (int b = 0; b < width; ++b) {
    const std::uint64_t tx = planes[b] ^ s_bits;
    const std::uint64_t prev_bit = (state.last.dq >> b) & 1U;
    zeros += n - std::popcount(tx);
    transitions += std::popcount((tx ^ ((tx << 1) | prev_bit)) & valid);
    last_dq |= static_cast<dbi::Word>((tx >> (n - 1)) & 1U) << b;
  }
  r.stats.zeros = zeros;
  r.stats.transitions = transitions;
  bool last_dbi = true;  // RAW beats carry an idle-high DBI value
  if (rule != PlanarRule::kRaw) {
    r.stats.zeros += std::popcount(s_bits);
    const std::uint64_t dbi_bits = ~s_bits & valid;
    const std::uint64_t prev_dbi = state.last.dbi ? 1 : 0;
    r.stats.transitions +=
        std::popcount((dbi_bits ^ ((dbi_bits << 1) | prev_dbi)) & valid);
    last_dbi = ((s_bits >> (n - 1)) & 1U) == 0;
  }
  state.last = dbi::Beat{last_dq, last_dbi};
  return r;
}

}  // namespace dbi::engine::kernels
