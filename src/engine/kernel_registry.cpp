#include "engine/kernel_registry.hpp"

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "engine/kernel_variants.hpp"

#if defined(__linux__) && defined(__aarch64__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace dbi::engine {
namespace {

bool detect(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kPortable:
      return true;
    case KernelIsa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case KernelIsa::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      // The variant TU compiles against the Skylake-server baseline
      // (F + BW + DQ + VL); require exactly that set at runtime.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0;
#else
      return false;
#endif
    case KernelIsa::kNeon:
#if defined(__linux__) && defined(__aarch64__)
      return (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#elif defined(__aarch64__)
      return true;  // AdvSIMD is architecturally mandatory on AArch64
#else
      return false;
#endif
  }
  return false;
}

const std::vector<const KernelVariant*>& registry() {
  // Selection priority order: most specialised first, the portable
  // reference last (so the auto scan always terminates on it).
  static const std::vector<const KernelVariant*> kernels = [] {
    std::vector<const KernelVariant*> v;
    if (const KernelVariant* k = avx512_kernel()) v.push_back(k);
    if (const KernelVariant* k = avx2_kernel()) v.push_back(k);
    if (const KernelVariant* k = neon_kernel()) v.push_back(k);
    v.push_back(&portable_kernel());
    return v;
  }();
  return kernels;
}

const KernelVariant& hardware_default() {
  for (const KernelVariant* k : registry())
    if (isa_available(k->isa())) return *k;
  return portable_kernel();
}

}  // namespace

std::string_view isa_name(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kPortable:
      return "portable";
    case KernelIsa::kAvx2:
      return "avx2";
    case KernelIsa::kAvx512:
      return "avx512";
    case KernelIsa::kNeon:
      return "neon";
  }
  return "unknown";
}

bool isa_available(KernelIsa isa) {
  static const bool avx2 = detect(KernelIsa::kAvx2);
  static const bool avx512 = detect(KernelIsa::kAvx512);
  static const bool neon = detect(KernelIsa::kNeon);
  switch (isa) {
    case KernelIsa::kPortable:
      return true;
    case KernelIsa::kAvx2:
      return avx2;
    case KernelIsa::kAvx512:
      return avx512;
    case KernelIsa::kNeon:
      return neon;
  }
  return false;
}

std::span<const KernelVariant* const> registered_kernels() {
  return registry();
}

const KernelVariant* find_kernel(std::string_view name) {
  for (const KernelVariant* k : registry())
    if (k->name() == name) return k;
  return nullptr;
}

std::string kernel_candidates() {
  std::string out;
  for (const KernelVariant* k : registry()) {
    if (!out.empty()) out += ", ";
    out += k->name();
    if (!isa_available(k->isa())) {
      out += " (unavailable: needs ";
      out += isa_name(k->isa());
      out += ")";
    }
  }
  return out;
}

const KernelVariant& resolve_kernel(std::string_view name) {
  if (name.empty() || name == "auto") return hardware_default();
  const KernelVariant* k = find_kernel(name);
  if (!k)
    throw std::invalid_argument("unknown kernel '" + std::string(name) +
                                "' (candidates: " + kernel_candidates() + ")");
  if (!isa_available(k->isa()))
    throw std::invalid_argument(
        "kernel '" + std::string(name) + "' needs the " +
        std::string(isa_name(k->isa())) +
        " instruction set, which this host does not report (candidates: " +
        kernel_candidates() + ")");
  return *k;
}

const KernelVariant& default_kernel() {
  if (const char* env = std::getenv("DBI_KERNEL"); env != nullptr && *env != 0)
    return resolve_kernel(env);
  return hardware_default();
}

}  // namespace dbi::engine
