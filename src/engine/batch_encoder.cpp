#include "engine/batch_encoder.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/byte_utils.hpp"
#include "engine/bits.hpp"
#include "engine/kernels_portable.hpp"
#include "obs/observer.hpp"

namespace dbi::engine {
namespace {

using dbi::Beat;
using dbi::Burst;
using dbi::BurstStats;
using dbi::BusConfig;
using dbi::BusState;
using dbi::Scheme;
using dbi::Word;

// The SWAR and bit-plane fixed-scheme kernels live in
// kernels_portable.hpp (shared with the registry's "swar" variant and
// the SIMD variant TUs); this TU keeps the trellis kernel, the generic
// mask accounting, and the dispatch glue.
using kernels::encode_fixed8;
using kernels::encode_planar;
using kernels::encode_raw8;
using kernels::PlanarRule;
using kernels::StridedBeats;
using kernels::WordBeats;

/// Lower-case hex of a beat word, for geometry diagnostics.
std::string to_hex(Word w) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  do {
    out.insert(out.begin(), kDigits[w & 0xFU]);
    w >>= 4;
  } while (w != 0);
  return out;
}

// -------------------------------------------------- flat trellis kernel
//
// Allocation-free Viterbi over the two-state trellis (see
// core/trellis.cpp for the reference DP): both path metrics live in
// registers and the predecessor decisions in two 64-bit masks, so a
// burst costs zero heap traffic. Floating-point operation order matches
// the reference solver exactly — (cur + dc) + alpha * trans — so the
// result is bit-identical even on tie-prone weights.

template <typename CostT, typename Beats, typename WeightsT>
std::uint64_t trellis_mask_flat(const Beats& words, const BusConfig& cfg,
                                const Beat& prev, const WeightsT& w) {
  const int n = words.size();
  const Word m = cfg.dq_mask();
  const auto alpha = static_cast<CostT>(w.alpha);
  const auto beta = static_cast<CostT>(w.beta);

  std::uint64_t pred0 = 0;  // bit i: predecessor state of (beat i, state 0)
  std::uint64_t pred1 = 0;  // bit i: predecessor state of (beat i, state 1)

  const Word w0 = words[0] & m;
  const int z0 = cfg.width - std::popcount(w0);
  CostT c0 = beta * static_cast<CostT>(z0) +
             alpha * static_cast<CostT>(std::popcount((prev.dq ^ w0) & m) +
                                        (prev.dbi != true ? 1 : 0));
  CostT c1 =
      beta * static_cast<CostT>(cfg.width - z0 + 1) +
      alpha * static_cast<CostT>(std::popcount((prev.dq ^ ~w0) & m) +
                                 (prev.dbi != false ? 1 : 0));

  for (int i = 1; i < n; ++i) {
    const Word wc = words[i] & m;
    const Word wp = words[i - 1] & m;
    const int h = std::popcount(wp ^ wc);
    const int ones = std::popcount(wc);
    const CostT dc0 = beta * static_cast<CostT>(cfg.width - ones);
    const CostT dc1 = beta * static_cast<CostT>(ones + 1);
    // Same-state edges keep the DBI value (h raw transitions); opposite
    // edges see the complemented predecessor plus the DBI toggle.
    const CostT t_same = alpha * static_cast<CostT>(h);
    const CostT t_diff = alpha * static_cast<CostT>(cfg.width - h + 1);

    const CostT a0 = (c0 + dc0) + t_same;  // p=0 -> s=0
    const CostT b0 = (c1 + dc0) + t_diff;  // p=1 -> s=0
    const CostT a1 = (c0 + dc1) + t_diff;  // p=0 -> s=1
    const CostT b1 = (c1 + dc1) + t_same;  // p=1 -> s=1
    // Ties keep the non-inverted predecessor, like the Fig. 5 comparators.
    if (b0 < a0) pred0 |= std::uint64_t{1} << i;
    if (b1 < a1) pred1 |= std::uint64_t{1} << i;
    c0 = b0 < a0 ? b0 : a0;
    c1 = b1 < a1 ? b1 : a1;
  }

  std::uint64_t mask = 0;
  int s = (c1 < c0) ? 1 : 0;
  for (int i = n - 1; i >= 0; --i) {
    if (s) mask |= std::uint64_t{1} << i;
    s = static_cast<int>(((s ? pred1 : pred0) >> i) & 1);
  }
  return mask;
}

/// Stats + state update for an arbitrary (width, mask) pair; the
/// generic twin of the packed chunk accounting in the fixed kernels.
template <typename Beats>
BurstStats apply_mask(const Beats& words, const BusConfig& cfg,
                      std::uint64_t mask, BusState& state) {
  const Word dq_mask = cfg.dq_mask();
  Beat last = state.last;
  BurstStats stats;
  for (int i = 0; i < words.size(); ++i) {
    const bool inv = (mask >> i) & 1U;
    const Word x = inv ? (~words[i] & dq_mask) : (words[i] & dq_mask);
    const bool dbi = !inv;
    stats.zeros += cfg.width - std::popcount(x) + (dbi ? 0 : 1);
    stats.transitions += std::popcount((last.dq ^ x) & dq_mask) +
                         (last.dbi != dbi ? 1 : 0);
    last = Beat{x, dbi};
  }
  state.last = last;
  return stats;
}

}  // namespace

BatchEncoder::BatchEncoder(Scheme scheme, const dbi::CostWeights& w)
    : scheme_(scheme),
      weights_(w),
      fallback_(dbi::make_encoder(scheme, w)),
      kernel_(&default_kernel()) {
  w.validate();
}

std::string_view BatchEncoder::name() const { return fallback_->name(); }

BurstResult BatchEncoder::encode(const Burst& data, BusState& state) const {
  return encode_span(data.words(), data.config(), state, &data);
}

BurstResult BatchEncoder::encode_span(std::span<const Word> words,
                                      const BusConfig& cfg, BusState& state,
                                      const Burst* original) const {
  switch (scheme_) {
    case Scheme::kRaw:
      if (cfg.width == 8) return encode_raw8(WordBeats{words}, state);
      return encode_planar(PlanarRule::kRaw, WordBeats{words}, cfg, state);
    case Scheme::kDc:
      if (cfg.width == 8)
        return encode_fixed8(Fixed8Rule::kDc, WordBeats{words}, state);
      return encode_planar(PlanarRule::kDc, WordBeats{words}, cfg, state);
    case Scheme::kAc:
      if (cfg.width == 8)
        return encode_fixed8(Fixed8Rule::kAc, WordBeats{words}, state);
      return encode_planar(PlanarRule::kAc, WordBeats{words}, cfg, state);
    case Scheme::kAcDc:
      if (cfg.width == 8)
        return encode_fixed8(Fixed8Rule::kAcDc, WordBeats{words}, state);
      return encode_planar(PlanarRule::kAcDc, WordBeats{words}, cfg, state);
    case Scheme::kOpt: {
      BurstResult r;
      r.invert_mask = trellis_mask_flat<double>(WordBeats{words}, cfg,
                                                state.last, weights_);
      r.stats = apply_mask(WordBeats{words}, cfg, r.invert_mask, state);
      return r;
    }
    case Scheme::kOptFixed: {
      BurstResult r;
      r.invert_mask = trellis_mask_flat<std::int64_t>(
          WordBeats{words}, cfg, state.last, dbi::IntCostWeights{1, 1});
      r.stats = apply_mask(WordBeats{words}, cfg, r.invert_mask, state);
      return r;
    }
    default:
      break;
  }

  // Slow path: scalar encoder (the exhaustive-search ablation).
  const dbi::EncodedBurst e = original
                                  ? fallback_->encode(*original, state)
                                  : fallback_->encode(Burst(cfg, words), state);
  BurstResult r{e.inversion_mask(), e.stats(state)};
  state = e.final_state();
  return r;
}

BurstStats BatchEncoder::encode_words(std::span<const Word> words,
                                      const BusConfig& cfg, BusState& state,
                                      BurstResult* results) const {
  cfg.validate();
  const auto bl = static_cast<std::size_t>(cfg.burst_length);
  if (words.size() % bl != 0)
    throw std::invalid_argument(
        "BatchEncoder::encode_words: word count not a multiple of "
        "burst_length");
  BurstStats totals;
  for (std::size_t i = 0; i * bl < words.size(); ++i) {
    const BurstResult r =
        encode_span(words.subspan(i * bl, bl), cfg, state, nullptr);
    totals += r.stats;
    if (results) results[i] = r;
  }
  return totals;
}

BurstStats BatchEncoder::encode_packed(std::span<const std::uint8_t> bytes,
                                       const BusConfig& cfg, BusState& state,
                                       BurstResult* results) const {
  cfg.validate();
  const auto bl = static_cast<std::size_t>(cfg.burst_length);
  const auto bpb = static_cast<std::size_t>(cfg.bytes_per_beat());
  const std::size_t burst_bytes = bl * bpb;
  if (bytes.size() % burst_bytes != 0)
    throw std::invalid_argument(
        "BatchEncoder::encode_packed: payload of " +
        std::to_string(bytes.size()) + " bytes is not a multiple of the " +
        std::to_string(burst_bytes) + "-byte packed burst (width " +
        std::to_string(cfg.width) + ", burst_length " +
        std::to_string(cfg.burst_length) + ")");
  const std::size_t n = bytes.size() / burst_bytes;
  BurstStats totals;
  const std::uint8_t* p = bytes.data();

  // Width-8 schemes consume the packed bytes in place — the trace
  // payload layout is the SWAR lane-word layout, so there is no
  // widening pass at all (and every byte value is a valid beat). The
  // fixed schemes run through the selected kernel variant; geometries
  // outside its envelope take the portable reference.
  if (cfg.width == 8 && scheme_ != Scheme::kExhaustive) {
    const int ibl = cfg.burst_length;
    if (const auto rule = fixed8_rule(scheme_)) {
      const KernelVariant& k = kernel_->supports_fixed8(*rule, ibl)
                                   ? *kernel_
                                   : portable_kernel();
      if (obs_) obs_->count_encode_dispatch(k, &k != kernel_);
      return k.encode_fixed8(*rule, p, n, ibl, /*stride=*/1, state, results,
                             /*results_stride=*/1);
    }
    for (std::size_t i = 0; i < n; ++i, p += burst_bytes) {
      const kernels::ByteBeats beats{p, ibl};
      BurstResult r;
      if (scheme_ == Scheme::kOpt) {
        r.invert_mask =
            trellis_mask_flat<double>(beats, cfg, state.last, weights_);
      } else {  // kOptFixed
        r.invert_mask = trellis_mask_flat<std::int64_t>(
            beats, cfg, state.last, dbi::IntCostWeights{1, 1});
      }
      r.stats = apply_mask(beats, cfg, r.invert_mask, state);
      totals += r.stats;
      if (results) results[i] = r;
    }
    return totals;
  }

  const Word mask = cfg.dq_mask();
  Word buf[64];  // burst_length <= 64 by BusConfig::validate()
  for (std::size_t i = 0; i < n; ++i, p += burst_bytes) {
    for (std::size_t t = 0; t < bl; ++t) {
      Word w = 0;
      for (std::size_t b = 0; b < bpb; ++b)
        w |= static_cast<Word>(p[t * bpb + b]) << (8 * b);
      if ((w & ~mask) != 0)
        throw std::invalid_argument(
            "BatchEncoder::encode_packed: burst " + std::to_string(i) +
            " beat " + std::to_string(t) + ": word 0x" + to_hex(w) +
            " exceeds the width-" + std::to_string(cfg.width) + " bus");
      buf[t] = w;
    }
    const BurstResult r =
        encode_span(std::span<const Word>(buf, bl), cfg, state, nullptr);
    totals += r.stats;
    if (results) results[i] = r;
  }
  return totals;
}

BurstStats BatchEncoder::encode_packed_group(
    std::span<const std::uint8_t> bytes, const dbi::WideBusConfig& cfg,
    int group, BusState& state, BurstResult* results,
    std::size_t results_stride) const {
  cfg.validate();
  const int groups = cfg.groups();
  if (group < 0 || group >= groups)
    throw std::invalid_argument(
        "BatchEncoder::encode_packed_group: group " + std::to_string(group) +
        " outside [0, " + std::to_string(groups) + ") of the width-" +
        std::to_string(cfg.width) + " bus");
  const auto burst_bytes = static_cast<std::size_t>(cfg.bytes_per_burst());
  if (bytes.size() % burst_bytes != 0)
    throw std::invalid_argument(
        "BatchEncoder::encode_packed_group: payload of " +
        std::to_string(bytes.size()) + " bytes is not a multiple of the " +
        std::to_string(burst_bytes) + "-byte packed wide burst (width " +
        std::to_string(cfg.width) + ", " + std::to_string(groups) +
        " groups, burst_length " + std::to_string(cfg.burst_length) + ")");
  const std::size_t n = bytes.size() / burst_bytes;
  const int bl = cfg.burst_length;
  const int gw = cfg.group_width(group);
  const BusConfig gcfg = cfg.group_config(group);
  const Word gmask = gcfg.dq_mask();

  const std::uint8_t* p = bytes.data() + group;

  // Full byte groups under a fixed scheme: the strided wide kernel of
  // the selected variant (stride = groups()), portable outside its
  // envelope. Every byte value is a valid width-8 beat, so no
  // validation pass is needed.
  if (gw == 8 && scheme_ != Scheme::kExhaustive) {
    if (const auto rule = fixed8_rule(scheme_)) {
      const KernelVariant& k = kernel_->supports_fixed8(*rule, bl)
                                   ? *kernel_
                                   : portable_kernel();
      if (obs_) obs_->count_encode_dispatch(k, &k != kernel_);
      return k.encode_fixed8(*rule, p, n, bl, groups, state, results,
                             results_stride);
    }
  }

  BurstStats totals;
  for (std::size_t i = 0; i < n; ++i, p += burst_bytes) {
    const StridedBeats beats{p, bl, groups};
    // Full byte groups accept every byte value; a remainder group's
    // bytes must fit its narrower mask.
    if (gw < 8) {
      for (int t = 0; t < bl; ++t)
        if ((beats[t] & ~gmask) != 0)
          throw std::invalid_argument(
              "BatchEncoder::encode_packed_group: burst " + std::to_string(i) +
              " beat " + std::to_string(t) + ": byte 0x" + to_hex(beats[t]) +
              " exceeds the width-" + std::to_string(gw) +
              " remainder group " + std::to_string(group));
    }
    BurstResult r;
    switch (scheme_) {
      case Scheme::kRaw:
        r = gw == 8 ? encode_raw8(beats, state)
                    : encode_planar(PlanarRule::kRaw, beats, gcfg, state);
        break;
      case Scheme::kDc:
        r = gw == 8 ? encode_fixed8(Fixed8Rule::kDc, beats, state)
                    : encode_planar(PlanarRule::kDc, beats, gcfg, state);
        break;
      case Scheme::kAc:
        r = gw == 8 ? encode_fixed8(Fixed8Rule::kAc, beats, state)
                    : encode_planar(PlanarRule::kAc, beats, gcfg, state);
        break;
      case Scheme::kAcDc:
        r = gw == 8 ? encode_fixed8(Fixed8Rule::kAcDc, beats, state)
                    : encode_planar(PlanarRule::kAcDc, beats, gcfg, state);
        break;
      case Scheme::kOpt:
        r.invert_mask =
            trellis_mask_flat<double>(beats, gcfg, state.last, weights_);
        r.stats = apply_mask(beats, gcfg, r.invert_mask, state);
        break;
      case Scheme::kOptFixed:
        r.invert_mask = trellis_mask_flat<std::int64_t>(
            beats, gcfg, state.last, dbi::IntCostWeights{1, 1});
        r.stats = apply_mask(beats, gcfg, r.invert_mask, state);
        break;
      default: {  // kExhaustive: materialise the group burst, scalar twin
        Burst data(gcfg);
        for (int t = 0; t < bl; ++t) data.set_word(t, beats[t]);
        const dbi::EncodedBurst e = fallback_->encode(data, state);
        r = BurstResult{e.inversion_mask(), e.stats(state)};
        state = e.final_state();
        break;
      }
    }
    totals += r.stats;
    if (results) results[i * results_stride] = r;
  }
  return totals;
}

BurstStats BatchEncoder::encode_packed_wide(std::span<const std::uint8_t> bytes,
                                            const dbi::WideBusConfig& cfg,
                                            std::span<dbi::BusState> states,
                                            BurstResult* results) const {
  cfg.validate();
  const int groups = cfg.groups();
  if (states.size() != static_cast<std::size_t>(groups))
    throw std::invalid_argument(
        "BatchEncoder::encode_packed_wide: got " +
        std::to_string(states.size()) + " group states, width " +
        std::to_string(cfg.width) + " needs " + std::to_string(groups));
  BurstStats totals;
  for (int g = 0; g < groups; ++g)
    totals += encode_packed_group(
        bytes, cfg, g, states[static_cast<std::size_t>(g)],
        results ? results + g : nullptr, static_cast<std::size_t>(groups));
  return totals;
}

void BatchEncoder::encode_wide_lanes(const dbi::WideBusConfig& cfg,
                                     std::span<WideLaneTask> lanes,
                                     ShardPool* pool) const {
  cfg.validate();
  const int groups = cfg.groups();
  // Validate every lane before dispatching anything: a bad lane must
  // not surface only after other units already advanced their states.
  for (const WideLaneTask& t : lanes)
    if (t.states.size() != static_cast<std::size_t>(groups))
      throw std::invalid_argument(
          "BatchEncoder::encode_wide_lanes: lane needs " +
          std::to_string(groups) + " group states, got " +
          std::to_string(t.states.size()));
  const auto units = static_cast<int>(lanes.size()) * groups;
  // Every (lane, group) unit writes its own slot; totals reduce after
  // the pool drained, so the run stays barrier- and atomic-free.
  std::vector<BurstStats> unit_totals(static_cast<std::size_t>(units));
  auto run_unit = [this, &cfg, lanes, groups, &unit_totals](int u) {
    WideLaneTask& t = lanes[static_cast<std::size_t>(u / groups)];
    const int g = u % groups;
    unit_totals[static_cast<std::size_t>(u)] = encode_packed_group(
        t.bytes, cfg, g, t.states[static_cast<std::size_t>(g)],
        t.results ? t.results + g : nullptr, static_cast<std::size_t>(groups));
  };
  if (pool) {
    pool->run(units, run_unit);
  } else {
    for (int u = 0; u < units; ++u) run_unit(u);
  }
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    lanes[l].totals = BurstStats{};
    for (int g = 0; g < groups; ++g)
      lanes[l].totals +=
          unit_totals[l * static_cast<std::size_t>(groups) +
                      static_cast<std::size_t>(g)];
  }
}

BurstStats BatchEncoder::encode_lane(std::span<const Burst> bursts,
                                     BusState& state,
                                     BurstResult* results) const {
  BurstStats totals;
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    const BurstResult r = encode(bursts[i], state);
    totals += r.stats;
    if (results) results[i] = r;
  }
  return totals;
}

void BatchEncoder::encode_lanes(std::span<LaneTask> lanes,
                                ShardPool* pool) const {
  auto run_lane = [this, lanes](int i) {
    LaneTask& t = lanes[static_cast<std::size_t>(i)];
    if (!t.state)
      throw std::invalid_argument("BatchEncoder::encode_lanes: null state");
    t.totals = encode_lane(t.bursts, *t.state, t.results);
  };
  if (pool) {
    pool->run(static_cast<int>(lanes.size()), run_lane);
  } else {
    for (int i = 0; i < static_cast<int>(lanes.size()); ++i) run_lane(i);
  }
}

BurstStats BatchEncoder::boundary_totals(std::span<const Burst> bursts,
                                         const BusState& boundary) const {
  BurstStats totals;
  for (const Burst& b : bursts) {
    BusState state = boundary;
    totals += encode(b, state).stats;
  }
  return totals;
}

dbi::EncodedBurst BatchEncoder::materialize(const Burst& data,
                                            const BurstResult& r) const {
  if (scheme_ == Scheme::kRaw) {
    std::vector<Beat> beats;
    beats.reserve(static_cast<std::size_t>(data.length()));
    for (int i = 0; i < data.length(); ++i)
      beats.push_back(Beat{data.word(i), true});
    return dbi::EncodedBurst(data.config(), std::move(beats),
                             /*uses_dbi_line=*/false);
  }
  return dbi::EncodedBurst::from_inversion_mask(data, r.invert_mask);
}

}  // namespace dbi::engine
