#include "engine/batch_encoder.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/byte_utils.hpp"
#include "engine/bits.hpp"

namespace dbi::engine {
namespace {

using dbi::Beat;
using dbi::Burst;
using dbi::BurstStats;
using dbi::BusConfig;
using dbi::BusState;
using dbi::Scheme;
using dbi::Word;

// ------------------------------------------------------------------ SWAR
// Bit-parallel helpers on packed byte lanes: 8 beats of a width-8 group
// per 64-bit machine word, beat k in byte k.

/// Lower-case hex of a beat word, for geometry diagnostics.
std::string to_hex(Word w) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  do {
    out.insert(out.begin(), kDigits[w & 0xFU]);
    w >>= 4;
  } while (w != 0);
  return out;
}

constexpr std::uint64_t kL01 = 0x0101010101010101ULL;
constexpr std::uint64_t kL0F = 0x0F0F0F0F0F0F0F0FULL;
constexpr std::uint64_t kL33 = 0x3333333333333333ULL;
constexpr std::uint64_t kL55 = 0x5555555555555555ULL;
constexpr std::uint64_t kL80 = 0x8080808080808080ULL;

/// Per-byte popcount: byte k of the result = popcount(byte k of v).
constexpr std::uint64_t byte_popcount(std::uint64_t v) {
  v -= (v >> 1) & kL55;
  v = (v & kL33) + ((v >> 2) & kL33);
  return (v + (v >> 4)) & kL0F;
}

/// Packs bytes that are each 0 or 1 into the low 8 bits (byte k -> bit k).
constexpr std::uint64_t movemask01(std::uint64_t bytes01) {
  return (bytes01 * 0x0102040810204080ULL) >> 56;
}

/// Per-byte flag (0/1): 1 iff byte k of `counts` >= `threshold`.
/// Valid for counts <= 127 per byte; ours are popcounts <= 9.
constexpr std::uint64_t byte_ge(std::uint64_t counts, int threshold) {
  const std::uint64_t bias =
      static_cast<std::uint64_t>(0x80 - threshold) * kL01;
  return ((counts + bias) & kL80) >> 7;
}

/// Spreads per-byte 0/1 flags to 0x00 / 0xFF full-byte masks.
constexpr std::uint64_t spread01(std::uint64_t bytes01) {
  return bytes01 * 0xFFULL;
}

/// Byte-granular prefix XOR: byte k of the result = XOR of bytes 0..k.
constexpr std::uint64_t byte_prefix_xor(std::uint64_t v) {
  v ^= v << 8;
  v ^= v << 16;
  v ^= v << 32;
  return v;
}

/// Beat sources for the packed kernels: all expose size(), operator[]
/// and pack8(i0, m) — up to 8 consecutive beats' low bytes packed into
/// one 64-bit lane word, beat i0+k in byte k. pack8_col(i0, m, c) is
/// the generalisation the bit-plane transpose uses: byte column c
/// (payload bits 8c..8c+7) of up to 8 consecutive beats.
struct WordBeats {
  std::span<const Word> words;

  [[nodiscard]] int size() const { return static_cast<int>(words.size()); }
  [[nodiscard]] Word operator[](int i) const {
    return words[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::uint64_t pack8(int i0, int m) const {
    return pack8_col(i0, m, 0);
  }
  [[nodiscard]] std::uint64_t pack8_col(int i0, int m, int c) const {
    std::uint64_t p = 0;
    for (int k = 0; k < m; ++k)
      p |= static_cast<std::uint64_t>(
               (words[static_cast<std::size_t>(i0 + k)] >> (8 * c)) & 0xFFU)
           << (8 * k);
    return p;
  }
};

/// One byte per beat, the binary trace format's width-8 payload layout:
/// the packed lane word is a straight (little-endian) 8-byte load, so
/// mmap'd trace chunks feed the SWAR kernels with no widening pass.
struct ByteBeats {
  const std::uint8_t* bytes;
  int n;

  [[nodiscard]] int size() const { return n; }
  [[nodiscard]] Word operator[](int i) const {
    return static_cast<Word>(bytes[i]);
  }
  [[nodiscard]] std::uint64_t pack8(int i0, int m) const {
    if constexpr (std::endian::native == std::endian::little) {
      std::uint64_t p = 0;
      std::memcpy(&p, bytes + i0, static_cast<std::size_t>(m));
      return p;
    } else {
      std::uint64_t p = 0;
      for (int k = 0; k < m; ++k)
        p |= static_cast<std::uint64_t>(bytes[i0 + k]) << (8 * k);
      return p;
    }
  }
  [[nodiscard]] std::uint64_t pack8_col(int i0, int m, int /*c*/) const {
    return pack8(i0, m);  // one byte per beat: column 0 only
  }
};

/// One byte per beat at a fixed stride — group g of a wide beat-major
/// payload (stride = groups(), offset g applied by the caller). This is
/// how the kernels consume mmap'd wide trace chunks in place: no
/// widening or de-interleaving pass, just strided byte gathers.
struct StridedBeats {
  const std::uint8_t* bytes;  ///< first beat's byte of this group
  int n;
  int stride;  ///< bytes per beat of the enclosing wide payload

  [[nodiscard]] int size() const { return n; }
  [[nodiscard]] Word operator[](int i) const {
    return static_cast<Word>(bytes[static_cast<std::size_t>(i) *
                                   static_cast<std::size_t>(stride)]);
  }
  [[nodiscard]] std::uint64_t pack8(int i0, int m) const {
    std::uint64_t p = 0;
    for (int k = 0; k < m; ++k)
      p |= static_cast<std::uint64_t>(
               bytes[static_cast<std::size_t>(i0 + k) *
                     static_cast<std::size_t>(stride)])
           << (8 * k);
    return p;
  }
  [[nodiscard]] std::uint64_t pack8_col(int i0, int m, int /*c*/) const {
    return pack8(i0, m);  // one byte per beat: column 0 only
  }
};

// ------------------------------------------------- width-8 fixed schemes
//
// The fixed schemes decide whole 64-bit lane words at a time:
//   DC:   invert beat iff popcount(byte) <= 3        (2 * zeros > 9)
//   AC:   with h = hd(raw prev word, raw cur word), the transmitted
//         comparison collapses to invert = (h >= 5) XOR s_prev, because
//         t_keep + t_inv == 9 on the 9 lines of a byte group; the scan
//         over beats is therefore a prefix XOR of the (h >= 5) flags.
//   ACDC: AC with the first flag replaced by the DC rule for beat 0.
// Stats (zeros, DQ + DBI transitions) come from whole-word popcounts of
// the packed transmitted chunk against its shifted self.

enum class Fixed8 { kDc, kAc, kAcDc };

template <typename Beats>
BurstResult encode_fixed8(Fixed8 rule, const Beats& beats, BusState& state) {
  const int n = beats.size();
  BurstResult r;
  // Carries threaded between 8-beat chunks.
  std::uint64_t prev_raw = state.last.dq & 0xFFU;  // raw word of beat i-1
  std::uint64_t prev_tx = state.last.dq & 0xFFU;   // transmitted word
  bool prev_s = false;      // inversion state of beat i-1 (pre-burst: none)
  bool prev_dbi = state.last.dbi;  // physical DBI value of beat i-1

  for (int i0 = 0; i0 < n; i0 += 8) {
    const int m = (n - i0 < 8) ? (n - i0) : 8;
    const std::uint64_t valid =
        (m == 8) ? ~std::uint64_t{0} : ((std::uint64_t{1} << (8 * m)) - 1);
    const std::uint64_t valid_bits = (std::uint64_t{1} << m) - 1;
    const std::uint64_t p = beats.pack8(i0, m);

    // Per-byte inversion decisions as 0/1 flags.
    std::uint64_t s01;
    if (rule == Fixed8::kDc) {
      s01 = (byte_ge(byte_popcount(p), 4) ^ kL01) & kL01 & valid;
    } else {
      const std::uint64_t d = p ^ ((p << 8) | prev_raw);
      std::uint64_t g01 = byte_ge(byte_popcount(d), 5) & kL01;
      if (i0 == 0) {
        // Beat 0 sees the pre-burst bus state, not a raw predecessor.
        bool g0;
        if (rule == Fixed8::kAcDc) {
          g0 = std::popcount(static_cast<std::uint32_t>(p & 0xFF)) <= 3;
        } else {
          const int t0 = std::popcount(static_cast<std::uint32_t>(
                             (p ^ prev_raw) & 0xFF)) +
                         (state.last.dbi != true ? 1 : 0);
          g0 = t0 >= 5;
        }
        g01 = (g01 & ~std::uint64_t{0xFF}) | (g0 ? 1 : 0);
      }
      // s_i = g_i XOR s_{i-1}: prefix XOR, then fold in the chunk carry.
      s01 = byte_prefix_xor(g01);
      if (prev_s) s01 ^= kL01;
      s01 &= kL01 & valid;
    }

    const std::uint64_t inv_bytes = spread01(s01) & valid;
    const std::uint64_t tx = (p ^ inv_bytes) & valid;
    const std::uint64_t s_bits = movemask01(s01) & valid_bits;
    r.invert_mask |= s_bits << i0;

    // Zeros: 8 per beat minus transmitted ones, plus the DBI-low beats.
    r.stats.zeros += 8 * m - std::popcount(tx) +
                     std::popcount(s_bits);
    // DQ transitions: packed chunk vs itself shifted one beat.
    const std::uint64_t adj = tx ^ ((tx << 8) | prev_tx);
    r.stats.transitions += std::popcount(adj & valid);
    // DBI transitions: physical DBI is !s; pre-chunk value is prev_dbi.
    const std::uint64_t dbi_bits = ~s_bits & valid_bits;
    const std::uint64_t dbi_adj =
        (dbi_bits ^ ((dbi_bits << 1) | (prev_dbi ? 1 : 0))) & valid_bits;
    r.stats.transitions += std::popcount(dbi_adj);

    prev_raw = (p >> (8 * (m - 1))) & 0xFF;
    prev_tx = (tx >> (8 * (m - 1))) & 0xFF;
    prev_s = (s_bits >> (m - 1)) & 1;
    prev_dbi = !prev_s;
  }

  state.last = Beat{static_cast<Word>(prev_tx), prev_dbi};
  return r;
}

/// RAW on a packed byte lane: no DBI wire, data as-is.
template <typename Beats>
BurstResult encode_raw8(const Beats& beats, BusState& state) {
  const int n = beats.size();
  BurstResult r;
  std::uint64_t prev_tx = state.last.dq & 0xFFU;
  for (int i0 = 0; i0 < n; i0 += 8) {
    const int m = (n - i0 < 8) ? (n - i0) : 8;
    const std::uint64_t valid =
        (m == 8) ? ~std::uint64_t{0} : ((std::uint64_t{1} << (8 * m)) - 1);
    const std::uint64_t p = beats.pack8(i0, m);
    r.stats.zeros += 8 * m - std::popcount(p & valid);
    r.stats.transitions += std::popcount((p ^ ((p << 8) | prev_tx)) & valid);
    prev_tx = (p >> (8 * (m - 1))) & 0xFF;
  }
  // RAW beats carry an idle-high DBI value (see RawEncoder).
  state.last = Beat{static_cast<Word>(prev_tx), true};
  return r;
}

// ------------------------------------------------- bit-plane fixed kernel
//
// Width-generic twin of the width-8 SWAR kernels, for every other group
// width (1..32). The burst is transposed into one 64-bit plane per DQ
// line (bit i of plane b = bit b of beat i; a burst is at most 64 beats,
// so one word per line always suffices). Per-beat popcounts — ones for
// the DC rule, Hamming distances for the AC rule — come from bit-sliced
// vertical counters over the planes, threshold tests from a carry
// ripple over the slices, and the AC decision recurrence from a 64-bit
// prefix XOR (even widths) or a 64-step flag scan that also handles the
// odd-width tie reset. The decision rules are the scalar encoders'
// exactly:
//   DC:   invert iff 2 * zeros > width + 1      <=>  ones < width / 2
//   AC:   invert iff the inverted beat toggles strictly fewer of the
//         width + 1 lines; against the raw predecessor with Hamming
//         distance h this is g = (2h > width + 1) XOR s_prev — except
//         when 2h == width + 1 (odd widths only), where BOTH choices
//         tie or lose and the non-inverted beat wins regardless of
//         s_prev, resetting the XOR chain to 0.
//   ACDC: AC with the first flag replaced by the DC rule for beat 0.

/// Fills planes[b] (b < width) with bit b of every beat: bit i = bit b
/// of beat i. Works in 8-beat x 8-line tiles via transpose8.
template <typename Beats>
void fill_planes(const Beats& beats, int width, std::uint64_t* planes) {
  const int n = beats.size();
  const int cols = (width + 7) / 8;
  for (int b = 0; b < 8 * cols; ++b) planes[b] = 0;
  for (int i0 = 0; i0 < n; i0 += 8) {
    const int m = (n - i0 < 8) ? (n - i0) : 8;
    for (int c = 0; c < cols; ++c) {
      const std::uint64_t tile = transpose8(beats.pack8_col(i0, m, c));
      for (int r = 0; r < 8; ++r)
        planes[8 * c + r] |= ((tile >> (8 * r)) & 0xFFULL) << i0;
    }
  }
}

/// Bit-sliced per-beat counter: slice j holds bit j of 64 independent
/// sums (one per beat column). Sums stay <= 33 (width + 1), so six
/// slices are plenty.
struct BeatCounts {
  std::uint64_t s[6] = {};

  /// Adds the 0/1 plane `x` to every beat's sum (ripple full-adder).
  void add(std::uint64_t x) {
    for (int j = 0; j < 6 && x != 0; ++j) {
      const std::uint64_t carry = s[j] & x;
      s[j] ^= x;
      x = carry;
    }
  }

  /// Mask of beats whose sum >= c, via the carry-out of sum + (64 - c).
  [[nodiscard]] std::uint64_t ge(int c) const {
    if (c <= 0) return ~std::uint64_t{0};
    const auto k = static_cast<std::uint64_t>(64 - c);
    std::uint64_t carry = 0;
    for (int j = 0; j < 6; ++j) {
      const std::uint64_t a = ((k >> j) & 1U) ? ~std::uint64_t{0} : 0;
      carry = (s[j] & a) | (carry & (s[j] ^ a));
    }
    return carry;
  }
};

/// Whole-word prefix XOR over bits: bit i of the result = XOR of bits
/// 0..i — the beat-granular twin of byte_prefix_xor.
constexpr std::uint64_t bit_prefix_xor(std::uint64_t v) {
  v ^= v << 1;
  v ^= v << 2;
  v ^= v << 4;
  v ^= v << 8;
  v ^= v << 16;
  v ^= v << 32;
  return v;
}

enum class PlanarRule { kRaw, kDc, kAc, kAcDc };

template <typename Beats>
BurstResult encode_planar(PlanarRule rule, const Beats& beats,
                          const BusConfig& cfg, BusState& state) {
  const int n = beats.size();
  const int width = cfg.width;
  const Word mask = cfg.dq_mask();
  const std::uint64_t valid =
      (n >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);

  std::uint64_t planes[32];
  fill_planes(beats, width, planes);

  std::uint64_t s_bits = 0;  // bit i: beat i transmitted inverted
  if (rule == PlanarRule::kDc) {
    BeatCounts ones;
    for (int b = 0; b < width; ++b) ones.add(planes[b]);
    s_bits = ~ones.ge(width / 2) & valid;
  } else if (rule == PlanarRule::kAc || rule == PlanarRule::kAcDc) {
    // Hamming distance of each beat against its raw predecessor; beat
    // 0's column is garbage here and is overwritten by the scalar
    // boundary decision below (columns are independent).
    BeatCounts h;
    for (int b = 0; b < width; ++b) {
      const std::uint64_t prev_bit = (state.last.dq >> b) & 1U;
      h.add((planes[b] ^ ((planes[b] << 1) | prev_bit)) & valid);
    }
    std::uint64_t g01 = h.ge((width + 3) / 2) & valid;
    // Odd widths can tie (2h == width + 1): both choices toggle the
    // same number of lines, keep wins and the inversion state resets.
    std::uint64_t eq01 = 0;
    if (width & 1)
      eq01 = (h.ge((width + 1) / 2) & ~h.ge((width + 1) / 2 + 1)) & valid;

    // Beat 0 decides against the physical bus state (transmitted DQ
    // values + DBI line), not a raw predecessor.
    const Word w0 = static_cast<Word>(beats[0]) & mask;
    bool g0;
    if (rule == PlanarRule::kAcDc) {
      const int zeros0 = width - std::popcount(w0);
      g0 = 2 * zeros0 > width + 1;
    } else {
      const int h0 = std::popcount((state.last.dq ^ w0) & mask);
      g0 = 2 * h0 > width + (state.last.dbi ? 1 : -1);
    }
    g01 = (g01 & ~std::uint64_t{1}) | (g0 ? 1 : 0);
    eq01 &= ~std::uint64_t{1};

    if (eq01 == 0) {
      s_bits = bit_prefix_xor(g01) & valid;
    } else {
      std::uint64_t s = 0;
      for (int i = 0; i < n; ++i) {
        s = (((g01 >> i) ^ s) & 1U) & ~((eq01 >> i) & 1U);
        s_bits |= s << i;
      }
    }
  }

  // Stats + final state from the transmitted planes, like apply_mask
  // but popcounting whole lines at a time.
  BurstResult r;
  r.invert_mask = s_bits;
  Word last_dq = 0;
  int zeros = 0;
  int transitions = 0;
  for (int b = 0; b < width; ++b) {
    const std::uint64_t tx = planes[b] ^ s_bits;
    const std::uint64_t prev_bit = (state.last.dq >> b) & 1U;
    zeros += n - std::popcount(tx);
    transitions += std::popcount((tx ^ ((tx << 1) | prev_bit)) & valid);
    last_dq |= static_cast<Word>((tx >> (n - 1)) & 1U) << b;
  }
  r.stats.zeros = zeros;
  r.stats.transitions = transitions;
  bool last_dbi = true;  // RAW beats carry an idle-high DBI value
  if (rule != PlanarRule::kRaw) {
    r.stats.zeros += std::popcount(s_bits);
    const std::uint64_t dbi_bits = ~s_bits & valid;
    const std::uint64_t prev_dbi = state.last.dbi ? 1 : 0;
    r.stats.transitions +=
        std::popcount((dbi_bits ^ ((dbi_bits << 1) | prev_dbi)) & valid);
    last_dbi = ((s_bits >> (n - 1)) & 1U) == 0;
  }
  state.last = Beat{last_dq, last_dbi};
  return r;
}

// -------------------------------------------------- flat trellis kernel
//
// Allocation-free Viterbi over the two-state trellis (see
// core/trellis.cpp for the reference DP): both path metrics live in
// registers and the predecessor decisions in two 64-bit masks, so a
// burst costs zero heap traffic. Floating-point operation order matches
// the reference solver exactly — (cur + dc) + alpha * trans — so the
// result is bit-identical even on tie-prone weights.

template <typename CostT, typename Beats, typename WeightsT>
std::uint64_t trellis_mask_flat(const Beats& words, const BusConfig& cfg,
                                const Beat& prev, const WeightsT& w) {
  const int n = words.size();
  const Word m = cfg.dq_mask();
  const auto alpha = static_cast<CostT>(w.alpha);
  const auto beta = static_cast<CostT>(w.beta);

  std::uint64_t pred0 = 0;  // bit i: predecessor state of (beat i, state 0)
  std::uint64_t pred1 = 0;  // bit i: predecessor state of (beat i, state 1)

  const Word w0 = words[0] & m;
  const int z0 = cfg.width - std::popcount(w0);
  CostT c0 = beta * static_cast<CostT>(z0) +
             alpha * static_cast<CostT>(std::popcount((prev.dq ^ w0) & m) +
                                        (prev.dbi != true ? 1 : 0));
  CostT c1 =
      beta * static_cast<CostT>(cfg.width - z0 + 1) +
      alpha * static_cast<CostT>(std::popcount((prev.dq ^ ~w0) & m) +
                                 (prev.dbi != false ? 1 : 0));

  for (int i = 1; i < n; ++i) {
    const Word wc = words[i] & m;
    const Word wp = words[i - 1] & m;
    const int h = std::popcount(wp ^ wc);
    const int ones = std::popcount(wc);
    const CostT dc0 = beta * static_cast<CostT>(cfg.width - ones);
    const CostT dc1 = beta * static_cast<CostT>(ones + 1);
    // Same-state edges keep the DBI value (h raw transitions); opposite
    // edges see the complemented predecessor plus the DBI toggle.
    const CostT t_same = alpha * static_cast<CostT>(h);
    const CostT t_diff = alpha * static_cast<CostT>(cfg.width - h + 1);

    const CostT a0 = (c0 + dc0) + t_same;  // p=0 -> s=0
    const CostT b0 = (c1 + dc0) + t_diff;  // p=1 -> s=0
    const CostT a1 = (c0 + dc1) + t_diff;  // p=0 -> s=1
    const CostT b1 = (c1 + dc1) + t_same;  // p=1 -> s=1
    // Ties keep the non-inverted predecessor, like the Fig. 5 comparators.
    if (b0 < a0) pred0 |= std::uint64_t{1} << i;
    if (b1 < a1) pred1 |= std::uint64_t{1} << i;
    c0 = b0 < a0 ? b0 : a0;
    c1 = b1 < a1 ? b1 : a1;
  }

  std::uint64_t mask = 0;
  int s = (c1 < c0) ? 1 : 0;
  for (int i = n - 1; i >= 0; --i) {
    if (s) mask |= std::uint64_t{1} << i;
    s = static_cast<int>(((s ? pred1 : pred0) >> i) & 1);
  }
  return mask;
}

/// Stats + state update for an arbitrary (width, mask) pair; the
/// generic twin of the packed chunk accounting above.
template <typename Beats>
BurstStats apply_mask(const Beats& words, const BusConfig& cfg,
                      std::uint64_t mask, BusState& state) {
  const Word dq_mask = cfg.dq_mask();
  Beat last = state.last;
  BurstStats stats;
  for (int i = 0; i < words.size(); ++i) {
    const bool inv = (mask >> i) & 1U;
    const Word x = inv ? (~words[i] & dq_mask) : (words[i] & dq_mask);
    const bool dbi = !inv;
    stats.zeros += cfg.width - std::popcount(x) + (dbi ? 0 : 1);
    stats.transitions += std::popcount((last.dq ^ x) & dq_mask) +
                         (last.dbi != dbi ? 1 : 0);
    last = Beat{x, dbi};
  }
  state.last = last;
  return stats;
}

}  // namespace

BatchEncoder::BatchEncoder(Scheme scheme, const dbi::CostWeights& w)
    : scheme_(scheme), weights_(w), fallback_(dbi::make_encoder(scheme, w)) {
  w.validate();
}

std::string_view BatchEncoder::name() const { return fallback_->name(); }

BurstResult BatchEncoder::encode(const Burst& data, BusState& state) const {
  return encode_span(data.words(), data.config(), state, &data);
}

BurstResult BatchEncoder::encode_span(std::span<const Word> words,
                                      const BusConfig& cfg, BusState& state,
                                      const Burst* original) const {
  switch (scheme_) {
    case Scheme::kRaw:
      if (cfg.width == 8) return encode_raw8(WordBeats{words}, state);
      return encode_planar(PlanarRule::kRaw, WordBeats{words}, cfg, state);
    case Scheme::kDc:
      if (cfg.width == 8)
        return encode_fixed8(Fixed8::kDc, WordBeats{words}, state);
      return encode_planar(PlanarRule::kDc, WordBeats{words}, cfg, state);
    case Scheme::kAc:
      if (cfg.width == 8)
        return encode_fixed8(Fixed8::kAc, WordBeats{words}, state);
      return encode_planar(PlanarRule::kAc, WordBeats{words}, cfg, state);
    case Scheme::kAcDc:
      if (cfg.width == 8)
        return encode_fixed8(Fixed8::kAcDc, WordBeats{words}, state);
      return encode_planar(PlanarRule::kAcDc, WordBeats{words}, cfg, state);
    case Scheme::kOpt: {
      BurstResult r;
      r.invert_mask = trellis_mask_flat<double>(WordBeats{words}, cfg,
                                                state.last, weights_);
      r.stats = apply_mask(WordBeats{words}, cfg, r.invert_mask, state);
      return r;
    }
    case Scheme::kOptFixed: {
      BurstResult r;
      r.invert_mask = trellis_mask_flat<std::int64_t>(
          WordBeats{words}, cfg, state.last, dbi::IntCostWeights{1, 1});
      r.stats = apply_mask(WordBeats{words}, cfg, r.invert_mask, state);
      return r;
    }
    default:
      break;
  }

  // Slow path: scalar encoder (the exhaustive-search ablation).
  const dbi::EncodedBurst e = original
                                  ? fallback_->encode(*original, state)
                                  : fallback_->encode(Burst(cfg, words), state);
  BurstResult r{e.inversion_mask(), e.stats(state)};
  state = e.final_state();
  return r;
}

BurstStats BatchEncoder::encode_words(std::span<const Word> words,
                                      const BusConfig& cfg, BusState& state,
                                      BurstResult* results) const {
  cfg.validate();
  const auto bl = static_cast<std::size_t>(cfg.burst_length);
  if (words.size() % bl != 0)
    throw std::invalid_argument(
        "BatchEncoder::encode_words: word count not a multiple of "
        "burst_length");
  BurstStats totals;
  for (std::size_t i = 0; i * bl < words.size(); ++i) {
    const BurstResult r =
        encode_span(words.subspan(i * bl, bl), cfg, state, nullptr);
    totals += r.stats;
    if (results) results[i] = r;
  }
  return totals;
}

BurstStats BatchEncoder::encode_packed(std::span<const std::uint8_t> bytes,
                                       const BusConfig& cfg, BusState& state,
                                       BurstResult* results) const {
  cfg.validate();
  const auto bl = static_cast<std::size_t>(cfg.burst_length);
  const auto bpb = static_cast<std::size_t>(cfg.bytes_per_beat());
  const std::size_t burst_bytes = bl * bpb;
  if (bytes.size() % burst_bytes != 0)
    throw std::invalid_argument(
        "BatchEncoder::encode_packed: payload of " +
        std::to_string(bytes.size()) + " bytes is not a multiple of the " +
        std::to_string(burst_bytes) + "-byte packed burst (width " +
        std::to_string(cfg.width) + ", burst_length " +
        std::to_string(cfg.burst_length) + ")");
  const std::size_t n = bytes.size() / burst_bytes;
  BurstStats totals;
  const std::uint8_t* p = bytes.data();

  // Width-8 schemes consume the packed bytes in place — the trace
  // payload layout is the SWAR lane-word layout, so there is no
  // widening pass at all (and every byte value is a valid beat).
  if (cfg.width == 8 && scheme_ != Scheme::kExhaustive) {
    const int ibl = cfg.burst_length;
    for (std::size_t i = 0; i < n; ++i, p += burst_bytes) {
      const ByteBeats beats{p, ibl};
      BurstResult r;
      switch (scheme_) {
        case Scheme::kRaw:
          r = encode_raw8(beats, state);
          break;
        case Scheme::kDc:
          r = encode_fixed8(Fixed8::kDc, beats, state);
          break;
        case Scheme::kAc:
          r = encode_fixed8(Fixed8::kAc, beats, state);
          break;
        case Scheme::kAcDc:
          r = encode_fixed8(Fixed8::kAcDc, beats, state);
          break;
        case Scheme::kOpt:
          r.invert_mask = trellis_mask_flat<double>(beats, cfg, state.last,
                                                    weights_);
          r.stats = apply_mask(beats, cfg, r.invert_mask, state);
          break;
        default:  // kOptFixed
          r.invert_mask = trellis_mask_flat<std::int64_t>(
              beats, cfg, state.last, dbi::IntCostWeights{1, 1});
          r.stats = apply_mask(beats, cfg, r.invert_mask, state);
          break;
      }
      totals += r.stats;
      if (results) results[i] = r;
    }
    return totals;
  }

  const Word mask = cfg.dq_mask();
  Word buf[64];  // burst_length <= 64 by BusConfig::validate()
  for (std::size_t i = 0; i < n; ++i, p += burst_bytes) {
    for (std::size_t t = 0; t < bl; ++t) {
      Word w = 0;
      for (std::size_t b = 0; b < bpb; ++b)
        w |= static_cast<Word>(p[t * bpb + b]) << (8 * b);
      if ((w & ~mask) != 0)
        throw std::invalid_argument(
            "BatchEncoder::encode_packed: burst " + std::to_string(i) +
            " beat " + std::to_string(t) + ": word 0x" + to_hex(w) +
            " exceeds the width-" + std::to_string(cfg.width) + " bus");
      buf[t] = w;
    }
    const BurstResult r =
        encode_span(std::span<const Word>(buf, bl), cfg, state, nullptr);
    totals += r.stats;
    if (results) results[i] = r;
  }
  return totals;
}

BurstStats BatchEncoder::encode_packed_group(
    std::span<const std::uint8_t> bytes, const dbi::WideBusConfig& cfg,
    int group, BusState& state, BurstResult* results,
    std::size_t results_stride) const {
  cfg.validate();
  const int groups = cfg.groups();
  if (group < 0 || group >= groups)
    throw std::invalid_argument(
        "BatchEncoder::encode_packed_group: group " + std::to_string(group) +
        " outside [0, " + std::to_string(groups) + ") of the width-" +
        std::to_string(cfg.width) + " bus");
  const auto burst_bytes = static_cast<std::size_t>(cfg.bytes_per_burst());
  if (bytes.size() % burst_bytes != 0)
    throw std::invalid_argument(
        "BatchEncoder::encode_packed_group: payload of " +
        std::to_string(bytes.size()) + " bytes is not a multiple of the " +
        std::to_string(burst_bytes) + "-byte packed wide burst (width " +
        std::to_string(cfg.width) + ", " + std::to_string(groups) +
        " groups, burst_length " + std::to_string(cfg.burst_length) + ")");
  const std::size_t n = bytes.size() / burst_bytes;
  const int bl = cfg.burst_length;
  const int gw = cfg.group_width(group);
  const BusConfig gcfg = cfg.group_config(group);
  const Word gmask = gcfg.dq_mask();

  BurstStats totals;
  const std::uint8_t* p = bytes.data() + group;
  for (std::size_t i = 0; i < n; ++i, p += burst_bytes) {
    const StridedBeats beats{p, bl, groups};
    // Full byte groups accept every byte value; a remainder group's
    // bytes must fit its narrower mask.
    if (gw < 8) {
      for (int t = 0; t < bl; ++t)
        if ((beats[t] & ~gmask) != 0)
          throw std::invalid_argument(
              "BatchEncoder::encode_packed_group: burst " + std::to_string(i) +
              " beat " + std::to_string(t) + ": byte 0x" + to_hex(beats[t]) +
              " exceeds the width-" + std::to_string(gw) +
              " remainder group " + std::to_string(group));
    }
    BurstResult r;
    switch (scheme_) {
      case Scheme::kRaw:
        r = gw == 8 ? encode_raw8(beats, state)
                    : encode_planar(PlanarRule::kRaw, beats, gcfg, state);
        break;
      case Scheme::kDc:
        r = gw == 8 ? encode_fixed8(Fixed8::kDc, beats, state)
                    : encode_planar(PlanarRule::kDc, beats, gcfg, state);
        break;
      case Scheme::kAc:
        r = gw == 8 ? encode_fixed8(Fixed8::kAc, beats, state)
                    : encode_planar(PlanarRule::kAc, beats, gcfg, state);
        break;
      case Scheme::kAcDc:
        r = gw == 8 ? encode_fixed8(Fixed8::kAcDc, beats, state)
                    : encode_planar(PlanarRule::kAcDc, beats, gcfg, state);
        break;
      case Scheme::kOpt:
        r.invert_mask =
            trellis_mask_flat<double>(beats, gcfg, state.last, weights_);
        r.stats = apply_mask(beats, gcfg, r.invert_mask, state);
        break;
      case Scheme::kOptFixed:
        r.invert_mask = trellis_mask_flat<std::int64_t>(
            beats, gcfg, state.last, dbi::IntCostWeights{1, 1});
        r.stats = apply_mask(beats, gcfg, r.invert_mask, state);
        break;
      default: {  // kExhaustive: materialise the group burst, scalar twin
        Burst data(gcfg);
        for (int t = 0; t < bl; ++t) data.set_word(t, beats[t]);
        const dbi::EncodedBurst e = fallback_->encode(data, state);
        r = BurstResult{e.inversion_mask(), e.stats(state)};
        state = e.final_state();
        break;
      }
    }
    totals += r.stats;
    if (results) results[i * results_stride] = r;
  }
  return totals;
}

BurstStats BatchEncoder::encode_packed_wide(std::span<const std::uint8_t> bytes,
                                            const dbi::WideBusConfig& cfg,
                                            std::span<dbi::BusState> states,
                                            BurstResult* results) const {
  cfg.validate();
  const int groups = cfg.groups();
  if (states.size() != static_cast<std::size_t>(groups))
    throw std::invalid_argument(
        "BatchEncoder::encode_packed_wide: got " +
        std::to_string(states.size()) + " group states, width " +
        std::to_string(cfg.width) + " needs " + std::to_string(groups));
  BurstStats totals;
  for (int g = 0; g < groups; ++g)
    totals += encode_packed_group(
        bytes, cfg, g, states[static_cast<std::size_t>(g)],
        results ? results + g : nullptr, static_cast<std::size_t>(groups));
  return totals;
}

void BatchEncoder::encode_wide_lanes(const dbi::WideBusConfig& cfg,
                                     std::span<WideLaneTask> lanes,
                                     ShardPool* pool) const {
  cfg.validate();
  const int groups = cfg.groups();
  // Validate every lane before dispatching anything: a bad lane must
  // not surface only after other units already advanced their states.
  for (const WideLaneTask& t : lanes)
    if (t.states.size() != static_cast<std::size_t>(groups))
      throw std::invalid_argument(
          "BatchEncoder::encode_wide_lanes: lane needs " +
          std::to_string(groups) + " group states, got " +
          std::to_string(t.states.size()));
  const auto units = static_cast<int>(lanes.size()) * groups;
  // Every (lane, group) unit writes its own slot; totals reduce after
  // the pool drained, so the run stays barrier- and atomic-free.
  std::vector<BurstStats> unit_totals(static_cast<std::size_t>(units));
  auto run_unit = [this, &cfg, lanes, groups, &unit_totals](int u) {
    WideLaneTask& t = lanes[static_cast<std::size_t>(u / groups)];
    const int g = u % groups;
    unit_totals[static_cast<std::size_t>(u)] = encode_packed_group(
        t.bytes, cfg, g, t.states[static_cast<std::size_t>(g)],
        t.results ? t.results + g : nullptr, static_cast<std::size_t>(groups));
  };
  if (pool) {
    pool->run(units, run_unit);
  } else {
    for (int u = 0; u < units; ++u) run_unit(u);
  }
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    lanes[l].totals = BurstStats{};
    for (int g = 0; g < groups; ++g)
      lanes[l].totals +=
          unit_totals[l * static_cast<std::size_t>(groups) +
                      static_cast<std::size_t>(g)];
  }
}

BurstStats BatchEncoder::encode_lane(std::span<const Burst> bursts,
                                     BusState& state,
                                     BurstResult* results) const {
  BurstStats totals;
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    const BurstResult r = encode(bursts[i], state);
    totals += r.stats;
    if (results) results[i] = r;
  }
  return totals;
}

void BatchEncoder::encode_lanes(std::span<LaneTask> lanes,
                                ShardPool* pool) const {
  auto run_lane = [this, lanes](int i) {
    LaneTask& t = lanes[static_cast<std::size_t>(i)];
    if (!t.state)
      throw std::invalid_argument("BatchEncoder::encode_lanes: null state");
    t.totals = encode_lane(t.bursts, *t.state, t.results);
  };
  if (pool) {
    pool->run(static_cast<int>(lanes.size()), run_lane);
  } else {
    for (int i = 0; i < static_cast<int>(lanes.size()); ++i) run_lane(i);
  }
}

BurstStats BatchEncoder::boundary_totals(std::span<const Burst> bursts,
                                         const BusState& boundary) const {
  BurstStats totals;
  for (const Burst& b : bursts) {
    BusState state = boundary;
    totals += encode(b, state).stats;
  }
  return totals;
}

dbi::EncodedBurst BatchEncoder::materialize(const Burst& data,
                                            const BurstResult& r) const {
  if (scheme_ == Scheme::kRaw) {
    std::vector<Beat> beats;
    beats.reserve(static_cast<std::size_t>(data.length()));
    for (int i = 0; i < data.length(); ++i)
      beats.push_back(Beat{data.word(i), true});
    return dbi::EncodedBurst(data.config(), std::move(beats),
                             /*uses_dbi_line=*/false);
  }
  return dbi::EncodedBurst::from_inversion_mask(data, r.invert_mask);
}

}  // namespace dbi::engine
