// The "neon-fixed8" kernel variant: a deliberately narrow AArch64
// AdvSIMD port covering only the receive side — the flag-masked XOR
// decode, where vtst against the bit-select vector replaces the SWAR
// bit->byte spread multiply. The encode paths report unsupported and
// fall back to the portable reference (NEON has no movemask analogue,
// so the SWAR flag extraction is already near-optimal there).
//
// Compiled whenever CMake defines DBI_HAVE_NEON for this TU (AArch64
// toolchains enable AdvSIMD by default, so no per-file -m flag is
// needed); runtime availability comes from getauxval(AT_HWCAP).
#include "engine/kernel_variants.hpp"

#if defined(DBI_HAVE_NEON)

#include <arm_neon.h>

#include <cstring>

#include "engine/kernels_portable.hpp"

namespace dbi::engine {
namespace {

class NeonKernel final : public KernelVariant {
 public:
  [[nodiscard]] std::string_view name() const override { return "neon-fixed8"; }
  [[nodiscard]] KernelIsa isa() const override { return KernelIsa::kNeon; }
  [[nodiscard]] std::string_view envelope() const override {
    return "width-8 decode at burst lengths divisible by 8 (encode and "
           "wide decode fall back to the portable reference)";
  }

  [[nodiscard]] bool supports_fixed8(Fixed8Rule, int) const override {
    return false;
  }
  [[nodiscard]] bool supports_decode8(const dbi::BusConfig& cfg)
      const override {
    return cfg.width == 8 && cfg.burst_length % 8 == 0;
  }
  [[nodiscard]] bool supports_decode_wide8(int) const override {
    return false;
  }

  dbi::BurstStats encode_fixed8(Fixed8Rule rule, const std::uint8_t* bytes,
                                std::size_t bursts, int burst_length,
                                int stride, dbi::BusState& state,
                                BurstResult* results,
                                std::size_t results_stride) const override {
    return portable_kernel().encode_fixed8(rule, bytes, bursts, burst_length,
                                           stride, state, results,
                                           results_stride);
  }

  void decode_fixed8(const std::uint8_t* tx, const std::uint64_t* masks,
                     std::size_t bursts, const dbi::BusConfig& cfg,
                     std::uint8_t* out) const override {
    if (cfg.width != 8 || cfg.burst_length % 8 != 0) {
      portable_kernel().decode_fixed8(tx, masks, bursts, cfg, out);
      return;
    }
    // One 8-beat block per 64-bit vector: vtst(mask byte, bit k) gives
    // the 0xFF lanes to XOR, the NEON twin of spread_bits_to_bytes.
    const uint8x8_t sel = {1, 2, 4, 8, 16, 32, 64, 128};
    const auto bpb = static_cast<std::size_t>(cfg.burst_length) / 8;
    const std::size_t blocks = bursts * bpb;
    for (std::size_t bk = 0; bk < blocks; ++bk) {
      const auto mb = static_cast<std::uint8_t>(
          (masks[bk / bpb] >> (8 * (bk % bpb))) & 0xFFULL);
      const uint8x8_t inv = vtst_u8(vdup_n_u8(mb), sel);
      vst1_u8(out + bk * 8, veor_u8(vld1_u8(tx + bk * 8), inv));
    }
  }

  void decode_wide8(std::uint8_t* data, const std::uint64_t* masks,
                    std::size_t bursts, int burst_length) const override {
    portable_kernel().decode_wide8(data, masks, bursts, burst_length);
  }
};

}  // namespace

const KernelVariant* neon_kernel() {
  static const NeonKernel kernel;
  return &kernel;
}

}  // namespace dbi::engine

#else  // !DBI_HAVE_NEON

namespace dbi::engine {

const KernelVariant* neon_kernel() { return nullptr; }

}  // namespace dbi::engine

#endif
