#include "engine/stream_encoder.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/observer.hpp"

namespace dbi::engine {

namespace {

/// Sub-block size (bursts) for int64 accumulation: BurstStats counts in
/// int, and (width+1) * burst_length <= 33 * 64 line-beats per burst,
/// so 64K bursts stay far inside int range per encode_packed call.
constexpr std::size_t kAccumBlockBursts = 1 << 16;

}  // namespace

void StreamEncodeOptions::validate() const {
  if (lanes < 1 || lanes > 65536)
    throw std::invalid_argument(
        "StreamEncodeOptions: lanes must be in [1, 65536], got " +
        std::to_string(lanes));
}

StreamEncoder::StreamEncoder(const BatchEncoder& encoder,
                             const dbi::BusConfig& cfg,
                             const StreamEncodeOptions& options,
                             std::span<dbi::BusState> states)
    : encoder_(encoder), cfg_(cfg), opt_(options) {
  opt_.validate();
  cfg_.validate();
  bytes_per_burst_ = static_cast<std::size_t>(cfg_.bytes_per_burst());
  units_.resize(static_cast<std::size_t>(opt_.lanes));
  init(states);
}

StreamEncoder::StreamEncoder(const BatchEncoder& encoder,
                             const dbi::WideBusConfig& cfg,
                             const StreamEncodeOptions& options,
                             std::span<dbi::BusState> states)
    : encoder_(encoder), wcfg_(cfg), wide_(true), opt_(options) {
  opt_.validate();
  wcfg_.validate();
  groups_ = wcfg_.groups();
  bytes_per_burst_ = static_cast<std::size_t>(wcfg_.bytes_per_burst());
  units_.resize(static_cast<std::size_t>(opt_.lanes) *
                static_cast<std::size_t>(groups_));
  init(states);
}

void StreamEncoder::init(std::span<dbi::BusState> states) {
  if (states.empty()) {
    owned_states_.resize(units_.size());
    states_ = owned_states_;
    reset();
  } else {
    // Caller-owned line history (e.g. Session's persistent write
    // state): adopt it as-is — no reset, the caller decides when the
    // bus history restarts.
    if (states.size() != units_.size())
      throw std::invalid_argument(
          "StreamEncoder: expected " + std::to_string(units_.size()) +
          " caller-owned states (lanes x groups), got " +
          std::to_string(states.size()));
    states_ = states;
  }
}

dbi::BusConfig StreamEncoder::unit_config(int unit) const {
  return wide_ ? wcfg_.group_config(unit % groups_) : cfg_;
}

void StreamEncoder::reset() {
  bursts_ = 0;
  for (std::size_t u = 0; u < units_.size(); ++u) {
    states_[u] = dbi::BusState::all_ones(unit_config(static_cast<int>(u)));
    units_[u].zeros = 0;
    units_[u].transitions = 0;
  }
}

void StreamEncoder::reset_states() {
  for (std::size_t u = 0; u < units_.size(); ++u)
    states_[u] = dbi::BusState::all_ones(unit_config(static_cast<int>(u)));
}

std::int64_t StreamEncoder::zeros() const {
  std::int64_t total = 0;
  for (const StreamUnit& su : units_) total += su.zeros;
  return total;
}

std::int64_t StreamEncoder::transitions() const {
  std::int64_t total = 0;
  for (const StreamUnit& su : units_) total += su.transitions;
  return total;
}

void StreamEncoder::encode_unit_slice(int unit, std::int64_t first_burst,
                                      std::span<const std::uint8_t> payload,
                                      std::size_t count,
                                      bool collect_results) {
  const dbi::BusConfig cfg = unit_config(unit);
  const int lane = unit / groups_;
  const int group = unit % groups_;
  obs::ScopedSpan unit_span(opt_.obs, obs::Stage::kEncodeUnit, lane, group);
  const std::size_t bb = bytes_per_burst_;
  const int L = opt_.lanes;
  StreamUnit& us = units_[static_cast<std::size_t>(unit)];
  dbi::BusState& state = states_[static_cast<std::size_t>(unit)];
  const bool want_results = collect_results;

  // First chunk-local index owned by this lane (global index % L == lane).
  const auto base_mod =
      static_cast<std::size_t>(first_burst % static_cast<std::int64_t>(L));
  const std::size_t j0 =
      (static_cast<std::size_t>(lane) + static_cast<std::size_t>(L) -
       base_mod) %
      static_cast<std::size_t>(L);
  if (j0 >= count) return;
  const std::size_t mine = (count - j0 + static_cast<std::size_t>(L) - 1) /
                           static_cast<std::size_t>(L);

  // A wide unit encodes one byte per beat once its slice is gathered.
  const auto slice_bb =
      wide_ ? static_cast<std::size_t>(wcfg_.burst_length) : bb;

  std::span<const std::uint8_t> bytes;
  bool in_place_wide = false;
  if (L == 1) {
    // Single-lane streams consume the chunk view in place — for
    // uncompressed trace chunks that is the mmap page itself (zero
    // copy; wide groups read their bytes at stride groups()).
    bytes = payload;
    in_place_wide = wide_;
  } else if (!wide_) {
    obs::ScopedSpan gather_span(opt_.obs, obs::Stage::kGather, lane, group);
    us.bytes.resize(mine * bb);
    std::uint8_t* dst = us.bytes.data();
    const std::uint8_t* src = payload.data();
    for (std::size_t j = j0; j < count; j += static_cast<std::size_t>(L)) {
      std::memcpy(dst, src + j * bb, bb);
      dst += bb;
    }
    bytes = us.bytes;
  } else {
    // Gather only this unit's group slice (1 byte per beat), so the L
    // x groups units never copy a byte twice.
    obs::ScopedSpan gather_span(opt_.obs, obs::Stage::kGather, lane, group);
    us.bytes.resize(mine * slice_bb);
    std::uint8_t* dst = us.bytes.data();
    const std::uint8_t* src = payload.data();
    const auto stride = static_cast<std::size_t>(groups_);
    for (std::size_t j = j0; j < count; j += static_cast<std::size_t>(L)) {
      const std::uint8_t* burst = src + j * bb + static_cast<std::size_t>(group);
      for (std::size_t t = 0; t < slice_bb; ++t) dst[t] = burst[t * stride];
      dst += slice_bb;
    }
    bytes = us.bytes;
  }
  if (want_results) {
    us.results.resize(mine);
    us.positions.clear();
    for (std::size_t j = j0; j < count; j += static_cast<std::size_t>(L))
      us.positions.push_back(j);
  }

  auto encode_block = [&](std::span<const std::uint8_t> block_bytes,
                          BurstResult* results) {
    return in_place_wide
               ? encoder_.encode_packed_group(block_bytes, wcfg_, group,
                                              state, results)
               : encoder_.encode_packed(block_bytes, cfg, state, results);
  };
  const std::size_t step = in_place_wide ? bb : slice_bb;

  if (opt_.reset_state_per_burst) {
    for (std::size_t k = 0; k < mine; ++k) {
      state = dbi::BusState::all_ones(cfg);
      const dbi::BurstStats s =
          encode_block(bytes.subspan(k * step, step),
                       want_results ? &us.results[k] : nullptr);
      us.zeros += s.zeros;
      us.transitions += s.transitions;
    }
  } else {
    for (std::size_t k0 = 0; k0 < mine; k0 += kAccumBlockBursts) {
      const std::size_t block = std::min(kAccumBlockBursts, mine - k0);
      const dbi::BurstStats s =
          encode_block(bytes.subspan(k0 * step, block * step),
                       want_results ? us.results.data() + k0 : nullptr);
      us.zeros += s.zeros;
      us.transitions += s.transitions;
    }
  }

  if (want_results) {
    const auto g = static_cast<std::size_t>(groups_);
    for (std::size_t k = 0; k < mine; ++k)
      chunk_results_[us.positions[k] * g + static_cast<std::size_t>(group)] =
          us.results[k];
  }
}

std::span<const BurstResult> StreamEncoder::encode_chunk(
    std::int64_t first_burst, std::span<const std::uint8_t> payload,
    std::size_t burst_count, bool collect_results) {
  if (payload.size() != burst_count * bytes_per_burst_)
    throw std::invalid_argument(
        "StreamEncoder: chunk payload of " + std::to_string(payload.size()) +
        " bytes does not hold " + std::to_string(burst_count) + " bursts of " +
        std::to_string(bytes_per_burst_) + " packed bytes");
  if (collect_results)
    chunk_results_.resize(burst_count * static_cast<std::size_t>(groups_));
  obs::ScopedSpan chunk_span(opt_.obs, obs::Stage::kEncodeChunk, first_burst,
                             static_cast<std::int32_t>(std::min<std::size_t>(
                                 burst_count, INT32_MAX)));
  if (opt_.obs) opt_.obs->chunks.inc();
  const auto unit_count = static_cast<int>(units_.size());
  auto run_unit = [this, first_burst, payload, burst_count,
                   collect_results](int unit) {
    encode_unit_slice(unit, first_burst, payload, burst_count,
                      collect_results);
  };
  if (opt_.pool) {
    opt_.pool->run(unit_count, run_unit);
  } else {
    for (int u = 0; u < unit_count; ++u) run_unit(u);
  }
  bursts_ += static_cast<std::int64_t>(burst_count);
  return collect_results ? std::span<const BurstResult>(chunk_results_)
                         : std::span<const BurstResult>{};
}

}  // namespace dbi::engine
