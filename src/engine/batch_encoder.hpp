// BatchEncoder: line-rate batch encoding of burst streams.
//
// The scalar dbi::Encoder hierarchy encodes one burst per virtual call
// and materialises a heap-allocated EncodedBurst each time — ideal for
// the figure reproductions, far too slow for serving traffic. The
// engine encodes whole streams instead:
//
//   * DC / AC / ACDC are decided bit-parallel on packed 64-bit lane
//     words (8 beats of a byte lane per machine word) using SWAR
//     popcounts and a prefix-XOR to resolve the AC decision recurrence
//     — no per-bit loops anywhere (byte-lane groups, width == 8).
//   * Every other width (1..32) runs the fixed schemes through a
//     bit-plane kernel: the burst is transposed into one 64-bit plane
//     per DQ line (bit i = beat i), per-beat popcounts come from
//     bit-sliced vertical counters, and the whole burst's inversion
//     decisions fall out of a handful of whole-word compares — no
//     scalar fallback for any fixed scheme at any geometry.
//   * OPT / OPT (Fixed) run through a flat, allocation-free trellis
//     kernel that keeps both path metrics in registers and the
//     predecessor bits in two 64-bit masks, instead of rebuilding
//     vector-backed trellis state per burst.
//   * Only the exhaustive-search ablation falls back to the scalar
//     encoder; every Scheme is supported and bit-exact at every width.
//
// Wide buses (dbi::WideBusConfig, up to 64 DQ lines) decompose into
// byte groups with one DBI line each, exactly like a x16/x32/x64
// device: encode_packed_wide / encode_packed_group run the kernels
// above per group directly over the beat-major packed payload (group
// g's bytes read at stride groups(), zero widening pass), threading one
// BusState per group. encode_wide_lanes shards (lane, group) units
// across a ShardPool, so a single wide lane still parallelises
// groups()-way.
//
// Results are compact BurstResult records (inversion mask + stats), not
// EncodedBursts: callers that need the physical beats call
// materialize(). BusState is threaded internally per lane; lanes can be
// sharded across a ShardPool deterministically.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/cost.hpp"
#include "core/encoder.hpp"
#include "core/encoding.hpp"
#include "core/types.hpp"
#include "engine/kernel_registry.hpp"
#include "engine/shard_pool.hpp"

namespace dbi::engine {

/// One lane's unit of work for encode_lanes(): an ordered burst stream,
/// the lane's bus state (threaded through and updated in place), and a
/// caller-owned output span with one slot per burst.
struct LaneTask {
  std::span<const dbi::Burst> bursts;
  dbi::BusState* state = nullptr;
  BurstResult* results = nullptr;  ///< nullable: stats-only encode
  dbi::BurstStats totals;          ///< filled by encode_lanes()
};

/// One wide lane's unit of work for encode_wide_lanes(): a packed
/// beat-major burst stream (cfg.bytes_per_burst() bytes per burst), one
/// BusState per byte group (threaded through and updated in place), and
/// an optional caller-owned result array with one slot per
/// (burst, group) pair — burst i's group g lands in
/// results[i * cfg.groups() + g].
struct WideLaneTask {
  std::span<const std::uint8_t> bytes;
  std::span<dbi::BusState> states;  ///< cfg.groups() entries
  BurstResult* results = nullptr;   ///< nullable: stats-only encode
  dbi::BurstStats totals;           ///< filled: summed over all groups
};

class BatchEncoder {
 public:
  /// Engine for one scheme. `w` parameterises kOpt / kExhaustive and is
  /// ignored by the fixed schemes (same contract as dbi::make_encoder).
  explicit BatchEncoder(dbi::Scheme scheme, const dbi::CostWeights& w = {});

  BatchEncoder(const BatchEncoder&) = delete;
  BatchEncoder& operator=(const BatchEncoder&) = delete;

  [[nodiscard]] dbi::Scheme scheme() const { return scheme_; }
  [[nodiscard]] std::string_view name() const;

  /// The kernel variant serving this encoder's hot width-8 fixed-scheme
  /// paths (encode_packed / encode_packed_group full byte groups).
  /// Defaults to the registry's auto selection (CPUID detection plus
  /// the DBI_KERNEL environment override); geometries outside the
  /// variant's envelope fall back to the portable "swar" reference, so
  /// results are bit-exact under every variant. The bit-plane and
  /// trellis paths always run the portable kernels.
  void set_kernel(const KernelVariant& kernel) { kernel_ = &kernel; }
  [[nodiscard]] const KernelVariant& kernel() const { return *kernel_; }

  /// Attaches per-variant dispatch / fallback counters to the hot
  /// encode paths (nullptr detaches; the observer must outlive the
  /// engine or be detached first).
  void set_observer(const obs::Observer* obs) { obs_ = obs; }

  /// The scalar encoder the engine is bit-exact against (also the
  /// slow-path implementation). Lets engine-backed callers expose a
  /// dbi::Encoder without constructing a second one.
  [[nodiscard]] const dbi::Encoder& scalar_twin() const { return *fallback_; }

  /// Encodes one burst against `state` and advances `state` to the
  /// post-burst line values. Bit-exact vs the scalar encoder.
  [[nodiscard]] BurstResult encode(const dbi::Burst& data,
                                   dbi::BusState& state) const;

  /// Encodes a lane's stream in order, threading `state` through all
  /// bursts. Writes one BurstResult per burst to `results` when it is
  /// non-null (then it must hold bursts.size() slots) and returns the
  /// summed stats.
  dbi::BurstStats encode_lane(std::span<const dbi::Burst> bursts,
                              dbi::BusState& state,
                              BurstResult* results = nullptr) const;

  /// Flat-buffer variant for callers that keep payloads out of Burst
  /// objects: `words` holds consecutive bursts back to back (burst i is
  /// words[i * cfg.burst_length ... (i+1) * cfg.burst_length)), every
  /// word already inside cfg.dq_mask(). Threads `state` like
  /// encode_lane and returns the summed stats.
  dbi::BurstStats encode_words(std::span<const dbi::Word> words,
                               const dbi::BusConfig& cfg,
                               dbi::BusState& state,
                               BurstResult* results = nullptr) const;

  /// Packed-byte variant for streaming callers (the trace replay path):
  /// `bytes` holds consecutive bursts in the binary trace format's
  /// payload layout — burst_length beats of cfg.bytes_per_beat()
  /// little-endian bytes each, bursts back to back. Decodes beats on a
  /// fixed stack buffer (no heap traffic) and threads `state` like
  /// encode_words. Beats outside cfg.dq_mask() throw.
  dbi::BurstStats encode_packed(std::span<const std::uint8_t> bytes,
                                const dbi::BusConfig& cfg,
                                dbi::BusState& state,
                                BurstResult* results = nullptr) const;

  /// Wide-bus packed encode: `bytes` holds consecutive beat-major wide
  /// bursts (cfg.bytes_per_burst() bytes each, byte g of a beat carrying
  /// byte group g — the trace format's wide payload layout and the
  /// Channel write layout). Every group is encoded independently with
  /// its own DBI line, threading states[g] (cfg.groups() entries);
  /// kernels read the payload in place at stride cfg.groups(), so
  /// mmap'd wide chunks replay with no widening pass. When `results` is
  /// non-null it must hold bursts * cfg.groups() slots; burst i's group
  /// g is written to results[i * cfg.groups() + g]. Returns the summed
  /// stats of all groups.
  dbi::BurstStats encode_packed_wide(std::span<const std::uint8_t> bytes,
                                     const dbi::WideBusConfig& cfg,
                                     std::span<dbi::BusState> states,
                                     BurstResult* results = nullptr) const;

  /// One group slice of a wide packed stream — the unit ReplayPipeline
  /// and encode_wide_lanes shard on. Encodes group `group` of every
  /// burst in `bytes`, threading `state`; burst i's result is written
  /// to results[i * results_stride] when `results` is non-null.
  dbi::BurstStats encode_packed_group(std::span<const std::uint8_t> bytes,
                                      const dbi::WideBusConfig& cfg, int group,
                                      dbi::BusState& state,
                                      BurstResult* results = nullptr,
                                      std::size_t results_stride = 1) const;

  /// Encodes many independent wide lanes, sharding at group
  /// granularity: unit (lane l, group g) runs on worker
  /// (l * cfg.groups() + g) % pool->workers() (deterministic), so even
  /// a single x64 lane spreads across cfg.groups() workers. Without a
  /// pool, units run serially in index order; results are identical
  /// either way.
  void encode_wide_lanes(const dbi::WideBusConfig& cfg,
                         std::span<WideLaneTask> lanes,
                         ShardPool* pool = nullptr) const;

  /// Encodes many independent lanes. With a pool, lane i runs on worker
  /// i % pool->workers() (deterministic, work-stealing-free); without
  /// one, lanes run serially in index order. Results are identical
  /// either way.
  void encode_lanes(std::span<LaneTask> lanes, ShardPool* pool = nullptr) const;

  /// Sum of per-burst stats with the paper's fixed boundary condition
  /// (state reset to `boundary` before every burst, not threaded).
  [[nodiscard]] dbi::BurstStats boundary_totals(
      std::span<const dbi::Burst> bursts, const dbi::BusState& boundary) const;

  /// Reconstructs the full physical burst for callers that need beats.
  [[nodiscard]] dbi::EncodedBurst materialize(const dbi::Burst& data,
                                              const BurstResult& r) const;

 private:
  /// Shared dispatch: `original` is the Burst backing `words` when the
  /// caller has one (the scalar fallback needs it), nullptr otherwise.
  BurstResult encode_span(std::span<const dbi::Word> words,
                          const dbi::BusConfig& cfg, dbi::BusState& state,
                          const dbi::Burst* original) const;

  dbi::Scheme scheme_;
  dbi::CostWeights weights_;
  std::unique_ptr<dbi::Encoder> fallback_;  // scalar twin / slow path
  const KernelVariant* kernel_;             // never null
  const obs::Observer* obs_ = nullptr;      // dispatch counters; nullable
};

}  // namespace dbi::engine
