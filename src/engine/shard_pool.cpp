#include "engine/shard_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "obs/observer.hpp"

namespace dbi::engine {

namespace {

/// Names the calling worker thread "dbi-shard-N" so external profilers
/// (perf, Perfetto) attribute samples legibly. Best-effort; the Linux
/// limit is 15 visible characters, which this fits up to 7-digit ids.
void name_worker_thread(int worker_id) {
#if defined(__linux__)
  char name[16];
  std::snprintf(name, sizeof name, "dbi-shard-%d", worker_id);
  pthread_setname_np(pthread_self(), name);
#else
  (void)worker_id;
#endif
}

std::uint64_t busy_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ShardPool::ShardPool(int workers) {
  const int n = std::max(workers, 1);
  errors_.assign(static_cast<std::size_t>(n), nullptr);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ShardPool::default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

void ShardPool::run(int shards, const std::function<void(int)>& fn) {
  if (shards < 0) throw std::invalid_argument("ShardPool::run: shards < 0");
  if (shards == 0) return;

  if (const obs::Observer* obs = observer_.load(std::memory_order_acquire))
    obs->count_pool_run(shards);

  std::unique_lock<std::mutex> lock(mu_);
  if (fn_) throw std::logic_error("ShardPool::run: reentrant call");
  std::fill(errors_.begin(), errors_.end(), nullptr);
  fn_ = &fn;
  shards_ = shards;
  workers_done_ = 0;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return workers_done_ == workers(); });
  fn_ = nullptr;
  for (const std::exception_ptr& e : errors_)
    if (e) std::rethrow_exception(e);
}

void ShardPool::worker_loop(int worker_id) {
  name_worker_thread(worker_id);
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    int shards = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      fn = fn_;
      shards = shards_;
    }
    const obs::Observer* obs = observer_.load(std::memory_order_acquire);
    {
      // Span + busy accounting close before the done signal below, so a
      // trace dump right after run() returns never races a record.
      const std::uint64_t busy_start = obs ? busy_clock_ns() : 0;
      int shards_done = 0;
      obs::ScopedSpan span(obs, obs::Stage::kPoolRun, worker_id);
      try {
        for (int s = worker_id; s < shards; s += workers()) {
          (*fn)(s);
          ++shards_done;
        }
      } catch (...) {
        errors_[static_cast<std::size_t>(worker_id)] =
            std::current_exception();
      }
      if (obs) {
        span.set_args(worker_id, shards_done);
        obs->count_worker_busy(worker_id, busy_clock_ns() - busy_start);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace dbi::engine
