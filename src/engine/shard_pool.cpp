#include "engine/shard_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace dbi::engine {

ShardPool::ShardPool(int workers) {
  const int n = std::max(workers, 1);
  errors_.assign(static_cast<std::size_t>(n), nullptr);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ShardPool::default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

void ShardPool::run(int shards, const std::function<void(int)>& fn) {
  if (shards < 0) throw std::invalid_argument("ShardPool::run: shards < 0");
  if (shards == 0) return;

  std::unique_lock<std::mutex> lock(mu_);
  if (fn_) throw std::logic_error("ShardPool::run: reentrant call");
  std::fill(errors_.begin(), errors_.end(), nullptr);
  fn_ = &fn;
  shards_ = shards;
  workers_done_ = 0;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return workers_done_ == workers(); });
  fn_ = nullptr;
  for (const std::exception_ptr& e : errors_)
    if (e) std::rethrow_exception(e);
}

void ShardPool::worker_loop(int worker_id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    int shards = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      fn = fn_;
      shards = shards_;
    }
    try {
      for (int s = worker_id; s < shards; s += workers()) (*fn)(s);
    } catch (...) {
      errors_[static_cast<std::size_t>(worker_id)] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace dbi::engine
