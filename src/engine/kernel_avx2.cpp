// The "avx2-fixed8" kernel variant: the 256-bit sibling of
// kernel_avx512.cpp — 4 bursts per ymm on the encode path, with
// vpmovmskb replacing the AVX-512 compare-into-mask instructions and a
// shuffle-broadcast + bit-test replacing vpmovm2b for the mask -> 0xFF
// lane spread. Compiled with a per-file -mavx2 flag and registered only
// when CMake defined DBI_HAVE_AVX2; runtime CPUID gates selection.
//
// Envelope (everything else falls back to the portable reference):
//   * encode_fixed8: DC / AC / ACDC at burst_length 8 (4 bursts/ymm);
//   * decode_fixed8: width 8, burst_length % 8 == 0;
//   * decode_wide8:  burst_length % 8 == 0.
// See kernel_avx512.cpp for the shared algorithm notes; the scalar
// per-burst AC boundary fixup and the stats identities are identical.
#include "engine/kernel_variants.hpp"

#if defined(DBI_HAVE_AVX2)

#include <immintrin.h>

#include <bit>
#include <cstring>

#include "engine/kernels_portable.hpp"

namespace dbi::engine {
namespace {

/// Per-byte popcount of 32 bytes: nibble LUT + vpshufb, twice.
inline __m256i byte_popcount256(__m256i v) {
  const __m256i lut = _mm256_broadcastsi128_si256(
      _mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
  const __m256i nib = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(v, nib);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

/// Spreads 32 mask bits to 32 bytes: byte k = 0xFF iff bit k is set
/// (the AVX2 stand-in for vpmovm2b). Broadcast the mask dword, shuffle
/// byte k/8 into lane k, then test bit k%8.
inline __m256i spread_mask32(std::uint32_t bits) {
  const __m256i ctrl =
      _mm256_setr_epi8(0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2,
                       2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3);
  const __m256i sel = _mm256_set1_epi64x(0x8040201008040201ULL);
  const __m256i bytes = _mm256_shuffle_epi8(
      _mm256_set1_epi32(static_cast<int>(bits)), ctrl);
  return _mm256_cmpeq_epi8(_mm256_and_si256(bytes, sel), sel);
}

/// 8-bit in-register prefix XOR: bit k of the result = XOR of bits 0..k.
inline std::uint8_t prefix_xor8(std::uint8_t g) {
  g = static_cast<std::uint8_t>(g ^ (g << 1));
  g = static_cast<std::uint8_t>(g ^ (g << 2));
  g = static_cast<std::uint8_t>(g ^ (g << 4));
  return g;
}

class Avx2Kernel final : public KernelVariant {
 public:
  [[nodiscard]] std::string_view name() const override { return "avx2-fixed8"; }
  [[nodiscard]] KernelIsa isa() const override { return KernelIsa::kAvx2; }
  [[nodiscard]] std::string_view envelope() const override {
    return "DC/AC/ACDC encode at burst length 8 (4 bursts per vector); "
           "width-8 and full-group wide decode at burst lengths divisible "
           "by 8";
  }

  [[nodiscard]] bool supports_fixed8(Fixed8Rule rule,
                                     int burst_length) const override {
    return rule != Fixed8Rule::kRaw && burst_length == 8;
  }
  [[nodiscard]] bool supports_decode8(const dbi::BusConfig& cfg)
      const override {
    return cfg.width == 8 && cfg.burst_length % 8 == 0;
  }
  [[nodiscard]] bool supports_decode_wide8(int burst_length) const override {
    return burst_length % 8 == 0;
  }

  dbi::BurstStats encode_fixed8(Fixed8Rule rule, const std::uint8_t* bytes,
                                std::size_t bursts, int burst_length,
                                int stride, dbi::BusState& state,
                                BurstResult* results,
                                std::size_t results_stride) const override {
    if (burst_length != 8 || rule == Fixed8Rule::kRaw) {
      return portable_kernel().encode_fixed8(rule, bytes, bursts, burst_length,
                                             stride, state, results,
                                             results_stride);
    }

    dbi::BurstStats totals;
    std::uint64_t prev_tx = state.last.dq & 0xFFU;
    bool prev_dbi = state.last.dbi;
    const std::uint8_t* p = bytes;
    std::size_t i = 0;

    alignas(32) std::uint8_t gbuf[32];
    // Byte-shift-with-carry scratch (see kernel_avx512.cpp): the
    // carried previous transmitted byte at sc+7, the block at sc+8.
    alignas(32) std::uint8_t sc[40];
    alignas(32) std::uint64_t txq[4];
    alignas(32) std::uint64_t txpop[4];
    alignas(32) std::uint64_t adjpop[4];

    for (; i + 4 <= bursts; i += 4, p += std::size_t{32} * stride) {
      const std::uint8_t* b = p;
      if (stride != 1) {
        for (int k = 0; k < 32; ++k)
          gbuf[k] = p[static_cast<std::size_t>(k) *
                      static_cast<std::size_t>(stride)];
        b = gbuf;
      }
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
      const __m256i pop = byte_popcount256(v);

      std::uint32_t s32;
      // DC flags (pop <= 3): signed compare is safe, popcounts are 0..8.
      const auto dc_bits = static_cast<std::uint32_t>(_mm256_movemask_epi8(
          _mm256_cmpgt_epi8(_mm256_set1_epi8(4), pop)));
      if (rule == Fixed8Rule::kDc) {
        s32 = dc_bits;
      } else {
        // h-flags for beats 1..7 of every burst; each lane's byte 0
        // (beat 0 of an even burst) is corrupted by the lane-local
        // shift, and every burst's beat-0 flag is overwritten below.
        const __m256i h =
            byte_popcount256(_mm256_xor_si256(v, _mm256_bslli_epi128(v, 1)));
        const auto g_bits = static_cast<std::uint32_t>(_mm256_movemask_epi8(
            _mm256_cmpgt_epi8(h, _mm256_set1_epi8(4))));

        std::uint64_t ptx = prev_tx;
        bool pdbi = prev_dbi;
        s32 = 0;
        for (int j = 0; j < 4; ++j) {
          std::uint8_t gb =
              static_cast<std::uint8_t>((g_bits >> (8 * j)) & 0xFE);
          bool g0;
          if (rule == Fixed8Rule::kAcDc) {
            g0 = ((dc_bits >> (8 * j)) & 1U) != 0;
          } else {
            const int t0 =
                std::popcount(static_cast<std::uint32_t>(
                    (b[8 * j] ^ ptx) & 0xFFU)) +
                (pdbi ? 0 : 1);
            g0 = t0 >= 5;
          }
          const std::uint8_t sb =
              prefix_xor8(static_cast<std::uint8_t>(gb | (g0 ? 1 : 0)));
          s32 |= static_cast<std::uint32_t>(sb) << (8 * j);
          ptx = b[8 * j + 7] ^ ((sb & 0x80U) ? 0xFFU : 0U);
          pdbi = (sb & 0x80U) == 0;
        }
      }

      const __m256i tx = _mm256_xor_si256(v, spread_mask32(s32));
      _mm256_store_si256(reinterpret_cast<__m256i*>(txq), tx);
      _mm256_store_si256(
          reinterpret_cast<__m256i*>(txpop),
          _mm256_sad_epu8(byte_popcount256(tx), _mm256_setzero_si256()));
      sc[7] = static_cast<std::uint8_t>(prev_tx);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(sc + 8), tx);
      const __m256i prevv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sc + 7));
      _mm256_store_si256(
          reinterpret_cast<__m256i*>(adjpop),
          _mm256_sad_epu8(byte_popcount256(_mm256_xor_si256(tx, prevv)),
                          _mm256_setzero_si256()));

      for (int j = 0; j < 4; ++j) {
        const auto sb = static_cast<std::uint32_t>((s32 >> (8 * j)) & 0xFFU);
        dbi::BurstStats st;
        st.zeros = 64 - static_cast<int>(txpop[j]) + std::popcount(sb);
        const std::uint32_t dbi_bits = ~sb & 0xFFU;
        const std::uint32_t dbi_adj =
            (dbi_bits ^ ((dbi_bits << 1) | (prev_dbi ? 1U : 0U))) & 0xFFU;
        st.transitions = static_cast<int>(adjpop[j]) + std::popcount(dbi_adj);
        totals += st;
        if (results)
          results[(i + static_cast<std::size_t>(j)) * results_stride] =
              BurstResult{sb, st};
        prev_tx = (txq[j] >> 56) & 0xFFU;
        prev_dbi = (sb & 0x80U) == 0;
      }
    }

    state.last = dbi::Beat{static_cast<dbi::Word>(prev_tx), prev_dbi};
    for (; i < bursts; ++i, p += std::size_t{8} * stride) {
      BurstResult r;
      if (stride == 1) {
        r = kernels::encode_burst8(rule, kernels::ByteBeats{p, 8}, state);
      } else {
        r = kernels::encode_burst8(rule, kernels::StridedBeats{p, 8, stride},
                                   state);
      }
      totals += r.stats;
      if (results) results[i * results_stride] = r;
    }
    return totals;
  }

  void decode_fixed8(const std::uint8_t* tx, const std::uint64_t* masks,
                     std::size_t bursts, const dbi::BusConfig& cfg,
                     std::uint8_t* out) const override {
    if (cfg.width != 8 || cfg.burst_length % 8 != 0) {
      portable_kernel().decode_fixed8(tx, masks, bursts, cfg, out);
      return;
    }
    const auto bpb = static_cast<std::size_t>(cfg.burst_length) / 8;
    const std::size_t blocks = bursts * bpb;
    std::size_t bk = 0;
    for (; bk + 4 <= blocks; bk += 4) {
      std::uint32_t m32 = 0;
      for (std::size_t j = 0; j < 4; ++j) {
        const std::size_t block = bk + j;
        m32 |= static_cast<std::uint32_t>(
                   (masks[block / bpb] >> (8 * (block % bpb))) & 0xFFULL)
               << (8 * j);
      }
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tx + bk * 8));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + bk * 8),
                          _mm256_xor_si256(v, spread_mask32(m32)));
    }
    for (; bk < blocks; ++bk) {
      const std::uint64_t inv = kernels::spread_bits_to_bytes(
          (masks[bk / bpb] >> (8 * (bk % bpb))) & 0xFFULL);
      std::uint64_t p = 0;
      std::memcpy(&p, tx + bk * 8, 8);
      p ^= inv;
      std::memcpy(out + bk * 8, &p, 8);
    }
  }

  void decode_wide8(std::uint8_t* data, const std::uint64_t* masks,
                    std::size_t bursts, int burst_length) const override {
    if (burst_length % 8 != 0) {
      portable_kernel().decode_wide8(data, masks, bursts, burst_length);
      return;
    }
    // Transpose 8 group-mask bytes per 8-beat chunk (see
    // kernel_avx512.cpp), then spread the 64 flag bits as two ymm halves
    // over the beat-major payload.
    const int bl = burst_length;
    const auto bb = static_cast<std::size_t>(bl) * 8;
    for (std::size_t i = 0; i < bursts; ++i) {
      const std::uint64_t* mk = masks + i * 8;
      std::uint8_t* base = data + i * bb;
      for (int t0 = 0; t0 < bl; t0 += 8) {
        std::uint64_t m8 = 0;
        for (int g = 0; g < 8; ++g)
          m8 |= ((mk[g] >> t0) & 0xFFULL) << (8 * g);
        const std::uint64_t tile = transpose8(m8);
        std::uint8_t* p = base + static_cast<std::size_t>(t0) * 8;
        for (int half = 0; half < 2; ++half) {
          const auto bits =
              static_cast<std::uint32_t>(tile >> (32 * half));
          std::uint8_t* q = p + 32 * half;
          const __m256i v =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q));
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(q),
                              _mm256_xor_si256(v, spread_mask32(bits)));
        }
      }
    }
  }
};

}  // namespace

const KernelVariant* avx2_kernel() {
  static const Avx2Kernel kernel;
  return &kernel;
}

}  // namespace dbi::engine

#else  // !DBI_HAVE_AVX2

namespace dbi::engine {

const KernelVariant* avx2_kernel() { return nullptr; }

}  // namespace dbi::engine

#endif
