// StreamEncoder: lane/group-sharded encoding of a packed burst stream,
// one chunk at a time.
//
// This is the shared core behind every streaming front-end: the
// trace::ReplayPipeline feeds it chunks straight off the mmap'd file,
// and dbi::Session feeds it chunks pulled from any Source (in-RAM
// packed spans, generators, trace views). The stream is interpreted
// like a workload::Channel write sequence: burst g belongs to lane
// g % lanes, and each (lane, byte group) pair is one shard unit with
// its own threaded BusState — so a single x64 lane still spreads
// across 8 workers. Totals accumulate in 64-bit counters internally
// (chunks of any size are block-split so BurstStats's int fields never
// overflow), and single-lane streams are encoded in place with zero
// copy (wide groups read their bytes at stride groups()).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "engine/batch_encoder.hpp"
#include "engine/shard_pool.hpp"

namespace dbi::engine {

struct StreamEncodeOptions {
  /// Interleaved lane streams: burst g goes to lane g % lanes, each
  /// threading its own line state (matches Channel's write order).
  int lanes = 1;
  /// Reset every unit to the all-ones boundary before each burst (the
  /// paper's per-burst assumption) instead of threading state.
  bool reset_state_per_burst = false;
  /// Shard (lane, group) units across this pool; null encodes serially.
  /// Results are identical either way.
  ShardPool* pool = nullptr;
  /// Chunk counters + stage spans (encode_chunk / unit / gather); null
  /// disables. Must outlive the StreamEncoder or be detached first.
  const obs::Observer* obs = nullptr;

  void validate() const;
};

/// One shard unit's scratch: gathered payload slice, per-unit results
/// staging, and the unit's 64-bit totals.
struct StreamUnit {
  std::vector<std::uint8_t> bytes;   // gathered packed slice
  std::vector<BurstResult> results;  // only when collecting results
  std::vector<std::size_t> positions;  // chunk-order burst slots
  std::int64_t zeros = 0;
  std::int64_t transitions = 0;
};

class StreamEncoder {
 public:
  /// Narrow stream: every burst is one `cfg` group. `encoder` must
  /// outlive the StreamEncoder. `states` optionally hands in
  /// caller-owned line states (lanes entries, threaded in place, must
  /// outlive the StreamEncoder) so several encode surfaces can share
  /// one bus history; empty means internally owned states.
  StreamEncoder(const BatchEncoder& encoder, const dbi::BusConfig& cfg,
                const StreamEncodeOptions& options,
                std::span<dbi::BusState> states = {});

  /// Wide multi-group stream (beat-major packed payload, one byte per
  /// group per beat). Caller-owned `states` hold lanes x groups
  /// entries, group-minor.
  StreamEncoder(const BatchEncoder& encoder, const dbi::WideBusConfig& cfg,
                const StreamEncodeOptions& options,
                std::span<dbi::BusState> states = {});

  StreamEncoder(const StreamEncoder&) = delete;
  StreamEncoder& operator=(const StreamEncoder&) = delete;

  [[nodiscard]] int groups() const { return groups_; }
  [[nodiscard]] int units() const { return static_cast<int>(units_.size()); }
  [[nodiscard]] std::size_t bytes_per_burst() const { return bytes_per_burst_; }

  /// Restores every unit to the all-ones boundary and zeroes the totals.
  void reset();

  /// Restores every unit to the all-ones boundary WITHOUT touching the
  /// accumulated totals: the member-boundary reset of a concatenated
  /// stream (each lake member is an independent bus history, but the
  /// run's 64-bit totals keep accumulating across members).
  void reset_states();

  /// Re-targets the shard pool (results are pool-independent, so this
  /// is safe between chunks; null returns to serial encoding).
  void set_pool(ShardPool* pool) { opt_.pool = pool; }

  /// Encodes `burst_count` packed bursts (payload holds burst_count *
  /// bytes_per_burst() bytes); `first_burst` is the stream-global index
  /// of the chunk's first burst, which fixes the lane interleave.
  /// With collect_results, returns the per-(burst, group) results in
  /// trace order — burst j's group g at [j * groups() + g]; an empty
  /// span otherwise. The span is valid until the next call.
  std::span<const BurstResult> encode_chunk(
      std::int64_t first_burst, std::span<const std::uint8_t> payload,
      std::size_t burst_count, bool collect_results = false);

  /// 64-bit totals over everything encoded since the last reset().
  [[nodiscard]] std::int64_t bursts() const { return bursts_; }
  [[nodiscard]] std::int64_t zeros() const;
  [[nodiscard]] std::int64_t transitions() const;

 private:
  void init(std::span<dbi::BusState> states);
  void encode_unit_slice(int unit, std::int64_t first_burst,
                         std::span<const std::uint8_t> payload,
                         std::size_t burst_count, bool collect_results);
  [[nodiscard]] dbi::BusConfig unit_config(int unit) const;

  const BatchEncoder& encoder_;
  dbi::BusConfig cfg_;       // narrow streams
  dbi::WideBusConfig wcfg_;  // wide streams
  bool wide_ = false;
  StreamEncodeOptions opt_;
  int groups_ = 1;
  std::size_t bytes_per_burst_ = 0;
  std::int64_t bursts_ = 0;
  std::vector<StreamUnit> units_;       // lanes x groups, group-minor
  std::vector<dbi::BusState> owned_states_;  // empty with external states
  std::span<dbi::BusState> states_;     // one per unit
  std::vector<BurstResult> chunk_results_;  // only when collecting
};

}  // namespace dbi::engine
