#include "api/verify.hpp"

#include <array>
#include <bit>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/stream_stats.hpp"
#include "engine/batch_decoder.hpp"
#include "engine/batch_encoder.hpp"
#include "engine/shard_pool.hpp"
#include "engine/stream_encoder.hpp"
#include "obs/observer.hpp"
#include "trace/trace_reader.hpp"

namespace dbi {

void VerifyReport::record(std::int64_t burst, int lane, int group,
                          std::uint64_t beat_mask) {
  ++mismatched_units;
  mismatched_beats += std::popcount(beat_mask);
  if (sites.size() < kMaxSites)
    sites.push_back(MismatchSite{burst, lane, group, beat_mask});
}

std::uint8_t scheme_to_tag(Scheme s) {
  return static_cast<std::uint8_t>(1 + static_cast<int>(s));
}

std::optional<Scheme> scheme_from_tag(std::uint8_t tag) {
  if (tag < 1 || tag > 7) return std::nullopt;
  return static_cast<Scheme>(tag - 1);
}

VerifyReport verify_encoded_trace(const trace::TraceReader& reader,
                                  const VerifyOptions& options) {
  if (!reader.encoded())
    throw std::invalid_argument(
        "verify: the trace carries no mask stream; round-trip it through "
        "a kRoundTrip session instead");
  const trace::TraceHeader& h = reader.header();

  const bool mixed = h.mixed();
  std::optional<Scheme> scheme = options.scheme;
  if (mixed && options.scheme)
    throw std::invalid_argument(
        "verify: a mixed-scheme (v3) trace carries per-chunk scheme tags; "
        "a single-scheme override does not apply");
  if (!mixed) {
    if (!scheme) scheme = scheme_from_tag(h.enc_scheme);
    if (!scheme)
      throw std::invalid_argument(
          "verify: the trace header does not record its encode scheme; "
          "pass one explicitly");
  }
  const int lanes =
      options.lanes.value_or(h.enc_lanes > 0 ? h.enc_lanes : 1);
  const bool reset =
      options.reset_per_burst.value_or(h.enc_policy == 1);
  const int groups = h.group_count();

  std::unique_ptr<engine::ShardPool> pool;
  if (options.threads >= 2)
    pool = std::make_unique<engine::ShardPool>(options.threads);
  if (options.obs && pool) options.obs->attach_pool(*pool);

  engine::BatchDecoder decoder;
  decoder.set_observer(options.obs);
  engine::StreamEncodeOptions so;
  so.lanes = lanes;
  so.reset_state_per_burst = reset;
  so.pool = pool.get();
  so.obs = options.obs;

  // Mixed traces re-encode each chunk with its tagged scheme. All the
  // per-scheme stream encoders share ONE caller-owned line-state array,
  // so the bus history threads across chunk boundaries exactly as the
  // adaptive session that recorded the trace threaded it.
  std::vector<dbi::BusState> shared_states;
  if (mixed) {
    const int units = lanes * (h.wide() ? groups : 1);
    shared_states.reserve(static_cast<std::size_t>(units));
    for (int u = 0; u < units; ++u)
      shared_states.push_back(dbi::BusState::all_ones(
          h.wide() ? h.wide_config().group_config(u % groups) : h.cfg));
  }
  std::array<std::unique_ptr<engine::BatchEncoder>, 8> engines;
  std::array<std::unique_ptr<engine::StreamEncoder>, 8> streams;
  auto stream_for = [&](std::uint8_t tag,
                        std::span<dbi::BusState> states)
      -> engine::StreamEncoder& {
    std::unique_ptr<engine::StreamEncoder>& s = streams[tag];
    if (!s) {
      const std::optional<Scheme> tagged =
          tag == 0 ? scheme : scheme_from_tag(tag);
      engines[tag] = std::make_unique<engine::BatchEncoder>(*tagged,
                                                            options.weights);
      engines[tag]->set_observer(options.obs);
      s = h.wide() ? std::make_unique<engine::StreamEncoder>(
                         *engines[tag], h.wide_config(), so, states)
                   : std::make_unique<engine::StreamEncoder>(*engines[tag],
                                                             h.cfg, so,
                                                             states);
    }
    return *s;
  };

  VerifyReport report;
  std::vector<std::uint8_t> scratch;
  std::vector<std::uint8_t> mask_scratch;
  std::vector<std::uint64_t> masks;
  std::vector<std::uint8_t> payload;
  for (std::size_t c = 0; c < reader.chunk_count(); ++c) {
    const trace::ChunkInfo& info = reader.chunk(c);
    const auto tx = reader.chunk_payload(c, scratch);
    const auto stored = reader.chunk_masks(c, mask_scratch, masks);
    payload.resize(tx.size());
    if (h.wide())
      decoder.decode_packed_wide(tx, stored, h.wide_config(), payload,
                                 pool.get());
    else
      decoder.decode_packed(tx, stored, h.cfg, payload, pool.get());
    engine::StreamEncoder& stream =
        mixed ? stream_for(info.scheme_tag, shared_states)
              : stream_for(0, {});
    const auto rederived = stream.encode_chunk(
        info.first_burst, payload, info.burst_count,
        /*collect_results=*/true);
    for (std::size_t j = 0; j < info.burst_count; ++j) {
      for (int g = 0; g < groups; ++g) {
        const std::size_t u = j * static_cast<std::size_t>(groups) +
                              static_cast<std::size_t>(g);
        const std::uint64_t diff = rederived[u].invert_mask ^ stored[u];
        if (diff != 0) {
          const std::int64_t burst =
              info.first_burst + static_cast<std::int64_t>(j);
          report.record(burst, static_cast<int>(burst % lanes), g, diff);
        }
      }
    }
    report.bursts += info.burst_count;
    // dbi_chunks_total is bumped by the re-encode's encode_chunk call.
  }
  if (options.obs) {
    StreamStats delta;
    delta.bursts = report.bursts;
    options.obs->count_run(delta,
                           static_cast<std::uint64_t>(report.bursts) *
                               h.bytes_per_burst());
  }
  return report;
}

}  // namespace dbi
