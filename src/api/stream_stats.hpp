// dbi::StreamStats: the one 64-bit aggregate every streaming front-end
// accumulates and reports.
//
// It replaces the per-subsystem twins that grew alongside the encode
// paths — workload::ChannelStats (int64 per-write counters) and
// trace::ReplayTotals (int64 per-burst counters) are now aliases of
// this type — so Session, Channel and the replay summaries all speak
// the same totals, and per-burst / per-write means are derived, never
// separately accumulated.
#pragma once

#include <cstdint>

#include "core/encoding.hpp"

namespace dbi {

struct StreamStats {
  std::int64_t bursts = 0;  ///< encoded group-bursts (lanes x writes)
  std::int64_t writes = 0;  ///< caller-level write ops; 0 when not applicable
  std::int64_t zeros = 0;
  std::int64_t transitions = 0;

  constexpr StreamStats& operator+=(const StreamStats& o) {
    bursts += o.bursts;
    writes += o.writes;
    zeros += o.zeros;
    transitions += o.transitions;
    return *this;
  }
  friend constexpr StreamStats operator+(StreamStats a, const StreamStats& b) {
    return a += b;
  }

  /// Folds one engine result (int counters) into the 64-bit totals.
  constexpr void add(const BurstStats& s, std::int64_t burst_count = 1) {
    bursts += burst_count;
    zeros += s.zeros;
    transitions += s.transitions;
  }

  [[nodiscard]] constexpr double zeros_per_burst() const {
    return bursts ? static_cast<double>(zeros) / static_cast<double>(bursts)
                  : 0.0;
  }
  [[nodiscard]] constexpr double transitions_per_burst() const {
    return bursts
               ? static_cast<double>(transitions) / static_cast<double>(bursts)
               : 0.0;
  }
  [[nodiscard]] constexpr double zeros_per_write() const {
    return writes ? static_cast<double>(zeros) / static_cast<double>(writes)
                  : 0.0;
  }
  [[nodiscard]] constexpr double transitions_per_write() const {
    return writes
               ? static_cast<double>(transitions) / static_cast<double>(writes)
               : 0.0;
  }

  friend constexpr bool operator==(const StreamStats&, const StreamStats&) =
      default;
};

}  // namespace dbi
