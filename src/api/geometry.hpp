// dbi::Geometry: the one bus-shape type of the public Session API.
//
// It subsumes the two engine-level geometry structs:
//   * BusConfig     — a single DBI group of 1..32 DQ lines (narrow),
//   * WideBusConfig — up to 64 DQ lines decomposed into byte groups
//                     with one DBI line each (the JEDEC x16/x32/x64
//                     arrangement).
// so a narrow bus is simply the groups() == 1 case, and every front-end
// (Session, Channel, sweeps, dbitool) speaks one geometry vocabulary.
// The engine structs remain the internal kernel contracts; bus() /
// wide_bus() hand them out where the dispatch needs them.
#pragma once

#include <stdexcept>
#include <string>

#include "core/types.hpp"

namespace dbi {

class Geometry {
 public:
  /// Default: the paper's JEDEC x8 BL8 group.
  constexpr Geometry() = default;

  /// One DBI group of `width` (1..32) DQ lines — a BusConfig.
  [[nodiscard]] static constexpr Geometry narrow(int width,
                                                 int burst_length = 8) {
    return Geometry{width, burst_length, /*wide=*/false};
  }

  /// `width` (1..64) DQ lines split into byte groups, one DBI line per
  /// group — a WideBusConfig. Odd widths end in a remainder group.
  [[nodiscard]] static constexpr Geometry wide(int width,
                                               int burst_length = 8) {
    return Geometry{width, burst_length, /*wide=*/true};
  }

  [[nodiscard]] static constexpr Geometry of(const BusConfig& cfg) {
    return narrow(cfg.width, cfg.burst_length);
  }
  [[nodiscard]] static constexpr Geometry of(const WideBusConfig& cfg) {
    return wide(cfg.width, cfg.burst_length);
  }

  [[nodiscard]] constexpr int width() const { return width_; }
  [[nodiscard]] constexpr int burst_length() const { return burst_length_; }
  [[nodiscard]] constexpr bool is_wide() const { return wide_; }

  /// DBI groups on the bus: 1 for narrow geometry, ceil(width / 8) for
  /// wide geometry.
  [[nodiscard]] constexpr int groups() const {
    return wide_ ? (width_ + 7) / 8 : 1;
  }

  /// The engine-level narrow contract. Only valid for narrow geometry.
  [[nodiscard]] BusConfig bus() const {
    if (wide_)
      throw std::logic_error(
          "Geometry::bus(): wide geometry has no single-group BusConfig; "
          "use wide_bus()");
    return BusConfig{width_, burst_length_};
  }

  /// The engine-level wide contract. Only valid for wide geometry.
  [[nodiscard]] WideBusConfig wide_bus() const {
    if (!wide_)
      throw std::logic_error(
          "Geometry::wide_bus(): narrow geometry is a BusConfig; use bus()");
    return WideBusConfig{width_, burst_length_};
  }

  /// Geometry of group g as a standalone single-group BusConfig (the
  /// unit the kernels and per-group BusStates operate on). For narrow
  /// geometry g must be 0 and this is just bus().
  [[nodiscard]] constexpr BusConfig group_config(int g) const {
    return wide_ ? WideBusConfig{width_, burst_length_}.group_config(g)
                 : BusConfig{width_, burst_length_};
  }

  /// Packed beat-major layout sizes (the trace payload / engine packed
  /// input format at this geometry).
  [[nodiscard]] constexpr int bytes_per_beat() const {
    return wide_ ? WideBusConfig{width_, burst_length_}.bytes_per_beat()
                 : BusConfig{width_, burst_length_}.bytes_per_beat();
  }
  [[nodiscard]] constexpr int bytes_per_burst() const {
    return bytes_per_beat() * burst_length_;
  }

  /// Total lines driven per beat (DQ lines + one DBI line per group).
  [[nodiscard]] constexpr int lines() const { return width_ + groups(); }

  /// Throws std::invalid_argument when the geometry is unusable.
  void validate() const {
    if (wide_)
      WideBusConfig{width_, burst_length_}.validate();
    else
      BusConfig{width_, burst_length_}.validate();
  }

  [[nodiscard]] std::string to_string() const {
    return (wide_ ? "wide x" : "x") + std::to_string(width_) + " BL" +
           std::to_string(burst_length_) +
           (wide_ ? " (" + std::to_string(groups()) + " DBI groups)" : "");
  }

  friend constexpr bool operator==(const Geometry&, const Geometry&) = default;

 private:
  constexpr Geometry(int width, int burst_length, bool wide)
      : width_(width), burst_length_(burst_length), wide_(wide) {}

  int width_ = 8;
  int burst_length_ = 8;
  bool wide_ = false;
};

}  // namespace dbi
