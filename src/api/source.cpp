#include "api/source.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "trace/trace_reader.hpp"
#include "workload/corpus.hpp"
#include "workload/generators.hpp"

namespace dbi {

namespace {

/// Bursts per pulled chunk for sources that stage into a buffer: large
/// enough to amortise the virtual call and fill the engine's SWAR
/// kernels, small enough to keep the staging buffer in cache-friendly
/// territory (<= 2 MiB at the widest geometry).
constexpr std::int64_t kChunkBursts = 1 << 13;

/// Packs one narrow burst's words into the little-endian beat layout.
void pack_burst(const dbi::Burst& b, int bytes_per_beat, std::uint8_t* dst) {
  for (int t = 0; t < b.length(); ++t) {
    const dbi::Word w = b.word(t);
    for (int k = 0; k < bytes_per_beat; ++k)
      *dst++ = static_cast<std::uint8_t>(w >> (8 * k));
  }
}

class BurstSpanSource final : public Source {
 public:
  explicit BurstSpanSource(std::span<const dbi::Burst> bursts)
      : bursts_(bursts) {}

  void bind(const Geometry& g) override {
    if (g.is_wide())
      throw std::invalid_argument(
          "burst source: Burst spans are narrow single-group payloads; "
          "session geometry is " + g.to_string());
    if (!bursts_.empty() && bursts_.front().config() != g.bus())
      throw std::invalid_argument(
          "burst source: span geometry does not match session geometry " +
          g.to_string());
    bb_ = static_cast<std::size_t>(g.bytes_per_burst());
    bpb_ = g.bytes_per_beat();
    next_ = 0;
  }

  std::optional<SourceChunk> next() override {
    if (next_ >= static_cast<std::int64_t>(bursts_.size())) return {};
    const auto n =
        std::min(kChunkBursts,
                 static_cast<std::int64_t>(bursts_.size()) - next_);
    buffer_.resize(static_cast<std::size_t>(n) * bb_);
    for (std::int64_t i = 0; i < n; ++i)
      pack_burst(bursts_[static_cast<std::size_t>(next_ + i)], bpb_,
                 buffer_.data() + static_cast<std::size_t>(i) * bb_);
    next_ += n;
    return SourceChunk{buffer_, n, {}};
  }

  std::span<const dbi::Burst> bursts() const override { return bursts_; }

 private:
  std::span<const dbi::Burst> bursts_;
  std::size_t bb_ = 0;
  int bpb_ = 1;
  std::int64_t next_ = 0;
  std::vector<std::uint8_t> buffer_;
};

class PackedSpanSource final : public Source {
 public:
  explicit PackedSpanSource(std::span<const std::uint8_t> bytes)
      : bytes_(bytes) {}

  /// Encoded variant: transmitted bytes plus per-(burst, group) masks.
  PackedSpanSource(std::span<const std::uint8_t> bytes,
                   std::span<const std::uint64_t> masks)
      : bytes_(bytes), masks_(masks), encoded_(true) {}

  void bind(const Geometry& g) override {
    bb_ = static_cast<std::size_t>(g.bytes_per_burst());
    if (bytes_.size() % bb_ != 0)
      throw std::invalid_argument(
          "packed source: " + std::to_string(bytes_.size()) +
          " bytes is not a multiple of the " + std::to_string(bb_) +
          "-byte packed burst of geometry " + g.to_string());
    if (encoded_) {
      const std::size_t bursts = bytes_.size() / bb_;
      const auto groups = static_cast<std::size_t>(g.groups());
      if (masks_.size() != bursts * groups)
        throw std::invalid_argument(
            "encoded packed source: " + std::to_string(bursts) +
            " bursts of " + std::to_string(groups) + " DBI groups need " +
            std::to_string(bursts * groups) + " masks, got " +
            std::to_string(masks_.size()));
    }
    next_ = 0;
  }

  std::optional<SourceChunk> next() override {
    // The whole span is one zero-copy chunk: the engine core blocks
    // internally for 64-bit accumulation, so there is nothing to gain
    // from slicing it here and a facade-overhead tax to pay.
    const auto total = static_cast<std::int64_t>(bytes_.size() / bb_);
    if (next_ >= total) return {};
    next_ = total;
    return SourceChunk{bytes_, total, masks_};
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::span<const std::uint64_t> masks_;
  bool encoded_ = false;
  std::size_t bb_ = 1;
  std::int64_t next_ = 0;
};

class TraceFileSource final : public Source {
 public:
  explicit TraceFileSource(const trace::TraceReader& reader)
      : reader_(reader) {}

  void bind(const Geometry& g) override {
    const Geometry mine =
        reader_.wide() ? Geometry::of(reader_.header().wide_config())
                       : Geometry::of(reader_.config());
    if (mine != g)
      throw std::invalid_argument("trace source: trace geometry " +
                                  mine.to_string() +
                                  " does not match session geometry " +
                                  g.to_string());
    next_chunk_ = 0;
  }

  std::optional<SourceChunk> next() override {
    if (next_chunk_ >= reader_.chunk_count()) return {};
    const trace::ChunkInfo& info = reader_.chunk(next_chunk_);
    const auto payload = reader_.chunk_payload(next_chunk_, scratch_);
    SourceChunk chunk{payload, static_cast<std::int64_t>(info.burst_count),
                      {}};
    if (reader_.encoded())
      chunk.masks =
          reader_.chunk_masks(next_chunk_, mask_scratch_, mask_words_);
    ++next_chunk_;
    return chunk;
  }

  const trace::TraceReader* trace_reader() const override { return &reader_; }

 private:
  const trace::TraceReader& reader_;
  std::size_t next_chunk_ = 0;
  std::vector<std::uint8_t> scratch_;
  std::vector<std::uint8_t> mask_scratch_;
  std::vector<std::uint64_t> mask_words_;
};

/// Streams a workload generator as packed bursts at the bound
/// geometry. Generators are stateful PRNG streams, so this source is
/// single-pass: a second bind() throws instead of silently replaying
/// different data.
class GeneratorSource : public Source {
 public:
  GeneratorSource(std::unique_ptr<workload::BurstSource> generator,
                  std::int64_t total_bursts)
      : generator_(std::move(generator)), total_(total_bursts) {
    if (total_ < 0)
      throw std::invalid_argument("generator source: negative burst count");
  }

  void bind(const Geometry& g) override {
    if (bound_)
      throw std::logic_error(
          "generator source: single-pass stream cannot be rebound; "
          "construct a new source (or use a corpus source, which reseeds)");
    bound_ = true;
    bind_generator(g);
  }

  std::optional<SourceChunk> next() override {
    if (produced_ >= total_) return {};
    const auto n = std::min(kChunkBursts, total_ - produced_);
    buffer_.resize(static_cast<std::size_t>(n) * bb_);
    if (geometry_.is_wide()) {
      workload::fill_wide_bursts(*generator_, geometry_.wide_bus(), buffer_);
    } else {
      for (std::int64_t i = 0; i < n; ++i)
        pack_burst(generator_->next(), geometry_.bytes_per_beat(),
                   buffer_.data() + static_cast<std::size_t>(i) * bb_);
    }
    produced_ += n;
    return SourceChunk{buffer_, n, {}};
  }

 protected:
  GeneratorSource(std::int64_t total_bursts) : total_(total_bursts) {
    if (total_ < 0)
      throw std::invalid_argument("corpus source: negative burst count");
  }

  void bind_generator(const Geometry& g) {
    g.validate();
    if (g.is_wide()) {
      if (generator_->config().width != 8 ||
          generator_->config().burst_length != g.burst_length())
        throw std::invalid_argument(
            "generator source: wide geometry " + g.to_string() +
            " needs a width-8 byte generator with the same burst length");
    } else if (generator_->config() != g.bus()) {
      throw std::invalid_argument(
          "generator source: generator geometry does not match session "
          "geometry " + g.to_string());
    }
    geometry_ = g;
    bb_ = static_cast<std::size_t>(g.bytes_per_burst());
    produced_ = 0;
  }

  std::unique_ptr<workload::BurstSource> generator_;

 private:
  std::int64_t total_ = 0;
  std::int64_t produced_ = 0;
  bool bound_ = false;
  Geometry geometry_;
  std::size_t bb_ = 1;
  std::vector<std::uint8_t> buffer_;
};

/// Corpus scenarios adopt whatever geometry the session binds and are
/// rewindable: every bind() re-creates the scenario generator at the
/// same seed, so repeated runs see identical data.
class CorpusScenarioSource final : public GeneratorSource {
 public:
  CorpusScenarioSource(std::string scenario, std::int64_t total_bursts,
                       std::uint64_t seed)
      : GeneratorSource(total_bursts),
        scenario_(std::move(scenario)),
        seed_(seed) {}

  void bind(const Geometry& g) override {
    const dbi::BusConfig generator_cfg =
        g.is_wide() ? dbi::BusConfig{8, g.burst_length()} : g.bus();
    generator_ =
        workload::make_corpus_source(scenario_, generator_cfg, seed_);
    bind_generator(g);
  }

 private:
  std::string scenario_;
  std::uint64_t seed_;
};

}  // namespace

std::unique_ptr<Source> make_burst_source(std::span<const dbi::Burst> bursts) {
  return std::make_unique<BurstSpanSource>(bursts);
}

std::unique_ptr<Source> make_packed_source(
    std::span<const std::uint8_t> bytes) {
  return std::make_unique<PackedSpanSource>(bytes);
}

std::unique_ptr<Source> make_encoded_packed_source(
    std::span<const std::uint8_t> bytes,
    std::span<const std::uint64_t> masks) {
  return std::make_unique<PackedSpanSource>(bytes, masks);
}

std::unique_ptr<Source> make_trace_source(const trace::TraceReader& reader) {
  return std::make_unique<TraceFileSource>(reader);
}

std::unique_ptr<Source> make_generator_source(
    std::unique_ptr<workload::BurstSource> generator,
    std::int64_t total_bursts) {
  if (!generator)
    throw std::invalid_argument("generator source: null generator");
  return std::make_unique<GeneratorSource>(std::move(generator),
                                           total_bursts);
}

std::unique_ptr<Source> make_corpus_source(std::string scenario,
                                           std::int64_t total_bursts,
                                           std::uint64_t seed) {
  return std::make_unique<CorpusScenarioSource>(std::move(scenario),
                                                total_bursts, seed);
}

}  // namespace dbi
