#include "api/sink.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "engine/batch_decoder.hpp"
#include "trace/trace_writer.hpp"

namespace dbi {

namespace {

class StatsSink final : public Sink {
 public:
  void consume(const SinkChunk&) override {}
};

class ResultBufferSink final : public Sink {
 public:
  explicit ResultBufferSink(std::vector<engine::BurstResult>& out)
      : out_(out) {}

  bool wants_results() const override { return true; }

  void begin(const Geometry&, int) override { out_.clear(); }

  void consume(const SinkChunk& chunk) override {
    out_.insert(out_.end(), chunk.results.begin(), chunk.results.end());
  }

 private:
  std::vector<engine::BurstResult>& out_;
};

class ObserverSink final : public Sink {
 public:
  using Fn = std::function<void(std::int64_t,
                                std::span<const engine::BurstResult>)>;
  explicit ObserverSink(Fn fn) : fn_(std::move(fn)) {
    if (!fn_) throw std::invalid_argument("observer sink: null callback");
  }

  bool wants_results() const override { return true; }

  void consume(const SinkChunk& chunk) override {
    fn_(chunk.first_burst, chunk.results);
  }

 private:
  Fn fn_;
};

class TraceWriterSink final : public Sink {
 public:
  explicit TraceWriterSink(trace::TraceWriter& writer) : writer_(writer) {}

  bool wants_payload() const override { return true; }

  void begin(const Geometry& geometry, int) override {
    const Geometry writer_geometry =
        writer_.wide() ? Geometry::of(writer_.wide_config())
                       : Geometry::of(writer_.config());
    if (writer_geometry != geometry)
      throw std::invalid_argument("trace sink: writer geometry " +
                                  writer_geometry.to_string() +
                                  " does not match session geometry " +
                                  geometry.to_string());
  }

  void consume(const SinkChunk& chunk) override {
    writer_.write_packed(chunk.payload);
  }

  void finish(const StreamStats&) override { writer_.finish(); }

 private:
  trace::TraceWriter& writer_;
};

class PayloadBufferSink final : public Sink {
 public:
  explicit PayloadBufferSink(std::vector<std::uint8_t>& out) : out_(out) {}

  bool wants_payload() const override { return true; }

  void begin(const Geometry&, int) override { out_.clear(); }

  void consume(const SinkChunk& chunk) override {
    out_.insert(out_.end(), chunk.payload.begin(), chunk.payload.end());
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Applies each chunk's masks to its payload (payload -> transmitted
/// stream) and writes both through an encoded-mode TraceWriter.
class EncodedTraceWriterSink final : public Sink {
 public:
  explicit EncodedTraceWriterSink(trace::TraceWriter& writer)
      : writer_(writer) {}

  bool wants_results() const override { return true; }
  bool wants_payload() const override { return true; }

  void begin(const Geometry& geometry, int) override {
    const Geometry writer_geometry =
        writer_.wide() ? Geometry::of(writer_.wide_config())
                       : Geometry::of(writer_.config());
    if (writer_geometry != geometry)
      throw std::invalid_argument("encoded trace sink: writer geometry " +
                                  writer_geometry.to_string() +
                                  " does not match session geometry " +
                                  geometry.to_string());
    geometry_ = geometry;
  }

  void consume(const SinkChunk& chunk) override {
    if (writer_.per_chunk_schemes()) {
      if (!chunk.scheme)
        throw std::invalid_argument(
            "encoded trace sink: the writer records per-chunk schemes but "
            "this chunk carries none (mixed traces need an adaptive "
            "session)");
      writer_.set_chunk_scheme(*chunk.scheme);
    }
    masks_.resize(chunk.results.size());
    for (std::size_t i = 0; i < chunk.results.size(); ++i)
      masks_[i] = chunk.results[i].invert_mask;
    tx_.resize(chunk.payload.size());
    if (geometry_.is_wide())
      decoder_.apply_packed_wide(chunk.payload, masks_, geometry_.wide_bus(),
                                 tx_);
    else
      decoder_.apply_packed(chunk.payload, masks_, geometry_.bus(), tx_);
    writer_.write_encoded(tx_, masks_);
  }

  void finish(const StreamStats&) override { writer_.finish(); }

 private:
  trace::TraceWriter& writer_;
  Geometry geometry_;
  engine::BatchDecoder decoder_;
  std::vector<std::uint64_t> masks_;
  std::vector<std::uint8_t> tx_;
};

}  // namespace

std::unique_ptr<Sink> make_stats_sink() {
  return std::make_unique<StatsSink>();
}

std::unique_ptr<Sink> make_result_sink(std::vector<engine::BurstResult>& out) {
  return std::make_unique<ResultBufferSink>(out);
}

std::unique_ptr<Sink> make_observer_sink(
    std::function<void(std::int64_t, std::span<const engine::BurstResult>)>
        fn) {
  return std::make_unique<ObserverSink>(std::move(fn));
}

std::unique_ptr<Sink> make_trace_sink(trace::TraceWriter& writer) {
  return std::make_unique<TraceWriterSink>(writer);
}

std::unique_ptr<Sink> make_payload_sink(std::vector<std::uint8_t>& out) {
  return std::make_unique<PayloadBufferSink>(out);
}

std::unique_ptr<Sink> make_encoded_trace_sink(trace::TraceWriter& writer) {
  return std::make_unique<EncodedTraceWriterSink>(writer);
}

}  // namespace dbi
