#include "api/sink.hpp"

#include <stdexcept>
#include <utility>

#include "trace/trace_writer.hpp"

namespace dbi {

namespace {

class StatsSink final : public Sink {
 public:
  void consume(const SinkChunk&) override {}
};

class ResultBufferSink final : public Sink {
 public:
  explicit ResultBufferSink(std::vector<engine::BurstResult>& out)
      : out_(out) {}

  bool wants_results() const override { return true; }

  void begin(const Geometry&, int) override { out_.clear(); }

  void consume(const SinkChunk& chunk) override {
    out_.insert(out_.end(), chunk.results.begin(), chunk.results.end());
  }

 private:
  std::vector<engine::BurstResult>& out_;
};

class ObserverSink final : public Sink {
 public:
  using Fn = std::function<void(std::int64_t,
                                std::span<const engine::BurstResult>)>;
  explicit ObserverSink(Fn fn) : fn_(std::move(fn)) {
    if (!fn_) throw std::invalid_argument("observer sink: null callback");
  }

  bool wants_results() const override { return true; }

  void consume(const SinkChunk& chunk) override {
    fn_(chunk.first_burst, chunk.results);
  }

 private:
  Fn fn_;
};

class TraceWriterSink final : public Sink {
 public:
  explicit TraceWriterSink(trace::TraceWriter& writer) : writer_(writer) {}

  bool wants_payload() const override { return true; }

  void begin(const Geometry& geometry, int) override {
    const Geometry writer_geometry =
        writer_.wide() ? Geometry::of(writer_.wide_config())
                       : Geometry::of(writer_.config());
    if (writer_geometry != geometry)
      throw std::invalid_argument("trace sink: writer geometry " +
                                  writer_geometry.to_string() +
                                  " does not match session geometry " +
                                  geometry.to_string());
  }

  void consume(const SinkChunk& chunk) override {
    writer_.write_packed(chunk.payload);
  }

  void finish(const StreamStats&) override { writer_.finish(); }

 private:
  trace::TraceWriter& writer_;
};

}  // namespace

std::unique_ptr<Sink> make_stats_sink() {
  return std::make_unique<StatsSink>();
}

std::unique_ptr<Sink> make_result_sink(std::vector<engine::BurstResult>& out) {
  return std::make_unique<ResultBufferSink>(out);
}

std::unique_ptr<Sink> make_observer_sink(
    std::function<void(std::int64_t, std::span<const engine::BurstResult>)>
        fn) {
  return std::make_unique<ObserverSink>(std::move(fn));
}

std::unique_ptr<Sink> make_trace_sink(trace::TraceWriter& writer) {
  return std::make_unique<TraceWriterSink>(writer);
}

}  // namespace dbi
