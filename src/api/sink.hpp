// dbi::Sink: where a Session's encode results (and, for recording
// paths, the payload itself) go.
//
// Session::run drives exactly one Source into one Sink; the sink
// declares what it needs per chunk — per-(burst, group) BurstResults,
// the raw packed payload, or nothing but the 64-bit totals — and the
// session only materialises what is asked for, so a stats-only run
// stays result-free all the way down to the kernels.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "api/geometry.hpp"
#include "api/stream_stats.hpp"
#include "core/encoder.hpp"
#include "engine/batch_encoder.hpp"

namespace dbi::trace {
class TraceWriter;
}  // namespace dbi::trace

namespace dbi {

/// One delivered chunk. `results` holds one BurstResult per
/// (burst, group) pair in stream order — burst j's group g at
/// results[j * groups + g] — and is empty unless wants_results();
/// `payload` is the chunk's packed bytes and is empty unless
/// wants_payload().
struct SinkChunk {
  std::int64_t first_burst = 0;
  std::int64_t bursts = 0;
  int groups = 1;
  std::span<const std::uint8_t> payload;
  std::span<const engine::BurstResult> results;
  /// Adaptive (mixed-block) sessions: the scheme this chunk's results
  /// were encoded under. Unset on fixed-scheme runs, where the
  /// session-wide scheme governs. The encoded trace sink forwards it
  /// into the per-chunk v3 scheme tag.
  std::optional<Scheme> scheme;
};

class Sink {
 public:
  virtual ~Sink() = default;
  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  [[nodiscard]] virtual bool wants_results() const { return false; }
  [[nodiscard]] virtual bool wants_payload() const { return false; }

  /// Called by Session::run before the first chunk.
  virtual void begin(const Geometry& /*geometry*/, int /*lanes*/) {}

  /// Called once per chunk, in stream order.
  virtual void consume(const SinkChunk& chunk) = 0;

  /// Called after the last chunk with the run's totals (flush point
  /// for buffering sinks, e.g. the trace writer's footer).
  virtual void finish(const StreamStats& /*totals*/) {}

 protected:
  Sink() = default;
};

/// Totals only — the cheapest sink; Session::run already returns the
/// StreamStats, so this consumes nothing per chunk.
[[nodiscard]] std::unique_ptr<Sink> make_stats_sink();

/// Appends every (burst, group) BurstResult to `out` in stream order.
/// `out` must outlive the sink.
[[nodiscard]] std::unique_ptr<Sink> make_result_sink(
    std::vector<engine::BurstResult>& out);

/// Calls `fn(first_burst, results)` once per chunk, in stream order —
/// the Session twin of trace::ReplayOptions::on_results.
[[nodiscard]] std::unique_ptr<Sink> make_observer_sink(
    std::function<void(std::int64_t first_burst,
                       std::span<const engine::BurstResult> results)>
        fn);

/// Records the stream's payload through a trace::TraceWriter (the
/// dbitool record path: Session pipes a corpus Source into a trace
/// file). finish() finalises the file footer. The writer must outlive
/// the sink and match the session geometry.
[[nodiscard]] std::unique_ptr<Sink> make_trace_sink(
    trace::TraceWriter& writer);

/// Appends the stream's packed payload bytes to `out` — for a kDecode
/// session this is the recovered payload. `out` must outlive the sink.
[[nodiscard]] std::unique_ptr<Sink> make_payload_sink(
    std::vector<std::uint8_t>& out);

/// Records an ENCODED trace: the chunk's payload is XORed with its
/// inversion masks into the transmitted stream and written together
/// with the mask stream through a TraceWriter opened with
/// TraceWriterOptions::encoded (the dbitool `record --encode` path).
/// Only meaningful on a kEncode session; the writer must outlive the
/// sink and match the session geometry.
[[nodiscard]] std::unique_ptr<Sink> make_encoded_trace_sink(
    trace::TraceWriter& writer);

}  // namespace dbi
