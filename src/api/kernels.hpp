// Public kernel-selection surface over the engine's kernel registry.
//
// The engine ships several implementations of its hot fixed-scheme
// paths — the portable SWAR/bit-plane reference plus runtime-dispatched
// SIMD variants (AVX2, AVX-512, NEON) compiled into every binary and
// gated on CPUID at startup. Sessions pick one automatically; this
// header is the introspection and override surface:
//
//   for (const KernelInfo& k : dbi::available_kernels())
//     std::cout << k.name << " (" << k.isa << ")\n";
//
//   SessionSpec spec;
//   spec.kernel = "avx512-fixed8";   // or "swar", "auto", ...
//   Session session(spec);
//   std::cout << session.kernel_report().to_string();
//
// The DBI_KERNEL environment variable applies the same override
// globally (spec.kernel, when non-empty and not "auto", wins over it).
// Every variant is bit-exact against the "swar" reference; selection
// only changes speed, never results.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dbi {

/// One registry entry, in selection-priority order (auto picks the
/// first available one).
struct KernelInfo {
  std::string_view name;      ///< registry name, e.g. "avx512-fixed8"
  std::string_view isa;       ///< ISA requirement: "portable", "avx2", ...
  bool available = false;     ///< host CPU reports the required ISA
  bool selected = false;      ///< what auto selection resolves to right now
  std::string_view envelope;  ///< human-readable supported-path summary
};

/// Every kernel variant compiled into this binary, in selection
/// priority order. `selected` reflects the current auto choice,
/// including a DBI_KERNEL environment override.
[[nodiscard]] std::vector<KernelInfo> available_kernels();

/// Which kernel variant serves each engine path for a given session
/// configuration (see Session::kernel_report()). Paths a spec never
/// exercises report "n/a"; paths outside the selected variant's
/// envelope report the portable fallback, so the report always names
/// what would actually run.
struct KernelReport {
  std::string_view variant;        ///< the resolved variant
  std::string_view isa;            ///< its ISA requirement
  std::string_view fixed_encode;   ///< packed DC/AC/ACDC byte-group encode
  std::string_view planar_encode;  ///< bit-plane encode (non-8 widths)
  std::string_view trellis;        ///< OPT / OPT(Fixed) trellis
  std::string_view decode;         ///< flag-masked XOR decode

  [[nodiscard]] std::string to_string() const;
};

}  // namespace dbi
