// dbi::Source: where a Session's payload bursts come from.
//
// A Source yields the stream as packed beat-major chunks (the binary
// trace payload layout, which is also the engine's packed input
// layout), so every producer — in-RAM Burst spans, packed byte spans,
// mmap'd trace files, named corpus generators — feeds the same
// Session::run pipeline. Sources with an intrinsic shape (traces,
// Burst spans) verify the session geometry against it in bind();
// generators configure themselves for whatever geometry the session
// asks for. Two fast-path hooks let Session keep the zero-copy routes:
// trace_reader() hands trace-backed sources to the double-buffered
// mmap ReplayPipeline, and bursts() lets single-lane narrow streams go
// through BatchEncoder::encode_lane without a packing pass.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "api/geometry.hpp"
#include "core/burst.hpp"

namespace dbi::trace {
class TraceReader;
}  // namespace dbi::trace

namespace dbi::workload {
class BurstSource;
}  // namespace dbi::workload

namespace dbi {

/// One pulled chunk: `bursts` consecutive packed bursts. Encoded
/// sources (a trace recorded with DBI decisions, or an explicit
/// packed+mask pair) additionally carry one u64 inversion mask per
/// (burst, group) pair in burst-major / group-minor order — the input
/// of a kDecode session; payload-only sources leave `masks` empty.
struct SourceChunk {
  std::span<const std::uint8_t> bytes;
  std::int64_t bursts = 0;
  std::span<const std::uint64_t> masks;
  /// True on the first chunk of an independent constituent stream
  /// (e.g. each member file of a trace lake): the session restores the
  /// all-ones line state and restarts the lane interleave before this
  /// chunk, so a concatenated multi-file run is bit-exact against
  /// replaying each file on its own. Single-stream sources leave it
  /// false everywhere (the run start already encodes from fresh
  /// states).
  bool first_of_stream = false;
};

class Source {
 public:
  virtual ~Source() = default;
  Source(const Source&) = delete;
  Source& operator=(const Source&) = delete;

  /// Called by Session::run before the first chunk: checks (or adopts)
  /// the session geometry and rewinds to the start of the stream.
  /// Throws std::invalid_argument when the source cannot produce `g`.
  virtual void bind(const Geometry& g) = 0;

  /// Next chunk, or nullopt at end of stream. The returned view stays
  /// valid until the next call on this source.
  [[nodiscard]] virtual std::optional<SourceChunk> next() = 0;

  /// Fast-path hook: non-null when the source streams a binary trace
  /// the session can hand to the mmap replay pipeline unchanged.
  [[nodiscard]] virtual const trace::TraceReader* trace_reader() const {
    return nullptr;
  }

  /// Fast-path hook: non-empty when the whole stream is an in-RAM
  /// Burst span the session can encode without a packing pass.
  [[nodiscard]] virtual std::span<const dbi::Burst> bursts() const {
    return {};
  }

 protected:
  Source() = default;
};

/// In-RAM Burst span (narrow geometry; the span's BusConfig must match
/// the session geometry). The span must outlive the source.
[[nodiscard]] std::unique_ptr<Source> make_burst_source(
    std::span<const dbi::Burst> bursts);

/// Packed beat-major byte span at the session geometry (size must be a
/// multiple of its bytes_per_burst()). The span must outlive the
/// source.
[[nodiscard]] std::unique_ptr<Source> make_packed_source(
    std::span<const std::uint8_t> bytes);

/// Encoded packed span: `bytes` is the transmitted stream and `masks`
/// holds one u64 inversion mask per (burst, group) pair, burst-major /
/// group-minor. The input of a kDecode session; both spans must
/// outlive the source.
[[nodiscard]] std::unique_ptr<Source> make_encoded_packed_source(
    std::span<const std::uint8_t> bytes,
    std::span<const std::uint64_t> masks);

/// Binary trace chunks served through the reader (zero copy for
/// uncompressed chunks). The reader must outlive the source; its
/// geometry must match the session geometry.
[[nodiscard]] std::unique_ptr<Source> make_trace_source(
    const trace::TraceReader& reader);

/// `total_bursts` bursts pulled from any workload generator, packed at
/// the session geometry (wide geometry interleaves the generator's
/// byte stream beat-major across the groups, like
/// workload::fill_wide_bursts). Takes ownership of the generator; for
/// narrow geometry the generator's BusConfig must match.
[[nodiscard]] std::unique_ptr<Source> make_generator_source(
    std::unique_ptr<workload::BurstSource> generator,
    std::int64_t total_bursts);

/// Named corpus scenario (workload::corpus_scenarios()) at whatever
/// geometry the session binds, seeded deterministically.
[[nodiscard]] std::unique_ptr<Source> make_corpus_source(
    std::string scenario, std::int64_t total_bursts, std::uint64_t seed);

}  // namespace dbi
