#include "api/kernels.hpp"

#include "engine/kernel_registry.hpp"

namespace dbi {

std::vector<KernelInfo> available_kernels() {
  const engine::KernelVariant& selected = engine::default_kernel();
  std::vector<KernelInfo> out;
  for (const engine::KernelVariant* k : engine::registered_kernels()) {
    KernelInfo info;
    info.name = k->name();
    info.isa = engine::isa_name(k->isa());
    info.available = engine::isa_available(k->isa());
    info.selected = (k == &selected);
    info.envelope = k->envelope();
    out.push_back(info);
  }
  return out;
}

std::string KernelReport::to_string() const {
  std::string out;
  out += "kernel: ";
  out += variant;
  out += " (";
  out += isa;
  out += ")\n";
  out += "  fixed encode:  ";
  out += fixed_encode;
  out += "\n  planar encode: ";
  out += planar_encode;
  out += "\n  trellis:       ";
  out += trellis;
  out += "\n  decode:        ";
  out += decode;
  out += "\n";
  return out;
}

}  // namespace dbi
