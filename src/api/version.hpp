// Build identity: the git-describe string stamped at configure time.
//
// Surfaced in three places so a running binary can always be matched
// to a commit: `dbitool --version`, the dbid hello frame (the server
// reports its build to every connecting client), and the
// dbi_build_info{version=...} gauge every metrics export carries.
#pragma once

#include <string>
#include <string_view>

namespace dbi {

/// The configure-time `git describe --always --dirty` string, or
/// "unknown" when the build tree had no git metadata.
[[nodiscard]] std::string_view build_version();

/// Compiler identification of the build ("gcc 13.2.0"-style).
[[nodiscard]] std::string_view build_compiler();

/// One-line human rendering: "dbi <version> (<compiler>)".
[[nodiscard]] std::string build_info();

}  // namespace dbi
