// dbi::Session — the one public front-end over every encode path.
//
// Construct it from a SessionSpec (scheme, Geometry, lanes, cost
// weights, threading, state-reset policy) and drive it with one pair
// of abstractions:
//
//   Session session(SessionSpec{.scheme = Scheme::kAc,
//                               .geometry = Geometry::wide(64)});
//   auto source = make_trace_source(reader);   // or packed / bursts /
//   auto sink = make_stats_sink();             //    corpus / generator
//   const StreamStats totals = session.run(*source, *sink);
//
// Session::run routes to the existing kernels with zero copy
// preserved: trace-backed sources go through the double-buffered mmap
// ReplayPipeline, single-lane narrow Burst spans through
// BatchEncoder::encode_lane, and everything else through the shared
// engine::StreamEncoder chunk loop — the BatchEncoder entry points and
// the replay double-buffer are internal dispatch targets, not part of
// the public surface.
//
// For memory-controller-style incremental traffic (workload::Channel
// is a thin wrapper over this), write() / write_stream() consume
// beat-major interleaved channel bytes against persistent per-lane
// line state, with the same lanes-as-byte-groups wide fast path the
// engine always had.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include <functional>

#include "api/geometry.hpp"
#include "api/kernels.hpp"
#include "api/sink.hpp"
#include "api/source.hpp"
#include "api/stream_stats.hpp"
#include "api/verify.hpp"
#include "core/cost.hpp"
#include "core/encoder.hpp"
#include "core/encoding.hpp"
#include "engine/batch_decoder.hpp"
#include "engine/batch_encoder.hpp"
#include "engine/shard_pool.hpp"
#include "engine/stream_encoder.hpp"
#include "obs/observer.hpp"
#include "select/scheme_policy.hpp"
#include "select/selector.hpp"

namespace dbi {

/// How line state flows from burst to burst on each (lane, group) unit.
enum class StatePolicy {
  kThread,         ///< persistent history (real controller behaviour)
  kResetPerBurst,  ///< the paper's all-ones boundary before every burst
};

/// Which way a Session::run moves the data.
enum class Direction {
  /// Payload in, DBI decisions out (the original pipeline).
  kEncode,
  /// Encoded (transmitted + mask) source in, recovered payload out:
  /// the source must carry masks (an encoded trace or
  /// make_encoded_packed_source), sinks receive the decoded payload,
  /// and the returned StreamStats counts bursts only (the receiver
  /// re-derives no line statistics).
  kDecode,
  /// Encode, materialise the wire stream, decode it back and compare
  /// bit-exactly against the original payload in one pass; the verdict
  /// and per-lane mismatch positions land in Session::verify_report().
  /// Sinks see the round-tripped (receiver-side) payload and the
  /// encode results; totals are the encode totals.
  kRoundTrip,
};

struct SessionSpec {
  /// Deprecated shim: the pre-policy scheme slot. Still assignable —
  /// with a default-constructed `policy` it governs exactly as before.
  /// New code should set `policy` instead.
  Scheme scheme = Scheme::kOpt;
  /// How the session chooses the encoding scheme. The default
  /// (SchemePolicy::Mode::kFollowScheme) defers to `scheme` above;
  /// SchemePolicy::fixed() pins one scheme; the adaptive modes
  /// re-select per block of policy.block_bursts() bursts ("mixed-block"
  /// coding; encode-direction runs only). A bare Scheme converts
  /// implicitly, so `spec.policy = Scheme::kAc;` also works.
  SchemePolicy policy{};
  Geometry geometry{};  ///< narrow x8 BL8 by default
  /// Interleaved lane streams: burst g of a run() source goes to lane
  /// g % lanes; write()/write_stream() treat lanes as byte lanes side
  /// by side (requires narrow x8 geometry, lanes <= 64).
  int lanes = 1;
  CostWeights weights{};  ///< parameterises kOpt / kExhaustive
  /// 0 or 1: encode on the calling thread. N >= 2: the session owns a
  /// ShardPool of N workers and shards (lane, group) units across it.
  int threads = 0;
  /// Non-null: share this caller-owned pool instead (overrides
  /// `threads`; the pool must outlive the session).
  engine::ShardPool* pool = nullptr;
  StatePolicy state_policy = StatePolicy::kThread;
  /// Kernel variant for the hot fixed-scheme encode / decode paths:
  /// "" or "auto" picks the best available variant for this host (the
  /// DBI_KERNEL environment variable overrides the automatic choice);
  /// a registry name ("swar", "avx2-fixed8", "avx512-fixed8",
  /// "neon-fixed8") pins that variant. Construction throws, naming the
  /// candidates, when the name is unknown, the host lacks the required
  /// instruction set, or the variant's envelope covers no path of this
  /// spec's scheme and geometry. See api/kernels.hpp and
  /// Session::kernel_report(). Selection never changes results — every
  /// variant is bit-exact against "swar".
  std::string kernel;
  /// Trace-backed sources: overlap chunk preparation with encoding.
  bool double_buffer = true;
  Direction direction = Direction::kEncode;
  /// Round-trip sessions only: called once per chunk between encode
  /// and decode with the materialised transmitted bytes and the
  /// per-(burst, group) inversion masks (both mutable), so fault
  /// studies can corrupt the wire or the DBI decisions at engine speed
  /// and watch verify_report() catch the damage. Corruptions must stay
  /// on the physical lines: a bus of width w has no wires above
  /// dq_mask, so pushing a transmitted beat out of range (possible at
  /// non-byte widths, where packed bytes have spare bits) is not a
  /// modellable fault — the decoder rejects it like any malformed
  /// packed input and the run throws instead of reporting mismatches.
  std::function<void(std::int64_t first_burst,
                     std::span<std::uint8_t> tx,
                     std::span<std::uint64_t> masks)>
      fault_injector;
  /// Observability: kOff (the default) adds no instrumentation at all —
  /// the hot paths see a null observer and skip every counter. kCounters
  /// makes the session own an obs::Observer (metrics via
  /// Session::metrics_report()); kFull adds stage-span tracing
  /// (Chrome trace_event JSON via Session::observer()). See src/obs/.
  obs::ObsConfig obs{};
  /// Non-null: share this caller-owned observer instead (overrides
  /// `obs`; must outlive the session). Lets several sessions aggregate
  /// into one metrics registry / trace, e.g. dbitool's scheme sweeps.
  obs::Observer* observer = nullptr;

  /// The policy this spec effectively runs: `policy` when set, else the
  /// deprecated `scheme` slot wrapped as a fixed policy.
  [[nodiscard]] SchemePolicy resolved_policy() const {
    return policy.mode() == SchemePolicy::Mode::kFollowScheme
               ? SchemePolicy::fixed(scheme)
               : policy;
  }

  void validate() const;
};

/// One unified report of everything a session can tell about itself —
/// scheme / policy, kernel routing, adaptive selection outcome and the
/// observer's metrics snapshot — with a single JSON rendering (the
/// dbitool --report payload). The older kernel_report() /
/// metrics_report() / selection_report() accessors remain as thin views
/// of the same data.
struct SessionReport {
  std::string scheme;           ///< Session::scheme_name()
  std::string policy;           ///< SchemePolicy::describe()
  KernelReport kernel;
  bool adaptive = false;        ///< selection below is meaningful
  select::SelectionReport selection;
  obs::Snapshot metrics;        ///< empty when observability is off

  [[nodiscard]] std::string to_json() const;
};

class Session {
 public:
  explicit Session(const SessionSpec& spec);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] const SessionSpec& spec() const { return spec_; }
  [[nodiscard]] std::string_view scheme_name() const;

  /// The scalar encoder this session is bit-exact against (the paper's
  /// per-burst reference implementation).
  [[nodiscard]] const dbi::Encoder& scalar_encoder() const;

  /// Which kernel variant serves each engine path under this spec:
  /// the resolved variant (spec.kernel / DBI_KERNEL / auto) where its
  /// envelope covers the path, the portable "swar" reference where it
  /// does not, "n/a" for paths the scheme and geometry never exercise.
  /// Prefer report().kernel — this remains as a thin view.
  [[nodiscard]] KernelReport kernel_report() const;

  /// Everything the session knows about itself in one struct (with
  /// to_json()): scheme / policy, kernel routing, the latest adaptive
  /// selection outcome and the metrics snapshot.
  [[nodiscard]] SessionReport report() const;

  /// Selection outcome of the latest adaptive run (per-candidate chosen
  /// counts, costs, probe accuracy). Empty (blocks == 0) on
  /// fixed-scheme sessions or before the first run. Prefer
  /// report().selection — this remains as a thin view.
  [[nodiscard]] const select::SelectionReport& selection_report() const {
    return selection_;
  }

  /// Streams the whole source into the sink once and returns the
  /// 64-bit totals (also handed to sink.finish()). Restartable: every
  /// run starts from fresh all-ones states; rewindable sources can be
  /// run repeatedly with identical results. The spec's Direction picks
  /// the pipeline: encode, decode (mask-carrying sources only) or
  /// round-trip (see Direction).
  StreamStats run(Source& source, Sink& sink);

  /// Stats-only run.
  StreamStats run(Source& source);

  /// Verdict of the latest kRoundTrip run (reset at every run start):
  /// bit-exact flag plus the first mismatching (burst, lane, group)
  /// sites with their beat masks.
  [[nodiscard]] const VerifyReport& verify_report() const { return verify_; }

  /// Aggregated metrics snapshot of this session's observer (empty when
  /// observability is off). Exact on deterministic runs:
  /// dbi_bursts_total / dbi_bytes_total equal the summed StreamStats.
  /// Prefer report().metrics — this remains as a thin view.
  [[nodiscard]] obs::Snapshot metrics_report() const {
    return obs_ ? obs_->snapshot() : obs::Snapshot{};
  }

  /// The live observer (session-owned or spec.observer), null when off.
  [[nodiscard]] obs::Observer* observer() const { return obs_; }

  // ------------------------------------------------- incremental writes
  //
  // Channel semantics: `lanes` byte lanes side by side, data beat-major
  // (byte of beat t, lane l at data[t * lanes + l]), persistent
  // per-lane line state across calls (or per-write all-ones with
  // StatePolicy::kResetPerBurst). Requires narrow x8 geometry.

  /// Bytes of one full write (lanes * burst_length).
  [[nodiscard]] std::int64_t bytes_per_write() const;

  /// Encodes one write; fills `encoded` with the per-lane physical
  /// bursts when non-null. Returns this write's stats delta.
  StreamStats write(std::span<const std::uint8_t> data,
                    std::vector<dbi::EncodedBurst>* encoded = nullptr);

  /// Batched stats-only write path: any number of consecutive writes
  /// (data.size() a multiple of bytes_per_write()). Up to 8 lanes the
  /// interleaved bytes are encoded in place as one wide bus (lane l =
  /// byte group l, no gather pass); more lanes take a blocked
  /// gather-per-lane route. `pool_override` shards this call across a
  /// caller-owned pool instead of the session's own threading (results
  /// are identical either way). Returns this call's stats delta.
  StreamStats write_stream(std::span<const std::uint8_t> data,
                           engine::ShardPool* pool_override = nullptr);

  /// Running totals over every write()/write_stream() since the last
  /// reset().
  [[nodiscard]] const StreamStats& stats() const { return stats_; }

  /// Restores all-ones line state on every lane and clears stats().
  void reset();

 private:
  [[nodiscard]] engine::ShardPool* pool() const {
    return spec_.pool ? spec_.pool : owned_pool_.get();
  }
  void require_channel_geometry(const char* what) const;
  /// Folds a completed surface's delta into the observer counters
  /// (bytes derived as bursts x geometry.bytes_per_burst()).
  void publish_stats(const StreamStats& delta, bool whole_run) const;
  StreamStats run_chunks(Source& source, Sink& sink);
  StreamStats run_bursts(std::span<const dbi::Burst> bursts);
  StreamStats run_replay(const trace::TraceReader& reader, Sink& sink);
  StreamStats run_decode(Source& source, Sink& sink);
  StreamStats run_roundtrip(Source& source, Sink& sink);
  StreamStats run_adaptive(Source& source, Sink& sink);

  SessionSpec spec_;
  engine::BatchEncoder engine_;
  engine::BatchDecoder decoder_;
  VerifyReport verify_;
  std::unique_ptr<engine::ShardPool> owned_pool_;
  std::unique_ptr<obs::Observer> owned_obs_;
  obs::Observer* obs_ = nullptr;  // owned_obs_ or spec_.observer; nullable

  // Incremental-write surface (lazily set up on first use): persistent
  // per-lane states shared by write() and write_stream()'s wide
  // in-place encoder.
  std::vector<dbi::BusState> lane_states_;
  std::unique_ptr<engine::StreamEncoder> wide_writer_;
  StreamStats stats_;
  select::SelectionReport selection_;  // latest adaptive run's outcome
};

}  // namespace dbi
