// dbi::VerifyReport and encoded-trace verification.
//
// Two verification modes share the report type:
//   * Round-trip (Session Direction::kRoundTrip): every chunk is
//     encoded, materialised onto the wire, decoded back and compared
//     bit-exactly against the original payload — the end-to-end
//     receiver check, with an optional fault injector corrupting the
//     transmitted stream in between.
//   * Encoded-trace verify (verify_encoded_trace / dbitool verify):
//     the trace's transmitted stream is decoded and re-encoded with
//     the scheme recorded in its header (or an override), and the
//     re-derived DBI decisions are compared against the stored mask
//     stream. This catches data/DBI coherence violations (corrupted or
//     misaligned masks); a corruption that yields another LEGAL
//     encoding of some other payload is indistinguishable by design —
//     DBI carries no redundancy; the file CRC covers raw integrity.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/cost.hpp"
#include "core/encoder.hpp"

namespace dbi::trace {
class TraceReader;
}  // namespace dbi::trace
namespace dbi::obs {
class Observer;
}  // namespace dbi::obs

namespace dbi {

/// One mismatching (burst, group) unit. `beat_mask` has bit t set when
/// beat t differs (payload bytes in round-trip mode, re-derived vs
/// stored DBI decision in encoded-trace mode).
struct MismatchSite {
  std::int64_t burst = 0;  ///< global stream index
  int lane = 0;            ///< burst % lanes under the run's interleave
  int group = 0;
  std::uint64_t beat_mask = 0;

  friend constexpr bool operator==(const MismatchSite&,
                                   const MismatchSite&) = default;
};

struct VerifyReport {
  /// First sites kept verbatim; the counters keep going afterwards.
  static constexpr std::size_t kMaxSites = 256;

  std::int64_t bursts = 0;            ///< payload bursts checked
  std::int64_t mismatched_units = 0;  ///< (burst, group) pairs that differ
  std::int64_t mismatched_beats = 0;  ///< set bits over all beat_masks
  std::vector<MismatchSite> sites;

  [[nodiscard]] bool ok() const { return mismatched_units == 0; }

  void record(std::int64_t burst, int lane, int group,
              std::uint64_t beat_mask);
};

/// Overrides for verify_encoded_trace; by default everything comes
/// from the trace header's encode metadata.
struct VerifyOptions {
  std::optional<Scheme> scheme;  ///< required when the header has none
  CostWeights weights{};         ///< parameterises kOpt / kExhaustive
  std::optional<int> lanes;
  std::optional<bool> reset_per_burst;
  /// >= 2: shard the re-encode (and decode ranges) across an internal
  /// pool of this many workers.
  int threads = 0;
  /// Non-null: kernel dispatch counters, stage spans and run totals of
  /// the verify pass land in this observer (must outlive the call).
  obs::Observer* obs = nullptr;
};

/// Decodes `reader`'s transmitted stream, re-encodes it and compares
/// the re-derived inversion masks against the stored mask stream.
/// Mixed-scheme (format v3) traces re-encode each chunk with its own
/// scheme tag, all tags sharing one threaded line history — no scheme
/// override applies there. Throws std::invalid_argument when the trace
/// is not encoded or no scheme is available.
[[nodiscard]] VerifyReport verify_encoded_trace(
    const trace::TraceReader& reader, const VerifyOptions& options = {});

/// Header metadata mapping: byte 17 of an encoded trace is
/// 1 + static_cast<int>(scheme); 0 means "not recorded".
[[nodiscard]] std::uint8_t scheme_to_tag(Scheme s);
[[nodiscard]] std::optional<Scheme> scheme_from_tag(std::uint8_t tag);

}  // namespace dbi
