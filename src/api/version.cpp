#include "api/version.hpp"

// CMake stamps DBI_BUILD_VERSION on this translation unit only (a
// set_source_files_properties compile definition), so touching the
// version string rebuilds one file, not the whole tree.
#ifndef DBI_BUILD_VERSION
#define DBI_BUILD_VERSION "unknown"
#endif

namespace dbi {

std::string_view build_version() { return DBI_BUILD_VERSION; }

std::string_view build_compiler() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown compiler";
#endif
}

std::string build_info() {
  std::string out = "dbi ";
  out += build_version();
  out += " (";
  out += build_compiler();
  out += ")";
  return out;
}

}  // namespace dbi
