#include "api/session.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

#include "trace/replay.hpp"
#include "trace/trace_reader.hpp"

namespace dbi {

namespace {

/// Block size (bursts) for int64 accumulation over the Burst-span fast
/// path: BurstStats counts in int, 64K bursts stay far inside range.
constexpr std::size_t kAccumBlockBursts = 1 << 16;

/// Gathered block size for the > 8-lane write_stream route: bounds the
/// per-lane scratch at O(block) words regardless of stream size.
constexpr std::int64_t kGatherBlockWrites = 1024;

}  // namespace

void SessionSpec::validate() const {
  geometry.validate();
  weights.validate();
  policy.validate();
  if (lanes < 1 || lanes > 65536)
    throw std::invalid_argument("SessionSpec: lanes must be in [1, 65536]");
  if (threads < 0 || threads > 1024)
    throw std::invalid_argument("SessionSpec: threads must be in [0, 1024]");
  if (fault_injector && direction != Direction::kRoundTrip)
    throw std::invalid_argument(
        "SessionSpec: fault_injector only applies to kRoundTrip sessions");
  if (resolved_policy().adaptive() && direction != Direction::kEncode)
    throw std::invalid_argument(
        "SessionSpec: adaptive scheme policies are encode-only (decode and "
        "round-trip take their schemes from the trace's tags)");
}

namespace {

/// The scheme the session's own BatchEncoder runs: the pinned policy
/// scheme when one is set, else the deprecated spec.scheme slot.
/// Adaptive sessions spin up per-candidate engines in run_adaptive and
/// use this one only for kernel introspection and decode.
Scheme session_engine_scheme(const SessionSpec& spec) {
  const SchemePolicy p = spec.resolved_policy();
  return p.mode() == SchemePolicy::Mode::kFixed ? p.fixed_scheme()
                                                : spec.scheme;
}

}  // namespace

Session::Session(const SessionSpec& spec)
    : spec_(spec), engine_(session_engine_scheme(spec_), spec_.weights) {
  spec_.validate();
  // Keep the deprecated scheme slot coherent with a pinned policy so
  // kernel_report() and pre-policy readers agree with what runs.
  if (spec_.policy.mode() == SchemePolicy::Mode::kFixed)
    spec_.scheme = spec_.policy.fixed_scheme();
  // Kernel selection: resolve the spec's pin (unknown names and absent
  // ISAs throw there, naming the candidates), hand the variant to both
  // engine directions, then reject a pin whose envelope covers no path
  // of this scheme and geometry — a session that silently ran the
  // portable fallback everywhere would make the pin a no-op lie.
  const engine::KernelVariant& kernel = engine::resolve_kernel(spec_.kernel);
  engine_.set_kernel(kernel);
  decoder_.set_kernel(kernel);
  // Adaptive sessions exercise every candidate scheme, so the
  // single-scheme envelope strictness below does not apply to them.
  if (!spec_.kernel.empty() && spec_.kernel != "auto" &&
      kernel.isa() != engine::KernelIsa::kPortable &&
      !spec_.resolved_policy().adaptive()) {
    const KernelReport rep = kernel_report();
    if (rep.fixed_encode != kernel.name() && rep.decode != kernel.name())
      throw std::invalid_argument(
          "SessionSpec: kernel '" + spec_.kernel +
          "' supports no path of scheme " + std::string(engine_.name()) +
          " on " + spec_.geometry.to_string() +
          " (this spec runs entirely on the portable reference; candidates: " +
          engine::kernel_candidates() + ")");
  }
  if (!spec_.pool && spec_.threads >= 2)
    owned_pool_ = std::make_unique<engine::ShardPool>(spec_.threads);
  // Observability: a caller-owned observer wins (so e.g. dbitool's
  // scheme sweeps aggregate several sessions into one registry); an
  // ObsConfig above kOff makes the session own one. Either way the
  // engine directions and the pool report into it.
  if (spec_.observer) {
    obs_ = spec_.observer;
  } else if (spec_.obs.level != obs::ObsLevel::kOff) {
    owned_obs_ = std::make_unique<obs::Observer>(spec_.obs);
    obs_ = owned_obs_.get();
  }
  if (obs_) {
    engine_.set_observer(obs_);
    decoder_.set_observer(obs_);
    if (engine::ShardPool* p = pool()) obs_->attach_pool(*p);
  }
  // The incremental-write surface exists for channel-shaped sessions
  // (byte lanes side by side); set up its persistent line states now
  // so write()/write_stream()/reset() agree on them.
  if (!spec_.geometry.is_wide() && spec_.geometry.width() == 8 &&
      spec_.lanes <= 64)
    lane_states_.assign(static_cast<std::size_t>(spec_.lanes),
                        dbi::BusState::all_ones(spec_.geometry.bus()));
}

Session::~Session() {
  // A session-owned observer dies with the session: detach it from the
  // caller-owned pool (the owned pool is destroyed here anyway). A
  // caller-owned observer's attachment is the caller's to manage.
  if (owned_obs_ && spec_.pool) spec_.pool->set_observer(nullptr);
}

void Session::publish_stats(const StreamStats& delta, bool whole_run) const {
  if (!obs_) return;
  const auto byte_count =
      static_cast<std::uint64_t>(delta.bursts) *
      static_cast<std::uint64_t>(spec_.geometry.bytes_per_burst());
  if (whole_run)
    obs_->count_run(delta, byte_count);
  else
    obs_->count_stats(delta, byte_count);
}

std::string_view Session::scheme_name() const {
  switch (spec_.resolved_policy().mode()) {
    case SchemePolicy::Mode::kAdaptiveExact:
      return "adaptive-exact";
    case SchemePolicy::Mode::kAdaptivePredicted:
      return "adaptive-predicted";
    default:
      return engine_.name();
  }
}

const dbi::Encoder& Session::scalar_encoder() const {
  return engine_.scalar_twin();
}

KernelReport Session::kernel_report() const {
  const engine::KernelVariant& k = engine_.kernel();
  KernelReport rep;
  rep.variant = k.name();
  rep.isa = engine::isa_name(k.isa());

  const int bl = spec_.geometry.burst_length();
  const int width = spec_.geometry.width();
  const bool wide = spec_.geometry.is_wide();
  // Which encode kernels this scheme/geometry exercises: full byte
  // groups take the packed fixed kernels, a narrow non-8 width or a
  // wide remainder group takes the bit-plane kernel, OPT schemes the
  // trellis, and kExhaustive bypasses the engine kernels entirely.
  const bool has_byte_group = wide ? width >= 8 : width == 8;
  const bool has_narrow_group = wide ? width % 8 != 0 : width != 8;
  const auto rule = engine::fixed8_rule(spec_.scheme);
  if (rule) {
    rep.fixed_encode =
        !has_byte_group ? "n/a"
        : k.supports_fixed8(*rule, bl) ? k.name()
                                       : engine::portable_kernel().name();
    rep.planar_encode =
        has_narrow_group ? engine::portable_kernel().name() : "n/a";
    rep.trellis = "n/a";
  } else if (spec_.scheme == Scheme::kOpt ||
             spec_.scheme == Scheme::kOptFixed) {
    rep.fixed_encode = "n/a";
    rep.planar_encode = "n/a";
    rep.trellis = engine::portable_kernel().name();
  } else {  // kExhaustive: the scalar ablation encoder
    rep.fixed_encode = "n/a";
    rep.planar_encode = "n/a";
    rep.trellis = "n/a";
  }

  // The receive direction is scheme-blind, so the decode path depends
  // on geometry alone: byte-per-beat lanes and the full-group wide fast
  // path go through the variant, everything else through the portable
  // strided loops.
  if (!wide) {
    rep.decode = width <= 8 && k.supports_decode8(spec_.geometry.bus())
                     ? k.name()
                     : engine::portable_kernel().name();
  } else {
    rep.decode = spec_.geometry.groups() == 8 && width % 8 == 0 &&
                         k.supports_decode_wide8(bl)
                     ? k.name()
                     : engine::portable_kernel().name();
  }
  return rep;
}

void Session::require_channel_geometry(const char* what) const {
  if (spec_.resolved_policy().adaptive())
    throw std::logic_error(
        std::string("Session::") + what +
        ": the incremental write surface encodes with one fixed scheme; "
        "adaptive policies run through Session::run()");
  if (spec_.geometry.is_wide() || spec_.geometry.width() != 8 ||
      spec_.lanes > 64)
    throw std::logic_error(
        std::string("Session::") + what +
        ": the incremental write surface needs narrow x8 geometry with at "
        "most 64 lanes (channel semantics); this session is " +
        spec_.geometry.to_string() + " with " + std::to_string(spec_.lanes) +
        " lanes");
}

std::int64_t Session::bytes_per_write() const {
  return static_cast<std::int64_t>(spec_.lanes) *
         static_cast<std::int64_t>(spec_.geometry.burst_length());
}

StreamStats Session::write(std::span<const std::uint8_t> data,
                           std::vector<dbi::EncodedBurst>* encoded) {
  require_channel_geometry("write");
  if (spec_.direction != Direction::kEncode)
    throw std::logic_error(
        "Session::write: the incremental write surface is encode-only");
  if (static_cast<std::int64_t>(data.size()) != bytes_per_write())
    throw std::invalid_argument(
        "Session::write: expected " + std::to_string(bytes_per_write()) +
        " bytes, got " + std::to_string(data.size()));

  const dbi::BusConfig lane_cfg = spec_.geometry.bus();
  const int lanes = spec_.lanes;
  const int bl = lane_cfg.burst_length;
  if (encoded) {
    encoded->clear();
    encoded->reserve(static_cast<std::size_t>(lanes));
  }

  StreamStats delta;
  dbi::Burst burst(lane_cfg);
  for (int lane = 0; lane < lanes; ++lane) {
    for (int beat = 0; beat < bl; ++beat)
      burst.set_word(beat,
                     data[static_cast<std::size_t>(beat) *
                              static_cast<std::size_t>(lanes) +
                          static_cast<std::size_t>(lane)]);
    dbi::BusState& state = lane_states_[static_cast<std::size_t>(lane)];
    if (spec_.state_policy == StatePolicy::kResetPerBurst)
      state = dbi::BusState::all_ones(lane_cfg);
    const engine::BurstResult r = engine_.encode(burst, state);
    delta.add(r.stats);
    if (encoded) encoded->push_back(engine_.materialize(burst, r));
  }
  delta.writes = 1;
  stats_ += delta;
  publish_stats(delta, /*whole_run=*/false);
  return delta;
}

StreamStats Session::write_stream(std::span<const std::uint8_t> data,
                                  engine::ShardPool* pool_override) {
  require_channel_geometry("write_stream");
  if (spec_.direction != Direction::kEncode)
    throw std::logic_error(
        "Session::write_stream: the incremental write surface is "
        "encode-only");
  const auto bpw = static_cast<std::size_t>(bytes_per_write());
  if (data.size() % bpw != 0)
    throw std::invalid_argument(
        "Session::write_stream: data size must be a multiple of " +
        std::to_string(bpw) + " bytes, got " + std::to_string(data.size()));
  const auto writes = static_cast<std::int64_t>(data.size() / bpw);
  if (writes == 0) return {};

  const int lanes = spec_.lanes;
  const dbi::BusConfig lane_cfg = spec_.geometry.bus();
  const bool reset_per_write =
      spec_.state_policy == StatePolicy::kResetPerBurst;

  StreamStats delta;
  delta.writes = writes;
  delta.bursts = writes * lanes;

  // Wide fast path: for up to 8 byte lanes the beat-major interleave IS
  // the engine's packed wide layout (lane l = byte group l of a
  // width-8*lanes bus), so the stream encodes in place — no per-lane
  // gather at all — with the pool sharding the byte-group units.
  if (lanes * 8 <= dbi::WideBusConfig::kMaxWidth) {
    if (!wide_writer_) {
      engine::StreamEncodeOptions so;
      so.lanes = 1;
      so.reset_state_per_burst = reset_per_write;
      wide_writer_ = std::make_unique<engine::StreamEncoder>(
          engine_, dbi::WideBusConfig{8 * lanes, lane_cfg.burst_length}, so,
          std::span<dbi::BusState>(lane_states_));
    }
    wide_writer_->set_pool(pool_override ? pool_override : pool());
    const std::int64_t zeros_before = wide_writer_->zeros();
    const std::int64_t transitions_before = wide_writer_->transitions();
    (void)wide_writer_->encode_chunk(0, data,
                                     static_cast<std::size_t>(writes));
    delta.zeros = wide_writer_->zeros() - zeros_before;
    delta.transitions = wide_writer_->transitions() - transitions_before;
    stats_ += delta;
    publish_stats(delta, /*whole_run=*/false);
    return delta;
  }

  // > 8 lanes: gather each lane's bytes out of the beat-major
  // interleave into a reused flat word buffer, one block of writes at
  // a time, and push each block through the engine. 64-bit
  // accumulation per lane.
  const int bl = lane_cfg.burst_length;
  struct LaneTotals {
    std::int64_t zeros = 0;
    std::int64_t transitions = 0;
  };
  std::vector<LaneTotals> lane_totals(static_cast<std::size_t>(lanes));

  auto encode_lane_stream = [&](int lane) {
    std::vector<dbi::Word> words(
        static_cast<std::size_t>(std::min(writes, kGatherBlockWrites)) *
        static_cast<std::size_t>(bl));
    dbi::BusState& state = lane_states_[static_cast<std::size_t>(lane)];
    LaneTotals& totals = lane_totals[static_cast<std::size_t>(lane)];
    auto add = [&totals](const dbi::BurstStats& s) {
      totals.zeros += s.zeros;
      totals.transitions += s.transitions;
    };

    for (std::int64_t w0 = 0; w0 < writes; w0 += kGatherBlockWrites) {
      const std::int64_t block = std::min(kGatherBlockWrites, writes - w0);
      for (std::int64_t wi = 0; wi < block; ++wi) {
        const std::size_t base = static_cast<std::size_t>(w0 + wi) * bpw;
        for (int beat = 0; beat < bl; ++beat)
          words[static_cast<std::size_t>(wi * bl + beat)] =
              data[base + static_cast<std::size_t>(beat) *
                              static_cast<std::size_t>(lanes) +
                   static_cast<std::size_t>(lane)];
      }
      const std::span<const dbi::Word> block_words(
          words.data(), static_cast<std::size_t>(block * bl));

      if (reset_per_write) {
        for (std::int64_t wi = 0; wi < block; ++wi) {
          state = dbi::BusState::all_ones(lane_cfg);
          add(engine_.encode_words(
              block_words.subspan(static_cast<std::size_t>(wi * bl),
                                  static_cast<std::size_t>(bl)),
              lane_cfg, state));
        }
      } else {
        add(engine_.encode_words(block_words, lane_cfg, state));
      }
    }
  };

  if (engine::ShardPool* p = pool_override ? pool_override : pool()) {
    p->run(lanes, encode_lane_stream);
  } else {
    for (int lane = 0; lane < lanes; ++lane) encode_lane_stream(lane);
  }

  for (const LaneTotals& s : lane_totals) {
    delta.zeros += s.zeros;
    delta.transitions += s.transitions;
  }
  stats_ += delta;
  publish_stats(delta, /*whole_run=*/false);
  return delta;
}

void Session::reset() {
  if (!lane_states_.empty())
    lane_states_.assign(static_cast<std::size_t>(spec_.lanes),
                        dbi::BusState::all_ones(spec_.geometry.bus()));
  stats_ = StreamStats{};
}

StreamStats Session::run_replay(const trace::TraceReader& reader,
                                Sink& sink) {
  trace::ReplayOptions opt;
  opt.lanes = spec_.lanes;
  opt.reset_state_per_burst =
      spec_.state_policy == StatePolicy::kResetPerBurst;
  opt.pool = pool();
  opt.double_buffer = spec_.double_buffer;
  opt.obs = obs_;
  if (sink.wants_results()) {
    const int groups = spec_.geometry.groups();
    opt.on_results = [&sink, groups](
                         std::int64_t first_burst,
                         std::span<const engine::BurstResult> results) {
      SinkChunk chunk;
      chunk.first_burst = first_burst;
      chunk.bursts =
          static_cast<std::int64_t>(results.size()) / std::max(groups, 1);
      chunk.groups = groups;
      chunk.results = results;
      sink.consume(chunk);
    };
  }

  // RLE volume is tallied per reader; fold only this run's delta into
  // the monotonic counters so repeated runs don't double-count.
  const trace::ReaderMetrics& rm = reader.metrics();
  const std::uint64_t rle_chunks0 = rm.rle_chunks.load();
  const std::uint64_t rle_in0 = rm.rle_bytes_compressed.load();
  const std::uint64_t rle_out0 = rm.rle_bytes_expanded.load();

  const StreamStats totals = trace::replay_trace(reader, engine_, opt);

  if (obs_) {
    obs_->rle_chunks.add(rm.rle_chunks.load() - rle_chunks0);
    const std::uint64_t rle_in = rm.rle_bytes_compressed.load() - rle_in0;
    const std::uint64_t rle_out = rm.rle_bytes_expanded.load() - rle_out0;
    obs_->rle_bytes_compressed.add(rle_in);
    obs_->rle_bytes_expanded.add(rle_out);
    obs_->trace_file_bytes.set(static_cast<double>(reader.file_bytes()));
    obs_->trace_payload_bytes.set(
        static_cast<double>(reader.bursts()) *
        static_cast<double>(spec_.geometry.bytes_per_burst()));
    obs_->trace_crc_ns.set(static_cast<double>(rm.crc_ns));
    if (rle_in > 0)
      obs_->trace_rle_expand_ratio.set(static_cast<double>(rle_out) /
                                       static_cast<double>(rle_in));
  }
  return totals;
}

StreamStats Session::run_bursts(std::span<const dbi::Burst> bursts) {
  const dbi::BusConfig cfg = spec_.geometry.bus();
  const dbi::BusState boundary = dbi::BusState::all_ones(cfg);
  StreamStats totals;
  dbi::BusState state = boundary;
  for (std::size_t b0 = 0; b0 < bursts.size(); b0 += kAccumBlockBursts) {
    const std::size_t n = std::min(kAccumBlockBursts, bursts.size() - b0);
    const std::span<const dbi::Burst> block = bursts.subspan(b0, n);
    const dbi::BurstStats s =
        spec_.state_policy == StatePolicy::kResetPerBurst
            ? engine_.boundary_totals(block, boundary)
            : engine_.encode_lane(block, state);
    totals.add(s, static_cast<std::int64_t>(n));
  }
  return totals;
}

StreamStats Session::run_chunks(Source& source, Sink& sink) {
  engine::StreamEncodeOptions so;
  so.lanes = spec_.lanes;
  so.reset_state_per_burst =
      spec_.state_policy == StatePolicy::kResetPerBurst;
  so.pool = pool();
  so.obs = obs_;

  const bool collect = sink.wants_results();
  const bool pass_payload = sink.wants_payload();
  const int groups = spec_.geometry.groups();

  auto deliver = [&](std::int64_t first_burst, const SourceChunk& c,
                     std::span<const engine::BurstResult> results) {
    obs::ScopedSpan span(obs_, obs::Stage::kSinkWrite, first_burst,
                         static_cast<std::int32_t>(std::min<std::int64_t>(
                             c.bursts, INT32_MAX)));
    SinkChunk chunk;
    chunk.first_burst = first_burst;
    chunk.bursts = c.bursts;
    chunk.groups = groups;
    if (pass_payload) chunk.payload = c.bytes;
    chunk.results = results;
    sink.consume(chunk);
  };

  // Multi-lane chunks gather each unit's slice into per-unit scratch;
  // slicing big chunks bounds that scratch at O(kAccumBlockBursts)
  // regardless of how large a span the source serves in one piece.
  // Single-lane streams encode in place, so slicing would only cost.
  const std::int64_t slice_bursts =
      spec_.lanes > 1 ? static_cast<std::int64_t>(kAccumBlockBursts)
                      : std::numeric_limits<std::int64_t>::max();
  const auto bb = static_cast<std::size_t>(spec_.geometry.bytes_per_burst());

  auto next_chunk = [&] {
    obs::ScopedSpan span(obs_, obs::Stage::kSourceRead);
    return source.next();
  };

  auto encode_all = [&](engine::StreamEncoder& enc) {
    StreamStats totals;
    std::int64_t first_burst = 0;   // sink-facing, continuous over the run
    std::int64_t stream_burst = 0;  // lane phase within the current stream
    while (const auto c = next_chunk()) {
      if (!c->masks.empty())
        throw std::invalid_argument(
            "Session::run: the source is already encoded (mask-carrying); "
            "run a kDecode session instead of re-encoding it");
      if (c->first_of_stream && first_burst > 0) {
        // A new constituent stream (e.g. the next lake member): fresh
        // all-ones line state and a restarted lane interleave, so the
        // concatenated run stays bit-exact against per-stream replay.
        // Totals keep accumulating; the sink's burst axis stays
        // continuous.
        enc.reset_states();
        stream_burst = 0;
      }
      for (std::int64_t b0 = 0; b0 < c->bursts; b0 += slice_bursts) {
        const std::int64_t n = std::min(slice_bursts, c->bursts - b0);
        const SourceChunk slice{
            c->bytes.subspan(static_cast<std::size_t>(b0) * bb,
                             static_cast<std::size_t>(n) * bb),
            n,
            {}};
        const auto results = enc.encode_chunk(
            stream_burst, slice.bytes, static_cast<std::size_t>(n), collect);
        deliver(first_burst, slice, results);
        first_burst += n;
        stream_burst += n;
      }
    }
    totals.bursts = enc.bursts();
    totals.zeros = enc.zeros();
    totals.transitions = enc.transitions();
    return totals;
  };

  if (spec_.geometry.is_wide()) {
    engine::StreamEncoder enc(engine_, spec_.geometry.wide_bus(), so);
    return encode_all(enc);
  }
  engine::StreamEncoder enc(engine_, spec_.geometry.bus(), so);
  return encode_all(enc);
}

StreamStats Session::run_decode(Source& source, Sink& sink) {
  if (sink.wants_results())
    throw std::invalid_argument(
        "Session::run: kDecode sessions recover payload, not encode "
        "results; use a payload / stats / trace sink");
  const bool pass_payload = sink.wants_payload();
  const int groups = spec_.geometry.groups();
  const auto bb = static_cast<std::size_t>(spec_.geometry.bytes_per_burst());

  StreamStats totals;
  std::vector<std::uint8_t> decoded;
  std::int64_t first_burst = 0;
  auto next_chunk = [&] {
    obs::ScopedSpan span(obs_, obs::Stage::kSourceRead);
    return source.next();
  };
  while (const auto c = next_chunk()) {
    if (c->bursts == 0) continue;
    if (c->masks.size() !=
        static_cast<std::size_t>(c->bursts) * static_cast<std::size_t>(groups))
      throw std::invalid_argument(
          "Session::run: a kDecode session needs an encoded source "
          "(a mask-carrying trace or make_encoded_packed_source); this "
          "chunk has " + std::to_string(c->masks.size()) + " masks for " +
          std::to_string(c->bursts) + " bursts of " +
          std::to_string(groups) + " groups");
    decoded.resize(static_cast<std::size_t>(c->bursts) * bb);
    {
      obs::ScopedSpan span(obs_, obs::Stage::kDecodeChunk, first_burst,
                           static_cast<std::int32_t>(std::min<std::int64_t>(
                               c->bursts, INT32_MAX)));
      if (obs_) obs_->chunks.inc();
      if (spec_.geometry.is_wide())
        decoder_.decode_packed_wide(c->bytes, c->masks,
                                    spec_.geometry.wide_bus(), decoded,
                                    pool());
      else
        decoder_.decode_packed(c->bytes, c->masks, spec_.geometry.bus(),
                               decoded, pool());
    }
    SinkChunk chunk;
    chunk.first_burst = first_burst;
    chunk.bursts = c->bursts;
    chunk.groups = groups;
    if (pass_payload) chunk.payload = decoded;
    sink.consume(chunk);
    totals.bursts += c->bursts;
    first_burst += c->bursts;
  }
  return totals;
}

StreamStats Session::run_roundtrip(Source& source, Sink& sink) {
  engine::StreamEncodeOptions so;
  so.lanes = spec_.lanes;
  so.reset_state_per_burst =
      spec_.state_policy == StatePolicy::kResetPerBurst;
  so.pool = pool();
  so.obs = obs_;

  const bool pass_payload = sink.wants_payload();
  const bool pass_results = sink.wants_results();
  const int groups = spec_.geometry.groups();
  const int lanes = spec_.lanes;
  const int bl = spec_.geometry.burst_length();
  const auto bpb = static_cast<std::size_t>(spec_.geometry.bytes_per_beat());
  const auto bb = static_cast<std::size_t>(spec_.geometry.bytes_per_burst());
  const bool wide = spec_.geometry.is_wide();
  const dbi::BusConfig narrow_cfg =
      wide ? dbi::BusConfig{} : spec_.geometry.bus();
  const dbi::WideBusConfig wide_cfg =
      wide ? spec_.geometry.wide_bus() : dbi::WideBusConfig{};

  auto enc = wide ? std::make_unique<engine::StreamEncoder>(engine_, wide_cfg,
                                                            so)
                  : std::make_unique<engine::StreamEncoder>(engine_,
                                                            narrow_cfg, so);

  // Compares one round-tripped burst's group against the original and
  // returns the beat mask of the differing beats (narrow groups span
  // bytes_per_beat() bytes per beat; wide group g is the strided byte).
  const auto diff_mask = [&](const std::uint8_t* original,
                             const std::uint8_t* roundtripped, int group) {
    std::uint64_t mask = 0;
    for (int t = 0; t < bl; ++t) {
      bool differs;
      if (wide) {
        const std::size_t at = static_cast<std::size_t>(t) *
                                   static_cast<std::size_t>(groups) +
                               static_cast<std::size_t>(group);
        differs = original[at] != roundtripped[at];
      } else {
        const std::size_t at = static_cast<std::size_t>(t) * bpb;
        differs =
            std::memcmp(original + at, roundtripped + at, bpb) != 0;
      }
      if (differs) mask |= std::uint64_t{1} << t;
    }
    return mask;
  };

  const std::int64_t slice_bursts =
      spec_.lanes > 1 ? static_cast<std::int64_t>(kAccumBlockBursts)
                      : std::numeric_limits<std::int64_t>::max();

  std::vector<std::uint8_t> wire;
  std::vector<std::uint64_t> masks;
  std::int64_t first_burst = 0;   // sink- and verify-facing, continuous
  std::int64_t stream_burst = 0;  // lane phase within the current stream
  while (const auto c = source.next()) {
    if (c->bursts > 0 && !c->masks.empty())
      throw std::invalid_argument(
          "Session::run: kRoundTrip takes payload sources; verify an "
          "already-encoded trace with verify_encoded_trace / dbitool "
          "verify");
    if (c->first_of_stream && first_burst > 0) {
      enc->reset_states();
      stream_burst = 0;
    }
    for (std::int64_t b0 = 0; b0 < c->bursts; b0 += slice_bursts) {
      const std::int64_t n = std::min(slice_bursts, c->bursts - b0);
      const auto bytes = c->bytes.subspan(static_cast<std::size_t>(b0) * bb,
                                          static_cast<std::size_t>(n) * bb);
      const auto results = enc->encode_chunk(
          stream_burst, bytes, static_cast<std::size_t>(n), true);
      masks.resize(results.size());
      for (std::size_t i = 0; i < results.size(); ++i)
        masks[i] = results[i].invert_mask;

      // Materialise the wire stream, optionally corrupt it, then run
      // the receiver over it — all on the same buffer.
      wire.assign(bytes.begin(), bytes.end());
      if (wide)
        decoder_.apply_packed_wide(wire, masks, wide_cfg, wire, pool());
      else
        decoder_.apply_packed(wire, masks, narrow_cfg, wire, pool());
      if (spec_.fault_injector) spec_.fault_injector(first_burst, wire, masks);
      if (wide)
        decoder_.decode_packed_wide(wire, masks, wide_cfg, wire, pool());
      else
        decoder_.decode_packed(wire, masks, narrow_cfg, wire, pool());

      verify_.bursts += n;
      if (std::memcmp(wire.data(), bytes.data(), wire.size()) != 0) {
        for (std::int64_t j = 0; j < n; ++j) {
          const std::uint8_t* orig =
              bytes.data() + static_cast<std::size_t>(j) * bb;
          const std::uint8_t* got =
              wire.data() + static_cast<std::size_t>(j) * bb;
          if (std::memcmp(orig, got, bb) == 0) continue;
          const std::int64_t burst = first_burst + j;
          for (int g = 0; g < groups; ++g) {
            const std::uint64_t mask = diff_mask(orig, got, g);
            if (mask != 0)
              verify_.record(burst, static_cast<int>(burst % lanes), g, mask);
          }
        }
      }

      SinkChunk chunk;
      chunk.first_burst = first_burst;
      chunk.bursts = n;
      chunk.groups = groups;
      if (pass_payload) chunk.payload = wire;
      if (pass_results) chunk.results = results;
      sink.consume(chunk);
      first_burst += n;
      stream_burst += n;
    }
  }

  StreamStats totals;
  totals.bursts = enc->bursts();
  totals.zeros = enc->zeros();
  totals.transitions = enc->transitions();
  return totals;
}

StreamStats Session::run_adaptive(Source& source, Sink& sink) {
  const SchemePolicy policy = spec_.resolved_policy();
  selection_ = select::SelectionReport{};

  select::ChunkSelector::Config scfg;
  scfg.policy = policy;
  scfg.geometry = spec_.geometry;
  scfg.weights = spec_.weights;
  scfg.lanes = spec_.lanes;
  scfg.reset_state_per_burst =
      spec_.state_policy == StatePolicy::kResetPerBurst;
  scfg.pool = pool();
  scfg.obs = obs_;
  scfg.kernel = &engine_.kernel();
  select::ChunkSelector selector(scfg);

  const bool pass_payload = sink.wants_payload();
  const int groups = spec_.geometry.groups();
  const auto bb = static_cast<std::size_t>(spec_.geometry.bytes_per_burst());
  const auto block_bursts = static_cast<std::int64_t>(policy.block_bursts());

  std::vector<std::uint8_t> buf;
  buf.reserve(static_cast<std::size_t>(block_bursts) * bb);
  std::int64_t buffered = 0;
  std::int64_t first_burst = 0;

  auto flush_block = [&](std::span<const std::uint8_t> bytes,
                         std::int64_t n) {
    const select::ChunkSelector::BlockResult r = selector.encode_block(
        first_burst, bytes, static_cast<std::size_t>(n));
    obs::ScopedSpan span(obs_, obs::Stage::kSinkWrite, first_burst,
                         static_cast<std::int32_t>(std::min<std::int64_t>(
                             n, INT32_MAX)));
    SinkChunk chunk;
    chunk.first_burst = first_burst;
    chunk.bursts = n;
    chunk.groups = groups;
    if (pass_payload) chunk.payload = bytes;
    chunk.results = r.results;
    chunk.scheme = r.scheme;
    sink.consume(chunk);
    first_burst += n;
  };

  auto next_chunk = [&] {
    obs::ScopedSpan span(obs_, obs::Stage::kSourceRead);
    return source.next();
  };

  // Re-block the source's chunks to the policy's selection granularity:
  // full blocks landing on a buffer boundary encode straight from the
  // source's view, partial ones gather into `buf` first.
  while (const auto c = next_chunk()) {
    if (!c->masks.empty())
      throw std::invalid_argument(
          "Session::run: the source is already encoded (mask-carrying); "
          "run a kDecode session instead of re-encoding it");
    std::span<const std::uint8_t> rest = c->bytes;
    std::int64_t left = c->bursts;
    while (left > 0) {
      if (buffered == 0 && left >= block_bursts) {
        flush_block(
            rest.subspan(0, static_cast<std::size_t>(block_bursts) * bb),
            block_bursts);
        rest = rest.subspan(static_cast<std::size_t>(block_bursts) * bb);
        left -= block_bursts;
        continue;
      }
      const std::int64_t take = std::min(block_bursts - buffered, left);
      const auto take_bytes = static_cast<std::size_t>(take) * bb;
      buf.insert(buf.end(), rest.begin(),
                 rest.begin() + static_cast<std::ptrdiff_t>(take_bytes));
      rest = rest.subspan(take_bytes);
      buffered += take;
      left -= take;
      if (buffered == block_bursts) {
        flush_block(buf, buffered);
        buf.clear();
        buffered = 0;
      }
    }
  }
  if (buffered > 0) flush_block(buf, buffered);

  selection_ = selector.report();
  StreamStats totals;
  totals.bursts = selector.bursts();
  totals.zeros = selector.zeros();
  totals.transitions = selector.transitions();
  return totals;
}

StreamStats Session::run(Source& source, Sink& sink) {
  source.bind(spec_.geometry);
  sink.begin(spec_.geometry, spec_.lanes);
  verify_ = VerifyReport{};

  StreamStats totals;
  const trace::TraceReader* reader = source.trace_reader();
  if (spec_.direction == Direction::kDecode) {
    if (reader && !reader->encoded())
      throw std::invalid_argument(
          "Session::run: kDecode needs an encoded trace (this one has no "
          "mask stream)");
    totals = run_decode(source, sink);
    publish_stats(totals, /*whole_run=*/true);
    sink.finish(totals);
    return totals;
  }
  if (reader && reader->encoded())
    throw std::invalid_argument(
        "Session::run: the trace is already encoded; run a kDecode "
        "session or verify_encoded_trace instead of re-encoding the "
        "transmitted stream");
  if (spec_.direction == Direction::kRoundTrip) {
    totals = run_roundtrip(source, sink);
    publish_stats(totals, /*whole_run=*/true);
    sink.finish(totals);
    return totals;
  }
  if (spec_.resolved_policy().adaptive()) {
    totals = run_adaptive(source, sink);
    publish_stats(totals, /*whole_run=*/true);
    sink.finish(totals);
    return totals;
  }

  const std::span<const dbi::Burst> burst_span = source.bursts();
  if (reader && !sink.wants_payload()) {
    // mmap replay keeps the double-buffered producer and the zero-copy
    // chunk views; payload-wanting sinks fall through to the generic
    // loop, which still serves uncompressed chunks as views.
    totals = run_replay(*reader, sink);
  } else if (!burst_span.empty() && spec_.lanes == 1 &&
             !spec_.geometry.is_wide() && !sink.wants_results() &&
             !sink.wants_payload()) {
    // Single-lane narrow Burst spans skip the packing pass entirely.
    totals = run_bursts(burst_span);
  } else {
    totals = run_chunks(source, sink);
  }
  publish_stats(totals, /*whole_run=*/true);
  sink.finish(totals);
  return totals;
}

StreamStats Session::run(Source& source) {
  const std::unique_ptr<Sink> sink = make_stats_sink();
  return run(source, *sink);
}

SessionReport Session::report() const {
  SessionReport rep;
  rep.scheme = std::string(scheme_name());
  rep.policy = spec_.resolved_policy().describe();
  rep.kernel = kernel_report();
  rep.adaptive = spec_.resolved_policy().adaptive();
  rep.selection = selection_;
  rep.metrics = metrics_report();
  return rep;
}

std::string SessionReport::to_json() const {
  auto field = [](std::string_view v) { return std::string(v); };
  std::string out = "{\"scheme\":\"" + scheme + "\"";
  out += ",\"policy\":\"" + policy + "\"";
  out += ",\"kernel\":{\"variant\":\"" + field(kernel.variant) + "\"";
  out += ",\"isa\":\"" + field(kernel.isa) + "\"";
  out += ",\"fixed_encode\":\"" + field(kernel.fixed_encode) + "\"";
  out += ",\"planar_encode\":\"" + field(kernel.planar_encode) + "\"";
  out += ",\"trellis\":\"" + field(kernel.trellis) + "\"";
  out += ",\"decode\":\"" + field(kernel.decode) + "\"}";
  out += ",\"adaptive\":";
  out += adaptive ? "true" : "false";
  out += ",\"selection\":" + selection.to_json();
  out += ",\"metrics\":" + metrics.to_json();
  out += "}";
  return out;
}

}  // namespace dbi
