// dbi::serve::Client — the library side of the dbid protocol.
//
// One Client is one connection speaking for one tenant: connect()
// dials the socket, sends the hello and checks the ack. The
// synchronous calls (encode / decode / verify / stats) send one
// request and block for its response; the pipelined surface
// (submit_encode / next_response) keeps several requests in flight on
// the one connection, which is how flooding clients and the serve
// bench drive the daemon at line rate.
//
// Backpressure is a first-class outcome, not an exception: a kBusy
// rejection surfaces as Outcome::kBusy so callers can count, back off
// and retry. Protocol violations and typed server errors throw.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/geometry.hpp"
#include "core/encoder.hpp"
#include "serve/protocol.hpp"

namespace dbi::serve {

/// Typed server-side failure (an kError frame), carrying the status.
class ServerError : public std::runtime_error {
 public:
  ServerError(StatusCode status, const std::string& message)
      : std::runtime_error(message), status_(status) {}
  [[nodiscard]] StatusCode status() const { return status_; }

 private:
  StatusCode status_;
};

class Client {
 public:
  struct Options {
    std::string socket_path;
    std::string tenant;
    Scheme scheme = Scheme::kAc;
    Geometry geometry{};
    int lanes = 1;
    bool reset_state_per_burst = false;
    std::string kernel;  ///< "" / "auto" or a registry name
  };

  enum class Outcome : std::uint8_t { kOk, kBusy };

  struct EncodeResult {
    Outcome outcome = Outcome::kOk;
    std::uint32_t seq = 0;
    EncodeAck ack;  ///< meaningful when outcome == kOk
  };

  struct VerifyResult {
    Outcome outcome = Outcome::kOk;
    VerifyAck ack;
  };

  struct DecodeResult {
    Outcome outcome = Outcome::kOk;
    std::vector<std::uint8_t> payload;
  };

  /// Dials `socket_path`, performs the hello handshake. Throws
  /// std::system_error on connect failure, ServerError on a rejected
  /// hello.
  static Client connect(const Options& options);

  /// Control-plane connection: dials without a hello. Only stats() and
  /// shutdown_server() are valid on it (the server rejects data
  /// requests before a hello), so admin calls never create a tenant.
  static Client connect_control(const std::string& socket_path);

  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Server build string from the hello ack (dbi::build_version()).
  [[nodiscard]] const std::string& server_build() const { return build_; }
  /// This tenant's admission bound, from the hello ack.
  [[nodiscard]] std::uint32_t max_queue_requests() const {
    return max_queue_requests_;
  }

  // --- synchronous calls ---------------------------------------------

  /// Encodes `burst_count` packed bursts; `want_tx` asks the server to
  /// return the transmitted stream alongside the masks.
  EncodeResult encode(std::span<const std::uint8_t> payload,
                      std::uint32_t burst_count, bool want_tx = false);

  DecodeResult decode(std::span<const std::uint8_t> tx,
                      std::span<const std::uint64_t> masks,
                      std::uint32_t burst_count);

  VerifyResult verify(std::span<const std::uint8_t> payload,
                      std::uint32_t burst_count);

  /// The server's metrics snapshot as Prometheus text exposition.
  std::string stats();

  /// Asks the daemon to drain and exit (kShutdown; acked immediately).
  void shutdown_server();

  // --- pipelined surface ---------------------------------------------

  /// Sends one encode request without waiting; returns its seq.
  std::uint32_t submit_encode(std::span<const std::uint8_t> payload,
                              std::uint32_t burst_count);

  /// One pipelined response, in server order.
  struct Response {
    Outcome outcome = Outcome::kOk;
    std::uint32_t seq = 0;
    EncodeAck ack;  ///< meaningful when outcome == kOk
  };
  Response next_response();

 private:
  explicit Client(int fd) : fd_(fd) {}

  Frame roundtrip(Frame request);
  [[nodiscard]] std::uint32_t next_seq() { return seq_++; }

  int fd_ = -1;
  std::uint32_t seq_ = 1;
  std::string build_;
  std::uint32_t max_queue_requests_ = 0;
};

}  // namespace dbi::serve
