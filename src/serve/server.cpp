#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "api/version.hpp"
#include "engine/kernel_registry.hpp"

namespace dbi::serve {

namespace {

std::string label(std::string_view key, std::string_view value) {
  std::string out(key);
  out += "=\"";
  out += value;
  out += "\"";
  return out;
}

/// Tenant names become Prometheus label values verbatim, so the
/// accepted alphabet is locked down at hello time.
bool valid_tenant_name(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

void ServerOptions::validate() const {
  if (socket_path.empty())
    throw std::invalid_argument("serve: socket_path must be set");
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path))
    throw std::invalid_argument("serve: socket_path over the AF_UNIX limit (" +
                                std::to_string(sizeof(addr.sun_path) - 1) +
                                " bytes)");
  if (max_batch_bursts == 0)
    throw std::invalid_argument("serve: max_batch_bursts must be positive");
  if (quantum_bursts <= 0)
    throw std::invalid_argument("serve: quantum_bursts must be positive");
  if (send_timeout.count() < 0)
    throw std::invalid_argument("serve: send_timeout must be >= 0");
}

/// One accepted socket. Reader and scheduler threads both write
/// responses, serialized by write_mu; the fd closes with the last
/// shared_ptr owner.
struct Server::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Sends one frame. The socket carries SO_SNDTIMEO: a write that
  /// cannot progress within the timeout (the peer stopped reading while
  /// flooding requests) marks the connection dead and shuts it down, so
  /// later responses fail fast instead of each paying the timeout — a
  /// slow consumer costs the scheduler one bounded wait, never a hang.
  void send(const Frame& frame) {
    std::lock_guard<std::mutex> lk(write_mu);
    if (dead.load(std::memory_order_relaxed))
      throw std::system_error(EPIPE, std::generic_category(),
                              "serve: connection dropped (slow consumer)");
    try {
      write_frame(fd, frame);
    } catch (const std::system_error& e) {
      const int err = e.code().value();
      if (err == EAGAIN || err == EWOULDBLOCK || err == ETIMEDOUT) {
        dead.store(true, std::memory_order_relaxed);
        ::shutdown(fd, SHUT_RDWR);  // also unblocks the reader thread
      }
      throw;
    }
  }

  int fd;
  std::mutex write_mu;
  std::atomic<bool> dead{false};
};

/// One admitted request. It owns the raw wire frame payload (moved in
/// from the reader, never copied) and views its data section through a
/// span — the span survives Request moves because a moved vector keeps
/// its heap buffer.
struct Server::Request {
  FrameType type = FrameType::kEncode;
  std::uint32_t seq = 0;
  std::uint32_t flags = 0;
  std::uint32_t burst_count = 0;
  std::vector<std::uint8_t> raw;        ///< the wire frame payload, moved in
  std::span<const std::uint8_t> data;   ///< payload (encode/verify) or tx
                                        ///< (decode), aliasing `raw`
  std::vector<std::uint64_t> masks;     ///< decode only
  std::shared_ptr<Connection> conn;
  std::chrono::steady_clock::time_point enqueued;
};

/// Per-tenant session state + admission queue. Engine members are only
/// touched by the scheduler thread; the queue / deficit fields are
/// guarded by Server::mu_.
struct Server::Tenant {
  std::string name;
  Geometry geometry;
  Scheme scheme = Scheme::kAc;
  int lanes = 1;
  bool reset_per_burst = false;
  const engine::KernelVariant* kernel = nullptr;
  int groups = 1;
  std::size_t bytes_per_burst = 0;

  std::unique_ptr<engine::BatchEncoder> encoder;
  std::unique_ptr<engine::StreamEncoder> stream;
  engine::BatchDecoder decoder;
  std::int64_t next_burst = 0;  ///< stream-global index, fixes the interleave

  std::deque<Request> queue;
  std::int64_t deficit = 0;
  bool in_active = false;

  // Scheduler-thread scratch, reused across batches.
  std::vector<std::uint8_t> scratch, tx_scratch, rx_scratch;
  std::vector<std::uint64_t> mask_scratch;

  obs::Counter req_encode, req_decode, req_verify, busy, errors;
  obs::Counter bursts_total, bytes_total;
  obs::Histogram latency, queue_depth;
};

Server::Server(ServerOptions options) : options_(std::move(options)) {
  options_.validate();
  obs_ = std::make_unique<obs::Observer>(obs::ObsConfig{
      .level = obs::ObsLevel::kCounters, .max_cells = options_.max_cells});
  if (options_.workers >= 2) {
    pool_ = std::make_unique<engine::ShardPool>(options_.workers);
    obs_->attach_pool(*pool_);
  }
  obs::Registry& r = obs_->registry();
  connections_ = r.counter("dbi_serve_connections_total");
  batches_ = r.counter("dbi_serve_batches_total");
  batch_bursts_ = r.histogram("dbi_serve_batch_bursts");
  tenants_gauge_ = r.gauge("dbi_serve_tenants");
}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) return;
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::system_error(errno, std::generic_category(), "serve: socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::system_error(err, std::generic_category(),
                            "serve: bind " + options_.socket_path);
  }
  if (::listen(listen_fd_, 64) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::system_error(err, std::generic_category(), "serve: listen");
  }
  started_ = true;
  scheduler_thread_ = std::thread([this] { scheduler_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::request_stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_requested_) return;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

bool Server::wait_stop_requested(std::chrono::milliseconds d) {
  std::unique_lock<std::mutex> lk(mu_);
  return stop_cv_.wait_for(lk, d, [this] { return stop_requested_; });
}

void Server::stop() {
  if (!started_ || stopped_) return;
  request_stop();

  // 1. Stop accepting: wake the blocked accept() and join it.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // 2. Drain: admissions are closed (readers now reject with
  // kShuttingDown), so the scheduler finishes every queued request —
  // responses included — and exits.
  {
    std::lock_guard<std::mutex> lk(mu_);
    drain_ = true;
  }
  sched_cv_.notify_all();
  if (scheduler_thread_.joinable()) scheduler_thread_.join();

  // 3. Unblock and join the readers — the live ones and any that
  // already exited and parked their handles for reaping.
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    conns.swap(conns_);
    readers.reserve(reader_threads_.size() + finished_readers_.size());
    for (auto& [conn, thread] : reader_threads_)
      readers.push_back(std::move(thread));
    reader_threads_.clear();
    for (auto& thread : finished_readers_) readers.push_back(std::move(thread));
    finished_readers_.clear();
  }
  for (const auto& c : conns) ::shutdown(c->fd, SHUT_RDWR);
  for (auto& t : readers)
    if (t.joinable()) t.join();

  ::unlink(options_.socket_path.c_str());
  stopped_ = true;
}

void Server::accept_loop() {
  for (;;) {
    reap_readers();
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;
      if (err == EINTR || err == ECONNABORTED) continue;
      if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
          err == ENOMEM) {
        // Transient resource exhaustion: exiting here would leave a
        // daemon that looks healthy but never accepts again. Back off
        // and retry until stop is requested.
        if (wait_stop_requested(std::chrono::milliseconds(50))) return;
        continue;
      }
      return;  // listen socket shut down (stop()) or fatally broken
    }
    if (options_.send_timeout.count() > 0) {
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(options_.send_timeout.count() / 1000);
      tv.tv_usec =
          static_cast<suseconds_t>(options_.send_timeout.count() % 1000) *
          1000;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stop_requested_) {
        ::close(fd);
        return;
      }
      auto conn = std::make_shared<Connection>(fd);
      conns_.push_back(conn);
      Connection* key = conn.get();
      reader_threads_.emplace(
          key, std::thread([this, conn]() mutable {
            reader_loop(std::move(conn));
          }));
    }
    connections_.inc();
  }
}

void Server::reap_readers() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lk(mu_);
    done.swap(finished_readers_);
  }
  // These threads have already left reader_loop's frame-processing loop
  // (they parked their handles as their last locked action), so each
  // join returns almost immediately.
  for (auto& t : done)
    if (t.joinable()) t.join();
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  Tenant* tenant = nullptr;
  Frame frame;
  for (;;) {
    try {
      if (!read_frame(conn->fd, frame)) break;  // clean EOF
    } catch (const std::exception&) {
      break;  // malformed stream / reset: drop the connection
    }
    try {
      handle_frame(conn, tenant, frame);
    } catch (const std::exception& e) {
      // Reply with a typed error; if even that fails, drop the
      // connection.
      try {
        conn->send(make_error(frame.seq, StatusCode::kBadFrame, e.what()));
      } catch (const std::exception&) {
        break;
      }
    }
  }
  // Self-reap: forget the connection (the fd closes once any queued
  // requests release their references) and park this thread's handle
  // for the accept loop / stop() to join. Without this a long-running
  // daemon leaks one fd and one thread handle per disconnect.
  std::lock_guard<std::mutex> lk(mu_);
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [&](const std::shared_ptr<Connection>& c) {
                                return c.get() == conn.get();
                              }),
               conns_.end());
  auto it = reader_threads_.find(conn.get());
  if (it != reader_threads_.end()) {
    finished_readers_.push_back(std::move(it->second));
    reader_threads_.erase(it);
  }
}

void Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          Tenant*& tenant, Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello: {
      Tenant* t = hello(conn, frame);
      if (t != nullptr) tenant = t;
      return;
    }
    case FrameType::kStats: {
      const std::string text = metrics().to_prometheus();
      conn->send(make_frame(
          FrameType::kStatsAck, frame.seq,
          std::vector<std::uint8_t>(text.begin(), text.end())));
      return;
    }
    case FrameType::kShutdown: {
      conn->send(make_frame(FrameType::kShutdownAck, frame.seq));
      request_stop();
      return;
    }
    case FrameType::kEncode:
    case FrameType::kDecode:
    case FrameType::kVerify: {
      if (tenant == nullptr) {
        conn->send(make_error(frame.seq, StatusCode::kBadState,
                              "request before hello"));
        return;
      }
      admit(conn, *tenant, frame);
      return;
    }
    default:
      conn->send(make_error(frame.seq, StatusCode::kBadFrame,
                            "unexpected frame type"));
  }
}

std::unique_ptr<Server::Tenant> Server::make_tenant(
    const HelloRequest& h, const engine::KernelVariant* kernel) {
  auto t = std::make_unique<Tenant>();
  t->name = h.tenant;
  t->geometry = h.geometry;
  t->scheme = h.scheme;
  t->lanes = h.lanes;
  t->reset_per_burst = h.reset_state_per_burst;
  t->kernel = kernel;
  t->groups = h.geometry.groups();
  t->bytes_per_burst =
      static_cast<std::size_t>(h.geometry.bytes_per_burst());
  t->encoder = std::make_unique<engine::BatchEncoder>(h.scheme);
  t->encoder->set_kernel(*kernel);
  t->encoder->set_observer(obs_.get());
  t->decoder.set_kernel(*kernel);
  t->decoder.set_observer(obs_.get());
  engine::StreamEncodeOptions sopt;
  sopt.lanes = h.lanes;
  sopt.reset_state_per_burst = h.reset_state_per_burst;
  sopt.pool = pool_.get();
  sopt.obs = obs_.get();
  if (h.geometry.is_wide())
    t->stream = std::make_unique<engine::StreamEncoder>(
        *t->encoder, h.geometry.wide_bus(), sopt);
  else
    t->stream = std::make_unique<engine::StreamEncoder>(
        *t->encoder, h.geometry.bus(), sopt);

  obs::Registry& r = obs_->registry();
  const std::string tl = label("tenant", t->name);
  t->req_encode =
      r.counter("dbi_serve_requests_total", tl + "," + label("op", "encode"));
  t->req_decode =
      r.counter("dbi_serve_requests_total", tl + "," + label("op", "decode"));
  t->req_verify =
      r.counter("dbi_serve_requests_total", tl + "," + label("op", "verify"));
  t->busy = r.counter("dbi_serve_busy_total", tl);
  t->errors = r.counter("dbi_serve_errors_total", tl);
  t->bursts_total = r.counter("dbi_serve_bursts_total", tl);
  t->bytes_total = r.counter("dbi_serve_bytes_total", tl);
  t->latency = r.histogram("dbi_serve_request_latency_ns", tl);
  t->queue_depth = r.histogram("dbi_serve_queue_depth", tl);
  return t;
}

Server::Tenant* Server::hello(const std::shared_ptr<Connection>& conn,
                              const Frame& frame) {
  HelloRequest h;
  try {
    h = HelloRequest::parse(frame.payload);
    h.geometry.validate();
    if (!valid_tenant_name(h.tenant))
      throw std::invalid_argument(
          "tenant names are 1-64 chars of [A-Za-z0-9._-]");
    if (h.lanes < 1)
      throw std::invalid_argument("lanes must be >= 1");
  } catch (const std::exception& e) {
    conn->send(make_error(frame.seq, StatusCode::kBadFrame, e.what()));
    return nullptr;
  }

  const engine::KernelVariant* kernel = nullptr;
  try {
    kernel = &engine::resolve_kernel(h.kernel);
  } catch (const std::exception& e) {
    conn->send(make_error(frame.seq, StatusCode::kBadFrame, e.what()));
    return nullptr;
  }

  // The reply frame is built under mu_ and sent after release — a
  // socket write can block on a slow peer and must never pin the lock
  // that admissions and the scheduler share.
  Frame reply;
  Tenant* result = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_requested_) {
      reply = make_error(frame.seq, StatusCode::kShuttingDown,
                         "server is draining");
    } else {
      auto it = tenants_.find(h.tenant);
      if (it == tenants_.end()) {
        try {
          auto t = make_tenant(h, kernel);
          it = tenants_.emplace(t->name, std::move(t)).first;
          tenants_gauge_.set(static_cast<double>(tenants_.size()));
          result = it->second.get();
        } catch (const std::exception& e) {
          reply = make_error(frame.seq, StatusCode::kInternal, e.what());
        }
      } else {
        // Reconnect: the spec must match the live session bit for bit.
        Tenant& t = *it->second;
        if (t.geometry != h.geometry || t.scheme != h.scheme ||
            t.lanes != h.lanes ||
            t.reset_per_burst != h.reset_state_per_burst ||
            t.kernel != kernel) {
          reply = make_error(
              frame.seq, StatusCode::kBadState,
              "tenant '" + h.tenant + "' exists with a different spec");
        } else {
          result = it->second.get();
        }
      }
    }
  }

  if (result != nullptr) {
    HelloAck ack;
    ack.build = std::string(build_version());
    ack.max_queue_requests =
        static_cast<std::uint32_t>(options_.max_queue_requests);
    reply = make_frame(FrameType::kHelloAck, frame.seq, ack.to_payload());
  }
  conn->send(reply);
  return result;
}

void Server::admit(const std::shared_ptr<Connection>& conn, Tenant& tenant,
                   Frame& frame) {
  Request rq;
  rq.type = frame.type;
  rq.seq = frame.seq;
  rq.conn = conn;
  try {
    if (frame.type == FrameType::kDecode) {
      DecodeRequest d = DecodeRequest::parse(frame.payload, rq.masks);
      rq.burst_count = d.burst_count;
      if (d.tx.size() != d.burst_count * tenant.bytes_per_burst)
        throw ProtocolError("decode tx size does not match burst_count");
      if (d.masks.size() !=
          static_cast<std::size_t>(d.burst_count) * tenant.groups)
        throw ProtocolError("decode mask count does not match burst_count");
      // Take the frame buffer instead of copying it: the parsed tx
      // span aliases heap storage that the move transfers intact.
      rq.raw = std::move(frame.payload);
      rq.data = d.tx;
    } else {
      EncodeRequest e = EncodeRequest::parse(frame.payload);
      rq.flags = e.flags;
      rq.burst_count = e.burst_count;
      if (e.payload.size() != e.burst_count * tenant.bytes_per_burst)
        throw ProtocolError("payload size does not match burst_count");
      if (e.burst_count == 0)
        throw ProtocolError("empty request (burst_count 0)");
      if (frame.type == FrameType::kEncode) {
        // An ack echoing masks (+ tx with kWantTx) can exceed the frame
        // cap even though the request fits — reject here with a typed
        // error instead of discovering an unsendable response later.
        const std::uint64_t ack_size =
            28ull +
            static_cast<std::uint64_t>(e.burst_count) *
                static_cast<std::uint64_t>(tenant.groups) * 8ull +
            (((e.flags & EncodeRequest::kWantTx) != 0) ? e.payload.size()
                                                       : 0ull);
        if (ack_size > kMaxPayload)
          throw ProtocolError(
              "response would exceed the 64 MiB frame cap; split the "
              "request");
      }
      rq.raw = std::move(frame.payload);
      rq.data = e.payload;
    }
  } catch (const std::exception& e) {
    tenant.errors.inc();
    conn->send(make_error(frame.seq, StatusCode::kBadFrame, e.what()));
    return;
  }

  // Decide under mu_, send after release: rejection frames must not
  // block the lock on a peer that is not reading.
  rq.enqueued = std::chrono::steady_clock::now();
  Frame reject;
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_requested_) {
      reject = make_error(frame.seq, StatusCode::kShuttingDown,
                          "server is draining");
      rejected = true;
    } else if (tenant.queue.size() >= options_.max_queue_requests) {
      // Backpressure: bounded queue, typed rejection, engine untouched.
      tenant.busy.inc();
      BusyInfo info{static_cast<std::uint32_t>(tenant.queue.size()),
                    static_cast<std::uint32_t>(options_.max_queue_requests)};
      reject = make_frame(FrameType::kBusy, frame.seq, info.to_payload(),
                          StatusCode::kBusy);
      rejected = true;
    } else {
      switch (frame.type) {
        case FrameType::kEncode: tenant.req_encode.inc(); break;
        case FrameType::kDecode: tenant.req_decode.inc(); break;
        default: tenant.req_verify.inc(); break;
      }
      tenant.queue.push_back(std::move(rq));
      tenant.queue_depth.observe(tenant.queue.size());
      if (!tenant.in_active) {
        tenant.in_active = true;
        active_.push_back(&tenant);
      }
    }
  }
  if (rejected) {
    conn->send(reject);
    return;
  }
  sched_cv_.notify_one();
}

void Server::scheduler_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    sched_cv_.wait(lk, [this] { return drain_ || !active_.empty(); });
    if (active_.empty()) {
      if (drain_) return;
      continue;
    }

    // Deficit round-robin: the tenant at the head of the active list
    // earns one quantum and dispatches queued requests while they fit
    // its deficit and the coalescing cap.
    Tenant* t = active_.front();
    active_.pop_front();
    t->in_active = false;
    t->deficit += options_.quantum_bursts;

    std::vector<Request> batch;
    std::size_t batch_bursts = 0;
    while (!t->queue.empty()) {
      Request& front = t->queue.front();
      const auto cost = std::max<std::int64_t>(1, front.burst_count);
      if (!batch.empty() &&
          batch_bursts + static_cast<std::size_t>(cost) >
              options_.max_batch_bursts)
        break;
      if (cost > t->deficit) break;
      t->deficit -= cost;
      batch_bursts += static_cast<std::size_t>(cost);
      batch.push_back(std::move(front));
      t->queue.pop_front();
    }
    if (!t->queue.empty()) {
      // Work left (deficit or cap ran out): back of the round-robin
      // ring, keeping the accumulated deficit.
      t->in_active = true;
      active_.push_back(t);
    } else {
      t->deficit = 0;  // classic DRR: no banking across idle periods
    }

    if (!batch.empty()) {
      lk.unlock();
      batches_.inc();
      batch_bursts_.observe(batch_bursts);
      process_batch(*t, batch);
      lk.lock();
    }
  }
}

void Server::process_batch(Tenant& tenant, std::vector<Request>& batch) {
  if (options_.batch_delay.count() > 0)
    std::this_thread::sleep_for(options_.batch_delay);
  std::size_t i = 0;
  while (i < batch.size()) {
    if (batch[i].type == FrameType::kEncode) {
      // Coalesce the run of consecutive encodes into one engine chunk.
      std::size_t j = i;
      std::size_t total = 0;
      while (j < batch.size() && batch[j].type == FrameType::kEncode) {
        total += batch[j].burst_count;
        ++j;
      }
      process_encode_run(tenant,
                         std::span<Request>(batch).subspan(i, j - i), total);
      i = j;
    } else if (batch[i].type == FrameType::kDecode) {
      process_decode(tenant, batch[i]);
      ++i;
    } else {
      process_verify(tenant, batch[i]);
      ++i;
    }
  }
}

void Server::process_encode_run(Tenant& tenant, std::span<Request> run,
                                std::size_t total_bursts) {
  std::span<const std::uint8_t> payload;
  if (run.size() == 1) {
    payload = run[0].data;
  } else {
    tenant.scratch.clear();
    for (const Request& rq : run)
      tenant.scratch.insert(tenant.scratch.end(), rq.data.begin(),
                            rq.data.end());
    payload = tenant.scratch;
  }

  std::span<const engine::BurstResult> results;
  try {
    results = tenant.stream->encode_chunk(tenant.next_burst, payload,
                                          total_bursts,
                                          /*collect_results=*/true);
  } catch (const std::exception& e) {
    fail_batch(tenant, run, StatusCode::kInternal, e.what());
    return;
  }

  const int groups = tenant.groups;
  std::size_t off = 0;  // this request's first burst within the chunk
  for (Request& rq : run) {
    EncodeAck ack;
    ack.burst_count = rq.burst_count;
    ack.masks.resize(static_cast<std::size_t>(rq.burst_count) * groups);
    for (std::uint32_t b = 0; b < rq.burst_count; ++b) {
      for (int g = 0; g < groups; ++g) {
        const engine::BurstResult& res = results[(off + b) * groups + g];
        ack.masks[static_cast<std::size_t>(b) * groups + g] = res.invert_mask;
        ack.zeros += static_cast<std::uint64_t>(res.stats.zeros);
        ack.transitions += static_cast<std::uint64_t>(res.stats.transitions);
      }
    }
    if ((rq.flags & EncodeRequest::kWantTx) != 0) {
      ack.tx.resize(rq.data.size());
      try {
        if (tenant.geometry.is_wide())
          tenant.decoder.apply_packed_wide(rq.data, ack.masks,
                                           tenant.geometry.wide_bus(), ack.tx,
                                           pool_.get());
        else
          tenant.decoder.apply_packed(rq.data, ack.masks,
                                      tenant.geometry.bus(), ack.tx,
                                      pool_.get());
      } catch (const std::exception& e) {
        respond(tenant, rq, make_error(rq.seq, StatusCode::kInternal,
                                       e.what()));
        off += rq.burst_count;
        continue;
      }
    }
    tenant.bursts_total.add(rq.burst_count);
    tenant.bytes_total.add(rq.data.size());
    respond(tenant, rq,
            make_frame(FrameType::kEncodeAck, rq.seq, ack.to_payload()));
    off += rq.burst_count;
  }
  tenant.next_burst += static_cast<std::int64_t>(total_bursts);
}

void Server::process_decode(Tenant& tenant, Request& rq) {
  tenant.rx_scratch.resize(rq.data.size());
  try {
    if (tenant.geometry.is_wide())
      tenant.decoder.decode_packed_wide(rq.data, rq.masks,
                                        tenant.geometry.wide_bus(),
                                        tenant.rx_scratch, pool_.get());
    else
      tenant.decoder.decode_packed(rq.data, rq.masks, tenant.geometry.bus(),
                                   tenant.rx_scratch, pool_.get());
  } catch (const std::exception& e) {
    respond(tenant, rq, make_error(rq.seq, StatusCode::kInternal, e.what()));
    return;
  }
  tenant.bursts_total.add(rq.burst_count);
  tenant.bytes_total.add(rq.data.size());
  respond(tenant, rq,
          make_frame(FrameType::kDecodeAck, rq.seq,
                     std::vector<std::uint8_t>(tenant.rx_scratch.begin(),
                                               tenant.rx_scratch.end())));
}

void Server::process_verify(Tenant& tenant, Request& rq) {
  // Encode (advancing the tenant's line state exactly like kEncode),
  // materialise the wire, run the fault hook, decode, compare.
  VerifyAck ack;
  ack.burst_count = rq.burst_count;
  try {
    const std::span<const engine::BurstResult> results =
        tenant.stream->encode_chunk(tenant.next_burst, rq.data,
                                    rq.burst_count, /*collect_results=*/true);
    tenant.mask_scratch.resize(results.size());
    for (std::size_t k = 0; k < results.size(); ++k) {
      tenant.mask_scratch[k] = results[k].invert_mask;
      ack.zeros += static_cast<std::uint64_t>(results[k].stats.zeros);
      ack.transitions +=
          static_cast<std::uint64_t>(results[k].stats.transitions);
    }
    tenant.tx_scratch.resize(rq.data.size());
    tenant.rx_scratch.resize(rq.data.size());
    if (tenant.geometry.is_wide()) {
      tenant.decoder.apply_packed_wide(rq.data, tenant.mask_scratch,
                                       tenant.geometry.wide_bus(),
                                       tenant.tx_scratch, pool_.get());
    } else {
      tenant.decoder.apply_packed(rq.data, tenant.mask_scratch,
                                  tenant.geometry.bus(), tenant.tx_scratch,
                                  pool_.get());
    }
    if (options_.fault_injector)
      options_.fault_injector(tenant.name, tenant.next_burst,
                              tenant.tx_scratch, tenant.mask_scratch);
    if (tenant.geometry.is_wide()) {
      tenant.decoder.decode_packed_wide(tenant.tx_scratch, tenant.mask_scratch,
                                        tenant.geometry.wide_bus(),
                                        tenant.rx_scratch, pool_.get());
    } else {
      tenant.decoder.decode_packed(tenant.tx_scratch, tenant.mask_scratch,
                                   tenant.geometry.bus(), tenant.rx_scratch,
                                   pool_.get());
    }
  } catch (const std::exception& e) {
    respond(tenant, rq, make_error(rq.seq, StatusCode::kInternal, e.what()));
    return;
  }
  tenant.next_burst += rq.burst_count;

  for (std::size_t k = 0; k < rq.data.size(); ++k)
    if (tenant.rx_scratch[k] != rq.data[k]) ++ack.mismatched_bytes;
  ack.ok = ack.mismatched_bytes == 0;
  tenant.bursts_total.add(rq.burst_count);
  tenant.bytes_total.add(rq.data.size());
  respond(tenant, rq,
          make_frame(FrameType::kVerifyAck, rq.seq, ack.to_payload()));
}

void Server::respond(Tenant& tenant, Request& rq, Frame&& frame) {
  tenant.latency.observe(elapsed_ns(rq.enqueued));
  if (frame.type == FrameType::kError) tenant.errors.inc();
  try {
    rq.conn->send(frame);
  } catch (const ProtocolError& e) {
    // An over-cap response slipped past the admission-time size check.
    // The client is still connected and waiting, so answer with a typed
    // error (small, always sendable) instead of silence.
    tenant.errors.inc();
    try {
      rq.conn->send(make_error(rq.seq, StatusCode::kInternal, e.what()));
    } catch (const std::exception&) {
    }
  } catch (const std::exception&) {
    // Client went away before its response; the work is still done and
    // counted. Nothing to clean up — the connection closes with the
    // last shared_ptr.
  }
}

void Server::fail_batch(Tenant& tenant, std::span<Request> run,
                        StatusCode status, std::string_view message) {
  for (Request& rq : run)
    respond(tenant, rq, make_error(rq.seq, status, message));
}

// --- daemon body ------------------------------------------------------

namespace {
volatile std::sig_atomic_t g_signal = 0;
void on_signal(int) { g_signal = 1; }
}  // namespace

int run_daemon(const ServerOptions& options, int ready_fd) {
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  std::unique_ptr<Server> server;
  try {
    server = std::make_unique<Server>(options);
    server->start();
  } catch (const std::exception& e) {
    // Startup failed (bad options, bind error, …). Under `dbitool serve
    // --fork` stderr is already /dev/null, so the reason travels back
    // to the invoking parent through the readiness pipe: status byte 1
    // followed by the message (a clean start sends status byte 0).
    if (ready_fd >= 0) {
      const char failed = 1;
      (void)!::write(ready_fd, &failed, 1);
      (void)!::write(ready_fd, e.what(), std::strlen(e.what()));
      ::close(ready_fd);
    }
    std::fprintf(stderr, "dbid: %s\n", e.what());
    return 1;
  }
  if (ready_fd >= 0) {
    const char ok = 0;
    (void)!::write(ready_fd, &ok, 1);
    ::close(ready_fd);
  }
  // Wait for SIGTERM/SIGINT or a client kShutdown frame, then drain.
  while (g_signal == 0 && !server->wait_stop_requested(
                              std::chrono::milliseconds(100))) {
  }
  server->stop();
  return 0;
}

}  // namespace dbi::serve
