#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

namespace dbi::serve {

namespace {

[[noreturn]] void throw_error(const Frame& frame) {
  throw ServerError(frame.status,
                    std::string(frame.payload.begin(), frame.payload.end()));
}

}  // namespace

namespace {

int dial(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path))
    throw std::invalid_argument("serve: socket_path over the AF_UNIX limit");
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::system_error(errno, std::generic_category(), "serve: socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::system_error(err, std::generic_category(),
                            "serve: connect " + socket_path);
  }
  return fd;
}

}  // namespace

Client Client::connect_control(const std::string& socket_path) {
  return Client(dial(socket_path));
}

Client Client::connect(const Options& options) {
  Client client(dial(options.socket_path));
  HelloRequest hello;
  hello.tenant = options.tenant;
  hello.scheme = options.scheme;
  hello.geometry = options.geometry;
  hello.lanes = static_cast<std::uint16_t>(options.lanes);
  hello.reset_state_per_burst = options.reset_state_per_burst;
  hello.kernel = options.kernel;
  Frame reply = client.roundtrip(
      make_frame(FrameType::kHello, client.next_seq(), hello.to_payload()));
  if (reply.type != FrameType::kHelloAck) throw_error(reply);
  const HelloAck ack = HelloAck::parse(reply.payload);
  client.build_ = ack.build;
  client.max_queue_requests_ = ack.max_queue_requests;
  return client;
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      seq_(other.seq_),
      build_(std::move(other.build_)),
      max_queue_requests_(other.max_queue_requests_) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Frame Client::roundtrip(Frame request) {
  write_frame(fd_, request);
  Frame reply;
  if (!read_frame(fd_, reply))
    throw ProtocolError("serve: server closed the connection");
  return reply;
}

namespace {

/// The 8-byte fixed prefix of an EncodeRequest (flags, burst_count LE)
/// for the scatter-send path: the burst payload itself goes out as a
/// second iovec straight from the caller's buffer, never copied.
std::array<std::uint8_t, 8> encode_prefix(std::uint32_t flags,
                                          std::uint32_t burst_count) {
  std::array<std::uint8_t, 8> p;
  for (int i = 0; i < 4; ++i) {
    p[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(flags >> (8 * i));
    p[static_cast<std::size_t>(4 + i)] =
        static_cast<std::uint8_t>(burst_count >> (8 * i));
  }
  return p;
}

}  // namespace

Client::EncodeResult Client::encode(std::span<const std::uint8_t> payload,
                                    std::uint32_t burst_count, bool want_tx) {
  const auto prefix =
      encode_prefix(want_tx ? EncodeRequest::kWantTx : 0, burst_count);
  const std::uint32_t seq = next_seq();
  write_frame_scatter(fd_, FrameType::kEncode, StatusCode::kOk, seq, prefix,
                      payload);
  Frame reply;
  if (!read_frame(fd_, reply))
    throw ProtocolError("serve: server closed the connection");
  EncodeResult out;
  out.seq = reply.seq;
  if (reply.type == FrameType::kBusy) {
    out.outcome = Outcome::kBusy;
    return out;
  }
  if (reply.type != FrameType::kEncodeAck) throw_error(reply);
  out.ack = EncodeAck::parse(reply.payload);
  return out;
}

Client::DecodeResult Client::decode(std::span<const std::uint8_t> tx,
                                    std::span<const std::uint64_t> masks,
                                    std::uint32_t burst_count) {
  DecodeRequest req;
  req.burst_count = burst_count;
  req.masks = masks;
  req.tx = tx;
  Frame reply = roundtrip(
      make_frame(FrameType::kDecode, next_seq(), req.to_payload()));
  DecodeResult out;
  if (reply.type == FrameType::kBusy) {
    out.outcome = Outcome::kBusy;
    return out;
  }
  if (reply.type != FrameType::kDecodeAck) throw_error(reply);
  out.payload = std::move(reply.payload);
  return out;
}

Client::VerifyResult Client::verify(std::span<const std::uint8_t> payload,
                                    std::uint32_t burst_count) {
  const auto prefix = encode_prefix(0, burst_count);
  write_frame_scatter(fd_, FrameType::kVerify, StatusCode::kOk, next_seq(),
                      prefix, payload);
  Frame reply;
  if (!read_frame(fd_, reply))
    throw ProtocolError("serve: server closed the connection");
  VerifyResult out;
  if (reply.type == FrameType::kBusy) {
    out.outcome = Outcome::kBusy;
    return out;
  }
  if (reply.type != FrameType::kVerifyAck) throw_error(reply);
  out.ack = VerifyAck::parse(reply.payload);
  return out;
}

std::string Client::stats() {
  Frame reply = roundtrip(make_frame(FrameType::kStats, next_seq()));
  if (reply.type != FrameType::kStatsAck) throw_error(reply);
  return std::string(reply.payload.begin(), reply.payload.end());
}

void Client::shutdown_server() {
  Frame reply = roundtrip(make_frame(FrameType::kShutdown, next_seq()));
  if (reply.type != FrameType::kShutdownAck) throw_error(reply);
}

std::uint32_t Client::submit_encode(std::span<const std::uint8_t> payload,
                                    std::uint32_t burst_count) {
  const auto prefix = encode_prefix(0, burst_count);
  const std::uint32_t seq = next_seq();
  write_frame_scatter(fd_, FrameType::kEncode, StatusCode::kOk, seq, prefix,
                      payload);
  return seq;
}

Client::Response Client::next_response() {
  Frame reply;
  if (!read_frame(fd_, reply))
    throw ProtocolError("serve: server closed the connection");
  Response out;
  out.seq = reply.seq;
  if (reply.type == FrameType::kBusy) {
    out.outcome = Outcome::kBusy;
    return out;
  }
  if (reply.type != FrameType::kEncodeAck) throw_error(reply);
  out.ack = EncodeAck::parse(reply.payload);
  return out;
}

}  // namespace dbi::serve
