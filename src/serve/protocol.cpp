#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <system_error>

#include "api/verify.hpp"

namespace dbi::serve {

namespace {

// Little-endian scalar put/get — explicit byte moves, so the wire
// format is identical on every host and no struct padding leaks.
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_bytes(std::vector<std::uint8_t>& out,
               std::span<const std::uint8_t> bytes) {
  out.insert(out.end(), bytes.begin(), bytes.end());
}
/// Bulk little-endian u64 append — the mask streams are the largest
/// fields on the wire (8 bytes per burst per group), so they go
/// through one resize + memcpy on little-endian hosts instead of
/// per-byte push_backs.
void put_u64s(std::vector<std::uint8_t>& out,
              std::span<const std::uint64_t> values) {
  const std::size_t at = out.size();
  out.resize(at + values.size() * 8);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data() + at, values.data(), values.size() * 8);
  } else {
    std::uint8_t* dst = out.data() + at;
    for (const std::uint64_t v : values)
      for (int i = 0; i < 8; ++i)
        *dst++ = static_cast<std::uint8_t>(v >> (8 * i));
  }
}
void put_string(std::vector<std::uint8_t>& out, std::string_view s) {
  if (s.size() > 0xFFFF)
    throw ProtocolError("serve: string field over 64 KiB");
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked little-endian reader over one payload span.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> p) : p_(p) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() {
    auto b = take(2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }
  std::uint32_t u32() {
    auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }
  std::string str() {
    const std::uint16_t n = u16();
    auto b = take(n);
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }
  std::span<const std::uint8_t> bytes(std::size_t n) { return take(n); }
  /// Bulk little-endian u64 read, the receive twin of put_u64s.
  void u64s(std::uint64_t* dst, std::size_t count) {
    auto b = take(count * 8);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(dst, b.data(), count * 8);
    } else {
      for (std::size_t k = 0; k < count; ++k) {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
          v |= static_cast<std::uint64_t>(b[k * 8 + i]) << (8 * i);
        dst[k] = v;
      }
    }
  }
  std::span<const std::uint8_t> rest() { return take(p_.size() - off_); }
  [[nodiscard]] std::size_t remaining() const { return p_.size() - off_; }
  void expect_end() const {
    if (off_ != p_.size())
      throw ProtocolError("serve: trailing bytes in frame payload");
  }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (p_.size() - off_ < n)
      throw ProtocolError("serve: truncated frame payload");
    auto out = p_.subspan(off_, n);
    off_ += n;
    return out;
  }

  std::span<const std::uint8_t> p_;
  std::size_t off_ = 0;
};

/// Writes every iovec fully, advancing across partial sends — one
/// sendmsg per frame in the common case instead of one send per part.
/// MSG_NOSIGNAL: a peer that hung up yields EPIPE here instead of a
/// process-killing SIGPIPE.
void write_vec(int fd, iovec* iov, std::size_t iov_count) {
  while (iov_count > 0 && iov[iov_count - 1].iov_len == 0) --iov_count;
  while (iov_count > 0) {
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iov_count;
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(),
                              "serve: socket write");
    }
    std::size_t done = static_cast<std::size_t>(n);
    while (iov_count > 0 && done >= iov[0].iov_len) {
      done -= iov[0].iov_len;
      ++iov;
      --iov_count;
    }
    if (iov_count > 0) {
      iov[0].iov_base = static_cast<std::uint8_t*>(iov[0].iov_base) + done;
      iov[0].iov_len -= done;
    }
  }
}

void fill_header(std::uint8_t (&header)[16], FrameType type, StatusCode status,
                 std::uint32_t seq, std::size_t payload_size) {
  std::vector<std::uint8_t> h;
  h.reserve(16);
  put_u32(h, kMagic);
  put_u8(h, kProtoVersion);
  put_u8(h, static_cast<std::uint8_t>(type));
  put_u16(h, static_cast<std::uint16_t>(status));
  put_u32(h, seq);
  put_u32(h, static_cast<std::uint32_t>(payload_size));
  std::memcpy(header, h.data(), sizeof(header));
}

/// Reads exactly `size` bytes. Returns false on EOF before the first
/// byte (when eof_ok); throws on EOF mid-record or socket errors.
bool read_all(int fd, std::uint8_t* data, std::size_t size, bool eof_ok) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(),
                              "serve: socket read");
    }
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      throw ProtocolError("serve: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

// --- HelloRequest -----------------------------------------------------

std::vector<std::uint8_t> HelloRequest::to_payload() const {
  std::vector<std::uint8_t> out;
  put_u8(out, scheme_to_tag(scheme));
  put_u8(out, static_cast<std::uint8_t>(geometry.width()));
  put_u8(out, static_cast<std::uint8_t>(geometry.burst_length()));
  put_u8(out, geometry.is_wide() ? 1 : 0);
  put_u16(out, lanes);
  put_u8(out, reset_state_per_burst ? 1 : 0);
  put_u8(out, 0);  // reserved
  put_string(out, kernel);
  put_string(out, tenant);
  return out;
}

HelloRequest HelloRequest::parse(std::span<const std::uint8_t> p) {
  Reader r(p);
  HelloRequest h;
  const std::uint8_t tag = r.u8();
  const auto scheme = scheme_from_tag(tag);
  if (!scheme)
    throw ProtocolError("serve: hello names unknown scheme tag " +
                        std::to_string(tag));
  h.scheme = *scheme;
  const int width = r.u8();
  const int bl = r.u8();
  const bool wide = r.u8() != 0;
  h.geometry = wide ? Geometry::wide(width, bl) : Geometry::narrow(width, bl);
  h.lanes = r.u16();
  h.reset_state_per_burst = r.u8() != 0;
  (void)r.u8();  // reserved
  h.kernel = r.str();
  h.tenant = r.str();
  r.expect_end();
  return h;
}

// --- HelloAck ---------------------------------------------------------

std::vector<std::uint8_t> HelloAck::to_payload() const {
  std::vector<std::uint8_t> out;
  put_u32(out, max_queue_requests);
  put_string(out, build);
  return out;
}

HelloAck HelloAck::parse(std::span<const std::uint8_t> p) {
  Reader r(p);
  HelloAck a;
  a.max_queue_requests = r.u32();
  a.build = r.str();
  r.expect_end();
  return a;
}

// --- EncodeRequest ----------------------------------------------------

std::vector<std::uint8_t> EncodeRequest::to_payload() const {
  std::vector<std::uint8_t> out;
  out.reserve(8 + payload.size());
  put_u32(out, flags);
  put_u32(out, burst_count);
  put_bytes(out, payload);
  return out;
}

EncodeRequest EncodeRequest::parse(std::span<const std::uint8_t> p) {
  Reader r(p);
  EncodeRequest e;
  e.flags = r.u32();
  e.burst_count = r.u32();
  e.payload = r.rest();
  return e;
}

// --- EncodeAck --------------------------------------------------------

std::vector<std::uint8_t> EncodeAck::to_payload() const {
  std::vector<std::uint8_t> out;
  out.reserve(28 + masks.size() * 8 + tx.size());
  put_u32(out, burst_count);
  put_u32(out, static_cast<std::uint32_t>(masks.size()));
  put_u64(out, zeros);
  put_u64(out, transitions);
  put_u64s(out, masks);
  put_u32(out, static_cast<std::uint32_t>(tx.size()));
  put_bytes(out, tx);
  return out;
}

EncodeAck EncodeAck::parse(std::span<const std::uint8_t> p) {
  Reader r(p);
  EncodeAck a;
  a.burst_count = r.u32();
  const std::uint32_t mask_count = r.u32();
  a.zeros = r.u64();
  a.transitions = r.u64();
  if (r.remaining() < mask_count * 8ull)
    throw ProtocolError("serve: encode ack mask stream truncated");
  a.masks.resize(mask_count);
  r.u64s(a.masks.data(), mask_count);
  const std::uint32_t tx_len = r.u32();
  auto tx = r.bytes(tx_len);
  a.tx.assign(tx.begin(), tx.end());
  r.expect_end();
  return a;
}

// --- DecodeRequest ----------------------------------------------------

std::vector<std::uint8_t> DecodeRequest::to_payload() const {
  std::vector<std::uint8_t> out;
  out.reserve(8 + masks.size() * 8 + tx.size());
  put_u32(out, burst_count);
  put_u32(out, static_cast<std::uint32_t>(masks.size()));
  put_u64s(out, masks);
  put_bytes(out, tx);
  return out;
}

DecodeRequest DecodeRequest::parse(std::span<const std::uint8_t> p,
                                   std::vector<std::uint64_t>& mask_store) {
  Reader r(p);
  DecodeRequest d;
  d.burst_count = r.u32();
  const std::uint32_t mask_count = r.u32();
  if (r.remaining() < mask_count * 8ull)
    throw ProtocolError("serve: decode request mask stream truncated");
  mask_store.resize(mask_count);
  r.u64s(mask_store.data(), mask_count);
  d.masks = mask_store;
  d.tx = r.rest();
  return d;
}

// --- VerifyAck --------------------------------------------------------

std::vector<std::uint8_t> VerifyAck::to_payload() const {
  std::vector<std::uint8_t> out;
  put_u8(out, ok ? 1 : 0);
  put_u8(out, 0);
  put_u16(out, 0);  // reserved
  put_u32(out, burst_count);
  put_u64(out, mismatched_bytes);
  put_u64(out, zeros);
  put_u64(out, transitions);
  return out;
}

VerifyAck VerifyAck::parse(std::span<const std::uint8_t> p) {
  Reader r(p);
  VerifyAck v;
  v.ok = r.u8() != 0;
  (void)r.u8();
  (void)r.u16();
  v.burst_count = r.u32();
  v.mismatched_bytes = r.u64();
  v.zeros = r.u64();
  v.transitions = r.u64();
  r.expect_end();
  return v;
}

// --- BusyInfo ---------------------------------------------------------

std::vector<std::uint8_t> BusyInfo::to_payload() const {
  std::vector<std::uint8_t> out;
  put_u32(out, depth);
  put_u32(out, limit);
  return out;
}

BusyInfo BusyInfo::parse(std::span<const std::uint8_t> p) {
  Reader r(p);
  BusyInfo b;
  b.depth = r.u32();
  b.limit = r.u32();
  r.expect_end();
  return b;
}

// --- frame I/O --------------------------------------------------------

bool read_frame(int fd, Frame& out) {
  std::uint8_t header[16];
  if (!read_all(fd, header, sizeof(header), /*eof_ok=*/true)) return false;
  Reader r(std::span<const std::uint8_t>(header, sizeof(header)));
  const std::uint32_t magic = r.u32();
  if (magic != kMagic)
    throw ProtocolError("serve: bad frame magic (not a dbid stream?)");
  const std::uint8_t version = r.u8();
  if (version != kProtoVersion)
    throw ProtocolError("serve: protocol version " + std::to_string(version) +
                        " (this build speaks " +
                        std::to_string(kProtoVersion) + ")");
  out.type = static_cast<FrameType>(r.u8());
  out.status = static_cast<StatusCode>(r.u16());
  out.seq = r.u32();
  const std::uint32_t length = r.u32();
  if (length > kMaxPayload)
    throw ProtocolError("serve: frame payload over the 64 MiB cap");
  out.payload.resize(length);
  if (length > 0)
    (void)read_all(fd, out.payload.data(), length, /*eof_ok=*/false);
  return true;
}

void write_frame(int fd, const Frame& frame) {
  if (frame.payload.size() > kMaxPayload)
    throw ProtocolError("serve: refusing to write over-cap frame");
  std::uint8_t header[16];
  fill_header(header, frame.type, frame.status, frame.seq,
              frame.payload.size());
  iovec iov[2] = {
      {header, sizeof(header)},
      {const_cast<std::uint8_t*>(frame.payload.data()), frame.payload.size()},
  };
  write_vec(fd, iov, 2);
}

void write_frame_scatter(int fd, FrameType type, StatusCode status,
                         std::uint32_t seq,
                         std::span<const std::uint8_t> prefix,
                         std::span<const std::uint8_t> body) {
  const std::size_t total = prefix.size() + body.size();
  if (total > kMaxPayload)
    throw ProtocolError("serve: refusing to write over-cap frame");
  std::uint8_t header[16];
  fill_header(header, type, status, seq, total);
  iovec iov[3] = {
      {header, sizeof(header)},
      {const_cast<std::uint8_t*>(prefix.data()), prefix.size()},
      {const_cast<std::uint8_t*>(body.data()), body.size()},
  };
  write_vec(fd, iov, 3);
}

Frame make_frame(FrameType type, std::uint32_t seq,
                 std::vector<std::uint8_t> payload, StatusCode status) {
  Frame f;
  f.type = type;
  f.status = status;
  f.seq = seq;
  f.payload = std::move(payload);
  return f;
}

Frame make_error(std::uint32_t seq, StatusCode status,
                 std::string_view message) {
  Frame f;
  f.type = FrameType::kError;
  f.status = status;
  f.seq = seq;
  f.payload.assign(message.begin(), message.end());
  return f;
}

std::string_view status_name(StatusCode s) {
  switch (s) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kBusy: return "busy";
    case StatusCode::kBadFrame: return "bad-frame";
    case StatusCode::kBadState: return "bad-state";
    case StatusCode::kShuttingDown: return "shutting-down";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

}  // namespace dbi::serve
